(* fictionette — command-line driver for the SiDB design-automation
   flow. *)

open Cmdliner

let engine_conv =
  let parse = function
    | "exact" -> Ok (Core.Flow.Exact Physdesign.Exact.default_config)
    | "scalable" -> Ok Core.Flow.Scalable
    | "fallback" ->
        Ok (Core.Flow.Exact_with_fallback Physdesign.Exact.default_config)
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  let print ppf = function
    | Core.Flow.Exact _ -> Format.pp_print_string ppf "exact"
    | Core.Flow.Scalable -> Format.pp_print_string ppf "scalable"
    | Core.Flow.Exact_with_fallback _ -> Format.pp_print_string ppf "fallback"
  in
  Arg.conv (parse, print)

let engine_arg =
  let doc =
    "Physical design engine: $(b,exact), $(b,scalable), or $(b,fallback) \
     (exact under a budget share, degrading to scalable)."
  in
  Arg.(
    value
    & opt engine_conv (Core.Flow.Exact Physdesign.Exact.default_config)
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

(* Validated at parse time so a bad value is a usage error, not an
   [Invalid_argument] out of [Core.Budget.of_seconds] mid-run. *)
let deadline_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f >= 0. -> Ok f
    | Some f ->
        Error
          (`Msg
            (Printf.sprintf "deadline must be finite and non-negative (got %g)" f))
    | None -> Error (`Msg (Printf.sprintf "invalid deadline %S" s))
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let deadline_arg =
  let doc = "Wall-clock budget for the whole flow, in seconds." in
  Arg.(
    value
    & opt (some deadline_conv) None
    & info [ "d"; "deadline" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel simulation loops (operational-domain \
     sweeps, defect-yield Monte Carlo, brute-force equivalence).  Defaults \
     to $(b,FICTIONETTE_JOBS) or the host's recommended domain count; \
     $(b,1) forces the serial code path.  Results are bit-identical at \
     every job count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let sat_portfolio_arg =
  let doc =
    "Width of the SAT solver portfolio racing each hard instance (exact \
     P&R candidates, equivalence miters).  Defaults to \
     $(b,FICTIONETTE_SAT_PORTFOLIO) or $(b,1); $(b,1) keeps the plain \
     single-solver path.  Verdicts, certificates and results are \
     identical at every width."
  in
  Arg.(
    value & opt (some int) None & info [ "sat-portfolio" ] ~docv:"K" ~doc)

(* --jobs and --sat-portfolio travel together so every command that
   takes one takes the other without widening its signature. *)
let jobs_arg =
  Cmdliner.Term.(const (fun j k -> (j, k)) $ jobs_arg $ sat_portfolio_arg)

(* Applies --jobs / --sat-portfolio (when given) and reports the
   effective worker count on stderr, so runs are attributable to a
   parallelism level. *)
let apply_jobs (jobs, portfolio) =
  (match jobs with Some j -> Parallel.Pool.set_default_jobs j | None -> ());
  (match portfolio with
  | Some k -> Sat.Portfolio.set_default_k k
  | None -> ());
  Format.eprintf "fictionette: simulation workers: %d (host cores: %d)@."
    (Parallel.Pool.default_jobs ())
    (Domain.recommended_domain_count ());
  let k = Sat.Portfolio.default_k () in
  if k > 1 then Format.eprintf "fictionette: SAT portfolio width: %d@." k

let conflict_budget_arg =
  let doc = "Total CDCL-conflict budget for the SAT-based steps." in
  Arg.(
    value
    & opt (some int) None
    & info [ "conflict-budget" ] ~docv:"N" ~doc)

let budget_of deadline conflicts =
  match (deadline, conflicts) with
  | None, None -> Core.Budget.unlimited
  | Some s, c -> Core.Budget.of_seconds ?conflicts:c s
  | None, Some c -> Core.Budget.of_conflicts c

let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Cross-check every stage boundary: re-simulate rewriting and \
           mapping, proof-check every candidate refutation of the exact \
           engine, audit the routed layout, and replay the equivalence \
           certificate through the independent checker.")

let no_rewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Skip logic rewriting (step 2).")

let no_ha_arg =
  Arg.(value & flag & info [ "no-half-adders" ] ~doc:"Disable half-adder fusion.")

let sqd_arg =
  let doc = "Write the resulting SiDB layout as a SiQAD design file." in
  Arg.(value & opt (some string) None & info [ "o"; "sqd" ] ~docv:"FILE" ~doc)

let show_layout_arg =
  Arg.(value & flag & info [ "l"; "layout" ] ~doc:"Print the gate-level layout.")

let zones_arg =
  Arg.(value & flag & info [ "z"; "zones" ] ~doc:"Annotate tiles with clock numbers.")

let options_of engine no_rewrite no_ha =
  {
    Core.Flow.default_options with
    engine;
    rewrite = not no_rewrite;
    fuse_half_adders = not no_ha;
  }

let defects_doc =
  "Surface defect map file (textual $(b,sidb-defect-map v1) format).  \
   Physical design avoids the tiles the map blocks, the layout stays in \
   the map's absolute lattice frame, and the routed result is replayed \
   under the same map (a replay failure is a soft check failure, exit 2)."

let defects_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "defects" ] ~docv:"FILE" ~doc:defects_doc)

let defects_req_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "defects" ] ~docv:"FILE" ~doc:defects_doc)

let load_defect_map = function
  | None -> Ok None
  | Some path -> (
      match Sidb.Defect_map.load path with
      | Ok m -> Ok (Some m)
      | Error e -> Error e)

(* Replay a fixed defect map over the routed (absolute-frame) layout;
   prints the per-tile report and returns the soft check failures. *)
let replay_defects defect_map (result : Core.Flow.result) =
  match defect_map with
  | None -> []
  | Some map ->
      let r = Bestagon.Yield.under_map map result.Core.Flow.gate_layout in
      Format.printf "%a" Bestagon.Yield.pp_map_report r;
      if r.Bestagon.Yield.failed_tiles = 0 then []
      else
        [
          Printf.sprintf "defect replay: %d/%d tile(s) not operational"
            r.Bestagon.Yield.failed_tiles r.Bestagon.Yield.map_simulated;
        ]

(* Soft check failures: the flow produced a layout, but a result-level
   check did not come back green.  Reported on stderr, exit code 2 —
   distinct from hard failures (exit 1). *)
let check_failures (r : Core.Flow.result) =
  let fails = ref [] in
  (match r.Core.Flow.equivalence with
  | None | Some Verify.Equivalence.Equivalent -> ()
  | Some (Verify.Equivalence.Undecided reason) ->
      fails :=
        Printf.sprintf "equivalence undecided (%s)"
          (Core.Budget.reason_to_string reason)
        :: !fails
  | Some v ->
      fails :=
        ("equivalence: " ^ Verify.Equivalence.verdict_to_string v) :: !fails);
  (match r.Core.Flow.drc_violations with
  | [] -> ()
  | vs -> fails := Printf.sprintf "%d DRC violation(s)" (List.length vs) :: !fails);
  List.rev !fails

let report ?(extra_checks = []) result sqd show_layout zones =
  Format.printf "%a" Core.Flow.pp_summary result;
  if show_layout then
    Format.printf "@.%s@."
      (Layout.Render.layout ~show_zones:zones result.Core.Flow.supertiled);
  let sqd_code =
    match sqd with
    | None -> 0
    | Some path -> (
        match Core.Flow.export_sqd result ~path () with
        | Ok () ->
            Format.printf "wrote %s@." path;
            0
        | Error e ->
            Format.eprintf "sqd export failed: %s@." e;
            1)
  in
  match check_failures result @ extra_checks with
  | [] -> sqd_code
  | fails ->
      List.iter (fun m -> Format.eprintf "check failed: %s@." m) fails;
      if sqd_code <> 0 then sqd_code else 2

let report_failure f =
  Format.eprintf "error: %a" Core.Flow.pp_failure f;
  1

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit one structured JSON response on stdout, in exactly the \
           schema of the design server's $(b,design)/$(b,check) responses \
           (the same execution path serves both).  Incompatible with \
           $(b,--defects), $(b,--sqd), and $(b,--layout).  Exit codes: 0 \
           clean, 2 on degradation or a failed check, 1 on a hard error.")

(* One-shot JSON mode: build the same job the server would decode and
   run it through [Serve.Handlers.run_job] — schema identity with the
   resident server is by construction, not by parallel maintenance. *)
let run_json ~paranoid ~source ~engine ~deadline ~conflicts ~no_rewrite ~no_ha
    =
  let json_engine = function
    | Core.Flow.Exact _ -> Serve.Protocol.Engine_exact
    | Core.Flow.Scalable -> Serve.Protocol.Engine_scalable
    | Core.Flow.Exact_with_fallback _ -> Serve.Protocol.Engine_fallback
  in
  let params =
    {
      Serve.Protocol.source;
      engine = json_engine engine;
      timeout_ms = Option.map (fun s -> s *. 1000.) deadline;
      conflict_budget = conflicts;
      rewrite = not no_rewrite;
      half_adders = not no_ha;
      equivalence = true;
      library = true;
      chaos = None;
    }
  in
  let job =
    if paranoid then Serve.Protocol.Check params
    else Serve.Protocol.Design params
  in
  let ctx =
    {
      (Serve.Handlers.default_ctx ()) with
      (* One-shot mode: the caller's deadline is the ceiling (1 h when
         none) — never silently clamped by the server default. *)
      Serve.Handlers.max_timeout_ms =
        (match deadline with Some s -> s *. 1000. | None -> 3_600_000.);
    }
  in
  let response = Serve.Handlers.run_job ctx ~id:Serve.Json.Null job in
  print_endline (Serve.Json.to_string response);
  match Serve.Protocol.response_status response with
  | Some "ok" -> (
      match Serve.Json.mem "degradation" response with
      | Some (Serve.Json.List (_ :: _)) -> 2
      | _ -> 0)
  | _ -> (
      let error_kind =
        Option.bind (Serve.Json.mem "error" response) (fun e ->
            Option.bind (Serve.Json.mem "kind" e) Serve.Json.str)
      in
      match error_kind with
      | Some ("check_failed" | "budget") -> 2
      | _ -> 1)

(* [--json] bypasses the textual reporting path entirely, so the flags
   that only make sense there are rejected loudly instead of ignored. *)
let json_incompatible ~defects ~sqd ~show_layout =
  if defects <> None then Some "--defects"
  else if sqd <> None then Some "--sqd"
  else if show_layout then Some "--layout"
  else None

let run_cmd =
  let bench_arg =
    let doc = "Benchmark name (see $(b,fictionette list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let action name engine deadline conflicts jobs paranoid no_rewrite no_ha sqd
      show_layout zones defects json =
    apply_jobs jobs;
    if json then
      match json_incompatible ~defects ~sqd ~show_layout with
      | Some flag ->
          Format.eprintf "error: --json cannot be combined with %s@." flag;
          1
      | None ->
          run_json ~paranoid ~source:(Serve.Protocol.Benchmark name) ~engine
            ~deadline ~conflicts ~no_rewrite ~no_ha
    else
      match load_defect_map defects with
      | Error e ->
          Format.eprintf "error: %s@." e;
          1
      | Ok defect_map -> (
          match
            Core.Flow.run_benchmark
              ~options:(options_of engine no_rewrite no_ha)
              ~paranoid ?defect_map
              ~budget:(budget_of deadline conflicts)
              name
          with
          | Ok result ->
              report ~extra_checks:(replay_defects defect_map result) result
                sqd show_layout zones
          | Error f -> report_failure f)
  in
  let term =
    Term.(
      const action $ bench_arg $ engine_arg $ deadline_arg
      $ conflict_budget_arg $ jobs_arg $ paranoid_arg $ no_rewrite_arg
      $ no_ha_arg $ sqd_arg $ show_layout_arg $ zones_arg $ defects_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the full flow on a built-in benchmark.")
    term

let verilog_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.v")
  in
  let action path engine deadline conflicts jobs paranoid no_rewrite no_ha sqd
      show_layout zones defects json =
    apply_jobs jobs;
    let ic = open_in path in
    let source = really_input_string ic (in_channel_length ic) in
    close_in ic;
    if json then
      match json_incompatible ~defects ~sqd ~show_layout with
      | Some flag ->
          Format.eprintf "error: --json cannot be combined with %s@." flag;
          1
      | None ->
          run_json ~paranoid ~source:(Serve.Protocol.Verilog source) ~engine
            ~deadline ~conflicts ~no_rewrite ~no_ha
    else
      match load_defect_map defects with
      | Error e ->
          Format.eprintf "error: %s@." e;
          1
      | Ok defect_map -> (
          match
            Core.Flow.run_verilog
              ~options:(options_of engine no_rewrite no_ha)
              ~paranoid ?defect_map
              ~budget:(budget_of deadline conflicts)
              source
          with
          | Ok result ->
              report ~extra_checks:(replay_defects defect_map result) result
                sqd show_layout zones
          | Error f -> report_failure f)
  in
  let term =
    Term.(
      const action $ file_arg $ engine_arg $ deadline_arg $ conflict_budget_arg
      $ jobs_arg $ paranoid_arg $ no_rewrite_arg $ no_ha_arg $ sqd_arg
      $ show_layout_arg $ zones_arg $ defects_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Run the full flow on a gate-level Verilog file.")
    term

let list_cmd =
  let action () =
    List.iter
      (fun b ->
        Printf.printf "%-16s (%s)\n" b.Logic.Benchmarks.name
          b.Logic.Benchmarks.source)
      Logic.Benchmarks.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark circuits.")
    Term.(const action $ const ())

let table1_cmd =
  let action engine deadline conflicts jobs =
    apply_jobs jobs;
    let options = { Core.Flow.default_options with engine } in
    let rows =
      Core.Table1.generate ~options ~budget:(budget_of deadline conflicts) ()
    in
    Format.printf "%a" Core.Table1.pp_table rows;
    if List.for_all Result.is_ok rows then 0 else 1
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate the paper's Table 1.")
    Term.(
      const action $ engine_arg $ deadline_arg $ conflict_budget_arg
      $ jobs_arg)

let gates_cmd =
  let action () =
    let tiles =
      [
        ("wire (NW->SE)",
         Layout.Tile.Wire
           { segments = [ (Hexlib.Direction.North_west, Hexlib.Direction.South_east) ] });
        ("inverter",
         Layout.Tile.Gate
           {
             fn = Logic.Mapped.Inv;
             ins = [ Hexlib.Direction.North_west ];
             outs = [ Hexlib.Direction.South_east ];
           });
      ]
      @ List.map
          (fun fn ->
            ( Logic.Mapped.fn_name fn,
              Layout.Tile.Gate
                {
                  fn;
                  ins =
                    [ Hexlib.Direction.North_west; Hexlib.Direction.North_east ];
                  outs = [ Hexlib.Direction.South_east ];
                } ))
          [
            Logic.Mapped.Or2; Logic.Mapped.And2; Logic.Mapped.Nor2;
            Logic.Mapped.Nand2; Logic.Mapped.Xor2; Logic.Mapped.Xnor2;
          ]
    in
    List.iter
      (fun (name, tile) ->
        match Bestagon.Library.validation_structure tile with
        | None -> Printf.printf "%-14s (no structure)\n" name
        | Some s -> (
            match Bestagon.Library.tile_spec tile with
            | None -> Printf.printf "%-14s (no spec)\n" name
            | Some spec ->
                let report = Sidb.Bdl.check s ~spec in
                Printf.printf "%-14s %s\n%!" name
                  (if report.Sidb.Bdl.functional then "operational"
                   else "NOT OPERATIONAL")))
      tiles;
    0
  in
  Cmd.v
    (Cmd.info "gates"
       ~doc:"Validate the Bestagon gate designs by exact simulation (Fig. 5).")
    Term.(const action $ const ())

let sim_engine_conv =
  let parse s =
    match Sidb.Bdl.engine_of_string s with
    | Ok e -> Ok e
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun ppf e -> Format.pp_print_string ppf (Sidb.Bdl.engine_name e))

let simulate_cmd =
  let name_arg =
    let doc =
      "Gate name ($(b,wire), $(b,inverter), $(b,or2), $(b,and2), $(b,nor2), \
       $(b,nand2), $(b,xor2), $(b,xnor2)) or, with $(b,--layout), a \
       benchmark name (see $(b,fictionette list))."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let layout_arg =
    Arg.(
      value & flag
      & info [ "layout" ]
          ~doc:
            "Simulate the complete placed-and-routed benchmark as $(i,one) \
             charge system: whole-layout ground state and critical \
             temperature (the workload the exact engines cannot touch \
             beyond a few tiles).")
  in
  let sim_engine_arg =
    let doc =
      "Ground-state engine: $(b,exhaustive), $(b,pruned), or \
       $(b,quicksim).  Defaults to $(b,FICTIONETTE_SIM_ENGINE) if set, \
       else automatic (exact pruned search on small systems, quicksim \
       above the exact-engine site limit)."
    in
    Arg.(
      value & opt (some sim_engine_conv) None
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let confidence_arg =
    Arg.(
      value & opt float 0.9
      & info [ "confidence" ] ~docv:"P"
          ~doc:
            "Ground-manifold Boltzmann weight defining the critical \
             temperature.")
  in
  let domain_arg =
    Arg.(
      value & flag
      & info [ "domain" ]
          ~doc:
            "Compute an operational domain (μ₋ × ε_r at λ_TF = 5 nm) instead \
             of a single \
             simulation: per-gate with the exact engine, or — with \
             $(b,--layout) — for the whole placed-and-routed benchmark \
             (quicksim scales where no exact engine can).")
  in
  let domain_algorithm_conv =
    let parse s =
      match Sidb.Operational_domain.algorithm_of_string s with
      | Some a -> Ok a
      | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown algorithm %S (want grid, flood-fill, or contour)" s))
    in
    Arg.conv
      ( parse,
        fun ppf a ->
          Format.pp_print_string ppf (Sidb.Operational_domain.algorithm_name a)
      )
  in
  let domain_algorithm_arg =
    Arg.(
      value
      & opt domain_algorithm_conv Sidb.Operational_domain.Flood_fill
      & info [ "domain-algorithm" ] ~docv:"ALGO"
          ~doc:
            "Domain algorithm: $(b,grid) classifies every point, \
             $(b,flood-fill) grows operational regions from random probes, \
             $(b,contour) traces region boundaries and infers the interior.")
  in
  let domain_steps_arg =
    Arg.(
      value & opt int 0
      & info [ "domain-steps" ] ~docv:"N"
          ~doc:
            "Grid resolution per axis (default: 16 per gate, 8 per \
             layout).")
  in
  let domain_samples_arg =
    Arg.(
      value & opt int 0
      & info [ "domain-samples" ] ~docv:"N"
          ~doc:
            "Random probes seeding flood fill / contour tracing (default: \
             an eighth of the grid).")
  in
  let domain_csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "domain-csv" ] ~docv:"FILE"
          ~doc:"Also write the swept domain as CSV to $(docv).")
  in
  let domain_config ~algorithm ~samples ~total =
    {
      Sidb.Operational_domain.default_config with
      Sidb.Operational_domain.algorithm;
      samples = (if samples > 0 then samples else max 4 (total / 8));
    }
  in
  let print_domain ~title ~engine ~exact ~csv dom =
    Format.printf "operational domain: %s@." title;
    Format.printf "  engine: %s (%s)@." engine
      (if exact then "exact" else "heuristic");
    print_string (Sidb.Operational_domain.to_ascii dom);
    let st = dom.Sidb.Operational_domain.stats in
    Format.printf
      "  operational fraction%s: %.4f (%d evaluated of %d points, %d \
       solver calls saved)@."
      (if exact then "" else " (estimate)")
      dom.Sidb.Operational_domain.operational_fraction
      st.Sidb.Operational_domain.points_evaluated
      st.Sidb.Operational_domain.total_points
      st.Sidb.Operational_domain.solver_calls_saved;
    match csv with
    | None -> 0
    | Some path -> (
        try
          let oc = open_out path in
          output_string oc (Sidb.Operational_domain.to_csv dom);
          close_out oc;
          Format.printf "  csv: %s@." path;
          0
        with Sys_error e ->
          Format.eprintf "error: %s@." e;
          1)
  in
  let bits b =
    String.concat ""
      (List.map (fun x -> if x then "1" else "0") (Array.to_list b))
  in
  let run_gate name engine ~domain ~algorithm ~steps ~samples ~csv =
    let tiles =
      [
        ("wire",
         Layout.Tile.Wire
           {
             segments =
               [ (Hexlib.Direction.North_west, Hexlib.Direction.South_east) ];
           });
        ("inverter",
         Layout.Tile.Gate
           {
             fn = Logic.Mapped.Inv;
             ins = [ Hexlib.Direction.North_west ];
             outs = [ Hexlib.Direction.South_east ];
           });
      ]
      @ List.map
          (fun (n, fn) ->
            ( n,
              Layout.Tile.Gate
                {
                  fn;
                  ins =
                    [ Hexlib.Direction.North_west; Hexlib.Direction.North_east ];
                  outs = [ Hexlib.Direction.South_east ];
                } ))
          [
            ("or2", Logic.Mapped.Or2); ("and2", Logic.Mapped.And2);
            ("nor2", Logic.Mapped.Nor2); ("nand2", Logic.Mapped.Nand2);
            ("xor2", Logic.Mapped.Xor2); ("xnor2", Logic.Mapped.Xnor2);
          ]
    in
    match List.assoc_opt (String.lowercase_ascii name) tiles with
    | None ->
        Format.eprintf "error: unknown gate %S (want one of: %s)@." name
          (String.concat ", " (List.map fst tiles));
        1
    | Some tile -> (
        match
          (Bestagon.Library.validation_structure tile,
           Bestagon.Library.tile_spec tile)
        with
        | None, _ | _, None ->
            Format.eprintf "error: no validation harness for %S@." name;
            1
        | Some structure, Some spec when domain ->
            let engine =
              match engine with
              | Some e -> e
              | None -> Sidb.Bdl.default_engine ()
            in
            let steps = if steps > 0 then steps else 16 in
            let x_axis =
              { Core.Flow.default_domain_x_axis with Sidb.Operational_domain.steps }
            in
            let y_axis =
              { Core.Flow.default_domain_y_axis with Sidb.Operational_domain.steps }
            in
            let config = domain_config ~algorithm ~samples ~total:(steps * steps) in
            let dom =
              Sidb.Operational_domain.sweep ~engine ~config ~x_axis ~y_axis
                structure ~spec
            in
            print_domain
              ~title:(String.lowercase_ascii name)
              ~engine:(Sidb.Bdl.engine_name engine)
              ~exact:(Sidb.Bdl.engine_exact engine)
              ~csv dom
        | Some structure, Some spec ->
            let engine =
              match engine with
              | Some e -> e
              | None -> Sidb.Bdl.default_engine ()
            in
            let report = Sidb.Bdl.check ~engine structure ~spec in
            Format.printf "%s: engine %s (%s)@."
              (String.lowercase_ascii name)
              (Sidb.Bdl.engine_name engine)
              (if Sidb.Bdl.engine_exact engine then "exact" else "heuristic");
            List.iter
              (fun (r : Sidb.Bdl.row_result) ->
                Format.printf "  %s -> %s  E0 = %+.6f eV  %s@."
                  (bits r.Sidb.Bdl.assignment)
                  (bits r.Sidb.Bdl.expected)
                  r.Sidb.Bdl.ground_energy
                  (if r.Sidb.Bdl.ok then "ok" else "MISMATCH"))
              report.Sidb.Bdl.rows;
            Format.printf "%s: %s@."
              (String.lowercase_ascii name)
              (if report.Sidb.Bdl.functional then "operational"
               else "NOT OPERATIONAL");
            if report.Sidb.Bdl.functional then 0 else 2)
  in
  let run_layout name engine deadline conflicts confidence ~domain ~algorithm
      ~steps ~samples ~csv =
    let options =
      {
        Core.Flow.default_options with
        Core.Flow.engine =
          Core.Flow.Exact_with_fallback Physdesign.Exact.default_config;
        check_equivalence = false;
        apply_library = false;
      }
    in
    match
      Core.Flow.run_benchmark ~options
        ~budget:(budget_of deadline conflicts)
        name
    with
    | Error f -> report_failure f
    | Ok result when domain -> (
        let steps = if steps > 0 then steps else 8 in
        let x_axis =
          { Core.Flow.default_domain_x_axis with Sidb.Operational_domain.steps }
        in
        let y_axis =
          { Core.Flow.default_domain_y_axis with Sidb.Operational_domain.steps }
        in
        let config = domain_config ~algorithm ~samples ~total:(steps * steps) in
        match Core.Flow.domain_of_layout ?engine ~config ~x_axis ~y_axis result with
        | Error e ->
            Format.eprintf "error: %s@." e;
            1
        | Ok d ->
            Format.printf "whole-layout operational domain: %s@." name;
            Format.printf
              "  system: %d SiDB(s) across %d tile(s), %d input(s), %d \
               output(s)@."
              d.Core.Flow.dom_sites d.Core.Flow.dom_tiles
              d.Core.Flow.dom_inputs d.Core.Flow.dom_outputs;
            let code =
              print_domain ~title:name ~engine:d.Core.Flow.dom_engine
                ~exact:d.Core.Flow.dom_exact ~csv d.Core.Flow.dom_domain
            in
            Format.printf "  sweep time: %.3f s@." d.Core.Flow.dom_seconds;
            code)
    | Ok result -> (
        match Core.Flow.simulate_layout ?engine ~confidence result with
        | Error e ->
            Format.eprintf "error: %s@." e;
            1
        | Ok s ->
            Format.printf "whole-layout simulation: %s@." name;
            Format.printf "  engine: %s (%s)@." s.Core.Flow.sim_engine
              (if s.Core.Flow.sim_exact then "exact" else "heuristic");
            Format.printf "  system: %d SiDB(s) across %d tile(s)%s@."
              s.Core.Flow.sim_sites s.Core.Flow.sim_tiles
              (if s.Core.Flow.sim_duplicates_dropped > 0 then
                 Printf.sprintf " (%d shared boundary site(s) merged)"
                   s.Core.Flow.sim_duplicates_dropped
               else "");
            Format.printf "  ground state: %.6f eV, degeneracy %d, %s@."
              s.Core.Flow.sim_energy s.Core.Flow.sim_degeneracy
              (if s.Core.Flow.sim_valid then "physically valid"
               else "NOT physically valid");
            Format.printf
              "  critical temperature%s: %.1f K (confidence %.2f, %d \
               spectrum state(s))@."
              (if s.Core.Flow.sim_exact then "" else " (upper estimate)")
              s.Core.Flow.sim_critical_temperature_k confidence
              s.Core.Flow.sim_spectrum_states;
            Format.printf "  simulation time: %.3f s@." s.Core.Flow.sim_seconds;
            if s.Core.Flow.sim_valid then 0 else 2)
  in
  let action name layout engine deadline conflicts jobs confidence domain
      algorithm steps samples csv =
    apply_jobs jobs;
    (* An explicit --engine becomes the process-wide default, so every
       downstream ground-state call (library checks included) honors
       it — same precedence as FICTIONETTE_SIM_ENGINE, but stronger. *)
    (match engine with
    | Some e -> Sidb.Bdl.set_default_engine e
    | None -> ());
    if layout then
      run_layout name engine deadline conflicts confidence ~domain ~algorithm
        ~steps ~samples ~csv
    else run_gate name engine ~domain ~algorithm ~steps ~samples ~csv
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Ground-state simulation: validate one Bestagon gate on all input \
          rows, or — with $(b,--layout) — flatten a whole placed-and-routed \
          benchmark into a single charge system and report its ground state \
          and critical temperature.  $(b,--engine quicksim) scales to \
          hundreds of DBs; exact engines refuse oversized systems with a \
          structured error instead of searching unboundedly.  Exit codes: \
          0 ok, 2 non-functional gate or invalid states, 1 hard error.")
    Term.(
      const action $ name_arg $ layout_arg $ sim_engine_arg $ deadline_arg
      $ conflict_budget_arg $ jobs_arg $ confidence_arg $ domain_arg
      $ domain_algorithm_arg $ domain_steps_arg $ domain_samples_arg
      $ domain_csv_arg)

let yield_cmd =
  let bench_arg =
    let doc = "Benchmark name (see $(b,fictionette list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let trials_arg =
    Arg.(
      value & opt int Sidb.Defects.default_params.Sidb.Defects.trials
      & info [ "trials" ] ~docv:"N" ~doc:"Fabrication trials per tile.")
  in
  let seed_arg =
    Arg.(
      value & opt int Sidb.Defects.default_params.Sidb.Defects.seed
      & info [ "seed" ] ~docv:"N" ~doc:"RNG seed (results are reproducible).")
  in
  let missing_arg =
    Arg.(
      value & opt int Sidb.Defects.default_params.Sidb.Defects.missing
      & info [ "missing" ] ~docv:"N" ~doc:"Missing-DB defects per trial.")
  in
  let extra_arg =
    Arg.(
      value & opt int Sidb.Defects.default_params.Sidb.Defects.extra
      & info [ "extra" ] ~docv:"N" ~doc:"Stray-DB defects per trial.")
  in
  let charged_arg =
    Arg.(
      value & opt int Sidb.Defects.default_params.Sidb.Defects.charged
      & info [ "charged" ] ~docv:"N" ~doc:"Charged point defects per trial.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one structured JSON object ($(b,fictionette-yield/1)) on \
             stdout instead of the textual report (also on hard errors).")
  in
  let min_yield_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-yield" ] ~docv:"Y"
          ~doc:
            "Yield threshold for the exit code: below it the command exits \
             2 (degraded), like $(b,check).  Defaults to 1.0 when replaying \
             a fixed $(b,--defects) map and 0.0 for Monte-Carlo estimation.")
  in
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let action name engine deadline conflicts jobs trials seed missing extra
      charged defects json min_yield =
    apply_jobs jobs;
    let emit_error msg =
      if json then
        Printf.printf
          "{ \"schema\": \"fictionette-yield/1\", \"benchmark\": \"%s\", \
           \"error\": \"%s\" }\n"
          (json_escape name) (json_escape msg)
    in
    match load_defect_map defects with
    | Error e ->
        emit_error e;
        Format.eprintf "error: %s@." e;
        1
    | Ok defect_map -> (
        match
          Core.Flow.run_benchmark
            ~options:
              {
                (options_of engine false false) with
                Core.Flow.check_equivalence = false;
                apply_library = false;
              }
            ?defect_map
            ~budget:(budget_of deadline conflicts)
            name
        with
        | Error f ->
            emit_error (Core.Flow.error_message f);
            report_failure f
        | Ok result -> (
            match defect_map with
            | Some map ->
                (* Fixed-map replay: the defect-aware flow kept the layout
                   in the map's absolute lattice frame. *)
                let r =
                  Bestagon.Yield.under_map map result.Core.Flow.gate_layout
                in
                let threshold = Option.value min_yield ~default:1.0 in
                let ok = r.Bestagon.Yield.map_yield >= threshold in
                if json then
                  Printf.printf
                    "{ \"schema\": \"fictionette-yield/1\", \"benchmark\": \
                     \"%s\", \"mode\": \"replay\", \"defects\": %d, \
                     \"simulated_tiles\": %d, \"skipped_tiles\": %d, \
                     \"failed_tiles\": %d, \"yield\": %.6f, \"min_yield\": \
                     %.6f, \"ok\": %b }\n"
                    (json_escape name)
                    (Sidb.Defect_map.size map)
                    r.Bestagon.Yield.map_simulated r.Bestagon.Yield.map_skipped
                    r.Bestagon.Yield.failed_tiles r.Bestagon.Yield.map_yield
                    threshold ok
                else Format.printf "%a" Bestagon.Yield.pp_map_report r;
                if ok then 0 else 2
            | None ->
                let params =
                  { Sidb.Defects.missing; extra; charged; trials; seed }
                in
                let y =
                  Bestagon.Yield.of_layout ~params result.Core.Flow.gate_layout
                in
                let threshold = Option.value min_yield ~default:0.0 in
                let ok = y.Bestagon.Yield.layout_yield >= threshold in
                if json then
                  Printf.printf
                    "{ \"schema\": \"fictionette-yield/1\", \"benchmark\": \
                     \"%s\", \"mode\": \"monte-carlo\", \"trials\": %d, \
                     \"seed\": %d, \"simulated_tiles\": %d, \
                     \"skipped_tiles\": %d, \"yield\": %.6f, \"min_yield\": \
                     %.6f, \"ok\": %b }\n"
                    (json_escape name) trials seed y.Bestagon.Yield.simulated_tiles
                    y.Bestagon.Yield.skipped_tiles y.Bestagon.Yield.layout_yield
                    threshold ok
                else Format.printf "%a" Bestagon.Yield.pp y;
                if ok then 0 else 2))
  in
  let term =
    Term.(
      const action $ bench_arg $ engine_arg $ deadline_arg
      $ conflict_budget_arg $ jobs_arg $ trials_arg $ seed_arg $ missing_arg
      $ extra_arg $ charged_arg $ defects_arg $ json_arg $ min_yield_arg)
  in
  Cmd.v
    (Cmd.info "yield"
       ~doc:
         "Estimate per-gate and layout operational yield under randomized \
          atomic defects (missing/stray DBs, charged point defects), or — \
          with $(b,--defects) — replay one fixed scanned defect map over a \
          layout designed for that surface.  Exit codes match $(b,check): \
          0 ok, 2 degraded yield, 1 hard error.")
    term

let design_cmd =
  let bench_arg =
    let doc = "Benchmark name (see $(b,fictionette list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let action name engine deadline conflicts jobs paranoid no_rewrite no_ha sqd
      show_layout zones defects_path =
    apply_jobs jobs;
    match Sidb.Defect_map.load defects_path with
    | Error e ->
        Format.eprintf "error: %s@." e;
        1
    | Ok map -> (
        let options = options_of engine no_rewrite no_ha in
        let run ?defect_map () =
          Core.Flow.run_benchmark ~options ~paranoid ?defect_map
            ~budget:(budget_of deadline conflicts)
            name
        in
        Format.printf "defect map: %d defect(s) (%d charged)@."
          (Sidb.Defect_map.size map)
          (List.length (Sidb.Defect_map.charged_sites map));
        (* Reference point: the same flow ignoring the map, replayed on
           the dirty surface. *)
        let oblivious_yield =
          match run () with
          | Error f ->
              Format.printf "oblivious design failed: %s@."
                (Core.Flow.error_message f);
              None
          | Ok r ->
              let rep =
                Bestagon.Yield.under_map map r.Core.Flow.gate_layout
              in
              Format.printf
                "oblivious: %d/%d tile(s) operational under the map \
                 (yield %.3f)@."
                (rep.Bestagon.Yield.map_simulated
                - rep.Bestagon.Yield.failed_tiles)
                rep.Bestagon.Yield.map_simulated rep.Bestagon.Yield.map_yield;
              Some rep.Bestagon.Yield.map_yield
        in
        match run ~defect_map:map () with
        | Error f -> report_failure f
        | Ok result ->
            let rep =
              Bestagon.Yield.under_map map result.Core.Flow.gate_layout
            in
            Format.printf
              "defect-aware: %d/%d tile(s) operational under the map \
               (yield %.3f)@."
              (rep.Bestagon.Yield.map_simulated
              - rep.Bestagon.Yield.failed_tiles)
              rep.Bestagon.Yield.map_simulated rep.Bestagon.Yield.map_yield;
            (match oblivious_yield with
            | Some oy ->
                Format.printf "aware vs oblivious yield: %.3f vs %.3f (%s)@."
                  rep.Bestagon.Yield.map_yield oy
                  (if rep.Bestagon.Yield.map_yield > oy then "improved"
                   else if rep.Bestagon.Yield.map_yield >= oy then "no worse"
                   else "WORSE")
            | None -> ());
            let extra_checks =
              if rep.Bestagon.Yield.failed_tiles = 0 then []
              else
                [
                  Printf.sprintf
                    "defect replay: %d/%d tile(s) not operational"
                    rep.Bestagon.Yield.failed_tiles
                    rep.Bestagon.Yield.map_simulated;
                ]
            in
            report ~extra_checks result sqd show_layout zones)
  in
  let term =
    Term.(
      const action $ bench_arg $ engine_arg $ deadline_arg
      $ conflict_budget_arg $ jobs_arg $ paranoid_arg $ no_rewrite_arg
      $ no_ha_arg $ sqd_arg $ show_layout_arg $ zones_arg $ defects_req_arg)
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:
         "Defect-aware physical design on a scanned surface: run the flow \
          avoiding the tiles blocked by the $(b,--defects) map, replay the \
          map over the result, and compare against the defect-oblivious \
          layout on the same surface.  Exits 0 when the aware layout is \
          fully operational under the map, 2 on degraded yield, 1 when no \
          feasible placement exists.")
    term

let synth_cmd =
  let bench_arg =
    let doc = "Benchmark name (see $(b,fictionette list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let stats_arg =
    let doc =
      "Print the aggregated synthesis statistics (cut enumeration, \
       rewriting, NPN cache hit rates, technology mapping) to stderr as \
       one stable line."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Use the pre-overhaul exhaustive cut enumeration instead of \
       priority cuts (the mapped netlist is identical; see $(b,bench \
       logic))."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let action name stats exhaustive =
    match Logic.Benchmarks.find name with
    | exception Not_found ->
        Format.eprintf "error: unknown benchmark %S@." name;
        1
    | b ->
        let config =
          if exhaustive then Logic.Cuts.exhaustive_config
          else Logic.Cuts.default_config
        in
        let db = Logic.Npn_db.create () in
        let ntk = b.Logic.Benchmarks.build () in
        let cut_stats =
          Logic.Cuts.stats (Logic.Cuts.enumerate ~config ntk)
        in
        (* Accumulate per-round rewrite statistics over the same fixpoint
           iteration the flow performs. *)
        let rec fixpoint ntk acc rounds =
          if rounds = 0 then (ntk, acc)
          else
            let ntk', s = Logic.Rewrite.rewrite ~cut_config:config ~db ntk in
            let acc =
              {
                s with
                Logic.Rewrite.candidates =
                  acc.Logic.Rewrite.candidates + s.Logic.Rewrite.candidates;
                replaced = acc.Logic.Rewrite.replaced + s.Logic.Rewrite.replaced;
                size_before = acc.Logic.Rewrite.size_before;
              }
            in
            if s.Logic.Rewrite.size_after >= s.Logic.Rewrite.size_before then
              (ntk', acc)
            else fixpoint ntk' acc (rounds - 1)
        in
        let size0 = Logic.Network.num_gates ntk in
        let rewritten, rw =
          fixpoint ntk
            {
              Logic.Rewrite.candidates = 0;
              replaced = 0;
              size_before = size0;
              size_after = size0;
            }
            4
        in
        let mapped, map_stats = Logic.Tech_map.map rewritten in
        let l1, l2, misses = Logic.Npn.cache_stats () in
        if stats then
          Format.eprintf
            "synth %s: cuts %a | rewrite %a | npn l1=%d l2=%d miss=%d | map %a@."
            name Logic.Cuts.pp_stats cut_stats Logic.Rewrite.pp_stats rw l1 l2
            misses Logic.Tech_map.pp_stats map_stats;
        Format.printf "%s: %d gates -> %d mapped nodes@." name
          (Logic.Network.num_gates ntk)
          (Logic.Mapped.num_nodes mapped);
        0
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Run logic synthesis only (cut rewriting to fixpoint, then \
          technology mapping) on a built-in benchmark.  With $(b,--stats) \
          the cut-enumeration, rewriting, NPN-cache and mapping counters \
          are printed to stderr as one stable line.")
    Term.(const action $ bench_arg $ stats_arg $ exhaustive_arg)

let check_cmd =
  let bench_arg =
    let doc = "Benchmark name (see $(b,fictionette list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let stats_arg =
    let doc =
      "Print the aggregated SAT solver statistics (conflicts, \
       propagations, restarts, learned/deleted clauses, mean LBD, \
       simplify subsumed/strengthened/eliminated/vivified counters) to \
       stderr as one stable line."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let action name engine deadline conflicts jobs stats json =
    apply_jobs jobs;
    if json then
      run_json ~paranoid:true ~source:(Serve.Protocol.Benchmark name) ~engine
        ~deadline ~conflicts ~no_rewrite:false ~no_ha:false
    else
    match
      Core.Flow.run_benchmark
        ~options:{ Core.Flow.default_options with engine }
        ~paranoid:true
        ~budget:(budget_of deadline conflicts)
        name
    with
    | Error f -> report_failure f
    | Ok result -> (
        if stats then
          Format.eprintf "solver %s: %a@." name Sat.Solver.pp_stats
            result.Core.Flow.diagnostics.Core.Flow.solver_stats;
        Format.printf "%a" Core.Flow.pp_summary result;
        List.iter
          (fun c -> Format.printf "check passed: %s@." c)
          result.Core.Flow.checks;
        match check_failures result with
        | [] ->
            Format.printf "all checks passed@.";
            0
        | fails ->
            List.iter (fun m -> Format.eprintf "check failed: %s@." m) fails;
            2)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the flow in paranoid mode: every stage boundary is \
          cross-checked, every exact-engine refutation is proof-checked, \
          and the equivalence certificate is replayed through the \
          independent DRAT checker.  Exits 0 only when every check \
          passes (2 on a soft check failure, 1 on a hard one).")
    Term.(
      const action $ bench_arg $ engine_arg $ deadline_arg
      $ conflict_budget_arg $ jobs_arg $ stats_arg $ json_arg)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix-domain socket at $(docv) (connections \
             handled sequentially) instead of stdin/stdout.")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Accept $(b,chaos) fault-injection fields in requests \
             (injected worker crashes and mid-request cancellations).  \
             For testing the server's fault isolation; never enable in \
             real service.")
  in
  let ceiling_arg =
    Arg.(
      value
      & opt deadline_conv 60.
      & info [ "timeout-ceiling" ] ~docv:"SECONDS"
          ~doc:
            "Server-wide budget ceiling: every request's $(b,timeout_ms) \
             is clamped to this (also the default when absent).")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Batch jobs beyond $(docv) are shed as $(b,overloaded).")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Transient-failure retries per job (each steps down the \
             engine degradation ladder).")
  in
  let action socket chaos ceiling max_batch max_retries jp =
    if max_batch < 1 || max_retries < 0 then begin
      Format.eprintf "error: --max-batch must be >= 1, --max-retries >= 0@.";
      1
    end
    else begin
      apply_jobs jp;
      let jobs, _ = jp in
      let config =
        {
          Serve.Server.default_config with
          Serve.Server.chaos;
          max_timeout_ms = ceiling *. 1000.;
          max_batch;
          max_retries;
          jobs;
        }
      in
      let server = Serve.Server.create ~config () in
      (match socket with
      | None -> Serve.Server.serve_channels server stdin stdout
      | Some path ->
          Format.eprintf "fictionette: serving on %s@." path;
          Serve.Server.serve_socket server ~path);
      0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident design server: a JSON-lines service (one \
          request object per line on stdin, one response per line on \
          stdout; see DESIGN.md section 13) accepting $(b,design), \
          $(b,check), $(b,simulate), $(b,yield), $(b,domain), \
          $(b,batch), $(b,stats), $(b,ping), and $(b,shutdown) \
          requests.  Every request runs \
          under its own budget; worker crashes become structured errors; \
          batches are admission-controlled; results are memoized across \
          requests.")
    Term.(
      const action $ socket_arg $ chaos_arg $ ceiling_arg $ max_batch_arg
      $ max_retries_arg $ jobs_arg)

let main =
  let doc = "Design automation for silicon dangling bond logic" in
  Cmd.group
    (Cmd.info "fictionette" ~version:"0.1" ~doc)
    [ run_cmd; verilog_cmd; design_cmd; check_cmd; synth_cmd; list_cmd;
      table1_cmd; gates_cmd; simulate_cmd; yield_cmd; serve_cmd ]

let () = exit (Cmd.eval' main)
