(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index) and provides
   Bechamel micro-benchmarks of the major algorithms.

     dune exec bench/main.exe             # all tables and figures
     dune exec bench/main.exe -- table1   # a single experiment
     dune exec bench/main.exe -- perf     # Bechamel micro-benchmarks
     dune exec bench/main.exe -- ablation # design-choice ablations *)

module D = Hexlib.Direction
module M = Logic.Mapped
module L = Sidb.Lattice

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: layout data for the benchmark suite                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: generated layout data (paper values in parentheses)";
  Format.printf "%-14s %-12s %-14s %-18s %-4s %s@." "Name" "w x h = A"
    "SiDBs" "nm^2" "eq" "time";
  let rows = Core.Table1.generate () in
  List.iter2
    (fun row (pname, (pw, ph, psidbs, pnm2)) ->
      match row with
      | Error e -> Format.printf "%-14s FAILED: %s@." pname e
      | Ok r ->
          Format.printf
            "%-14s %dx%-2d=%-3d (%dx%d=%d) %4d (%4d) %9.2f (%9.2f) %-4s %5.1fs@."
            r.Core.Table1.name r.Core.Table1.width r.Core.Table1.height
            r.Core.Table1.area_tiles pw ph (pw * ph) r.Core.Table1.sidbs
            psidbs r.Core.Table1.area_nm2 pnm2
            (if r.Core.Table1.equivalent then "eq" else "??")
            r.Core.Table1.runtime_s)
    rows Core.Table1.paper_rows;
  let exact_dims =
    List.fold_left2
      (fun acc row (_, (pw, ph, _, _)) ->
        match row with
        | Ok r when r.Core.Table1.width = pw && r.Core.Table1.height = ph ->
            acc + 1
        | _ -> acc)
      0 rows Core.Table1.paper_rows
  in
  Format.printf
    "@.%d/14 layouts match the paper's aspect ratio exactly; throughput is 1/1 by construction (row clocking balances all paths).@."
    exact_dims

(* ------------------------------------------------------------------ *)
(* Fig. 1c: the Y-shaped OR gate, Huff-style presence/absence inputs   *)
(* ------------------------------------------------------------------ *)

let fig1c () =
  section
    "Fig. 1c: OR-gate ground states with Huff et al.'s input encoding (mu- = -0.28 eV)";
  let tile =
    Layout.Tile.Gate
      { fn = M.Or2; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  match Bestagon.Library.validation_structure tile with
  | None -> Format.printf "no OR structure@."
  | Some s ->
      (* Huff-style I/O: logic 1 = perturber present (near site), logic
         0 = perturber absent entirely. *)
      let huff_structure =
        {
          s with
          Sidb.Bdl.inputs =
            Array.map
              (fun driver -> { driver with Sidb.Bdl.far = [] })
              s.Sidb.Bdl.inputs;
        }
      in
      let model = Sidb.Model.huff_or in
      let report =
        Sidb.Bdl.check ~model huff_structure ~spec:(fun i ->
            [| i.(0) || i.(1) |])
      in
      List.iter
        (fun row ->
          Format.printf "  inputs %s: E0 = %.4f eV, output reads %s (expect %s)@."
            (String.concat ""
               (List.map (fun b -> if b then "1" else "0")
                  (Array.to_list row.Sidb.Bdl.assignment)))
            row.Sidb.Bdl.ground_energy
            (match row.Sidb.Bdl.observed with
            | obs :: _ -> (
                match obs.(0) with
                | Some true -> "1"
                | Some false -> "0"
                | None -> "?")
            | [] -> "?")
            (String.concat ""
               (List.map (fun b -> if b then "1" else "0")
                  (Array.to_list row.Sidb.Bdl.expected))))
        report.Sidb.Bdl.rows;
      Format.printf "  gate %s under presence/absence inputs@."
        (if report.Sidb.Bdl.functional then "operates correctly"
         else "mis-reads some rows (motivating the paper's near/far refinement)");
      (* The same gate under the paper's near/far encoding. *)
      let near_far =
        Sidb.Bdl.check ~model:Sidb.Model.default s ~spec:(fun i ->
            [| i.(0) || i.(1) |])
      in
      Format.printf "  same tile with the paper's near/far encoding: %s@."
        (if near_far.Sidb.Bdl.functional then "operational" else "broken")

(* ------------------------------------------------------------------ *)
(* Fig. 2: clocking by charge population modulation                    *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Fig. 2: four-phase clocking pipeline";
  Format.printf
    "zone phases cycle hold/release/relax/switch; signal position over time@.";
  Format.printf "(8 zones in a row-clocked wire, X = zone holding the signal):@.";
  for step = 0 to 7 do
    Format.printf "  t=%d  " step;
    for zone = 0 to 7 do
      if (step - zone) mod 4 = 0 && step >= zone then Format.printf "X"
      else Format.printf "."
    done;
    Format.printf "@."
  done;
  Format.printf "@.legal transitions: ";
  for z = 0 to 3 do
    Format.printf "%d->%d " z ((z + 1) mod 4)
  done;
  Format.printf "@.";
  (* External potential deactivates a region: a charged wire loses its
     electrons when the clock field lifts the local potential. *)
  let sites = [| L.site 0 0 0; L.site 1 0 0 |] in
  let active = Sidb.Charge_system.create Sidb.Model.default sites in
  let deactivated =
    Sidb.Charge_system.create ~v_ext:[| 0.5; 0.5 |] Sidb.Model.default sites
  in
  let count sys =
    match (Sidb.Ground_state.exhaustive sys).Sidb.Ground_state.states with
    | occ :: _ -> Array.fold_left (fun a b -> if b then a + 1 else a) 0 occ
    | [] -> 0
  in
  Format.printf
    "@.charge-population modulation: %d electron(s) when active, %d when the clock field raises the local potential by 0.5 eV@."
    (count active) (count deactivated)

(* ------------------------------------------------------------------ *)
(* Fig. 3: Y-shaped gates on Cartesian vs hexagonal grids              *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Fig. 3: topology fit of Y-shaped gates";
  Format.printf
    "A Y-shaped SiDB gate has two inputs at the top at +-60 degrees and one output at the bottom.@.@.";
  Format.printf
    "Cartesian grid: each tile has 4 orthogonal neighbors (N/E/S/W).  A Y-gate's@.input ports point towards NW and NE - neither is a Cartesian neighbor, so two@.stacked Y-gates cannot connect without distorting the demonstrated gate shape.@.@.";
  Format.printf
    "Hexagonal (odd-r, pointy-top): every tile's NW and NE borders face in-grid@.neighbors, and SW/SE carry outputs.  All sixteen Bestagon port configurations@.used by the physical design are realizable:@.";
  let count = ref 0 in
  List.iter
    (fun tile ->
      match Bestagon.Library.implement tile with
      | Ok _ -> incr count
      | Error _ -> ())
    ([
       Layout.Tile.Pi { name = "x"; out = D.South_east };
       Layout.Tile.Pi { name = "x"; out = D.South_west };
       Layout.Tile.Po { name = "y"; inp = D.North_west };
       Layout.Tile.Po { name = "y"; inp = D.North_east };
       Layout.Tile.Wire { segments = [ (D.North_west, D.South_east) ] };
       Layout.Tile.Wire { segments = [ (D.North_west, D.South_west) ] };
       Layout.Tile.Wire { segments = [ (D.North_east, D.South_west) ] };
       Layout.Tile.Wire { segments = [ (D.North_east, D.South_east) ] };
       Layout.Tile.Fanout
         { inp = D.North_west; outs = [ D.South_west; D.South_east ] };
       Layout.Tile.Fanout
         { inp = D.North_east; outs = [ D.South_west; D.South_east ] };
     ]
    @ List.concat_map
        (fun fn ->
          [
            Layout.Tile.Gate
              {
                fn;
                ins = [ D.North_west; D.North_east ];
                outs = [ D.South_east ];
              };
            Layout.Tile.Gate
              {
                fn;
                ins = [ D.North_west; D.North_east ];
                outs = [ D.South_west ];
              };
          ])
        [ M.And2; M.Or2; M.Xor2 ]);
  Format.printf "  %d/16 configurations implemented by the library@." !count;
  (* And a two-level tree of Y-gates placed and routed on the hexagonal
     grid, which is exactly what the Cartesian grid cannot host. *)
  let ntk = Logic.Network.create () in
  let a = Logic.Network.pi ntk "a"
  and b = Logic.Network.pi ntk "b"
  and c = Logic.Network.pi ntk "c"
  and d = Logic.Network.pi ntk "d" in
  Logic.Network.po ntk "y"
    (Logic.Network.or_ ntk
       (Logic.Network.and_ ntk a b)
       (Logic.Network.and_ ntk c d));
  match Core.Flow.run ntk with
  | Ok result ->
      Format.printf "@.two-level Y-gate tree on the hexagonal grid:@.%s@."
        (Layout.Render.layout result.Core.Flow.gate_layout)
  | Error f -> Format.printf "flow failed: %s@." (Core.Flow.error_message f)

(* ------------------------------------------------------------------ *)
(* Fig. 4: tile template and super-tiles                               *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Fig. 4: Bestagon tile template and super-tile dimensions";
  Format.printf
    "standard tile: %d x %d lattice sites = %.2f nm x %.2f nm@."
    Bestagon.Geometry.tile_columns (2 * Bestagon.Geometry.tile_rows)
    Layout.Supertile.tile_width_nm Layout.Supertile.tile_height_nm;
  Format.printf "Huff et al.'s OR gate: ~5 nm x 6 nm (30 nm^2), well below@.";
  Format.printf "the %.0f nm minimum metal pitch of 7 nm lithography [54],@."
    Layout.Supertile.default_metal_pitch_nm;
  Format.printf "hence %d tile rows share each clocking electrode.@.@."
    (Layout.Supertile.rows_per_zone ());
  (* Render the 2-in-1-out template: stub dots S, canvas window '.'. *)
  let scaffold =
    Bestagon.Scaffold.make
      ~in_ports:[ D.North_west; D.North_east ]
      ~out_ports:[ D.South_east ] ()
  in
  Format.printf "2-in-1-out template (S = standard wire dot, . = canvas):@.";
  let (n0, m0), (n1, m1) = scaffold.Bestagon.Scaffold.canvas_window in
  for m = 0 to Bestagon.Geometry.tile_rows - 1 do
    let line = Buffer.create 70 in
    for n = 0 to Bestagon.Geometry.tile_columns - 1 do
      let has_dot =
        List.exists
          (fun (s : L.site) -> s.L.n = n && s.L.m = m)
          scaffold.Bestagon.Scaffold.stub_dots
      in
      if has_dot then Buffer.add_char line 'S'
      else if n >= n0 && n <= n1 && m >= m0 && m <= m1 then
        Buffer.add_char line '.'
      else Buffer.add_char line ' '
    done;
    Format.printf "  |%s|@." (Buffer.contents line)
  done

(* ------------------------------------------------------------------ *)
(* Fig. 5: simulation of the Bestagon gates                            *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section
    "Fig. 5: exact ground-state validation of Bestagon gates (mu- = -0.32 eV, eps_r = 5.6, lambda_TF = 5 nm)";
  let gate2 fn =
    Layout.Tile.Gate
      { fn; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  let tiles =
    List.map (fun fn -> (M.fn_name fn, gate2 fn))
      [ M.Or2; M.And2; M.Nor2; M.Nand2; M.Xor2; M.Xnor2 ]
    @ [
        ("INV/diag",
         Layout.Tile.Gate
           { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_east ] });
        ("INV/str",
         Layout.Tile.Gate
           { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_west ] });
        ("wire/diag",
         Layout.Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
        ("wire/str",
         Layout.Tile.Wire { segments = [ (D.North_west, D.South_west) ] });
        ("fanout",
         Layout.Tile.Fanout
           { inp = D.North_west; outs = [ D.South_west; D.South_east ] });
        ("crossing",
         Layout.Tile.Wire
           {
             segments =
               [ (D.North_west, D.South_east); (D.North_east, D.South_west) ];
           });
        ("HA",
         Layout.Tile.Gate
           {
             fn = M.Ha;
             ins = [ D.North_west; D.North_east ];
             outs = [ D.South_west; D.South_east ];
           });
      ]
  in
  List.iter
    (fun (name, tile) ->
      match
        ( Bestagon.Library.validation_structure tile,
          Bestagon.Library.tile_spec tile )
      with
      | Some s, Some spec ->
          let report = Sidb.Bdl.check s ~spec in
          let rows =
            String.concat " "
              (List.map
                 (fun row ->
                   Printf.sprintf "%s->%s"
                     (String.concat ""
                        (List.map (fun b -> if b then "1" else "0")
                           (Array.to_list row.Sidb.Bdl.assignment)))
                     (match row.Sidb.Bdl.observed with
                     | obs :: _ ->
                         String.concat ""
                           (List.map
                              (function
                                | Some true -> "1"
                                | Some false -> "0"
                                | None -> "?")
                              (Array.to_list obs))
                     | [] -> "?"))
                 report.Sidb.Bdl.rows)
          in
          Format.printf "  %-10s %-18s %s@." name
            (if report.Sidb.Bdl.functional then "operational"
             else "NOT operational")
            rows
      | _ -> Format.printf "  %-10s (no structure)@." name)
    tiles;
  Format.printf
    "@.(The two-output tiles are structural designs pending a successful design run;@. see EXPERIMENTS.md for the boundary-bias analysis.)@."

(* ------------------------------------------------------------------ *)
(* Fig. 6: the par_check layout                                        *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig. 6: synthesized par_check layout (row clocking, verified)";
  match Core.Flow.run_benchmark "par_check" with
  | Error f -> Format.printf "flow failed: %s@." (Core.Flow.error_message f)
  | Ok result ->
      Format.printf "%a@." Core.Flow.pp_summary result;
      Format.printf "@.%s@."
        (Layout.Render.flow result.Core.Flow.gate_layout);
      (match Core.Flow.export_sqd result ~path:"par_check.sqd" () with
      | Ok () -> Format.printf "wrote par_check.sqd@."
      | Error e -> Format.printf "sqd export failed: %s@." e)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: XAG vs AIG as the logic representation";
  Format.printf "%-14s %-16s %-16s@." "Name" "XAG gates/area" "AIG gates/area";
  Format.printf "(rewriting disabled for both, so the AIG cannot be re-XAG-ified)@.";
  List.iter
    (fun name ->
      let b = Logic.Benchmarks.find name in
      let run ntk =
        let options = { Core.Flow.default_options with rewrite = false } in
        match Core.Flow.run ~options ntk with
        | Ok r ->
            let st = Layout.Gate_layout.stats r.Core.Flow.gate_layout in
            Printf.sprintf "%d / %dx%d" (Logic.Network.num_gates r.Core.Flow.optimized)
              st.Layout.Gate_layout.bounding_width
              st.Layout.Gate_layout.bounding_height
        | Error _ -> "failed"
      in
      let xag = run (b.Logic.Benchmarks.build ()) in
      let aig =
        run (Logic.Network.to_aig (b.Logic.Benchmarks.build ()))
      in
      Format.printf "%-14s %-16s %-16s@." name xag aig)
    [ "xor2"; "par_gen"; "par_check"; "xor5_r1"; "c17" ];
  section "Ablation: cut rewriting on/off (optimized gate counts)";
  Format.printf "%-14s %-10s %-10s@." "Name" "raw" "rewritten";
  List.iter
    (fun name ->
      let b = Logic.Benchmarks.find name in
      let raw = Logic.Network.num_gates (b.Logic.Benchmarks.build ()) in
      let rewritten =
        Logic.Network.num_gates
          (Logic.Rewrite.rewrite_to_fixpoint (b.Logic.Benchmarks.build ()))
      in
      Format.printf "%-14s %-10d %-10d@." name raw rewritten)
    [ "xor5_majority"; "majority"; "majority_5_r1"; "cm82a_5" ];
  section "Ablation: exact vs scalable physical design";
  Format.printf "%-14s %-18s %-18s@." "Name" "exact (tiles, s)" "scalable (tiles, s)";
  List.iter
    (fun name ->
      let run engine =
        let t0 = Unix.gettimeofday () in
        let options = { Core.Flow.default_options with engine } in
        match Core.Flow.run_benchmark ~options name with
        | Ok r ->
            let st = Layout.Gate_layout.stats r.Core.Flow.gate_layout in
            Printf.sprintf "%3d in %5.2fs" st.Layout.Gate_layout.area_tiles
              (Unix.gettimeofday () -. t0)
        | Error _ -> "failed"
      in
      Format.printf "%-14s %-18s %-18s@." name
        (run (Core.Flow.Exact Physdesign.Exact.default_config))
        (run Core.Flow.Scalable))
    [ "xor2"; "par_gen"; "mux21"; "par_check"; "c17" ];
  section "Ablation: half-adder fusion";
  let ha_demo fuse =
    let ntk = Logic.Network.create () in
    let a = Logic.Network.pi ntk "a" and b = Logic.Network.pi ntk "b" in
    Logic.Network.po ntk "s" (Logic.Network.xor_ ntk a b);
    Logic.Network.po ntk "c" (Logic.Network.and_ ntk a b);
    let options = { Core.Flow.default_options with fuse_half_adders = fuse; rewrite = false } in
    match Core.Flow.run ~options ntk with
    | Ok r ->
        let st = Layout.Gate_layout.stats r.Core.Flow.gate_layout in
        Printf.sprintf "%d gate tiles, %dx%d" st.Layout.Gate_layout.gate_tiles
          st.Layout.Gate_layout.bounding_width
          st.Layout.Gate_layout.bounding_height
    | Error f -> "failed: " ^ Core.Flow.error_message f
  in
  Format.printf "half adder with fusion:    %s@." (ha_demo true);
  Format.printf "half adder without fusion: %s@." (ha_demo false);
  section "Ablation: clocking scheme legality (re-clocking a Row layout)";
  (match Core.Flow.run_benchmark "par_check" with
  | Ok r ->
      List.iter
        (fun scheme ->
          let relocked =
            Layout.Gate_layout.with_clocking r.Core.Flow.gate_layout
              (Layout.Gate_layout.Scheme scheme)
          in
          let violations =
            List.length
              (List.filter
                 (fun v -> v.Layout.Design_rules.rule = "clocking")
                 (Layout.Design_rules.check relocked))
          in
          Format.printf "  %-9s %d clocking violations@."
            (Layout.Clocking.to_string scheme)
            violations)
        [ Layout.Clocking.Row; Layout.Clocking.Columnar;
          Layout.Clocking.Two_d_d_wave; Layout.Clocking.Use ]
  | Error f -> Format.printf "flow failed: %s@." (Core.Flow.error_message f));
  section "Ablation: input encoding (near/far vs presence/absence)";
  Format.printf
    "see fig1c: the paper's near/far refinement keeps upstream influence in both logic states.@."

(* ------------------------------------------------------------------ *)
(* Extensions: operational domain and critical temperature             *)
(* (the future work called out in the paper's Sec. 6)                  *)
(* ------------------------------------------------------------------ *)

let extensions () =
  section
    "Extension: operational domain of the OR tile (paper Sec. 6 future work)";
  let tile =
    Layout.Tile.Gate
      { fn = M.Or2; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  (match
     (Bestagon.Library.validation_structure tile, Bestagon.Library.tile_spec tile)
   with
  | Some s, Some spec ->
      let dom =
        Sidb.Operational_domain.sweep
          ~x_axis:
            {
              Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
              from_value = -0.40;
              to_value = -0.20;
              steps = 11;
            }
          ~y_axis:
            {
              Sidb.Operational_domain.parameter = Sidb.Operational_domain.Lambda_tf;
              from_value = 3.0;
              to_value = 8.0;
              steps = 6;
            }
          s ~spec
      in
      Format.printf
        "x: mu- in [-0.40, -0.20] eV (11 steps), y: lambda_TF in [3, 8] nm (6 steps)@.('#' = operational; the paper's parameters are mu- = -0.32, lambda_TF = 5):@.%s@.operational fraction: %.2f@."
        (Sidb.Operational_domain.to_ascii dom)
        dom.Sidb.Operational_domain.operational_fraction;
      section "Extension: critical temperature of the validated tiles";
      Format.printf
        "Boltzmann-weighted probability of a correct read-out (worst input row):@.";
      List.iter
        (fun t ->
          Format.printf "  P(correct at %3.0f K) = %.4f@." t
            (Sidb.Temperature.correctness_probability s ~spec ~temperature_k:t
               ()))
        [ 4.; 77.; 300. ];
      Format.printf
        "  critical temperature (90%% confidence): %.0f K@."
        (Sidb.Temperature.critical_temperature s ~spec);
      Format.printf
        "@.The stochastic designer optimizes logical correctness only, so several@.designs sit sub-meV above competing states: functionally exact at T = 0 but@.thermally fragile.  A margin-aware design objective is the natural next step@.(and exactly the 'operational domain evaluation' the paper lists as future work).@."
  | _ -> Format.printf "no OR structure@.")

(* ------------------------------------------------------------------ *)
(* Defect-injection yield and budgeted-flow resilience                 *)
(* ------------------------------------------------------------------ *)

let defects () =
  section
    "Extension: operational yield under randomized atomic defects (fixed seed)";
  let or_tile =
    Layout.Tile.Gate
      { fn = M.Or2; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  (match
     ( Bestagon.Library.validation_structure or_tile,
       Bestagon.Library.tile_spec or_tile )
   with
  | Some s, Some spec ->
      Format.printf "single OR tile, 30 trials per configuration:@.";
      List.iter
        (fun (label, params) ->
          let r = Sidb.Defects.operational_yield params s ~spec in
          Format.printf "  %-34s %a@." label Sidb.Defects.pp_yield_report r)
        [
          ("no defects (sanity: 100%)",
           { Sidb.Defects.missing = 0; extra = 0; charged = 0; trials = 30; seed = 7 });
          ("1 missing DB",
           { Sidb.Defects.missing = 1; extra = 0; charged = 0; trials = 30; seed = 7 });
          ("1 stray DB",
           { Sidb.Defects.missing = 0; extra = 1; charged = 0; trials = 30; seed = 7 });
          ("1 charged point defect",
           { Sidb.Defects.missing = 0; extra = 0; charged = 1; trials = 30; seed = 7 });
          ("1 missing + 1 stray + 1 charged",
           { Sidb.Defects.missing = 1; extra = 1; charged = 1; trials = 30; seed = 7 });
        ]
  | _ -> Format.printf "no OR structure@.");
  Format.printf "@.whole xor2 layout, 1 missing DB per tile trial, 15 trials:@.";
  match Core.Flow.run_benchmark "xor2" with
  | Error f -> Format.printf "flow failed: %s@." (Core.Flow.error_message f)
  | Ok result ->
      let params =
        { Sidb.Defects.default_params with Sidb.Defects.trials = 15; seed = 7 }
      in
      let y = Bestagon.Yield.of_layout ~params result.Core.Flow.gate_layout in
      Format.printf "%a" Bestagon.Yield.pp y

let resilience () =
  section "Resilience: budgeted flow with degradation to the scalable engine";
  List.iter
    (fun (name, deadline) ->
      let t0 = Unix.gettimeofday () in
      let options =
        {
          Core.Flow.default_options with
          engine = Core.Flow.Exact_with_fallback Physdesign.Exact.default_config;
        }
      in
      match
        Core.Flow.run_benchmark ~options
          ~budget:(Core.Budget.of_seconds deadline)
          name
      with
      | Ok r ->
          let st = Layout.Gate_layout.stats r.Core.Flow.gate_layout in
          Format.printf
            "  %-10s deadline %4.1fs: %s engine, %dx%d tiles, %d degradation(s), %s, %.2fs@."
            name deadline
            (match r.Core.Flow.diagnostics.Core.Flow.engine_used with
            | Some e -> Core.Flow.engine_used_to_string e
            | None -> "?")
            st.Layout.Gate_layout.bounding_width
            st.Layout.Gate_layout.bounding_height
            (List.length r.Core.Flow.diagnostics.Core.Flow.degradations)
            (match r.Core.Flow.equivalence with
            | Some v -> Verify.Equivalence.verdict_to_string v
            | None -> "unverified")
            (Unix.gettimeofday () -. t0)
      | Error f ->
          Format.printf "  %-10s deadline %4.1fs: FAILED (%s)@." name deadline
            (Core.Flow.error_message f))
    [ ("mux21", 1.0); ("mux21", 60.0); ("par_check", 2.0) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let open Toolkit in
  let or_structure =
    match
      Bestagon.Library.validation_structure
        (Layout.Tile.Gate
           {
             fn = M.Or2;
             ins = [ D.North_west; D.North_east ];
             outs = [ D.South_east ];
           })
    with
    | Some s -> s
    | None -> assert false
  in
  let or_sites = Sidb.Bdl.sites_for or_structure [| true; false |] in
  let mapped_c17 =
    fst (Logic.Tech_map.map (Logic.Benchmarks.c17 ()))
  in
  let tests =
    [
      (* One Test.make per experiment driver (Table 1 and each figure
         pipeline stage). *)
      Test.make ~name:"table1:flow-xor2" (Staged.stage (fun () ->
          match Core.Flow.run_benchmark "xor2" with
          | Ok _ -> ()
          | Error _ -> ()));
      Test.make ~name:"table1:flow-c17" (Staged.stage (fun () ->
          match Core.Flow.run_benchmark "c17" with
          | Ok _ -> ()
          | Error _ -> ()));
      Test.make ~name:"fig5:ground-state-or" (Staged.stage (fun () ->
          ignore
            (Sidb.Ground_state.branch_and_bound
               (Sidb.Charge_system.create Sidb.Model.default or_sites))));
      Test.make ~name:"fig5:simanneal-or" (Staged.stage (fun () ->
          ignore
            (Sidb.Simanneal.run
               ~params:
                 {
                   Sidb.Simanneal.default_params with
                   instances = 4;
                   sweeps = 100;
                 }
               (Sidb.Charge_system.create Sidb.Model.default or_sites))));
      Test.make ~name:"flow:rewrite-cm82a" (Staged.stage (fun () ->
          ignore (Logic.Rewrite.rewrite_to_fixpoint (Logic.Benchmarks.cm82a_5 ()))));
      Test.make ~name:"flow:tech-map-c17" (Staged.stage (fun () ->
          ignore (Logic.Tech_map.map (Logic.Benchmarks.c17 ()))));
      Test.make ~name:"flow:exact-pnr-c17" (Staged.stage (fun () ->
          ignore
            (Physdesign.Exact.place_and_route
               (Physdesign.Netlist.of_mapped mapped_c17))));
      Test.make ~name:"flow:scalable-pnr-c17" (Staged.stage (fun () ->
          ignore
            (Physdesign.Scalable.place_and_route
               (Physdesign.Netlist.of_mapped mapped_c17))));
      Test.make ~name:"fig6:equivalence-par_check" (Staged.stage (fun () ->
          ignore
            (Verify.Equivalence.check
               (Logic.Benchmarks.par_check ())
               (Logic.Benchmarks.par_check ()))));
      Test.make ~name:"sat:php-7-6" (Staged.stage (fun () ->
          let s = Sat.Solver.create () in
          let v =
            Array.init 7 (fun _ -> Array.init 6 (fun _ -> Sat.Solver.new_var s))
          in
          for p = 0 to 6 do
            Sat.Solver.add_clause s (Array.to_list v.(p))
          done;
          for h = 0 to 5 do
            for p1 = 0 to 6 do
              for p2 = p1 + 1 to 6 do
                Sat.Solver.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
              done
            done
          done;
          ignore (Sat.Solver.solve s)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              let t, unit =
                if est > 1e9 then (est /. 1e9, "s")
                else if est > 1e6 then (est /. 1e6, "ms")
                else if est > 1e3 then (est /. 1e3, "us")
                else (est, "ns")
              in
              Format.printf "  %-28s %8.2f %s/run@." name t unit
          | _ -> Format.printf "  %-28s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Simulation benchmark harness: BENCH_sim.json                        *)
(* ------------------------------------------------------------------ *)

let sim_smoke = ref false
let sim_out = ref "BENCH_sim.json"

type sim_row = {
  sim_workload : string;
  sim_jobs : int;
  sim_wall : float;
  sim_speedup : float option;  (** vs the jobs=1 run of the same workload. *)
  sim_identical : bool option;  (** result bit-identical to jobs=1. *)
  sim_config : (string * string) list;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_sim_json ~cores ~notes rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fictionette-bench-sim/1\",\n";
  add "  \"host\": {\"cores\": %d, \"ocaml\": \"%s\", \"os\": \"%s\", \"word_size\": %d},\n"
    cores (json_escape Sys.ocaml_version) (json_escape Sys.os_type)
    Sys.word_size;
  add "  \"default_jobs\": %d,\n" (Parallel.Pool.default_jobs ());
  add "  \"smoke\": %b,\n" !sim_smoke;
  add "  \"notes\": \"%s\",\n" (json_escape notes);
  add "  \"results\": [\n";
  List.iteri
    (fun i r ->
      add "    {\"workload\": \"%s\", \"jobs\": %d, \"wall_s\": %.6f"
        (json_escape r.sim_workload) r.sim_jobs r.sim_wall;
      (match r.sim_speedup with
      | Some s -> add ", \"speedup_vs_serial\": %.3f" s
      | None -> add ", \"speedup_vs_serial\": null");
      (match r.sim_identical with
      | Some b -> add ", \"identical_to_serial\": %b" b
      | None -> add ", \"identical_to_serial\": null");
      add ", \"config\": {%s}}%s\n"
        (String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                  (json_escape v))
              r.sim_config))
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  add "  ]\n}\n";
  let oc = open_out !sim_out in
  output_string oc (Buffer.contents buf);
  close_out oc

let sim () =
  section "Simulation benchmark harness (ground-state / sweep / yield / flow)";
  let smoke = !sim_smoke in
  let cores = Domain.recommended_domain_count () in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  Format.printf
    "host cores: %d; default jobs: %d; job counts exercised: %s%s@." cores
    (Parallel.Pool.default_jobs ())
    (String.concat ", " (List.map string_of_int jobs_list))
    (if smoke then " (smoke)" else "");
  let rows = ref [] in
  let mismatch = ref false in
  let add r =
    rows := r :: !rows;
    (match r.sim_identical with
    | Some false ->
        mismatch := true;
        Format.printf "  MISMATCH: %s at jobs=%d differs from serial@."
          r.sim_workload r.sim_jobs
    | _ -> ());
    Format.printf "  %-12s jobs=%d  %8.3fs%s@." r.sim_workload r.sim_jobs
      r.sim_wall
      (match r.sim_speedup with
      | Some s -> Printf.sprintf "  %.2fx vs serial" s
      | None -> "")
  in
  let or_tile =
    Layout.Tile.Gate
      { fn = M.Or2; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  let structure, spec =
    match
      ( Bestagon.Library.validation_structure or_tile,
        Bestagon.Library.tile_spec or_tile )
    with
    | Some s, Some spec -> (s, spec)
    | _ -> failwith "no OR structure in the Bestagon library"
  in
  (* Ground state: the three exact engines over all four OR input rows. *)
  let assignments = [ [| false; false |]; [| false; true |];
                      [| true; false |]; [| true; true |] ] in
  let systems =
    List.map
      (fun a ->
        Sidb.Charge_system.create Sidb.Model.default
          (Sidb.Bdl.sites_for structure a))
      assignments
  in
  let nsites =
    List.fold_left (fun acc s -> max acc (Sidb.Charge_system.size s)) 0 systems
  in
  let repeats = if smoke then 3 else 20 in
  let gs_engines =
    (if nsites <= 20 then [ ("exhaustive", Sidb.Ground_state.exhaustive ?max_states:None) ]
     else [])
    @ [
        ("branch_and_bound", fun sys -> Sidb.Ground_state.branch_and_bound sys);
        ("pruned", fun sys -> Sidb.Ground_state.pruned sys);
      ]
  in
  let gs_energy = ref nan in
  List.iter
    (fun (name, engine) ->
      let result, wall =
        timed (fun () ->
            let e = ref 0.0 in
            for _ = 1 to repeats do
              e :=
                List.fold_left
                  (fun acc sys -> acc +. (engine sys).Sidb.Ground_state.energy)
                  0.0 systems
            done;
            !e)
      in
      let identical =
        if Float.is_nan !gs_energy then begin
          gs_energy := result;
          None
        end
        else Some (abs_float (result -. !gs_energy) <= 1e-9)
      in
      add
        {
          sim_workload = "ground_state/" ^ name;
          sim_jobs = 1;
          sim_wall = wall;
          sim_speedup = None;
          sim_identical = identical;
          sim_config =
            [
              ("structure", "OR2");
              ("max_sites", string_of_int nsites);
              ("rows", "4");
              ("repeats", string_of_int repeats);
            ];
        })
    gs_engines;
  (* Operational-domain sweep at each job count, checked against serial. *)
  let xsteps, ysteps = if smoke then (5, 3) else (11, 6) in
  let x_axis =
    { Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
      from_value = -0.40; to_value = -0.20; steps = xsteps }
  and y_axis =
    { Sidb.Operational_domain.parameter = Sidb.Operational_domain.Lambda_tf;
      from_value = 3.0; to_value = 8.0; steps = ysteps }
  in
  let sweep_serial = ref None in
  let sweep_serial_wall = ref 0.0 in
  List.iter
    (fun jobs ->
      let dom, wall =
        timed (fun () ->
            Sidb.Operational_domain.sweep ~jobs ~x_axis ~y_axis structure ~spec)
      in
      let speedup, identical =
        match !sweep_serial with
        | None ->
            sweep_serial := Some dom;
            sweep_serial_wall := wall;
            (None, None)
        | Some serial ->
            ( Some (!sweep_serial_wall /. wall),
              Some
                (dom.Sidb.Operational_domain.samples
                 = serial.Sidb.Operational_domain.samples) )
      in
      add
        {
          sim_workload = "sweep";
          sim_jobs = jobs;
          sim_wall = wall;
          sim_speedup = speedup;
          sim_identical = identical;
          sim_config =
            [
              ("structure", "OR2");
              ("grid", Printf.sprintf "%dx%d" xsteps ysteps);
              ("engine", "pruned");
            ];
        })
    jobs_list;
  (* Defect-injection yield over the xor2 layout at each job count. *)
  let layout =
    let options =
      { Core.Flow.default_options with check_equivalence = false;
        apply_library = false }
    in
    match Core.Flow.run_benchmark ~options "xor2" with
    | Ok r -> r.Core.Flow.gate_layout
    | Error f -> failwith (Core.Flow.error_message f)
  in
  let trials = if smoke then 8 else 25 in
  let params =
    { Sidb.Defects.default_params with Sidb.Defects.trials; seed = 7 }
  in
  let yield_serial = ref None in
  let yield_serial_wall = ref 0.0 in
  List.iter
    (fun jobs ->
      let y, wall =
        timed (fun () -> Bestagon.Yield.of_layout ~jobs ~params layout)
      in
      let speedup, identical =
        match !yield_serial with
        | None ->
            yield_serial := Some y;
            yield_serial_wall := wall;
            (None, None)
        | Some serial ->
            ( Some (!yield_serial_wall /. wall),
              Some
                (y.Bestagon.Yield.layout_yield
                 = serial.Bestagon.Yield.layout_yield
                && y.Bestagon.Yield.per_tile = serial.Bestagon.Yield.per_tile)
            )
      in
      add
        {
          sim_workload = "yield";
          sim_jobs = jobs;
          sim_wall = wall;
          sim_speedup = speedup;
          sim_identical = identical;
          sim_config =
            [
              ("benchmark", "xor2");
              ("trials_per_tile", string_of_int trials);
              ("engine", "pruned");
            ];
        })
    jobs_list;
  (* Brute-force equivalence (miter row scan) at each job count. *)
  let eq_bench = if smoke then "xor2" else "par_check" in
  let eq_build () =
    (Logic.Benchmarks.find eq_bench).Logic.Benchmarks.build ()
  in
  let eq_reps = if smoke then 10 else 200 in
  let eq_serial = ref None in
  let eq_serial_wall = ref 0.0 in
  List.iter
    (fun jobs ->
      let ntk1 = eq_build () and ntk2 = eq_build () in
      let verdict, wall =
        timed (fun () ->
            let v = ref Verify.Equivalence.Equivalent in
            for _ = 1 to eq_reps do
              v := Verify.Equivalence.check_brute_force ~jobs ntk1 ntk2
            done;
            !v)
      in
      let speedup, identical =
        match !eq_serial with
        | None ->
            eq_serial := Some verdict;
            eq_serial_wall := wall;
            (None, None)
        | Some serial ->
            (Some (!eq_serial_wall /. wall), Some (verdict = serial))
      in
      add
        {
          sim_workload = "equivalence";
          sim_jobs = jobs;
          sim_wall = wall;
          sim_speedup = speedup;
          sim_identical = identical;
          sim_config =
            [ ("benchmark", eq_bench); ("repeats", string_of_int eq_reps) ];
        })
    jobs_list;
  (* Size-vs-time scaling: the pruned exact engine against quicksim on
     random systems of growing size.  Pruned rows stop at the flow's
     exact-engine limit or once a single solve crosses the wall cap;
     quicksim rows continue to 200+ sites.  On co-solvable sizes the
     quicksim row's speedup field is pruned_wall / quicksim_wall and
     identical_to_serial records the exact-energy match. *)
  let scaling_sizes =
    if smoke then [ 16; 24; 32 ] else [ 16; 24; 32; 40; 60; 100; 150; 200; 240 ]
  in
  let scaling_system n =
    (* Constant site density: the box area grows with n. *)
    let rng = Random.State.make [| 1234; n |] in
    let w = max 14 (int_of_float (ceil (sqrt (float_of_int n *. 12.)))) in
    let h = max 7 (w / 2) in
    let rec fresh acc k =
      if k = 0 then acc
      else
        let s =
          Sidb.Lattice.site (Random.State.int rng w) (Random.State.int rng h)
            (Random.State.int rng 2)
        in
        if List.exists (Sidb.Lattice.equal s) acc then fresh acc k
        else fresh (s :: acc) (k - 1)
    in
    Sidb.Charge_system.create Sidb.Model.default
      (Array.of_list (fresh [] n))
  in
  let exact_cap_s = if smoke then 0.5 else 5.0 in
  let exact_alive = ref true in
  List.iter
    (fun n ->
      let sys = scaling_system n in
      let exact =
        if !exact_alive && n <= Core.Flow.exact_site_limit then begin
          let r, wall = timed (fun () -> Sidb.Ground_state.pruned sys) in
          if wall > exact_cap_s then exact_alive := false;
          add
            {
              sim_workload = "scaling/pruned";
              sim_jobs = 1;
              sim_wall = wall;
              sim_speedup = None;
              sim_identical = None;
              sim_config = [ ("sites", string_of_int n) ];
            };
          Some (r.Sidb.Ground_state.energy, wall)
        end
        else None
      in
      let r, wall = timed (fun () -> Sidb.Ground_state.quicksim sys) in
      let speedup, identical =
        match exact with
        | Some (e, exact_wall) ->
            ( Some (exact_wall /. wall),
              Some (Float.abs (r.Sidb.Ground_state.energy -. e) <= 1e-9) )
        | None -> (None, None)
      in
      add
        {
          sim_workload = "scaling/quicksim";
          sim_jobs = 1;
          sim_wall = wall;
          sim_speedup = speedup;
          sim_identical = identical;
          sim_config =
            [
              ("sites", string_of_int n);
              ("speedup_vs", "pruned");
              ("samples",
               string_of_int Sidb.Ground_state.default_quicksim.Sidb.Ground_state.samples);
            ];
        })
    scaling_sizes;
  (* Whole-layout ground state: a complete placed-and-routed Table-1
     design flattened into one charge system — the workload only the
     heuristic engine can touch (the exact engines' structured refusal
     is pinned alongside). *)
  let wl_bench = if smoke then "xor2" else "c17" in
  (match
     Core.Flow.run_benchmark
       ~options:
         { Core.Flow.default_options with check_equivalence = false;
           apply_library = false }
       wl_bench
   with
  | Error f -> failwith (Core.Flow.error_message f)
  | Ok result ->
      let refused =
        match Core.Flow.simulate_layout ~engine:Sidb.Bdl.Pruned result with
        | Error _ -> true
        | Ok s -> s.Core.Flow.sim_sites <= Core.Flow.exact_site_limit
      in
      let sim, wall =
        timed (fun () ->
            match
              Core.Flow.simulate_layout
                ~engine:(Sidb.Bdl.Quicksim Sidb.Ground_state.default_quicksim)
                result
            with
            | Ok s -> s
            | Error e -> failwith e)
      in
      add
        {
          sim_workload = "whole_layout";
          sim_jobs = 1;
          sim_wall = wall;
          sim_speedup = None;
          sim_identical = Some (sim.Core.Flow.sim_valid && refused);
          sim_config =
            [
              ("benchmark", wl_bench);
              ("sites", string_of_int sim.Core.Flow.sim_sites);
              ("tiles", string_of_int sim.Core.Flow.sim_tiles);
              ("energy_ev", Printf.sprintf "%.6f" sim.Core.Flow.sim_energy);
              ("critical_temperature_k",
               Printf.sprintf "%.1f" sim.Core.Flow.sim_critical_temperature_k);
              ("exact_engines_refuse", string_of_bool refused);
            ];
        });
  (* Whole flow, once, serial: the end-to-end baseline the parallel
     loops feed into. *)
  let flow_bench = if smoke then "xor2" else "par_check" in
  let flow_ok, flow_wall =
    timed (fun () ->
        match Core.Flow.run_benchmark flow_bench with
        | Ok _ -> true
        | Error _ -> false)
  in
  add
    {
      sim_workload = "flow";
      sim_jobs = 1;
      sim_wall = flow_wall;
      sim_speedup = None;
      sim_identical = None;
      sim_config =
        [ ("benchmark", flow_bench); ("ok", string_of_bool flow_ok) ];
    };
  let notes =
    (if cores < 4 then
       Printf.sprintf
         "host exposes %d core(s): the adaptive dispatcher caps workers at \
          the core count, so jobs>1 runs here take the serial path and \
          speedup_vs_serial is ~1.0 by construction (the former 0.2-0.4x \
          oversubscription slowdowns are gone); the determinism contract \
          (parallel results bit-identical to serial) is still exercised by \
          the test suite with the adaptive dispatch disabled."
         cores
     else
       "speedup_vs_serial compares each jobs=N wall time against the jobs=1 \
        run of the same workload.")
    ^ "  scaling/quicksim rows instead compare against the pruned exact \
       engine on the same system (speedup_vs: pruned), with \
       identical_to_serial recording the exact-energy match; whole_layout's \
       identical_to_serial records physically-valid states plus the exact \
       engines' structured refusal."
  in
  let rows = List.rev !rows in
  write_sim_json ~cores ~notes rows;
  Format.printf "@.wrote %s (%d result rows)@." !sim_out (List.length rows);
  if !mismatch then begin
    Format.eprintf "parallel results differ from serial — failing@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* SAT benchmark harness: BENCH_sat.json                               *)
(* ------------------------------------------------------------------ *)

(* Times the SAT core old-vs-new on the workloads that actually drive
   it: exact P&R on Table-1 benchmarks and equivalence miters.  Both
   configurations live in one binary ({!Sat.Solver.legacy_config} vs
   {!Sat.Solver.default_config}); "legacy" also reverts the P&R
   instances to the pre-overhaul cardinality encodings and disables
   symmetry breaking, so it reproduces the pre-PR pipeline end to end.
   All runs are serial (jobs=1): the reported speedups are single-thread
   algorithmic gains, not parallelism. *)

let sat_out = ref "BENCH_sat.json"
let sat_portfolio = ref false

type sat_row = {
  sat_workload : string;
  sat_cfg : string;  (* "legacy" | "tuned" *)
  sat_wall : float;
  sat_verdict : string;
  sat_speedup : float option;  (* tuned rows: legacy wall / tuned wall *)
  sat_verdict_match : bool option;  (* tuned rows: verdict = legacy's *)
  sat_stats : Sat.Solver.stats;
  sat_proof : string option;  (* "accepted" / "rejected" when certified *)
}

(* One portfolio race: a mult-class miter solved by a k-wide
   {!Sat.Portfolio} at a given worker count, compared against the tuned
   single-solver verdict on the same clauses. *)
type pf_row = {
  pf_workload : string;
  pf_jobs : int;
  pf_k : int;
  pf_wall : float;
  pf_verdict : string;
  pf_match_single : bool;
  pf_speedup : float;  (* tuned single wall / portfolio wall *)
  pf_winner : int option;
  pf_winner_config : string option;
  pf_proof : string option;  (* "accepted" / "rejected" when certified *)
  pf_counters : Sat.Simplify.counters;
}

let with_solver_config cfg f =
  let saved = Sat.Solver.global_config () in
  Sat.Solver.set_global_config cfg;
  Fun.protect ~finally:(fun () -> Sat.Solver.set_global_config saved) f

let sat_netlist_of name =
  let b = Logic.Benchmarks.find name in
  (* Rewriting itself pins its synthesis solver, so the netlist is
     identical under either global configuration; build it once. *)
  let ntk = Logic.Rewrite.rewrite_to_fixpoint (b.Logic.Benchmarks.build ()) in
  Physdesign.Netlist.of_mapped (fst (Logic.Tech_map.map ntk))

let sat_exact_verdict = function
  | Ok r ->
      Printf.sprintf "sat %dx%d" r.Physdesign.Exact.width
        r.Physdesign.Exact.height
  | Error (Physdesign.Exact.No_layout _) -> "no_layout"
  | Error (Physdesign.Exact.Out_of_budget _) -> "out_of_budget"
  | Error (Physdesign.Exact.Certification_failed _) -> "certification_failed"

(* An n-bit array multiplier over {!Logic.Network}; [rev] accumulates
   the partial-product rows in the opposite order.  The miter of the two
   orders is the classic hard-but-small equivalence instance: verdicts
   stay identical across solver configurations while the solver does
   real work (mult8 is ~700k conflicts on the legacy configuration). *)
let sat_multiplier n rev =
  let module N = Logic.Network in
  let ntk = N.create () in
  let a = Array.init n (fun i -> N.pi ntk (Printf.sprintf "a%d" i)) in
  let b = Array.init n (fun i -> N.pi ntk (Printf.sprintf "b%d" i)) in
  let zero = N.const0 in
  let full_add x y cin =
    let s1 = N.xor_ ntk x y in
    let s = N.xor_ ntk s1 cin in
    let c = N.or_ ntk (N.and_ ntk x y) (N.and_ ntk s1 cin) in
    (s, c)
  in
  let width = 2 * n in
  let acc = Array.make width zero in
  let rows = List.init n (fun i -> i) in
  let rows = if rev then List.rev rows else rows in
  List.iter
    (fun i ->
      let carry = ref zero in
      for j = 0 to n - 1 do
        let pp = N.and_ ntk a.(j) b.(i) in
        let s, c1 = full_add acc.(i + j) pp !carry in
        acc.(i + j) <- s;
        carry := c1
      done;
      let k = ref (i + n) in
      while !carry <> zero && !k < width do
        let s, c = full_add acc.(!k) !carry zero in
        acc.(!k) <- s;
        carry := c;
        incr k
      done)
    rows;
  Array.iteri (fun i s -> N.po ntk (Printf.sprintf "p%d" i) s) acc;
  ntk

(* Build and solve the equivalence miter of two networks directly (same
   construction as {!Verify.Equivalence.check}) so the solver handle —
   its statistics and its proof — stays accessible. *)
let sat_miter ~certify ntk1 ntk2 =
  let f = Sat.Cnf.create () in
  if certify then Sat.Solver.enable_proof (Sat.Cnf.solver f);
  let pi_table = Hashtbl.create 16 in
  let pi_literals name =
    match Hashtbl.find_opt pi_table name with
    | Some l -> l
    | None ->
        let l = Sat.Cnf.fresh f in
        Hashtbl.replace pi_table name l;
        l
  in
  let outs1 = Verify.Equivalence.network_to_cnf f ntk1 ~pi_literals in
  let outs2 = Verify.Equivalence.network_to_cnf f ntk2 ~pi_literals in
  let diffs =
    List.map
      (fun (name, l1) ->
        match List.assoc_opt name outs2 with
        | Some l2 -> Sat.Cnf.xor_ f l1 l2
        | None -> failwith ("miter: unmatched output " ^ name))
      outs1
  in
  Sat.Cnf.add_clause f diffs;
  (f, Sat.Cnf.solver f)

let write_sat_json ~cores ~portfolio rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fictionette-bench-sat/1\",\n";
  add
    "  \"host\": {\"cores\": %d, \"ocaml\": \"%s\", \"os\": \"%s\", \
     \"word_size\": %d},\n"
    cores (json_escape Sys.ocaml_version) (json_escape Sys.os_type)
    Sys.word_size;
  add "  \"jobs\": 1,\n";
  add "  \"smoke\": %b,\n" !sim_smoke;
  add
    "  \"notes\": \"single-thread comparison: legacy = pre-overhaul solver \
     (no binary specialization, no blocking literals, activity-based \
     reduction with full watch rebuilds) and pre-overhaul pairwise/commander \
     encodings; tuned = glue-based CDCL with binary implication lists, \
     blocking literals, sequential-counter encodings and guarded symmetry \
     breaking.  speedup_vs_legacy = legacy wall / tuned wall on the same \
     workload.\",\n";
  add "  \"results\": [\n";
  List.iteri
    (fun i r ->
      let st = r.sat_stats in
      add "    {\"workload\": \"%s\", \"config\": \"%s\", \"wall_s\": %.6f"
        (json_escape r.sat_workload) (json_escape r.sat_cfg) r.sat_wall;
      add ", \"verdict\": \"%s\"" (json_escape r.sat_verdict);
      (match r.sat_speedup with
      | Some s -> add ", \"speedup_vs_legacy\": %.3f" s
      | None -> add ", \"speedup_vs_legacy\": null");
      (match r.sat_verdict_match with
      | Some b -> add ", \"verdict_matches_legacy\": %b" b
      | None -> add ", \"verdict_matches_legacy\": null");
      (match r.sat_proof with
      | Some p -> add ", \"proof\": \"%s\"" (json_escape p)
      | None -> add ", \"proof\": null");
      add
        ", \"stats\": {\"conflicts\": %d, \"decisions\": %d, \
         \"propagations\": %d, \"binary_propagations\": %d, \
         \"props_per_s\": %.0f, \"restarts\": %d, \"learned\": %d, \
         \"learned_binaries\": %d, \"deleted\": %d, \"reductions\": %d, \
         \"watch_compaction_scans\": %d, \"mean_lbd\": %.3f}}%s\n"
        st.Sat.Solver.conflicts st.Sat.Solver.decisions
        st.Sat.Solver.propagations st.Sat.Solver.binary_propagations
        (Sat.Solver.propagations_per_sec st)
        st.Sat.Solver.restarts st.Sat.Solver.learned_clauses
        st.Sat.Solver.learned_binaries st.Sat.Solver.deleted_clauses
        st.Sat.Solver.reductions st.Sat.Solver.watch_compaction_scans
        (Sat.Solver.mean_lbd st)
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  add "  ],\n";
  (match portfolio with
  | [] -> add "  \"portfolio\": null\n"
  | pf ->
      let wins = Hashtbl.create 8 in
      List.iter
        (fun r ->
          match r.pf_winner_config with
          | Some c ->
              Hashtbl.replace wins c
                (1 + Option.value ~default:0 (Hashtbl.find_opt wins c))
          | None -> ())
        pf;
      add "  \"portfolio\": {\n";
      add
        "    \"notes\": \"k diversified solver configurations race on one \
         Simplify-preprocessed instance (round-based, deterministic: lowest \
         definitive member index wins at any --jobs).  speedup_vs_single = \
         tuned single-solver wall / portfolio wall on identical clauses.  \
         Host caveat: this machine exposes a single core, so members \
         time-slice one domain and jobs>1 cannot show real parallel \
         speedup; wall times at jobs>1 measure scheduling overhead plus \
         any conflict-count win from configuration diversity, not \
         concurrency.\",\n";
      add "    \"wins\": {";
      let first = ref true in
      Hashtbl.iter
        (fun c n ->
          add "%s\"%s\": %d" (if !first then "" else ", ") (json_escape c) n;
          first := false)
        wins;
      add "},\n";
      add "    \"rows\": [\n";
      List.iteri
        (fun i r ->
          let c = r.pf_counters in
          add
            "      {\"workload\": \"%s\", \"jobs\": %d, \"k\": %d, \
             \"wall_s\": %.6f, \"verdict\": \"%s\", \
             \"verdict_matches_single\": %b, \"speedup_vs_single\": %.3f"
            (json_escape r.pf_workload) r.pf_jobs r.pf_k r.pf_wall
            (json_escape r.pf_verdict) r.pf_match_single r.pf_speedup;
          (match r.pf_winner with
          | Some w -> add ", \"winner\": %d" w
          | None -> add ", \"winner\": null");
          (match r.pf_winner_config with
          | Some wc -> add ", \"winner_config\": \"%s\"" (json_escape wc)
          | None -> add ", \"winner_config\": null");
          (match r.pf_proof with
          | Some p -> add ", \"proof\": \"%s\"" (json_escape p)
          | None -> add ", \"proof\": null");
          add
            ", \"simplify\": {\"subsumed\": %d, \"strengthened\": %d, \
             \"eliminated_vars\": %d, \"vivified\": %d}}%s\n"
            c.Sat.Simplify.subsumed c.Sat.Simplify.strengthened
            c.Sat.Simplify.eliminated_vars c.Sat.Simplify.vivified
            (if i = List.length pf - 1 then "" else ",")
        )
        pf;
      add "    ]\n";
      add "  }\n");
  add "}\n";
  let oc = open_out !sat_out in
  output_string oc (Buffer.contents buf);
  close_out oc

(* --- portfolio races: mult-class miters at several worker counts ----- *)
(* Each workload is solved once by the tuned single solver (the verdict
   and wall-time reference), then raced by a k=4 portfolio at every
   [jobs] value.  Verdict identity against the single solver is asserted
   on every race; the winner index must also be identical across [jobs]
   values (the portfolio's determinism guarantee).  The certified
   workload replays its refutation — Simplify trace + winner proof —
   through the independent DRAT checker against the original clauses. *)
let sat_portfolio_section ~smoke =
  Format.printf "@.  -- portfolio (k=4, shared Simplify inprocessing) --@.";
  let k = 4 in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let cases =
    if smoke then [ (4, true); (5, false) ]
    else [ (5, true); (6, false); (7, false); (8, false) ]
  in
  let rows = ref [] in
  let mismatch = ref false in
  List.iter
    (fun (n, certify) ->
      let workload = Printf.sprintf "equiv/mult%d" n in
      let ntk1 = sat_multiplier n false and ntk2 = sat_multiplier n true in
      let (single_verdict, nvars, clauses), single_wall =
        with_solver_config Sat.Solver.default_config (fun () ->
            timed (fun () ->
                let f, solver = sat_miter ~certify:false ntk1 ntk2 in
                let v = Sat.Solver.solve solver in
                (v, Sat.Cnf.num_vars f, Sat.Cnf.clauses f)))
      in
      Format.printf "  %-22s single %8.3fs  (reference)@." workload
        single_wall;
      let first_jobs = ref None in
      List.iter
        (fun jobs ->
          Parallel.Pool.set_default_jobs jobs;
          let p = Sat.Portfolio.create ~k ~certify ~nvars clauses in
          let verdict, wall = timed (fun () -> Sat.Portfolio.solve p) in
          Parallel.Pool.set_default_jobs 1;
          let verdict_str =
            match verdict with
            | Sat.Solver.Unsat -> "equivalent"
            | Sat.Solver.Sat -> "counterexample"
            | Sat.Solver.Unknown _ -> "undecided"
          in
          let matches = verdict = single_verdict in
          if not matches then (
            mismatch := true;
            Format.printf "  PORTFOLIO VERDICT MISMATCH on %s (jobs=%d)@."
              workload jobs);
          let winner = Sat.Portfolio.winner p in
          (match !first_jobs with
          | None -> first_jobs := Some (verdict_str, winner)
          | Some (v0, w0) ->
              if (verdict_str, winner) <> (v0, w0) then (
                mismatch := true;
                Format.printf
                  "  PORTFOLIO NONDETERMINISM on %s: jobs=%d disagrees with \
                   jobs=%d@."
                  workload jobs
                  (List.hd jobs_list)));
          let proof =
            match verdict with
            | Sat.Solver.Unsat when certify -> (
                match
                  Sat.Drat.check ~nvars ~clauses (Sat.Portfolio.proof p)
                with
                | Sat.Drat.Valid -> Some "accepted"
                | Sat.Drat.Invalid _ -> Some "rejected")
            | _ -> None
          in
          let row =
            {
              pf_workload = workload;
              pf_jobs = jobs;
              pf_k = k;
              pf_wall = wall;
              pf_verdict = verdict_str;
              pf_match_single = matches;
              pf_speedup = single_wall /. wall;
              pf_winner = winner;
              pf_winner_config = Option.map Sat.Portfolio.config_name winner;
              pf_proof = proof;
              pf_counters = Sat.Portfolio.counters p;
            }
          in
          rows := row :: !rows;
          Format.eprintf "portfolio %s jobs=%d: %a@." workload jobs
            Sat.Solver.pp_stats (Sat.Portfolio.stats p);
          Format.printf
            "  %-22s jobs=%d %8.3fs  %-12s  %.2fx vs single  winner %s%s@."
            workload jobs wall verdict_str (single_wall /. wall)
            (match row.pf_winner_config with Some c -> c | None -> "-")
            (match proof with Some p -> "  proof " ^ p | None -> ""))
        jobs_list)
    cases;
  let rows = List.rev !rows in
  let rejected = List.exists (fun r -> r.pf_proof = Some "rejected") rows in
  (rows, !mismatch, rejected)

let sat () =
  section "SAT benchmark harness (exact P&R + equivalence miters, jobs=1)";
  let smoke = !sim_smoke in
  let cores = Domain.recommended_domain_count () in
  let rows = ref [] in
  let mismatch = ref false in
  let best_speedup = ref 0.0 in
  let emit r =
    rows := r :: !rows;
    (match r.sat_verdict_match with
    | Some false ->
        mismatch := true;
        Format.printf "  VERDICT MISMATCH on %s@." r.sat_workload
    | _ -> ());
    (match r.sat_speedup with
    | Some s when s > !best_speedup -> best_speedup := s
    | _ -> ());
    Format.eprintf "solver %s/%s: %a@." r.sat_workload r.sat_cfg
      Sat.Solver.pp_stats r.sat_stats;
    Format.printf "  %-22s %-6s %8.3fs  %-12s%s%s@." r.sat_workload r.sat_cfg
      r.sat_wall r.sat_verdict
      (match r.sat_speedup with
      | Some s -> Printf.sprintf "  %.2fx vs legacy" s
      | None -> "")
      (match r.sat_proof with
      | Some p -> "  proof " ^ p
      | None -> "")
  in
  (* --- exact P&R, legacy vs tuned, certified ---------------------- *)
  let exact_benches =
    if smoke then [ "xor2"; "par_gen" ]
    else [ "xor2"; "xnor2"; "par_gen"; "mux21"; "par_check"; "t"; "c17" ]
  in
  List.iter
    (fun name ->
      let nl = sat_netlist_of name in
      let workload = "exact/" ^ name in
      let run ~legacy =
        let solver_cfg =
          if legacy then Sat.Solver.legacy_config else Sat.Solver.default_config
        in
        let config =
          {
            Physdesign.Exact.default_config with
            legacy_encoding = legacy;
            symmetry_breaking = not legacy;
            certify = true;
            jobs = Some 1;
          }
        in
        with_solver_config solver_cfg (fun () ->
            timed (fun () -> Physdesign.Exact.place_and_route ~config nl))
      in
      let legacy_res, legacy_wall = run ~legacy:true in
      let stats_of = function
        | Ok r -> r.Physdesign.Exact.stats
        | Error _ -> Sat.Solver.empty_stats
      in
      let proof_of = function
        | Ok r ->
            (* certify=true: every refuted candidate's UNSAT proof was
               accepted by the independent DRAT checker, or the search
               would have failed with Certification_failed. *)
            Some
              (Printf.sprintf "accepted (%d refutation(s))"
                 r.Physdesign.Exact.certified_refutations)
        | Error (Physdesign.Exact.Certification_failed _) -> Some "rejected"
        | Error _ -> None
      in
      emit
        {
          sat_workload = workload;
          sat_cfg = "legacy";
          sat_wall = legacy_wall;
          sat_verdict = sat_exact_verdict legacy_res;
          sat_speedup = None;
          sat_verdict_match = None;
          sat_stats = stats_of legacy_res;
          sat_proof = proof_of legacy_res;
        };
      let tuned_res, tuned_wall = run ~legacy:false in
      emit
        {
          sat_workload = workload;
          sat_cfg = "tuned";
          sat_wall = tuned_wall;
          sat_verdict = sat_exact_verdict tuned_res;
          sat_speedup = Some (legacy_wall /. tuned_wall);
          sat_verdict_match =
            Some (sat_exact_verdict tuned_res = sat_exact_verdict legacy_res);
          sat_stats = stats_of tuned_res;
          sat_proof = proof_of tuned_res;
        })
    exact_benches;
  (* --- equivalence miters, legacy vs tuned, DRAT-checked ----------- *)
  (* Benchmark-vs-rewritten miters are quick (repeated for measurable
     walls, proofs small enough to check); the multiplier miters are the
     heavyweight workloads (certification is skipped beyond mult5: a
     multi-100k-step RUP check would dwarf the solve itself). *)
  let eq_cases =
    let bench_vs_rewritten name =
      let b = Logic.Benchmarks.find name in
      ( "equiv/" ^ name,
        b.Logic.Benchmarks.build (),
        Logic.Rewrite.rewrite_to_fixpoint (b.Logic.Benchmarks.build ()),
        (if smoke then 5 else 25),
        true )
    and mult n certify =
      ( Printf.sprintf "equiv/mult%d" n,
        sat_multiplier n false,
        sat_multiplier n true,
        1,
        certify )
    in
    if smoke then [ bench_vs_rewritten "par_check"; mult 5 true ]
    else
      [
        bench_vs_rewritten "par_check";
        bench_vs_rewritten "xor5_majority";
        bench_vs_rewritten "c17";
        bench_vs_rewritten "cm82a_5";
        mult 5 true;
        mult 6 false;
        mult 7 false;
        mult 8 false;
      ]
  in
  List.iter
    (fun (workload, ntk1, ntk2, eq_reps, certify) ->
      let run cfg =
        with_solver_config cfg (fun () ->
            timed (fun () ->
                let last = ref None in
                for rep = 1 to eq_reps do
                  let f, solver =
                    sat_miter ~certify:(certify && rep = eq_reps) ntk1 ntk2
                  in
                  let v = Sat.Solver.solve solver in
                  if rep = eq_reps then last := Some (f, solver, v)
                done;
                match !last with Some x -> x | None -> assert false))
      in
      let row cfg_name ((f, solver, verdict), wall) legacy_row =
        let verdict_str =
          match verdict with
          | Sat.Solver.Unsat -> "equivalent"
          | Sat.Solver.Sat -> "counterexample"
          | Sat.Solver.Unknown _ -> "undecided"
        in
        let proof =
          match verdict with
          | Sat.Solver.Unsat when certify -> (
              match
                Sat.Drat.check ~nvars:(Sat.Cnf.num_vars f)
                  ~clauses:(Sat.Cnf.clauses f)
                  (Sat.Solver.proof solver)
              with
              | Sat.Drat.Valid -> Some "accepted"
              | Sat.Drat.Invalid _ -> Some "rejected")
          | _ -> None
        in
        {
          sat_workload = workload;
          sat_cfg = cfg_name;
          sat_wall = wall;
          sat_verdict = verdict_str;
          sat_speedup =
            (match legacy_row with
            | Some l -> Some (l.sat_wall /. wall)
            | None -> None);
          sat_verdict_match =
            (match legacy_row with
            | Some l -> Some (l.sat_verdict = verdict_str)
            | None -> None);
          sat_stats = Sat.Solver.stats solver;
          sat_proof = proof;
        }
      in
      let legacy_row = row "legacy" (run Sat.Solver.legacy_config) None in
      emit legacy_row;
      emit (row "tuned" (run Sat.Solver.default_config) (Some legacy_row)))
    eq_cases;
  let pf_rows, pf_mismatch, pf_rejected =
    if !sat_portfolio then sat_portfolio_section ~smoke else ([], false, false)
  in
  let rows = List.rev !rows in
  write_sat_json ~cores ~portfolio:pf_rows rows;
  Format.printf "@.wrote %s (%d result rows, %d portfolio rows); best \
                 speedup %.2fx@."
    !sat_out (List.length rows) (List.length pf_rows) !best_speedup;
  let rejected =
    pf_rejected || List.exists (fun r -> r.sat_proof = Some "rejected") rows
  in
  if rejected then Format.eprintf "a DRAT proof was rejected — failing@.";
  if !mismatch then
    Format.eprintf "legacy and tuned verdicts differ — failing@.";
  if pf_mismatch then
    Format.eprintf "portfolio verdicts diverged — failing@.";
  if !mismatch || pf_mismatch || rejected then exit 1

(* ------------------------------------------------------------------ *)
(* Logic-synthesis benchmark harness: BENCH_logic.json                 *)
(* ------------------------------------------------------------------ *)

(* Times the synthesis frontend (cut enumeration + rewriting + mapping)
   under the exhaustive baseline vs the priority-cut configuration on
   every Table-1 benchmark, asserting that both configurations produce
   node-for-node identical mapped netlists and that the results
   re-simulate against the source network.  The NPN database is warmed
   untimed so exact synthesis (identical work on both sides, pinned to
   its own solver configuration) does not dilute the comparison; all
   runs are serial. *)

let logic_out = ref "BENCH_logic.json"

type logic_row = {
  lg_bench : string;
  lg_cfg : string;  (* "exhaustive" | "priority" *)
  lg_wall : float;  (* per rep *)
  lg_reps : int;
  lg_speedup : float option;  (* priority rows: exhaustive wall / wall *)
  lg_identical : bool option;  (* priority rows: Mapped.equal vs exhaustive *)
  lg_gates_before : int;
  lg_gates_after : int;
  lg_mapped_gates : int;
  lg_cuts : Logic.Cuts.enum_stats;
  lg_npn : int * int * int;  (* cache-stat deltas over the timed reps *)
}

let write_logic_json ~cores rows ~largest ~largest_speedup =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fictionette-bench-logic/1\",\n";
  add
    "  \"host\": {\"cores\": %d, \"ocaml\": \"%s\", \"os\": \"%s\", \
     \"word_size\": %d},\n"
    cores (json_escape Sys.ocaml_version) (json_escape Sys.os_type)
    Sys.word_size;
  add "  \"jobs\": 1,\n";
  add "  \"smoke\": %b,\n" !sim_smoke;
  add
    "  \"notes\": \"single-thread comparison of the synthesis frontend: \
     exhaustive = pre-overhaul list-based cut enumeration, priority = \
     bounded priority cuts with interned truth tables and signature \
     dominance filtering.  Both configurations are asserted to produce \
     node-for-node identical mapped netlists (identical_netlist); \
     wall_per_rep_s covers rewrite_to_fixpoint + tech mapping with a \
     pre-warmed NPN database.  npn_cache counts canonize cache activity \
     during the timed reps.\",\n";
  add "  \"largest_workload\": \"%s\",\n" (json_escape largest);
  add "  \"largest_speedup_vs_exhaustive\": %.3f,\n" largest_speedup;
  add "  \"results\": [\n";
  List.iteri
    (fun i r ->
      let c = r.lg_cuts in
      let l1, l2, miss = r.lg_npn in
      add "    {\"benchmark\": \"%s\", \"config\": \"%s\", \
           \"wall_per_rep_s\": %.6f, \"reps\": %d"
        (json_escape r.lg_bench) (json_escape r.lg_cfg) r.lg_wall r.lg_reps;
      (match r.lg_speedup with
      | Some s -> add ", \"speedup_vs_exhaustive\": %.3f" s
      | None -> add ", \"speedup_vs_exhaustive\": null");
      (match r.lg_identical with
      | Some b -> add ", \"identical_netlist\": %b" b
      | None -> add ", \"identical_netlist\": null");
      add ", \"gates\": {\"before\": %d, \"after\": %d, \"mapped\": %d}"
        r.lg_gates_before r.lg_gates_after r.lg_mapped_gates;
      add
        ", \"cuts\": {\"nodes\": %d, \"pairs\": %d, \"kept\": %d, \
         \"sig_rejects\": %d}"
        c.Logic.Cuts.nodes c.Logic.Cuts.pairs c.Logic.Cuts.kept
        c.Logic.Cuts.sig_rejects;
      add
        ", \"npn_cache\": {\"l1_hits\": %d, \"l2_hits\": %d, \"misses\": \
         %d}}%s\n"
        l1 l2 miss
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  add "  ]\n}\n";
  let oc = open_out !logic_out in
  output_string oc (Buffer.contents buf);
  close_out oc

let logic () =
  section
    "Logic synthesis benchmark harness (cut enumeration + rewriting + \
     mapping, jobs=1)";
  let smoke = !sim_smoke in
  let cores = Domain.recommended_domain_count () in
  let rows = ref [] in
  let mismatch = ref false in
  let largest = ref "" in
  let largest_wall = ref 0.0 in
  let largest_speedup = ref 0.0 in
  let emit r =
    rows := r :: !rows;
    (match r.lg_identical with
    | Some false ->
        mismatch := true;
        Format.printf "  NETLIST MISMATCH on %s@." r.lg_bench
    | _ -> ());
    let l1, l2, miss = r.lg_npn in
    Format.printf
      "  %-14s %-10s %9.2fms  cuts %d/%d pairs  npn %d/%d/%d%s@." r.lg_bench
      r.lg_cfg (r.lg_wall *. 1e3) r.lg_cuts.Logic.Cuts.kept
      r.lg_cuts.Logic.Cuts.pairs l1 l2 miss
      (match r.lg_speedup with
      | Some s -> Printf.sprintf "  %.2fx vs exhaustive" s
      | None -> "")
  in
  List.iter
    (fun b ->
      let name = b.Logic.Benchmarks.name in
      let build = b.Logic.Benchmarks.build in
      let db = Logic.Npn_db.create () in
      let run_once config =
        let optimized =
          Logic.Rewrite.rewrite_to_fixpoint ~cut_config:config ~db (build ())
        in
        let mapped, _ = Logic.Tech_map.map optimized in
        (optimized, mapped)
      in
      (* Warm the NPN database untimed, then calibrate the rep count on
         a second, warm run (the first pays for exact synthesis of every
         NPN-class miss and would undercount the reps). *)
      let _, _ = timed (fun () -> run_once Logic.Cuts.default_config) in
      let _, warm_wall =
        timed (fun () -> run_once Logic.Cuts.default_config)
      in
      let reps =
        if smoke then 1
        else max 3 (min 500 (int_of_float (0.25 /. max 1e-5 warm_wall)))
      in
      let measure config =
        let npn0 = Logic.Npn.cache_stats () in
        let result = ref None in
        let (), wall =
          timed (fun () ->
              for _ = 1 to reps do
                result := Some (run_once config)
              done)
        in
        let l1a, l2a, ma = Logic.Npn.cache_stats ()
        and l1b, l2b, mb = npn0 in
        let opt, mapped =
          match !result with Some x -> x | None -> assert false
        in
        (opt, mapped, wall /. float_of_int reps,
         (l1a - l1b, l2a - l2b, ma - mb))
      in
      let cut_stats config =
        Logic.Cuts.stats (Logic.Cuts.enumerate ~config (build ()))
      in
      let x_opt, x_map, x_wall, x_npn =
        measure Logic.Cuts.exhaustive_config
      in
      let p_opt, p_map, p_wall, p_npn = measure Logic.Cuts.default_config in
      (* Identity and correctness gates. *)
      let identical = Logic.Mapped.equal p_map x_map in
      let specification = build () in
      (match Verify.Resim.check_rewrite ~specification ~optimized:p_opt with
      | Ok () -> ()
      | Error e ->
          mismatch := true;
          Format.printf "  RESIM FAILURE (rewrite) on %s: %s@." name e);
      (match Verify.Resim.check_mapping ~specification:p_opt ~mapped:p_map with
      | Ok () -> ()
      | Error e ->
          mismatch := true;
          Format.printf "  RESIM FAILURE (mapping) on %s: %s@." name e);
      let gates_before = Logic.Network.num_gates specification in
      let row cfg wall npn stats speedup id =
        {
          lg_bench = name;
          lg_cfg = cfg;
          lg_wall = wall;
          lg_reps = reps;
          lg_speedup = speedup;
          lg_identical = id;
          lg_gates_before = gates_before;
          lg_gates_after = Logic.Network.num_gates p_opt;
          lg_mapped_gates = Logic.Mapped.num_gates p_map;
          lg_cuts = stats;
          lg_npn = npn;
        }
      in
      ignore x_opt;
      emit
        (row "exhaustive" x_wall x_npn
           (cut_stats Logic.Cuts.exhaustive_config)
           None None);
      emit
        (row "priority" p_wall p_npn
           (cut_stats Logic.Cuts.default_config)
           (Some (x_wall /. p_wall))
           (Some identical));
      if x_wall > !largest_wall then begin
        largest_wall := x_wall;
        largest := name;
        largest_speedup := x_wall /. p_wall
      end)
    Logic.Benchmarks.all;
  let rows = List.rev !rows in
  write_logic_json ~cores rows ~largest:!largest
    ~largest_speedup:!largest_speedup;
  Format.printf
    "@.wrote %s (%d result rows); largest workload %s: %.2fx vs exhaustive@."
    !logic_out (List.length rows) !largest !largest_speedup;
  if !mismatch then begin
    Format.eprintf
      "priority and exhaustive synthesis results differ — failing@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Defect-aware physical design benchmark: BENCH_defects.json          *)
(* ------------------------------------------------------------------ *)

let defects_aware = ref false
let defects_out = ref "BENCH_defects.json"

type defect_row = {
  d_benchmark : string;
  d_severity : int;
  d_seed : int;
  d_charged : int;
  d_neutral : int;
  d_engine : string;
  d_oblivious_yield : float option;  (** [None]: oblivious flow failed. *)
  d_oblivious_wall : float;
  d_aware_yield : float option;  (** [None]: aware flow failed. *)
  d_aware_wall : float;
  d_aware_simulated : int;
  d_aware_failed : int;
  d_certified : int;  (** DRAT-checked refutations of the aware run. *)
  d_aware_ge : bool;  (** Aware yield >= oblivious yield on the same map. *)
  d_improved : bool;  (** Strictly better. *)
  d_failure : string option;  (** Structured failure message, if any. *)
}

let write_defects_json ~cores ~infeasible_msg ~infeasible_structured rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let improvements = List.length (List.filter (fun r -> r.d_improved) rows) in
  add "{\n";
  add "  \"schema\": \"fictionette-bench-defects/1\",\n";
  add
    "  \"host\": {\"cores\": %d, \"ocaml\": \"%s\", \"os\": \"%s\", \
     \"word_size\": %d},\n"
    cores (json_escape Sys.ocaml_version) (json_escape Sys.os_type)
    Sys.word_size;
  add "  \"smoke\": %b,\n" !sim_smoke;
  add "  \"aware_ge_oblivious\": %b,\n"
    (List.for_all (fun r -> r.d_aware_ge) rows);
  add "  \"strict_improvements\": %d,\n" improvements;
  add "  \"infeasible\": {\"structured_failure\": %b, \"message\": \"%s\"},\n"
    infeasible_structured (json_escape infeasible_msg);
  add "  \"results\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"benchmark\": \"%s\", \"severity\": %d, \"seed\": %d, \
         \"charged\": %d, \"neutral\": %d, \"engine\": \"%s\""
        (json_escape r.d_benchmark) r.d_severity r.d_seed r.d_charged
        r.d_neutral (json_escape r.d_engine);
      (match r.d_oblivious_yield with
      | Some y -> add ", \"oblivious_yield\": %.6f" y
      | None -> add ", \"oblivious_yield\": null");
      add ", \"oblivious_wall_s\": %.6f" r.d_oblivious_wall;
      (match r.d_aware_yield with
      | Some y -> add ", \"aware_yield\": %.6f" y
      | None -> add ", \"aware_yield\": null");
      add ", \"aware_wall_s\": %.6f" r.d_aware_wall;
      add ", \"aware_simulated_tiles\": %d, \"aware_failed_tiles\": %d"
        r.d_aware_simulated r.d_aware_failed;
      add ", \"certified_refutations\": %d" r.d_certified;
      add ", \"aware_ge_oblivious\": %b, \"improved\": %b" r.d_aware_ge
        r.d_improved;
      (match r.d_failure with
      | Some m -> add ", \"failure\": \"%s\"" (json_escape m)
      | None -> add ", \"failure\": null");
      add "}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n}\n";
  let oc = open_out !defects_out in
  output_string oc (Buffer.contents buf);
  close_out oc

let defects_bench () =
  section
    "Defect-aware physical design: aware-vs-oblivious yield on dirty surfaces";
  let smoke = !sim_smoke in
  let benchmarks =
    if smoke then [ "xor2"; "mux21" ]
    else
      [
        "xor2"; "xnor2"; "par_gen"; "mux21"; "par_check"; "xor5_r1";
        "xor5_majority"; "t"; "t_5"; "c17"; "majority"; "majority_5_r1";
        "cm82a_5"; "newtag";
      ]
  in
  let severities = if smoke then [ 1; 2 ] else [ 1; 2; 3 ] in
  (* Small rows run the exact engine under paranoid mode (every
     refutation DRAT-checked on the defective surface); the rest use
     the scalable engine, whose defect-aware placement is the
     production path for large circuits. *)
  let exact_rows = [ "xor2"; "xnor2"; "t" ] in
  let run_flow ?defect_map name =
    if List.mem name exact_rows then
      Core.Flow.run_benchmark
        ~options:
          {
            Core.Flow.default_options with
            engine = Core.Flow.Exact Physdesign.Exact.default_config;
          }
        ~paranoid:true ?defect_map name
    else
      Core.Flow.run_benchmark
        ~options:
          {
            Core.Flow.default_options with
            engine = Core.Flow.Scalable;
            check_equivalence = false;
            apply_library = false;
          }
        ?defect_map name
  in
  let rows = ref [] in
  List.iter
    (fun name ->
      let engine = if List.mem name exact_rows then "exact" else "scalable" in
      let oblivious, obl_wall = timed (fun () -> run_flow name) in
      match oblivious with
      | Error f ->
          Format.printf "  %-14s oblivious flow failed: %s@." name
            (Core.Flow.error_message f);
          List.iter
            (fun s ->
              rows :=
                {
                  d_benchmark = name; d_severity = s; d_seed = 0;
                  d_charged = 0; d_neutral = 0; d_engine = engine;
                  d_oblivious_yield = None; d_oblivious_wall = obl_wall;
                  d_aware_yield = None; d_aware_wall = 0.;
                  d_aware_simulated = 0; d_aware_failed = 0; d_certified = 0;
                  d_aware_ge = false; d_improved = false;
                  d_failure = Some (Core.Flow.error_message f);
                }
                :: !rows)
            severities
      | Ok obl ->
          let st = Layout.Gate_layout.stats obl.Core.Flow.gate_layout in
          (* The surface box extends a little past the oblivious layout:
             defects can land on, next to, or clear of it. *)
          let box =
            Bestagon.Surface.grid_box
              ~width:(st.Layout.Gate_layout.bounding_width + 2)
              ~height:(st.Layout.Gate_layout.bounding_height + 1)
          in
          List.iter
            (fun severity ->
              let seed = Hashtbl.hash (name, severity) land 0x3FFFFFFF in
              let map =
                Sidb.Defect_map.random ~seed ~charged:(2 * severity)
                  ~neutral:(3 * severity) box
              in
              let obl_rep =
                Bestagon.Yield.under_map map obl.Core.Flow.gate_layout
              in
              let obl_yield = obl_rep.Bestagon.Yield.map_yield in
              let aware, aware_wall =
                timed (fun () -> run_flow ~defect_map:map name)
              in
              let row =
                match aware with
                | Error f ->
                    {
                      d_benchmark = name; d_severity = severity; d_seed = seed;
                      d_charged = 2 * severity; d_neutral = 3 * severity;
                      d_engine = engine; d_oblivious_yield = Some obl_yield;
                      d_oblivious_wall = obl_wall; d_aware_yield = None;
                      d_aware_wall = aware_wall; d_aware_simulated = 0;
                      d_aware_failed = 0; d_certified = 0; d_aware_ge = false;
                      d_improved = false;
                      d_failure = Some (Core.Flow.error_message f);
                    }
                | Ok aw ->
                    let rep =
                      Bestagon.Yield.under_map map aw.Core.Flow.gate_layout
                    in
                    let ay = rep.Bestagon.Yield.map_yield in
                    {
                      d_benchmark = name; d_severity = severity; d_seed = seed;
                      d_charged = 2 * severity; d_neutral = 3 * severity;
                      d_engine = engine; d_oblivious_yield = Some obl_yield;
                      d_oblivious_wall = obl_wall; d_aware_yield = Some ay;
                      d_aware_wall = aware_wall;
                      d_aware_simulated = rep.Bestagon.Yield.map_simulated;
                      d_aware_failed = rep.Bestagon.Yield.failed_tiles;
                      d_certified =
                        aw.Core.Flow.diagnostics
                          .Core.Flow.certified_refutations;
                      d_aware_ge = ay >= obl_yield;
                      d_improved = ay > obl_yield; d_failure = None;
                    }
              in
              Format.printf
                "  %-14s severity %d (%d charged, %d neutral): aware %s vs \
                 oblivious %.3f %s@."
                name severity row.d_charged row.d_neutral
                (match row.d_aware_yield with
                | Some y -> Printf.sprintf "%.3f" y
                | None -> "FAILED")
                obl_yield
                (if row.d_improved then "(improved)"
                 else if row.d_aware_ge then "(no worse)"
                 else "(WORSE)");
              rows := row :: !rows)
            severities)
    benchmarks;
  let rows = List.rev !rows in
  (* Infeasibility must surface as a structured failure, never as an
     escaping exception: blanket the surface with one defect per tile
     footprint over a region larger than any retry can grow past. *)
  let infeasible_msg, infeasible_structured =
    let entries = ref [] in
    for col = 0 to 19 do
      for row = 0 to 29 do
        let on, om =
          Bestagon.Geometry.tile_origin
            { Hexlib.Coord.col; Hexlib.Coord.row }
        in
        entries :=
          {
            Sidb.Defect_map.site = { Sidb.Lattice.n = on + 30; m = om + 11; l = 0 };
            Sidb.Defect_map.kind = Sidb.Defect_map.Neutral;
          }
          :: !entries
      done
    done;
    let blanket = Sidb.Defect_map.of_entries !entries in
    match run_flow ~defect_map:blanket "xor2" with
    | Ok _ -> ("blanket map unexpectedly yielded a layout", false)
    | Error f -> (Core.Flow.error_message f, true)
    | exception e -> (Printexc.to_string e, false)
  in
  Format.printf "  fully-blocked surface: %s (%s)@." infeasible_msg
    (if infeasible_structured then "structured failure"
     else "NOT STRUCTURED — failing");
  let cores = Domain.recommended_domain_count () in
  write_defects_json ~cores ~infeasible_msg ~infeasible_structured rows;
  let all_ge = List.for_all (fun r -> r.d_aware_ge) rows in
  let improvements = List.length (List.filter (fun r -> r.d_improved) rows) in
  Format.printf
    "@.wrote %s (%d result rows); aware >= oblivious on all rows: %b; \
     strict improvements: %d@."
    !defects_out (List.length rows) all_ge improvements;
  if (not all_ge) || not infeasible_structured then begin
    Format.eprintf
      "defect-aware designs must match or beat oblivious ones and \
       infeasibility must be structured — failing@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Design-server benchmark: BENCH_serve.json                           *)
(* ------------------------------------------------------------------ *)

let serve_out = ref "BENCH_serve.json"

module SJ = Serve.Json
module SP = Serve.Protocol

type serve_row = {
  sv_phase : string;
  sv_requests : int;
  sv_responses : int;
  sv_ok : int;
  sv_error : int;
  sv_overloaded : int;
  sv_wall : float;
  sv_throughput : float;  (** responses per second *)
  sv_p50 : float;
  sv_p90 : float;
  sv_p99 : float;
  sv_max : float;  (** latencies in ms, from the responses themselves *)
}

let serve_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* Volatile fields are stripped before comparing a served response with
   its one-shot twin; everything else must match byte for byte. *)
let rec serve_normalize = function
  | SJ.Obj fields ->
      SJ.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "latency_ms" || k = "elapsed_s" || k = "uptime_s" then
               None
             else Some (k, serve_normalize v))
           fields)
  | SJ.List xs -> SJ.List (List.map serve_normalize xs)
  | other -> other

let serve_row ~phase ~requests responses wall =
  let count st =
    List.length
      (List.filter (fun r -> SP.response_status r = Some st) responses)
  in
  let lats =
    Array.of_list
      (List.filter_map
         (fun r -> Option.bind (SJ.mem "latency_ms" r) SJ.num)
         responses)
  in
  Array.sort compare lats;
  let n = List.length responses in
  {
    sv_phase = phase;
    sv_requests = requests;
    sv_responses = n;
    sv_ok = count "ok";
    sv_error = count "error";
    sv_overloaded = count "overloaded";
    sv_wall = wall;
    sv_throughput = (if wall > 0.0 then float_of_int n /. wall else 0.0);
    sv_p50 = serve_percentile lats 0.50;
    sv_p90 = serve_percentile lats 0.90;
    sv_p99 = serve_percentile lats 0.99;
    sv_max =
      (if Array.length lats = 0 then 0.0 else lats.(Array.length lats - 1));
  }

let write_serve_json ~cores ~identity_ok ~warm_speedup ~stats_payload rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fictionette-bench-serve/1\",\n";
  add
    "  \"host\": {\"cores\": %d, \"ocaml\": \"%s\", \"os\": \"%s\", \
     \"word_size\": %d},\n"
    cores (json_escape Sys.ocaml_version) (json_escape Sys.os_type)
    Sys.word_size;
  add "  \"default_jobs\": %d,\n" (Parallel.Pool.default_jobs ());
  add "  \"smoke\": %b,\n" !sim_smoke;
  add
    "  \"notes\": \"resident design server driven in-process through \
     Serve.Server.handle_line.  cold-oneshot = a fresh context (fresh \
     memo) per request, the cost `fictionette --json` pays per \
     invocation; server-cold = same requests through one server, empty \
     caches; server-warm = same requests again, structural-hash memo \
     hits; mixed = one batch of designs + checks + simulations + yield; \
     adversarial = malformed/truncated/oversized/poisoned lines, every \
     one of which must produce a structured response without killing \
     the loop.  identity_ok = warm served responses byte-identical to \
     one-shot responses after stripping latency fields.\",\n";
  add "  \"identity_with_oneshot\": %b,\n" identity_ok;
  add "  \"warm_vs_cold_oneshot_speedup\": %.3f,\n" warm_speedup;
  add "  \"phases\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"phase\": \"%s\", \"requests\": %d, \"responses\": %d, \
         \"ok\": %d, \"error\": %d, \"overloaded\": %d, \"wall_s\": %.6f, \
         \"throughput_rps\": %.2f, \"latency_ms\": {\"p50\": %.3f, \
         \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f}}%s\n"
        (json_escape r.sv_phase) r.sv_requests r.sv_responses r.sv_ok
        r.sv_error r.sv_overloaded r.sv_wall r.sv_throughput r.sv_p50
        r.sv_p90 r.sv_p99 r.sv_max
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  add "  ],\n";
  add "  \"server_stats\": %s\n"
    (match stats_payload with Some j -> SJ.to_string j | None -> "null");
  add "}\n";
  let oc = open_out !serve_out in
  output_string oc (Buffer.contents buf);
  close_out oc

let serve_bench () =
  section "Design-server benchmark (cold / warm / mixed / adversarial)";
  let smoke = !sim_smoke in
  let cores = Domain.recommended_domain_count () in
  let benchmarks =
    if smoke then [ "xor2"; "mux21"; "c17" ]
    else [ "xor2"; "xnor2"; "mux21"; "par_check"; "c17"; "majority" ]
  in
  let config =
    { Serve.Server.default_config with Serve.Server.sleep = (fun _ -> ()) }
  in
  let server = Serve.Server.create ~config () in
  let limits =
    {
      SP.max_source_bytes = config.Serve.Server.max_source_bytes;
      SP.allow_chaos = false;
    }
  in
  let rows = ref [] in
  let violations = ref 0 in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        incr violations;
        Format.printf "  VIOLATION: %s@." s)
      fmt
  in
  let design_line name =
    Printf.sprintf
      "{\"fictionette-serve\":1,\"kind\":\"design\",\"id\":\"%s\",\
       \"benchmark\":\"%s\"}"
      name name
  in
  let handle line =
    match Serve.Server.handle_line server line with
    | out ->
        List.map
          (fun l ->
            match SJ.parse l with
            | Ok j -> j
            | Error e ->
                violate "server emitted unparseable JSON (%s): %s" e l;
                SJ.Null)
          out
    | exception e ->
        violate "handle_line raised %s" (Printexc.to_string e);
        []
  in
  (* Phase 1: cold one-shot baseline — a fresh context per request. *)
  let oneshot name =
    match SJ.parse (design_line name) with
    | Error e ->
        violate "bad request line for %s: %s" name e;
        SJ.Null
    | Ok j -> (
        match SP.decode limits j with
        | Ok (SP.Single { id; job }) ->
            let ctx =
              {
                (Serve.Handlers.default_ctx ()) with
                Serve.Handlers.sleep = (fun _ -> ());
              }
            in
            Serve.Handlers.run_job ctx ~id job
        | Ok _ | Error _ ->
            violate "%s did not decode to a single job" name;
            SJ.Null)
  in
  let oneshot_resps, oneshot_wall =
    timed (fun () -> List.map oneshot benchmarks)
  in
  let oneshot_row =
    serve_row ~phase:"cold-oneshot"
      ~requests:(List.length benchmarks)
      oneshot_resps oneshot_wall
  in
  rows := oneshot_row :: !rows;
  Format.printf "  cold-oneshot: %d designs in %.3f s (%.2f req/s)@."
    oneshot_row.sv_responses oneshot_wall oneshot_row.sv_throughput;
  (* Phase 2: same requests through a cold server (empty caches). *)
  let cold_resps, cold_wall =
    timed (fun () -> List.concat_map handle (List.map design_line benchmarks))
  in
  rows :=
    serve_row ~phase:"server-cold"
      ~requests:(List.length benchmarks)
      cold_resps cold_wall
    :: !rows;
  (* Phase 3: the same requests again — structural-hash memo hits. *)
  let warm_resps, warm_wall =
    timed (fun () -> List.concat_map handle (List.map design_line benchmarks))
  in
  let warm_row =
    serve_row ~phase:"server-warm"
      ~requests:(List.length benchmarks)
      warm_resps warm_wall
  in
  rows := warm_row :: !rows;
  Format.printf "  server-warm: %d designs in %.3f s (%.2f req/s)@."
    warm_row.sv_responses warm_wall warm_row.sv_throughput;
  (* Served responses must be identical to one-shot results once the
     volatile latency fields are stripped. *)
  let identity_ok =
    List.length warm_resps = List.length oneshot_resps
    && List.for_all2
         (fun served solo ->
           SJ.to_string (serve_normalize served)
           = SJ.to_string (serve_normalize solo))
         warm_resps oneshot_resps
  in
  if not identity_ok then
    violate "warm served responses differ from one-shot responses";
  let warm_speedup =
    if warm_row.sv_throughput > 0.0 && oneshot_row.sv_throughput > 0.0 then
      warm_row.sv_throughput /. oneshot_row.sv_throughput
    else 0.0
  in
  if warm_row.sv_throughput <= oneshot_row.sv_throughput then
    violate
      "warm-cache throughput (%.2f req/s) not above cold one-shot baseline \
       (%.2f req/s)"
      warm_row.sv_throughput oneshot_row.sv_throughput
  else
    Format.printf "  warm cache is %.1fx the cold one-shot baseline@."
      warm_speedup;
  (* Phase 4: one mixed batch — designs, a paranoid check, gate
     simulations, and a defect-yield estimate, dispatched in parallel. *)
  let trials = if smoke then 5 else 20 in
  let mixed_jobs =
    List.map
      (fun n ->
        Printf.sprintf "{\"kind\":\"design\",\"benchmark\":\"%s\"}" n)
      benchmarks
    @ [
        "{\"kind\":\"check\",\"benchmark\":\"mux21\"}";
        "{\"kind\":\"simulate\",\"gate\":\"or2\"}";
        "{\"kind\":\"simulate\",\"gate\":\"nand2\"}";
        Printf.sprintf
          "{\"kind\":\"yield\",\"benchmark\":\"xor2\",\"trials\":%d,\
           \"seed\":7,\"missing\":1}"
          trials;
      ]
  in
  let mixed_line =
    Printf.sprintf
      "{\"fictionette-serve\":1,\"kind\":\"batch\",\"id\":\"mixed\",\
       \"jobs\":[%s]}"
      (String.concat "," mixed_jobs)
  in
  let mixed_resps, mixed_wall = timed (fun () -> handle mixed_line) in
  let mixed_row =
    serve_row ~phase:"mixed-batch"
      ~requests:(List.length mixed_jobs)
      mixed_resps mixed_wall
  in
  rows := mixed_row :: !rows;
  if mixed_row.sv_ok < List.length mixed_jobs then
    violate "mixed batch: %d ok responses for %d jobs" mixed_row.sv_ok
      (List.length mixed_jobs);
  (* Phase 5: adversarial lines.  Every non-blank line must yield at
     least one structured response and the loop must keep serving. *)
  let oversized =
    Printf.sprintf
      "{\"fictionette-serve\":1,\"kind\":\"design\",\"verilog\":\"%s\"}"
      (String.make (config.Serve.Server.max_source_bytes + 1) 'x')
  in
  let depth_bomb =
    String.concat "" (List.init 100 (fun _ -> "[")) in
  let adversarial =
    [
      "{";
      "not json at all";
      "[1,2,3]";
      "\"quoted\"";
      "{\"kind\":\"design\",\"benchmark\":\"xor2\"}";
      "{\"fictionette-serve\":2,\"kind\":\"ping\"}";
      "{\"fictionette-serve\":1}";
      "{\"fictionette-serve\":1,\"kind\":\"frobnicate\"}";
      "{\"fictionette-serve\":1,\"kind\":\"design\"}";
      "{\"fictionette-serve\":1,\"kind\":\"design\",\"benchmark\":\"xor2\",\
       \"timeout_ms\":1e999}";
      "{\"fictionette-serve\":1,\"kind\":\"design\",\"benchmark\":\"c17\",\
       \"timeout_ms\":0.001}";
      "{\"fictionette-serve\":1,\"kind\":\"design\",\"benchmark\":\"xor2\",\
       \"chaos\":\"raise\"}";
      oversized;
      depth_bomb;
    ]
  in
  let adv_resps, adv_wall =
    timed (fun () ->
        List.concat_map
          (fun line ->
            let short =
              if String.length line <= 40 then line else String.sub line 0 40
            in
            let out = handle line in
            if out = [] then
              violate "adversarial line got no response: %s" short;
            List.iter
              (fun r ->
                if SP.response_status r = None then
                  violate "response without a status for line %s" short)
              out;
            out)
          adversarial)
  in
  let adv_row =
    serve_row ~phase:"adversarial"
      ~requests:(List.length adversarial)
      adv_resps adv_wall
  in
  rows := adv_row :: !rows;
  if adv_row.sv_ok > 0 then
    violate "adversarial phase produced %d ok responses" adv_row.sv_ok;
  (* The server must still be alive and well after all of that. *)
  (match handle "{\"fictionette-serve\":1,\"kind\":\"ping\"}" with
  | [ r ] when SP.response_status r = Some "ok" -> ()
  | _ -> violate "server stopped answering pings after the chaos phase");
  let stats_payload =
    match handle "{\"fictionette-serve\":1,\"kind\":\"stats\"}" with
    | [ r ] -> SJ.mem "result" (serve_normalize r)
    | _ ->
        violate "stats request did not yield exactly one response";
        None
  in
  let rows = List.rev !rows in
  write_serve_json ~cores ~identity_ok ~warm_speedup ~stats_payload rows;
  Format.printf
    "@.wrote %s (%d phases); identity with one-shot: %b; warm speedup \
     %.1fx@."
    !serve_out (List.length rows) identity_ok warm_speedup;
  if !violations > 0 then begin
    Format.eprintf "%d design-server contract violations — failing@."
      !violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Operational-domain benchmark harness: BENCH_opdomain.json           *)
(* ------------------------------------------------------------------ *)

module OD = Sidb.Operational_domain

let opdomain_out = ref "BENCH_opdomain.json"

type od_row = {
  od_gate : string;
  od_algorithm : string;  (** "grid-baseline" | "grid" | "flood-fill" | "contour" *)
  od_jobs : int;
  od_wall : float;
  od_total : int;
  od_evaluated : int;
  od_fraction : float;
  od_saved : int;
  od_speedup : float option;  (** vs the baseline grid at jobs=1, same gate. *)
  od_identical : bool option;
      (** Every point this run evaluated carries the baseline's
          classification (and for grids, the whole sample list matches). *)
}

type od_layout_row = {
  odl_benchmark : string;
  odl_engine : string;
  odl_exact : bool;
  odl_sites : int;
  odl_tiles : int;
  odl_inputs : int;
  odl_steps : int;
  odl_fraction : float;
  odl_evaluated : int;
  odl_total : int;
  odl_wall : float;
}

let write_opdomain_json ~cores ~x_axis ~y_axis ~aggregates rows layouts =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fictionette-bench-opdomain/1\",\n";
  add
    "  \"host\": {\"cores\": %d, \"ocaml\": \"%s\", \"os\": \"%s\", \
     \"word_size\": %d},\n"
    cores (json_escape Sys.ocaml_version) (json_escape Sys.os_type)
    Sys.word_size;
  add "  \"smoke\": %b,\n" !sim_smoke;
  add
    "  \"axes\": {\"x\": {\"parameter\": \"%s\", \"from\": %g, \"to\": %g, \
     \"steps\": %d}, \"y\": {\"parameter\": \"%s\", \"from\": %g, \"to\": \
     %g, \"steps\": %d}},\n"
    (OD.parameter_name x_axis.OD.parameter)
    x_axis.OD.from_value x_axis.OD.to_value x_axis.OD.steps
    (OD.parameter_name y_axis.OD.parameter)
    y_axis.OD.from_value y_axis.OD.to_value y_axis.OD.steps;
  add "  \"suite_speedups\": [\n";
  List.iteri
    (fun i (alg, base, wall, speedup) ->
      add
        "    {\"algorithm\": \"%s\", \"baseline_wall_s\": %.6f, \"wall_s\": \
         %.6f, \"speedup_vs_baseline\": %.3f}%s\n"
        (json_escape alg) base wall speedup
        (if i = List.length aggregates - 1 then "" else ","))
    aggregates;
  add "  ],\n";
  add "  \"results\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"gate\": \"%s\", \"algorithm\": \"%s\", \"jobs\": %d, \
         \"wall_s\": %.6f, \"total_points\": %d, \"points_evaluated\": %d, \
         \"evaluated_fraction\": %.4f, \"operational_fraction\": %.4f, \
         \"solver_calls_saved\": %d"
        (json_escape r.od_gate) (json_escape r.od_algorithm) r.od_jobs
        r.od_wall r.od_total r.od_evaluated
        (float_of_int r.od_evaluated /. float_of_int (max 1 r.od_total))
        r.od_fraction r.od_saved;
      (match r.od_speedup with
      | Some s -> add ", \"speedup_vs_baseline\": %.3f" s
      | None -> add ", \"speedup_vs_baseline\": null");
      (match r.od_identical with
      | Some b -> add ", \"identical_to_baseline\": %b" b
      | None -> add ", \"identical_to_baseline\": null");
      add "}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"layouts\": [\n";
  List.iteri
    (fun i l ->
      add
        "    {\"benchmark\": \"%s\", \"engine\": \"%s\", \"exact\": %b, \
         \"sites\": %d, \"tiles\": %d, \"inputs\": %d, \"steps\": %d, \
         \"operational_fraction\": %.4f, \"points_evaluated\": %d, \
         \"total_points\": %d, \"wall_s\": %.6f}%s\n"
        (json_escape l.odl_benchmark) (json_escape l.odl_engine) l.odl_exact
        l.odl_sites l.odl_tiles l.odl_inputs l.odl_steps l.odl_fraction
        l.odl_evaluated l.odl_total l.odl_wall
        (if i = List.length layouts - 1 then "" else ","))
    layouts;
  add "  ]\n}\n";
  let oc = open_out !opdomain_out in
  output_string oc (Buffer.contents buf);
  close_out oc

let opdomain () =
  section
    "Operational-domain engine benchmark (baseline grid vs grid / \
     flood-fill / contour)";
  let smoke = !sim_smoke in
  let steps = if smoke then 16 else 64 in
  let samples = if smoke then 16 else 64 in
  let cores = Domain.recommended_domain_count () in
  let x_axis = { Core.Flow.default_domain_x_axis with OD.steps } in
  let y_axis = { Core.Flow.default_domain_y_axis with OD.steps } in
  Format.printf "grid: %dx%d; seed probes: %d; %s x %s%s@." steps steps
    samples
    (OD.parameter_name x_axis.OD.parameter)
    (OD.parameter_name y_axis.OD.parameter)
    (if smoke then " (smoke)" else "");
  let violations = ref 0 in
  let violate fmt =
    Format.kasprintf
      (fun m ->
        incr violations;
        Format.printf "  VIOLATION: %s@." m)
      fmt
  in
  let gate2 fn =
    Layout.Tile.Gate
      { fn; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  let gates =
    [
      ("wire", Layout.Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
      ("inverter",
       Layout.Tile.Gate
         { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_east ] });
      ("or2", gate2 M.Or2);
      ("and2", gate2 M.And2);
      ("nor2", gate2 M.Nor2);
      ("nand2", gate2 M.Nand2);
      ("xor2", gate2 M.Xor2);
      ("xnor2", gate2 M.Xnor2);
    ]
  in
  let rows = ref [] in
  (* Per-algorithm suite totals at jobs=1: flood-fill concentrates its
     evaluations on operational points (which can never short-circuit a
     truth-table row), so its per-gate speedup dips below the evaluated
     fraction's reciprocal on large-domain gates — the >= 3x contract is
     on the suite aggregate. *)
  let totals = Hashtbl.create 4 in
  let tally alg base wall =
    let b, w = try Hashtbl.find totals alg with Not_found -> (0., 0.) in
    Hashtbl.replace totals alg (b +. base, w +. wall)
  in
  let add r =
    rows := r :: !rows;
    Format.printf
      "  %-9s %-13s jobs=%d  %8.3fs  eval %4d/%-4d  frac %.4f%s%s@."
      r.od_gate r.od_algorithm r.od_jobs r.od_wall r.od_evaluated r.od_total
      r.od_fraction
      (match r.od_speedup with
      | Some s -> Printf.sprintf "  %5.1fx" s
      | None -> "")
      (match r.od_identical with
      | Some true -> ""
      | Some false -> "  MISMATCH"
      | None -> "")
  in
  (* Per evaluated point, the sampled sweeps must carry the baseline's
     classification; a grid must match the baseline sample for sample. *)
  let agrees_with baseline dom =
    List.for_all2
      (fun (b : OD.sample) (s : OD.sample) ->
        (not s.OD.evaluated) || s.OD.operational = b.OD.operational)
      baseline.OD.samples dom.OD.samples
  in
  List.iter
    (fun (name, tile) ->
      match
        (Bestagon.Library.validation_structure tile,
         Bestagon.Library.tile_spec tile)
      with
      | None, _ | _, None -> violate "no library entry for %s" name
      | Some structure, Some spec ->
          let baseline, base_wall =
            timed (fun () ->
                OD.sweep ~jobs:1 ~config:OD.baseline_config ~x_axis ~y_axis
                  structure ~spec)
          in
          add
            {
              od_gate = name;
              od_algorithm = "grid-baseline";
              od_jobs = 1;
              od_wall = base_wall;
              od_total = baseline.OD.stats.OD.total_points;
              od_evaluated = baseline.OD.stats.OD.points_evaluated;
              od_fraction = baseline.OD.operational_fraction;
              od_saved = baseline.OD.stats.OD.solver_calls_saved;
              od_speedup = None;
              od_identical = None;
            };
          let configs =
            [
              ("grid", { OD.default_config with OD.algorithm = OD.Grid });
              ("flood-fill",
               { OD.default_config with
                 OD.algorithm = OD.Flood_fill;
                 samples });
              ("contour",
               { OD.default_config with
                 OD.algorithm = OD.Contour_tracing;
                 samples });
            ]
          in
          List.iter
            (fun (alg, config) ->
              let dom, wall =
                timed (fun () ->
                    OD.sweep ~jobs:1 ~config ~x_axis ~y_axis structure ~spec)
              in
              let identical =
                if alg = "grid" then
                  baseline.OD.samples = dom.OD.samples
                  && baseline.OD.operational_fraction
                     = dom.OD.operational_fraction
                else agrees_with baseline dom
              in
              let speedup = base_wall /. wall in
              add
                {
                  od_gate = name;
                  od_algorithm = alg;
                  od_jobs = 1;
                  od_wall = wall;
                  od_total = dom.OD.stats.OD.total_points;
                  od_evaluated = dom.OD.stats.OD.points_evaluated;
                  od_fraction = dom.OD.operational_fraction;
                  od_saved = dom.OD.stats.OD.solver_calls_saved;
                  od_speedup = Some speedup;
                  od_identical = Some identical;
                };
              if not identical then
                violate "%s/%s disagrees with the baseline grid" name alg;
              if alg <> "grid" then begin
                tally alg base_wall wall;
                let frac_eval =
                  float_of_int dom.OD.stats.OD.points_evaluated
                  /. float_of_int dom.OD.stats.OD.total_points
                in
                if (not smoke) && frac_eval > 0.25 then
                  violate "%s/%s evaluated %.1f%% of the grid (cap 25%%)"
                    name alg (100. *. frac_eval)
              end;
              (* Bit-identical at any job count: rerun the same config on
                 2 and 4 domains and require whole-record equality. *)
              List.iter
                (fun jobs ->
                  let dom_j, wall_j =
                    timed (fun () ->
                        OD.sweep ~jobs ~config ~x_axis ~y_axis structure
                          ~spec)
                  in
                  let same = dom_j = dom in
                  add
                    {
                      od_gate = name;
                      od_algorithm = alg;
                      od_jobs = jobs;
                      od_wall = wall_j;
                      od_total = dom_j.OD.stats.OD.total_points;
                      od_evaluated = dom_j.OD.stats.OD.points_evaluated;
                      od_fraction = dom_j.OD.operational_fraction;
                      od_saved = dom_j.OD.stats.OD.solver_calls_saved;
                      od_speedup = Some (base_wall /. wall_j);
                      od_identical = Some same;
                    };
                  if not same then
                    violate "%s/%s at jobs=%d differs from jobs=1" name alg
                      jobs)
                (if smoke then [ 2 ] else [ 2; 4 ]))
            configs)
    gates;
  (* Whole-layout domain on the heuristic engine: the honest headline is
     an *empty* domain — individually validated tiles do not yet cascade
     through an unclocked multi-tile layout (see EXPERIMENTS.md). *)
  let layout_steps = if smoke then 4 else 8 in
  let layouts = ref [] in
  (match Core.Flow.run_benchmark "xor2" with
  | Error _ -> violate "flow failed on benchmark xor2"
  | Ok result ->
      let engine = Sidb.Bdl.Quicksim Sidb.Ground_state.default_quicksim in
      let lx = { x_axis with OD.steps = layout_steps } in
      let ly = { y_axis with OD.steps = layout_steps } in
      let dom_r, wall =
        timed (fun () ->
            Core.Flow.domain_of_layout ~engine ~jobs:1 ~x_axis:lx ~y_axis:ly
              result)
      in
      (match dom_r with
      | Error e -> violate "whole-layout domain failed: %s" e
      | Ok ld ->
          let d = ld.Core.Flow.dom_domain in
          layouts :=
            {
              odl_benchmark = "xor2";
              odl_engine = ld.Core.Flow.dom_engine;
              odl_exact = ld.Core.Flow.dom_exact;
              odl_sites = ld.Core.Flow.dom_sites;
              odl_tiles = ld.Core.Flow.dom_tiles;
              odl_inputs = ld.Core.Flow.dom_inputs;
              odl_steps = layout_steps;
              odl_fraction = d.OD.operational_fraction;
              odl_evaluated = d.OD.stats.OD.points_evaluated;
              odl_total = d.OD.stats.OD.total_points;
              odl_wall = wall;
            }
            :: !layouts;
          Format.printf
            "  layout xor2: %s (%d sites, %d tiles)  %8.3fs  frac %.4f@."
            ld.Core.Flow.dom_engine ld.Core.Flow.dom_sites
            ld.Core.Flow.dom_tiles wall d.OD.operational_fraction));
  let aggregates =
    List.filter_map
      (fun alg ->
        match Hashtbl.find_opt totals alg with
        | None -> None
        | Some (base, wall) ->
            let speedup = base /. wall in
            Format.printf
              "  suite %-13s %8.3fs vs baseline %8.3fs  %5.1fx@." alg wall
              base speedup;
            if (not smoke) && speedup < 3. then
              violate "suite %s only %.1fx over the baseline (want >= 3x)"
                alg speedup;
            Some (alg, base, wall, speedup))
      [ "flood-fill"; "contour" ]
  in
  let rows = List.rev !rows and layouts = List.rev !layouts in
  write_opdomain_json ~cores ~x_axis ~y_axis ~aggregates rows layouts;
  Format.printf "@.wrote %s (%d rows, %d layout rows)@." !opdomain_out
    (List.length rows) (List.length layouts);
  if !violations > 0 then begin
    Format.eprintf "%d operational-domain contract violations — failing@."
      !violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let all = [ "table1"; "fig1c"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6" ]

let run = function
  | "table1" -> table1 ()
  | "fig1c" -> fig1c ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "ablation" -> ablation ()
  | "extensions" -> extensions ()
  | "defects" -> if !defects_aware then defects_bench () else defects ()
  | "resilience" -> resilience ()
  | "perf" -> perf ()
  | "sim" -> sim ()
  | "sat" -> sat ()
  | "logic" -> logic ()
  | "serve" -> serve_bench ()
  | "opdomain" -> opdomain ()
  | other ->
      Format.printf
        "unknown experiment %S (try: %s, ablation, extensions, defects, resilience, perf, sim, sat, logic, serve, opdomain)@."
        other (String.concat ", " all)

let () =
  (* Harness-wide flags are stripped before experiment dispatch:
     --jobs N sets the worker-domain count for every parallel loop,
     --smoke shrinks the sim workloads for CI, --out redirects the
     JSON reports, --aware switches [defects] to the aware-vs-oblivious
     yield harness, --portfolio adds the SAT-portfolio races to [sat]. *)
  let rec scan acc = function
    | [] -> List.rev acc
    | "--smoke" :: rest ->
        sim_smoke := true;
        scan acc rest
    | "--aware" :: rest ->
        defects_aware := true;
        scan acc rest
    | "--portfolio" :: rest ->
        sat_portfolio := true;
        scan acc rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> Parallel.Pool.set_default_jobs j
        | _ -> Format.eprintf "ignoring invalid --jobs value %S@." n);
        scan acc rest
    | "--out" :: path :: rest ->
        sim_out := path;
        sat_out := path;
        logic_out := path;
        defects_out := path;
        serve_out := path;
        opdomain_out := path;
        scan acc rest
    | x :: rest -> scan (x :: acc) rest
  in
  match scan [] (List.tl (Array.to_list Sys.argv)) with
  | [] ->
      List.iter run all;
      ablation ();
      extensions ();
      defects ();
      resilience ();
      perf ()
  | experiments -> List.iter run experiments
