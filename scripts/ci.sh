#!/bin/sh
# Continuous-integration driver for fictionette.
#
# Stages:
#   1. fast type-check        (dune build @check)
#   2. full build             (dune build, warnings are errors)
#   3. test suite             (dune runtest --force, timed)
#   4. resilience smoke test  (mux21 under a 1 s deadline with the
#                              fallback engine must finish cleanly --
#                              the hard guarantee of the budget work)
set -eu

cd "$(dirname "$0")/.."

echo "== 1/4 type check =="
dune build @check

echo "== 2/4 full build =="
dune build

echo "== 3/4 test suite =="
start=$(date +%s)
dune runtest --force
end=$(date +%s)
echo "tests passed in $((end - start))s"

echo "== 4/4 budgeted-flow smoke test =="
# Must return a verified layout without raising, degrading to the
# scalable engine if the exact share of the deadline runs out.
dune exec bin/fictionette.exe -- run mux21 -e fallback -d 1

echo "CI OK"
