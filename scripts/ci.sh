#!/bin/sh
# Continuous-integration driver for fictionette.
#
# Stages:
#   1. fast type-check        (dune build @check)
#   2. full build             (dune build, warnings are errors)
#   3. test suite             (dune runtest --force, timed)
#   4. property fuzzing       (bounded, fixed seed: solver vs. oracle
#                              with DRAT-checked UNSATs, XAG rewrite/map
#                              behavior preservation, defect-yield
#                              invariants)
#   5. resilience smoke test  (mux21 under a 1 s deadline with the
#                              fallback engine must finish cleanly --
#                              the hard guarantee of the budget work)
#   6. certification smoke    (paranoid flow on a benchmark whose exact
#                              search refutes a candidate size: the
#                              refutation must come with a DRAT proof
#                              the independent checker accepts)
set -eu

cd "$(dirname "$0")/.."

echo "== 1/6 type check =="
dune build @check

echo "== 2/6 full build =="
dune build

echo "== 3/6 test suite =="
start=$(date +%s)
dune runtest --force
end=$(date +%s)
echo "tests passed in $((end - start))s"

echo "== 4/6 property fuzzing =="
# Fixed seed: reproducible in CI, >= 500 iterations across the three
# generators (CNF, XAG, defect parameters).
dune exec test/fuzz.exe -- -seed 61442 -cnf 300 -xag 150 -defect 60

echo "== 5/6 budgeted-flow smoke test =="
# Must return a verified layout without raising, degrading to the
# scalable engine if the exact share of the deadline runs out.
dune exec bin/fictionette.exe -- run mux21 -e fallback -d 1

echo "== 6/6 certification smoke test =="
# Benchmark "t" needs one candidate size refuted before its minimal
# layout: paranoid mode proof-checks that UNSAT and replays the
# equivalence certificate; any failed check exits nonzero.
dune exec bin/fictionette.exe -- check t | grep "certified refutations"
dune exec bin/fictionette.exe -- check t

echo "CI OK"
