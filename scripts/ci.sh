#!/bin/sh
# Continuous-integration driver for fictionette.
#
# Stages:
#   1. fast type-check        (dune build @check)
#   2. full build             (dune build, warnings are errors)
#   3. test suite             (dune runtest --force, timed)
#   4. property fuzzing       (bounded, fixed seed: solver vs. oracle
#                              with DRAT-checked UNSATs, XAG rewrite/map
#                              behavior preservation, defect-yield
#                              invariants, pruned-engine exactness)
#   5. resilience smoke test  (mux21 under a 1 s deadline with the
#                              fallback engine must finish cleanly --
#                              the hard guarantee of the budget work)
#   6. certification smoke    (paranoid flow on a benchmark whose exact
#                              search refutes a candidate size: the
#                              refutation must come with a DRAT proof
#                              the independent checker accepts)
#   7. bench smoke            (the simulation harness at jobs=2 must
#                              report results bit-identical to jobs=1 --
#                              the harness exits nonzero on any mismatch
#                              -- and write a well-formed BENCH_sim.json)
#   8. SAT bench smoke        (legacy vs. tuned solver configurations on
#                              exact P&R and equivalence miters: verdicts
#                              must be identical, refutation proofs must
#                              check, and BENCH_sat.json must be
#                              well-formed)
#   9. logic bench smoke      (priority-cut vs. exhaustive synthesis on
#                              every Table-1 benchmark: the mapped
#                              netlists must be node-for-node identical,
#                              resimulation must pass, and
#                              BENCH_logic.json must be well-formed)
#  10. defect bench smoke     (defect-aware vs. oblivious design on
#                              random surface maps: aware yield must be
#                              no worse everywhere, an infeasible map
#                              must fail structurally, and
#                              BENCH_defects.json must be well-formed)
#  11. design-server smoke    (a real `fictionette serve` session over
#                              stdio: design/check/stats requests must
#                              answer, a malformed line must produce a
#                              structured parse error without killing
#                              the loop, and EOF must shut the server
#                              down cleanly)
#  12. SAT portfolio smoke    (Simplify equisatisfiability and
#                              portfolio-vs-single fuzz properties, then
#                              the portfolio bench races: verdicts must
#                              match the single solver, the winner must
#                              be identical across --jobs, and the
#                              certified refutation must DRAT-check
#                              through the simplify+portfolio path)
#  13. quicksim smoke         (heuristic-vs-exact fuzz: quicksim must
#                              reproduce the pruned engine's ground
#                              energy on random systems; then a whole
#                              Table-1 layout as one charge system:
#                              quicksim finishes with valid states,
#                              exact engines refuse with a structured
#                              error)
#  14. opdomain smoke         (operational-domain algorithm fuzz:
#                              flood fill / contour tracing must agree
#                              with the exhaustive grid on every point
#                              they evaluate, bit-identically at any
#                              job count; then the opdomain bench in
#                              smoke mode must write a well-formed
#                              BENCH_opdomain.json)
set -eu

cd "$(dirname "$0")/.."

echo "== 1/14 type check =="
dune build @check

echo "== 2/14 full build =="
dune build

echo "== 3/14 test suite =="
start=$(date +%s)
dune runtest --force
end=$(date +%s)
echo "tests passed in $((end - start))s"

echo "== 4/14 property fuzzing =="
# Fixed seed: reproducible in CI, >= 500 iterations across the eight
# properties (CNF, at-most-one encodings, XAG, priority-vs-exhaustive
# cuts, defect parameters, charge systems, defect-aware P&R, and
# server line-noise: Serve.Server.handle_line must answer every byte
# sequence with structured JSON, never an exception).  The simplify and
# portfolio properties get a dedicated run in stage 12, quicksim in
# stage 13, and the operational-domain algorithms in stage 14.
dune exec test/fuzz.exe -- -seed 61442 -cnf 300 -amo 60 -xag 150 -cuts 60 -defect 60 -system 40 -defect-aware 25 -serve 200 -simplify 0 -portfolio 0 -quicksim 0 -opdomain 0

echo "== 5/14 budgeted-flow smoke test =="
# Must return a verified layout without raising, degrading to the
# scalable engine if the exact share of the deadline runs out.
dune exec bin/fictionette.exe -- run mux21 -e fallback -d 1

echo "== 6/14 certification smoke test =="
# Benchmark "t" needs one candidate size refuted before its minimal
# layout: paranoid mode proof-checks that UNSAT and replays the
# equivalence certificate; any failed check exits nonzero.
dune exec bin/fictionette.exe -- check t | grep "certified refutations"
dune exec bin/fictionette.exe -- check t

echo "== 7/14 bench smoke (parallel determinism + BENCH_sim.json shape) =="
out=$(mktemp)
dune exec bench/main.exe -- sim --smoke --jobs 2 --out "$out"
# Shape check: schema marker, host cores, at least one result row with
# the full field set, and a recorded serial-vs-parallel verdict.
grep -q '"schema": "fictionette-bench-sim/1"' "$out"
grep -q '"cores":' "$out"
grep -q '"workload": "sweep"' "$out"
grep -q '"speedup_vs_serial":' "$out"
grep -q '"identical_to_serial": true' "$out"
if grep -q '"identical_to_serial": false' "$out"; then
    echo "bench smoke: parallel result differed from serial" >&2
    exit 1
fi
rm -f "$out"

echo "== 8/14 SAT bench smoke (config parity + BENCH_sat.json shape) =="
out=$(mktemp)
dune exec bench/main.exe -- sat --smoke --out "$out"
# Shape check: schema marker, both solver configurations, per-solve
# statistics, and the legacy-vs-tuned verdict identity the harness
# itself enforces (it exits nonzero on any mismatch or rejected proof).
grep -q '"schema": "fictionette-bench-sat/1"' "$out"
grep -q '"config": "legacy"' "$out"
grep -q '"config": "tuned"' "$out"
grep -q '"propagations":' "$out"
grep -q '"speedup_vs_legacy":' "$out"
grep -q '"verdict_matches_legacy": true' "$out"
if grep -q '"verdict_matches_legacy": false' "$out"; then
    echo "sat bench smoke: tuned verdict differed from legacy" >&2
    exit 1
fi
rm -f "$out"

echo "== 9/14 logic bench smoke (netlist identity + BENCH_logic.json shape) =="
out=$(mktemp)
dune exec bench/main.exe -- logic --smoke --out "$out"
# Shape check: schema marker, both enumeration configurations, cut and
# NPN-cache counters, and the per-benchmark netlist identity the harness
# itself enforces (it exits nonzero on any mismatch).
grep -q '"schema": "fictionette-bench-logic/1"' "$out"
grep -q '"config": "exhaustive"' "$out"
grep -q '"config": "priority"' "$out"
grep -q '"npn_cache":' "$out"
grep -q '"speedup_vs_exhaustive":' "$out"
grep -q '"identical_netlist": true' "$out"
if grep -q '"identical_netlist": false' "$out"; then
    echo "logic bench smoke: priority netlist differed from exhaustive" >&2
    exit 1
fi
rm -f "$out"

echo "== 10/14 defect bench smoke (aware >= oblivious + BENCH_defects.json shape) =="
out=$(mktemp)
dune exec bench/main.exe -- defects --smoke --aware --out "$out"
# Shape check: schema marker, the aware-never-worse verdict the harness
# itself enforces (it exits nonzero on any regression), and the
# structured failure on a surface with no feasible placement.
grep -q '"schema": "fictionette-bench-defects/1"' "$out"
grep -q '"aware_ge_oblivious": true' "$out"
grep -q '"structured_failure": true' "$out"
if grep -q '"aware_ge_oblivious": false' "$out"; then
    echo "defect bench smoke: aware design yielded worse than oblivious" >&2
    exit 1
fi
rm -f "$out"

echo "== 11/14 design-server smoke (protocol + fault isolation) =="
out=$(mktemp)
# A real server session over stdio: two flow requests, one malformed
# line, one stats probe, then EOF.  The malformed line must get a
# structured parse error and must not take the later requests with it;
# EOF is a clean shutdown, so the pipeline itself fails under set -e
# if the server dies early.
{
    printf '%s\n' '{"fictionette-serve":1,"kind":"design","id":"d1","benchmark":"c17"}'
    printf '%s\n' 'this is not json'
    printf '%s\n' '{"fictionette-serve":1,"kind":"check","id":"k1","benchmark":"mux21"}'
    printf '%s\n' '{"fictionette-serve":1,"kind":"stats","id":"s1"}'
} | dune exec bin/fictionette.exe -- serve > "$out"
test "$(wc -l < "$out")" -eq 4
grep -q '"id":"d1","kind":"design","status":"ok"' "$out"
grep -q '"kind":"parse"' "$out"
grep -q '"id":"k1","kind":"check","status":"ok"' "$out"
grep -q '"id":"s1","kind":"stats","status":"ok"' "$out"
grep -q '"protocol_errors":1' "$out"
# The one-shot JSON mode speaks the same schema as the server.
dune exec bin/fictionette.exe -- run c17 --json | grep -q '"kind":"design","status":"ok"'
rm -f "$out"

echo "== 12/14 SAT portfolio smoke (simplify equisat + deterministic races) =="
# The two dedicated fuzz properties: Simplify preserves satisfiability
# (models reconstruct, refutations DRAT-check), and a k-wide portfolio
# agrees with a single solver on every random instance.
dune exec test/fuzz.exe -- -seed 61442 -cnf 0 -amo 0 -xag 0 -cuts 0 -defect 0 -system 0 -defect-aware 0 -serve 0 -simplify 150 -portfolio 80 -quicksim 0 -opdomain 0
# Portfolio bench races (k=4, jobs 1 and 2 in smoke mode): the harness
# itself exits nonzero on a verdict mismatch against the single solver,
# a winner that differs across --jobs, or a rejected DRAT proof.
out=$(mktemp)
dune exec bench/main.exe -- sat --smoke --portfolio --out "$out"
grep -q '"portfolio": {' "$out"
grep -q '"verdict_matches_single": true' "$out"
grep -q '"winner_config":' "$out"
grep -q '"proof": "accepted"' "$out"
grep -q '"eliminated_vars":' "$out"
if grep -q '"verdict_matches_single": false' "$out"; then
    echo "portfolio smoke: portfolio verdict differed from single solver" >&2
    exit 1
fi
rm -f "$out"

echo "== 13/14 quicksim smoke (heuristic-vs-exact fuzz + whole-layout) =="
# The dedicated quicksim fuzz property: on random systems up to 16
# sites the heuristic engine's default configuration must reproduce the
# pruned exact engine's ground energy exactly, returning only
# physically valid states.
dune exec test/fuzz.exe -- -seed 61442 -cnf 0 -amo 0 -xag 0 -cuts 0 -defect 0 -system 0 -defect-aware 0 -serve 0 -simplify 0 -portfolio 0 -quicksim 120 -opdomain 0
# Whole-layout smoke: a complete Table-1 design (c17, ~360 DBs) as one
# charge system — far beyond any exact engine.  Quicksim must finish
# with physically valid states (exit 0); an exact engine must refuse
# with a structured error (exit 1), not search unboundedly.
dune exec bin/fictionette.exe -- simulate c17 --layout --engine quicksim | grep "physically valid"
if dune exec bin/fictionette.exe -- simulate c17 --layout --engine pruned 2> /dev/null; then
    echo "quicksim smoke: exact engine did not refuse the whole layout" >&2
    exit 1
fi

echo "== 14/14 opdomain smoke (algorithm agreement + BENCH_opdomain.json shape) =="
# The dedicated operational-domain fuzz property: on random library
# gates over random 2-D parameter slices, the tuned grid must match the
# preserved baseline sweep bit for bit, flood fill / contour tracing
# must carry the grid's classification on every point they evaluate,
# and each algorithm must be bit-identical at any job count.
dune exec test/fuzz.exe -- -seed 61442 -cnf 0 -amo 0 -xag 0 -cuts 0 -defect 0 -system 0 -defect-aware 0 -serve 0 -simplify 0 -portfolio 0 -quicksim 0 -opdomain 40
# Opdomain bench in smoke mode: the harness itself exits nonzero on any
# classification mismatch against the baseline grid or any job-count
# divergence; the report must be well-formed.
out=$(mktemp)
dune exec bench/main.exe -- opdomain --smoke --jobs 2 --out "$out"
grep -q '"schema": "fictionette-bench-opdomain/1"' "$out"
grep -q '"algorithm": "flood-fill"' "$out"
grep -q '"algorithm": "contour"' "$out"
grep -q '"solver_calls_saved":' "$out"
grep -q '"identical_to_baseline": true' "$out"
grep -q '"layouts": \[' "$out"
grep -q '"engine": "quicksim"' "$out"
if grep -q '"identical_to_baseline": false' "$out"; then
    echo "opdomain smoke: sampled algorithm differed from the baseline grid" >&2
    exit 1
fi
rm -f "$out"

echo "CI OK"
