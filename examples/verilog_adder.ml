(* Verilog entry point: the flow consumes gate-level Verilog (step 1 of
   Sec. 4.2), here a full adder, and compares the exact and scalable
   physical-design engines on the same netlist.

     dune exec examples/verilog_adder.exe *)

let source =
  {|
// one-bit full adder
module full_adder (a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule
|}

let describe name engine =
  let options = { Core.Flow.default_options with engine } in
  match Core.Flow.run_verilog ~options source with
  | Error f -> Format.printf "%s failed: %s@." name (Core.Flow.error_message f)
  | Ok result ->
      let stats = Layout.Gate_layout.stats result.Core.Flow.gate_layout in
      Format.printf
        "%s engine: %dx%d tiles (%d gates, %d wires, %d crossings), %s, physical design %.2fs@."
        name stats.Layout.Gate_layout.bounding_width
        stats.Layout.Gate_layout.bounding_height
        stats.Layout.Gate_layout.gate_tiles
        stats.Layout.Gate_layout.wire_tiles
        stats.Layout.Gate_layout.crossing_tiles
        (match result.Core.Flow.equivalence with
        | Some Verify.Equivalence.Equivalent -> "formally equivalent"
        | _ -> "NOT verified")
        result.Core.Flow.timing.Core.Flow.physical_design_s;
      match result.Core.Flow.sidb with
      | Some sidb ->
          Format.printf "  -> %d SiDBs over %.2f nm^2@."
            sidb.Bestagon.Library.sidb_count sidb.Bestagon.Library.area_nm2
      | None -> ()

let () =
  Format.printf "full adder through both physical-design engines:@.@.";
  describe "exact   "
    (Core.Flow.Exact
       { Physdesign.Exact.default_config with conflict_budget = Some 500000 });
  describe "scalable" Core.Flow.Scalable
