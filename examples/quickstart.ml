(* Quickstart: run the complete SiDB design-automation flow on a small
   logic network built through the public API.

     dune exec examples/quickstart.exe

   The flow (Sec. 4.2 of the paper): XAG -> rewriting -> technology
   mapping -> exact SAT placement & routing on hexagonal tiles -> formal
   verification -> super-tiles -> dot-accurate SiDB layout. *)

let () =
  (* 1. Describe the function as an XAG: a one-bit full adder. *)
  let ntk = Logic.Network.create () in
  let a = Logic.Network.pi ntk "a"
  and b = Logic.Network.pi ntk "b"
  and cin = Logic.Network.pi ntk "cin" in
  let sum, carry = Logic.Network.full_adder ntk a b cin in
  Logic.Network.po ntk "sum" sum;
  Logic.Network.po ntk "carry" carry;
  Format.printf "specification: %a@." Logic.Network.pp_stats ntk;

  (* 2. Run the whole flow with default options (exact physical design,
     equivalence checking, super-tile formation, Bestagon library). *)
  match Core.Flow.run ntk with
  | Error f -> Format.printf "flow failed: %s@." (Core.Flow.error_message f)
  | Ok result ->
      Format.printf "@.%a@." Core.Flow.pp_summary result;
      Format.printf "@.gate-level layout (clock zones as suffixes):@.%s@."
        (Layout.Render.layout ~show_zones:true result.Core.Flow.supertiled);
      (* 3. Export a SiQAD design file for physical simulation. *)
      let path = "full_adder.sqd" in
      (match Core.Flow.export_sqd result ~path () with
      | Ok () -> Format.printf "wrote %s (open it in SiQAD)@." path
      | Error e -> Format.printf "export failed: %s@." e)
