(* Tests for NPN canonization. *)

module T = Logic.Truth_table
module N = Logic.Npn

let arbitrary_tt n =
  QCheck.map
    (fun bits ->
      let t = ref (T.create n) in
      List.iteri (fun i b -> if b then t := T.set_bit !t i true) bits;
      !t)
    (QCheck.list_of_size (QCheck.Gen.return (1 lsl n)) QCheck.bool)

let test_permutation_count () =
  Alcotest.(check int) "0!" 1 (List.length (N.permutations 0));
  Alcotest.(check int) "3!" 6 (List.length (N.permutations 3));
  Alcotest.(check int) "4!" 24 (List.length (N.permutations 4))

let test_class_counts () =
  (* Classic results: 2 classes at n=1 over {0,1}-ary functions...
     counting all functions of up to n inputs: n=2 -> 4 NPN classes,
     n=3 -> 14, n=4 -> 222. *)
  Alcotest.(check int) "n=2" 4 (N.class_count 2);
  Alcotest.(check int) "n=3" 14 (N.class_count 3)

let test_class_count_4 () =
  Alcotest.(check int) "n=4" 222 (N.class_count 4)

let test_and_or_same_class () =
  (* AND and OR are NPN-equivalent (De Morgan). *)
  let and2 = T.land_ (T.var 2 0) (T.var 2 1) in
  let or2 = T.lor_ (T.var 2 0) (T.var 2 1) in
  Alcotest.(check bool) "same class" true
    (T.equal (N.canonical and2) (N.canonical or2))

let test_xor_xnor_same_class () =
  let x = T.lxor_ (T.var 2 0) (T.var 2 1) in
  Alcotest.(check bool) "xor ~ xnor" true
    (T.equal (N.canonical x) (N.canonical (T.lnot x)))

let test_and_xor_distinct () =
  let and2 = T.land_ (T.var 2 0) (T.var 2 1) in
  let x = T.lxor_ (T.var 2 0) (T.var 2 1) in
  Alcotest.(check bool) "different classes" false
    (T.equal (N.canonical and2) (N.canonical x))

(* The pruned canonizer must agree with the unpruned exhaustive search —
   same canonical table AND same transform — or rewriting results would
   silently depend on which one is used. *)
let check_pruned_vs_exhaustive f =
  let c1, t1 = N.canonize f in
  let c2, t2 = N.canonize_exhaustive f in
  if not (T.equal c1 c2) then
    Alcotest.failf "canonical mismatch on %s: pruned %s, exhaustive %s"
      (T.to_string f) (T.to_string c1) (T.to_string c2);
  if t1 <> t2 then
    Alcotest.failf "transform mismatch on %s" (T.to_string f);
  true

let test_pruned_exhaustive_small () =
  (* All 2^(2^n) functions for n <= 3. *)
  for n = 0 to 3 do
    for v = 0 to (1 lsl (1 lsl n)) - 1 do
      ignore
        (check_pruned_vs_exhaustive
           (T.of_fun n (fun i -> (v lsr i) land 1 = 1)))
    done
  done

let prop_pruned_exhaustive_4 =
  QCheck.Test.make ~name:"pruned = exhaustive (n=4)" ~count:60
    (arbitrary_tt 4) check_pruned_vs_exhaustive

let prop_canonical_idempotent_4 =
  QCheck.Test.make ~name:"canonize is idempotent (n=4)" ~count:100
    (arbitrary_tt 4)
    (fun f -> T.equal (N.canonical (N.canonical f)) (N.canonical f))

let test_canonize_interned () =
  (* canonize interns its result: canonical tables of equal functions are
     physically equal handles. *)
  let f = T.land_ (T.var 4 0) (T.lnot (T.var 4 2)) in
  let g = T.land_ (T.var 4 0) (T.lnot (T.var 4 2)) in
  Alcotest.(check bool) "physically equal" true (N.canonical f == N.canonical g)

let prop_transform_reaches_canonical =
  QCheck.Test.make ~name:"apply_transform f = canonical" ~count:150
    (arbitrary_tt 3) (fun f ->
      let c, t = N.canonize f in
      T.equal (N.apply_transform f t) c)

let prop_canonical_idempotent =
  QCheck.Test.make ~name:"canonize is idempotent" ~count:150 (arbitrary_tt 3)
    (fun f -> T.equal (N.canonical (N.canonical f)) (N.canonical f))

let prop_class_invariance =
  (* Random NPN transformations of f stay in f's class. *)
  QCheck.Test.make ~name:"class invariance" ~count:150
    (QCheck.triple (arbitrary_tt 3) (QCheck.int_range 0 7) QCheck.bool)
    (fun (f, flips, out) ->
      let g = ref f in
      for i = 0 to 2 do
        if (flips lsr i) land 1 = 1 then g := T.flip_var !g i
      done;
      let g = if out then T.lnot !g else !g in
      let g = T.swap_vars g 0 (flips mod 3) in
      T.equal (N.canonical f) (N.canonical g))

let prop_input_assignment_bijective =
  QCheck.Test.make ~name:"input assignment is a bijection" ~count:100
    (arbitrary_tt 4) (fun f ->
      let _, t = N.canonize f in
      let sources = List.init 4 (fun j -> fst (N.input_assignment t j)) in
      List.sort compare sources = [ 0; 1; 2; 3 ])

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "npn"
    [
      ( "classes",
        [
          Alcotest.test_case "permutations" `Quick test_permutation_count;
          Alcotest.test_case "small class counts" `Quick test_class_counts;
          Alcotest.test_case "222 classes at n=4" `Slow test_class_count_4;
          Alcotest.test_case "and ~ or" `Quick test_and_or_same_class;
          Alcotest.test_case "xor ~ xnor" `Quick test_xor_xnor_same_class;
          Alcotest.test_case "and <> xor" `Quick test_and_xor_distinct;
        ] );
      ( "pruning",
        Alcotest.test_case "pruned = exhaustive (all n<=3)" `Quick
          test_pruned_exhaustive_small
        :: Alcotest.test_case "canonical interned" `Quick
             test_canonize_interned
        :: qt [ prop_pruned_exhaustive_4; prop_canonical_idempotent_4 ] );
      ( "properties",
        qt
          [
            prop_transform_reaches_canonical;
            prop_canonical_idempotent;
            prop_class_invariance;
            prop_input_assignment_bijective;
          ] );
    ]
