(* Tests for clocking schemes, tiles, gate-level layouts, design rules,
   and super-tile formation. *)

module C = Hexlib.Coord
module D = Hexlib.Direction
module Cl = Layout.Clocking
module Tile = Layout.Tile
module GL = Layout.Gate_layout
module DR = Layout.Design_rules
module ST = Layout.Supertile
module M = Logic.Mapped

let offset col row : C.offset = { col; row }

(* --- clocking ---------------------------------------------------------- *)

let test_zone_assignments () =
  Alcotest.(check int) "row" 2 (Cl.zone Cl.Row (offset 5 6));
  Alcotest.(check int) "columnar" 1 (Cl.zone Cl.Columnar (offset 5 6));
  Alcotest.(check int) "2ddwave" 3 (Cl.zone Cl.Two_d_d_wave (offset 5 6));
  Alcotest.(check int) "use 0,0" 0 (Cl.zone Cl.Use (offset 0 0));
  Alcotest.(check int) "use 1,1" 2 (Cl.zone Cl.Use (offset 1 1))

let test_zone_negative_coords () =
  Alcotest.(check int) "negative row" 3 (Cl.zone Cl.Row (offset 0 (-1)))

let test_legal_flow () =
  Alcotest.(check bool) "0 -> 1" true (Cl.legal_flow ~from_zone:0 ~to_zone:1);
  Alcotest.(check bool) "3 -> 0" true (Cl.legal_flow ~from_zone:3 ~to_zone:0);
  Alcotest.(check bool) "1 -> 3" false (Cl.legal_flow ~from_zone:1 ~to_zone:3);
  Alcotest.(check bool) "2 -> 2" false (Cl.legal_flow ~from_zone:2 ~to_zone:2)

let test_expanded_zones () =
  (* Three rows per electrode. *)
  Alcotest.(check int) "rows 0-2 same zone" (Cl.zone_expanded Cl.Row ~rows_per_zone:3 (offset 0 0))
    (Cl.zone_expanded Cl.Row ~rows_per_zone:3 (offset 0 2));
  Alcotest.(check bool) "row 3 next zone" true
    (Cl.zone_expanded Cl.Row ~rows_per_zone:3 (offset 0 3)
    = (Cl.zone_expanded Cl.Row ~rows_per_zone:3 (offset 0 0) + 1) mod 4)

let test_feed_forward_flags () =
  Alcotest.(check bool) "row ff" true (Cl.is_feed_forward Cl.Row);
  Alcotest.(check bool) "use not ff" false (Cl.is_feed_forward Cl.Use)

(* --- tiles ---------------------------------------------------------------- *)

let xor_tile =
  Tile.Gate
    { fn = M.Xor2; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }

let test_tile_predicates () =
  Alcotest.(check bool) "empty" true (Tile.is_empty Tile.Empty);
  Alcotest.(check bool) "gate" true (Tile.is_gate xor_tile);
  let cross =
    Tile.Wire
      {
        segments =
          [ (D.North_west, D.South_east); (D.North_east, D.South_west) ];
      }
  in
  Alcotest.(check bool) "crossing" true (Tile.is_crossing cross);
  let double =
    Tile.Wire
      {
        segments =
          [ (D.North_west, D.South_west); (D.North_east, D.South_east) ];
      }
  in
  Alcotest.(check bool) "double is not crossing" false (Tile.is_crossing double)

let test_tile_well_formed () =
  Alcotest.(check bool) "xor ok" true (Tile.well_formed xor_tile = Ok ());
  let bad_arity =
    Tile.Gate { fn = M.And2; ins = [ D.North_west ]; outs = [ D.South_east ] }
  in
  Alcotest.(check bool) "arity" true (Result.is_error (Tile.well_formed bad_arity));
  let dup_border =
    Tile.Gate
      {
        fn = M.And2;
        ins = [ D.North_west; D.North_west ];
        outs = [ D.South_east ];
      }
  in
  Alcotest.(check bool) "duplicate border" true
    (Result.is_error (Tile.well_formed dup_border))

let test_tile_eval () =
  let values = [ (D.North_west, true); (D.North_east, false) ] in
  Alcotest.(check bool) "xor(1,0)" true
    (List.assoc D.South_east (Tile.eval xor_tile values));
  let ha =
    Tile.Gate
      {
        fn = M.Ha;
        ins = [ D.North_west; D.North_east ];
        outs = [ D.South_west; D.South_east ];
      }
  in
  let outs = Tile.eval ha [ (D.North_west, true); (D.North_east, true) ] in
  Alcotest.(check bool) "ha sum(1,1)=0" false (List.assoc D.South_west outs);
  Alcotest.(check bool) "ha carry(1,1)=1" true (List.assoc D.South_east outs)

(* --- a hand-built legal layout: f = a XOR b --------------------------------- *)

let xor_layout () =
  let l =
    GL.create ~width:2 ~height:3 ~clocking:(GL.Scheme Cl.Row)
  in
  (* Row 0: two input pads; row 1 is odd (shifted right).  PI a at (0,0)
     emits SE -> (0,1); PI b at (1,0) emits SW -> (1,1)?  On hexagonal
     odd-r, SE of (1,0) is (1,1) and SW of (1,0) is (0,1): use SW so both
     meet at... they must meet at one tile: target the XOR at (0,1):
     (0,0) SE -> (0,1); (1,0) SW -> (0,1). *)
  GL.set l (offset 0 0) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 1 0) (Tile.Pi { name = "b"; out = D.South_west });
  GL.set l (offset 0 1)
    (Tile.Gate
       {
         fn = M.Xor2;
         ins = [ D.North_west; D.North_east ];
         outs = [ D.South_west ];
       });
  (* SW of (0,1) (odd row) is (0,2). *)
  GL.set l (offset 0 2) (Tile.Po { name = "f"; inp = D.North_east });
  l

let test_layout_stats () =
  let l = xor_layout () in
  let s = GL.stats l in
  Alcotest.(check int) "width" 2 s.GL.bounding_width;
  Alcotest.(check int) "height" 3 s.GL.bounding_height;
  Alcotest.(check int) "gates" 1 s.GL.gate_tiles;
  Alcotest.(check int) "pis" 2 s.GL.pi_tiles;
  Alcotest.(check int) "pos" 1 s.GL.po_tiles

let test_layout_clean () =
  let l = xor_layout () in
  let violations = DR.check l in
  List.iter (fun v -> Format.printf "%a@." DR.pp_violation v) violations;
  Alcotest.(check int) "drc clean" 0 (List.length violations)

let test_signal_source () =
  let l = xor_layout () in
  (match GL.signal_source l (offset 0 1) D.North_west with
  | Some (c, d) ->
      Alcotest.(check bool) "source tile" true (C.equal_offset c (offset 0 0));
      Alcotest.(check bool) "emitting dir" true (D.equal d D.South_east)
  | None -> Alcotest.fail "expected source");
  Alcotest.(check bool) "no source on unused border" true
    (GL.signal_source l (offset 0 1) D.East = None)

let test_drc_dangling () =
  let l = xor_layout () in
  (* Remove the PO: the XOR's output dangles, and DRC must complain. *)
  GL.set l (offset 0 2) Tile.Empty;
  let violations = DR.check l in
  Alcotest.(check bool) "dangling detected" true
    (List.exists (fun v -> v.DR.rule = "connectivity") violations)

let test_drc_clocking () =
  (* Lateral flow within one row is a clocking violation under Row. *)
  let l = GL.create ~width:2 ~height:4 ~clocking:(GL.Scheme Cl.Row) in
  GL.set l (offset 0 0) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 0 1)
    (Tile.Wire { segments = [ (D.North_west, D.East) ] });
  GL.set l (offset 1 1)
    (Tile.Wire { segments = [ (D.West, D.South_east) ] });
  GL.set l (offset 2 2 |> fun _ -> offset 1 2) (Tile.Po { name = "f"; inp = D.North_west });
  let violations = DR.check l in
  Alcotest.(check bool) "clocking violation" true
    (List.exists (fun v -> v.DR.rule = "clocking" || v.DR.rule = "orientation") violations)

let test_drc_border_io () =
  let l = GL.create ~width:2 ~height:4 ~clocking:(GL.Scheme Cl.Row) in
  GL.set l (offset 0 1) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 0 2) (Tile.Po { name = "f"; inp = D.North_west });
  let violations = DR.check l in
  Alcotest.(check bool) "pi not on border" true
    (List.exists (fun v -> v.DR.rule = "border-io") violations);
  let relaxed = DR.check ~require_border_io:false l in
  Alcotest.(check bool) "relaxed has no border-io" true
    (not (List.exists (fun v -> v.DR.rule = "border-io") relaxed))

(* --- whole-layout audit ----------------------------------------------------- *)

let test_audit_clean () =
  Alcotest.(check int) "audit clean" 0 (List.length (DR.audit (xor_layout ())))

let test_audit_missing_io () =
  let l = GL.create ~width:2 ~height:2 ~clocking:(GL.Scheme Cl.Row) in
  let violations = DR.audit l in
  Alcotest.(check bool) "missing input pad reported" true
    (List.exists
       (fun v -> v.DR.rule = "audit" && v.DR.message = "layout has no input pads")
       violations);
  Alcotest.(check bool) "missing output pad reported" true
    (List.exists
       (fun v ->
         v.DR.rule = "audit" && v.DR.message = "layout has no output pads")
       violations)

let test_audit_duplicate_pad_names () =
  let l = xor_layout () in
  (* Rename PI b to a: two input pads now share a name. *)
  GL.set l (offset 1 0) (Tile.Pi { name = "a"; out = D.South_west });
  Alcotest.(check bool) "duplicate name reported" true
    (List.exists
       (fun v -> v.DR.rule = "audit" && v.DR.message = "duplicate input pad \"a\"")
       (DR.audit l))

let test_audit_unreachable_tile () =
  (* An isolated wire is flagged as unreachable from the input pads. *)
  let l = xor_layout () in
  GL.set l (offset 1 1)
    (Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
  Alcotest.(check bool) "unreachable from inputs" true
    (List.exists
       (fun v ->
         v.DR.rule = "audit"
         && v.DR.message = "tile is not reachable from any input pad")
       (DR.audit l))

let test_audit_dead_end_branch () =
  (* A branch fed by an input pad whose signal never reaches an output
     pad: straight a->f wire path, plus pad b driving a wire that dead
     ends. *)
  let l = GL.create ~width:2 ~height:3 ~clocking:(GL.Scheme Cl.Row) in
  GL.set l (offset 0 0) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 0 1)
    (Tile.Wire { segments = [ (D.North_west, D.South_west) ] });
  GL.set l (offset 0 2) (Tile.Po { name = "f"; inp = D.North_east });
  GL.set l (offset 1 0) (Tile.Pi { name = "b"; out = D.South_east });
  GL.set l (offset 1 1)
    (Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
  let violations = DR.audit l in
  Alcotest.(check bool) "dead end flagged" true
    (List.exists
       (fun v ->
         v.DR.rule = "audit"
         && v.DR.message = "tile does not reach any output pad"
         && C.equal_offset v.DR.at (offset 1 1))
       violations)

let test_audit_superset_of_check () =
  (* Every plain-check violation appears in the audit too. *)
  let l = xor_layout () in
  GL.set l (offset 0 2) Tile.Empty;
  let check_rules = List.map (fun v -> (v.DR.at, v.DR.rule)) (DR.check l) in
  let audit_rules = List.map (fun v -> (v.DR.at, v.DR.rule)) (DR.audit l) in
  Alcotest.(check bool) "audit superset" true
    (List.for_all (fun r -> List.mem r audit_rules) check_rules)

(* --- super-tiles ---------------------------------------------------------------- *)

let test_supertile_rows () =
  (* 40 nm metal pitch over 17.664 nm tiles: 3 rows per electrode. *)
  Alcotest.(check int) "rows per zone" 3 (ST.rows_per_zone ());
  Alcotest.(check int) "finer pitch" 2
    (ST.rows_per_zone ~metal_pitch_nm:25. ());
  Alcotest.(check int) "exact fit" 1
    (ST.rows_per_zone ~metal_pitch_nm:17. ())

let test_supertile_expand () =
  let l = xor_layout () in
  let expanded = ST.expand l in
  (match GL.clocking expanded with
  | GL.Expanded (Cl.Row, 3) -> ()
  | _ -> Alcotest.fail "expected Expanded (Row, 3)");
  (* All three rows now share electrode 0. *)
  Alcotest.(check int) "zone 0" 0 (GL.zone expanded (offset 0 0));
  Alcotest.(check int) "zone still 0" 0 (GL.zone expanded (offset 0 2));
  (* The expanded layout remains DRC-clean: intra-super-tile flow is
     allowed. *)
  Alcotest.(check int) "drc clean" 0 (List.length (DR.check expanded))

let test_electrode_count () =
  let l = xor_layout () in
  Alcotest.(check int) "per-row electrodes" 3 (ST.electrode_count l);
  Alcotest.(check int) "expanded electrodes" 1
    (ST.electrode_count (ST.expand l))

let test_supertile_use_rejected () =
  let l = GL.create ~width:2 ~height:2 ~clocking:(GL.Scheme Cl.Use) in
  Alcotest.(check bool) "use rejected" true
    (try
       ignore (ST.expand l);
       false
     with Invalid_argument _ -> true)

(* --- rendering --------------------------------------------------------------------- *)

let test_render () =
  let text = Layout.Render.layout (xor_layout ()) in
  Alcotest.(check bool) "mentions XOR" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains text "XOR" && contains text "PI:a" && contains text "PO:f")

let () =
  Alcotest.run "layout"
    [
      ( "clocking",
        [
          Alcotest.test_case "zones" `Quick test_zone_assignments;
          Alcotest.test_case "negative" `Quick test_zone_negative_coords;
          Alcotest.test_case "legal flow" `Quick test_legal_flow;
          Alcotest.test_case "expanded" `Quick test_expanded_zones;
          Alcotest.test_case "feed-forward" `Quick test_feed_forward_flags;
        ] );
      ( "tiles",
        [
          Alcotest.test_case "predicates" `Quick test_tile_predicates;
          Alcotest.test_case "well-formed" `Quick test_tile_well_formed;
          Alcotest.test_case "eval" `Quick test_tile_eval;
        ] );
      ( "layouts",
        [
          Alcotest.test_case "stats" `Quick test_layout_stats;
          Alcotest.test_case "clean layout" `Quick test_layout_clean;
          Alcotest.test_case "signal source" `Quick test_signal_source;
          Alcotest.test_case "dangling" `Quick test_drc_dangling;
          Alcotest.test_case "clocking violation" `Quick test_drc_clocking;
          Alcotest.test_case "border io" `Quick test_drc_border_io;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean" `Quick test_audit_clean;
          Alcotest.test_case "missing io" `Quick test_audit_missing_io;
          Alcotest.test_case "duplicate pad names" `Quick
            test_audit_duplicate_pad_names;
          Alcotest.test_case "unreachable tile" `Quick
            test_audit_unreachable_tile;
          Alcotest.test_case "dead-end branch" `Quick
            test_audit_dead_end_branch;
          Alcotest.test_case "superset of check" `Quick
            test_audit_superset_of_check;
        ] );
      ( "supertiles",
        [
          Alcotest.test_case "rows per zone" `Quick test_supertile_rows;
          Alcotest.test_case "expand" `Quick test_supertile_expand;
          Alcotest.test_case "electrodes" `Quick test_electrode_count;
          Alcotest.test_case "use rejected" `Quick test_supertile_use_rejected;
        ] );
      ("render", [ Alcotest.test_case "ascii" `Quick test_render ]);
    ]
