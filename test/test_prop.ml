(* Tests for the hand-rolled property-testing kit (Core.Prop) that
   drives the fuzz harness. *)

module P = Core.Prop

let test_rng_deterministic () =
  let a = P.Rng.create 42 and b = P.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (P.Rng.int a 1000) (P.Rng.int b 1000)
  done;
  let c = P.Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if P.Rng.int a 1000 <> P.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let r = P.Rng.create 7 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = P.Rng.int r 5 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 5);
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_split_independent () =
  let r = P.Rng.create 11 in
  let s = P.Rng.split r in
  (* Drawing from the split stream must not perturb the parent's
     subsequent draws relative to a fresh split at the same point. *)
  let r' = P.Rng.create 11 in
  let _ = P.Rng.split r' in
  for _ = 1 to 5 do
    ignore (P.Rng.int s 100)
  done;
  Alcotest.(check int) "parent unaffected by child draws"
    (P.Rng.int r' 1_000_000) (P.Rng.int r 1_000_000)

let test_check_passes () =
  match P.check ~seed:1 ~iterations:50 P.cnf (fun _ -> Ok ()) with
  | P.Passed n -> Alcotest.(check int) "all iterations" 50 n
  | P.Failed _ -> Alcotest.fail "trivial property failed"

let test_check_deterministic () =
  let prop (f : P.cnf) =
    if List.length f.P.clauses mod 7 = 0 then Error "multiple of 7" else Ok ()
  in
  let run () =
    match P.check ~seed:99 ~iterations:100 P.cnf prop with
    | P.Passed _ -> None
    | P.Failed c -> Some (c.P.iteration, c.P.shrunk)
  in
  Alcotest.(check bool) "same seed, same counterexample" true (run () = run ())

let test_check_shrinks_to_boundary () =
  (* Fails whenever the formula has >= 3 clauses: greedy shrinking must
     land exactly on the 3-clause boundary (dropping one more clause
     would make the property pass). *)
  let prop (f : P.cnf) =
    if List.length f.P.clauses >= 3 then Error "too many clauses" else Ok ()
  in
  match P.check ~seed:1 ~iterations:200 P.cnf prop with
  | P.Passed _ -> Alcotest.fail "property must fail on some input"
  | P.Failed c ->
      Alcotest.(check int) "shrunk to the boundary" 3
        (List.length c.P.shrunk.P.clauses);
      Alcotest.(check bool) "no larger than the original" true
        (List.length c.P.shrunk.P.clauses
        <= List.length c.P.original.P.clauses)

let test_exception_is_failure () =
  match
    P.check ~seed:3 ~iterations:5 P.cnf (fun _ -> failwith "boom")
  with
  | P.Passed _ -> Alcotest.fail "raising property must fail"
  | P.Failed c ->
      Alcotest.(check bool) "reason carries the exception" true
        (String.length c.P.reason > 0)

let test_brute_force_oracle () =
  let sat nvars clauses = P.brute_force_sat { P.nvars; clauses } in
  Alcotest.(check bool) "unit" true (sat 1 [ [ 1 ] ]);
  Alcotest.(check bool) "contradiction" false (sat 1 [ [ 1 ]; [ -1 ] ]);
  Alcotest.(check bool) "empty clause" false (sat 2 [ [ 1; 2 ]; [] ]);
  Alcotest.(check bool) "xor-ish" true
    (sat 2 [ [ 1; 2 ]; [ -1; -2 ] ]);
  Alcotest.(check bool) "pigeonhole 2-in-1" false
    (sat 2 [ [ 1 ]; [ 2 ]; [ -1; -2 ] ])

let test_build_xag () =
  let r =
    {
      P.xag_inputs = 2;
      xag_gates =
        [ { P.op_is_xor = true; a = 0; b = 1; na = false; nb = false } ];
      out_negate = true;
    }
  in
  let n = P.build_xag r in
  Alcotest.(check int) "pis" 2 (Logic.Network.num_pis n);
  Alcotest.(check int) "pos" 1 (Logic.Network.num_pos n);
  (* f0 = not (x1 xor x0): an XNOR. *)
  List.iter
    (fun (a, b, expect) ->
      let out = Logic.Network.eval n [| a; b |] in
      Alcotest.(check bool)
        (Printf.sprintf "xnor %b %b" a b)
        expect out.(0))
    [
      (false, false, true);
      (false, true, false);
      (true, false, false);
      (true, true, true);
    ]

let test_generated_xags_build () =
  (* Every generated recipe must materialize without raising and
     simulate on the all-false vector. *)
  let rng = P.Rng.create 5 in
  for _ = 1 to 100 do
    let r = P.xag.P.gen (P.Rng.split rng) in
    let n = P.build_xag r in
    let out = Logic.Network.eval n (Array.make (Logic.Network.num_pis n) false) in
    Alcotest.(check bool) "has outputs" true (Array.length out >= 1)
  done

let test_defect_params_shrink () =
  let p =
    { Sidb.Defects.missing = 2; extra = 1; charged = 1; trials = 3; seed = 9 }
  in
  let smaller = P.defect_params.P.shrink p in
  Alcotest.(check bool) "offers candidates" true (smaller <> []);
  List.iter
    (fun (q : Sidb.Defects.params) ->
      Alcotest.(check bool) "never grows" true
        (q.Sidb.Defects.missing <= p.Sidb.Defects.missing
        && q.Sidb.Defects.extra <= p.Sidb.Defects.extra
        && q.Sidb.Defects.charged <= p.Sidb.Defects.charged
        && q.Sidb.Defects.trials <= p.Sidb.Defects.trials))
    smaller

let () =
  Alcotest.run "prop"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_split_independent;
        ] );
      ( "check",
        [
          Alcotest.test_case "passes" `Quick test_check_passes;
          Alcotest.test_case "deterministic" `Quick test_check_deterministic;
          Alcotest.test_case "shrinks to boundary" `Quick
            test_check_shrinks_to_boundary;
          Alcotest.test_case "exception is failure" `Quick
            test_exception_is_failure;
        ] );
      ( "generators",
        [
          Alcotest.test_case "brute-force oracle" `Quick
            test_brute_force_oracle;
          Alcotest.test_case "xag builder" `Quick test_build_xag;
          Alcotest.test_case "generated xags build" `Quick
            test_generated_xags_build;
          Alcotest.test_case "defect shrink" `Quick test_defect_params_shrink;
        ] );
    ]
