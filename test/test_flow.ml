(* End-to-end tests of the complete design flow (all eight steps). *)

module F = Core.Flow
module T1 = Core.Table1
module GL = Layout.Gate_layout
module E = Verify.Equivalence

let run_ok ?options ?budget name =
  match F.run_benchmark ?options ?budget name with
  | Ok r -> r
  | Error f -> Alcotest.fail (name ^ ": " ^ F.error_message f)

let test_xor2_end_to_end () =
  let r = run_ok "xor2" in
  Alcotest.(check int) "drc clean" 0 (List.length r.F.drc_violations);
  Alcotest.(check bool) "equivalent" true (r.F.equivalence = Some E.Equivalent);
  let stats = GL.stats r.F.gate_layout in
  Alcotest.(check (pair int int)) "paper dimensions" (2, 3)
    (stats.GL.bounding_width, stats.GL.bounding_height);
  (match r.F.sidb with
  | Some sidb ->
      Alcotest.(check (float 0.01)) "paper area" 2403.98 sidb.Bestagon.Library.area_nm2;
      Alcotest.(check bool) "dot count in paper's ballpark" true
        (sidb.Bestagon.Library.sidb_count >= 40
        && sidb.Bestagon.Library.sidb_count <= 80)
  | None -> Alcotest.fail "no sidb layout");
  (* Step 6: the super-tiled layout groups three rows per electrode. *)
  match GL.clocking r.F.supertiled with
  | GL.Expanded (Layout.Clocking.Row, 3) -> ()
  | _ -> Alcotest.fail "expected super-tile expansion"

(* --- whole-layout assembly and simulation --------------------------------- *)

let test_assembly_matches_library () =
  (* The assembler and the fabrication exporter flatten the same layout:
     one site per library DB, nothing dropped, every site zoned. *)
  let r = run_ok "xor2" in
  match Bestagon.Assembly.assemble r.F.supertiled with
  | Error e -> Alcotest.fail e
  | Ok a ->
      (match r.F.sidb with
      | Some sidb ->
          Alcotest.(check int) "site count = exported dot count"
            sidb.Bestagon.Library.sidb_count a.Bestagon.Assembly.site_count
      | None -> Alcotest.fail "no sidb layout");
      Alcotest.(check int) "nothing dropped" 0
        a.Bestagon.Assembly.duplicates_dropped;
      Alcotest.(check int) "zones aligned" a.Bestagon.Assembly.site_count
        (Array.length a.Bestagon.Assembly.zones);
      Alcotest.(check bool) "tiles assembled" true
        (a.Bestagon.Assembly.tile_count > 0);
      Alcotest.(check bool) "canvases validated" true
        a.Bestagon.Assembly.all_validated;
      (* A clock bias enters through v_ext: biasing every zone by +0.2 eV
         raises any single-electron configuration's energy by 0.2 eV. *)
      let n = a.Bestagon.Assembly.site_count in
      let occ = Array.init n (fun i -> i = 0) in
      let e0 = Sidb.Charge_system.energy a.Bestagon.Assembly.system occ in
      let biased = Bestagon.Assembly.with_clock_bias a [| 0.2 |] in
      let e1 = Sidb.Charge_system.energy biased.Bestagon.Assembly.system occ in
      Alcotest.(check (float 1e-9)) "bias shifts energy" 0.2 (e1 -. e0)

let test_simulate_layout_quicksim () =
  (* xor2's supertiled layout is ~54 DBs — past the exact-engine limit,
     so auto selection must pick quicksim and finish with valid states. *)
  let r = run_ok "xor2" in
  match F.simulate_layout r with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check string) "auto picks quicksim" "quicksim" s.F.sim_engine;
      Alcotest.(check bool) "flagged heuristic" false s.F.sim_exact;
      Alcotest.(check bool) "past the exact limit" true
        (s.F.sim_sites > F.exact_site_limit);
      Alcotest.(check bool) "physically valid" true s.F.sim_valid;
      Alcotest.(check bool) "energy negative" true (s.F.sim_energy < 0.);
      Alcotest.(check bool) "degenerate or unique" true (s.F.sim_degeneracy >= 1);
      Alcotest.(check bool) "spectrum non-empty" true
        (s.F.sim_spectrum_states >= 1);
      Alcotest.(check bool) "critical temperature in range" true
        (s.F.sim_critical_temperature_k >= 0.
        && s.F.sim_critical_temperature_k <= 400.)

let test_simulate_layout_exact_refusal () =
  (* An explicitly requested exact engine on an oversized system is a
     structured refusal, never an unbounded search. *)
  let r = run_ok "xor2" in
  List.iter
    (fun engine ->
      match F.simulate_layout ~engine r with
      | Ok _ -> Alcotest.fail "expected a refusal"
      | Error e ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "mentions the refusal" true
            (contains e "refused"))
    [ Sidb.Bdl.Exhaustive; Sidb.Bdl.Pruned; Sidb.Bdl.Branch_and_bound ]

let test_domain_of_layout_quicksim () =
  (* Whole-layout operational domain on the heuristic engine: a tiny
     grid must come back structurally sound and bit-identical at any job
     count.  (The fraction itself is honestly 0 today: individually
     validated tiles do not yet cascade through an unclocked multi-tile
     layout — see EXPERIMENTS.md.) *)
  let r = run_ok "xor2" in
  let module OD = Sidb.Operational_domain in
  let x_axis =
    { F.default_domain_x_axis with OD.steps = 3 }
  and y_axis =
    { F.default_domain_y_axis with OD.steps = 3 }
  in
  let engine = Sidb.Bdl.Quicksim Sidb.Ground_state.default_quicksim in
  match F.domain_of_layout ~engine ~jobs:1 ~x_axis ~y_axis r with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check string) "quicksim engine" "quicksim" d.F.dom_engine;
      Alcotest.(check bool) "flagged heuristic" false d.F.dom_exact;
      Alcotest.(check bool) "past the exact limit" true
        (d.F.dom_sites > F.exact_site_limit);
      Alcotest.(check int) "two inputs" 2 d.F.dom_inputs;
      Alcotest.(check int) "one output" 1 d.F.dom_outputs;
      Alcotest.(check int) "grid covered" 9
        d.F.dom_domain.OD.stats.OD.total_points;
      Alcotest.(check bool) "fraction in range" true
        (d.F.dom_domain.OD.operational_fraction >= 0.
        && d.F.dom_domain.OD.operational_fraction <= 1.);
      (match F.domain_of_layout ~engine ~jobs:4 ~x_axis ~y_axis r with
      | Error e -> Alcotest.fail e
      | Ok d4 ->
          Alcotest.(check bool) "jobs=4 bit-identical" true
            (d4.F.dom_domain = d.F.dom_domain))

let test_domain_of_layout_exact_refusal () =
  (* The exact engines refuse whole-layout sweeps past the site limit,
     exactly as simulate_layout does. *)
  let r = run_ok "xor2" in
  match F.domain_of_layout ~engine:Sidb.Bdl.Pruned r with
  | Ok _ -> Alcotest.fail "expected a refusal"
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "mentions the refusal" true
        (contains e "refused")

let small_benchmarks = [ "xor2"; "xnor2"; "par_gen"; "mux21"; "par_check"; "c17" ]

let test_small_benchmarks_verified () =
  List.iter
    (fun name ->
      let r = run_ok name in
      Alcotest.(check int) (name ^ " drc") 0 (List.length r.F.drc_violations);
      Alcotest.(check bool) (name ^ " equivalent") true
        (r.F.equivalence = Some E.Equivalent))
    small_benchmarks

let test_scalable_engine () =
  List.iter
    (fun name ->
      let options = { F.default_options with engine = F.Scalable } in
      let r = run_ok ~options name in
      Alcotest.(check int) (name ^ " drc") 0 (List.length r.F.drc_violations);
      Alcotest.(check bool) (name ^ " equivalent") true
        (r.F.equivalence = Some E.Equivalent))
    (small_benchmarks @ [ "t"; "newtag"; "cm82a_5"; "majority_5_r1" ])

let test_no_rewrite_option () =
  let options = { F.default_options with rewrite = false } in
  let r = run_ok ~options "majority" in
  Alcotest.(check bool) "still equivalent" true
    (r.F.equivalence = Some E.Equivalent)

let test_verilog_entry () =
  let source =
    {|
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  assign s = a ^ b;
  assign c = a & b;
endmodule
|}
  in
  match F.run_verilog source with
  | Error f -> Alcotest.fail (F.error_message f)
  | Ok r ->
      Alcotest.(check bool) "equivalent" true
        (r.F.equivalence = Some E.Equivalent);
      Alcotest.(check int) "drc" 0 (List.length r.F.drc_violations)

let test_verilog_parse_error_reported () =
  match F.run_verilog "module broken (" with
  | Error f ->
      Alcotest.(check bool) "failed while parsing" true
        (f.F.failed_step = F.Parsing);
      Alcotest.(check bool) "mentions parse" true
        (String.length (F.error_message f) > 0)
  | Ok _ -> Alcotest.fail "expected parse failure"

let test_unknown_benchmark () =
  match F.run_benchmark "nonexistent" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_fallback_under_deadline () =
  (* The acceptance scenario: a 1-second deadline on mux21 with the
     fallback engine must never raise and still deliver a DRC-clean,
     equivalence-verified layout, produced by the scalable engine, with
     the degradation named in the diagnostics. *)
  let options =
    {
      F.default_options with
      engine = F.Exact_with_fallback Physdesign.Exact.default_config;
    }
  in
  match
    F.run_benchmark ~options ~budget:(Core.Budget.of_seconds 1.0) "mux21"
  with
  | Error f -> Alcotest.fail ("must not fail: " ^ F.error_message f)
  | Ok r -> (
      Alcotest.(check int) "drc clean" 0 (List.length r.F.drc_violations);
      Alcotest.(check bool) "equivalence verified" true
        (r.F.equivalence = Some E.Equivalent);
      match r.F.diagnostics.F.engine_used with
      | Some F.Used_scalable ->
          Alcotest.(check bool) "degradation named" true
            (List.exists
               (fun d ->
                 let has sub =
                   let n = String.length sub in
                   let rec go i =
                     i + n <= String.length d
                     && (String.sub d i n = sub || go (i + 1))
                   in
                   go 0
                 in
                 has "scalable")
               r.F.diagnostics.F.degradations)
      | Some F.Used_exact ->
          (* Exact finished inside its share: legal, but then there is
             nothing to degrade. *)
          Alcotest.(check bool) "no degradation" true
            (r.F.diagnostics.F.degradations = [])
      | None -> Alcotest.fail "engine not recorded")

let test_fallback_millisecond_deadline () =
  (* An even harsher deadline forces the degradation deterministically. *)
  let options =
    {
      F.default_options with
      engine = F.Exact_with_fallback Physdesign.Exact.default_config;
    }
  in
  match
    F.run_benchmark ~options ~budget:(Core.Budget.of_seconds 0.001) "mux21"
  with
  | Error f -> Alcotest.fail ("must not fail: " ^ F.error_message f)
  | Ok r ->
      Alcotest.(check bool) "scalable engine used" true
        (r.F.diagnostics.F.engine_used = Some F.Used_scalable);
      Alcotest.(check bool) "degradation recorded" true
        (r.F.diagnostics.F.degradations <> []);
      Alcotest.(check int) "drc clean" 0 (List.length r.F.drc_violations);
      (* Verification still ran under the grace budget. *)
      Alcotest.(check bool) "equivalence verified" true
        (r.F.equivalence = Some E.Equivalent)

let test_cancelled_budget () =
  let budget =
    { Core.Budget.unlimited with Core.Budget.cancelled = (fun () -> true) }
  in
  match F.run_benchmark ~budget "xor2" with
  | Error f ->
      Alcotest.(check bool) "cancellation reported" true
        (f.F.budget_reason = Some Core.Budget.Cancelled);
      Alcotest.(check bool) "mapped netlist preserved" true
        (f.F.partial.F.partial_mapped <> None)
  | Ok _ -> Alcotest.fail "expected cancellation failure"

let test_sqd_export () =
  let r = run_ok "xor2" in
  let path = Filename.temp_file "fictionette" ".sqd" in
  (match F.export_sqd r ~path () with
  | Ok () ->
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      Alcotest.(check bool) "sqd content" true
        (String.length text > 200)
  | Error e ->
      Sys.remove path;
      Alcotest.fail e)

(* Paranoid mode: every stage boundary cross-checked. *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let paranoid_checks =
  [
    "rewrite re-simulation";
    "mapping re-simulation";
    "post-route DRC audit";
    "equivalence certificate replay";
    "super-tiled DRC audit";
    "DB spacing";
  ]

let test_paranoid_benchmarks () =
  let total_certified = ref 0 in
  List.iter
    (fun name ->
      match F.run_benchmark ~paranoid:true name with
      | Error f -> Alcotest.fail (name ^ ": " ^ F.error_message f)
      | Ok r ->
          Alcotest.(check bool) (name ^ " equivalent") true
            (r.F.equivalence = Some E.Equivalent);
          Alcotest.(check bool) (name ^ " has certificate") true
            (r.F.certificate <> None);
          (match r.F.certificate with
          | Some c ->
              Alcotest.(check bool) (name ^ " certificate replays") true
                (E.replay c = Ok ())
          | None -> ());
          List.iter
            (fun c ->
              Alcotest.(check bool) (name ^ ": " ^ c) true
                (List.mem c r.F.checks))
            paranoid_checks;
          (* Complete (unbudgeted) exact solves refute every candidate
             size smaller than the winner, and paranoid mode must have
             proof-checked each refutation. *)
          Alcotest.(check int) (name ^ " all refutations certified")
            (r.F.diagnostics.F.exact_attempts - 1)
            r.F.diagnostics.F.certified_refutations;
          total_certified :=
            !total_certified + r.F.diagnostics.F.certified_refutations)
    [ "xor2"; "xnor2"; "par_gen"; "t" ];
  (* At least one benchmark ("t") needs a candidate size refuted before
     the winner, so the DRAT-checked refutation path really ran. *)
  Alcotest.(check bool) "some refutation was proof-checked" true
    (!total_certified > 0)

(* Rebuild the mapped netlist with the function of its first gate
   swapped for a behaviorally different one. *)
let corrupt_one_gate m =
  let module M = Logic.Mapped in
  let m' = M.create () in
  let flipped = ref false in
  let flip fn =
    if !flipped then fn
    else
      match fn with
      | M.Ha -> M.Ha
      | fn ->
          flipped := true;
          (match fn with
          | M.And2 -> M.Or2
          | M.Or2 -> M.And2
          | M.Nand2 -> M.Nor2
          | M.Nor2 -> M.Nand2
          | M.Xor2 -> M.Xnor2
          | M.Xnor2 -> M.Xor2
          | M.Inv -> M.Buf
          | M.Buf -> M.Inv
          | M.Ha -> M.Ha)
  in
  for i = 0 to M.num_nodes m - 1 do
    match M.node m i with
    | M.Input (_, name) -> ignore (M.add_input m' name)
    | M.Gate (fn, srcs) ->
        ignore (M.add_gate m' (flip fn) (Array.to_list srcs))
  done;
  List.iter (fun (name, src) -> M.add_output m' name src) (M.outputs m);
  m'

let test_paranoid_catches_injected_corruption () =
  List.iter
    (fun name ->
      let spec = (Logic.Benchmarks.find name).Logic.Benchmarks.build () in
      match F.run ~paranoid:true ~corrupt_mapped:corrupt_one_gate spec with
      | Ok _ -> Alcotest.fail (name ^ ": corrupted mapping not caught")
      | Error f ->
          (* The mapping cross-check itself must catch it — not DRC,
             not the downstream equivalence check. *)
          Alcotest.(check bool) (name ^ " caught at certification") true
            (f.F.failed_step = F.Certification);
          Alcotest.(check bool) (name ^ " blames tech mapping") true
            (contains f.F.message "technology mapping changed behavior"))
    [ "xor2"; "mux21" ]

let test_paranoid_undecided_is_soft () =
  (* A cancelled budget trips before physical design; paranoid mode must
     not turn budget exhaustion into a certification failure. *)
  let budget =
    { Core.Budget.unlimited with Core.Budget.cancelled = (fun () -> true) }
  in
  match F.run_benchmark ~paranoid:true ~budget "xor2" with
  | Error f ->
      Alcotest.(check bool) "budget, not certification" true
        (f.F.failed_step = F.Physical_design
        && f.F.budget_reason = Some Core.Budget.Cancelled)
  | Ok _ -> Alcotest.fail "expected budget failure"

let test_table1_subset () =
  let rows = T1.generate ~names:[ "xor2"; "par_gen" ] () in
  match rows with
  | [ Ok r1; Ok r2 ] ->
      Alcotest.(check string) "first" "xor2" r1.T1.name;
      Alcotest.(check bool) "both equivalent" true
        (r1.T1.equivalent && r2.T1.equivalent);
      Alcotest.(check int) "xor2 tiles" 6 r1.T1.area_tiles;
      Alcotest.(check int) "par_gen tiles" 12 r2.T1.area_tiles;
      Alcotest.(check bool) "sidbs counted" true (r1.T1.sidbs > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_paper_rows_complete () =
  Alcotest.(check int) "14 benchmarks" 14 (List.length T1.paper_rows);
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " exists") true
        (List.mem name Logic.Benchmarks.names))
    T1.paper_rows

let () =
  Alcotest.run "flow"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "xor2 complete" `Quick test_xor2_end_to_end;
          Alcotest.test_case "whole-layout assembly" `Quick
            test_assembly_matches_library;
          Alcotest.test_case "whole-layout quicksim" `Quick
            test_simulate_layout_quicksim;
          Alcotest.test_case "exact-engine refusal" `Quick
            test_simulate_layout_exact_refusal;
          Alcotest.test_case "whole-layout domain" `Quick
            test_domain_of_layout_quicksim;
          Alcotest.test_case "domain exact-engine refusal" `Quick
            test_domain_of_layout_exact_refusal;
          Alcotest.test_case "small benchmarks" `Slow
            test_small_benchmarks_verified;
          Alcotest.test_case "scalable engine" `Slow test_scalable_engine;
          Alcotest.test_case "no-rewrite option" `Quick test_no_rewrite_option;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "fallback under 1s deadline" `Quick
            test_fallback_under_deadline;
          Alcotest.test_case "fallback under 1ms deadline" `Quick
            test_fallback_millisecond_deadline;
          Alcotest.test_case "cancelled budget" `Quick test_cancelled_budget;
        ] );
      ( "entry-points",
        [
          Alcotest.test_case "verilog" `Quick test_verilog_entry;
          Alcotest.test_case "verilog error" `Quick test_verilog_parse_error_reported;
          Alcotest.test_case "unknown benchmark" `Quick test_unknown_benchmark;
          Alcotest.test_case "sqd export" `Quick test_sqd_export;
        ] );
      ( "paranoid",
        [
          Alcotest.test_case "benchmarks certified" `Slow
            test_paranoid_benchmarks;
          Alcotest.test_case "injected corruption caught" `Quick
            test_paranoid_catches_injected_corruption;
          Alcotest.test_case "budget stays soft" `Quick
            test_paranoid_undecided_is_soft;
        ] );
      ( "table1",
        [
          Alcotest.test_case "subset" `Slow test_table1_subset;
          Alcotest.test_case "paper data" `Quick test_paper_rows_complete;
        ] );
    ]
