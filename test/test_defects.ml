(* Tests of the defect-injection harness and yield metrics. *)

module Df = Sidb.Defects
module B = Sidb.Bdl
module D = Hexlib.Direction

let or_structure_and_spec () =
  let tile =
    Layout.Tile.Gate
      {
        fn = Logic.Mapped.Or2;
        ins = [ D.North_west; D.North_east ];
        outs = [ D.South_east ];
      }
  in
  match
    ( Bestagon.Library.validation_structure tile,
      Bestagon.Library.tile_spec tile )
  with
  | Some s, Some spec -> (s, spec)
  | _ -> Alcotest.fail "no OR structure in the library"

let test_zero_defects_full_yield () =
  let s, spec = or_structure_and_spec () in
  let params =
    { Df.missing = 0; extra = 0; charged = 0; trials = 4; seed = 1 }
  in
  let r = Df.operational_yield params s ~spec in
  Alcotest.(check (float 0.0)) "yield 100%" 1.0 r.Df.yield;
  Alcotest.(check int) "all trials operational" 4 r.Df.operational_trials

let test_destroyed_gate_not_operational () =
  let s, spec = or_structure_and_spec () in
  (* Remove every structural dot: outputs become unreadable in every
     trial, so no trial can match the functional baseline. *)
  let params =
    {
      Df.missing = List.length s.B.fixed;
      extra = 0;
      charged = 0;
      trials = 3;
      seed = 1;
    }
  in
  let r = Df.operational_yield params s ~spec in
  Alcotest.(check (float 0.0)) "yield 0%" 0.0 r.Df.yield

let test_deterministic_under_seed () =
  let s, spec = or_structure_and_spec () in
  let params =
    { Df.missing = 1; extra = 0; charged = 0; trials = 6; seed = 123 }
  in
  let r1 = Df.operational_yield params s ~spec in
  let r2 = Df.operational_yield params s ~spec in
  Alcotest.(check (float 0.0)) "same yield" r1.Df.yield r2.Df.yield;
  Alcotest.(check bool) "same defect draws" true
    (List.map (fun t -> t.Df.defects) r1.Df.trials
    = List.map (fun t -> t.Df.defects) r2.Df.trials)

let test_inject_counts () =
  let s, _ = or_structure_and_spec () in
  let rng = Random.State.make [| 9 |] in
  let params =
    { Df.missing = 2; extra = 1; charged = 1; trials = 1; seed = 9 }
  in
  let inj = Df.inject rng params s in
  Alcotest.(check int) "two dots removed"
    (List.length s.B.fixed - 2 + 1)
    (List.length inj.Df.structure.B.fixed);
  Alcotest.(check int) "four defects" 4 (List.length inj.Df.defects);
  Alcotest.(check int) "one point charge" 1 (List.length inj.Df.charges);
  (* Removed sites really came from the structure; added ones are new. *)
  List.iter
    (fun d ->
      match d with
      | Df.Removed site ->
          Alcotest.(check bool) "was structural" true
            (List.exists (Sidb.Lattice.equal site) s.B.fixed)
      | Df.Added site | Df.Charge_at site ->
          Alcotest.(check bool) "fresh site" false
            (List.exists (Sidb.Lattice.equal site) s.B.fixed))
    inj.Df.defects

let test_charged_defect_shifts_potential () =
  let s, spec = or_structure_and_spec () in
  (* The v_ext plumbing: a huge uniform potential empties the layout and
     must break the gate. *)
  let baseline = B.check s ~spec in
  Alcotest.(check bool) "baseline functional" true baseline.B.functional;
  let broken = B.check ~v_ext_at:(fun _ -> 10.) s ~spec in
  Alcotest.(check bool) "gate broken by potential" false broken.B.functional;
  (* And injected point charges run end to end. *)
  let params =
    { Df.missing = 0; extra = 0; charged = 1; trials = 4; seed = 5 }
  in
  let r = Df.operational_yield params s ~spec in
  Alcotest.(check bool) "yield in range" true
    (r.Df.yield >= 0.0 && r.Df.yield <= 1.0);
  List.iter
    (fun t ->
      Alcotest.(check int) "one charged defect per trial" 1
        (List.length
           (List.filter
              (fun d -> Df.defect_kind d = Df.Charged_defect)
              t.Df.defects)))
    r.Df.trials

let test_layout_yield () =
  let layout =
    Layout.Gate_layout.create ~width:1 ~height:1
      ~clocking:(Layout.Gate_layout.Scheme Layout.Clocking.Row)
  in
  Layout.Gate_layout.set layout
    { Hexlib.Coord.col = 0; row = 0 }
    (Layout.Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
  let params =
    { Df.missing = 0; extra = 0; charged = 0; trials = 2; seed = 3 }
  in
  let y = Bestagon.Yield.of_layout ~params layout in
  Alcotest.(check int) "one simulated tile" 1 y.Bestagon.Yield.simulated_tiles;
  Alcotest.(check (float 0.0)) "perfect layout yield" 1.0
    y.Bestagon.Yield.layout_yield

let () =
  Alcotest.run "defects"
    [
      ( "yield",
        [
          Alcotest.test_case "zero defects" `Quick test_zero_defects_full_yield;
          Alcotest.test_case "destroyed gate" `Quick
            test_destroyed_gate_not_operational;
          Alcotest.test_case "deterministic" `Quick
            test_deterministic_under_seed;
          Alcotest.test_case "layout yield" `Quick test_layout_yield;
        ] );
      ( "injection",
        [
          Alcotest.test_case "counts" `Quick test_inject_counts;
          Alcotest.test_case "charged defects" `Quick
            test_charged_defect_shifts_potential;
        ] );
    ]
