(* Tests for bit-packed truth tables. *)

module T = Logic.Truth_table

let tt = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (T.to_string t)) T.equal

let arbitrary_tt n =
  QCheck.map
    (fun bits ->
      let t = ref (T.create n) in
      List.iteri (fun i b -> if b then t := T.set_bit !t i true) bits;
      !t)
    (QCheck.list_of_size (QCheck.Gen.return (1 lsl n)) QCheck.bool)

let test_consts () =
  Alcotest.(check bool) "const0" true (T.is_const0 (T.const0 3));
  Alcotest.(check bool) "const1" true (T.is_const1 (T.const1 3));
  Alcotest.(check int) "const1 ones" 8 (T.count_ones (T.const1 3));
  Alcotest.(check bool) "const1 of 7 vars" true (T.is_const1 (T.const1 7))

let test_var_patterns () =
  Alcotest.(check string) "var 0 of 2" "1010" (T.to_string (T.var 2 0));
  Alcotest.(check string) "var 1 of 2" "1100" (T.to_string (T.var 2 1));
  (* Large arity: variable 7 of 8. *)
  let v = T.var 8 7 in
  Alcotest.(check int) "var 7/8 ones" 128 (T.count_ones v);
  Alcotest.(check bool) "bit 128 set" true (T.get_bit v 128);
  Alcotest.(check bool) "bit 127 clear" false (T.get_bit v 127)

let test_ops () =
  let a = T.var 2 0 and b = T.var 2 1 in
  Alcotest.(check string) "and" "1000" (T.to_string (T.land_ a b));
  Alcotest.(check string) "or" "1110" (T.to_string (T.lor_ a b));
  Alcotest.(check string) "xor" "0110" (T.to_string (T.lxor_ a b));
  Alcotest.(check string) "not a" "0101" (T.to_string (T.lnot a))

let test_arity_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Truth_table.land_: arity mismatch 2 vs 3") (fun () ->
      ignore (T.land_ (T.var 2 0) (T.var 3 0)))

let test_hex_roundtrip () =
  let t = T.of_hex 4 "cafe" in
  Alcotest.(check string) "hex" "cafe" (T.to_hex t);
  Alcotest.(check string) "string" "1100101011111110" (T.to_string t)

let test_string_roundtrip () =
  let t = T.of_string "0110" in
  Alcotest.(check string) "xor2" "6" (T.to_hex t)

let test_bits_roundtrip () =
  let t = T.of_bits 3 0xE8L in
  Alcotest.(check int64) "maj3 bits" 0xE8L (T.to_bits t)

let test_cofactors () =
  let maj = T.of_bits 3 0xE8L in
  (* maj(a,b,c) with c=0 -> a&b; with c=1 -> a|b *)
  let c0 = T.cofactor0 maj 2 and c1 = T.cofactor1 maj 2 in
  let a = T.var 3 0 and b = T.var 3 1 in
  Alcotest.(check tt) "cofactor0 is and" (T.land_ a b) c0;
  Alcotest.(check tt) "cofactor1 is or" (T.lor_ a b) c1

let test_support () =
  let f = T.land_ (T.var 4 0) (T.var 4 2) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (T.support f);
  Alcotest.(check bool) "dep 1" false (T.depends_on f 1)

let test_swap_flip () =
  let f = T.land_ (T.var 3 0) (T.lnot (T.var 3 1)) in
  let swapped = T.swap_vars f 0 1 in
  Alcotest.(check tt) "swap" (T.land_ (T.var 3 1) (T.lnot (T.var 3 0))) swapped;
  let flipped = T.flip_var f 1 in
  Alcotest.(check tt) "flip" (T.land_ (T.var 3 0) (T.var 3 1)) flipped

let test_extend () =
  let f = T.lxor_ (T.var 2 0) (T.var 2 1) in
  let g = T.extend f 4 in
  Alcotest.(check int) "extended ones" 8 (T.count_ones g);
  Alcotest.(check tt) "same function" (T.lxor_ (T.var 4 0) (T.var 4 1)) g

let test_eval () =
  let maj = T.of_bits 3 0xE8L in
  Alcotest.(check bool) "maj(1,1,0)" true (T.eval maj [| true; true; false |]);
  Alcotest.(check bool) "maj(1,0,0)" false (T.eval maj [| true; false; false |])

let prop_double_negation =
  QCheck.Test.make ~name:"double negation" ~count:200 (arbitrary_tt 4)
    (fun t -> T.equal (T.lnot (T.lnot t)) t)

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan" ~count:200
    (QCheck.pair (arbitrary_tt 4) (arbitrary_tt 4))
    (fun (a, b) ->
      T.equal (T.lnot (T.land_ a b)) (T.lor_ (T.lnot a) (T.lnot b)))

let prop_xor_self =
  QCheck.Test.make ~name:"t xor t = 0" ~count:200 (arbitrary_tt 5) (fun t ->
      T.is_const0 (T.lxor_ t t))

let prop_shannon =
  QCheck.Test.make ~name:"Shannon expansion" ~count:200
    (QCheck.pair (arbitrary_tt 4) (QCheck.int_range 0 3))
    (fun (f, i) ->
      let v = T.var 4 i in
      let expansion =
        T.lor_
          (T.land_ v (T.cofactor1 f i))
          (T.land_ (T.lnot v) (T.cofactor0 f i))
      in
      T.equal f expansion)

let prop_swap_involution =
  QCheck.Test.make ~name:"swap involution" ~count:200
    (QCheck.triple (arbitrary_tt 4) (QCheck.int_range 0 3) (QCheck.int_range 0 3))
    (fun (f, i, j) -> T.equal (T.swap_vars (T.swap_vars f i j) i j) f)

let prop_permute_identity =
  QCheck.Test.make ~name:"identity permutation" ~count:100 (arbitrary_tt 4)
    (fun f -> T.equal (T.permute f [| 0; 1; 2; 3 |]) f)

let prop_flip_involution =
  QCheck.Test.make ~name:"flip involution" ~count:200
    (QCheck.pair (arbitrary_tt 4) (QCheck.int_range 0 3))
    (fun (f, i) -> T.equal (T.flip_var (T.flip_var f i) i) f)

let perms4 = Array.of_list (Logic.Npn.permutations 4)

let prop_permute_composition =
  (* permute renames variable i to p.(i), so applying p then q renames i
     to q.(p.(i)). *)
  QCheck.Test.make ~name:"permute composes" ~count:200
    (QCheck.triple (arbitrary_tt 4) (QCheck.int_range 0 23)
       (QCheck.int_range 0 23))
    (fun (f, pi, qi) ->
      let p = perms4.(pi) and q = perms4.(qi) in
      T.equal
        (T.permute (T.permute f p) q)
        (T.permute f (Array.init 4 (fun i -> q.(p.(i))))))

let prop_of_fun =
  QCheck.Test.make ~name:"of_fun = get_bit" ~count:200 (arbitrary_tt 4)
    (fun f -> T.equal (T.of_fun 4 (T.get_bit f)) f)

let test_intern () =
  let a = T.land_ (T.var 3 0) (T.var 3 1) in
  let b = T.land_ (T.var 3 0) (T.var 3 1) in
  Alcotest.(check bool) "fresh tables are distinct handles" true (a != b);
  Alcotest.(check bool) "interned handles coincide" true
    (T.intern a == T.intern b);
  Alcotest.(check bool) "intern preserves the value" true
    (T.equal (T.intern a) a);
  Alcotest.(check bool) "intern is idempotent" true
    (T.intern (T.intern a) == T.intern a);
  Alcotest.(check bool) "distinct values stay distinct" true
    (T.intern a != T.intern (T.lnot a))

let prop_count_ones_negation =
  QCheck.Test.make ~name:"ones + ones(not) = 2^n" ~count:200 (arbitrary_tt 5)
    (fun f -> T.count_ones f + T.count_ones (T.lnot f) = 32)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 (arbitrary_tt 4) (fun f ->
      T.equal (T.of_hex 4 (T.to_hex f)) f)

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "truth_table"
    [
      ( "basics",
        [
          Alcotest.test_case "constants" `Quick test_consts;
          Alcotest.test_case "variables" `Quick test_var_patterns;
          Alcotest.test_case "operations" `Quick test_ops;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "eval" `Quick test_eval;
        ] );
      ( "structure",
        [
          Alcotest.test_case "cofactors" `Quick test_cofactors;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "swap/flip" `Quick test_swap_flip;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "intern" `Quick test_intern;
        ] );
      ( "properties",
        qt
          [
            prop_double_negation;
            prop_de_morgan;
            prop_xor_self;
            prop_shannon;
            prop_swap_involution;
            prop_flip_involution;
            prop_permute_identity;
            prop_permute_composition;
            prop_of_fun;
            prop_count_ones_negation;
            prop_hex_roundtrip;
          ] );
    ]
