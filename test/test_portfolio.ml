(* Sat.Simplify and Sat.Portfolio: preprocessing soundness, DRAT traces
   through the simplify+solve path, portfolio verdicts, the determinism
   contract at several worker counts, and the cancelled-losing-member
   regression (racing must not poison any member for later reuse). *)

module S = Sat.Solver
module Sp = Sat.Simplify
module P = Sat.Portfolio

let php_formula pigeons holes =
  let var p h = (p * holes) + h + 1 in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (var p) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ -var p1 h; -var p2 h ] :: !clauses
      done
    done
  done;
  (pigeons * holes, List.rev !clauses)

let solver_of ?(proof = false) nvars clauses =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  if proof then S.enable_proof s;
  List.iter (S.add_clause s) clauses;
  s

let random_3sat st nvars nclauses =
  List.init nclauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Random.State.int st nvars in
          if Random.State.bool st then v else -v))

let lit_true model l =
  let v = model.(abs l - 1) in
  if l > 0 then v else not v

let satisfies model clauses =
  List.for_all (fun c -> List.exists (lit_true model) c) clauses

(* --- Simplify ---------------------------------------------------------- *)

let test_simplify_subsumption () =
  let r = Sp.run ~nvars:3 [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check int) "subsumed" 1 r.Sp.counters.Sp.subsumed;
  Alcotest.(check bool)
    "superset gone" false
    (List.mem [ 1; 2; 3 ] r.Sp.clauses)

let test_simplify_self_subsumption () =
  (* [1;2] resolves with [-1;2;3] on 1 to [2;3] ⊂ [-1;2;3]. *)
  let r = Sp.run ~nvars:3 [ [ 1; 2 ]; [ -1; 2; 3 ] ] in
  Alcotest.(check bool)
    "strengthened or eliminated" true
    (r.Sp.counters.Sp.strengthened >= 1
    || r.Sp.counters.Sp.eliminated_vars >= 1)

let test_simplify_unit_strengthens () =
  (* The unit [1] removes -1 from the second clause and subsumes the
     third outright. *)
  let r = Sp.run ~nvars:3 [ [ 1 ]; [ -1; 2 ]; [ 1; 3 ] ] in
  Alcotest.(check bool) "unsat not derived" false (List.mem [] r.Sp.clauses);
  Alcotest.(check bool)
    "units applied" true
    (r.Sp.counters.Sp.strengthened + r.Sp.counters.Sp.subsumed
     + r.Sp.counters.Sp.eliminated_vars
    >= 2)

let test_simplify_pure_literal () =
  (* 3 occurs only positively: eliminated with zero resolvents. *)
  let original = [ [ 1; 3 ]; [ 2; 3 ]; [ -1; -2 ] ] in
  let r = Sp.run ~nvars:3 original in
  Alcotest.(check bool)
    "some variable eliminated" true
    (r.Sp.counters.Sp.eliminated_vars >= 1);
  (* A model of the simplified set must reconstruct to one of the
     original (all-false satisfies the remainder after 3 vanishes). *)
  let s = solver_of 3 r.Sp.clauses in
  (match S.solve s with
  | S.Sat ->
      let m = r.Sp.reconstruct (S.model s) in
      Alcotest.(check bool) "reconstructed model" true (satisfies m original)
  | _ -> Alcotest.fail "simplified pure-literal formula must be Sat");
  Alcotest.(check bool)
    "eliminated list sorted" true
    (List.sort compare r.Sp.eliminated = r.Sp.eliminated)

let test_simplify_refutes () =
  let r = Sp.run ~nvars:2 [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "refuted" true (List.mem [] r.Sp.clauses);
  match Sat.Drat.check ~nvars:2 ~clauses:[ [ 1 ]; [ -1 ] ] r.Sp.proof with
  | Sat.Drat.Valid -> ()
  | Sat.Drat.Invalid _ -> Alcotest.fail "refutation trace rejected"

let test_simplify_proof_checks () =
  (* Simplify php(6,5), refute the simplified set with a proof-logging
     solver, and check the concatenated trace against the ORIGINAL
     clauses with the independent checker. *)
  let nvars, clauses = php_formula 6 5 in
  let r = Sp.run ~nvars clauses in
  let s = solver_of ~proof:true nvars r.Sp.clauses in
  (match S.solve s with
  | S.Unsat -> ()
  | _ -> Alcotest.fail "php(6,5) must stay Unsat after preprocessing");
  match Sat.Drat.check ~nvars ~clauses (r.Sp.proof @ S.proof s) with
  | Sat.Drat.Valid -> ()
  | Sat.Drat.Invalid { step; reason } ->
      Alcotest.fail
        (Printf.sprintf "combined proof rejected at step %d: %s" step reason)

let test_simplify_deterministic () =
  let st = Random.State.make [| 0xD5 |] in
  let clauses = random_3sat st 20 80 in
  let a = Sp.run ~nvars:20 clauses and b = Sp.run ~nvars:20 clauses in
  Alcotest.(check bool) "same clauses" true (a.Sp.clauses = b.Sp.clauses);
  Alcotest.(check bool) "same proof" true (a.Sp.proof = b.Sp.proof);
  Alcotest.(check bool) "same counters" true (a.Sp.counters = b.Sp.counters)

let test_simplify_frozen () =
  (* Frozen variables survive even when pure. *)
  let r = Sp.run ~frozen:[ 3 ] ~nvars:3 [ [ 1; 3 ]; [ 2; 3 ]; [ -1; -2 ] ] in
  Alcotest.(check bool) "3 not eliminated" false (List.mem 3 r.Sp.eliminated)

(* --- Portfolio --------------------------------------------------------- *)

let test_portfolio_sat () =
  let nvars, clauses = php_formula 5 5 in
  let p = P.create ~k:4 ~nvars clauses in
  (match P.solve p with
  | S.Sat -> ()
  | _ -> Alcotest.fail "php(5,5) must be Sat");
  Alcotest.(check bool) "model satisfies" true (satisfies (P.model p) clauses);
  Alcotest.(check bool) "winner set" true (P.winner p <> None)

let test_portfolio_unsat_proof () =
  let nvars, clauses = php_formula 6 5 in
  let p = P.create ~k:4 ~certify:true ~nvars clauses in
  (match P.solve p with
  | S.Unsat -> ()
  | _ -> Alcotest.fail "php(6,5) must be Unsat");
  match Sat.Drat.check ~nvars ~clauses (P.proof p) with
  | Sat.Drat.Valid -> ()
  | Sat.Drat.Invalid { step; reason } ->
      Alcotest.fail
        (Printf.sprintf "portfolio proof rejected at step %d: %s" step reason)

let test_portfolio_matches_single () =
  let st = Random.State.make [| 0xBEEF |] in
  for _ = 1 to 12 do
    let nvars = 20 + Random.State.int st 10 in
    let nclauses = int_of_float (4.26 *. float_of_int nvars) in
    let clauses = random_3sat st nvars nclauses in
    let expected = S.solve (solver_of nvars clauses) in
    let p = P.create ~k:(1 + Random.State.int st 5) ~nvars clauses in
    Alcotest.(check bool) "verdict matches" true (P.solve p = expected)
  done

let test_portfolio_deterministic_across_jobs () =
  (* The contract pinned by DESIGN.md §14: fixed (instance, K) gives a
     bit-identical (verdict, winner, model/proof) at every worker
     count. *)
  let st = Random.State.make [| 0xD17E |] in
  let nvars = 40 in
  let nclauses = int_of_float (4.26 *. float_of_int nvars) in
  let clauses = random_3sat st nvars nclauses in
  let outcome jobs =
    Parallel.Pool.set_default_jobs jobs;
    let p = P.create ~k:4 ~certify:true ~nvars clauses in
    let v = P.solve p in
    let extra =
      match v with S.Sat -> `Model (P.model p) | _ -> `Proof (P.proof p)
    in
    (v, P.winner p, extra)
  in
  let r1 = outcome 1 in
  let r2 = outcome 2 in
  let r4 = outcome 4 in
  Parallel.Pool.set_default_jobs 1;
  Alcotest.(check bool) "jobs 1 = jobs 2" true (r1 = r2);
  Alcotest.(check bool) "jobs 1 = jobs 4" true (r1 = r4)

let test_portfolio_budget_resume () =
  let nvars, clauses = php_formula 9 8 in
  let p = P.create ~k:3 ~nvars clauses in
  (match P.solve ~budget:(Sat.Budget.of_conflicts 50) p with
  | S.Unknown Sat.Budget.Conflicts -> ()
  | _ -> Alcotest.fail "expected Unknown (conflict budget)");
  Alcotest.(check bool) "resumes to Unsat" true (P.solve p = S.Unsat)

let test_portfolio_external_cancel_resume () =
  (* Cancelling the whole portfolio must leave it resumable — and no
     member may be poisoned by the aborted race. *)
  let nvars, clauses = php_formula 8 7 in
  let p = P.create ~k:3 ~nvars clauses in
  let cancel = ref true in
  let budget =
    {
      Sat.Budget.deadline = None;
      conflicts = None;
      cancelled = (fun () -> !cancel);
    }
  in
  (match P.solve ~budget p with
  | S.Sat -> Alcotest.fail "cancelled portfolio answered Sat"
  | S.Unknown _ | S.Unsat -> ());
  cancel := false;
  Alcotest.(check bool) "resumes to Unsat" true (P.solve p = S.Unsat)

let test_losing_members_stay_usable () =
  (* Regression for the race: a losing member is cancelled through its
     Budget mid-solve (or skipped outright).  Either way its instance
     must remain resumable and sound for callers that reuse it. *)
  Parallel.Pool.set_default_jobs 4;
  let check_members nvars clauses expected =
    let p = P.create ~k:4 ~nvars clauses in
    (match P.solve p with
    | r when r = expected -> ()
    | _ -> Alcotest.fail "portfolio verdict wrong");
    for i = 0 to 3 do
      let s = P.member_solver p i in
      Alcotest.(check bool)
        (Printf.sprintf "member %d resumes to the true verdict" i)
        true
        (S.solve s = expected)
    done
  in
  let nvars_s, clauses_s = php_formula 5 5 in
  check_members nvars_s clauses_s S.Sat;
  let nvars_u, clauses_u = php_formula 7 6 in
  check_members nvars_u clauses_u S.Unsat;
  Parallel.Pool.set_default_jobs 1

let test_portfolio_k1_is_baseline () =
  let nvars, clauses = php_formula 6 5 in
  let p = P.create ~k:1 ~nvars clauses in
  Alcotest.(check bool) "k=1 verdict" true (P.solve p = S.Unsat);
  Alcotest.(check int) "one member" 1 (P.k p)

let test_portfolio_stats_expose_simplify () =
  let nvars, clauses = php_formula 6 5 in
  let p = P.create ~k:2 ~nvars clauses in
  ignore (P.solve p);
  let st = P.stats p in
  let c = P.counters p in
  Alcotest.(check int) "subsumed" c.Sp.subsumed st.S.simplify_subsumed;
  Alcotest.(check int)
    "strengthened" c.Sp.strengthened st.S.simplify_strengthened;
  Alcotest.(check int)
    "eliminated" c.Sp.eliminated_vars st.S.simplify_eliminated;
  Alcotest.(check int) "vivified" c.Sp.vivified st.S.simplify_vivified

let test_default_k_resolution () =
  Alcotest.(check bool) "default >= 1" true (P.default_k () >= 1);
  P.set_default_k 3;
  Alcotest.(check int) "override" 3 (P.default_k ());
  P.set_default_k 1;
  Alcotest.(check int) "reset" 1 (P.default_k ());
  Alcotest.(check bool) "rejects zero" true
    (match P.set_default_k 0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_exact_portfolio_agrees () =
  (* The exact engine with a portfolio must find the same minimum area
     as the single-solver engine, and certify its refutations. *)
  let netlist =
    let b = Logic.Benchmarks.find "xor2" in
    Physdesign.Netlist.of_mapped
      (fst (Logic.Tech_map.map (b.Logic.Benchmarks.build ())))
  in
  let base =
    Physdesign.Exact.place_and_route
      ~config:{ Physdesign.Exact.default_config with portfolio = Some 1 }
      netlist
  in
  let port =
    Physdesign.Exact.place_and_route
      ~config:
        {
          Physdesign.Exact.default_config with
          portfolio = Some 3;
          certify = true;
        }
      netlist
  in
  match (base, port) with
  | Ok b, Ok p ->
      Alcotest.(check int) "same width" b.Physdesign.Exact.width
        p.Physdesign.Exact.width;
      Alcotest.(check int) "same height" b.Physdesign.Exact.height
        p.Physdesign.Exact.height
      (* certify:true means any refuted candidate already had its proof
         checked — Certification_failed would have surfaced as Error. *)
  | _ -> Alcotest.fail "exact P&R failed"

let () =
  Alcotest.run "portfolio"
    [
      ( "simplify",
        [
          Alcotest.test_case "subsumption" `Quick test_simplify_subsumption;
          Alcotest.test_case "self-subsumption" `Quick
            test_simplify_self_subsumption;
          Alcotest.test_case "unit strengthening" `Quick
            test_simplify_unit_strengthens;
          Alcotest.test_case "pure literal + reconstruct" `Quick
            test_simplify_pure_literal;
          Alcotest.test_case "refutes at preprocessing" `Quick
            test_simplify_refutes;
          Alcotest.test_case "proof prefix checks" `Quick
            test_simplify_proof_checks;
          Alcotest.test_case "deterministic" `Quick
            test_simplify_deterministic;
          Alcotest.test_case "frozen vars kept" `Quick test_simplify_frozen;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "sat with model" `Quick test_portfolio_sat;
          Alcotest.test_case "unsat with proof" `Quick
            test_portfolio_unsat_proof;
          Alcotest.test_case "matches single solver" `Quick
            test_portfolio_matches_single;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_portfolio_deterministic_across_jobs;
          Alcotest.test_case "budget resume" `Quick
            test_portfolio_budget_resume;
          Alcotest.test_case "external cancel then resume" `Quick
            test_portfolio_external_cancel_resume;
          Alcotest.test_case "losing members stay usable" `Quick
            test_losing_members_stay_usable;
          Alcotest.test_case "k=1 is the baseline" `Quick
            test_portfolio_k1_is_baseline;
          Alcotest.test_case "stats expose simplify" `Quick
            test_portfolio_stats_expose_simplify;
          Alcotest.test_case "default-k resolution" `Quick
            test_default_k_resolution;
          Alcotest.test_case "exact engine agrees" `Slow
            test_exact_portfolio_agrees;
        ] );
    ]
