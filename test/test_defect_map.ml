(* Tests for fixed defect maps (Sidb.Defect_map), the derived
   blocked-tile predicate (Bestagon.Surface), and defect-aware physical
   design in both engines and the flow. *)

module DM = Sidb.Defect_map
module L = Sidb.Lattice
module S = Bestagon.Surface
module G = Bestagon.Geometry
module Y = Bestagon.Yield
module NL = Physdesign.Netlist
module Ex = Physdesign.Exact
module Sc = Physdesign.Scalable
module GL = Layout.Gate_layout

let sample_map () =
  DM.of_entries
    [
      { DM.site = L.site 3 7 0; kind = DM.Charged };
      { DM.site = L.site 0 0 1; kind = DM.Neutral };
      { DM.site = L.site 120 41 1; kind = DM.Charged };
      { DM.site = L.site 55 2 0; kind = DM.Neutral };
    ]

let mapped_of name =
  let b = Logic.Benchmarks.find name in
  fst (Logic.Tech_map.map (b.Logic.Benchmarks.build ()))

(* --- file format -------------------------------------------------------- *)

let test_round_trip () =
  let m = sample_map () in
  match DM.of_string (DM.to_string m) with
  | Ok m' ->
      Alcotest.(check bool) "round trip" true (DM.equal m m');
      Alcotest.(check string) "print is stable" (DM.to_string m)
        (DM.to_string m')
  | Error e -> Alcotest.fail ("round trip failed to parse: " ^ e)

let test_empty_round_trip () =
  match DM.of_string (DM.to_string DM.empty) with
  | Ok m' -> Alcotest.(check bool) "empty" true (DM.is_empty m')
  | Error e -> Alcotest.fail e

let test_comments_and_blanks () =
  let src =
    "sidb-defect-map v1\n# a survey comment\n\ncharged 3 7 0\n\n# trailing\n"
  in
  match DM.of_string src with
  | Ok m ->
      Alcotest.(check int) "size" 1 (DM.size m);
      Alcotest.(check int) "charged" 1 (List.length (DM.charged_sites m))
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  (match DM.of_string "not-a-defect-map\ncharged 0 0 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  (match DM.of_string "sidb-defect-map v1\ncharged 0 zero 0\n" with
  | Error e ->
      Alcotest.(check bool)
        "message names the line" true
        (String.length e > 0
        && (let mentions_2 = ref false in
            String.iter (fun c -> if c = '2' then mentions_2 := true) e;
            !mentions_2))
  | Ok _ -> Alcotest.fail "malformed entry accepted");
  match DM.of_string "sidb-defect-map v1\npositive 0 0 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted"

let test_save_load () =
  let m = sample_map () in
  let path = Filename.temp_file "defmap" ".sdm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      DM.save ~path m;
      match DM.load path with
      | Ok m' -> Alcotest.(check bool) "load = save" true (DM.equal m m')
      | Error e -> Alcotest.fail e)

(* --- queries ------------------------------------------------------------ *)

let test_queries () =
  let m = sample_map () in
  Alcotest.(check bool) "defective" true (DM.is_defective m (L.site 3 7 0));
  Alcotest.(check bool) "clean site" false (DM.is_defective m (L.site 9 9 0));
  Alcotest.(check bool)
    "kind at" true
    (DM.defect_at m (L.site 0 0 1) = Some DM.Neutral);
  Alcotest.(check int) "charged sites" 2 (List.length (DM.charged_sites m));
  Alcotest.(check bool)
    "charged potential is negative-charge repulsion" true
    (DM.potential_at m (L.site 3 9 0) > 0.);
  Alcotest.(check bool)
    "no charges, no v_ext" true
    (DM.v_ext_at (DM.of_entries [ { DM.site = L.site 1 1 0; kind = DM.Neutral } ])
    = None)

(* --- random generator --------------------------------------------------- *)

let test_random_deterministic () =
  let box = ((0, 0), (100, 50)) in
  let a = DM.random ~seed:42 ~charged:5 ~neutral:7 box in
  let b = DM.random ~seed:42 ~charged:5 ~neutral:7 box in
  Alcotest.(check bool) "same seed, same map" true (DM.equal a b);
  Alcotest.(check int) "total count" 12 (DM.size a);
  Alcotest.(check int) "charged count" 5 (List.length (DM.charged_sites a));
  let c = DM.random ~seed:43 ~charged:5 ~neutral:7 box in
  Alcotest.(check bool) "different seed, different map" false (DM.equal a c)

(* --- blocked-tile predicate --------------------------------------------- *)

let center_site c =
  let on, om = G.tile_origin c in
  L.site (on + (G.tile_columns / 2)) (om + (G.tile_rows / 2)) 0

let test_footprint_blocks () =
  let c1 : Hexlib.Coord.offset = { col = 1; row = 1 } in
  let m =
    DM.of_entries [ { DM.site = center_site c1; kind = DM.Charged } ]
  in
  let s = S.create m in
  Alcotest.(check bool) "defective tile blocked" true (S.blocked s c1);
  Alcotest.(check bool)
    "distant tile free" false
    (S.blocked s { col = 3; row = 3 });
  (* A neutral defect blocks only the footprint it falls in. *)
  let mn =
    DM.of_entries
      [ { DM.site = center_site { col = 5; row = 5 }; kind = DM.Neutral } ]
  in
  let sn = S.create mn in
  Alcotest.(check bool)
    "far neutral does not block" false
    (S.blocked sn { col = 0; row = 0 });
  Alcotest.(check bool)
    "its own tile is blocked" true
    (S.blocked sn { col = 5; row = 5 })

let test_near_charge_blocks_through_potential () =
  (* A charged defect two dimer columns left of tile (0,0) — outside the
     footprint but only ~8 A away, deep inside the influence radius —
     must flip some panel member's signature and block the tile. *)
  let on, om = G.tile_origin { Hexlib.Coord.col = 0; row = 0 } in
  let m =
    DM.of_entries
      [ { DM.site = L.site (on - 2) (om + (G.tile_rows / 2)) 0;
          kind = DM.Charged } ]
  in
  let s = S.create m in
  Alcotest.(check bool)
    "adjacent charge blocks" true
    (S.blocked s { col = 0; row = 0 })

let test_blocked_deterministic () =
  let m = DM.random ~seed:7 ~charged:2 ~neutral:3 (S.grid_box ~width:4 ~height:4) in
  let a = S.create m and b = S.create m in
  let la = S.blocked_in_grid a ~width:4 ~height:4
  and lb = S.blocked_in_grid b ~width:4 ~height:4 in
  Alcotest.(check int) "same verdicts" (List.length la) (List.length lb);
  List.iter2
    (fun (x : Hexlib.Coord.offset) (y : Hexlib.Coord.offset) ->
      Alcotest.(check bool) "same coordinate" true (x = y))
    la lb;
  (* Memoized queries stay stable. *)
  List.iter
    (fun c -> Alcotest.(check bool) "stable" true (S.blocked a c))
    la

(* --- engines under a blocked predicate ---------------------------------- *)

let test_exact_avoids_blocked_tile () =
  let nl = NL.of_mapped (mapped_of "xor2") in
  let avoid : Hexlib.Coord.offset = { col = 1; row = 1 } in
  match Ex.place_and_route ~blocked:(fun c -> c = avoid) nl with
  | Ok r ->
      if GL.in_bounds r.Ex.layout avoid then
        Alcotest.(check bool)
          "blocked tile left empty" true
          (Layout.Tile.is_empty (GL.get r.Ex.layout avoid))
  | Error f -> Alcotest.fail (Ex.failure_message f)

let test_fully_blocked_is_structured () =
  let nl = NL.of_mapped (mapped_of "xor2") in
  (* Satellite regression: a grid the map blocks entirely must come back
     as a structured Error from both engines, never as an exception. *)
  (match Sc.place_and_route ~max_retries:3 ~blocked:(fun _ -> true) nl with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scalable: layout on a fully blocked surface");
  match
    Ex.place_and_route
      ~config:{ Ex.default_config with max_extra_width = 1; max_extra_height = 1 }
      ~blocked:(fun _ -> true) nl
  with
  | Error (Ex.No_layout _) -> ()
  | Error f -> Alcotest.fail ("expected No_layout, got " ^ Ex.failure_message f)
  | Ok _ -> Alcotest.fail "exact: layout on a fully blocked surface"

(* --- flow integration --------------------------------------------------- *)

let test_flow_aware_beats_oblivious () =
  let options =
    {
      Core.Flow.default_options with
      engine = Core.Flow.Scalable;
      check_equivalence = false;
      expand_supertiles = false;
      apply_library = false;
    }
  in
  let oblivious =
    match Core.Flow.run_benchmark ~options "xor2" with
    | Ok r -> r
    | Error f -> Alcotest.fail f.Core.Flow.message
  in
  (* Drop a charged defect in the middle of some occupied logic tile of
     the oblivious layout, then re-design aware of it. *)
  let victim = ref None in
  GL.iter oblivious.Core.Flow.gate_layout (fun c tile ->
      if !victim = None && not (Layout.Tile.is_empty tile) then
        victim := Some c);
  let victim =
    match !victim with
    | Some c -> c
    | None -> Alcotest.fail "oblivious layout is empty"
  in
  let map =
    DM.of_entries [ { DM.site = center_site victim; kind = DM.Charged } ]
  in
  match Core.Flow.run_benchmark ~options ~defect_map:map "xor2" with
  | Error f -> Alcotest.fail ("aware flow failed: " ^ f.Core.Flow.message)
  | Ok aware ->
      let surface = S.create map in
      GL.iter aware.Core.Flow.gate_layout (fun c tile ->
          if not (Layout.Tile.is_empty tile) then
            Alcotest.(check bool)
              (Printf.sprintf "tile (%d,%d) not on a blocked coordinate"
                 c.Hexlib.Coord.col c.Hexlib.Coord.row)
              false (S.blocked surface c));
      let y_obl =
        (Y.under_map map oblivious.Core.Flow.gate_layout).Y.map_yield
      and y_aware =
        (Y.under_map map aware.Core.Flow.gate_layout).Y.map_yield
      in
      Alcotest.(check bool)
        (Printf.sprintf "aware yield (%.3f) >= oblivious (%.3f)" y_aware y_obl)
        true
        (y_aware >= y_obl)

let () =
  Alcotest.run "defect_map"
    [
      ( "format",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "empty" `Quick test_empty_round_trip;
          Alcotest.test_case "comments and blanks" `Quick
            test_comments_and_blanks;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "save and load" `Quick test_save_load;
        ] );
      ( "queries",
        [
          Alcotest.test_case "lookups and potential" `Quick test_queries;
          Alcotest.test_case "random generator" `Quick
            test_random_deterministic;
        ] );
      ( "surface",
        [
          Alcotest.test_case "footprint blocks" `Quick test_footprint_blocks;
          Alcotest.test_case "near charge blocks" `Quick
            test_near_charge_blocks_through_potential;
          Alcotest.test_case "deterministic" `Quick test_blocked_deterministic;
        ] );
      ( "engines",
        [
          Alcotest.test_case "exact avoids blocked tile" `Quick
            test_exact_avoids_blocked_tile;
          Alcotest.test_case "fully blocked is structured" `Quick
            test_fully_blocked_is_structured;
        ] );
      ( "flow",
        [
          Alcotest.test_case "aware beats oblivious" `Quick
            test_flow_aware_beats_oblivious;
        ] );
    ]
