(* Chaos and contract tests for the design server.

   The server's whole externally-visible behaviour is
   [Serve.Server.handle_line]; these tests drive it in-process and
   assert the resilience contract: every admitted well-formed request
   gets exactly one structured response, injected faults (malformed
   input, oversized sources, poisoned budgets, mid-request cancellation,
   worker death) are isolated to the request that carried them, and the
   loop itself never dies. *)

module J = Serve.Json
module P = Serve.Protocol
module S = Serve.Server
module H = Serve.Handlers

(* --- helpers ------------------------------------------------------------- *)

let parse_ok s =
  match J.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e s

let status j =
  match P.response_status j with
  | Some s -> s
  | None -> Alcotest.fail "response has no status"

let field name j =
  match J.mem name j with Some v -> v | None -> Alcotest.failf "missing %s" name

let error_kind j =
  match J.mem "error" j with
  | Some e -> Option.value (Option.bind (J.mem "kind" e) J.str) ~default:"?"
  | None -> "?"

(* One response expected for one line. *)
let one server line =
  match S.handle_line server line with
  | [ r ] -> parse_ok r
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

let all server line = List.map parse_ok (S.handle_line server line)

let quick_config =
  {
    S.default_config with
    S.max_timeout_ms = 20_000.;
    sleep = (fun _ -> ());
    chaos = true;
  }

(* Latency and wall-clock figures differ run to run; everything else in
   a response must be reproducible. *)
let rec normalize = function
  | J.Obj fields ->
      J.Obj
        (List.filter_map
           (fun (k, v) ->
             match k with
             | "latency_ms" | "elapsed_s" | "uptime_s" -> None
             | _ -> Some (k, normalize v))
           fields)
  | J.List items -> J.List (List.map normalize items)
  | v -> v

(* --- JSON parser --------------------------------------------------------- *)

let test_json_roundtrip () =
  let samples =
    [
      J.Null; J.Bool true; J.Num 3.25; J.Num (-17.); J.Str "a\"b\\c\nd";
      J.List [ J.Num 1.; J.Str "x"; J.Null ];
      J.Obj [ ("a", J.Num 1.); ("b", J.List [ J.Bool false ]) ];
    ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
      | Error e -> Alcotest.failf "roundtrip parse failed: %s" e)
    samples

let test_json_rejects () =
  let bad =
    [
      ""; "   "; "{"; "}"; "[1,"; "{\"a\":}"; "nul"; "truex"; "\"unterminated";
      "\"\\u12"; "\"\\ud800\""; "1 2"; "{\"a\":1}garbage"; "\x00\x01\x02";
      "{\"a\"\n:1}}"; "[1;2]"; "--3"; "1e"; "\xff\xfe";
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    bad

let test_json_depth_bomb () =
  let bomb = String.make 200 '[' ^ String.make 200 ']' in
  (match J.parse bomb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bomb accepted");
  (* At the cap it still parses. *)
  let deep = String.make 60 '[' ^ String.make 60 ']' in
  match J.parse deep with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 60 rejected: %s" e

let test_json_unicode () =
  (match J.parse "\"\\u00e9\\ud83d\\ude00\"" with
  | Ok (J.Str s) -> Alcotest.(check string) "utf8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escapes rejected");
  match J.parse "\"\\udc00\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone low surrogate accepted"

(* --- protocol validation ------------------------------------------------- *)

let limits = { P.max_source_bytes = 64; allow_chaos = false }

let decode_err line =
  match J.parse line with
  | Error e -> Alcotest.failf "test line is not JSON: %s" e
  | Ok j -> (
      match P.decode limits j with
      | Error (k, _) -> k
      | Ok _ -> Alcotest.failf "decoded: %s" line)

let test_protocol_version () =
  Alcotest.(check string) "missing version" "version"
    (decode_err {|{"kind":"ping"}|});
  Alcotest.(check string) "wrong version" "version"
    (decode_err {|{"fictionette-serve":2,"kind":"ping"}|});
  Alcotest.(check string) "non-object" "parse" (decode_err {|[1,2,3]|})

let test_protocol_validation () =
  Alcotest.(check string) "missing kind" "invalid_request"
    (decode_err {|{"fictionette-serve":1}|});
  Alcotest.(check string) "unknown kind" "invalid_request"
    (decode_err {|{"fictionette-serve":1,"kind":"frobnicate"}|});
  Alcotest.(check string) "poisoned timeout (1e999 = inf)" "invalid_request"
    (decode_err
       {|{"fictionette-serve":1,"kind":"design","benchmark":"c17","timeout_ms":1e999}|});
  Alcotest.(check string) "negative timeout" "invalid_request"
    (decode_err
       {|{"fictionette-serve":1,"kind":"design","benchmark":"c17","timeout_ms":-5}|});
  Alcotest.(check string) "zero timeout" "invalid_request"
    (decode_err
       {|{"fictionette-serve":1,"kind":"design","benchmark":"c17","timeout_ms":0}|});
  Alcotest.(check string) "no source" "invalid_request"
    (decode_err {|{"fictionette-serve":1,"kind":"design"}|});
  Alcotest.(check string) "both sources" "invalid_request"
    (decode_err
       {|{"fictionette-serve":1,"kind":"design","benchmark":"a","verilog":"b"}|});
  Alcotest.(check string) "oversized verilog" "oversized"
    (decode_err
       (Printf.sprintf
          {|{"fictionette-serve":1,"kind":"design","verilog":"%s"}|}
          (String.make 100 'x')));
  Alcotest.(check string) "chaos rejected outside chaos mode" "invalid_request"
    (decode_err
       {|{"fictionette-serve":1,"kind":"design","benchmark":"c17","chaos":"raise"}|})

(* --- server: protocol faults --------------------------------------------- *)

let test_malformed_lines_survive () =
  let server = S.create ~config:quick_config () in
  let nasty =
    [
      "not json"; "{\"truncated\":"; "\x00\xff\xfe"; "[[[[[[";
      "{\"fictionette-serve\":1}"; "{\"fictionette-serve\":\"x\",\"kind\":\"ping\"}";
      "{\"fictionette-serve\":1,\"kind\":\"design\"}"; "]"; "nulll";
    ]
  in
  List.iter
    (fun line ->
      let r = one server line in
      Alcotest.(check string) ("error status for " ^ String.escaped line)
        "error" (status r))
    nasty;
  (* Blank lines produce nothing; the loop is still alive afterwards. *)
  Alcotest.(check int) "blank line ignored" 0
    (List.length (S.handle_line server "   "));
  let r = one server {|{"fictionette-serve":1,"kind":"ping","id":7}|} in
  Alcotest.(check string) "still serving" "ok" (status r);
  Alcotest.(check bool) "id echoed" true (field "id" r = J.Num 7.)

let design_line ?(id = 1) ?(extra = "") bench =
  Printf.sprintf
    {|{"fictionette-serve":1,"kind":"design","benchmark":"%s","id":%d%s}|}
    bench id extra

let test_design_and_cache () =
  let server = S.create ~config:quick_config () in
  let r1 = one server (design_line "c17") in
  Alcotest.(check string) "cold ok" "ok" (status r1);
  let r2 = one server (design_line "c17") in
  Alcotest.(check string) "warm ok" "ok" (status r2);
  Alcotest.(check bool) "warm result identical" true
    (normalize (field "result" r1) = normalize (field "result" r2));
  let memo = Core.Flow.Memo.stats (S.ctx server).H.memo in
  Alcotest.(check bool) "synth cache hit" true
    (memo.Core.Flow.Memo.synth_hits >= 1);
  Alcotest.(check bool) "layout cache hit" true
    (memo.Core.Flow.Memo.layout_hits >= 1)

let test_identity_with_one_shot () =
  (* The served response and a one-shot execution must carry the same
     payload (the CLI --json path calls the same [Handlers.run_job]). *)
  let server = S.create ~config:quick_config () in
  let served = one server (design_line ~id:9 "mux21") in
  let ctx =
    { (H.default_ctx ()) with H.max_timeout_ms = 20_000.; sleep = (fun _ -> ()) }
  in
  let params =
    {
      P.source = P.Benchmark "mux21";
      engine = P.Engine_exact;
      timeout_ms = None;
      conflict_budget = None;
      rewrite = true;
      half_adders = true;
      equivalence = true;
      library = true;
      chaos = None;
    }
  in
  let one_shot = H.run_job ctx ~id:(J.Num 9.) (P.Design params) in
  Alcotest.(check string) "served = one-shot"
    (J.to_string (normalize one_shot))
    (J.to_string (normalize served))

(* --- server: fault isolation --------------------------------------------- *)

let test_chaos_raise_isolated () =
  let server = S.create ~config:quick_config () in
  let rs =
    all server
      {|{"fictionette-serve":1,"kind":"batch","id":"b","jobs":[{"kind":"design","benchmark":"c17","id":1},{"kind":"design","benchmark":"c17","id":2,"chaos":"raise"},{"kind":"simulate","gate":"xor2","id":3}]}|}
  in
  (match rs with
  | [ summary; r1; r2; r3 ] ->
      Alcotest.(check string) "batch summary ok" "ok" (status summary);
      Alcotest.(check string) "sibling 1 ok" "ok" (status r1);
      Alcotest.(check string) "chaos job errors" "error" (status r2);
      Alcotest.(check string) "crash kind" "crash" (error_kind r2);
      Alcotest.(check string) "sibling 3 ok" "ok" (status r3)
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs));
  let r = one server {|{"fictionette-serve":1,"kind":"ping"}|} in
  Alcotest.(check string) "loop survived the crash" "ok" (status r)

let test_chaos_cancel_is_budget_error () =
  let server = S.create ~config:quick_config () in
  let r = one server (design_line ~extra:{|,"chaos":"cancel"|} "c17") in
  Alcotest.(check string) "cancelled errors" "error" (status r);
  Alcotest.(check string) "budget kind" "budget" (error_kind r);
  (match J.mem "error" r with
  | Some e ->
      Alcotest.(check bool) "reason cancelled" true
        (Option.bind (J.mem "reason" e) J.str = Some "cancelled")
  | None -> Alcotest.fail "no error object");
  (* Cancellation is not transient: no retry may have happened. *)
  Alcotest.(check bool) "no retries" true (J.mem "retries" r = None)

let test_poisoned_deadline_is_budget_error () =
  let server = S.create ~config:quick_config () in
  let r = one server (design_line ~extra:{|,"timeout_ms":0.001|} "c17") in
  Alcotest.(check string) "expired budget errors" "error" (status r);
  Alcotest.(check string) "budget kind" "budget" (error_kind r)

let test_retry_ladder_degrades () =
  (* conflict_budget 1 starves the exact engine; the ladder must retry
     on exact-with-fallback (which internally degrades to scalable) and
     answer ok with the degradations on record. *)
  let server = S.create ~config:quick_config () in
  let r =
    one server
      (design_line ~extra:{|,"engine":"exact","conflict_budget":1|} "c17")
  in
  Alcotest.(check string) "degraded but ok" "ok" (status r);
  Alcotest.(check bool) "retries recorded" true (field "retries" r = J.Num 1.);
  match field "degradation" r with
  | J.List (_ :: _ as steps) ->
      let texts = List.filter_map J.str steps in
      Alcotest.(check bool) "ladder step recorded" true
        (List.exists
           (fun s ->
             s = "retry 1: conflict budget on exact; degraded to \
                  exact-with-fallback")
           texts)
  | _ -> Alcotest.fail "no degradation list"

let test_admission_depth_shedding () =
  let server = S.create ~config:{ quick_config with S.max_batch = 1 } () in
  let rs =
    all server
      {|{"fictionette-serve":1,"kind":"batch","jobs":[{"kind":"simulate","gate":"wire","id":1},{"kind":"simulate","gate":"wire","id":2}]}|}
  in
  match rs with
  | [ _summary; r1; r2 ] ->
      Alcotest.(check string) "first admitted" "ok" (status r1);
      Alcotest.(check string) "second shed" "overloaded" (status r2);
      (match J.num (field "retry_after_ms" r2) with
      | Some ms -> Alcotest.(check bool) "retry hint positive" true (ms > 0.)
      | None -> Alcotest.fail "no retry_after_ms")
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

let test_admission_budget_mass_shedding () =
  let server =
    S.create ~config:{ quick_config with S.max_budget_mass_ms = 1_000. } ()
  in
  let rs =
    all server
      {|{"fictionette-serve":1,"kind":"batch","jobs":[{"kind":"design","benchmark":"c17","timeout_ms":900,"id":1},{"kind":"design","benchmark":"c17","timeout_ms":900,"id":2}]}|}
  in
  match rs with
  | [ _summary; r1; r2 ] ->
      Alcotest.(check bool) "first admitted" true (status r1 <> "overloaded");
      Alcotest.(check string) "mass threshold sheds second" "overloaded"
        (status r2)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

let test_batch_job_errors_isolated () =
  (* A malformed job inside a batch gets its own structured error; its
     well-formed siblings still run. *)
  let server = S.create ~config:quick_config () in
  let rs =
    all server
      {|{"fictionette-serve":1,"kind":"batch","jobs":[{"kind":"design","id":1},{"kind":"simulate","gate":"and2","id":2},"not an object"]}|}
  in
  match rs with
  | [ _summary; r1; r2; r3 ] ->
      Alcotest.(check string) "malformed job errors" "error" (status r1);
      Alcotest.(check string) "sibling runs" "ok" (status r2);
      Alcotest.(check string) "non-object job errors" "error" (status r3)
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs)

let test_simulate_engine_selection () =
  let server = S.create ~config:quick_config () in
  let sim engine =
    one server
      (Printf.sprintf
         {|{"fictionette-serve":1,"kind":"simulate","gate":"or2"%s,"id":1}|}
         (match engine with
         | None -> ""
         | Some e -> Printf.sprintf {|,"engine":"%s"|} e))
  in
  (* Explicit engines are echoed with their exactness flag. *)
  let r = sim (Some "quicksim") in
  Alcotest.(check string) "quicksim ok" "ok" (status r);
  let result = field "result" r in
  Alcotest.(check bool) "engine echoed" true
    (J.str (field "engine" result) = Some "quicksim");
  Alcotest.(check bool) "flagged heuristic" true
    (J.bool_ (field "exact" result) = Some false);
  Alcotest.(check bool) "functional" true
    (J.bool_ (field "functional" result) = Some true);
  let r = sim (Some "exhaustive") in
  Alcotest.(check string) "exhaustive ok" "ok" (status r);
  Alcotest.(check bool) "flagged exact" true
    (J.bool_ (field "exact" (field "result" r)) = Some true);
  (* Default: the server's process-wide engine (pruned, exact). *)
  let r = sim None in
  Alcotest.(check string) "default ok" "ok" (status r);
  Alcotest.(check bool) "default exact" true
    (J.bool_ (field "exact" (field "result" r)) = Some true);
  (* Unknown engines are a structured invalid_request, not a crash. *)
  let r = sim (Some "annealer") in
  Alcotest.(check string) "unknown engine rejected" "error" (status r);
  Alcotest.(check bool) "invalid_request kind" true
    (J.str (field "kind" (field "error" r)) = Some "invalid_request")

let test_domain_job () =
  let server = S.create ~config:quick_config () in
  (* Gate sweep: exhaustive grid so the payload is fully deterministic. *)
  let r =
    one server
      {|{"fictionette-serve":1,"kind":"domain","gate":"or2","algorithm":"grid","steps":4,"id":1}|}
  in
  Alcotest.(check string) "gate domain ok" "ok" (status r);
  let result = field "result" r in
  Alcotest.(check bool) "algorithm echoed" true
    (J.str (field "algorithm" result) = Some "grid");
  Alcotest.(check bool) "grid evaluates everything" true
    (J.num (field "points_evaluated" result) = Some 16.
    && J.num (field "total_points" result) = Some 16.);
  (* Flood fill may evaluate fewer points, never more. *)
  let r =
    one server
      {|{"fictionette-serve":1,"kind":"domain","gate":"or2","algorithm":"ff","steps":4,"samples":4,"id":2}|}
  in
  Alcotest.(check string) "flood-fill ok" "ok" (status r);
  let result = field "result" r in
  (match (J.num (field "points_evaluated" result),
          J.num (field "total_points" result)) with
  | Some ev, Some total ->
      Alcotest.(check bool) "ff evaluates a subset" true (ev <= total)
  | _ -> Alcotest.fail "no point counts");
  (* Whole-layout sweep on the heuristic engine. *)
  let r =
    one server
      {|{"fictionette-serve":1,"kind":"domain","benchmark":"xor2","engine":"quicksim","steps":2,"id":3}|}
  in
  Alcotest.(check string) "layout domain ok" "ok" (status r);
  let result = field "result" r in
  Alcotest.(check bool) "heuristic flagged" true
    (J.bool_ (field "exact" result) = Some false);
  Alcotest.(check bool) "sites reported" true
    (match J.num (field "sites" result) with Some n -> n > 0. | None -> false);
  (* Exact engines refuse whole layouts past the site limit — a
     structured infeasible, not a crash. *)
  let r =
    one server
      {|{"fictionette-serve":1,"kind":"domain","benchmark":"xor2","engine":"pruned","steps":2,"id":4}|}
  in
  Alcotest.(check string) "exact refusal errors" "error" (status r);
  Alcotest.(check string) "infeasible kind" "infeasible" (error_kind r);
  (* Target validation. *)
  let r = one server {|{"fictionette-serve":1,"kind":"domain","id":5}|} in
  Alcotest.(check string) "missing target rejected" "error" (status r);
  Alcotest.(check string) "invalid_request kind" "invalid_request"
    (error_kind r);
  let r =
    one server
      {|{"fictionette-serve":1,"kind":"domain","gate":"or2","benchmark":"xor2","id":6}|}
  in
  Alcotest.(check string) "ambiguous target rejected" "error" (status r);
  Alcotest.(check string) "ambiguous is invalid_request" "invalid_request"
    (error_kind r)

(* --- server: lifecycle and stats ----------------------------------------- *)

let test_stats_and_shutdown () =
  let server = S.create ~config:quick_config () in
  ignore (S.handle_line server (design_line "c17"));
  ignore (S.handle_line server (design_line "c17"));
  ignore (S.handle_line server "garbage");
  let r = one server {|{"fictionette-serve":1,"kind":"stats","id":"s"}|} in
  Alcotest.(check string) "stats ok" "ok" (status r);
  let result = field "result" r in
  Alcotest.(check bool) "served counted" true
    (J.num (field "served" result) = Some 2.);
  Alcotest.(check bool) "protocol errors counted" true
    (J.num (field "protocol_errors" result) = Some 1.);
  (match J.mem "cache" result with
  | Some cache ->
      Alcotest.(check bool) "cache hit rate exposed" true
        (match J.num (field "synth_hit_rate" cache) with
        | Some rate -> rate > 0.
        | None -> false)
  | None -> Alcotest.fail "no cache stats");
  Alcotest.(check bool) "not stopping yet" false (S.stopping server);
  let r = one server {|{"fictionette-serve":1,"kind":"shutdown"}|} in
  Alcotest.(check string) "shutdown acked" "ok" (status r);
  Alcotest.(check bool) "stopping" true (S.stopping server)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "depth bomb" `Quick test_json_depth_bomb;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "versioning" `Quick test_protocol_version;
          Alcotest.test_case "validation" `Quick test_protocol_validation;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "malformed lines survive" `Quick
            test_malformed_lines_survive;
          Alcotest.test_case "worker death isolated" `Quick
            test_chaos_raise_isolated;
          Alcotest.test_case "mid-request cancellation" `Quick
            test_chaos_cancel_is_budget_error;
          Alcotest.test_case "poisoned deadline" `Quick
            test_poisoned_deadline_is_budget_error;
          Alcotest.test_case "batch job errors isolated" `Quick
            test_batch_job_errors_isolated;
        ] );
      ( "service",
        [
          Alcotest.test_case "design + cross-request cache" `Quick
            test_design_and_cache;
          Alcotest.test_case "served = one-shot" `Quick
            test_identity_with_one_shot;
          Alcotest.test_case "retry ladder degrades" `Quick
            test_retry_ladder_degrades;
          Alcotest.test_case "depth shedding" `Quick
            test_admission_depth_shedding;
          Alcotest.test_case "budget-mass shedding" `Quick
            test_admission_budget_mass_shedding;
          Alcotest.test_case "simulate engine selection" `Quick
            test_simulate_engine_selection;
          Alcotest.test_case "domain job" `Quick test_domain_job;
          Alcotest.test_case "stats + shutdown" `Quick test_stats_and_shutdown;
        ] );
    ]
