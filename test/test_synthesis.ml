(* Tests for cut enumeration, exact synthesis, the NPN database, and
   cut rewriting. *)

module T = Logic.Truth_table
module N = Logic.Network
module Cuts = Logic.Cuts
module E = Logic.Exact_synth
module Db = Logic.Npn_db
module R = Logic.Rewrite

let tt = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (T.to_string t)) T.equal

(* --- cut enumeration -------------------------------------------------- *)

let simple_network () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and c = N.pi n "c" in
  let g1 = N.and_ n a b in
  let g2 = N.xor_ n g1 c in
  N.po n "y" g2;
  (n, a, b, c, g1, g2)

let test_trivial_cuts () =
  let n, a, _, _, _, _ = simple_network () in
  let cuts = Cuts.enumerate n in
  let pi_cuts = Cuts.cuts_of cuts (N.node_of_signal a) in
  Alcotest.(check int) "pi has one cut" 1 (List.length pi_cuts);
  Alcotest.(check tt) "identity function" (T.var 1 0)
    (List.hd pi_cuts).Cuts.table

let test_cut_functions () =
  let n, a, b, c, _, g2 = simple_network () in
  let cuts = Cuts.enumerate n in
  let g2_cuts = Cuts.cuts_of cuts (N.node_of_signal g2) in
  (* One of the cuts must be {a, b, c} with function (a & b) ^ c. *)
  let leaves =
    List.sort compare
      (List.map N.node_of_signal [ a; b; c ])
  in
  let full_cut =
    List.find_opt
      (fun cut -> Array.to_list cut.Cuts.leaves = leaves)
      g2_cuts
  in
  match full_cut with
  | None -> Alcotest.fail "expected cut {a,b,c}"
  | Some cut ->
      let expected =
        T.lxor_ (T.land_ (T.var 3 0) (T.var 3 1)) (T.var 3 2)
      in
      Alcotest.(check tt) "cut function" expected cut.Cuts.table

let test_cut_limit () =
  let b = Logic.Benchmarks.find "majority_5_r1" in
  let n = b.Logic.Benchmarks.build () in
  let cuts = Cuts.enumerate ~k:4 ~max_cuts:8 n in
  List.iter
    (fun id ->
      let c = Cuts.cuts_of cuts id in
      Alcotest.(check bool) "cut count bounded" true (List.length c <= 8);
      List.iter
        (fun cut ->
          Alcotest.(check bool) "cut size bounded" true
            (Array.length cut.Cuts.leaves <= 4))
        c)
    (N.gates n)

let test_mffc () =
  let n, _, _, _, g1, g2 = simple_network () in
  let fanouts = N.fanout_counts n in
  Alcotest.(check int) "mffc of root" 2
    (Cuts.mffc_size n fanouts (N.node_of_signal g2));
  Alcotest.(check int) "mffc of inner" 1
    (Cuts.mffc_size n fanouts (N.node_of_signal g1))

let test_priority_matches_exhaustive () =
  (* The priority-cut path must reproduce the exhaustive baseline's cut
     lists exactly — same cuts, same order — on every Table-1 benchmark;
     interning must make equal tables physically equal across runs. *)
  List.iter
    (fun b ->
      let n = b.Logic.Benchmarks.build () in
      let pr = Cuts.enumerate ~config:Cuts.default_config n in
      let ex = Cuts.enumerate ~config:Cuts.exhaustive_config n in
      for id = 0 to N.num_nodes n - 1 do
        let cp = Cuts.cuts_of pr id and ce = Cuts.cuts_of ex id in
        if
          List.length cp <> List.length ce
          || not
               (List.for_all2
                  (fun c1 c2 ->
                    c1.Cuts.leaves = c2.Cuts.leaves
                    && c1.Cuts.table == c2.Cuts.table)
                  cp ce)
        then
          Alcotest.failf "%s node %d: priority/exhaustive cut lists differ"
            b.Logic.Benchmarks.name id
      done)
    Logic.Benchmarks.all

(* --- exact synthesis ------------------------------------------------------ *)

let synth_ok hex n expected_size =
  let g = T.of_hex n hex in
  match E.synthesize g with
  | None -> Alcotest.fail (Printf.sprintf "no chain for %s" hex)
  | Some chain ->
      Alcotest.(check tt) (hex ^ " function") g (E.chain_table chain);
      Alcotest.(check bool)
        (Printf.sprintf "%s size %d <= %d" hex (E.chain_size chain)
           expected_size)
        true
        (E.chain_size chain <= expected_size)

let test_exact_basic () =
  synth_ok "8" 2 1;
  (* and *)
  synth_ok "6" 2 1;
  (* xor *)
  synth_ok "e" 2 1;
  (* or *)
  synth_ok "96" 3 2;
  (* parity3 *)
  synth_ok "e8" 3 4;
  (* maj3 *)
  synth_ok "6996" 4 3 (* parity4 *)

let test_exact_constants () =
  match E.synthesize (T.const0 3) with
  | Some chain ->
      Alcotest.(check int) "const size 0" 0 (E.chain_size chain);
      Alcotest.(check tt) "const value" (T.const0 3) (E.chain_table chain)
  | None -> Alcotest.fail "constant must synthesize"

let test_exact_projection () =
  match E.synthesize (T.lnot (T.var 3 1)) with
  | Some chain ->
      Alcotest.(check int) "projection size 0" 0 (E.chain_size chain);
      Alcotest.(check tt) "projection value" (T.lnot (T.var 3 1))
        (E.chain_table chain)
  | None -> Alcotest.fail "projection must synthesize"

let test_exact_instantiate () =
  let g = T.of_hex 3 "e8" in
  match E.synthesize g with
  | None -> Alcotest.fail "maj3"
  | Some chain ->
      let ntk = N.create () in
      let leaves = Array.init 3 (fun i -> N.pi ntk (Printf.sprintf "x%d" i)) in
      N.po ntk "y" (E.instantiate chain ntk leaves);
      Alcotest.(check tt) "instantiated maj3" g (N.simulate ntk).(0)

let prop_exact_random_3 =
  QCheck.Test.make ~name:"exact synthesis of random 3-var functions"
    ~count:30
    (QCheck.map (fun v -> T.of_bits 3 (Int64.of_int (v land 0xff))) QCheck.int)
    (fun g ->
      match E.synthesize g with
      | None -> false
      | Some chain -> T.equal (E.chain_table chain) g)

(* --- NPN database ----------------------------------------------------------- *)

let test_db_lookup () =
  let db = Db.create () in
  let and2 = T.land_ (T.var 2 0) (T.var 2 1) in
  Alcotest.(check (option int)) "and2 optimal size" (Some 1)
    (Db.optimal_size db and2);
  (* NOR shares AND's class, so no extra synthesis is necessary. *)
  let cached = Db.classes_cached db in
  let nor2 = T.lnot (T.lor_ (T.var 2 0) (T.var 2 1)) in
  Alcotest.(check (option int)) "nor2 optimal size" (Some 1)
    (Db.optimal_size db nor2);
  Alcotest.(check int) "class shared" cached (Db.classes_cached db)

let test_db_instantiate () =
  let db = Db.create () in
  let f = T.of_hex 4 "cafe" in
  let ntk = N.create () in
  let leaves = Array.init 4 (fun i -> N.pi ntk (Printf.sprintf "x%d" i)) in
  match Db.instantiate db f ntk leaves with
  | None -> Alcotest.fail "cafe must be synthesizable"
  | Some out ->
      N.po ntk "y" out;
      Alcotest.(check tt) "instantiated" f (N.simulate ntk).(0)

let prop_db_instantiate_random =
  let db = Db.create () in
  QCheck.Test.make ~name:"db instantiation matches function" ~count:25
    (QCheck.map (fun v -> T.of_bits 3 (Int64.of_int (v land 0xff))) QCheck.int)
    (fun f ->
      let ntk = N.create () in
      let leaves = Array.init 3 (fun i -> N.pi ntk (Printf.sprintf "x%d" i)) in
      match Db.instantiate db f ntk leaves with
      | None -> false
      | Some out ->
          N.po ntk "y" out;
          T.equal (N.simulate ntk).(0) f)

(* --- rewriting ------------------------------------------------------------------ *)

let equivalent n1 n2 =
  let s1 = N.simulate n1 and s2 = N.simulate n2 in
  Array.length s1 = Array.length s2 && Array.for_all2 T.equal s1 s2

let test_rewrite_preserves_all_benchmarks () =
  let db = Db.create () in
  List.iter
    (fun b ->
      let n = b.Logic.Benchmarks.build () in
      let rewritten, stats = R.rewrite ~db n in
      Alcotest.(check bool)
        (b.Logic.Benchmarks.name ^ " equivalent")
        true (equivalent n rewritten);
      Alcotest.(check bool)
        (b.Logic.Benchmarks.name ^ " not larger")
        true
        (stats.R.size_after <= stats.R.size_before))
    Logic.Benchmarks.all

let test_rewrite_reduces_redundant () =
  (* A deliberately wasteful maj3: rewriting should shrink it. *)
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and c = N.pi n "c" in
  let ab = N.and_ n a b and ac = N.and_ n a c and bc = N.and_ n b c in
  N.po n "y" (N.or_ n (N.or_ n ab ac) bc);
  let rewritten = R.rewrite_to_fixpoint n in
  Alcotest.(check bool) "equivalent" true (equivalent n rewritten);
  Alcotest.(check bool) "reduced" true (N.num_gates rewritten <= 5)

(* --- depth balancing ------------------------------------------------------- *)

let test_balance_chain () =
  (* A 7-input XOR chain of depth 6 balances to depth 3. *)
  let n = N.create () in
  let xs = Array.init 7 (fun i -> N.pi n (Printf.sprintf "x%d" i)) in
  let chain = Array.fold_left (fun acc x -> N.xor_ n acc x) xs.(0)
      (Array.sub xs 1 6) in
  N.po n "y" chain;
  Alcotest.(check int) "chain depth" 6 (N.depth n);
  let balanced = Logic.Balance.balance n in
  Alcotest.(check int) "balanced depth" 3 (N.depth balanced);
  Alcotest.(check bool) "equivalent" true (equivalent n balanced)

let test_balance_and_chain () =
  let n = N.create () in
  let xs = Array.init 8 (fun i -> N.pi n (Printf.sprintf "x%d" i)) in
  let chain = Array.fold_left (fun acc x -> N.and_ n acc x) xs.(0)
      (Array.sub xs 1 7) in
  N.po n "y" chain;
  let balanced = Logic.Balance.balance n in
  Alcotest.(check int) "and tree depth" 3 (N.depth balanced);
  Alcotest.(check bool) "equivalent" true (equivalent n balanced)

let test_balance_never_worse () =
  List.iter
    (fun b ->
      let n = b.Logic.Benchmarks.build () in
      let balanced = Logic.Balance.balance_to_fixpoint n in
      Alcotest.(check bool) (b.Logic.Benchmarks.name ^ " equivalent") true
        (equivalent n balanced);
      Alcotest.(check bool) (b.Logic.Benchmarks.name ^ " depth not worse")
        true
        (N.depth balanced <= N.depth n))
    Logic.Benchmarks.all

let test_balance_respects_nand_boundary () =
  (* !(a & b) & c must not be flattened across the complement edge. *)
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and c = N.pi n "c" in
  N.po n "y" (N.and_ n (N.nand_ n a b) c);
  let balanced = Logic.Balance.balance n in
  Alcotest.(check bool) "equivalent" true (equivalent n balanced)

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "synthesis"
    [
      ( "cuts",
        [
          Alcotest.test_case "trivial cuts" `Quick test_trivial_cuts;
          Alcotest.test_case "cut functions" `Quick test_cut_functions;
          Alcotest.test_case "cut limits" `Quick test_cut_limit;
          Alcotest.test_case "mffc" `Quick test_mffc;
          Alcotest.test_case "priority = exhaustive" `Quick
            test_priority_matches_exhaustive;
        ] );
      ( "exact",
        [
          Alcotest.test_case "known functions" `Quick test_exact_basic;
          Alcotest.test_case "constants" `Quick test_exact_constants;
          Alcotest.test_case "projections" `Quick test_exact_projection;
          Alcotest.test_case "instantiate" `Quick test_exact_instantiate;
        ]
        @ qt [ prop_exact_random_3 ] );
      ( "npn-db",
        [
          Alcotest.test_case "lookup" `Quick test_db_lookup;
          Alcotest.test_case "instantiate" `Quick test_db_instantiate;
        ]
        @ qt [ prop_db_instantiate_random ] );
      ( "rewrite",
        [
          Alcotest.test_case "all benchmarks preserved" `Slow
            test_rewrite_preserves_all_benchmarks;
          Alcotest.test_case "redundant maj3 shrinks" `Quick
            test_rewrite_reduces_redundant;
        ] );
      ( "balance",
        [
          Alcotest.test_case "xor chain" `Quick test_balance_chain;
          Alcotest.test_case "and chain" `Quick test_balance_and_chain;
          Alcotest.test_case "never worse" `Quick test_balance_never_worse;
          Alcotest.test_case "nand boundary" `Quick
            test_balance_respects_nand_boundary;
        ] );
    ]
