(* Tests for the Bestagon gate library: geometry, scaffolds, designs
   (re-validated by exact simulation), library application, the gate
   designer, and .sqd export. *)

module D = Hexlib.Direction
module C = Hexlib.Coord
module L = Sidb.Lattice
module G = Bestagon.Geometry
module Sc = Bestagon.Scaffold
module Ds = Bestagon.Designs
module Lib = Bestagon.Library
module Tile = Layout.Tile
module M = Logic.Mapped
module GL = Layout.Gate_layout

let offset col row : C.offset = { col; row }

(* --- geometry ------------------------------------------------------------- *)

let test_tile_dimensions () =
  Alcotest.(check int) "columns" 60 G.tile_columns;
  Alcotest.(check int) "rows" 23 G.tile_rows;
  (* The area model matches the paper's Table 1 to the cent. *)
  Alcotest.(check (float 0.01)) "xor2 area" 2403.98
    (Lib.area_nm2 ~width_tiles:2 ~height_tiles:3);
  Alcotest.(check (float 0.01)) "newtag area" 32419.82
    (Lib.area_nm2 ~width_tiles:8 ~height_tiles:10);
  Alcotest.(check (float 0.01)) "cm82a area" 30377.56
    (Lib.area_nm2 ~width_tiles:5 ~height_tiles:15)

let test_port_anchors () =
  let x, y = G.port_anchor D.North_west in
  Alcotest.(check (float 1e-9)) "nw x" (15. *. 3.84) x;
  Alcotest.(check (float 1e-9)) "nw y" 7.68 y;
  Alcotest.(check bool) "lateral rejected" true
    (try
       ignore (G.port_anchor D.East);
       false
     with Invalid_argument _ -> true)

let test_snap () =
  let s = G.snap (7.7, 9.9) in
  Alcotest.(check bool) "snaps to (2,1,1)" true (L.equal s (L.site 2 1 1));
  let s = G.snap (0.1, 0.1) in
  Alcotest.(check bool) "snaps to origin" true (L.equal s (L.site 0 0 0))

let test_bdl_chain_spacing () =
  let chain = G.bdl_chain ~from:(0., 0.) ~towards:(0., 100.) ~pairs:3 in
  Alcotest.(check int) "three pairs" 3 (List.length chain);
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1.0)) "intra spacing" 7.68 (L.distance a b))
    chain;
  let (_, b1) = List.nth chain 0 and (a2, _) = List.nth chain 1 in
  Alcotest.(check (float 1.0)) "inter spacing" 23.04 (L.distance b1 a2)

let test_tile_origin_shift () =
  Alcotest.(check (pair int int)) "even row" (120, 46)
    (G.tile_origin (offset 2 2));
  Alcotest.(check (pair int int)) "odd row shifted" (150, 69)
    (G.tile_origin (offset 2 3))

(* --- scaffolds ----------------------------------------------------------------- *)

let test_scaffold_structure () =
  let s = Sc.make ~in_ports:[ D.North_west; D.North_east ] ~out_ports:[ D.South_east ] () in
  Alcotest.(check int) "drivers" 2 (Array.length s.Sc.drivers);
  Alcotest.(check int) "output pairs" 1 (Array.length s.Sc.output_pairs);
  Alcotest.(check int) "stub dots: 2 in-stubs + 1 out-stub, 2 pairs each" 12
    (List.length s.Sc.stub_dots);
  Alcotest.(check int) "one output perturber" 1
    (List.length s.Sc.output_perturbers);
  Alcotest.(check bool) "canvas nonempty" true (Sc.canvas_sites s <> [])

let test_canvas_clearance () =
  let s = Sc.make ~in_ports:[ D.North_west ] ~out_ports:[ D.South_east ] () in
  List.iter
    (fun site ->
      List.iter
        (fun dot ->
          Alcotest.(check bool) "clearance" true (L.distance site dot >= 7.5))
        s.Sc.stub_dots)
    (Sc.canvas_sites s)

(* --- validated designs: re-check every flagged design by exact simulation --- *)

let check_design name tile =
  match (Lib.validation_structure tile, Lib.tile_spec tile) with
  | Some s, Some spec ->
      let report = Sidb.Bdl.check s ~spec in
      Alcotest.(check bool) (name ^ " operational") true
        (Sidb.Bdl.operational report)
  | _ -> Alcotest.fail (name ^ ": no validation structure")

let gate2 fn out = Tile.Gate { fn; ins = [ D.North_west; D.North_east ]; outs = [ out ] }

let test_or_gate () = check_design "or" (gate2 M.Or2 D.South_east)
let test_and_gate () = check_design "and" (gate2 M.And2 D.South_east)
let test_nor_gate () = check_design "nor" (gate2 M.Nor2 D.South_east)
let test_nand_gate () = check_design "nand" (gate2 M.Nand2 D.South_east)
let test_xor_gate () = check_design "xor" (gate2 M.Xor2 D.South_east)
let test_xnor_gate () = check_design "xnor" (gate2 M.Xnor2 D.South_east)

let test_mirrored_gates () =
  (* West-facing variants derived by mirroring remain operational. *)
  check_design "or-sw" (gate2 M.Or2 D.South_west);
  check_design "xor-sw" (gate2 M.Xor2 D.South_west)

let test_inverters () =
  check_design "inv-diag"
    (Tile.Gate { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_east ] });
  check_design "inv-straight"
    (Tile.Gate { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_west ] });
  check_design "inv-mirrored"
    (Tile.Gate { fn = M.Inv; ins = [ D.North_east ]; outs = [ D.South_west ] })

let test_wires () =
  check_design "wire-diag"
    (Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
  check_design "wire-straight"
    (Tile.Wire { segments = [ (D.North_west, D.South_west) ] });
  check_design "wire-diag-mirror"
    (Tile.Wire { segments = [ (D.North_east, D.South_west) ] });
  check_design "wire-straight-mirror"
    (Tile.Wire { segments = [ (D.North_east, D.South_east) ] })

let test_mirror_site () =
  let s = L.site 37 14 0 in
  Alcotest.(check bool) "mirrored" true
    (L.equal (Ds.mirror_site s) (L.site 23 14 0));
  Alcotest.(check bool) "involution" true
    (L.equal (Ds.mirror_site (Ds.mirror_site s)) s)

(* --- library application ----------------------------------------------------- *)

let test_implement_all_tiles () =
  (* Every tile configuration the physical design can produce has a
     library realization. *)
  let tiles =
    [ Tile.Pi { name = "a"; out = D.South_east };
      Tile.Pi { name = "a"; out = D.South_west };
      Tile.Po { name = "y"; inp = D.North_west };
      Tile.Po { name = "y"; inp = D.North_east };
      Tile.Fanout { inp = D.North_west; outs = [ D.South_west; D.South_east ] };
      Tile.Fanout { inp = D.North_east; outs = [ D.South_west; D.South_east ] };
      Tile.Wire
        { segments = [ (D.North_west, D.South_west); (D.North_east, D.South_east) ] };
      Tile.Wire
        { segments = [ (D.North_west, D.South_east); (D.North_east, D.South_west) ] };
      Tile.Gate
        { fn = M.Ha;
          ins = [ D.North_west; D.North_east ];
          outs = [ D.South_west; D.South_east ] };
    ]
    @ List.concat_map
        (fun fn -> [ gate2 fn D.South_east; gate2 fn D.South_west ])
        [ M.And2; M.Or2; M.Nand2; M.Nor2; M.Xor2; M.Xnor2 ]
  in
  List.iter
    (fun tile ->
      match Lib.implement tile with
      | Ok impl ->
          Alcotest.(check bool) "has dots" true (impl.Lib.sites <> [])
      | Error e -> Alcotest.fail (Tile.label tile ^ ": " ^ e))
    tiles

let test_implement_rejects_illegal () =
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Lib.implement Tile.Empty));
  Alcotest.(check bool) "northward gate rejected" true
    (Result.is_error
       (Lib.implement
          (Tile.Gate
             { fn = M.Inv; ins = [ D.South_west ]; outs = [ D.North_east ] })))

let test_apply_xor_layout () =
  let l = GL.create ~width:2 ~height:3 ~clocking:(GL.Scheme Layout.Clocking.Row) in
  GL.set l (offset 0 0) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 1 0) (Tile.Pi { name = "b"; out = D.South_west });
  GL.set l (offset 0 1) (gate2 M.Xor2 D.South_west);
  GL.set l (offset 0 2) (Tile.Po { name = "f"; inp = D.North_east });
  match Lib.apply l with
  | Error e -> Alcotest.fail e
  | Ok sidb ->
      Alcotest.(check int) "width" 2 sidb.Lib.width_tiles;
      Alcotest.(check int) "height" 3 sidb.Lib.height_tiles;
      Alcotest.(check (float 0.01)) "area" 2403.98 sidb.Lib.area_nm2;
      (* All dots are distinct in global coordinates. *)
      let sorted = List.sort_uniq L.compare sidb.Lib.sites in
      Alcotest.(check int) "no overlapping dots" (List.length sidb.Lib.sites)
        (List.length sorted);
      Alcotest.(check bool) "plausible dot count" true
        (sidb.Lib.sidb_count > 30 && sidb.Lib.sidb_count < 100)

let test_apply_input_values () =
  let l = GL.create ~width:1 ~height:2 ~clocking:(GL.Scheme Layout.Clocking.Row) in
  GL.set l (offset 0 0) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 0 1) (Tile.Po { name = "y"; inp = D.North_west });
  match (Lib.apply ~inputs:[ ("a", true) ] l, Lib.apply l) with
  | Ok with1, Ok with0 ->
      (* Same dot count, but at least one dot moved (near vs far
         perturber). *)
      Alcotest.(check int) "same count" with1.Lib.sidb_count with0.Lib.sidb_count;
      Alcotest.(check bool) "different positions" true
        (List.sort L.compare with1.Lib.sites
        <> List.sort L.compare with0.Lib.sites)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* --- designer ---------------------------------------------------------------------- *)

let test_score_structure () =
  (* The validated OR design scores 100. *)
  let tile = gate2 M.Or2 D.South_east in
  match (Lib.validation_structure tile, Lib.tile_spec tile) with
  | Some s, Some spec ->
      let score, functional = Bestagon.Designer.score_structure s ~spec in
      Alcotest.(check (float 0.01)) "perfect score" 100. score;
      Alcotest.(check bool) "functional" true functional
  | _ -> Alcotest.fail "no structure"

let test_score_wrong_spec () =
  (* The OR design checked against AND must not be functional. *)
  let tile = gate2 M.Or2 D.South_east in
  match Lib.validation_structure tile with
  | Some s ->
      let _, functional =
        Bestagon.Designer.score_structure s ~spec:(fun i ->
            [| i.(0) && i.(1) |])
      in
      Alcotest.(check bool) "not functional" false functional
  | None -> Alcotest.fail "no structure"

let test_designer_finds_or () =
  (* From scratch, a short SA run rediscovers an OR gate. *)
  let scaffold =
    Sc.make ~in_ports:[ D.North_west; D.North_east ]
      ~out_ports:[ D.South_east ] ()
  in
  let outcome =
    Bestagon.Designer.design
      ~params:
        { Bestagon.Designer.default_params with iterations = 1500 }
      ~seed:7
      ~initial:[ L.site 30 10 0; L.site 30 11 0 ]
      scaffold ~name:"or" ~spec:(fun i -> [| i.(0) || i.(1) |])
  in
  Alcotest.(check bool) "found" true outcome.Bestagon.Designer.functional

let test_logic_margin () =
  (* Validated designs have a non-negative margin; the wrong spec has a
     zero margin (its "correct" states are not the ground states). *)
  let tile = gate2 M.Or2 D.South_east in
  match Lib.validation_structure tile with
  | Some s ->
      let margin = Sidb.Bdl.logic_margin s ~spec:(fun i -> [| i.(0) || i.(1) |]) in
      Alcotest.(check bool) "non-negative" true (margin >= 0.);
      let wrong = Sidb.Bdl.logic_margin s ~spec:(fun i -> [| i.(0) && i.(1) |]) in
      Alcotest.(check bool) "wrong spec has no margin" true (wrong <= 1e-9)
  | None -> Alcotest.fail "no structure"

(* --- sqd export --------------------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_sqd_format () =
  let text = Bestagon.Sqd.of_sites [ L.site 1 2 0; L.site 3 4 1 ] in
  Alcotest.(check bool) "xml header" true (contains text "<?xml version");
  Alcotest.(check bool) "siqad root" true (contains text "<siqad>");
  Alcotest.(check bool) "dots present" true
    (contains text "latcoord n=\"1\" m=\"2\" l=\"0\""
    && contains text "latcoord n=\"3\" m=\"4\" l=\"1\"");
  Alcotest.(check bool) "closed" true (contains text "</siqad>")

let test_sqd_structure_export () =
  let tile = gate2 M.Or2 D.South_east in
  match Lib.validation_structure tile with
  | Some s ->
      let text = Bestagon.Sqd.of_structure s ~assignment:[| true; false |] in
      Alcotest.(check bool) "has dots" true (contains text "<dbdot>")
  | None -> Alcotest.fail "no structure"

(* DB spacing (post-route design rule on dot placements). *)

let test_spacing_clean_design () =
  match Lib.validation_structure (gate2 M.Or2 D.South_east) with
  | None -> Alcotest.fail "no OR structure"
  | Some s ->
      Alcotest.(check int) "validated design is clean" 0
        (List.length (G.spacing_violations s.Sidb.Bdl.fixed))

let test_spacing_duplicate_site () =
  let a : L.site = { L.n = 10; m = 4; l = 0 } in
  let b : L.site = { L.n = 30; m = 8; l = 1 } in
  match G.spacing_violations [ a; b; a ] with
  | [ (x, y, d) ] ->
      Alcotest.(check (float 1e-9)) "zero distance" 0.0 d;
      Alcotest.(check bool) "the duplicated site" true
        (x = a && y = a)
  | vs -> Alcotest.fail (Printf.sprintf "%d violation(s)" (List.length vs))

let test_spacing_same_dimer () =
  (* Both atoms of one dimer: 2.25 A apart, below the 5 A floor. *)
  let a : L.site = { L.n = 0; m = 0; l = 0 } in
  let b : L.site = { L.n = 0; m = 0; l = 1 } in
  Alcotest.(check int) "same-dimer pair flagged" 1
    (List.length (G.spacing_violations [ a; b ]));
  (* Horizontally adjacent columns (3.84 A) are also too close... *)
  let c : L.site = { L.n = 1; m = 0; l = 0 } in
  Alcotest.(check int) "adjacent columns flagged" 1
    (List.length (G.spacing_violations [ a; c ]));
  (* ...but one dimer row apart (7.68 A) is legal. *)
  let d : L.site = { L.n = 0; m = 1; l = 0 } in
  Alcotest.(check int) "row pitch legal" 0
    (List.length (G.spacing_violations [ a; d ]))

(* --- operational-domain algorithms on the library gates ----------------- *)

let library_gates () =
  [
    ("wire", Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
    ("inverter", Tile.Gate { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_east ] });
    ("or2", gate2 M.Or2 D.South_east);
    ("and2", gate2 M.And2 D.South_east);
    ("nor2", gate2 M.Nor2 D.South_east);
    ("nand2", gate2 M.Nand2 D.South_east);
    ("xor2", gate2 M.Xor2 D.South_east);
    ("xnor2", gate2 M.Xnor2 D.South_east);
  ]

let test_domain_algorithms () =
  (* Flood fill and contour tracing vs the exhaustive grid on every
     library gate at a matched grid: any point a sampled algorithm
     evaluated must carry the grid's exact classification, the tuned
     grid (shared geometry + adaptive rows) must be identical to the
     preserved baseline everywhere, and flood fill's fraction is a lower
     bound on the grid's. *)
  let module OD = Sidb.Operational_domain in
  (* The (μ₋, ε_r) plane at λ_TF = 5 nm holds a real connected region for
     the big-domain gates (wire/or2/and2), so the sampled algorithms have
     something to find; λ_TF sweeps read empty off the λ = 5 band. *)
  let x_axis =
    { OD.parameter = OD.Mu_minus; from_value = -1.2; to_value = 0.0; steps = 6 }
  in
  let y_axis =
    { OD.parameter = OD.Epsilon_r; from_value = 1.0; to_value = 14.0; steps = 6 }
  in
  List.iter
    (fun (name, tile) ->
      match (Lib.validation_structure tile, Lib.tile_spec tile) with
      | Some s, Some spec ->
          let run config = OD.sweep ~config ~x_axis ~y_axis s ~spec in
          let ops d = List.map (fun sm -> sm.OD.operational) d.OD.samples in
          let grid = run OD.baseline_config in
          let tuned = run OD.default_config in
          Alcotest.(check bool) (name ^ ": tuned grid = baseline grid") true
            (ops grid = ops tuned);
          Alcotest.(check int) (name ^ ": baseline evaluates everything")
            grid.OD.stats.OD.total_points grid.OD.stats.OD.points_evaluated;
          List.iter
            (fun algorithm ->
              let d = run { OD.default_config with algorithm; samples = 10 } in
              let aname = OD.algorithm_name algorithm in
              List.iter2
                (fun g a ->
                  if a.OD.evaluated then
                    Alcotest.(check bool)
                      (Printf.sprintf "%s/%s: evaluated point agrees" name aname)
                      g.OD.operational a.OD.operational)
                grid.OD.samples d.OD.samples;
              Alcotest.(check int)
                (Printf.sprintf "%s/%s: evaluated count consistent" name aname)
                (List.length (List.filter (fun sm -> sm.OD.evaluated) d.OD.samples))
                d.OD.stats.OD.points_evaluated;
              if algorithm = OD.Flood_fill then
                Alcotest.(check bool)
                  (name ^ "/flood-fill: fraction is a lower bound") true
                  (d.OD.operational_fraction
                  <= grid.OD.operational_fraction +. 1e-12))
            [ OD.Flood_fill; OD.Contour_tracing ]
      | _ -> Alcotest.fail (name ^ ": no validation structure"))
    (library_gates ())

let test_yield_tile_seeds_distinct () =
  (* The per-tile seed mix must separate neighboring (seed, index)
     pairs: seed s at tile i must not draw like seed s+1 at tile i-1
     (the old [seed + i] derivation did exactly that). *)
  let pairs =
    List.concat_map
      (fun s -> List.map (fun i -> (s, i)) [ 0; 1; 2; 3 ])
      [ 40; 41; 42; 43 ]
  in
  let seeds = List.map (fun (s, i) -> Bestagon.Yield.tile_seed s i) pairs in
  let sorted = List.sort_uniq compare seeds in
  Alcotest.(check int) "all distinct" (List.length pairs)
    (List.length sorted)

let () =
  Alcotest.run "bestagon"
    [
      ( "geometry",
        [
          Alcotest.test_case "tile dimensions / area model" `Quick test_tile_dimensions;
          Alcotest.test_case "port anchors" `Quick test_port_anchors;
          Alcotest.test_case "snap" `Quick test_snap;
          Alcotest.test_case "chain spacing" `Quick test_bdl_chain_spacing;
          Alcotest.test_case "tile origin" `Quick test_tile_origin_shift;
        ] );
      ( "scaffold",
        [
          Alcotest.test_case "structure" `Quick test_scaffold_structure;
          Alcotest.test_case "canvas clearance" `Quick test_canvas_clearance;
        ] );
      ( "designs",
        [
          Alcotest.test_case "or" `Slow test_or_gate;
          Alcotest.test_case "and" `Slow test_and_gate;
          Alcotest.test_case "nor" `Slow test_nor_gate;
          Alcotest.test_case "nand" `Slow test_nand_gate;
          Alcotest.test_case "xor" `Slow test_xor_gate;
          Alcotest.test_case "xnor" `Slow test_xnor_gate;
          Alcotest.test_case "mirrored" `Slow test_mirrored_gates;
          Alcotest.test_case "inverters" `Slow test_inverters;
          Alcotest.test_case "wires" `Slow test_wires;
          Alcotest.test_case "mirror site" `Quick test_mirror_site;
        ] );
      ( "spacing",
        [
          Alcotest.test_case "clean design" `Quick test_spacing_clean_design;
          Alcotest.test_case "duplicate site" `Quick
            test_spacing_duplicate_site;
          Alcotest.test_case "same dimer" `Quick test_spacing_same_dimer;
          Alcotest.test_case "tile seeds distinct" `Quick
            test_yield_tile_seeds_distinct;
        ] );
      ( "operational-domain",
        [ Alcotest.test_case "algorithms vs grid" `Slow test_domain_algorithms ] );
      ( "library",
        [
          Alcotest.test_case "implement all" `Quick test_implement_all_tiles;
          Alcotest.test_case "rejects illegal" `Quick test_implement_rejects_illegal;
          Alcotest.test_case "apply xor layout" `Quick test_apply_xor_layout;
          Alcotest.test_case "input values" `Quick test_apply_input_values;
        ] );
      ( "designer",
        [
          Alcotest.test_case "score validated design" `Slow test_score_structure;
          Alcotest.test_case "wrong spec fails" `Slow test_score_wrong_spec;
          Alcotest.test_case "rediscovers or" `Slow test_designer_finds_or;
          Alcotest.test_case "logic margin" `Slow test_logic_margin;
        ] );
      ( "sqd",
        [
          Alcotest.test_case "format" `Quick test_sqd_format;
          Alcotest.test_case "structure export" `Quick test_sqd_structure_export;
        ] );
    ]
