(* Property-based fuzz harness (standalone executable, not alcotest).

   Three generator/property pairs built on the hand-rolled Core.Prop:

   - random CNF formulas: the CDCL solver must agree with a brute-force
     oracle; SAT models must satisfy every clause; UNSAT verdicts must
     come with a DRAT proof the independent checker accepts;
   - random XAG recipes: rewriting and technology mapping must preserve
     behavior under re-simulation;
   - random defect-injection parameters: operational yield must be
     deterministic under its seed, lie in [0, 1], agree with its own
     trial list, and be exactly 1.0 with zero defects;
   - random charge systems (<= 16 sites): the pruned exact engine must
     report the same ground-state energy and the same degenerate state
     set as exhaustive enumeration, and branch & bound must agree on the
     energy.

   Runs a fixed seed by default so CI is reproducible; any failure is
   shrunk before being reported, and the process exits nonzero. *)

module P = Core.Prop
module S = Sat.Solver

(* CNF: solver vs. oracle, model soundness, checked UNSAT proofs. *)

let cnf_property (f : P.cnf) =
  let s = S.create () in
  for _ = 1 to f.P.nvars do
    ignore (S.new_var s)
  done;
  S.enable_proof s;
  List.iter (S.add_clause s) f.P.clauses;
  let oracle_sat = P.brute_force_sat f in
  match S.solve s with
  | S.Unknown _ -> Error "unbudgeted solve returned Unknown"
  | S.Sat ->
      if not oracle_sat then Error "solver says SAT, oracle says UNSAT"
      else
        let model = S.model s in
        let lit_true l =
          let v = model.(abs l - 1) in
          if l > 0 then v else not v
        in
        if List.for_all (fun c -> List.exists lit_true c) f.P.clauses then
          Ok ()
        else Error "model falsifies a problem clause"
  | S.Unsat -> (
      if oracle_sat then Error "solver says UNSAT, oracle says SAT"
      else
        match
          Sat.Drat.check ~nvars:f.P.nvars ~clauses:f.P.clauses (S.proof s)
        with
        | Sat.Drat.Valid -> Ok ()
        | Sat.Drat.Invalid { step; reason } ->
            Error
              (Printf.sprintf "DRAT proof rejected at step %d: %s" step
                 reason))

(* Simplify: the preprocessed formula is equisatisfiable with the
   original (brute-force oracle on both), reconstructed models satisfy
   the *original* clauses, eliminated variables really are gone, and the
   DRAT trace — alone for a preprocessing refutation, or followed by a
   solver refutation of the simplified clauses — checks against the
   original formula. *)

let lit_true_in model l =
  let v = model.(abs l - 1) in
  if l > 0 then v else not v

let simplify_property (f : P.cnf) =
  let r = Sat.Simplify.run ~nvars:f.P.nvars f.P.clauses in
  let oracle_sat = P.brute_force_sat f in
  let simplified_sat =
    P.brute_force_sat { f with P.clauses = r.Sat.Simplify.clauses }
  in
  if simplified_sat <> oracle_sat then
    Error "simplified formula is not equisatisfiable with the original"
  else if
    List.exists
      (fun c ->
        List.exists (fun l -> List.mem (abs l) r.Sat.Simplify.eliminated) c)
      r.Sat.Simplify.clauses
  then Error "an eliminated variable still occurs in the simplified clauses"
  else begin
    let s = S.create () in
    for _ = 1 to f.P.nvars do
      ignore (S.new_var s)
    done;
    S.enable_proof s;
    List.iter (S.add_clause s) r.Sat.Simplify.clauses;
    match S.solve s with
    | S.Unknown _ -> Error "unbudgeted solve returned Unknown"
    | S.Sat ->
        if not oracle_sat then Error "solver SAT on UNSAT simplification"
        else
          let reconstructed = r.Sat.Simplify.reconstruct (S.model s) in
          if
            List.for_all
              (fun c -> List.exists (lit_true_in reconstructed) c)
              f.P.clauses
          then Ok ()
          else Error "reconstructed model falsifies an original clause"
    | S.Unsat -> (
        if oracle_sat then Error "solver UNSAT on SAT simplification"
        else
          let full = r.Sat.Simplify.proof @ S.proof s in
          match Sat.Drat.check ~nvars:f.P.nvars ~clauses:f.P.clauses full with
          | Sat.Drat.Valid -> Ok ()
          | Sat.Drat.Invalid { step; reason } ->
              Error
                (Printf.sprintf
                   "simplify+solve DRAT proof rejected at step %d: %s" step
                   reason))
  end

(* Portfolio: verdict must match a plain single solver at any width;
   SAT models (reconstructed) must satisfy the original clauses; UNSAT
   must come with a checkable proof of the original formula. *)

type portfolio_instance = { pf_cnf : P.cnf; pf_k : int }

let portfolio_arb : portfolio_instance P.arbitrary =
  let gen rng = { pf_cnf = P.cnf.P.gen rng; pf_k = 1 + P.Rng.int rng 6 } in
  let shrink i =
    List.map (fun c -> { i with pf_cnf = c }) (P.cnf.P.shrink i.pf_cnf)
  in
  let pp ppf i =
    Format.fprintf ppf "k=%d %a" i.pf_k P.cnf.P.pp i.pf_cnf
  in
  { P.gen; shrink; pp }

let portfolio_property inst =
  let f = inst.pf_cnf in
  let single = S.create () in
  for _ = 1 to f.P.nvars do
    ignore (S.new_var single)
  done;
  List.iter (S.add_clause single) f.P.clauses;
  let p =
    Sat.Portfolio.create ~k:inst.pf_k ~certify:true ~nvars:f.P.nvars
      f.P.clauses
  in
  match (S.solve single, Sat.Portfolio.solve p) with
  | S.Unknown _, _ | _, S.Unknown _ ->
      Error "unbudgeted solve returned Unknown"
  | S.Sat, S.Unsat | S.Unsat, S.Sat ->
      Error "portfolio verdict differs from single solver"
  | S.Sat, S.Sat ->
      let m = Sat.Portfolio.model p in
      if List.for_all (fun c -> List.exists (lit_true_in m) c) f.P.clauses
      then Ok ()
      else Error "portfolio model falsifies an original clause"
  | S.Unsat, S.Unsat -> (
      match
        Sat.Drat.check ~nvars:f.P.nvars ~clauses:f.P.clauses
          (Sat.Portfolio.proof p)
      with
      | Sat.Drat.Valid -> Ok ()
      | Sat.Drat.Invalid { step; reason } ->
          Error
            (Printf.sprintf "portfolio DRAT proof rejected at step %d: %s"
               step reason))

(* At-most-one encodings: sequential and commander agree with pairwise
   (and with a semantic oracle) under every full assumption set.  This
   also extends the CDCL-vs-oracle cross-check to formulas containing
   encoder auxiliary variables: the assumptions pin only the original
   variables, so the solver must reason through the auxiliaries. *)

type amo_instance = { amo_nvars : int; amo_lits : int list }

let pp_amo ppf i =
  Format.fprintf ppf "amo over %d var(s): [%s]" i.amo_nvars
    (String.concat "; " (List.map string_of_int i.amo_lits))

let amo_arb : amo_instance P.arbitrary =
  let gen rng =
    let n = 2 + P.Rng.int rng 7 in
    (* 2..8 variables *)
    let k = 2 + P.Rng.int rng (2 * n) in
    let lits =
      List.init k (fun _ ->
          let v = 1 + P.Rng.int rng n in
          if P.Rng.bool rng then v else -v)
    in
    { amo_nvars = n; amo_lits = lits }
  in
  let shrink i =
    if List.length i.amo_lits <= 2 then []
    else
      List.init (List.length i.amo_lits) (fun drop ->
          {
            i with
            amo_lits = List.filteri (fun j _ -> j <> drop) i.amo_lits;
          })
  in
  { P.gen; shrink; pp = pp_amo }

let amo_property inst =
  let n = inst.amo_nvars in
  let build encoding =
    let f = Sat.Cnf.create () in
    for _ = 1 to n do
      ignore (Sat.Cnf.fresh f)
    done;
    Sat.Cnf.at_most_one ~encoding f inst.amo_lits;
    f
  in
  let fp = build Sat.Cnf.Pairwise in
  let fs = build Sat.Cnf.Sequential in
  let fc = build Sat.Cnf.Commander in
  let result = ref (Ok ()) in
  for mask = 0 to (1 lsl n) - 1 do
    if !result = Ok () then begin
      let assumptions =
        List.init n (fun i ->
            if mask land (1 lsl i) <> 0 then i + 1 else -(i + 1))
      in
      let solve f =
        match S.solve ~assumptions (Sat.Cnf.solver f) with
        | S.Sat -> true
        | S.Unsat -> false
        | S.Unknown _ -> failwith "unbudgeted solve returned Unknown"
      in
      (* Multiset semantics: at most one of the listed literal
         occurrences is true under the assignment [mask]. *)
      let expected =
        List.fold_left
          (fun acc l ->
            let value = mask land (1 lsl (abs l - 1)) <> 0 in
            if (if l > 0 then value else not value) then acc + 1 else acc)
          0 inst.amo_lits
        <= 1
      in
      let p = solve fp and s = solve fs and c = solve fc in
      if p <> expected || s <> expected || c <> expected then
        result :=
          Error
            (Printf.sprintf
               "assignment %d: semantic %b, pairwise %b, sequential %b, \
                commander %b"
               mask expected p s c)
    end
  done;
  !result

(* XAG: rewriting and mapping preserve behavior. *)

let has_constant_po n =
  let rec check i =
    i < Logic.Network.num_pos n
    && (Logic.Network.node_of_signal (Logic.Network.po_signal n i) = 0
       || check (i + 1))
  in
  check 0

let xag_property (r : P.xag_recipe) =
  let specification = P.build_xag r in
  let optimized = Logic.Rewrite.rewrite_to_fixpoint specification in
  match Verify.Resim.check_rewrite ~specification ~optimized with
  | Error e -> Error e
  | Ok () ->
      (* The Bestagon library has no tie tiles, so constant outputs
         cannot be mapped — skip those recipes for the mapping leg. *)
      if has_constant_po specification then Ok ()
      else
        let mapped, _ = Logic.Tech_map.map specification in
        Verify.Resim.check_mapping ~specification ~mapped

(* Cuts: priority and exhaustive enumeration must drive rewriting and
   mapping to the exact same place — identical mapped netlists, both
   Resim-equivalent to the source. *)

let cuts_property (r : P.xag_recipe) =
  let specification = P.build_xag r in
  let with_config config =
    let db = Logic.Npn_db.create () in
    let optimized =
      Logic.Rewrite.rewrite_to_fixpoint ~cut_config:config ~db specification
    in
    match Verify.Resim.check_rewrite ~specification ~optimized with
    | Error e -> Error e
    | Ok () ->
        if has_constant_po optimized then Ok None
        else
          let mapped, _ = Logic.Tech_map.map optimized in
          (match Verify.Resim.check_mapping ~specification:optimized ~mapped with
          | Error e -> Error e
          | Ok () -> Ok (Some mapped))
  in
  match
    ( with_config Logic.Cuts.default_config,
      with_config Logic.Cuts.exhaustive_config )
  with
  | Error e, _ -> Error ("priority: " ^ e)
  | _, Error e -> Error ("exhaustive: " ^ e)
  | Ok p, Ok x -> (
      match (p, x) with
      | None, None -> Ok ()
      | Some mp, Some mx ->
          if Logic.Mapped.equal mp mx then Ok ()
          else Error "priority and exhaustive cuts map to different netlists"
      | Some _, None | None, Some _ ->
          Error "strategies disagree on constant outputs")

(* Defects: yield determinism and consistency on a library OR gate. *)

let or_structure =
  lazy
    (let tile =
       Layout.Tile.Gate
         {
           fn = Logic.Mapped.Or2;
           ins = [ Hexlib.Direction.North_west; Hexlib.Direction.North_east ];
           outs = [ Hexlib.Direction.South_east ];
         }
     in
     match
       ( Bestagon.Library.validation_structure tile,
         Bestagon.Library.tile_spec tile )
     with
     | Some s, Some spec -> (s, spec)
     | _ -> failwith "no OR structure in the Bestagon library")

let defect_property (p : Sidb.Defects.params) =
  let open Sidb.Defects in
  let s, spec = Lazy.force or_structure in
  let r1 = operational_yield p s ~spec in
  let r2 = operational_yield p s ~spec in
  let operational =
    List.length (List.filter (fun t -> t.operational) r1.trials)
  in
  if r1.yield <> r2.yield then
    Error
      (Printf.sprintf "yield not deterministic: %.4f vs %.4f" r1.yield
         r2.yield)
  else if r1.yield < 0.0 || r1.yield > 1.0 then
    Error (Printf.sprintf "yield %.4f outside [0, 1]" r1.yield)
  else if List.length r1.trials <> p.trials then
    Error
      (Printf.sprintf "%d trial record(s) for %d trial(s)"
         (List.length r1.trials) p.trials)
  else if r1.operational_trials <> operational then
    Error "operational_trials disagrees with the trial list"
  else if
    abs_float (r1.yield -. (float_of_int operational /. float_of_int p.trials))
    > 1e-9
  then Error "yield is not operational/trials"
  else if p.missing = 0 && p.extra = 0 && p.charged = 0 && r1.yield <> 1.0
  then Error "zero defects must give yield 1.0"
  else Ok ()

(* Defect-aware physical design: on a random dirty surface, the
   scalable engine either fails with a structured [Error] or produces a
   layout that never occupies a blocked tile and passes the whole-layout
   DRC audit.  Exceptions escaping [place_and_route] are failures. *)

type defect_aware_case = {
  da_recipe : P.xag_recipe;
  da_seed : int;
  da_charged : int;
  da_neutral : int;
}

let pp_defect_aware ppf c =
  Format.fprintf ppf "map(seed %d, %d charged, %d neutral) over %a" c.da_seed
    c.da_charged c.da_neutral P.xag.P.pp c.da_recipe

let defect_aware_arb : defect_aware_case P.arbitrary =
  let gen rng =
    {
      da_recipe = P.xag.P.gen rng;
      da_seed = P.Rng.int rng 1_000_000;
      da_charged = P.Rng.int rng 3;
      da_neutral = P.Rng.int rng 5;
    }
  in
  let shrink c =
    List.map (fun r -> { c with da_recipe = r }) (P.xag.P.shrink c.da_recipe)
    @ (if c.da_charged > 0 then [ { c with da_charged = c.da_charged - 1 } ]
       else [])
    @ if c.da_neutral > 0 then [ { c with da_neutral = c.da_neutral - 1 } ]
      else []
  in
  { P.gen; shrink; pp = pp_defect_aware }

let defect_aware_property c =
  let specification = P.build_xag c.da_recipe in
  if has_constant_po specification then Ok ()
  else
    let mapped, _ = Logic.Tech_map.map specification in
    let netlist = Physdesign.Netlist.of_mapped mapped in
    let map =
      Sidb.Defect_map.random ~seed:c.da_seed ~charged:c.da_charged
        ~neutral:c.da_neutral
        (Bestagon.Surface.grid_box ~width:12 ~height:12)
    in
    let surface = Bestagon.Surface.create map in
    let blocked coord = Bestagon.Surface.blocked surface coord in
    match Physdesign.Scalable.place_and_route ~blocked netlist with
    | Error _ -> Ok ()
    | exception e -> Error ("exception escaped: " ^ Printexc.to_string e)
    | Ok r -> (
        let bad = ref None in
        Layout.Gate_layout.iter r.Physdesign.Scalable.layout (fun coord tile ->
            if (not (Layout.Tile.is_empty tile)) && blocked coord then
              bad := Some coord);
        match !bad with
        | Some (coord : Hexlib.Coord.offset) ->
            Error
              (Printf.sprintf "tile placed on blocked coordinate (%d,%d)"
                 coord.Hexlib.Coord.col coord.Hexlib.Coord.row)
        | None ->
            (* Random recipes can leave an output port unused (a PI
               nothing consumes, a half-adder whose carry is dangling);
               the resulting pad/gate tiles then rightly fail the
               audit's arity and reachability rules — only audit
               netlists whose output ports all carry signal. *)
            if
              List.exists
                (fun i ->
                  List.length (Physdesign.Netlist.out_edges netlist i)
                  < Physdesign.Netlist.num_out_ports netlist i)
                (List.init (Physdesign.Netlist.num_nodes netlist) Fun.id)
            then Ok ()
            else (
              match Layout.Design_rules.audit r.Physdesign.Scalable.layout with
              | [] -> Ok ()
              | v :: _ as vs ->
                  Error
                    (Printf.sprintf
                       "%d DRC violation(s) on defect-aware layout, first: \
                        %s at (%d,%d): %s"
                       (List.length vs) v.Layout.Design_rules.rule
                       v.Layout.Design_rules.at.Hexlib.Coord.col
                       v.Layout.Design_rules.at.Hexlib.Coord.row
                       v.Layout.Design_rules.message)))

(* Charge systems: the pruned engine is exact. *)

let pp_sites ppf sites =
  Format.fprintf ppf "sites [%s]"
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun s ->
               Printf.sprintf "(%d,%d,%d)" s.Sidb.Lattice.n s.Sidb.Lattice.m
                 s.Sidb.Lattice.l)
             sites)))

let system_arb : Sidb.Lattice.site array P.arbitrary =
  let gen rng =
    let n = 2 + P.Rng.int rng 15 in
    let sites = ref [] in
    (* Rejection-sample distinct sites in a 14x7x2 box: small enough for
       meaningful interactions, large enough that 16 distinct sites
       always fit. *)
    while List.length !sites < n do
      let s =
        {
          Sidb.Lattice.n = P.Rng.int rng 14;
          m = P.Rng.int rng 7;
          l = P.Rng.int rng 2;
        }
      in
      if not (List.mem s !sites) then sites := s :: !sites
    done;
    Array.of_list !sites
  in
  let shrink sites =
    if Array.length sites <= 2 then []
    else
      List.init (Array.length sites) (fun drop ->
          Array.of_list
            (List.filteri
               (fun i _ -> i <> drop)
               (Array.to_list sites)))
  in
  { P.gen; shrink; pp = pp_sites }

let system_property sites =
  let open Sidb.Ground_state in
  let sys = Sidb.Charge_system.create Sidb.Model.default sites in
  (* No cap in play: 2^16 exceeds any possible degeneracy here. *)
  let cap = 1 lsl 16 in
  let ex = exhaustive ~max_states:cap sys in
  let pr = pruned ~max_states:cap sys in
  let bb = branch_and_bound ~max_states:cap sys in
  let state_key r = List.sort compare (List.map Array.to_list r.states) in
  if abs_float (ex.energy -. pr.energy) > 1e-9 then
    Error
      (Printf.sprintf "pruned energy %.9f, exhaustive %.9f" pr.energy
         ex.energy)
  else if state_key ex <> state_key pr then
    Error
      (Printf.sprintf "pruned returns %d state(s), exhaustive %d, or sets differ"
         (List.length pr.states) (List.length ex.states))
  else if abs_float (ex.energy -. bb.energy) > 1e-9 then
    Error
      (Printf.sprintf "branch&bound energy %.9f, exhaustive %.9f" bb.energy
         ex.energy)
  else if
    not
      (List.for_all
         (fun occ -> Sidb.Charge_system.population_stable sys occ)
         pr.states)
  then Error "pruned returned a population-unstable state"
  else Ok ()

(* Heuristic-vs-exact: on systems small enough for the exact engines,
   quicksim with its default configuration must land on the exact
   ground-state energy, and everything it returns must be a physically
   valid state (population- and configuration-stable). *)
let quicksim_property sites =
  let open Sidb.Ground_state in
  let sys = Sidb.Charge_system.create Sidb.Model.default sites in
  let pr = pruned ~max_states:(1 lsl 16) sys in
  let qs = quicksim sys in
  if abs_float (qs.energy -. pr.energy) > 1e-9 then
    Error
      (Printf.sprintf "quicksim energy %.9f, pruned %.9f" qs.energy pr.energy)
  else if qs.states = [] then Error "quicksim returned no states"
  else if
    not
      (List.for_all
         (fun occ -> Sidb.Charge_system.physically_valid sys occ)
         qs.states)
  then Error "quicksim returned a physically invalid state"
  else Ok ()

(* Operational-domain algorithms: on a random library gate over a random
   2-D parameter slice, the tuned grid must match the preserved baseline
   sweep bit for bit, every point flood fill / contour tracing actually
   evaluates must carry the grid's classification, the sampled sweeps
   must never evaluate more points than the grid has, and each algorithm
   must be bit-identical at any job count. *)

module OD = Sidb.Operational_domain

type opdomain_case = {
  oc_gate : string;
  oc_x : OD.axis;
  oc_y : OD.axis;
  oc_samples : int;
  oc_jobs : int;
}

let opdomain_gates =
  lazy
    (let module T = Layout.Tile in
     let module D = Hexlib.Direction in
     let module M = Logic.Mapped in
     let gate2 fn =
       T.Gate { fn; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
     in
     List.filter_map
       (fun (name, tile) ->
         match
           ( Bestagon.Library.validation_structure tile,
             Bestagon.Library.tile_spec tile )
         with
         | Some s, Some spec -> Some (name, s, spec)
         | _ -> None)
       [
         ("wire", T.Wire { segments = [ (D.North_west, D.South_east) ] });
         ("inverter",
          T.Gate { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_east ] });
         ("or2", gate2 M.Or2);
         ("and2", gate2 M.And2);
         ("nor2", gate2 M.Nor2);
         ("nand2", gate2 M.Nand2);
         ("xor2", gate2 M.Xor2);
         ("xnor2", gate2 M.Xnor2);
       ])

let opdomain_arb : opdomain_case P.arbitrary =
  let parameter_range = function
    | OD.Mu_minus -> (-1.2, 0.)
    | OD.Epsilon_r -> (1., 14.)
    | OD.Lambda_tf -> (3., 8.)
  in
  let gen rng =
    let gates = Lazy.force opdomain_gates in
    let name, _, _ = List.nth gates (P.Rng.int rng (List.length gates)) in
    let params = [| OD.Mu_minus; OD.Epsilon_r; OD.Lambda_tf |] in
    let i = P.Rng.int rng 3 in
    let j = (i + 1 + P.Rng.int rng 2) mod 3 in
    let axis parameter =
      let lo, hi = parameter_range parameter in
      let u () = float_of_int (P.Rng.int rng 1001) /. 1000. in
      let from_value = lo +. ((hi -. lo) *. 0.5 *. u ()) in
      let to_value = from_value +. Float.max 0.1 ((hi -. lo) *. 0.5 *. u ()) in
      { OD.parameter; from_value; to_value; steps = 3 + P.Rng.int rng 3 }
    in
    {
      oc_gate = name;
      oc_x = axis params.(i);
      oc_y = axis params.(j);
      oc_samples = 1 + P.Rng.int rng 12;
      oc_jobs = 2 + P.Rng.int rng 3;
    }
  in
  let pp ppf c =
    Format.fprintf ppf "%s: %s [%g, %g]x%d vs %s [%g, %g]x%d, %d probes, %d jobs"
      c.oc_gate
      (OD.parameter_name c.oc_x.OD.parameter)
      c.oc_x.OD.from_value c.oc_x.OD.to_value c.oc_x.OD.steps
      (OD.parameter_name c.oc_y.OD.parameter)
      c.oc_y.OD.from_value c.oc_y.OD.to_value c.oc_y.OD.steps c.oc_samples
      c.oc_jobs
  in
  { P.gen; shrink = (fun _ -> []); pp }

let opdomain_property c =
  let _, structure, spec =
    List.find (fun (n, _, _) -> n = c.oc_gate) (Lazy.force opdomain_gates)
  in
  let x_axis = c.oc_x and y_axis = c.oc_y in
  let run config jobs = OD.sweep ~jobs ~config ~x_axis ~y_axis structure ~spec in
  let baseline = run OD.baseline_config 1 in
  let grid = run { OD.default_config with OD.algorithm = OD.Grid } 1 in
  if grid.OD.samples <> baseline.OD.samples
     || grid.OD.operational_fraction <> baseline.OD.operational_fraction
  then Error "tuned grid differs from the baseline sweep"
  else
    let check name algorithm =
      let config =
        { OD.default_config with OD.algorithm; samples = c.oc_samples }
      in
      let d1 = run config 1 in
      let dj = run config c.oc_jobs in
      if dj <> d1 then
        Error (Printf.sprintf "%s differs at jobs=%d" name c.oc_jobs)
      else if d1.OD.stats.OD.points_evaluated > d1.OD.stats.OD.total_points
      then Error (name ^ " evaluated more points than the grid has")
      else if
        not
          (List.for_all2
             (fun (b : OD.sample) (s : OD.sample) ->
               (not s.OD.evaluated) || s.OD.operational = b.OD.operational)
             baseline.OD.samples d1.OD.samples)
      then Error (name ^ " disagrees with the grid on an evaluated point")
      else Ok ()
    in
    match check "flood-fill" OD.Flood_fill with
    | Error _ as e -> e
    | Ok () -> check "contour" OD.Contour_tracing

(* Driver. *)

(* Design-server loop: random byte noise, JSON soup, and truncated or
   bit-flipped protocol lines must never crash [handle_line], and every
   response it does emit must be one well-formed JSON line carrying a
   status. *)

let serve_templates =
  [|
    {|{"fictionette-serve":1,"kind":"ping","id":1}|};
    {|{"fictionette-serve":1,"kind":"stats"}|};
    {|{"fictionette-serve":1,"kind":"simulate","gate":"xor2"}|};
    {|{"fictionette-serve":1,"kind":"design","benchmark":"c17","timeout_ms":5000}|};
    {|{"fictionette-serve":1,"kind":"design","verilog":"module m(a,y); input a; output y; not(y,a); endmodule"}|};
    {|{"fictionette-serve":1,"kind":"batch","jobs":[{"kind":"simulate","gate":"wire"},{"kind":"ping"}]}|};
    {|{"fictionette-serve":1,"kind":"yield","benchmark":"mux21","trials":2,"timeout_ms":5000}|};
  |]

let json_soup_chars = "{}[]\":,0123456789.eE+-truefalsnu \\\"x"

let serve_arb : string P.arbitrary =
  let gen rng =
    match P.Rng.int rng 4 with
    | 0 ->
        String.init (P.Rng.int rng 120) (fun _ ->
            Char.chr (P.Rng.int rng 256))
    | 1 ->
        String.init (P.Rng.int rng 120) (fun _ ->
            json_soup_chars.[P.Rng.int rng (String.length json_soup_chars)])
    | 2 ->
        let t = serve_templates.(P.Rng.int rng (Array.length serve_templates)) in
        String.sub t 0 (P.Rng.int rng (String.length t + 1))
    | _ ->
        let t = serve_templates.(P.Rng.int rng (Array.length serve_templates)) in
        let b = Bytes.of_string t in
        for _ = 1 to 1 + P.Rng.int rng 3 do
          Bytes.set b
            (P.Rng.int rng (Bytes.length b))
            (Char.chr (P.Rng.int rng 256))
        done;
        Bytes.to_string b
  in
  let shrink s =
    if String.length s <= 1 then []
    else
      [
        String.sub s 0 (String.length s / 2);
        String.sub s 0 (String.length s - 1);
        String.sub s 1 (String.length s - 1);
      ]
  in
  { P.gen; shrink; pp = (fun ppf s -> Format.fprintf ppf "line %S" s) }

(* One resident server across all iterations — exactly the deployment
   shape, and it additionally checks that a poisoned line cannot corrupt
   state needed by later well-formed requests. *)
let serve_server =
  lazy
    (Serve.Server.create
       ~config:
         {
           Serve.Server.default_config with
           Serve.Server.max_timeout_ms = 5_000.;
           sleep = (fun _ -> ());
         }
       ())

let serve_property line =
  let server = Lazy.force serve_server in
  match Serve.Server.handle_line server line with
  | responses ->
      let well_formed r =
        (not (String.contains r '\n'))
        &&
        match Serve.Json.parse r with
        | Ok j -> Serve.Protocol.response_status j <> None
        | Error _ -> false
      in
      if List.for_all well_formed responses then Ok ()
      else Error "response is not a single JSON line with a status"
  | exception e ->
      Error ("handle_line raised: " ^ Printexc.to_string e)

let () =
  let seed = ref 0xF002 in
  let cnf_iters = ref 300 in
  let amo_iters = ref 60 in
  let xag_iters = ref 150 in
  let cuts_iters = ref 60 in
  let defect_iters = ref 60 in
  let defect_aware_iters = ref 25 in
  let system_iters = ref 40 in
  let quicksim_iters = ref 40 in
  let opdomain_iters = ref 30 in
  let serve_iters = ref 150 in
  let simplify_iters = ref 200 in
  let portfolio_iters = ref 100 in
  Arg.parse
    [
      ("-seed", Arg.Set_int seed, "PRNG seed (default 0xF002)");
      ("-cnf", Arg.Set_int cnf_iters, "CNF iterations (default 300)");
      ( "-simplify",
        Arg.Set_int simplify_iters,
        "CNF preprocessing iterations (default 200)" );
      ( "-portfolio",
        Arg.Set_int portfolio_iters,
        "solver-portfolio iterations (default 100)" );
      ( "-amo",
        Arg.Set_int amo_iters,
        "at-most-one encoding iterations (default 60)" );
      ("-xag", Arg.Set_int xag_iters, "XAG iterations (default 150)");
      ( "-cuts",
        Arg.Set_int cuts_iters,
        "priority-vs-exhaustive cut iterations (default 60)" );
      ( "-defect",
        Arg.Set_int defect_iters,
        "defect-parameter iterations (default 60)" );
      ( "-defect-aware",
        Arg.Set_int defect_aware_iters,
        "defect-aware P&R iterations (default 25)" );
      ( "-system",
        Arg.Set_int system_iters,
        "charge-system iterations (default 40)" );
      ( "-quicksim",
        Arg.Set_int quicksim_iters,
        "quicksim-vs-pruned iterations (default 40)" );
      ( "-opdomain",
        Arg.Set_int opdomain_iters,
        "operational-domain algorithm iterations (default 30)" );
      ( "-serve",
        Arg.Set_int serve_iters,
        "design-server line-noise iterations (default 150)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [-seed N] [-cnf N] [-simplify N] [-portfolio N] [-amo N] [-xag N] \
     [-cuts N] [-defect N] [-defect-aware N] [-system N] [-quicksim N] \
     [-opdomain N] [-serve N]";
  let failed = ref false in
  let run name iterations arb prop =
    let outcome = P.check ~seed:!seed ~iterations arb prop in
    P.pp_outcome ~pp:arb.P.pp ~name Format.std_formatter outcome;
    match outcome with P.Passed _ -> () | P.Failed _ -> failed := true
  in
  run "cnf-vs-oracle" !cnf_iters P.cnf cnf_property;
  run "simplify-equisat" !simplify_iters P.cnf simplify_property;
  run "portfolio-vs-single" !portfolio_iters portfolio_arb
    portfolio_property;
  run "amo-encodings" !amo_iters amo_arb amo_property;
  run "xag-rewrite-map" !xag_iters P.xag xag_property;
  run "cuts-priority-vs-exhaustive" !cuts_iters P.xag cuts_property;
  run "defect-yield" !defect_iters P.defect_params defect_property;
  run "defect-aware-pnr" !defect_aware_iters defect_aware_arb
    defect_aware_property;
  run "pruned-vs-exhaustive" !system_iters system_arb system_property;
  run "quicksim-vs-pruned" !quicksim_iters system_arb quicksim_property;
  run "opdomain-algorithms" !opdomain_iters opdomain_arb opdomain_property;
  run "serve-line-noise" !serve_iters serve_arb serve_property;
  if !failed then exit 1
