(* Tests for netlist preparation and both physical-design engines. *)

module NL = Physdesign.Netlist
module Ex = Physdesign.Exact
module Sc = Physdesign.Scalable
module M = Logic.Mapped
module N = Logic.Network
module T = Logic.Truth_table
module GL = Layout.Gate_layout
module DR = Layout.Design_rules

let mapped_of name =
  let b = Logic.Benchmarks.find name in
  fst (Logic.Tech_map.map (b.Logic.Benchmarks.build ()))

(* --- netlist ------------------------------------------------------------ *)

let test_netlist_counts () =
  let nl = NL.of_mapped (mapped_of "par_check") in
  Alcotest.(check int) "pis" 4 (List.length (NL.pis nl));
  Alcotest.(check int) "pos" 1 (List.length (NL.pos nl));
  Alcotest.(check bool) "has gates" true (NL.gates_and_fanouts nl <> [])

let test_fanout_decomposition () =
  (* One source with three consumers needs two fan-out nodes. *)
  let m = M.create () in
  let a = M.add_input m "a" and b = M.add_input m "b" in
  let g = M.add_gate m M.And2 [ a; b ] in
  M.add_output m "y1" g;
  M.add_output m "y2" g;
  M.add_output m "y3" g;
  let nl = NL.of_mapped m in
  Alcotest.(check int) "fanout nodes" 2 (NL.fanout_nodes_added nl);
  (* Every output port now drives exactly one edge. *)
  for node = 0 to NL.num_nodes nl - 1 do
    Alcotest.(check bool) "out-degree bounded" true
      (List.length (NL.out_edges nl node) <= NL.num_out_ports nl node)
  done

let test_netlist_roundtrip () =
  List.iter
    (fun name ->
      let mapped = mapped_of name in
      let nl = NL.of_mapped mapped in
      let back = NL.to_mapped nl in
      let s1 = M.simulate mapped and s2 = M.simulate back in
      Alcotest.(check bool) (name ^ " preserved") true
        (Array.for_all2 T.equal s1 s2))
    [ "xor2"; "c17"; "cm82a_5" ]

let test_min_bounds () =
  let nl = NL.of_mapped (mapped_of "c17") in
  Alcotest.(check bool) "height >= depth" true (NL.min_height nl >= 3);
  Alcotest.(check int) "width >= pis" 5 (NL.min_width nl)

(* --- engines: both produce clean, verified layouts ------------------------ *)

let check_layout name ntk layout =
  let violations = DR.check layout in
  List.iter (fun v -> Format.printf "%a@." DR.pp_violation v) violations;
  Alcotest.(check int) (name ^ " drc") 0 (List.length violations);
  match Verify.Equivalence.check_layout ntk layout with
  | Ok Verify.Equivalence.Equivalent -> ()
  | Ok (Verify.Equivalence.Counterexample cex) ->
      Alcotest.fail
        (Printf.sprintf "%s differs on %s" name
           (String.concat ","
              (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) cex)))
  | Ok (Verify.Equivalence.Interface_mismatch m) ->
      Alcotest.fail (name ^ " interface: " ^ m)
  | Ok (Verify.Equivalence.Undecided r) ->
      Alcotest.fail (name ^ " undecided: " ^ Sat.Budget.reason_to_string r)
  | Error e -> Alcotest.fail (name ^ " extraction: " ^ e)

let exact_names = [ "xor2"; "par_gen"; "mux21"; "par_check"; "c17" ]

let test_exact_small () =
  List.iter
    (fun name ->
      let b = Logic.Benchmarks.find name in
      let ntk = b.Logic.Benchmarks.build () in
      let mapped, _ = Logic.Tech_map.map ntk in
      let nl = NL.of_mapped mapped in
      match Ex.place_and_route nl with
      | Error e -> Alcotest.fail (name ^ ": " ^ Ex.failure_message e)
      | Ok r -> check_layout name ntk r.Ex.layout)
    exact_names

let test_exact_matches_paper_dimensions () =
  (* These circuits reproduce Table 1's aspect ratios exactly. *)
  List.iter
    (fun (name, w, h) ->
      let b = Logic.Benchmarks.find name in
      let ntk = Logic.Rewrite.rewrite_to_fixpoint (b.Logic.Benchmarks.build ()) in
      let mapped, _ = Logic.Tech_map.map ntk in
      let nl = NL.of_mapped mapped in
      match Ex.place_and_route nl with
      | Error e -> Alcotest.fail (name ^ ": " ^ Ex.failure_message e)
      | Ok r ->
          Alcotest.(check (pair int int))
            (name ^ " dimensions")
            (w, h) (r.Ex.width, r.Ex.height))
    [ ("xor2", 2, 3); ("xnor2", 2, 3); ("par_gen", 3, 4) ]

let test_exact_solve_fixed () =
  let nl = NL.of_mapped (mapped_of "xor2") in
  (* 2x3 is feasible; 1x3 cannot host two input pads. *)
  Alcotest.(check bool) "2x3 feasible" true
    (Ex.solve_fixed ~width:2 ~height:3 nl <> None);
  Alcotest.(check bool) "1x3 infeasible" true
    (Ex.solve_fixed ~width:1 ~height:3 nl = None)

let test_exact_budget () =
  let nl = NL.of_mapped (mapped_of "par_check") in
  let config =
    { Ex.default_config with conflict_budget = Some 1 }
  in
  (* With an absurd budget the search either degrades gracefully or
     still finds an instance quickly; it must not raise. *)
  match Ex.place_and_route ~config nl with
  | Ok _ | Error _ -> ()

let test_exact_global_conflict_budget () =
  let nl = NL.of_mapped (mapped_of "par_check") in
  (* The deterministic solver needs 2 conflicts for the first (already
     satisfiable) candidate; a global budget of 1 must end in a
     structured Out_of_budget, never an exception — at any job count. *)
  List.iter
    (fun jobs ->
      let config = { Ex.default_config with jobs } in
      match
        Ex.place_and_route ~config ~budget:(Sat.Budget.of_conflicts 1) nl
      with
      | Error (Ex.Out_of_budget { reason = Sat.Budget.Conflicts; _ }) -> ()
      | Error f -> Alcotest.fail ("unexpected failure: " ^ Ex.failure_message f)
      | Ok _ -> Alcotest.fail "1 conflict cannot route par_check")
    [ None; Some 1; Some 4 ];
  (* An already-expired deadline trips before any solving. *)
  match
    Ex.place_and_route
      ~budget:
        {
          Sat.Budget.unlimited with
          Sat.Budget.deadline = Some (Unix.gettimeofday () -. 1.);
        }
      nl
  with
  | Error (Ex.Out_of_budget { reason = Sat.Budget.Deadline; _ }) -> ()
  | Error f -> Alcotest.fail ("unexpected failure: " ^ Ex.failure_message f)
  | Ok _ -> Alcotest.fail "expired deadline still routed"

let test_exact_escalation_reaches_layout () =
  (* Escalating rounds over a modest per-round allowance still reach a
     layout for a small circuit. *)
  let nl = NL.of_mapped (mapped_of "xor2") in
  let config =
    { Ex.default_config with conflict_budget = Some 50; max_rounds = 16 }
  in
  match Ex.place_and_route ~config nl with
  | Ok r ->
      Alcotest.(check (pair int int)) "dimensions" (2, 3) (r.Ex.width, r.Ex.height)
  | Error f -> Alcotest.fail (Ex.failure_message f)

(* Reference implementation of level assignment: the pre-overhaul
   repeated-sweep fixpoint.  The single-pass Kahn version must assign
   exactly the same levels. *)
let levels_fixpoint nl =
  let n = NL.num_nodes nl in
  let lev = Array.make n 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun e ->
        if lev.(e.NL.dst) < lev.(e.NL.src) + 1 then begin
          lev.(e.NL.dst) <- lev.(e.NL.src) + 1;
          changed := true
        end)
      (NL.edges nl)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      match NL.kind nl i with
      | NL.N_fanout ->
          let slack =
            List.fold_left
              (fun acc e -> min acc (lev.((NL.edges nl).(e).NL.dst) - 1))
              max_int (NL.out_edges nl i)
          in
          if slack > lev.(i) && slack < max_int then begin
            lev.(i) <- slack;
            changed := true
          end
      | NL.N_pi _ | NL.N_po _ | NL.N_gate _ -> ()
    done
  done;
  lev

let test_levels_match_fixpoint () =
  List.iter
    (fun b ->
      let mapped = mapped_of b.Logic.Benchmarks.name in
      let nl = NL.of_mapped mapped in
      Alcotest.(check (array int))
        (b.Logic.Benchmarks.name ^ " levels")
        (levels_fixpoint nl) (Sc.compute_levels nl))
    Logic.Benchmarks.all

let test_scalable_all_benchmarks () =
  (* As in the flow, rewriting runs first; the heuristic router is
     documented to handle the optimized (moderate-depth) netlists the
     flow feeds it. *)
  List.iter
    (fun b ->
      let ntk = b.Logic.Benchmarks.build () in
      let rewritten = Logic.Rewrite.rewrite_to_fixpoint ntk in
      let mapped, _ = Logic.Tech_map.map rewritten in
      let nl = NL.of_mapped mapped in
      match Sc.place_and_route nl with
      | Error e -> Alcotest.fail (b.Logic.Benchmarks.name ^ ": " ^ e)
      | Ok r -> check_layout b.Logic.Benchmarks.name ntk r.Sc.layout)
    Logic.Benchmarks.all

let test_scalable_not_smaller_than_exact () =
  (* The heuristic may not beat the exact minimum area. *)
  let nl = NL.of_mapped (mapped_of "par_gen") in
  match (Ex.place_and_route nl, Sc.place_and_route nl) with
  | Ok e, Ok s ->
      let es = GL.stats e.Ex.layout and ss = GL.stats s.Sc.layout in
      Alcotest.(check bool) "exact minimal" true
        (es.GL.area_tiles <= ss.GL.area_tiles)
  | Error f, _ -> Alcotest.fail (Ex.failure_message f)
  | _, Error m -> Alcotest.fail m

let () =
  Alcotest.run "physdesign"
    [
      ( "netlist",
        [
          Alcotest.test_case "counts" `Quick test_netlist_counts;
          Alcotest.test_case "fanout decomposition" `Quick test_fanout_decomposition;
          Alcotest.test_case "roundtrip" `Quick test_netlist_roundtrip;
          Alcotest.test_case "bounds" `Quick test_min_bounds;
        ] );
      ( "exact",
        [
          Alcotest.test_case "small benchmarks" `Slow test_exact_small;
          Alcotest.test_case "paper dimensions" `Slow
            test_exact_matches_paper_dimensions;
          Alcotest.test_case "fixed size" `Quick test_exact_solve_fixed;
          Alcotest.test_case "budget handling" `Quick test_exact_budget;
          Alcotest.test_case "global budget" `Quick
            test_exact_global_conflict_budget;
          Alcotest.test_case "escalation" `Quick
            test_exact_escalation_reaches_layout;
        ] );
      ( "scalable",
        [
          Alcotest.test_case "levels = fixpoint" `Quick
            test_levels_match_fixpoint;
          Alcotest.test_case "all benchmarks" `Slow test_scalable_all_benchmarks;
          Alcotest.test_case "exact is minimal" `Slow
            test_scalable_not_smaller_than_exact;
        ] );
    ]
