(* Tests for layout extraction and SAT equivalence checking. *)

module E = Verify.Equivalence
module X = Verify.Extract
module N = Logic.Network
module T = Logic.Truth_table
module GL = Layout.Gate_layout
module Tile = Layout.Tile
module D = Hexlib.Direction
module C = Hexlib.Coord

let offset col row : C.offset = { col; row }

let xor_layout () =
  let l = GL.create ~width:2 ~height:3 ~clocking:(GL.Scheme Layout.Clocking.Row) in
  GL.set l (offset 0 0) (Tile.Pi { name = "a"; out = D.South_east });
  GL.set l (offset 1 0) (Tile.Pi { name = "b"; out = D.South_west });
  GL.set l (offset 0 1)
    (Tile.Gate
       {
         fn = Logic.Mapped.Xor2;
         ins = [ D.North_west; D.North_east ];
         outs = [ D.South_west ];
       });
  GL.set l (offset 0 2) (Tile.Po { name = "f"; inp = D.North_east });
  l

let test_extract_xor () =
  match X.network (xor_layout ()) with
  | Error e -> Alcotest.fail e
  | Ok ntk ->
      Alcotest.(check int) "pis" 2 (N.num_pis ntk);
      Alcotest.(check int) "pos" 1 (N.num_pos ntk);
      Alcotest.(check string) "function" "0110"
        (T.to_string (N.simulate ntk).(0))

let test_extract_dangling () =
  let l = xor_layout () in
  GL.set l (offset 0 0) Tile.Empty;
  match X.network l with
  | Error msg ->
      Alcotest.(check bool) "mentions dangling" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected extraction error"

let test_equivalence_positive () =
  let spec = Logic.Benchmarks.xor2 () in
  match E.check_layout spec (xor_layout ()) with
  | Ok E.Equivalent -> ()
  | Ok _ -> Alcotest.fail "expected equivalent"
  | Error e -> Alcotest.fail e

let test_equivalence_negative () =
  (* Same layout checked against AND: must produce a counterexample
     where exactly one input is 1. *)
  let spec = N.create () in
  let a = N.pi spec "a" and b = N.pi spec "b" in
  N.po spec "f" (N.and_ spec a b);
  match E.check_layout spec (xor_layout ()) with
  | Ok (E.Counterexample cex) ->
      let value name = List.assoc name cex in
      Alcotest.(check bool) "differs" true (value "a" <> value "b" || (value "a" && value "b"))
  | Ok E.Equivalent -> Alcotest.fail "xor is not and"
  | Ok (E.Interface_mismatch m) -> Alcotest.fail m
  | Ok (E.Undecided r) -> Alcotest.fail (Sat.Budget.reason_to_string r)
  | Error e -> Alcotest.fail e

let test_interface_mismatch () =
  let spec = N.create () in
  let a = N.pi spec "x" in
  N.po spec "f" a;
  match E.check_layout spec (xor_layout ()) with
  | Ok (E.Interface_mismatch _) -> ()
  | _ -> Alcotest.fail "expected interface mismatch"

let test_check_networks_directly () =
  (* Two different realizations of the same parity function. *)
  let n1 = Logic.Benchmarks.xor5_r1 () in
  let n2 = Logic.Benchmarks.xor5_majority () in
  (* The two have different input names?  Both use x0..x4. *)
  Alcotest.(check bool) "equivalent realizations" true
    (E.check n1 n2 = E.Equivalent)

let test_check_distinguishes () =
  let n1 = Logic.Benchmarks.t () in
  let n2 =
    (* Perturb t: swap an output pair of functions by rebuilding with an
       extra inverter. *)
    let n = Logic.Benchmarks.t () in
    N.set_po_signal n 0 (N.not_ (N.po_signal n 0));
    n
  in
  match E.check n1 n2 with
  | E.Counterexample _ -> ()
  | E.Equivalent -> Alcotest.fail "must differ"
  | E.Interface_mismatch m -> Alcotest.fail m
  | E.Undecided r -> Alcotest.fail (Sat.Budget.reason_to_string r)

let test_network_to_cnf () =
  (* Build CNF of c17 and compare against simulation on all rows. *)
  let ntk = Logic.Benchmarks.c17 () in
  let f = Sat.Cnf.create () in
  let table = Hashtbl.create 8 in
  let pi_literals name =
    match Hashtbl.find_opt table name with
    | Some l -> l
    | None ->
        let l = Sat.Cnf.fresh f in
        Hashtbl.replace table name l;
        l
  in
  let outs = E.network_to_cnf f ntk ~pi_literals in
  let solver = Sat.Cnf.solver f in
  let sims = N.simulate ntk in
  let all_ok = ref true in
  for row = 0 to 31 do
    let assumptions =
      List.init 5 (fun i ->
          let l = pi_literals (N.pi_name ntk i) in
          if (row lsr i) land 1 = 1 then l else -l)
    in
    (match Sat.Solver.solve ~assumptions solver with
    | Sat.Solver.Sat ->
        List.iteri
          (fun o (_, lit) ->
            if Sat.Solver.value solver lit <> T.get_bit sims.(o) row then
              all_ok := false)
          outs
    | Sat.Solver.Unsat | Sat.Solver.Unknown _ -> all_ok := false)
  done;
  Alcotest.(check bool) "cnf matches simulation" true !all_ok

let prop_equivalence_reflexive =
  QCheck.Test.make ~name:"every benchmark equivalent to itself" ~count:1
    QCheck.unit (fun () ->
      List.for_all
        (fun b ->
          let n1 = b.Logic.Benchmarks.build ()
          and n2 = b.Logic.Benchmarks.build () in
          E.check n1 n2 = E.Equivalent)
        Logic.Benchmarks.all)

(* Certified equivalence: verdicts come with replayable evidence. *)

let test_certificate_equivalent () =
  let spec = Logic.Benchmarks.xor2 () in
  match E.check_layout_certified spec (xor_layout ()) with
  | Error e -> Alcotest.fail e
  | Ok (E.Equivalent, Some cert) -> (
      (match cert.E.evidence with
      | E.Unsat_proof p ->
          Alcotest.(check bool) "proof nonempty" true (Sat.Drat.num_steps p > 0)
      | E.Sat_model _ -> Alcotest.fail "expected an UNSAT proof");
      match E.replay cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("replay rejected a good certificate: " ^ e))
  | Ok (E.Equivalent, None) -> Alcotest.fail "no certificate"
  | Ok (v, _) -> Alcotest.fail ("expected equivalent, got " ^ E.verdict_to_string v)

let test_certificate_counterexample () =
  let spec = N.create () in
  let a = N.pi spec "a" and b = N.pi spec "b" in
  N.po spec "f" (N.and_ spec a b);
  match E.check_layout_certified spec (xor_layout ()) with
  | Error e -> Alcotest.fail e
  | Ok (E.Counterexample _, Some cert) -> (
      (match cert.E.evidence with
      | E.Sat_model _ -> ()
      | E.Unsat_proof _ -> Alcotest.fail "expected a miter model");
      match E.replay cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("replay rejected a good model: " ^ e))
  | Ok (E.Counterexample _, None) -> Alcotest.fail "no certificate"
  | Ok (v, _) ->
      Alcotest.fail ("expected counterexample, got " ^ E.verdict_to_string v)

let test_certificate_tampering () =
  let spec = Logic.Benchmarks.xor2 () in
  match E.check_layout_certified spec (xor_layout ()) with
  | Error e -> Alcotest.fail e
  | Ok (_, None) -> Alcotest.fail "no certificate"
  | Ok (_, Some cert) -> (
      (* Drop the miter clauses: the recorded proof cannot refute the
         (trivially satisfiable) empty formula, so replay must reject. *)
      let tampered = { cert with E.cert_clauses = [] } in
      match E.replay tampered with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "replay accepted a tampered certificate")

(* Re-simulation cross-checks (paranoid flow backbone). *)

let test_resim_cross_check () =
  let spec = Logic.Benchmarks.xor2 () in
  (match Verify.Resim.check_rewrite ~specification:spec ~optimized:spec with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("self-comparison failed: " ^ e));
  let wrong = N.create () in
  let a = N.pi wrong "a" and b = N.pi wrong "b" in
  N.po wrong "f" (N.and_ wrong a b);
  match Verify.Resim.check_rewrite ~specification:spec ~optimized:wrong with
  | Error msg ->
      Alcotest.(check bool) "names the divergence" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "behavior change not caught"

let () =
  Alcotest.run "verify"
    [
      ( "certificates",
        [
          Alcotest.test_case "equivalent carries proof" `Quick
            test_certificate_equivalent;
          Alcotest.test_case "counterexample carries model" `Quick
            test_certificate_counterexample;
          Alcotest.test_case "tampering rejected" `Quick
            test_certificate_tampering;
          Alcotest.test_case "resim catches corruption" `Quick
            test_resim_cross_check;
        ] );
      ( "extract",
        [
          Alcotest.test_case "xor layout" `Quick test_extract_xor;
          Alcotest.test_case "dangling" `Quick test_extract_dangling;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "positive" `Quick test_equivalence_positive;
          Alcotest.test_case "negative" `Quick test_equivalence_negative;
          Alcotest.test_case "interface" `Quick test_interface_mismatch;
          Alcotest.test_case "realizations" `Quick test_check_networks_directly;
          Alcotest.test_case "distinguishes" `Quick test_check_distinguishes;
          Alcotest.test_case "network to cnf" `Quick test_network_to_cnf;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_equivalence_reflexive ] );
    ]
