(* Tests for the SiDB physical simulation substrate. *)

module L = Sidb.Lattice
module Mo = Sidb.Model
module CS = Sidb.Charge_system
module GS = Sidb.Ground_state
module SA = Sidb.Simanneal
module B = Sidb.Bdl

let feq = Alcotest.(float 1e-9)

(* --- lattice ------------------------------------------------------------ *)

let test_positions () =
  let x, y = L.position (L.site 0 0 0) in
  Alcotest.(check feq) "origin x" 0. x;
  Alcotest.(check feq) "origin y" 0. y;
  let x, y = L.position (L.site 2 1 1) in
  Alcotest.(check feq) "x" 7.68 x;
  Alcotest.(check feq) "y" 9.93 y

let test_distance () =
  Alcotest.(check feq) "dimer gap" 2.25
    (L.distance (L.site 0 0 0) (L.site 0 0 1));
  Alcotest.(check feq) "column pitch" 3.84
    (L.distance (L.site 0 0 0) (L.site 1 0 0));
  Alcotest.(check feq) "nm conversion" 0.384
    (L.distance_nm (L.site 0 0 0) (L.site 1 0 0))

let test_site_validation () =
  Alcotest.(check bool) "bad l" true
    (try
       ignore (L.site 0 0 2);
       false
     with Invalid_argument _ -> true)

let test_transforms () =
  let s = L.site 10 4 1 in
  Alcotest.(check bool) "translate" true
    (L.equal (L.translate s ~dn:5 ~dm:(-2)) (L.site 15 2 1));
  Alcotest.(check bool) "mirror" true
    (L.equal (L.mirror_x s ~about_n2:60) (L.site 50 4 1));
  Alcotest.(check bool) "mirror involution" true
    (L.equal (L.mirror_x (L.mirror_x s ~about_n2:60) ~about_n2:60) s)

(* --- model ---------------------------------------------------------------- *)

let test_potential_monotone () =
  let m = Mo.default in
  Alcotest.(check bool) "decreasing" true
    (Mo.potential m 5. > Mo.potential m 10.
    && Mo.potential m 10. > Mo.potential m 50.);
  Alcotest.(check bool) "screening beats bare coulomb" true
    (Mo.potential m 50. < Mo.coulomb_k /. m.Mo.epsilon_r /. 50.)

let test_potential_values () =
  (* V(7.68 A) at eps_r = 5.6, lambda = 5 nm:
     14.3996 / 5.6 / 7.68 * exp(-7.68/50) = 0.28709... *)
  Alcotest.(check (float 1e-4)) "pair interaction" 0.2871
    (Mo.potential Mo.default 7.68)

let test_interaction_matrix () =
  let sites = [| L.site 0 0 0; L.site 2 0 0; L.site 0 2 0 |] in
  let m = Mo.interaction_matrix Mo.default sites in
  Alcotest.(check feq) "diagonal zero" 0. m.(1).(1);
  Alcotest.(check feq) "symmetric" m.(0).(2) m.(2).(0);
  Alcotest.(check bool) "positive" true (m.(0).(1) > 0.)

(* --- charge systems --------------------------------------------------------- *)

let pair_system () =
  CS.create Mo.default [| L.site 0 0 0; L.site 0 1 0 |]

let test_energy_empty_and_single () =
  let sys = pair_system () in
  Alcotest.(check feq) "empty" 0. (CS.energy sys [| false; false |]);
  Alcotest.(check feq) "single" (-0.32) (CS.energy sys [| true; false |])

let test_energy_double () =
  let sys = pair_system () in
  let v = Mo.interaction Mo.default (L.site 0 0 0) (L.site 0 1 0) in
  Alcotest.(check feq) "double occupation" ((2. *. -0.32) +. v)
    (CS.energy sys [| true; true |])

let test_duplicate_sites_rejected () =
  Alcotest.(check bool) "duplicate" true
    (try
       ignore (CS.create Mo.default [| L.site 0 0 0; L.site 0 0 0 |]);
       false
     with Invalid_argument _ -> true)

let test_v_ext () =
  let sys =
    CS.create ~v_ext:[| 0.5; 0. |] Mo.default [| L.site 0 0 0; L.site 9 9 0 |]
  in
  (* +0.5 eV external potential makes occupation of site 0 unfavorable. *)
  let r = GS.exhaustive sys in
  Alcotest.(check bool) "site 0 empty in ground state" true
    (List.for_all (fun occ -> not occ.(0)) r.GS.states);
  Alcotest.(check bool) "site 1 occupied" true
    (List.for_all (fun occ -> occ.(1)) r.GS.states)

let test_stability_criteria () =
  (* A single isolated SiDB is negatively charged in its ground state
     (mu_minus < 0); that configuration is physically valid and the
     neutral one is population-unstable. *)
  let sys = CS.create Mo.default [| L.site 0 0 0 |] in
  Alcotest.(check bool) "charged valid" true (CS.physically_valid sys [| true |]);
  Alcotest.(check bool) "neutral invalid" false
    (CS.population_stable sys [| false |])

(* --- ground-state engines ----------------------------------------------------- *)

let random_system seed n =
  let rng = Random.State.make [| seed |] in
  let rec fresh_sites acc k =
    if k = 0 then acc
    else
      let s =
        L.site (Random.State.int rng 14) (Random.State.int rng 7)
          (Random.State.int rng 2)
      in
      if List.exists (L.equal s) acc then fresh_sites acc k
      else fresh_sites (s :: acc) (k - 1)
  in
  CS.create Mo.default (Array.of_list (fresh_sites [] n))

let prop_bnb_matches_exhaustive =
  QCheck.Test.make ~name:"branch&bound = exhaustive" ~count:40
    (QCheck.pair (QCheck.int_range 1 10000) (QCheck.int_range 2 12))
    (fun (seed, n) ->
      let sys = random_system seed n in
      let e1 = (GS.exhaustive sys).GS.energy in
      let e2 = (GS.branch_and_bound sys).GS.energy in
      Float.abs (e1 -. e2) < 1e-9)

let prop_ground_state_is_valid =
  QCheck.Test.make ~name:"ground states are physically valid" ~count:30
    (QCheck.pair (QCheck.int_range 1 10000) (QCheck.int_range 2 10))
    (fun (seed, n) ->
      let sys = random_system seed n in
      let r = GS.branch_and_bound sys in
      List.for_all (CS.physically_valid sys) r.GS.states)

let prop_anneal_not_below_exact =
  QCheck.Test.make ~name:"annealer >= exact ground energy" ~count:15
    (QCheck.pair (QCheck.int_range 1 10000) (QCheck.int_range 2 10))
    (fun (seed, n) ->
      let sys = random_system seed n in
      let exact = (GS.branch_and_bound sys).GS.energy in
      let anneal =
        (SA.run ~params:{ SA.default_params with instances = 8; sweeps = 150 }
           ~seed sys)
          .GS.energy
      in
      anneal >= exact -. 1e-9)

let test_anneal_finds_ground_state () =
  (* On a gate-sized structured system the annealer finds the exact
     optimum. *)
  let sys = random_system 42 14 in
  let exact = (GS.branch_and_bound sys).GS.energy in
  let anneal = (SA.run ~seed:3 sys).GS.energy in
  Alcotest.(check feq) "energies agree" exact anneal

let test_degenerate_states_reported () =
  (* Two tightly-bound pairs stacked vertically: each holds one
     electron, and the two anti-aligned configurations (left-right and
     right-left) are exactly degenerate by mirror symmetry. *)
  let sys =
    CS.create Mo.default
      [| L.site 0 0 0; L.site 1 0 0; L.site 0 6 0; L.site 1 6 0 |]
  in
  let r = GS.exhaustive sys in
  Alcotest.(check int) "twofold degeneracy" 2 (GS.degeneracy r);
  (* Each degenerate state has exactly one electron per pair. *)
  List.iter
    (fun occ ->
      Alcotest.(check bool) "one per pair" true
        (Bool.to_int occ.(0) + Bool.to_int occ.(1) = 1
        && Bool.to_int occ.(2) + Bool.to_int occ.(3) = 1))
    r.GS.states

let test_empty_system () =
  let sys = CS.create Mo.default [||] in
  Alcotest.(check feq) "empty energy" 0. (GS.exhaustive sys).GS.energy;
  Alcotest.(check feq) "bnb empty" 0. (GS.branch_and_bound sys).GS.energy

(* --- BDL ------------------------------------------------------------------------ *)

let wire_structure () =
  (* The validated 3-pair vertical BDL wire. *)
  let at m = L.site 0 m 0 in
  let pairs = [ (at 0, at 1); (at 4, at 5); (at 8, at 9) ] in
  let fixed = List.concat_map (fun (a, b) -> [ a; b ]) pairs @ [ at 12 ] in
  {
    B.name = "wire";
    inputs = [| { B.near = [ at (-2) ]; far = [ at (-6) ] } |];
    outputs = [| { B.zero = at 8; one = at 9 } |];
    fixed;
  }

let test_wire_operational () =
  let report = B.check (wire_structure ()) ~spec:(fun i -> [| i.(0) |]) in
  Alcotest.(check bool) "wire works" true (B.operational report);
  List.iter
    (fun row ->
      Alcotest.(check bool) "row ok" true row.B.ok;
      Alcotest.(check bool) "energy negative" true (row.B.ground_energy < 0.))
    report.B.rows

let test_wire_engines_agree () =
  let s = wire_structure () in
  let spec i = [| i.(0) |] in
  let r1 = B.check ~engine:B.Exhaustive s ~spec in
  let r2 = B.check ~engine:B.Branch_and_bound s ~spec in
  Alcotest.(check bool) "exhaustive ok" true (B.operational r1);
  Alcotest.(check bool) "bnb ok" true (B.operational r2);
  List.iter2
    (fun a b ->
      Alcotest.(check feq) "same ground energy" a.B.ground_energy
        b.B.ground_energy)
    r1.B.rows r2.B.rows

let test_read_pair () =
  let sites = [| L.site 0 0 0; L.site 0 1 0 |] in
  let pair = { B.zero = L.site 0 0 0; one = L.site 0 1 0 } in
  Alcotest.(check (option bool)) "one" (Some true)
    (B.read_pair sites [| false; true |] pair);
  Alcotest.(check (option bool)) "zero" (Some false)
    (B.read_pair sites [| true; false |] pair);
  Alcotest.(check (option bool)) "unpolarized" None
    (B.read_pair sites [| true; true |] pair);
  Alcotest.(check (option bool)) "vacant" None
    (B.read_pair sites [| false; false |] pair)

let test_sites_for_selects_perturbers () =
  let s = wire_structure () in
  let sites0 = B.sites_for s [| false |] and sites1 = B.sites_for s [| true |] in
  Alcotest.(check bool) "far in 0" true
    (Array.exists (L.equal (L.site 0 (-6) 0)) sites0);
  Alcotest.(check bool) "near in 1" true
    (Array.exists (L.equal (L.site 0 (-2) 0)) sites1);
  Alcotest.(check bool) "near not in 0" false
    (Array.exists (L.equal (L.site 0 (-2) 0)) sites0)

(* --- low-energy spectrum, temperature, operational domain ---------------- *)

let test_spectrum_sorted_and_complete () =
  let sys = random_system 7 10 in
  let spectrum = GS.spectrum ~window:0.15 sys in
  let energies = List.map snd spectrum in
  (* Sorted ascending and starting at the exact ground state. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted energies);
  Alcotest.(check feq) "starts at ground energy"
    (GS.branch_and_bound sys).GS.energy (List.hd energies);
  (* Every reported state's energy is consistent with the system. *)
  List.iter
    (fun (occ, e) ->
      Alcotest.(check feq) "energy recomputes" (CS.energy sys occ) e)
    spectrum;
  (* Cross-check completeness against brute force. *)
  let e0 = List.hd energies in
  let n = CS.size sys in
  let brute = ref 0 in
  for v = 0 to (1 lsl n) - 1 do
    let occ = Array.init n (fun i -> (v lsr i) land 1 = 1) in
    if CS.energy sys occ <= e0 +. 0.15 +. 1e-9 then incr brute
  done;
  Alcotest.(check int) "complete" !brute (List.length spectrum)

let test_boltzmann_probabilities () =
  let sys = pair_system () in
  let probs = Sidb.Temperature.state_probabilities sys ~temperature_k:300. ~max_states:64 in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. probs in
  Alcotest.(check (float 1e-6)) "normalized" 1.0 total;
  (* Probabilities decrease with energy. *)
  let rec decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (decreasing probs)

let test_correctness_probability_limits () =
  let s = wire_structure () in
  let spec i = [| i.(0) |] in
  let cold = Sidb.Temperature.correctness_probability s ~spec ~temperature_k:1. () in
  let hot = Sidb.Temperature.correctness_probability s ~spec ~temperature_k:4000. () in
  Alcotest.(check bool) "certain when cold" true (cold > 0.99);
  Alcotest.(check bool) "cold at least as reliable as hot" true
    (cold >= hot -. 1e-9)

let test_critical_temperature_wire () =
  let s = wire_structure () in
  let spec i = [| i.(0) |] in
  let ct = Sidb.Temperature.critical_temperature ~t_max:300. s ~spec in
  Alcotest.(check bool) "wire has a positive critical temperature" true
    (ct > 0.)

let test_operational_domain () =
  let s = wire_structure () in
  let spec i = [| i.(0) |] in
  let dom =
    Sidb.Operational_domain.sweep
      ~x_axis:{ Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
                from_value = -0.40; to_value = -0.24; steps = 5 }
      ~y_axis:{ Sidb.Operational_domain.parameter = Sidb.Operational_domain.Lambda_tf;
                from_value = 4.0; to_value = 6.0; steps = 3 }
      s ~spec
  in
  Alcotest.(check int) "sample count" 15 (List.length dom.Sidb.Operational_domain.samples);
  Alcotest.(check bool) "fraction within [0,1]" true
    (dom.Sidb.Operational_domain.operational_fraction >= 0.
    && dom.Sidb.Operational_domain.operational_fraction <= 1.);
  (* The default parameters lie inside the wire's domain. *)
  let at_default =
    List.exists
      (fun sm ->
        Float.abs (sm.Sidb.Operational_domain.x_value +. 0.32) < 1e-9
        && Float.abs (sm.Sidb.Operational_domain.y_value -. 5.0) < 1e-9
        && sm.Sidb.Operational_domain.operational)
      dom.Sidb.Operational_domain.samples
  in
  Alcotest.(check bool) "operational at the paper's parameters" true at_default;
  (* Exhaustive grid: every point evaluated, nothing saved. *)
  Alcotest.(check int) "grid evaluates everything" 15
    dom.Sidb.Operational_domain.stats.Sidb.Operational_domain.points_evaluated;
  Alcotest.(check int) "grid saves nothing" 0
    dom.Sidb.Operational_domain.stats.Sidb.Operational_domain.solver_calls_saved;
  Alcotest.(check bool) "grid samples all evaluated" true
    (List.for_all
       (fun sm -> sm.Sidb.Operational_domain.evaluated)
       dom.Sidb.Operational_domain.samples);
  (* ASCII rendering: a "# "-prefixed legend, then one row per y sample. *)
  let lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '
' (Sidb.Operational_domain.to_ascii dom))
  in
  let legend, grid =
    List.partition (fun l -> String.length l > 1 && String.sub l 0 2 = "# ") lines
  in
  Alcotest.(check int) "ascii rows" 3 (List.length grid);
  Alcotest.(check bool) "ascii legend names both axes" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "# x:") legend
    && List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "# y:") legend);
  (* CSV: a header naming the swept parameters, then one line per sample. *)
  let csv_lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '
' (Sidb.Operational_domain.to_csv dom))
  in
  Alcotest.(check int) "csv rows" 16 (List.length csv_lines);
  Alcotest.(check string) "csv header" "mu_minus,lambda_tf,operational,evaluated"
    (List.hd csv_lines)

let test_operational_domain_first_row () =
  (* The adaptive row hint only reorders the truth-table rows; the
     verdict must be identical for every starting row, operational or
     not (a point is operational iff all rows pass). *)
  let s = wire_structure () in
  let spec i = [| i.(0) |] in
  let inside = Sidb.Model.default in
  let outside = { Sidb.Model.default with Sidb.Model.mu_minus = -0.05 } in
  List.iter
    (fun model ->
      let reference = Sidb.Operational_domain.operational_at model s ~spec in
      List.iter
        (fun first_row ->
          Alcotest.(check bool)
            (Printf.sprintf "first_row %d equivalent" first_row)
            reference
            (Sidb.Operational_domain.operational_at ~first_row model s ~spec))
        [ 0; 1; 7; -3 ])
    [ inside; outside ]

let test_operational_domain_errors () =
  let s = wire_structure () in
  let spec i = [| i.(0) |] in
  Alcotest.(check bool) "same axis rejected" true
    (try
       ignore
         (Sidb.Operational_domain.sweep
            ~x_axis:{ Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
                      from_value = -0.4; to_value = -0.2; steps = 3 }
            ~y_axis:{ Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
                      from_value = -0.4; to_value = -0.2; steps = 3 }
            s ~spec);
       false
     with Invalid_argument _ -> true)

(* --- incremental hop updates --------------------------------------------- *)

let random_occupation rng n =
  Array.init n (fun _ -> Random.State.bool rng)

let test_energy_delta_hop () =
  (* The O(n) incremental hop delta must equal the full energy
     recomputation, and [apply_hop] must leave the potential vector
     equal to a fresh [local_potentials] of the post-hop occupation. *)
  let rng = Random.State.make [| 2026 |] in
  for seed = 1 to 25 do
    let n = 4 + Random.State.int rng 9 in
    let sys = random_system seed n in
    let occ = random_occupation rng n in
    (* Force at least one occupied and one empty site. *)
    occ.(0) <- true;
    occ.(n - 1) <- false;
    let src =
      let rec pick () =
        let i = Random.State.int rng n in
        if occ.(i) then i else pick ()
      in
      pick ()
    and dst =
      let rec pick () =
        let i = Random.State.int rng n in
        if occ.(i) then pick () else i
      in
      pick ()
    in
    let pot = CS.local_potentials sys occ in
    let before = CS.energy sys occ in
    let delta = CS.energy_delta_hop sys ~pot ~src ~dst in
    let hopped = Array.copy occ in
    hopped.(src) <- false;
    hopped.(dst) <- true;
    let after = CS.energy sys hopped in
    Alcotest.(check feq) "incremental delta = full recomputation"
      (after -. before) delta;
    CS.apply_hop sys ~pot ~src ~dst;
    let fresh = CS.local_potentials sys hopped in
    Array.iteri
      (fun i p ->
        Alcotest.(check (float 1e-9)) "potential updated in place" fresh.(i) p)
      pot
  done

(* --- quicksim heuristic engine -------------------------------------------- *)

let prop_quicksim_matches_pruned =
  QCheck.Test.make ~name:"quicksim = pruned ground energy" ~count:40
    (QCheck.pair (QCheck.int_range 1 10000) (QCheck.int_range 2 14))
    (fun (seed, n) ->
      let sys = random_system seed n in
      let exact = (GS.pruned sys).GS.energy in
      let r = GS.quicksim sys in
      Float.abs (r.GS.energy -. exact) < 1e-9
      && r.GS.states <> []
      && List.for_all (CS.physically_valid sys) r.GS.states)

let test_quicksim_deterministic () =
  let sys = random_system 11 12 in
  let r1 = GS.quicksim sys and r2 = GS.quicksim sys in
  Alcotest.(check feq) "same energy" r1.GS.energy r2.GS.energy;
  Alcotest.(check int) "same degeneracy" (GS.degeneracy r1) (GS.degeneracy r2);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same states" true (Array.for_all2 Bool.equal a b))
    r1.GS.states r2.GS.states;
  (* And independent of the job count (pooled samples are merged with
     index-order tie-breaking). *)
  let r4 = GS.quicksim ~jobs:4 sys in
  Alcotest.(check feq) "jobs-independent" r1.GS.energy r4.GS.energy

let large_system () =
  (* 100 DBs on a regular sublattice — far beyond any exact engine. *)
  let sites =
    Array.init 100 (fun i -> L.site (i mod 10) (i / 10) 0)
  in
  CS.create Mo.default sites

let test_quicksim_large_system () =
  let sys = large_system () in
  let r = GS.quicksim sys in
  Alcotest.(check bool) "found states" true (r.GS.states <> []);
  Alcotest.(check bool) "all physically valid" true
    (List.for_all (CS.physically_valid sys) r.GS.states);
  Alcotest.(check feq) "energy recomputes" r.GS.energy
    (CS.energy sys (List.hd r.GS.states))

let test_exact_engine_refuses_large_system () =
  (* The structured refusal: exhaustive search on 100 sites is an
     [Invalid_argument], never an unbounded 2^100 enumeration. *)
  let sys = large_system () in
  Alcotest.(check bool) "exhaustive refuses" true
    (try
       ignore (GS.exhaustive sys);
       false
     with Invalid_argument _ -> true)

let test_engine_of_string () =
  let ok s e =
    match B.engine_of_string s with
    | Ok e' -> B.engine_name e' = e
    | Error _ -> false
  in
  Alcotest.(check bool) "exhaustive" true (ok "exhaustive" "exhaustive");
  Alcotest.(check bool) "pruned" true (ok "pruned" "pruned");
  Alcotest.(check bool) "quickexact alias" true (ok "quickexact" "pruned");
  Alcotest.(check bool) "quicksim" true (ok "quicksim" "quicksim");
  Alcotest.(check bool) "unknown rejected" true
    (match B.engine_of_string "bogus" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "exactness flags" true
    (B.engine_exact B.Pruned
    && not (B.engine_exact (B.Quicksim GS.default_quicksim)))

(* --- spectrum-pool temperature analysis ----------------------------------- *)

let occ1 = [| true |]
let occ2 = [| false |]

let test_spectrum_probabilities_degenerate () =
  (* An exactly twofold-degenerate spectrum splits the weight 50/50 at
     every temperature, so the ground manifold holds everything. *)
  let spectrum = [ (occ1, -1.0); (occ2, -1.0) ] in
  let probs =
    Sidb.Temperature.spectrum_probabilities spectrum ~temperature_k:77.
  in
  List.iter
    (fun (_, p) -> Alcotest.(check (float 1e-9)) "half each" 0.5 p)
    probs;
  Alcotest.(check (float 1e-9)) "manifold weight 1"
    1.0
    (Sidb.Temperature.ground_probability spectrum ~temperature_k:300.);
  Alcotest.(check (float 1e-9)) "CT saturates at t_max" 350.
    (Sidb.Temperature.critical_temperature_of_spectrum ~t_max:350. spectrum)

let test_spectrum_ct_gap_edges () =
  (* A 2e-9 eV gap sits just outside the 1e-9 ground-manifold window:
     at 1 K the excited state already holds ~half the weight, so the
     layout is never reliable and CT pins to 0. *)
  let near_degenerate = [ (occ1, -1.0); (occ2, -1.0 +. 2e-9) ] in
  Alcotest.(check (float 1e-9)) "unreliable at 1 K" 0.
    (Sidb.Temperature.critical_temperature_of_spectrum near_degenerate);
  (* A 10 meV gap gives a finite CT strictly inside (0, t_max). *)
  let gapped = [ (occ1, -1.0); (occ2, -0.99) ] in
  let ct = Sidb.Temperature.critical_temperature_of_spectrum gapped in
  Alcotest.(check bool) "finite CT" true (ct > 0. && ct < 400.);
  (* Below CT the ground weight holds the confidence; above it doesn't. *)
  Alcotest.(check bool) "reliable below" true
    (Sidb.Temperature.ground_probability gapped ~temperature_k:ct >= 0.9);
  Alcotest.(check bool) "unreliable above" true
    (Sidb.Temperature.ground_probability gapped ~temperature_k:(ct +. 2.) < 0.9);
  (* Empty spectrum: 0 by convention, not an exception. *)
  Alcotest.(check (float 1e-9)) "empty spectrum" 0.
    (Sidb.Temperature.critical_temperature_of_spectrum [])

let test_state_probabilities_cap () =
  (* [max_states] truncates the enumeration; the weights are normalized
     over the truncated spectrum, so a capped list still sums to 1 and
     keeps the same leading ratios as the uncapped one. *)
  let sys = pair_system () in
  let capped =
    Sidb.Temperature.state_probabilities sys ~temperature_k:300. ~max_states:2
  in
  Alcotest.(check int) "cap respected" 2 (List.length capped);
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. capped in
  Alcotest.(check (float 1e-9)) "normalized over the truncation" 1.0 total;
  let full =
    Sidb.Temperature.state_probabilities sys ~temperature_k:300. ~max_states:64
  in
  let ratio l =
    match l with (_, a) :: (_, b) :: _ -> a /. b | _ -> nan
  in
  Alcotest.(check (float 1e-6)) "leading ratio preserved" (ratio full)
    (ratio capped)

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "sidb"
    [
      ( "lattice",
        [
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "validation" `Quick test_site_validation;
          Alcotest.test_case "transforms" `Quick test_transforms;
        ] );
      ( "model",
        [
          Alcotest.test_case "monotone potential" `Quick test_potential_monotone;
          Alcotest.test_case "known value" `Quick test_potential_values;
          Alcotest.test_case "interaction matrix" `Quick test_interaction_matrix;
        ] );
      ( "charge-system",
        [
          Alcotest.test_case "energies" `Quick test_energy_empty_and_single;
          Alcotest.test_case "double occupation" `Quick test_energy_double;
          Alcotest.test_case "duplicates" `Quick test_duplicate_sites_rejected;
          Alcotest.test_case "external potential" `Quick test_v_ext;
          Alcotest.test_case "stability" `Quick test_stability_criteria;
        ] );
      ( "ground-state",
        [
          Alcotest.test_case "anneal finds optimum" `Quick
            test_anneal_finds_ground_state;
          Alcotest.test_case "degeneracy" `Quick test_degenerate_states_reported;
          Alcotest.test_case "empty system" `Quick test_empty_system;
        ]
        @ qt
            [
              prop_bnb_matches_exhaustive;
              prop_ground_state_is_valid;
              prop_anneal_not_below_exact;
            ] );
      ( "incremental-hops",
        [ Alcotest.test_case "delta = recompute" `Quick test_energy_delta_hop ] );
      ( "quicksim",
        [
          Alcotest.test_case "deterministic" `Quick test_quicksim_deterministic;
          Alcotest.test_case "100-site system" `Quick test_quicksim_large_system;
          Alcotest.test_case "exact refusal" `Quick
            test_exact_engine_refuses_large_system;
          Alcotest.test_case "engine parsing" `Quick test_engine_of_string;
        ]
        @ qt [ prop_quicksim_matches_pruned ] );
      ( "finite-temperature",
        [
          Alcotest.test_case "spectrum" `Quick test_spectrum_sorted_and_complete;
          Alcotest.test_case "boltzmann" `Quick test_boltzmann_probabilities;
          Alcotest.test_case "correctness limits" `Quick
            test_correctness_probability_limits;
          Alcotest.test_case "critical temperature" `Quick
            test_critical_temperature_wire;
          Alcotest.test_case "operational domain" `Slow test_operational_domain;
          Alcotest.test_case "domain first row" `Slow
            test_operational_domain_first_row;
          Alcotest.test_case "domain errors" `Quick test_operational_domain_errors;
          Alcotest.test_case "degenerate spectrum" `Quick
            test_spectrum_probabilities_degenerate;
          Alcotest.test_case "spectrum CT edges" `Quick
            test_spectrum_ct_gap_edges;
          Alcotest.test_case "max_states cap" `Quick
            test_state_probabilities_cap;
        ] );
      ( "bdl",
        [
          Alcotest.test_case "wire operational" `Quick test_wire_operational;
          Alcotest.test_case "engines agree" `Quick test_wire_engines_agree;
          Alcotest.test_case "read pair" `Quick test_read_pair;
          Alcotest.test_case "perturber selection" `Quick
            test_sites_for_selects_perturbers;
        ] );
    ]
