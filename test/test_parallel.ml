(* Tests for the Domain pool and the serial-vs-parallel determinism
   contract of the simulation outer loops. *)

module Pool = Parallel.Pool
module D = Hexlib.Direction
module M = Logic.Mapped

(* --- pool ----------------------------------------------------------------- *)

(* [~adaptive:false] below forces the requested worker count so the
   pool machinery itself is exercised even on a single-core host, where
   the adaptive dispatcher would (correctly) fall back to serial. *)

let test_map_matches_serial () =
  List.iter
    (fun n ->
      let expected = Array.init n (fun i -> (i * i) + 1) in
      List.iter
        (fun jobs ->
          Alcotest.(check (array int))
            (Printf.sprintf "map n=%d jobs=%d" n jobs)
            expected
            (Pool.map ~adaptive:false ~jobs n (fun i -> (i * i) + 1)))
        [ 1; 2; 4; 8 ])
    [ 0; 1; 3; 17; 1000 ]

let test_map_jobs_exceed_range () =
  Alcotest.(check (array int)) "jobs > n" [| 0; 10; 20 |]
    (Pool.map ~adaptive:false ~jobs:16 3 (fun i -> 10 * i))

let test_adaptive_matches_forced () =
  (* The adaptive dispatcher (core cap + serial warm-up prefix) must be
     invisible in the results: same arrays as the forced-parallel and
     serial paths, for both instant items and items slow enough to
     out-last the warm-up cutoff and reach the parallel tail. *)
  let busy i =
    let acc = ref 0 in
    for k = 0 to 20_000 do
      acc := (!acc + (i * k)) land max_int
    done;
    !acc
  in
  List.iter
    (fun (label, n, f) ->
      let expected = Array.init n f in
      List.iter
        (fun jobs ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s adaptive jobs=%d" label jobs)
            expected
            (Pool.map ~jobs n f);
          Alcotest.(check (array int))
            (Printf.sprintf "%s forced jobs=%d" label jobs)
            expected
            (Pool.map ~adaptive:false ~jobs n f))
        [ 1; 2; 4 ])
    [ ("instant", 200, fun i -> (i * 3) + 1); ("busy", 64, busy) ]

let test_map_reduce_ordered () =
  (* String concatenation is non-commutative: only an in-order merge
     gives this result. *)
  let s =
    Pool.map_reduce ~jobs:4 ~n:26 ~init:""
      ~map:(fun i -> String.make 1 (Char.chr (Char.code 'a' + i)))
      ~reduce:( ^ )
  in
  Alcotest.(check string) "ordered fold" "abcdefghijklmnopqrstuvwxyz" s

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "raise at jobs=%d" jobs)
        (Failure "boom")
        (fun () -> ignore (Pool.map ~adaptive:false ~jobs 1000 (fun i ->
             if i = 617 then failwith "boom" else i))))
    [ 1; 2; 4 ]

exception Tagged of int

let test_lowest_index_exception_wins () =
  (* Several indices raise; the contract pins the propagated exception
     to the lowest-indexed raising job, at every worker count. *)
  List.iter
    (fun jobs ->
      for _ = 1 to 20 do
        match Pool.map ~adaptive:false ~jobs 500 (fun i ->
            if i mod 83 = 7 then raise (Tagged i) else i)
        with
        | _ -> Alcotest.fail "expected an exception"
        | exception Tagged i ->
            Alcotest.(check int)
              (Printf.sprintf "lowest raising index (jobs=%d)" jobs)
              7 i
      done)
    [ 1; 2; 4; 8 ]

let test_nested_map () =
  (* The server dispatches flow jobs onto the pool while flows call
     Pool.map internally; waiters must help instead of blocking, or
     this deadlocks when every worker is stuck in an outer wait. *)
  List.iter
    (fun jobs ->
      let outer =
        Pool.map ~adaptive:false ~jobs 8 (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map ~adaptive:false ~jobs 16 (fun j -> (i * 100) + j)))
      in
      let expected =
        Array.init 8 (fun i ->
            let acc = ref 0 in
            for j = 0 to 15 do
              acc := !acc + (i * 100) + j
            done;
            !acc)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "nested map (jobs=%d)" jobs)
        expected outer)
    [ 1; 2; 4 ]

let test_env_and_override () =
  Unix.putenv "FICTIONETTE_JOBS" "3";
  Alcotest.(check int) "env var read" 3 (Pool.default_jobs ());
  Unix.putenv "FICTIONETTE_JOBS" "not-a-number";
  Alcotest.(check bool) "garbage env ignored" true (Pool.default_jobs () >= 1);
  Pool.set_default_jobs 2;
  Unix.putenv "FICTIONETTE_JOBS" "7";
  Alcotest.(check int) "override beats env" 2 (Pool.default_jobs ());
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Parallel.Pool.set_default_jobs: jobs must be >= 1")
    (fun () -> Pool.set_default_jobs 0)

(* --- operational-domain sweep determinism --------------------------------- *)

let or_structure () =
  let tile =
    Layout.Tile.Gate
      { fn = M.Or2; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }
  in
  match
    ( Bestagon.Library.validation_structure tile,
      Bestagon.Library.tile_spec tile )
  with
  | Some s, Some spec -> (s, spec)
  | _ -> Alcotest.fail "no OR structure in the Bestagon library"

let small_axes () =
  ( { Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
      from_value = -0.40; to_value = -0.24; steps = 5 },
    { Sidb.Operational_domain.parameter = Sidb.Operational_domain.Lambda_tf;
      from_value = 4.0; to_value = 6.0; steps = 3 } )

let test_sweep_serial_parallel_identical () =
  let s, spec = or_structure () in
  let x_axis, y_axis = small_axes () in
  let serial = Sidb.Operational_domain.sweep ~jobs:1 ~x_axis ~y_axis s ~spec in
  List.iter
    (fun jobs ->
      let par = Sidb.Operational_domain.sweep ~jobs ~x_axis ~y_axis s ~spec in
      Alcotest.(check bool)
        (Printf.sprintf "samples identical at jobs=%d" jobs)
        true
        (par.Sidb.Operational_domain.samples
        = serial.Sidb.Operational_domain.samples);
      Alcotest.(check (float 0.0)) "fraction identical"
        serial.Sidb.Operational_domain.operational_fraction
        par.Sidb.Operational_domain.operational_fraction)
    [ 2; 4 ]

let test_sweep_algorithms_jobs_identical () =
  (* Flood fill and contour tracing batch their evaluations through the
     pool in deterministic waves: the whole result record — samples,
     evaluated flags, fraction, and stats — must be identical at jobs
     1, 2, and 4. *)
  let s, spec = or_structure () in
  let x_axis, y_axis = small_axes () in
  List.iter
    (fun algorithm ->
      let config =
        { Sidb.Operational_domain.default_config with
          Sidb.Operational_domain.algorithm;
          samples = 6;
        }
      in
      let serial =
        Sidb.Operational_domain.sweep ~jobs:1 ~config ~x_axis ~y_axis s ~spec
      in
      List.iter
        (fun jobs ->
          let par =
            Sidb.Operational_domain.sweep ~jobs ~config ~x_axis ~y_axis s ~spec
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s identical at jobs=%d"
               (Sidb.Operational_domain.algorithm_name algorithm)
               jobs)
            true (par = serial))
        [ 2; 4 ])
    [
      Sidb.Operational_domain.Grid;
      Sidb.Operational_domain.Flood_fill;
      Sidb.Operational_domain.Contour_tracing;
    ]

let test_interaction_cache_agrees () =
  (* The hoisted interaction matrix must not change a single verdict. *)
  let s, spec = or_structure () in
  let x_axis, y_axis = small_axes () in
  for yi = 0 to y_axis.Sidb.Operational_domain.steps - 1 do
    for xi = 0 to x_axis.Sidb.Operational_domain.steps - 1 do
      let value (a : Sidb.Operational_domain.axis) i =
        a.Sidb.Operational_domain.from_value
        +. (a.Sidb.Operational_domain.to_value
            -. a.Sidb.Operational_domain.from_value)
           *. float_of_int i
           /. float_of_int (a.Sidb.Operational_domain.steps - 1)
      in
      let model =
        Sidb.Operational_domain.set_parameter
          (Sidb.Operational_domain.set_parameter Sidb.Model.default
             x_axis.Sidb.Operational_domain.parameter (value x_axis xi))
          y_axis.Sidb.Operational_domain.parameter (value y_axis yi)
      in
      Alcotest.(check bool)
        (Printf.sprintf "cached = uncached at (%d,%d)" xi yi)
        (Sidb.Operational_domain.operational_at ~interaction_cache:false model
           s ~spec)
        (Sidb.Operational_domain.operational_at ~interaction_cache:true model
           s ~spec)
    done
  done

(* --- defect-yield determinism --------------------------------------------- *)

let xor2_layout () =
  let options =
    {
      Core.Flow.default_options with
      check_equivalence = false;
      apply_library = false;
    }
  in
  match Core.Flow.run_benchmark ~options "xor2" with
  | Ok r -> r.Core.Flow.gate_layout
  | Error f -> Alcotest.fail (Core.Flow.error_message f)

let test_yield_serial_parallel_identical () =
  let layout = xor2_layout () in
  let params =
    { Sidb.Defects.default_params with Sidb.Defects.trials = 10; seed = 7 }
  in
  let serial = Bestagon.Yield.of_layout ~jobs:1 ~params layout in
  Alcotest.(check bool) "some tiles simulated" true
    (serial.Bestagon.Yield.simulated_tiles > 0);
  List.iter
    (fun jobs ->
      let par = Bestagon.Yield.of_layout ~jobs ~params layout in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "layout yield identical at jobs=%d" jobs)
        serial.Bestagon.Yield.layout_yield par.Bestagon.Yield.layout_yield;
      Alcotest.(check bool)
        (Printf.sprintf "per-tile reports identical at jobs=%d" jobs)
        true
        (par.Bestagon.Yield.per_tile = serial.Bestagon.Yield.per_tile))
    [ 2; 4 ]

let test_yield_pruned_engine_agrees () =
  (* The default (pruned) engine and branch & bound give the same
     trial-by-trial verdicts. *)
  let layout = xor2_layout () in
  let params =
    { Sidb.Defects.default_params with Sidb.Defects.trials = 8; seed = 11 }
  in
  let pruned = Bestagon.Yield.of_layout ~params layout in
  let bnb =
    Bestagon.Yield.of_layout ~engine:Sidb.Bdl.Branch_and_bound ~params layout
  in
  Alcotest.(check (float 0.0)) "same layout yield"
    bnb.Bestagon.Yield.layout_yield pruned.Bestagon.Yield.layout_yield

(* --- equivalence determinism ----------------------------------------------- *)

let two_pi_network gate =
  let ntk = Logic.Network.create () in
  let a = Logic.Network.pi ntk "a" and b = Logic.Network.pi ntk "b" in
  Logic.Network.po ntk "y" (gate ntk a b);
  ntk

let test_equivalence_serial_parallel_identical () =
  let spec = Logic.Benchmarks.par_check () in
  let same = Logic.Benchmarks.par_check () in
  let serial = Verify.Equivalence.check_brute_force ~jobs:1 spec same in
  Alcotest.(check bool) "equivalent" true
    (serial = Verify.Equivalence.Equivalent);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "verdict identical at jobs=%d" jobs)
        true
        (Verify.Equivalence.check_brute_force ~jobs spec same = serial))
    [ 2; 4 ];
  (* Counterexamples are the lowest differing row at every job count. *)
  let and2 = two_pi_network Logic.Network.and_ in
  let or2 = two_pi_network Logic.Network.or_ in
  let expected =
    Verify.Equivalence.Counterexample [ ("a", true); ("b", false) ]
  in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "lowest-row counterexample at jobs=%d" jobs)
        true
        (Verify.Equivalence.check_brute_force ~jobs and2 or2 = expected))
    [ 1; 2; 4 ]

let test_brute_force_agrees_with_sat () =
  List.iter
    (fun name ->
      let b = Logic.Benchmarks.find name in
      let ntk = b.Logic.Benchmarks.build () in
      let rewritten = Logic.Rewrite.rewrite_to_fixpoint (b.Logic.Benchmarks.build ()) in
      let brute = Verify.Equivalence.check_brute_force ntk rewritten in
      let sat = Verify.Equivalence.check ntk rewritten in
      Alcotest.(check bool)
        (Printf.sprintf "%s: brute force agrees with SAT" name)
        true
        (brute = Verify.Equivalence.Equivalent
        && sat = Verify.Equivalence.Equivalent))
    [ "xor2"; "mux21"; "c17" ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "env + override" `Quick test_env_and_override;
          Alcotest.test_case "map = serial" `Quick test_map_matches_serial;
          Alcotest.test_case "jobs > n" `Quick test_map_jobs_exceed_range;
          Alcotest.test_case "adaptive = forced = serial" `Quick
            test_adaptive_matches_forced;
          Alcotest.test_case "ordered map_reduce" `Quick test_map_reduce_ordered;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_lowest_index_exception_wins;
          Alcotest.test_case "nested map (reentrancy)" `Quick test_nested_map;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep jobs=1/2/4" `Slow
            test_sweep_serial_parallel_identical;
          Alcotest.test_case "sweep algorithms jobs=1/2/4" `Slow
            test_sweep_algorithms_jobs_identical;
          Alcotest.test_case "interaction cache" `Slow
            test_interaction_cache_agrees;
          Alcotest.test_case "yield jobs=1/2/4" `Slow
            test_yield_serial_parallel_identical;
          Alcotest.test_case "yield pruned engine" `Slow
            test_yield_pruned_engine_agrees;
          Alcotest.test_case "equivalence jobs=1/2/4" `Quick
            test_equivalence_serial_parallel_identical;
          Alcotest.test_case "brute force vs SAT" `Quick
            test_brute_force_agrees_with_sat;
        ] );
    ]
