(* Tests for the CDCL solver, CNF layer, and DIMACS support. *)

module S = Sat.Solver
module C = Sat.Cnf

let test_empty_formula () =
  let s = S.create () in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat)

let test_unit_propagation () =
  let s = S.create () in
  let a = S.new_var s and b = S.new_var s and c = S.new_var s in
  S.add_clause s [ a ];
  S.add_clause s [ -a; b ];
  S.add_clause s [ -b; c ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "a" true (S.value s a);
  Alcotest.(check bool) "b" true (S.value s b);
  Alcotest.(check bool) "c" true (S.value s c)

let test_empty_clause () =
  let s = S.create () in
  ignore (S.new_var s);
  S.add_clause s [];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_contradiction () =
  let s = S.create () in
  let a = S.new_var s in
  S.add_clause s [ a ];
  S.add_clause s [ -a ];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_tautology_dropped () =
  let s = S.create () in
  let a = S.new_var s in
  S.add_clause s [ a; -a ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat)

let php_formula pigeons holes =
  (* Pigeonhole: unsat iff pigeons > holes. *)
  let var p h = (p * holes) + h + 1 in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (var p) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ -var p1 h; -var p2 h ] :: !clauses
      done
    done
  done;
  (pigeons * holes, List.rev !clauses)

let solver_of ?(proof = false) nvars clauses =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  if proof then S.enable_proof s;
  List.iter (S.add_clause s) clauses;
  s

let php_clauses pigeons holes =
  let nvars, clauses = php_formula pigeons holes in
  solver_of nvars clauses

let test_pigeonhole_unsat () =
  Alcotest.(check bool) "php(6,5)" true (S.solve (php_clauses 6 5) = S.Unsat)

let test_pigeonhole_sat () =
  Alcotest.(check bool) "php(5,5)" true (S.solve (php_clauses 5 5) = S.Sat)

let test_assumptions () =
  let s = S.create () in
  let a = S.new_var s and b = S.new_var s in
  S.add_clause s [ -a; b ];
  Alcotest.(check bool) "a & !b unsat" true
    (S.solve ~assumptions:[ a; -b ] s = S.Unsat);
  Alcotest.(check bool) "a sat" true (S.solve ~assumptions:[ a ] s = S.Sat);
  Alcotest.(check bool) "b forced" true (S.value s b);
  (* The solver stays usable after an unsat-under-assumptions call. *)
  Alcotest.(check bool) "no assumptions sat" true (S.solve s = S.Sat)

let test_incremental () =
  let s = S.create () in
  let a = S.new_var s and b = S.new_var s in
  S.add_clause s [ a; b ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  S.add_clause s [ -a ];
  Alcotest.(check bool) "still sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "b true" true (S.value s b);
  S.add_clause s [ -b ];
  Alcotest.(check bool) "now unsat" true (S.solve s = S.Unsat)

let test_budget () =
  let s = php_clauses 9 8 in
  (match S.solve ~budget:(Sat.Budget.of_conflicts 50) s with
  | S.Unknown Sat.Budget.Conflicts -> ()
  | _ -> Alcotest.fail "expected Unknown (conflict budget)");
  (* An unbudgeted call resumes the same solver to completion. *)
  Alcotest.(check bool) "unsat after budget removed" true (S.solve s = S.Unsat)

let test_budget_deadline () =
  let s = php_clauses 9 8 in
  let budget =
    {
      Sat.Budget.unlimited with
      Sat.Budget.deadline = Some (Unix.gettimeofday () -. 1.);
    }
  in
  (match S.solve ~budget s with
  | S.Unknown Sat.Budget.Deadline -> ()
  | _ -> Alcotest.fail "expected Unknown (deadline)");
  Alcotest.(check bool) "resumable" true (S.solve s = S.Unsat)

let test_budget_cancelled () =
  let s = php_clauses 9 8 in
  let budget =
    { Sat.Budget.unlimited with Sat.Budget.cancelled = (fun () -> true) }
  in
  match S.solve ~budget s with
  | S.Unknown Sat.Budget.Cancelled -> ()
  | _ -> Alcotest.fail "expected Unknown (cancelled)"

let test_budget_resume_escalation () =
  (* Luby-style resume: keep doubling the allowance of the SAME solver
     until it reaches a verdict; must agree with an unbudgeted solve. *)
  let s = php_clauses 9 8 in
  let rec go allowance guard =
    if guard = 0 then Alcotest.fail "escalation did not converge"
    else
      match S.solve ~budget:(Sat.Budget.of_conflicts allowance) s with
      | S.Unknown Sat.Budget.Conflicts -> go (2 * allowance) (guard - 1)
      | r -> r
  in
  Alcotest.(check bool) "escalated verdict" true (go 20 40 = S.Unsat)

let random_3sat st nvars nclauses =
  List.init nclauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Random.State.int st nvars in
          if Random.State.bool st then v else -v))

let test_budget_resume_random_3sat () =
  (* Seeded random 3-SAT near the phase transition: a budgeted solve
     resumed with larger and larger allowances must reach the same
     verdict as an unbudgeted solve of a fresh solver. *)
  let st = Random.State.make [| 0x5eed |] in
  for _ = 1 to 15 do
    let nvars = 25 + Random.State.int st 15 in
    let nclauses = int_of_float (4.26 *. float_of_int nvars) in
    let clauses = random_3sat st nvars nclauses in
    let mk () =
      let s = S.create () in
      for _ = 1 to nvars do
        ignore (S.new_var s)
      done;
      List.iter (S.add_clause s) clauses;
      s
    in
    let reference = S.solve (mk ()) in
    let s = mk () in
    let rec go allowance =
      match S.solve ~budget:(Sat.Budget.of_conflicts allowance) s with
      | S.Unknown _ -> go (2 * allowance)
      | r -> r
    in
    Alcotest.(check bool) "budgeted resume agrees" true (go 3 = reference)
  done

let test_budget_resume_same_instance () =
  (* The satellite contract: an [Unknown] under a small conflict
     allowance resumes on the SAME solver instance with a larger
     allowance and reaches the verdict an unbudgeted solve reaches. *)
  let nvars, clauses = php_formula 8 7 in
  let reference = S.solve (solver_of nvars clauses) in
  Alcotest.(check bool) "reference is unsat" true (reference = S.Unsat);
  let s = solver_of nvars clauses in
  (match S.solve ~budget:(Sat.Budget.of_conflicts 10) s with
  | S.Unknown Sat.Budget.Conflicts -> ()
  | S.Unknown _ -> Alcotest.fail "wrong budget reason"
  | S.Sat | S.Unsat -> Alcotest.fail "allowance unexpectedly sufficient");
  let verdict = S.solve ~budget:(Sat.Budget.of_conflicts 1_000_000) s in
  Alcotest.(check bool) "resumed verdict agrees" true (verdict = reference)

(* --- DRAT proof logging and checking ---------------------------------- *)

let test_drat_php_proof () =
  let nvars, clauses = php_formula 6 5 in
  let s = solver_of ~proof:true nvars clauses in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let proof = S.proof s in
  Alcotest.(check bool) "proof nonempty" true
    (Sat.Drat.num_additions proof > 0);
  Alcotest.(check bool) "checker accepts" true
    (Sat.Drat.is_valid ~nvars ~clauses proof)

let test_drat_mutated_proof_rejected () =
  let nvars, clauses = php_formula 6 5 in
  let s = solver_of ~proof:true nvars clauses in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let proof = S.proof s in
  (* Soundness: the same proof cannot refute a satisfiable formula. *)
  let sat_nvars, sat_clauses = php_formula 6 6 in
  Alcotest.(check bool) "proof vs satisfiable formula rejected" false
    (Sat.Drat.is_valid ~nvars:sat_nvars ~clauses:sat_clauses proof);
  (* Stripping every clause addition leaves nothing to conflict on. *)
  let deletions_only =
    List.filter (function Sat.Drat.Delete _ -> true | _ -> false) proof
  in
  Alcotest.(check bool) "additions stripped rejected" false
    (Sat.Drat.is_valid ~nvars ~clauses deletions_only);
  (* Claiming the empty clause up front is not a RUP consequence. *)
  Alcotest.(check bool) "bare empty clause rejected" false
    (Sat.Drat.is_valid ~nvars ~clauses [ Sat.Drat.Add [] ])

let test_drat_text_roundtrip () =
  let nvars, clauses = php_formula 6 5 in
  let s = solver_of ~proof:true nvars clauses in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let proof = S.proof s in
  let parsed = Sat.Drat.of_string (Sat.Drat.to_string proof) in
  Alcotest.(check bool) "roundtrip preserves steps" true (parsed = proof);
  Alcotest.(check bool) "parsed proof checks" true
    (Sat.Drat.is_valid ~nvars ~clauses parsed)

let test_drat_trivial_formulas () =
  (* A root-level contradiction needs no proof steps at all. *)
  Alcotest.(check bool) "x & !x" true
    (Sat.Drat.is_valid ~nvars:1 ~clauses:[ [ 1 ]; [ -1 ] ] []);
  (* A satisfiable formula admits no refutation. *)
  Alcotest.(check bool) "sat formula" false
    (Sat.Drat.is_valid ~nvars:1 ~clauses:[ [ 1 ] ] [])

let test_drat_across_resume () =
  (* Proof steps accumulate across budgeted resumes of one instance. *)
  let nvars, clauses = php_formula 7 6 in
  let s = solver_of ~proof:true nvars clauses in
  let rec go allowance =
    match S.solve ~budget:(Sat.Budget.of_conflicts allowance) s with
    | S.Unknown _ -> go (2 * allowance)
    | r -> r
  in
  Alcotest.(check bool) "unsat" true (go 10 = S.Unsat);
  Alcotest.(check bool) "accumulated proof checks" true
    (Sat.Drat.is_valid ~nvars ~clauses (S.proof s))

let test_stats () =
  let s = php_clauses 7 6 in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let st = S.stats s in
  Alcotest.(check bool) "conflicts counted" true (st.S.conflicts > 0);
  Alcotest.(check bool) "decisions counted" true (st.S.decisions > 0);
  Alcotest.(check bool) "propagations counted" true (st.S.propagations > 0);
  let sum = S.add_stats st S.empty_stats in
  Alcotest.(check int) "add_stats neutral" st.S.conflicts sum.S.conflicts;
  Alcotest.(check bool) "pp_stats renders" true
    (String.length (Format.asprintf "%a" S.pp_stats st) > 0)

(* --- binary-clause specialization -------------------------------------- *)

let test_binary_learned_in_proof () =
  (* Learned binaries live in the implication lists, but they must still
     be logged: the DRAT checker sees every clause the solver reasons
     with, and flipping a literal in a learned binary breaks the RUP
     chain. *)
  let nvars, clauses = php_formula 6 5 in
  let s = solver_of ~proof:true nvars clauses in
  Alcotest.(check bool) "binaries specialized" true
    (S.num_binary_clauses s > 0);
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let proof = S.proof s in
  let is_binary_add = function
    | Sat.Drat.Add [ _; _ ] -> true
    | _ -> false
  in
  Alcotest.(check bool) "proof contains a learned binary" true
    (List.exists is_binary_add proof);
  Alcotest.(check bool) "proof accepted" true
    (Sat.Drat.is_valid ~nvars ~clauses proof);
  let mutated =
    let flipped = ref false in
    List.map
      (function
        | Sat.Drat.Add [ a; b ] when not !flipped ->
            flipped := true;
            Sat.Drat.Add [ -a; b ]
        | step -> step)
      proof
  in
  Alcotest.(check bool) "mutated binary rejected" false
    (Sat.Drat.is_valid ~nvars ~clauses mutated)

let test_binary_lists_across_resume () =
  (* A budgeted [Unknown] must not lose the implication lists: the
     problem binaries and any learned ones carry over into the resumed
     solve. *)
  let nvars, clauses = php_formula 9 8 in
  let problem_binaries =
    List.length (List.filter (fun c -> List.length c = 2) clauses)
  in
  let s = solver_of nvars clauses in
  Alcotest.(check int) "problem binaries specialized" problem_binaries
    (S.num_binary_clauses s);
  (match S.solve ~budget:(Sat.Budget.of_conflicts 50) s with
  | S.Unknown Sat.Budget.Conflicts -> ()
  | _ -> Alcotest.fail "expected Unknown (conflict budget)");
  let after_budget = S.num_binary_clauses s in
  Alcotest.(check bool) "lists survive the interrupt" true
    (after_budget >= problem_binaries);
  Alcotest.(check bool) "resumed verdict" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "lists only grow" true
    (S.num_binary_clauses s >= after_budget)

let test_cancelled_then_resumed_allowance () =
  (* A solve interrupted by cancellation, then resumed, must still
     honor the per-call conflict allowance of the budget it resumes
     under — cancellation must not leak a stale (already-consumed)
     limit into the next call. *)
  let allowance = 40 in
  let nvars, clauses = php_formula 9 8 in
  let s = solver_of nvars clauses in
  let cancel = ref false in
  let budget =
    {
      Sat.Budget.deadline = None;
      conflicts = Some allowance;
      cancelled = (fun () -> !cancel);
    }
  in
  cancel := true;
  (match S.solve ~budget s with
  | S.Unknown Sat.Budget.Cancelled -> ()
  | _ -> Alcotest.fail "expected Unknown (cancelled)");
  cancel := false;
  let before = (S.stats s).S.conflicts in
  (match S.solve ~budget s with
  | S.Unknown Sat.Budget.Conflicts -> ()
  | S.Unsat -> Alcotest.fail "php(9,8) under 40 conflicts cannot finish"
  | _ -> Alcotest.fail "expected Unknown (conflict budget)");
  let spent = (S.stats s).S.conflicts - before in
  Alcotest.(check bool)
    (Printf.sprintf "resume spent %d <= allowance+1" spent)
    true
    (spent >= 1 && spent <= allowance + 1);
  (* And with the budget lifted the instance is still sound. *)
  Alcotest.(check bool) "final verdict" true (S.solve s = S.Unsat)

let test_cancelled_resume_never_sat_when_poisoned () =
  (* The root-conflict regression crossed with cancellation: cancel the
     very first solve on the poisoned formula, then resume with and
     without assumptions.  No call may ever answer Sat. *)
  [ S.legacy_config; S.default_config ]
  |> List.iter (fun config ->
         let s = S.create ~config () in
         for _ = 1 to 7 do
           ignore (S.new_var s)
         done;
         List.iter (S.add_clause s)
           [ [ 2; -7 ]; [ 2; 7 ]; [ -7; -2 ]; [ -2; 7 ] ];
         let cancel = ref true in
         let budget =
           {
             Sat.Budget.deadline = None;
             conflicts = None;
             cancelled = (fun () -> !cancel);
           }
         in
         (match S.solve ~budget s with
         | S.Sat -> Alcotest.fail "cancelled solve answered Sat"
         | S.Unknown _ | S.Unsat -> ());
         cancel := false;
         for mask = 0 to 3 do
           let assumptions =
             List.init 7 (fun i ->
                 if mask land (1 lsl i) <> 0 then i + 1 else -(i + 1))
           in
           Alcotest.(check bool)
             (Printf.sprintf "resumed mask %d unsat" mask)
             true
             (S.solve ~assumptions s = S.Unsat)
         done;
         Alcotest.(check bool) "resumed unconditional unsat" true
           (S.solve s = S.Unsat))

let test_root_conflict_poisons_solver () =
  (* Regression (found by the amo-encodings fuzz property): these four
     binaries resolve to both [2] and [-2], so the formula is unsat
     outright.  The first solve refutes it at the root and leaves the
     root trail only partially propagated; any later call — whatever the
     assumptions — must keep answering Unsat rather than accept that
     inconsistent trail as a model. *)
  [ S.legacy_config; S.default_config ]
  |> List.iter (fun config ->
         let s = S.create ~config () in
         for _ = 1 to 7 do
           ignore (S.new_var s)
         done;
         List.iter (S.add_clause s)
           [ [ 2; -7 ]; [ 2; 7 ]; [ -7; -2 ]; [ -2; 7 ] ];
         for mask = 0 to 3 do
           let assumptions =
             List.init 7 (fun i ->
                 if mask land (1 lsl i) <> 0 then i + 1 else -(i + 1))
           in
           Alcotest.(check bool)
             (Printf.sprintf "mask %d unsat" mask)
             true
             (S.solve ~assumptions s = S.Unsat)
         done;
         Alcotest.(check bool) "unconditionally unsat" true
           (S.solve s = S.Unsat))

(* Random instances cross-checked against the DPLL oracle. *)
let arbitrary_cnf =
  let open QCheck.Gen in
  let clause =
    list_size (int_range 1 3)
      (map
         (fun (v, sign) -> if sign then v + 1 else -(v + 1))
         (pair (int_range 0 7) bool))
  in
  list_size (int_range 1 35) clause

let prop_matches_dpll =
  QCheck.Test.make ~name:"CDCL matches DPLL oracle" ~count:300
    (QCheck.make arbitrary_cnf) (fun clauses ->
      let s = S.create () in
      for _ = 1 to 8 do
        ignore (S.new_var s)
      done;
      List.iter (S.add_clause s) clauses;
      let cdcl = S.solve s = S.Sat in
      let dpll = Sat.Dpll.solve ~nvars:8 clauses <> None in
      if cdcl <> dpll then false
      else if cdcl then
        (* The model must satisfy every clause. *)
        List.for_all (fun c -> List.exists (fun l -> S.value s l) c) clauses
      else true)

let prop_model_under_assumptions =
  QCheck.Test.make ~name:"assumptions hold in model" ~count:200
    (QCheck.pair (QCheck.make arbitrary_cnf)
       (QCheck.list_of_size (QCheck.Gen.return 2) (QCheck.int_range 1 8)))
    (fun (clauses, assumed_vars) ->
      let s = S.create () in
      for _ = 1 to 8 do
        ignore (S.new_var s)
      done;
      List.iter (S.add_clause s) clauses;
      let assumptions = List.map (fun v -> v) assumed_vars in
      match S.solve ~assumptions s with
      | S.Sat -> List.for_all (fun l -> S.value s l) assumptions
      | S.Unsat -> true
      | S.Unknown _ -> false)

let prop_drat_random_cnf =
  QCheck.Test.make ~name:"random CNF: UNSAT proofs check, SAT models eval"
    ~count:300 (QCheck.make arbitrary_cnf) (fun clauses ->
      let s = solver_of ~proof:true 8 clauses in
      match S.solve s with
      | S.Unsat -> Sat.Drat.is_valid ~nvars:8 ~clauses (S.proof s)
      | S.Sat ->
          List.for_all (fun c -> List.exists (fun l -> S.value s l) c) clauses
      | S.Unknown _ -> false)

(* --- CNF layer -------------------------------------------------------------- *)

let exhaust f inputs check =
  (* Force every assignment of the inputs via assumptions and check the
     model against the gate definition. *)
  let solver = C.solver f in
  let n = List.length inputs in
  let ok = ref true in
  for row = 0 to (1 lsl n) - 1 do
    let assumptions =
      List.mapi
        (fun i l -> if (row lsr i) land 1 = 1 then l else -l)
        inputs
    in
    match S.solve ~assumptions solver with
    | S.Sat -> if not (check (fun l -> S.value solver l)) then ok := false
    | S.Unsat | S.Unknown _ -> ok := false
  done;
  !ok

let test_tseitin_and () =
  let f = C.create () in
  let a = C.fresh f and b = C.fresh f in
  let y = C.and_ f a b in
  Alcotest.(check bool) "and gate" true
    (exhaust f [ a; b ] (fun v -> v y = (v a && v b)))

let test_tseitin_xor_ite () =
  let f = C.create () in
  let a = C.fresh f and b = C.fresh f and c = C.fresh f in
  let x = C.xor_ f a b in
  let m = C.ite f c a b in
  Alcotest.(check bool) "xor and ite" true
    (exhaust f [ a; b; c ] (fun v ->
         v x = (v a <> v b) && v m = if v c then v a else v b))

let test_or_and_lists () =
  let f = C.create () in
  let inputs = Array.to_list (C.fresh_many f 4) in
  let ol = C.or_list f inputs and al = C.and_list f inputs in
  Alcotest.(check bool) "or/and lists" true
    (exhaust f inputs (fun v ->
         v ol = List.exists v inputs && v al = List.for_all v inputs))

let count_true solver lits =
  List.length (List.filter (fun l -> S.value solver l) lits)

let test_at_most_one () =
  let f = C.create () in
  let lits = Array.to_list (C.fresh_many f 9) in
  C.at_most_one f lits;
  C.at_least_one f lits;
  let solver = C.solver f in
  Alcotest.(check bool) "sat" true (S.solve solver = S.Sat);
  Alcotest.(check int) "exactly one" 1 (count_true solver lits);
  (* Forcing two distinct literals must be unsat. *)
  Alcotest.(check bool) "two forced unsat" true
    (S.solve ~assumptions:[ List.nth lits 0; List.nth lits 8 ] solver
    = S.Unsat)

let test_at_most_k () =
  let f = C.create () in
  let lits = Array.to_list (C.fresh_many f 6) in
  C.at_most_k f lits 3;
  let solver = C.solver f in
  (* Forcing four of them violates the bound. *)
  let four = [ List.nth lits 0; List.nth lits 1; List.nth lits 2; List.nth lits 3 ] in
  Alcotest.(check bool) "4 > 3 unsat" true
    (S.solve ~assumptions:four solver = S.Unsat);
  let three = [ List.nth lits 0; List.nth lits 2; List.nth lits 4 ] in
  Alcotest.(check bool) "3 ok" true (S.solve ~assumptions:three solver = S.Sat)

let test_at_least_k () =
  let f = C.create () in
  let lits = Array.to_list (C.fresh_many f 5) in
  C.at_least_k f lits 4;
  let solver = C.solver f in
  Alcotest.(check bool) "sat" true (S.solve solver = S.Sat);
  Alcotest.(check bool) ">= 4 true" true (count_true solver lits >= 4);
  let two_false = [ -List.nth lits 0; -List.nth lits 1 ] in
  Alcotest.(check bool) "two false unsat" true
    (S.solve ~assumptions:two_false solver = S.Unsat)

let test_dimacs_roundtrip () =
  let f = C.create () in
  let a = C.fresh f and b = C.fresh f in
  C.add_clause f [ a; -b ];
  C.add_clause f [ -a; b ];
  let text = C.to_dimacs f in
  let solver, nvars = C.parse_dimacs text in
  Alcotest.(check int) "vars" 2 nvars;
  Alcotest.(check bool) "solves" true (S.solve solver = S.Sat)

let test_dimacs_parse_errors () =
  Alcotest.check_raises "bad header" (Failure "Cnf.parse_dimacs: bad header")
    (fun () -> ignore (C.parse_dimacs "p cnf x 1\n1 0\n"))

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "empty formula" `Quick test_empty_formula;
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "contradiction" `Quick test_contradiction;
          Alcotest.test_case "tautology" `Quick test_tautology_dropped;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "budget deadline" `Quick test_budget_deadline;
          Alcotest.test_case "budget cancelled" `Quick test_budget_cancelled;
          Alcotest.test_case "budget escalation" `Quick
            test_budget_resume_escalation;
          Alcotest.test_case "budget resume random 3-SAT" `Quick
            test_budget_resume_random_3sat;
          Alcotest.test_case "budget resume same instance" `Quick
            test_budget_resume_same_instance;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "binary learned in proof" `Quick
            test_binary_learned_in_proof;
          Alcotest.test_case "binary lists across resume" `Quick
            test_binary_lists_across_resume;
          Alcotest.test_case "root conflict poisons solver" `Quick
            test_root_conflict_poisons_solver;
          Alcotest.test_case "cancelled-then-resumed allowance" `Quick
            test_cancelled_then_resumed_allowance;
          Alcotest.test_case "cancelled resume never Sat when poisoned" `Quick
            test_cancelled_resume_never_sat_when_poisoned;
        ] );
      ( "drat",
        [
          Alcotest.test_case "pigeonhole proof" `Quick test_drat_php_proof;
          Alcotest.test_case "mutated proof rejected" `Quick
            test_drat_mutated_proof_rejected;
          Alcotest.test_case "text roundtrip" `Quick test_drat_text_roundtrip;
          Alcotest.test_case "trivial formulas" `Quick
            test_drat_trivial_formulas;
          Alcotest.test_case "proof across resume" `Quick
            test_drat_across_resume;
        ] );
      ( "oracle",
        qt
          [
            prop_matches_dpll; prop_model_under_assumptions;
            prop_drat_random_cnf;
          ] );
      ( "cnf",
        [
          Alcotest.test_case "tseitin and" `Quick test_tseitin_and;
          Alcotest.test_case "tseitin xor/ite" `Quick test_tseitin_xor_ite;
          Alcotest.test_case "or/and lists" `Quick test_or_and_lists;
          Alcotest.test_case "at most one" `Quick test_at_most_one;
          Alcotest.test_case "at most k" `Quick test_at_most_k;
          Alcotest.test_case "at least k" `Quick test_at_least_k;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dimacs errors" `Quick test_dimacs_parse_errors;
        ] );
    ]
