type tile_yield = {
  coord : Hexlib.Coord.offset;
  label : string;
  report : Sidb.Defects.yield_report;
}

type t = {
  per_tile : tile_yield list;
  simulated_tiles : int;
  skipped_tiles : int;
  layout_yield : float;
}

let of_layout ?engine ?model ?(params = Sidb.Defects.default_params) layout =
  let per_tile = ref [] in
  let skipped = ref 0 in
  let index = ref 0 in
  Layout.Gate_layout.iter layout (fun coord tile ->
      if not (Layout.Tile.is_empty tile) then begin
        match (Library.validation_structure tile, Library.tile_spec tile) with
        | Some structure, Some spec ->
            let i = !index in
            incr index;
            (* Distinct, deterministic defect draws per tile. *)
            let params = { params with Sidb.Defects.seed = params.seed + i } in
            let report =
              Sidb.Defects.operational_yield ?engine ?model params structure
                ~spec
            in
            per_tile :=
              { coord; label = Layout.Tile.label tile; report } :: !per_tile
        | _ -> incr skipped
      end);
  let per_tile = List.rev !per_tile in
  (* Defects strike tiles independently, so the layout works only when
     every tile does: the yields multiply. *)
  let layout_yield =
    List.fold_left
      (fun acc ty -> acc *. ty.report.Sidb.Defects.yield)
      1.0 per_tile
  in
  {
    per_tile;
    simulated_tiles = List.length per_tile;
    skipped_tiles = !skipped;
    layout_yield;
  }

let pp ppf y =
  List.iter
    (fun ty ->
      Format.fprintf ppf "  (%d,%d) %-8s %a@." ty.coord.Hexlib.Coord.col
        ty.coord.Hexlib.Coord.row ty.label
        Sidb.Defects.pp_yield_report ty.report)
    y.per_tile;
  Format.fprintf ppf
    "layout yield: %.2f%% over %d simulated tile(s) (%d without a harness)@."
    (100. *. y.layout_yield) y.simulated_tiles y.skipped_tiles
