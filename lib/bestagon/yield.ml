type tile_yield = {
  coord : Hexlib.Coord.offset;
  label : string;
  report : Sidb.Defects.yield_report;
}

type t = {
  per_tile : tile_yield list;
  simulated_tiles : int;
  skipped_tiles : int;
  layout_yield : float;
}

(* Per-tile seed derivation: a splitmix64-style mix of the run seed and
   the tile index.  The obvious [seed + i] aliases across runs — tile i
   of run s draws exactly the defect configurations of tile i-1 of run
   s+1 — so a seed sweep would re-sample correlated defects instead of
   independent ones.  The mix keeps determinism (same seed, same layout,
   same yields) while decorrelating neighboring (seed, index) pairs. *)
let tile_seed base i =
  let open Int64 in
  let z = add (of_int base) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

let of_layout ?(engine = Sidb.Bdl.Pruned) ?jobs ?model
    ?(params = Sidb.Defects.default_params) layout =
  (* Enumerate the simulatable tiles serially (cheap), then run the
     Monte-Carlo trials of each tile on the domain pool.  Per-tile
     seeds are splitmix-derived from the tile index, so the trials are
     order-independent and the parallel reports are bit-identical to
     the serial ([jobs = 1]) ones. *)
  let work = ref [] in
  let skipped = ref 0 in
  let index = ref 0 in
  Layout.Gate_layout.iter layout (fun coord tile ->
      if not (Layout.Tile.is_empty tile) then begin
        match (Library.validation_structure tile, Library.tile_spec tile) with
        | Some structure, Some spec ->
            let i = !index in
            incr index;
            work :=
              (coord, Layout.Tile.label tile, structure, spec, i) :: !work
        | _ -> incr skipped
      end);
  let work = Array.of_list (List.rev !work) in
  let per_tile =
    Parallel.Pool.map ?jobs (Array.length work) (fun k ->
        let coord, label, structure, spec, i = work.(k) in
        let params =
          { params with Sidb.Defects.seed = tile_seed params.seed i }
        in
        let report =
          Sidb.Defects.operational_yield ~engine ?model params structure ~spec
        in
        { coord; label; report })
    |> Array.to_list
  in
  (* Defects strike tiles independently, so the layout works only when
     every tile does: the yields multiply. *)
  let layout_yield =
    List.fold_left
      (fun acc ty -> acc *. ty.report.Sidb.Defects.yield)
      1.0 per_tile
  in
  {
    per_tile;
    simulated_tiles = List.length per_tile;
    skipped_tiles = !skipped;
    layout_yield;
  }

let pp ppf y =
  List.iter
    (fun ty ->
      Format.fprintf ppf "  (%d,%d) %-8s %a@." ty.coord.Hexlib.Coord.col
        ty.coord.Hexlib.Coord.row ty.label
        Sidb.Defects.pp_yield_report ty.report)
    y.per_tile;
  Format.fprintf ppf
    "layout yield: %.2f%% over %d simulated tile(s) (%d without a harness)@."
    (100. *. y.layout_yield) y.simulated_tiles y.skipped_tiles
