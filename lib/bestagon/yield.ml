type tile_yield = {
  coord : Hexlib.Coord.offset;
  label : string;
  report : Sidb.Defects.yield_report;
}

type t = {
  per_tile : tile_yield list;
  simulated_tiles : int;
  skipped_tiles : int;
  layout_yield : float;
}

(* Per-tile seed derivation: a splitmix64-style mix of the run seed and
   the tile index.  The obvious [seed + i] aliases across runs — tile i
   of run s draws exactly the defect configurations of tile i-1 of run
   s+1 — so a seed sweep would re-sample correlated defects instead of
   independent ones.  The mix keeps determinism (same seed, same layout,
   same yields) while decorrelating neighboring (seed, index) pairs. *)
let tile_seed base i =
  let open Int64 in
  let z = add (of_int base) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

let of_layout ?engine ?jobs ?model
    ?(params = Sidb.Defects.default_params) layout =
  (* Enumerate the simulatable tiles serially (cheap), then run the
     Monte-Carlo trials of each tile on the domain pool.  Per-tile
     seeds are splitmix-derived from the tile index, so the trials are
     order-independent and the parallel reports are bit-identical to
     the serial ([jobs = 1]) ones. *)
  let engine =
    match engine with Some e -> e | None -> Sidb.Bdl.default_engine ()
  in
  let work = ref [] in
  let skipped = ref 0 in
  let index = ref 0 in
  Layout.Gate_layout.iter layout (fun coord tile ->
      if not (Layout.Tile.is_empty tile) then begin
        match (Library.validation_structure tile, Library.tile_spec tile) with
        | Some structure, Some spec ->
            let i = !index in
            incr index;
            work :=
              (coord, Layout.Tile.label tile, structure, spec, i) :: !work
        | _ -> incr skipped
      end);
  let work = Array.of_list (List.rev !work) in
  let per_tile =
    Parallel.Pool.map ?jobs (Array.length work) (fun k ->
        let coord, label, structure, spec, i = work.(k) in
        let params =
          { params with Sidb.Defects.seed = tile_seed params.seed i }
        in
        let report =
          Sidb.Defects.operational_yield ~engine ?model params structure ~spec
        in
        { coord; label; report })
    |> Array.to_list
  in
  (* Defects strike tiles independently, so the layout works only when
     every tile does: the yields multiply. *)
  let layout_yield =
    List.fold_left
      (fun acc ty -> acc *. ty.report.Sidb.Defects.yield)
      1.0 per_tile
  in
  {
    per_tile;
    simulated_tiles = List.length per_tile;
    skipped_tiles = !skipped;
    layout_yield;
  }

(* --- fixed-map replay -------------------------------------------------

   Instead of Monte-Carlo draws, replay one known defect map against
   every simulatable tile: defects falling on structural dots are
   applied as removals (or hard failures, when they hit an input
   perturber or output pair — the structure cannot be fabricated as
   designed), and the map's charged defects act through the external
   potential in the tile-local frame.  Deterministic by construction. *)

type map_tile = {
  map_coord : Hexlib.Coord.offset;
  map_label : string;
  map_ok : bool;
  structural_hits : int;
      (** Map defects coinciding with sites of the tile's structure. *)
}

type map_report = {
  tiles : map_tile list;
  map_simulated : int;
  map_skipped : int;
  failed_tiles : int;
  map_operational : bool;
  map_yield : float;
}

let replay_tile ~engine ~model defect_map coord structure spec =
  let on, om = Geometry.tile_origin coord in
  let local =
    List.map
      (fun (e : Sidb.Defect_map.entry) ->
        { e with Sidb.Defect_map.site = Sidb.Lattice.translate e.site ~dn:(-on) ~dm:(-om) })
      (Sidb.Defect_map.entries defect_map)
  in
  let hit site =
    List.exists (fun (e : Sidb.Defect_map.entry) -> Sidb.Lattice.equal e.site site) local
  in
  let fixed_hits =
    List.filter hit structure.Sidb.Bdl.fixed
  in
  let special_sites =
    List.filter (fun s -> not (List.memq s structure.Sidb.Bdl.fixed))
      (Sidb.Defects.all_sites structure)
  in
  let special_hits = List.filter hit special_sites in
  let structural_hits = List.length fixed_hits + List.length special_hits in
  (* Charges beyond the screened-Coulomb influence radius shift in-tile
     sites by well under the harness margins (cf.
     {!Surface.influence_radius_a}) — dropping them keeps untouched
     tiles on the fast path below. *)
  let near_charge (s : Sidb.Lattice.site) =
    let x, y = Sidb.Lattice.position s in
    let x_lo, y_lo = Sidb.Lattice.position (Sidb.Lattice.site 0 0 0) in
    let x_hi, _ =
      Sidb.Lattice.position (Sidb.Lattice.site (Geometry.tile_columns - 1) 0 0)
    in
    let _, y_hi =
      Sidb.Lattice.position (Sidb.Lattice.site 0 (Geometry.tile_rows - 1) 1)
    in
    let dx = Float.max 0. (Float.max (x_lo -. x) (x -. x_hi))
    and dy = Float.max 0. (Float.max (y_lo -. y) (y -. y_hi)) in
    sqrt ((dx *. dx) +. (dy *. dy)) <= Surface.influence_radius_a
  in
  let charges =
    List.filter_map
      (fun (e : Sidb.Defect_map.entry) ->
        if
          e.Sidb.Defect_map.kind = Sidb.Defect_map.Charged
          && near_charge e.Sidb.Defect_map.site
        then Some e.Sidb.Defect_map.site
        else None)
      local
  in
  let ok =
    if special_hits <> [] then
      (* A defect sits exactly on an input perturber or output pair
         site: the structure cannot be fabricated as designed. *)
      false
    else if fixed_hits = [] && charges = [] then
      (* Untouched by the map: operational by the same convention as
         the Monte-Carlo harness (a zero-defect trial matches its own
         baseline by construction). *)
      true
    else
      (* Judged like a Monte-Carlo trial: the perturbed structure must
         keep the defect-free baseline signature (some harnesses are
         imperfect on a row even cleanly — what matters is that the
         map does not change behaviour). *)
      let baseline =
        Sidb.Defects.signature (Sidb.Bdl.check ~engine ~model structure ~spec)
      in
      let structure =
        if fixed_hits = [] then structure
        else
          {
            structure with
            Sidb.Bdl.fixed =
              List.filter
                (fun s -> not (List.exists (Sidb.Lattice.equal s) fixed_hits))
                structure.Sidb.Bdl.fixed;
          }
      in
      let v_ext_at =
        match charges with
        | [] -> None
        | _ ->
            Some
              (fun site ->
                List.fold_left
                  (fun acc q ->
                    acc +. Sidb.Model.interaction model site q)
                  0. charges)
      in
      Sidb.Defects.signature
        (Sidb.Bdl.check ~engine ~model ?v_ext_at structure ~spec)
      = baseline
  in
  (ok, structural_hits)

let under_map ?engine ?jobs
    ?(model = Sidb.Model.default) defect_map layout =
  let engine =
    match engine with Some e -> e | None -> Sidb.Bdl.default_engine ()
  in
  let work = ref [] in
  let skipped = ref 0 in
  Layout.Gate_layout.iter layout (fun coord tile ->
      if not (Layout.Tile.is_empty tile) then begin
        match (Library.validation_structure tile, Library.tile_spec tile) with
        | Some structure, Some spec ->
            work := (coord, Layout.Tile.label tile, structure, spec) :: !work
        | _ -> incr skipped
      end);
  let work = Array.of_list (List.rev !work) in
  let tiles =
    Parallel.Pool.map ?jobs (Array.length work) (fun k ->
        let coord, label, structure, spec = work.(k) in
        let ok, structural_hits =
          replay_tile ~engine ~model defect_map coord structure spec
        in
        { map_coord = coord; map_label = label; map_ok = ok; structural_hits })
    |> Array.to_list
  in
  let failed = List.length (List.filter (fun t -> not t.map_ok) tiles) in
  let simulated = List.length tiles in
  {
    tiles;
    map_simulated = simulated;
    map_skipped = !skipped;
    failed_tiles = failed;
    map_operational = failed = 0;
    map_yield =
      (if simulated = 0 then 1.0
       else float_of_int (simulated - failed) /. float_of_int simulated);
  }

let pp_map_report ppf r =
  List.iter
    (fun t ->
      Format.fprintf ppf "  (%d,%d) %-8s %s%s@." t.map_coord.Hexlib.Coord.col
        t.map_coord.Hexlib.Coord.row t.map_label
        (if t.map_ok then "operational" else "FAILS under map")
        (if t.structural_hits > 0 then
           Printf.sprintf " (%d structural hit(s))" t.structural_hits
         else ""))
    r.tiles;
  Format.fprintf ppf
    "map replay: %d/%d tile(s) operational (yield %.1f%%, %d without a \
     harness)@."
    (r.map_simulated - r.failed_tiles)
    r.map_simulated
    (100. *. r.map_yield)
    r.map_skipped

let pp ppf y =
  List.iter
    (fun ty ->
      Format.fprintf ppf "  (%d,%d) %-8s %a@." ty.coord.Hexlib.Coord.col
        ty.coord.Hexlib.Coord.row ty.label
        Sidb.Defects.pp_yield_report ty.report)
    y.per_tile;
  Format.fprintf ppf
    "layout yield: %.2f%% over %d simulated tile(s) (%d without a harness)@."
    (100. *. y.layout_yield) y.simulated_tiles y.skipped_tiles
