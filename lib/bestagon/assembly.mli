(** Whole-layout assembly: one {!Sidb.Charge_system} for a complete
    placed-and-routed design.

    {!Library.apply} flattens a gate layout to a site list for
    fabrication export; this module flattens it for {e simulation} —
    every tile's DBs (and the primary-input driver perturbers) in the
    absolute lattice frame, annotated with each site's clock zone so a
    per-phase electrode bias can be applied through the external
    potential.  The result is the input to whole-layout ground-state
    and critical-temperature analysis ({!Sidb.Ground_state.quicksim};
    complete Table-1 designs run to hundreds of DBs, far beyond the
    exact engines). *)

type t = {
  system : Sidb.Charge_system.t;
      (** All DBs of the layout, absolute frame, clock bias applied as
          [v_ext]. *)
  site_count : int;
  tile_count : int;  (** Non-empty tiles assembled. *)
  zones : int array;  (** Clock zone of each site, aligned with the system. *)
  duplicates_dropped : int;
      (** Colliding absolute sites dropped defensively (0 for any layout
          the library produces). *)
  all_validated : bool;  (** Every tile's canvas is simulation-confirmed. *)
}

val assemble :
  ?inputs:(string * bool) list ->
  ?model:Sidb.Model.t ->
  ?clock_bias:float array ->
  Layout.Gate_layout.t ->
  (t, string) result
(** Flatten the layout.  [inputs] pins primary-input drivers near/far by
    value (default: all 0, as {!Library.apply}).  [clock_bias] gives the
    electrode potential (eV) added to every site of clock zone [z] as
    [clock_bias.(z mod length)]; the default [[| 0. |]] holds all zones
    neutral.  [Error] on a tile outside the library or a layout with no
    DBs. *)

val with_clock_bias : t -> float array -> t
(** Re-bias the assembled system for a different clocking phase without
    re-flattening (same sites, new [v_ext] — cheap, for phase sweeps). *)

type layout_structure = {
  structure : Sidb.Bdl.structure;
      (** The whole layout as one BDL structure: every tile's DBs fixed,
          primary-input pads as input drivers, primary-output read-out
          pairs as outputs. *)
  pi_names : string list;  (** Aligned with [structure.inputs]. *)
  po_names : string list;  (** Aligned with [structure.outputs]. *)
  struct_tile_count : int;
  struct_duplicates_dropped : int;
}

val structure_of_layout :
  ?name:string -> Layout.Gate_layout.t -> (layout_structure, string) result
(** Flatten the layout for {e parameterized} simulation — a
    {!Sidb.Bdl.structure} instead of a fixed charge system, so
    whole-layout operational-domain sweeps ({!Sidb.Operational_domain})
    can re-instantiate the system at every model point and drive every
    input row.  Clocking is not applied (domains are computed at neutral
    bias).  [Error] on a tile outside the library, or a layout with no
    DBs, no primary inputs, or no primary outputs. *)
