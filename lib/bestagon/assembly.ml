(* Whole-layout assembly: flatten a placed-and-routed gate layout into
   ONE charge system in the absolute lattice frame.

   Library.apply already produces the flat site list for fabrication
   export; simulation additionally needs (a) the per-site clock zone, so
   clocking electrodes can bias each tile's phase through the external
   potential, and (b) a duplicate-free site array (Charge_system.create
   rejects duplicates).  Neighboring tiles never share dots by
   construction of the scaffold frames, but defensive deduplication
   keeps a mis-specified library from crashing the assembler. *)

type t = {
  system : Sidb.Charge_system.t;
  site_count : int;
  tile_count : int;
  zones : int array;
  duplicates_dropped : int;
  all_validated : bool;
}

let assemble ?(inputs = []) ?(model = Sidb.Model.default)
    ?(clock_bias = [| 0. |]) layout =
  if Array.length clock_bias = 0 then
    invalid_arg "Assembly.assemble: clock_bias must be non-empty";
  let error = ref None in
  let seen = Hashtbl.create 512 in
  let rev_sites = ref [] and rev_zones = ref [] in
  let site_count = ref 0 and dropped = ref 0 and tiles = ref 0 in
  let all_validated = ref true in
  let add_sites c tile_local =
    let zone = Layout.Gate_layout.zone layout c in
    List.iter
      (fun s ->
        let placed = Geometry.translate_site s ~at:c in
        if Hashtbl.mem seen placed then incr dropped
        else begin
          Hashtbl.add seen placed ();
          rev_sites := placed :: !rev_sites;
          rev_zones := zone :: !rev_zones;
          incr site_count
        end)
      tile_local
  in
  Layout.Gate_layout.iter layout (fun c tile ->
      if !error = None && not (Layout.Tile.is_empty tile) then
        match Library.implement tile with
        | Error e ->
            error := Some (Format.asprintf "%a: %s" Hexlib.Coord.pp_offset c e)
        | Ok impl ->
            incr tiles;
            if not impl.Library.validated then all_validated := false;
            add_sites c impl.Library.sites;
            (match tile with
            | Layout.Tile.Pi { name; _ } -> (
                let value =
                  Option.value ~default:false (List.assoc_opt name inputs)
                in
                match Library.pi_driver tile ~value with
                | Some pert -> add_sites c pert
                | None -> ())
            | Layout.Tile.Empty | Layout.Tile.Po _ | Layout.Tile.Gate _
            | Layout.Tile.Wire _ | Layout.Tile.Fanout _ ->
                ()));
  match !error with
  | Some e -> Error e
  | None ->
      if !site_count = 0 then Error "Assembly.assemble: layout has no SiDBs"
      else begin
        let sites = Array.of_list (List.rev !rev_sites) in
        let zones = Array.of_list (List.rev !rev_zones) in
        let v_ext =
          Array.map (fun z -> clock_bias.(z mod Array.length clock_bias)) zones
        in
        let system = Sidb.Charge_system.create ~v_ext model sites in
        Ok
          {
            system;
            site_count = !site_count;
            tile_count = !tiles;
            zones;
            duplicates_dropped = !dropped;
            all_validated = !all_validated;
          }
      end

type layout_structure = {
  structure : Sidb.Bdl.structure;
  pi_names : string list;
  po_names : string list;
  struct_tile_count : int;
  struct_duplicates_dropped : int;
}

(* Flatten a layout into ONE {!Sidb.Bdl.structure} instead of one charge
   system: every tile's DBs become fixed sites, each primary-input pad
   becomes an input driver (near = value-1 perturber, far = value-0, in
   the absolute frame), and each primary-output pad's read-out BDL pair
   becomes an output.  This is what whole-layout operational-domain
   sweeps consume — the sweep re-instantiates the system per model
   point, which a pre-built charge system cannot express. *)
let structure_of_layout ?(name = "layout") layout =
  let error = ref None in
  let seen = Hashtbl.create 512 in
  let rev_fixed = ref [] in
  let dropped = ref 0 and tiles = ref 0 in
  let rev_pis = ref [] and rev_pos = ref [] in
  let add placed =
    if Hashtbl.mem seen placed then incr dropped
    else begin
      Hashtbl.add seen placed ();
      rev_fixed := placed :: !rev_fixed
    end
  in
  Layout.Gate_layout.iter layout (fun c tile ->
      if !error = None && not (Layout.Tile.is_empty tile) then
        match Library.implement tile with
        | Error e ->
            error := Some (Format.asprintf "%a: %s" Hexlib.Coord.pp_offset c e)
        | Ok impl -> (
            incr tiles;
            List.iter
              (fun s -> add (Geometry.translate_site s ~at:c))
              impl.Library.sites;
            match tile with
            | Layout.Tile.Pi { name = n; _ } -> (
                match
                  ( Library.pi_driver tile ~value:true,
                    Library.pi_driver tile ~value:false )
                with
                | Some near, Some far ->
                    let tr = List.map (Geometry.translate_site ~at:c) in
                    rev_pis :=
                      (n, { Sidb.Bdl.near = tr near; Sidb.Bdl.far = tr far })
                      :: !rev_pis
                | _ -> error := Some (n ^ ": input pad has no driver"))
            | Layout.Tile.Po { name = n; _ } -> (
                match Library.po_output_pair tile with
                | Some pair ->
                    rev_pos :=
                      ( n,
                        {
                          Sidb.Bdl.zero =
                            Geometry.translate_site pair.Sidb.Bdl.zero ~at:c;
                          Sidb.Bdl.one =
                            Geometry.translate_site pair.Sidb.Bdl.one ~at:c;
                        } )
                      :: !rev_pos
                | None -> error := Some (n ^ ": output pad has no read-out pair"))
            | Layout.Tile.Empty | Layout.Tile.Gate _ | Layout.Tile.Wire _
            | Layout.Tile.Fanout _ ->
                ()));
  match !error with
  | Some e -> Error e
  | None ->
      if !rev_fixed = [] then
        Error "Assembly.structure_of_layout: layout has no SiDBs"
      else if !rev_pis = [] then
        Error "Assembly.structure_of_layout: layout has no primary inputs"
      else if !rev_pos = [] then
        Error "Assembly.structure_of_layout: layout has no primary outputs"
      else begin
        let pis = List.rev !rev_pis and pos = List.rev !rev_pos in
        Ok
          {
            structure =
              {
                Sidb.Bdl.name;
                Sidb.Bdl.inputs = Array.of_list (List.map snd pis);
                Sidb.Bdl.outputs = Array.of_list (List.map snd pos);
                Sidb.Bdl.fixed = List.rev !rev_fixed;
              };
            pi_names = List.map fst pis;
            po_names = List.map fst pos;
            struct_tile_count = !tiles;
            struct_duplicates_dropped = !dropped;
          }
      end

let with_clock_bias t clock_bias =
  if Array.length clock_bias = 0 then
    invalid_arg "Assembly.with_clock_bias: clock_bias must be non-empty";
  let v_ext =
    Array.map
      (fun z -> clock_bias.(z mod Array.length clock_bias))
      t.zones
  in
  { t with system = Sidb.Charge_system.with_v_ext t.system v_ext }
