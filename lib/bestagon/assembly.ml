(* Whole-layout assembly: flatten a placed-and-routed gate layout into
   ONE charge system in the absolute lattice frame.

   Library.apply already produces the flat site list for fabrication
   export; simulation additionally needs (a) the per-site clock zone, so
   clocking electrodes can bias each tile's phase through the external
   potential, and (b) a duplicate-free site array (Charge_system.create
   rejects duplicates).  Neighboring tiles never share dots by
   construction of the scaffold frames, but defensive deduplication
   keeps a mis-specified library from crashing the assembler. *)

type t = {
  system : Sidb.Charge_system.t;
  site_count : int;
  tile_count : int;
  zones : int array;
  duplicates_dropped : int;
  all_validated : bool;
}

let assemble ?(inputs = []) ?(model = Sidb.Model.default)
    ?(clock_bias = [| 0. |]) layout =
  if Array.length clock_bias = 0 then
    invalid_arg "Assembly.assemble: clock_bias must be non-empty";
  let error = ref None in
  let seen = Hashtbl.create 512 in
  let rev_sites = ref [] and rev_zones = ref [] in
  let site_count = ref 0 and dropped = ref 0 and tiles = ref 0 in
  let all_validated = ref true in
  let add_sites c tile_local =
    let zone = Layout.Gate_layout.zone layout c in
    List.iter
      (fun s ->
        let placed = Geometry.translate_site s ~at:c in
        if Hashtbl.mem seen placed then incr dropped
        else begin
          Hashtbl.add seen placed ();
          rev_sites := placed :: !rev_sites;
          rev_zones := zone :: !rev_zones;
          incr site_count
        end)
      tile_local
  in
  Layout.Gate_layout.iter layout (fun c tile ->
      if !error = None && not (Layout.Tile.is_empty tile) then
        match Library.implement tile with
        | Error e ->
            error := Some (Format.asprintf "%a: %s" Hexlib.Coord.pp_offset c e)
        | Ok impl ->
            incr tiles;
            if not impl.Library.validated then all_validated := false;
            add_sites c impl.Library.sites;
            (match tile with
            | Layout.Tile.Pi { name; _ } -> (
                let value =
                  Option.value ~default:false (List.assoc_opt name inputs)
                in
                match Library.pi_driver tile ~value with
                | Some pert -> add_sites c pert
                | None -> ())
            | Layout.Tile.Empty | Layout.Tile.Po _ | Layout.Tile.Gate _
            | Layout.Tile.Wire _ | Layout.Tile.Fanout _ ->
                ()));
  match !error with
  | Some e -> Error e
  | None ->
      if !site_count = 0 then Error "Assembly.assemble: layout has no SiDBs"
      else begin
        let sites = Array.of_list (List.rev !rev_sites) in
        let zones = Array.of_list (List.rev !rev_zones) in
        let v_ext =
          Array.map (fun z -> clock_bias.(z mod Array.length clock_bias)) zones
        in
        let system = Sidb.Charge_system.create ~v_ext model sites in
        Ok
          {
            system;
            site_count = !site_count;
            tile_count = !tiles;
            zones;
            duplicates_dropped = !dropped;
            all_validated = !all_validated;
          }
      end

let with_clock_bias t clock_bias =
  if Array.length clock_bias = 0 then
    invalid_arg "Assembly.with_clock_bias: clock_bias must be non-empty";
  let v_ext =
    Array.map
      (fun z -> clock_bias.(z mod Array.length clock_bias))
      t.zones
  in
  { t with system = Sidb.Charge_system.with_v_ext t.system v_ext }
