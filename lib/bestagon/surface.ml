module Coord = Hexlib.Coord
module D = Hexlib.Direction
module M = Sidb.Model
module L = Sidb.Lattice

type t = {
  map : Sidb.Defect_map.t;
  model : M.t;
  engine : Sidb.Bdl.engine;
  panel :
    (Sidb.Bdl.structure * (bool array -> bool array) * bool list) list Lazy.t;
      (** Representative harnesses with their clean baseline signatures
          under this instance's engine and model. *)
  cache : (Coord.offset, bool) Hashtbl.t;
}

(* The representative panel: one harness per tile shape the placers can
   emit (wires in all four bends, the double wire and the crossing,
   inverters, every two-input gate in both output orientations, and the
   fan-out).  A tile is usable only when every panel member keeps its
   clean baseline signature under the map's local potential —
   conservative by construction, so a layout confined to unblocked
   tiles survives whatever tile the engines actually drop there. *)
let representative_tiles =
  lazy
    (let wires =
       List.map
         (fun (i, o) -> Layout.Tile.Wire { segments = [ (i, o) ] })
         [
           (D.North_west, D.South_east);
           (D.North_west, D.South_west);
           (D.North_east, D.South_east);
           (D.North_east, D.South_west);
         ]
     in
     let crossing =
       Layout.Tile.Wire
         {
           segments =
             [ (D.North_west, D.South_east); (D.North_east, D.South_west) ];
         }
     in
     let double_wire =
       Layout.Tile.Wire
         {
           segments =
             [ (D.North_west, D.South_west); (D.North_east, D.South_east) ];
         }
     in
     let invs =
       List.concat_map
         (fun i ->
           List.map
             (fun o ->
               Layout.Tile.Gate
                 { fn = Logic.Mapped.Inv; ins = [ i ]; outs = [ o ] })
             [ D.South_east; D.South_west ])
         [ D.North_west; D.North_east ]
     in
     let gates =
       List.concat_map
         (fun fn ->
           List.map
             (fun o ->
               Layout.Tile.Gate
                 {
                   fn;
                   ins = [ D.North_west; D.North_east ];
                   outs = [ o ];
                 })
             [ D.South_east; D.South_west ])
         [
           Logic.Mapped.Or2; Logic.Mapped.And2; Logic.Mapped.Nor2;
           Logic.Mapped.Nand2; Logic.Mapped.Xor2; Logic.Mapped.Xnor2;
         ]
     in
     let fanouts =
       List.map
         (fun i ->
           Layout.Tile.Fanout
             { inp = i; outs = [ D.South_west; D.South_east ] })
         [ D.North_west; D.North_east ]
     in
     List.filter_map
       (fun tile ->
         match
           (Library.validation_structure tile, Library.tile_spec tile)
         with
         | Some s, Some spec -> Some (s, spec)
         | _ -> None)
       ((wires @ [ crossing; double_wire ]) @ invs @ gates @ fanouts))

let create ?(engine = Sidb.Bdl.Pruned) ?(model = M.default) map =
  {
    map;
    model;
    engine;
    panel =
      lazy
        (List.map
           (fun (s, spec) ->
             ( s,
               spec,
               Sidb.Defects.signature
                 (Sidb.Bdl.check ~engine ~model s ~spec) ))
           (Lazy.force representative_tiles));
    cache = Hashtbl.create 64;
  }

let map t = t.map

(* A charged defect farther than this from a tile's footprint shifts any
   in-tile site by less than ~2 meV (V(80 A) = 14.4/(5.6*80) *
   exp(-80/500 A) with lambda_tf = 5 nm) — well under the energetic
   margins of the validated Bestagon designs, so such tiles need no
   ground-state recheck. *)
let influence_radius_a = 80.0

(* Footprint of a tile in dimer coordinates: [origin_n, origin_n + 59] x
   [origin_m, origin_m + 22], both intra-dimer indices. *)
let footprint_box c =
  let on, om = Geometry.tile_origin c in
  ((on, om), (on + Geometry.tile_columns - 1, om + Geometry.tile_rows - 1))

let in_box ((lo_n, lo_m), (hi_n, hi_m)) (s : L.site) =
  s.L.n >= lo_n && s.L.n <= hi_n && s.L.m >= lo_m && s.L.m <= hi_m

(* Distance (A) from a site to the closed footprint rectangle. *)
let distance_to_box ((lo_n, lo_m), (hi_n, hi_m)) (s : L.site) =
  let x, y = L.position s in
  let x_lo, _ = L.position (L.site lo_n lo_m 0)
  and x_hi, _ = L.position (L.site hi_n lo_m 0) in
  let _, y_lo = L.position (L.site lo_n lo_m 0)
  and _, y_hi = L.position (L.site lo_n hi_m 1) in
  let dx = Float.max 0. (Float.max (x_lo -. x) (x -. x_hi))
  and dy = Float.max 0. (Float.max (y_lo -. y) (y -. y_hi)) in
  sqrt ((dx *. dx) +. (dy *. dy))

let compute_blocked t c =
  let box = footprint_box c in
  let entries = Sidb.Defect_map.entries t.map in
  (* (a) structural overlap: any defect inside the footprint makes the
     tile unusable — a dot might be required exactly there, and a
     charged defect inside the canvas always overwhelms the logic. *)
  if List.exists (fun (e : Sidb.Defect_map.entry) -> in_box box e.site) entries
  then true
  else
    (* (b) potential shift: charged defects just outside the footprint
       still reach into it through the screened Coulomb tail.  Recheck
       operationality of the representative panel under the map's local
       potential, in the tile-local frame. *)
    let near_charges =
      List.filter
        (fun (e : Sidb.Defect_map.entry) ->
          e.kind = Sidb.Defect_map.Charged
          && distance_to_box box e.site <= influence_radius_a)
        entries
    in
    match near_charges with
    | [] -> false
    | _ ->
        let on, om = Geometry.tile_origin c in
        let local_charges =
          List.map
            (fun (e : Sidb.Defect_map.entry) ->
              L.translate e.site ~dn:(-on) ~dm:(-om))
            near_charges
        in
        let v_ext_at site =
          List.fold_left
            (fun acc q -> acc +. M.interaction t.model site q)
            0. local_charges
        in
        not
          (List.for_all
             (fun (s, spec, baseline) ->
               Sidb.Defects.signature
                 (Sidb.Bdl.check ~engine:t.engine ~model:t.model ~v_ext_at s
                    ~spec)
               = baseline)
             (Lazy.force t.panel))

let blocked t c =
  match Hashtbl.find_opt t.cache c with
  | Some b -> b
  | None ->
      let b = compute_blocked t c in
      Hashtbl.add t.cache c b;
      b

let blocked_in_grid t ~width ~height =
  List.concat
    (List.init height (fun row ->
         List.filter_map
           (fun col ->
             let c : Coord.offset = { col; row } in
             if blocked t c then Some c else None)
           (List.init width (fun col -> col))))

let grid_box ~width ~height =
  let shift = if height > 1 then Geometry.row_shift_columns else 0 in
  ( (0, 0),
    ( (width * Geometry.tile_columns) + shift - 1,
      (height * Geometry.tile_rows) - 1 ) )
