(** The blocked-tile view of a {!Sidb.Defect_map}: which Bestagon tiles
    of a hexagonal layout a fixed dirty surface renders unusable.

    A tile at offset coordinate [c] is {e blocked} when

    - some mapped defect (charged or neutral) falls inside the tile's
      60 × 23 dimer footprint ({!Geometry.tile_origin}) — a dot of the
      eventual design might be required exactly there, and a charged
      defect inside the logic canvas always overwhelms it; or
    - a charged defect {e outside} the footprint but within the
      screened-Coulomb influence radius (≈ 80 Å, where the shift drops
      under ~2 meV) changes the per-row ok-signature of some member of
      a representative panel of tile harnesses relative to its clean
      baseline ({!Sidb.Bdl.check} with [v_ext_at] in the tile-local
      frame, judged by {!Sidb.Defects.signature} exactly like the
      Monte-Carlo harness).

    The panel covers every tile shape the physical-design engines emit
    (wire bends, double wire, crossing, inverters, all two-input gates
    in both output orientations, fan-out), so the predicate is conservative: a
    layout confined to unblocked tiles keeps working whatever tile the
    engines actually place.  Verdicts are memoized per coordinate —
    repeated queries from candidate-size sweeps and routing retries are
    cheap, and only tiles near charged defects ever pay for
    ground-state solves. *)

type t

val create : ?engine:Sidb.Bdl.engine -> ?model:Sidb.Model.t -> Sidb.Defect_map.t -> t
(** [engine] defaults to the pruned exact engine, [model] to
    {!Sidb.Model.default}. *)

val map : t -> Sidb.Defect_map.t

val blocked : t -> Hexlib.Coord.offset -> bool
(** Memoized and deterministic: equal maps give equal verdicts. *)

val blocked_in_grid : t -> width:int -> height:int -> Hexlib.Coord.offset list
(** All blocked coordinates of a [width] × [height] tile grid, in
    row-major order. *)

val grid_box : width:int -> height:int -> (int * int) * (int * int)
(** Dimer-coordinate bounding box [((lo_n, lo_m), (hi_n, hi_m))] of a
    [width] × [height] tile grid, odd-row shift included — the region
    to draw random defect maps over (cf. {!Sidb.Defect_map.random}). *)

val influence_radius_a : float
(** Cut-off distance (Å) beyond which a charged defect cannot block a
    tile through its potential tail. *)
