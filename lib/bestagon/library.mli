(** The Bestagon gate library: mapping gate-level tiles to dot-accurate
    SiDB realizations (flow step 7).

    Every {!Layout.Tile.t} variant used by the physical design maps to a
    standard hexagonal tile: wire stubs from the {!Scaffold} frame plus a
    logic-canvas design from {!Designs} (west-facing variants are
    mirrored from the canonical east-facing designs).  Applying the
    library to a whole gate-level layout yields the final SiDB layout. *)

type tile_impl = {
  sites : Sidb.Lattice.site list;
      (** Tile-local dots, composable (no inter-tile perturbers). *)
  validated : bool;  (** The canvas is simulation-confirmed. *)
}

val implement : Layout.Tile.t -> (tile_impl, string) result
(** [Error] for tile configurations outside the library (e.g. a gate
    consuming through a south border). *)

val validation_structure : Layout.Tile.t -> Sidb.Bdl.structure option
(** The simulatable harness (with input drivers and output perturbers)
    for a tile, when it carries logic; [None] for empty tiles. *)

val tile_spec : Layout.Tile.t -> (bool array -> bool array) option
(** Expected Boolean behaviour of a tile (input order = port order of
    {!Layout.Tile.inputs}); [None] for empty/[Pi] tiles. *)

val pi_driver : Layout.Tile.t -> value:bool -> Sidb.Lattice.site list option
(** Tile-local external driver perturber for a primary-input pad at the
    given logic value (near position for 1, far for 0); [None] for
    non-[Pi] tiles. *)

val po_output_pair : Layout.Tile.t -> Sidb.Bdl.pair option
(** Tile-local read-out BDL pair of a primary-output pad (the last pair
    of its output stub, the one its perturber balances); [None] for
    non-[Po] tiles. *)

(** {2 Whole-layout application} *)

type sidb_layout = {
  sites : Sidb.Lattice.site list;  (** Global lattice coordinates. *)
  sidb_count : int;
  width_tiles : int;
  height_tiles : int;
  area_nm2 : float;
  all_validated : bool;
      (** Every placed tile's canvas is simulation-confirmed. *)
}

val apply :
  ?inputs:(string * bool) list ->
  Layout.Gate_layout.t ->
  (sidb_layout, string) result
(** Realize a gate-level layout dot-accurately.  Primary-input drivers
    are placed at the near/far position per the given values (default:
    all 0). *)

val area_nm2 : width_tiles:int -> height_tiles:int -> float
(** The Table 1 area model:
    [((60 w - 1) * 0.384) * ((46 h - 1) * 0.384)] nm². *)
