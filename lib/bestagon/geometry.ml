module D = Hexlib.Direction

let tile_columns = 60
let tile_rows = 23
let row_shift_columns = 30

let col_pitch = Sidb.Lattice.lattice_a
let row_pitch = Sidb.Lattice.lattice_b

let port_anchor = function
  | D.North_west -> (15. *. col_pitch, 1. *. row_pitch)
  | D.North_east -> (45. *. col_pitch, 1. *. row_pitch)
  | D.South_west -> (15. *. col_pitch, 21. *. row_pitch)
  | D.South_east -> (45. *. col_pitch, 21. *. row_pitch)
  | D.East | D.West ->
      invalid_arg "Geometry.port_anchor: lateral borders carry no data"

let center = (30. *. col_pitch, 11. *. row_pitch)

let snap (x, y) =
  let n = int_of_float (Float.round (x /. col_pitch)) in
  let cell = int_of_float (Float.floor (y /. row_pitch)) in
  let candidates =
    List.concat_map
      (fun dm -> [ (cell + dm, 0); (cell + dm, 1) ])
      [ -1; 0; 1; 2 ]
  in
  let best =
    List.fold_left
      (fun acc (m, l) ->
        if l <> 0 && l <> 1 then acc
        else
          let s = Sidb.Lattice.site n m l in
          let _, sy = Sidb.Lattice.position s in
          let d = Float.abs (sy -. y) in
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | Some _ | None -> Some (s, d))
      None candidates
  in
  match best with Some (s, _) -> s | None -> assert false

let pair_pitch = 30.72
let intra_pair = 7.68

let bdl_chain ~from ~towards ~pairs =
  let x0, y0 = from and x1, y1 = towards in
  let len = Float.hypot (x1 -. x0) (y1 -. y0) in
  if len <= 0. then invalid_arg "Geometry.bdl_chain: zero direction";
  let ux = (x1 -. x0) /. len and uy = (y1 -. y0) /. len in
  let at s = snap (x0 +. (ux *. s), y0 +. (uy *. s)) in
  List.init pairs (fun k ->
      let base = float_of_int k *. pair_pitch in
      (at base, at (base +. intra_pair)))

let near_distance = 15.36
let far_distance = 46.08
let output_perturber_distance = 23.04

let tile_origin (c : Hexlib.Coord.offset) =
  let shift = if c.row land 1 = 1 then row_shift_columns else 0 in
  ((c.col * tile_columns) + shift, c.row * tile_rows)

let translate_site s ~at =
  let dn, dm = tile_origin at in
  Sidb.Lattice.translate s ~dn ~dm

let min_db_spacing = 5.0

let spacing_violations ?(min_spacing = min_db_spacing) sites =
  (* Sort by dimer row so the inner scan can stop once rows alone put
     the pair out of range; keeps whole-layout audits near-linear. *)
  let arr = Array.of_list sites in
  Array.sort
    (fun (a : Sidb.Lattice.site) (b : Sidb.Lattice.site) ->
      compare (a.m, a.n, a.l) (b.m, b.n, b.l))
    arr;
  let n = Array.length arr in
  let violations = ref [] in
  for i = 0 to n - 1 do
    let si = arr.(i) in
    let j = ref (i + 1) in
    let continue = ref true in
    while !continue && !j < n do
      let sj = arr.(!j) in
      (* Rows alone already separate the pair (minus the possible
         intra-dimer offset): nothing further down can violate. *)
      if
        (float_of_int (sj.m - si.m) *. Sidb.Lattice.lattice_b)
        -. Sidb.Lattice.dimer_gap > min_spacing
      then continue := false
      else begin
        let d = Sidb.Lattice.distance si sj in
        if d < min_spacing then violations := (si, sj, d) :: !violations;
        incr j
      end
    done
  done;
  List.rev !violations
