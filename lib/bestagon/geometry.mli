(** Geometry of Bestagon standard tiles.

    A tile occupies 60 dimer columns × 23 dimer rows of the
    H-Si(100)-2×1 surface (60 × 46 sites at 0.384 nm pitch — the footprint
    that reproduces Table 1's area figures exactly).  Hexagonal tiles are
    pointy-top with odd rows shifted 30 columns right.  Signal ports sit
    on the four data borders; BDL wires run between ports through the
    central logic-design canvas (Fig. 4). *)

val tile_columns : int
(** 60 dimer columns. *)

val tile_rows : int
(** 23 dimer rows (= 46 half-row sites). *)

val row_shift_columns : int
(** Odd-row horizontal shift: 30 columns. *)

val port_anchor : Hexlib.Direction.t -> float * float
(** Ångström position (tile-local) of the first wire dot at a border:
    NW = column 15 near the top, SE = column 45 near the bottom, etc.
    @raise Invalid_argument for [East]/[West] (no data ports). *)

val center : float * float
(** Center of the logic design canvas. *)

val snap : float * float -> Sidb.Lattice.site
(** Nearest lattice site to an Ångström position. *)

val bdl_chain :
  from:(float * float) ->
  towards:(float * float) ->
  pairs:int ->
  (Sidb.Lattice.site * Sidb.Lattice.site) list
(** A BDL wire starting at [from], advancing towards [towards]: pairs at
    30.72 Å pitch with 7.68 Å intra-pair spacing, snapped to the lattice.
    The chain direction is the normalized difference of the two points;
    the chain is not clipped at [towards]. *)

val near_distance : float
(** 15.36 Å — perturber distance emulating logic 1. *)

val far_distance : float
(** 46.08 Å — perturber distance emulating logic 0 (paper Sec. 4.1:
    the perturber is present in both states, nearer for 1). *)

val output_perturber_distance : float
(** 23.04 Å beyond the last output dot. *)

val tile_origin : Hexlib.Coord.offset -> int * int
(** Dimer-coordinate origin (n, m) of a tile in a layout, including the
    odd-row shift. *)

val translate_site : Sidb.Lattice.site -> at:Hexlib.Coord.offset -> Sidb.Lattice.site
(** Place a tile-local site into layout coordinates. *)

val min_db_spacing : float
(** 5.0 Å (0.5 nm) — the minimum separation between two dangling bonds
    below which they no longer act as separate quantum dots.  Every
    distance occurring in the validated Bestagon designs is >= 6.65 Å;
    duplicated sites (0 Å) and same-dimer accidents (2.25 Å) from buggy
    placement land well below. *)

val spacing_violations :
  ?min_spacing:float ->
  Sidb.Lattice.site list ->
  (Sidb.Lattice.site * Sidb.Lattice.site * float) list
(** All pairs of sites closer than [min_spacing] (default
    {!min_db_spacing}), with their distance in Å.  Near-linear in the
    number of sites for layouts (sorted sweep by dimer row). *)
