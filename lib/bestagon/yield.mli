(** Layout-level operational yield under randomized atomic defects.

    Runs the {!Sidb.Defects} fault-injection harness over every logic
    tile of a gate-level layout (via each tile's validation harness from
    {!Library}) and combines the per-tile yields into a layout yield
    under the independent-defects assumption. *)

type tile_yield = {
  coord : Hexlib.Coord.offset;
  label : string;  (** {!Layout.Tile.label} of the simulated tile. *)
  report : Sidb.Defects.yield_report;
}

type t = {
  per_tile : tile_yield list;
  simulated_tiles : int;
  skipped_tiles : int;
      (** Non-empty tiles without a simulation harness or spec (e.g. PI
          pads). *)
  layout_yield : float;  (** Product of per-tile yields. *)
}

val tile_seed : int -> int -> int
(** [tile_seed base i] — deterministic per-tile defect seed: a
    splitmix64-style mix of the run seed and the tile index, so that
    neighboring (seed, index) pairs draw independent defect
    configurations.  (A plain [base + i] would alias tile [i] of seed
    [s] with tile [i-1] of seed [s+1], correlating seed sweeps.) *)

val of_layout :
  ?engine:Sidb.Bdl.engine ->
  ?jobs:int ->
  ?model:Sidb.Model.t ->
  ?params:Sidb.Defects.params ->
  Layout.Gate_layout.t ->
  t
(** Per-tile defect draws are seeded [tile_seed params.seed i] for the
    [i]-th simulated tile, so the whole result is deterministic for a
    fixed seed.  Tiles are simulated by [jobs] domains (default
    {!Parallel.Pool.default_jobs}); the per-tile seeds make the trials
    order-independent, so parallel results are bit-identical to serial
    ones (the layout-yield product is folded in tile order either way).
    [engine] defaults to the pruned exact engine ({!Sidb.Bdl.Pruned}). *)

val pp : Format.formatter -> t -> unit
