(** Layout-level operational yield under randomized atomic defects.

    Runs the {!Sidb.Defects} fault-injection harness over every logic
    tile of a gate-level layout (via each tile's validation harness from
    {!Library}) and combines the per-tile yields into a layout yield
    under the independent-defects assumption. *)

type tile_yield = {
  coord : Hexlib.Coord.offset;
  label : string;  (** {!Layout.Tile.label} of the simulated tile. *)
  report : Sidb.Defects.yield_report;
}

type t = {
  per_tile : tile_yield list;
  simulated_tiles : int;
  skipped_tiles : int;
      (** Non-empty tiles without a simulation harness or spec (e.g. PI
          pads). *)
  layout_yield : float;  (** Product of per-tile yields. *)
}

val tile_seed : int -> int -> int
(** [tile_seed base i] — deterministic per-tile defect seed: a
    splitmix64-style mix of the run seed and the tile index, so that
    neighboring (seed, index) pairs draw independent defect
    configurations.  (A plain [base + i] would alias tile [i] of seed
    [s] with tile [i-1] of seed [s+1], correlating seed sweeps.) *)

val of_layout :
  ?engine:Sidb.Bdl.engine ->
  ?jobs:int ->
  ?model:Sidb.Model.t ->
  ?params:Sidb.Defects.params ->
  Layout.Gate_layout.t ->
  t
(** Per-tile defect draws are seeded [tile_seed params.seed i] for the
    [i]-th simulated tile, so the whole result is deterministic for a
    fixed seed.  Tiles are simulated by [jobs] domains (default
    {!Parallel.Pool.default_jobs}); the per-tile seeds make the trials
    order-independent, so parallel results are bit-identical to serial
    ones (the layout-yield product is folded in tile order either way).
    [engine] defaults to {!Sidb.Bdl.default_engine} (the pruned exact
    engine unless overridden by CLI flag or environment). *)

val pp : Format.formatter -> t -> unit

(** {2 Fixed-map replay}

    Deterministic re-validation of a layout against one known
    {!Sidb.Defect_map} (a scanned surface) instead of Monte-Carlo
    draws: per simulatable tile, map defects coinciding with the
    tile's structural dots are applied as removals (a hit on an input
    perturber or output-pair site fails the tile outright — the
    structure cannot be fabricated as designed), and charged defects
    act through the external potential in the tile-local frame. *)

type map_tile = {
  map_coord : Hexlib.Coord.offset;
  map_label : string;
  map_ok : bool;  (** All input rows read back correctly under the map. *)
  structural_hits : int;
      (** Map defects coinciding with sites of the tile's structure. *)
}

type map_report = {
  tiles : map_tile list;
  map_simulated : int;
  map_skipped : int;  (** Non-empty tiles without a harness (e.g. pads). *)
  failed_tiles : int;
  map_operational : bool;  (** Every simulated tile is ok. *)
  map_yield : float;
      (** Fraction of simulated tiles that are ok (1.0 when none). *)
}

val under_map :
  ?engine:Sidb.Bdl.engine ->
  ?jobs:int ->
  ?model:Sidb.Model.t ->
  Sidb.Defect_map.t ->
  Layout.Gate_layout.t ->
  map_report
(** Replay a fixed defect map over every simulatable tile.  The layout
    must be in the same absolute lattice frame as the map (tile
    [(0,0)] at the lattice origin — defect-aware flows keep this frame
    by not cropping).  Deterministic; tiles are simulated by [jobs]
    domains with bit-identical results at every job count. *)

val pp_map_report : Format.formatter -> map_report -> unit
