module D = Hexlib.Direction
module M = Logic.Mapped

type tile_impl = { sites : Sidb.Lattice.site list; validated : bool }

(* Canonical scaffolds are cached: they are pure functions of the port
   lists. *)
let scaffold_cache : (D.t list * D.t list, Scaffold.t) Hashtbl.t =
  Hashtbl.create 16

let scaffold ins outs =
  match Hashtbl.find_opt scaffold_cache (ins, outs) with
  | Some s -> s
  | None ->
      let s = Scaffold.make ~in_ports:ins ~out_ports:outs () in
      Hashtbl.replace scaffold_cache (ins, outs) s;
      s

let sort_dirs = List.sort D.compare

(* Choose the canvas design and port frame for a tile; [`Mirror] derives
   the west-facing variant.  Returns (ins, outs, design) in scaffold
   port order. *)
let design_for tile =
  match tile with
  | Layout.Tile.Empty -> Error "empty tile has no realization"
  | Layout.Tile.Pi { out; _ } -> (
      (* An input pad is a wire driven from the NW border by the external
         world. *)
      match out with
      | D.South_east -> Ok ([ D.North_west ], [ D.South_east ], Designs.wire_diagonal)
      | D.South_west -> Ok ([ D.North_west ], [ D.South_west ], Designs.wire_straight)
      | D.North_west | D.North_east | D.East | D.West ->
          Error "input pad must emit through a south border")
  | Layout.Tile.Po { inp; _ } -> (
      (* An output pad is a wire into a read-out stub; its output
         perturber is added by [implement]. *)
      match inp with
      | D.North_west -> Ok ([ D.North_west ], [ D.South_east ], Designs.wire_diagonal)
      | D.North_east ->
          Ok ([ D.North_east ], [ D.South_west ], Designs.mirror Designs.wire_diagonal)
      | D.South_east | D.South_west | D.East | D.West ->
          Error "output pad must consume through a north border")
  | Layout.Tile.Wire { segments } -> (
      match List.map (fun (i, o) -> (i, o)) segments with
      | [ (D.North_west, D.South_east) ] ->
          Ok ([ D.North_west ], [ D.South_east ], Designs.wire_diagonal)
      | [ (D.North_east, D.South_west) ] ->
          Ok ([ D.North_east ], [ D.South_west ], Designs.mirror Designs.wire_diagonal)
      | [ (D.North_west, D.South_west) ] ->
          Ok ([ D.North_west ], [ D.South_west ], Designs.wire_straight)
      | [ (D.North_east, D.South_east) ] ->
          Ok ([ D.North_east ], [ D.South_east ], Designs.mirror Designs.wire_straight)
      | [ s1; s2 ] -> (
          match List.sort compare [ s1; s2 ] with
          | [ (D.North_west, D.South_west); (D.North_east, D.South_east) ] ->
              Ok
                ( [ D.North_west; D.North_east ],
                  [ D.South_west; D.South_east ],
                  Designs.double_wire )
          | [ (D.North_west, D.South_east); (D.North_east, D.South_west) ] ->
              Ok
                ( [ D.North_west; D.North_east ],
                  [ D.South_west; D.South_east ],
                  Designs.crossing )
          | _ -> Error "unsupported wire segment combination")
      | _ -> Error "unsupported wire tile")
  | Layout.Tile.Fanout { inp; outs } -> (
      match (inp, sort_dirs outs) with
      | D.North_west, [ D.South_east; D.South_west ] ->
          Ok ([ D.North_west ], [ D.South_west; D.South_east ], Designs.fanout)
      | D.North_east, [ D.South_east; D.South_west ] ->
          Ok
            ( [ D.North_east ],
              [ D.South_west; D.South_east ],
              Designs.mirror Designs.fanout )
      | _ -> Error "unsupported fan-out configuration")
  | Layout.Tile.Gate { fn; ins; outs } -> (
      let two_in_one_out design =
        match (sort_dirs ins, outs) with
        | [ D.North_west; D.North_east ], [ D.South_east ] ->
            Ok ([ D.North_west; D.North_east ], [ D.South_east ], design)
        | [ D.North_west; D.North_east ], [ D.South_west ] ->
            Ok
              ( [ D.North_west; D.North_east ],
                [ D.South_west ],
                Designs.mirror design )
        | _ -> Error (M.fn_name fn ^ ": unsupported port configuration")
      in
      match fn with
      | M.And2 -> two_in_one_out Designs.and2
      | M.Or2 -> two_in_one_out Designs.or2
      | M.Nand2 -> two_in_one_out Designs.nand2
      | M.Nor2 -> two_in_one_out Designs.nor2
      | M.Xor2 -> two_in_one_out Designs.xor2
      | M.Xnor2 -> two_in_one_out Designs.xnor2
      | M.Inv | M.Buf -> (
          let straight = Designs.inv_straight and diagonal = Designs.inv_diagonal in
          let straight, diagonal =
            if fn = M.Buf then (Designs.wire_straight, Designs.wire_diagonal)
            else (straight, diagonal)
          in
          match (ins, outs) with
          | [ D.North_west ], [ D.South_east ] ->
              Ok ([ D.North_west ], [ D.South_east ], diagonal)
          | [ D.North_east ], [ D.South_west ] ->
              Ok ([ D.North_east ], [ D.South_west ], Designs.mirror diagonal)
          | [ D.North_west ], [ D.South_west ] ->
              Ok ([ D.North_west ], [ D.South_west ], straight)
          | [ D.North_east ], [ D.South_east ] ->
              Ok ([ D.North_east ], [ D.South_east ], Designs.mirror straight)
          | _ -> Error (M.fn_name fn ^ ": unsupported port configuration"))
      | M.Ha -> (
          (* Port order: sum first, carry second. *)
          match (sort_dirs ins, outs) with
          | [ D.North_west; D.North_east ], [ D.South_west; D.South_east ] ->
              Ok
                ( [ D.North_west; D.North_east ],
                  [ D.South_west; D.South_east ],
                  Designs.half_adder )
          | [ D.North_west; D.North_east ], [ D.South_east; D.South_west ] ->
              Ok
                ( [ D.North_west; D.North_east ],
                  [ D.South_east; D.South_west ],
                  Designs.mirror Designs.half_adder )
          | _ -> Error "HA: unsupported port configuration"))

let implement tile =
  match design_for tile with
  | Error e -> Error e
  | Ok (ins, outs, design) ->
      let frame = scaffold ins outs in
      let sites = frame.Scaffold.stub_dots @ design.Designs.canvas in
      (* Output pads keep their read-out perturber: nothing is attached
         downstream. *)
      let sites =
        if Layout.Tile.is_po tile then
          sites @ frame.Scaffold.output_perturbers
        else sites
      in
      Ok { sites; validated = design.Designs.validated }

let validation_structure tile =
  match design_for tile with
  | Error _ -> None
  | Ok (ins, outs, design) ->
      let frame = scaffold ins outs in
      Some
        (Scaffold.structure frame ~name:(Layout.Tile.label tile)
           ~canvas:design.Designs.canvas)

let tile_spec tile =
  match tile with
  | Layout.Tile.Empty | Layout.Tile.Pi _ -> None
  | Layout.Tile.Po _ -> Some (fun i -> [| i.(0) |])
  | Layout.Tile.Wire { segments = [ _ ] } -> Some (fun i -> [| i.(0) |])
  | Layout.Tile.Wire { segments = [ s1; s2 ] } -> (
      (* Output order in the validation scaffold is [SW; SE]. *)
      match List.sort compare [ s1; s2 ] with
      | [ (D.North_west, D.South_west); (D.North_east, D.South_east) ] ->
          Some (fun i -> [| i.(0); i.(1) |])
      | [ (D.North_west, D.South_east); (D.North_east, D.South_west) ] ->
          Some (fun i -> [| i.(1); i.(0) |])
      | _ -> None)
  | Layout.Tile.Wire _ -> None
  | Layout.Tile.Fanout _ -> Some (fun i -> [| i.(0); i.(0) |])
  | Layout.Tile.Gate { fn; _ } -> (
      match fn with
      | M.And2 -> Some (fun i -> [| i.(0) && i.(1) |])
      | M.Or2 -> Some (fun i -> [| i.(0) || i.(1) |])
      | M.Nand2 -> Some (fun i -> [| not (i.(0) && i.(1)) |])
      | M.Nor2 -> Some (fun i -> [| not (i.(0) || i.(1)) |])
      | M.Xor2 -> Some (fun i -> [| i.(0) <> i.(1) |])
      | M.Xnor2 -> Some (fun i -> [| i.(0) = i.(1) |])
      | M.Inv -> Some (fun i -> [| not i.(0) |])
      | M.Buf -> Some (fun i -> [| i.(0) |])
      | M.Ha -> Some (fun i -> [| i.(0) <> i.(1); i.(0) && i.(1) |]))

let pi_driver tile ~value =
  match tile with
  | Layout.Tile.Pi _ -> (
      match design_for tile with
      | Error _ -> None
      | Ok (ins, outs, _) -> (
          let frame = scaffold ins outs in
          match frame.Scaffold.drivers with
          | [| driver |] ->
              Some (if value then driver.Sidb.Bdl.near else driver.Sidb.Bdl.far)
          | _ -> None))
  | _ -> None

let po_output_pair tile =
  match tile with
  | Layout.Tile.Po _ -> (
      match design_for tile with
      | Error _ -> None
      | Ok (ins, outs, _) -> (
          let frame = scaffold ins outs in
          match frame.Scaffold.output_pairs with
          | [| pair |] -> Some pair
          | _ -> None))
  | _ -> None

type sidb_layout = {
  sites : Sidb.Lattice.site list;
  sidb_count : int;
  width_tiles : int;
  height_tiles : int;
  area_nm2 : float;
  all_validated : bool;
}

let area_nm2 ~width_tiles ~height_tiles =
  ((60. *. float_of_int width_tiles) -. 1.)
  *. 0.384
  *. (((46. *. float_of_int height_tiles) -. 1.) *. 0.384)

let apply ?(inputs = []) layout =
  let error = ref None in
  let sites = ref [] and all_validated = ref true in
  Layout.Gate_layout.iter layout (fun c tile ->
      if !error = None && not (Layout.Tile.is_empty tile) then
        match implement tile with
        | Error e ->
            error :=
              Some
                (Format.asprintf "%a: %s" Hexlib.Coord.pp_offset c e)
        | Ok impl ->
            if not impl.validated then all_validated := false;
            let placed =
              List.map (Geometry.translate_site ~at:c) impl.sites
            in
            sites := placed :: !sites;
            (* Input pads get their external driver perturber. *)
            (match tile with
            | Layout.Tile.Pi { name; _ } -> (
                let value =
                  Option.value ~default:false (List.assoc_opt name inputs)
                in
                match pi_driver tile ~value with
                | Some pert ->
                    sites :=
                      List.map (Geometry.translate_site ~at:c) pert :: !sites
                | None -> ())
            | Layout.Tile.Empty | Layout.Tile.Po _ | Layout.Tile.Gate _
            | Layout.Tile.Wire _ | Layout.Tile.Fanout _ ->
                ()));
  match !error with
  | Some e -> Error e
  | None ->
      let all_sites = List.concat (List.rev !sites) in
      let stats = Layout.Gate_layout.stats layout in
      let w = stats.Layout.Gate_layout.bounding_width
      and h = stats.Layout.Gate_layout.bounding_height in
      Ok
        {
          sites = all_sites;
          sidb_count = List.length all_sites;
          width_tiles = w;
          height_tiles = h;
          area_nm2 = area_nm2 ~width_tiles:w ~height_tiles:h;
          all_validated = !all_validated;
        }
