(** SAT-based combinational equivalence checking (flow step 5, after
    [50]).

    A miter is built over the union of two networks: primary inputs are
    matched by name, each pair of like-named outputs is XORed, and the
    disjunction of all XORs is asserted; unsatisfiability of the miter
    proves equivalence, a model is a counterexample input assignment. *)

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
      (** Input assignment (by name) on which the designs differ. *)
  | Interface_mismatch of string
      (** The designs do not have the same input/output names. *)
  | Undecided of Sat.Budget.reason
      (** The miter solve was interrupted by its budget; neither
          equivalence nor a counterexample was established. *)

(** {2 Certificates}

    A certificate makes a verdict independently checkable: it carries
    the miter CNF itself plus either a {!Sat.Drat} refutation proof
    (for [Equivalent]) or the satisfying model (for [Counterexample]).
    {!replay} validates the evidence with machinery disjoint from the
    CDCL solver that produced it. *)

type evidence =
  | Unsat_proof of Sat.Drat.proof
      (** Refutation of the miter: the designs never differ. *)
  | Sat_model of bool array
      (** Miter model (indexed by [var - 1]) exhibiting a difference. *)

type certificate = {
  cert_nvars : int;
  cert_clauses : int list list;  (** The miter CNF, DIMACS literals. *)
  evidence : evidence;
}

val check :
  ?budget:Sat.Budget.t -> Logic.Network.t -> Logic.Network.t -> verdict
(** A tripped budget yields [Undecided] — never an exception. *)

val check_brute_force :
  ?jobs:int -> Logic.Network.t -> Logic.Network.t -> verdict
(** Miter by exhaustive row enumeration instead of SAT: simulate both
    networks on all [2^n] input rows (inputs and outputs matched by
    name) and compare.  The rows are scanned by [jobs] domains (default
    {!Parallel.Pool.default_jobs}) in fixed chunks whose first hits are
    merged in order, so the verdict — including {e which}
    counterexample: always the lowest differing row — is bit-identical
    to the serial scan.  An independent oracle for {!check} on small
    interfaces.
    @raise Invalid_argument beyond 20 primary inputs. *)

val check_certified :
  ?budget:Sat.Budget.t ->
  Logic.Network.t ->
  Logic.Network.t ->
  verdict * certificate option
(** Like {!check} with proof logging on: [Equivalent] and
    [Counterexample] verdicts come with a certificate;
    [Interface_mismatch] and [Undecided] have none. *)

val replay : certificate -> (unit, string) result
(** Validate a certificate: run the DRAT checker over the recorded miter
    for [Unsat_proof], or evaluate every miter clause under the model
    for [Sat_model]. *)

val check_layout :
  ?budget:Sat.Budget.t ->
  Logic.Network.t -> Layout.Gate_layout.t -> (verdict, string) result
(** Extract the layout's network and compare ([Error] when extraction
    fails structurally). *)

val check_layout_certified :
  ?budget:Sat.Budget.t ->
  Logic.Network.t ->
  Layout.Gate_layout.t ->
  (verdict * certificate option, string) result

val verdict_to_string : verdict -> string

val network_to_cnf :
  Sat.Cnf.t ->
  Logic.Network.t ->
  pi_literals:(string -> Sat.Solver.lit) ->
  (string * Sat.Solver.lit) list
(** Tseitin-encode a network over the given input literals; returns one
    literal per primary output.  Exposed for reuse (e.g. SAT-based
    ATPG-style experiments and tests). *)
