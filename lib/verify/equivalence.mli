(** SAT-based combinational equivalence checking (flow step 5, after
    [50]).

    A miter is built over the union of two networks: primary inputs are
    matched by name, each pair of like-named outputs is XORed, and the
    disjunction of all XORs is asserted; unsatisfiability of the miter
    proves equivalence, a model is a counterexample input assignment. *)

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
      (** Input assignment (by name) on which the designs differ. *)
  | Interface_mismatch of string
      (** The designs do not have the same input/output names. *)
  | Undecided of Sat.Budget.reason
      (** The miter solve was interrupted by its budget; neither
          equivalence nor a counterexample was established. *)

val check :
  ?budget:Sat.Budget.t -> Logic.Network.t -> Logic.Network.t -> verdict
(** A tripped budget yields [Undecided] — never an exception. *)

val check_layout :
  ?budget:Sat.Budget.t ->
  Logic.Network.t -> Layout.Gate_layout.t -> (verdict, string) result
(** Extract the layout's network and compare ([Error] when extraction
    fails structurally). *)

val verdict_to_string : verdict -> string

val network_to_cnf :
  Sat.Cnf.t ->
  Logic.Network.t ->
  pi_literals:(string -> Sat.Solver.lit) ->
  (string * Sat.Solver.lit) list
(** Tseitin-encode a network over the given input literals; returns one
    literal per primary output.  Exposed for reuse (e.g. SAT-based
    ATPG-style experiments and tests). *)
