type spec = {
  pis : string list;
  pos : string list;
  eval : bool array -> bool array;
}

let of_network ntk =
  let module N = Logic.Network in
  {
    pis = List.init (N.num_pis ntk) (N.pi_name ntk);
    pos = List.map fst (N.pos ntk);
    eval = (fun inputs -> N.eval ntk inputs);
  }

let of_mapped mapped =
  let module M = Logic.Mapped in
  {
    pis = List.init (M.num_inputs mapped) (M.input_name mapped);
    pos = List.map fst (M.outputs mapped);
    eval = (fun inputs -> M.eval mapped inputs);
  }

let show_assignment pis inputs =
  String.concat ","
    (List.mapi (fun i n -> Printf.sprintf "%s=%b" n inputs.(i)) pis)

let equal_behavior ?(max_exhaustive_pis = 12) ?(random_vectors = 256)
    ?(seed = 0x5eed) a b =
  let sorted = List.sort compare in
  if sorted a.pis <> sorted b.pis then
    Error
      (Printf.sprintf "input names differ: {%s} vs {%s}"
         (String.concat "," a.pis)
         (String.concat "," b.pis))
  else if sorted a.pos <> sorted b.pos then
    Error
      (Printf.sprintf "output names differ: {%s} vs {%s}"
         (String.concat "," a.pos)
         (String.concat "," b.pos))
  else begin
    let n = List.length a.pis in
    let a_pis = Array.of_list a.pis in
    (* Input permutation: b's i-th input is a's [perm.(i)]-th. *)
    let index_of name =
      let rec go i = if a_pis.(i) = name then i else go (i + 1) in
      go 0
    in
    let perm = Array.of_list (List.map index_of b.pis) in
    (* Output indices matched by name. *)
    let out_pairs =
      List.map
        (fun name ->
          let pos_of l =
            let rec go i = function
              | [] -> assert false
              | x :: rest -> if x = name then i else go (i + 1) rest
            in
            go 0 l
          in
          (name, pos_of a.pos, pos_of b.pos))
        a.pos
    in
    let try_vector inputs =
      let outs_a = a.eval inputs in
      let inputs_b = Array.init n (fun i -> inputs.(perm.(i))) in
      let outs_b = b.eval inputs_b in
      List.fold_left
        (fun acc (name, ia, ib) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              if outs_a.(ia) = outs_b.(ib) then Ok ()
              else
                Error
                  (Printf.sprintf "output %s differs on %s (%b vs %b)" name
                     (show_assignment a.pis inputs)
                     outs_a.(ia) outs_b.(ib)))
        (Ok ()) out_pairs
    in
    let result = ref (Ok ()) in
    if n <= max_exhaustive_pis then begin
      let row = ref 0 in
      while !result = Ok () && !row < 1 lsl n do
        let inputs = Array.init n (fun i -> (!row lsr i) land 1 = 1) in
        result := try_vector inputs;
        incr row
      done
    end
    else begin
      let st = Random.State.make [| seed |] in
      let k = ref 0 in
      while !result = Ok () && !k < random_vectors do
        let inputs = Array.init n (fun _ -> Random.State.bool st) in
        result := try_vector inputs;
        incr k
      done
    end;
    !result
  end

let check_rewrite ~specification ~optimized =
  match equal_behavior (of_network specification) (of_network optimized) with
  | Ok () -> Ok ()
  | Error msg -> Error ("rewriting changed behavior: " ^ msg)

let check_mapping ~specification ~mapped =
  match equal_behavior (of_network specification) (of_mapped mapped) with
  | Ok () -> Ok ()
  | Error msg -> Error ("technology mapping changed behavior: " ^ msg)
