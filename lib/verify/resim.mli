(** Cross-checking flow stages by direct re-simulation.

    The paranoid flow mode replays each synthesis stage against the
    original specification by evaluating both sides on concrete input
    vectors — exhaustively for small interfaces, on fixed-seed random
    vectors beyond — matching primary inputs and outputs by name.  This
    is deliberately independent of the SAT-based equivalence checker: a
    bug in the CNF encoding cannot hide a bug in the rewriter. *)

type spec = {
  pis : string list;  (** Primary input names, in evaluation order. *)
  pos : string list;  (** Primary output names, in evaluation order. *)
  eval : bool array -> bool array;
}

val of_network : Logic.Network.t -> spec
val of_mapped : Logic.Mapped.t -> spec

val equal_behavior :
  ?max_exhaustive_pis:int ->
  ?random_vectors:int ->
  ?seed:int ->
  spec ->
  spec ->
  (unit, string) result
(** [Ok ()] when both specs agree on every probed vector; [Error]
    carries the differing output and the input assignment.  Exhaustive
    up to [max_exhaustive_pis] inputs (default 12 — every Table 1
    benchmark qualifies), [random_vectors] fixed-seed samples beyond. *)

val check_rewrite :
  specification:Logic.Network.t -> optimized:Logic.Network.t ->
  (unit, string) result

val check_mapping :
  specification:Logic.Network.t -> mapped:Logic.Mapped.t ->
  (unit, string) result
