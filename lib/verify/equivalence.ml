module N = Logic.Network

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
  | Interface_mismatch of string
  | Undecided of Sat.Budget.reason

type evidence =
  | Unsat_proof of Sat.Drat.proof
  | Sat_model of bool array

type certificate = {
  cert_nvars : int;
  cert_clauses : int list list;
  evidence : evidence;
}

let network_to_cnf f ntk ~pi_literals =
  let lits = Array.make (N.num_nodes ntk) 0 in
  let signal_lit s =
    let l = lits.(N.node_of_signal s) in
    if N.is_complemented s then -l else l
  in
  for id = 0 to N.num_nodes ntk - 1 do
    match N.kind ntk id with
    | N.Const -> lits.(id) <- Sat.Cnf.const_false f
    | N.Pi i -> lits.(id) <- pi_literals (N.pi_name ntk i)
    | N.And (a, b) -> lits.(id) <- Sat.Cnf.and_ f (signal_lit a) (signal_lit b)
    | N.Xor (a, b) -> lits.(id) <- Sat.Cnf.xor_ f (signal_lit a) (signal_lit b)
  done;
  List.map (fun (name, s) -> (name, signal_lit s)) (N.pos ntk)

let sorted_names l = List.sort compare l

let run ~certify ~budget ntk1 ntk2 =
  let pi_names ntk = List.init (N.num_pis ntk) (N.pi_name ntk) in
  let po_names ntk = List.map fst (N.pos ntk) in
  if sorted_names (pi_names ntk1) <> sorted_names (pi_names ntk2) then
    ( Interface_mismatch
        (Printf.sprintf "inputs differ: {%s} vs {%s}"
           (String.concat "," (pi_names ntk1))
           (String.concat "," (pi_names ntk2))),
      None )
  else if sorted_names (po_names ntk1) <> sorted_names (po_names ntk2) then
    ( Interface_mismatch
        (Printf.sprintf "outputs differ: {%s} vs {%s}"
           (String.concat "," (po_names ntk1))
           (String.concat "," (po_names ntk2))),
      None )
  else begin
    let f = Sat.Cnf.create () in
    if certify then Sat.Solver.enable_proof (Sat.Cnf.solver f);
    let pi_table = Hashtbl.create 16 in
    let pi_literals name =
      match Hashtbl.find_opt pi_table name with
      | Some l -> l
      | None ->
          let l = Sat.Cnf.fresh f in
          Hashtbl.replace pi_table name l;
          l
    in
    let outs1 = network_to_cnf f ntk1 ~pi_literals in
    let outs2 = network_to_cnf f ntk2 ~pi_literals in
    let diffs =
      List.map
        (fun (name, l1) ->
          let l2 =
            match List.assoc_opt name outs2 with
            | Some l -> l
            | None -> assert false (* names checked above *)
          in
          Sat.Cnf.xor_ f l1 l2)
        outs1
    in
    Sat.Cnf.add_clause f diffs;
    let solver = Sat.Cnf.solver f in
    let certificate evidence =
      if certify then
        Some
          {
            cert_nvars = Sat.Cnf.num_vars f;
            cert_clauses = Sat.Cnf.clauses f;
            evidence;
          }
      else None
    in
    let k = Sat.Portfolio.default_k () in
    if k > 1 then begin
      (* Portfolio path: preprocess the miter once, race k diversified
         solvers.  The certificate still carries the *original* miter
         clauses — the portfolio's proof includes the simplification
         trace, and its model is reconstructed over eliminated
         variables, so [replay] works unchanged. *)
      let p =
        Sat.Portfolio.create ~k ~certify ~nvars:(Sat.Cnf.num_vars f)
          (Sat.Cnf.clauses f)
      in
      match Sat.Portfolio.solve ~budget p with
      | Sat.Solver.Unsat ->
          (Equivalent, certificate (Unsat_proof (Sat.Portfolio.proof p)))
      | Sat.Solver.Sat ->
          let cex =
            Hashtbl.fold
              (fun name l acc -> (name, Sat.Portfolio.value p l) :: acc)
              pi_table []
            |> List.sort compare
          in
          (Counterexample cex, certificate (Sat_model (Sat.Portfolio.model p)))
      | Sat.Solver.Unknown reason -> (Undecided reason, None)
    end
    else
      match Sat.Solver.solve ~budget solver with
      | Sat.Solver.Unsat ->
          (Equivalent, certificate (Unsat_proof (Sat.Solver.proof solver)))
      | Sat.Solver.Sat ->
          let cex =
            Hashtbl.fold
              (fun name l acc -> (name, Sat.Solver.value solver l) :: acc)
              pi_table []
            |> List.sort compare
          in
          ( Counterexample cex,
            certificate (Sat_model (Sat.Solver.model solver)) )
      | Sat.Solver.Unknown reason -> (Undecided reason, None)
  end

let check ?(budget = Sat.Budget.unlimited) ntk1 ntk2 =
  fst (run ~certify:false ~budget ntk1 ntk2)

let check_brute_force ?jobs ntk1 ntk2 =
  let pi_names ntk = List.init (N.num_pis ntk) (N.pi_name ntk) in
  let po_names ntk = List.map fst (N.pos ntk) in
  if sorted_names (pi_names ntk1) <> sorted_names (pi_names ntk2) then
    Interface_mismatch
      (Printf.sprintf "inputs differ: {%s} vs {%s}"
         (String.concat "," (pi_names ntk1))
         (String.concat "," (pi_names ntk2)))
  else if sorted_names (po_names ntk1) <> sorted_names (po_names ntk2) then
    Interface_mismatch
      (Printf.sprintf "outputs differ: {%s} vs {%s}"
         (String.concat "," (po_names ntk1))
         (String.concat "," (po_names ntk2)))
  else begin
    let n = N.num_pis ntk1 in
    if n > 20 then
      invalid_arg "Equivalence.check_brute_force: more than 20 primary inputs";
    let names1 = Array.of_list (pi_names ntk1) in
    (* ntk2's input i is ntk1's input perm.(i), matched by name. *)
    let index_of name =
      let rec go i = if names1.(i) = name then i else go (i + 1) in
      go 0
    in
    let perm = Array.of_list (List.map index_of (pi_names ntk2)) in
    let out_pairs =
      List.map
        (fun (name, _) ->
          let pos_of l =
            let rec go i = function
              | [] -> assert false
              | (x, _) :: rest -> if x = name then i else go (i + 1) rest
            in
            go 0 l
          in
          (pos_of (N.pos ntk1), pos_of (N.pos ntk2)))
        (N.pos ntk1)
    in
    let row_differs row =
      let inputs = Array.init n (fun i -> (row lsr i) land 1 = 1) in
      let outs1 = N.eval ntk1 inputs in
      let outs2 = N.eval ntk2 (Array.init n (fun i -> inputs.(perm.(i)))) in
      List.exists (fun (i1, i2) -> outs1.(i1) <> outs2.(i2)) out_pairs
    in
    let total = 1 lsl n in
    (* Fixed chunking (independent of the worker count): each chunk
       reports its first differing row, the ordered merge keeps the
       lowest — so the counterexample is the lowest differing row
       whatever [jobs] is, bit-identical to the serial scan. *)
    let nchunks = min total 64 in
    let per_chunk = (total + nchunks - 1) / nchunks in
    let first_diff =
      Parallel.Pool.map_reduce ?jobs ~n:nchunks ~init:None
        ~map:(fun c ->
          let lo = c * per_chunk and hi = min total ((c + 1) * per_chunk) in
          let rec scan row =
            if row >= hi then None
            else if row_differs row then Some row
            else scan (row + 1)
          in
          scan lo)
        ~reduce:(fun acc found ->
          match (acc, found) with
          | Some a, Some b -> Some (min a b)
          | Some a, None -> Some a
          | None, r -> r)
    in
    match first_diff with
    | None -> Equivalent
    | Some row ->
        Counterexample
          (List.sort compare
             (List.init n (fun i -> (names1.(i), (row lsr i) land 1 = 1))))
  end

let check_certified ?(budget = Sat.Budget.unlimited) ntk1 ntk2 =
  run ~certify:true ~budget ntk1 ntk2

let check_layout ?budget ntk layout =
  match Extract.network layout with
  | Error msg -> Error msg
  | Ok extracted -> Ok (check ?budget ntk extracted)

let check_layout_certified ?(budget = Sat.Budget.unlimited) ntk layout =
  match Extract.network layout with
  | Error msg -> Error msg
  | Ok extracted -> Ok (check_certified ~budget ntk extracted)

let replay cert =
  match cert.evidence with
  | Unsat_proof proof -> begin
      match
        Sat.Drat.check ~nvars:cert.cert_nvars ~clauses:cert.cert_clauses proof
      with
      | Sat.Drat.Valid -> Ok ()
      | Sat.Drat.Invalid _ as r ->
          Error
            (Format.asprintf "UNSAT proof rejected: %a" Sat.Drat.pp_result r)
    end
  | Sat_model model ->
      if Array.length model < cert.cert_nvars then
        Error "counterexample model does not cover all variables"
      else begin
        let lit_true l =
          if l > 0 then model.(l - 1) else not model.(-l - 1)
        in
        let rec find_unsat i = function
          | [] -> None
          | c :: rest ->
              if List.exists lit_true c then find_unsat (i + 1) rest
              else Some i
        in
        match find_unsat 0 cert.cert_clauses with
        | None -> Ok ()
        | Some i ->
            Error
              (Printf.sprintf
                 "counterexample model falsifies miter clause %d" i)
      end

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Counterexample cex ->
      Printf.sprintf "counterexample %s"
        (String.concat ","
           (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) cex))
  | Interface_mismatch m -> Printf.sprintf "interface mismatch (%s)" m
  | Undecided r ->
      Printf.sprintf "undecided (%s)" (Sat.Budget.reason_to_string r)
