module N = Logic.Network

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
  | Interface_mismatch of string
  | Undecided of Sat.Budget.reason

let network_to_cnf f ntk ~pi_literals =
  let lits = Array.make (N.num_nodes ntk) 0 in
  let signal_lit s =
    let l = lits.(N.node_of_signal s) in
    if N.is_complemented s then -l else l
  in
  for id = 0 to N.num_nodes ntk - 1 do
    match N.kind ntk id with
    | N.Const -> lits.(id) <- Sat.Cnf.const_false f
    | N.Pi i -> lits.(id) <- pi_literals (N.pi_name ntk i)
    | N.And (a, b) -> lits.(id) <- Sat.Cnf.and_ f (signal_lit a) (signal_lit b)
    | N.Xor (a, b) -> lits.(id) <- Sat.Cnf.xor_ f (signal_lit a) (signal_lit b)
  done;
  List.map (fun (name, s) -> (name, signal_lit s)) (N.pos ntk)

let sorted_names l = List.sort compare l

let check ?(budget = Sat.Budget.unlimited) ntk1 ntk2 =
  let pi_names ntk = List.init (N.num_pis ntk) (N.pi_name ntk) in
  let po_names ntk = List.map fst (N.pos ntk) in
  if sorted_names (pi_names ntk1) <> sorted_names (pi_names ntk2) then
    Interface_mismatch
      (Printf.sprintf "inputs differ: {%s} vs {%s}"
         (String.concat "," (pi_names ntk1))
         (String.concat "," (pi_names ntk2)))
  else if sorted_names (po_names ntk1) <> sorted_names (po_names ntk2) then
    Interface_mismatch
      (Printf.sprintf "outputs differ: {%s} vs {%s}"
         (String.concat "," (po_names ntk1))
         (String.concat "," (po_names ntk2)))
  else begin
    let f = Sat.Cnf.create () in
    let pi_table = Hashtbl.create 16 in
    let pi_literals name =
      match Hashtbl.find_opt pi_table name with
      | Some l -> l
      | None ->
          let l = Sat.Cnf.fresh f in
          Hashtbl.replace pi_table name l;
          l
    in
    let outs1 = network_to_cnf f ntk1 ~pi_literals in
    let outs2 = network_to_cnf f ntk2 ~pi_literals in
    let diffs =
      List.map
        (fun (name, l1) ->
          let l2 =
            match List.assoc_opt name outs2 with
            | Some l -> l
            | None -> assert false (* names checked above *)
          in
          Sat.Cnf.xor_ f l1 l2)
        outs1
    in
    Sat.Cnf.add_clause f diffs;
    let solver = Sat.Cnf.solver f in
    match Sat.Solver.solve ~budget solver with
    | Sat.Solver.Unsat -> Equivalent
    | Sat.Solver.Sat ->
        Counterexample
          (Hashtbl.fold
             (fun name l acc -> (name, Sat.Solver.value solver l) :: acc)
             pi_table []
          |> List.sort compare)
    | Sat.Solver.Unknown reason -> Undecided reason
  end

let check_layout ?budget ntk layout =
  match Extract.network layout with
  | Error msg -> Error msg
  | Ok extracted -> Ok (check ?budget ntk extracted)

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Counterexample cex ->
      Printf.sprintf "counterexample %s"
        (String.concat ","
           (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) cex))
  | Interface_mismatch m -> Printf.sprintf "interface mismatch (%s)" m
  | Undecided r ->
      Printf.sprintf "undecided (%s)" (Sat.Budget.reason_to_string r)
