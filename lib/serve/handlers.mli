(** Job execution: budgets, the retry/degradation ladder, and total
    exception-to-structured-error conversion.

    {!run_job} is the single entry point for every admitted job — the
    server's batch dispatcher and the CLI's [--json] one-shot mode both
    call it, which is what guarantees the two emit byte-identical
    response schemas.

    Resilience contract:
    - each job runs under its own {!Core.Budget} derived from the
      request's [timeout_ms], clamped to the server-wide ceiling
      [max_timeout_ms]; the budget also carries the request's
      [conflict_budget] and (in chaos mode) the injected cancellation
      flag;
    - a {e transient} failure — the flow tripping on [Deadline] or
      [Conflicts], but never [Cancelled] — is retried under the wall
      clock still remaining to the request, after a capped exponential
      backoff ([backoff_base_ms * 2^attempt], capped at
      [backoff_cap_ms]), stepping down the engine ladder
      exact → exact-with-fallback → scalable; every step taken is
      recorded in the response's ["degradation"] field and counted in
      {!Metrics};
    - {e any} exception escaping a job (including injected
      [Chaos_raise] worker deaths) is converted to a structured
      [{"status":"error","error":{"kind":"crash",…}}] response —
      {!run_job} never raises. *)

type ctx = {
  memo : Core.Flow.Memo.t;
  metrics : Metrics.t;
  max_timeout_ms : float;
      (** Server-wide ceiling; also the default when a request gives no
          [timeout_ms]. *)
  max_retries : int;  (** Retries (not attempts) per job. *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  sleep : float -> unit;
      (** Backoff hook (seconds); injectable so tests and the bench can
          observe or skip real sleeping. *)
}

val default_ctx : unit -> ctx
(** Fresh memo and metrics; 60 s ceiling, 2 retries, 10 ms base / 200 ms
    cap backoff, [Unix.sleepf]. *)

val run_job : ctx -> id:Json.t -> Protocol.job -> Json.t
(** Execute one job to a complete response object (latency measured and
    recorded here).  Never raises. *)
