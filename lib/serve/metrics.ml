let buckets_ms = [| 1.; 3.; 10.; 30.; 100.; 300.; 1000.; 3000.; 10000. |]

type hist = {
  mutable count : int;
  mutable ok : int;
  mutable errors : int;
  counts : int array;  (* length = Array.length buckets_ms + 1 (overflow) *)
  mutable sum_ms : float;
  mutable max_ms : float;
}

type t = {
  mutex : Mutex.t;
  by_kind : (string, hist) Hashtbl.t;
  mutable retries : int;
  mutable degraded : int;
  mutable shed : int;
  mutable protocol_errors : int;
  mutable solver : Sat.Solver.stats;
}

let create () =
  {
    mutex = Mutex.create ();
    by_kind = Hashtbl.create 8;
    retries = 0;
    degraded = 0;
    shed = 0;
    protocol_errors = 0;
    solver = Sat.Solver.empty_stats;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let hist_for t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some h -> h
  | None ->
      let h =
        {
          count = 0;
          ok = 0;
          errors = 0;
          counts = Array.make (Array.length buckets_ms + 1) 0;
          sum_ms = 0.;
          max_ms = 0.;
        }
      in
      Hashtbl.add t.by_kind kind h;
      h

let bucket_index ms =
  let n = Array.length buckets_ms in
  let rec go i = if i >= n then n else if ms <= buckets_ms.(i) then i else go (i + 1) in
  go 0

let record t ~kind ~status ~latency_ms =
  locked t (fun () ->
      let h = hist_for t kind in
      h.count <- h.count + 1;
      if status = "ok" then h.ok <- h.ok + 1 else h.errors <- h.errors + 1;
      let ms = Float.max 0. latency_ms in
      h.counts.(bucket_index ms) <- h.counts.(bucket_index ms) + 1;
      h.sum_ms <- h.sum_ms +. ms;
      if ms > h.max_ms then h.max_ms <- ms)

let incr_retries t = locked t (fun () -> t.retries <- t.retries + 1)
let incr_degraded t = locked t (fun () -> t.degraded <- t.degraded + 1)
let incr_shed t = locked t (fun () -> t.shed <- t.shed + 1)

let incr_protocol_errors t =
  locked t (fun () -> t.protocol_errors <- t.protocol_errors + 1)

let record_solver t stats =
  locked t (fun () -> t.solver <- Sat.Solver.add_stats t.solver stats)

(* Upper bound of the bucket holding quantile [q]; the overflow bucket
   reports the max latency seen. *)
let quantile h q =
  if h.count = 0 then 0.
  else begin
    let target = int_of_float (Float.round (q *. float_of_int h.count)) in
    let target = if target < 1 then 1 else target in
    let n = Array.length buckets_ms in
    let rec go i acc =
      if i > n then h.max_ms
      else
        let acc = acc + h.counts.(i) in
        if acc >= target then (if i = n then h.max_ms else buckets_ms.(i))
        else go (i + 1) acc
    in
    go 0 0
  end

let hist_json h =
  Json.Obj
    [
      ("count", Json.Num (float_of_int h.count));
      ("ok", Json.Num (float_of_int h.ok));
      ("errors", Json.Num (float_of_int h.errors));
      ("mean_ms", Json.Num (if h.count = 0 then 0. else h.sum_ms /. float_of_int h.count));
      ("max_ms", Json.Num h.max_ms);
      ("p50_ms", Json.Num (quantile h 0.50));
      ("p90_ms", Json.Num (quantile h 0.90));
      ("p99_ms", Json.Num (quantile h 0.99));
      ( "buckets_ms",
        Json.List (Array.to_list (Array.map (fun b -> Json.Num b) buckets_ms)) );
      ( "bucket_counts",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Num (float_of_int c)) h.counts))
      );
    ]

let to_json t ~uptime_s ~memo =
  locked t (fun () ->
      let open Core.Flow.Memo in
      let kinds =
        Hashtbl.fold (fun kind h acc -> (kind, hist_json h) :: acc) t.by_kind []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let total, ok, errors =
        Hashtbl.fold
          (fun _ h (t', o, e) -> (t' + h.count, o + h.ok, e + h.errors))
          t.by_kind (0, 0, 0)
      in
      Json.Obj
        [
          ("uptime_s", Json.Num uptime_s);
          ("served", Json.Num (float_of_int total));
          ("ok", Json.Num (float_of_int ok));
          ("errors", Json.Num (float_of_int errors));
          ("retries", Json.Num (float_of_int t.retries));
          ("degraded", Json.Num (float_of_int t.degraded));
          ("shed", Json.Num (float_of_int t.shed));
          ("protocol_errors", Json.Num (float_of_int t.protocol_errors));
          ( "cache",
            Json.Obj
              [
                ("synth_hits", Json.Num (float_of_int memo.synth_hits));
                ("synth_misses", Json.Num (float_of_int memo.synth_misses));
                ( "synth_hit_rate",
                  Json.Num (hit_rate ~hits:memo.synth_hits ~misses:memo.synth_misses) );
                ("layout_hits", Json.Num (float_of_int memo.layout_hits));
                ("layout_misses", Json.Num (float_of_int memo.layout_misses));
                ( "layout_hit_rate",
                  Json.Num (hit_rate ~hits:memo.layout_hits ~misses:memo.layout_misses)
                );
                ("verdict_hits", Json.Num (float_of_int memo.verdict_hits));
                ("verdict_misses", Json.Num (float_of_int memo.verdict_misses));
                ( "verdict_hit_rate",
                  Json.Num
                    (hit_rate ~hits:memo.verdict_hits ~misses:memo.verdict_misses) );
              ] );
          ("kinds", Json.Obj kinds);
          ( "solver",
            (let s = t.solver in
             let n x = Json.Num (float_of_int x) in
             Json.Obj
               [
                 ("conflicts", n s.Sat.Solver.conflicts);
                 ("decisions", n s.Sat.Solver.decisions);
                 ( "propagations",
                   n
                     (s.Sat.Solver.propagations
                     + s.Sat.Solver.binary_propagations) );
                 ("restarts", n s.Sat.Solver.restarts);
                 ("solve_time_s", Json.Num s.Sat.Solver.solve_time_s);
                 ( "simplify",
                   Json.Obj
                     [
                       ("subsumed", n s.Sat.Solver.simplify_subsumed);
                       ("strengthened", n s.Sat.Solver.simplify_strengthened);
                       ( "eliminated_vars",
                         n s.Sat.Solver.simplify_eliminated );
                       ("vivified", n s.Sat.Solver.simplify_vivified);
                     ] );
               ]) );
        ])
