(** A minimal JSON implementation for the design server's wire protocol.

    Stdlib-only by design (ROADMAP rule: no new dependencies).  The
    subset is exactly what the JSON-lines protocol needs: parse one
    request object off one line, build one response object, print it on
    one line.

    The parser is written for a {e hostile} boundary: it never raises on
    any input (the [-serve] fuzz property feeds it random bytes), it
    bounds nesting depth so a ["[[[[…"] line cannot blow the stack, and
    it rejects trailing garbage so framing errors surface as structured
    parse errors instead of silent truncation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val max_depth : int
(** Nesting bound of the parser (64); deeper input is a parse error. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document.  Never raises.  Numbers use OCaml
    float semantics, so extreme exponents parse to infinities — request
    validation must therefore check finiteness (see
    {!Protocol.of_json}). *)

val to_string : t -> string
(** Compact single-line rendering (no newlines, minimal whitespace).
    Non-finite numbers render as [null] rather than producing invalid
    JSON. *)

(** {2 Accessors} — total, [option]-returning. *)

val mem : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val str : t -> string option
val num : t -> float option
val bool_ : t -> bool option
val int_ : t -> int option
(** [Num] holding an integral value within [int] range. *)

val list_ : t -> t list option
