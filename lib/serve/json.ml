type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "invalid literal (expected %s)" word)

(* UTF-8-encode a code point into the buffer (surrogate pairs are
   combined by the caller). *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> error st "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> error st "truncated \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "truncated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                let cp = hex4 st in
                let cp =
                  (* High surrogate: require the paired low surrogate. *)
                  if cp >= 0xD800 && cp <= 0xDBFF then begin
                    if peek st = Some '\\' then begin
                      advance st;
                      if peek st = Some 'u' then begin
                        advance st;
                        let lo = hex4 st in
                        if lo >= 0xDC00 && lo <= 0xDFFF then
                          0x10000
                          + ((cp - 0xD800) lsl 10)
                          + (lo - 0xDC00)
                        else error st "invalid low surrogate"
                      end
                      else error st "expected low surrogate"
                    end
                    else error st "unpaired surrogate"
                  end
                  else if cp >= 0xDC00 && cp <= 0xDFFF then
                    error st "unpaired low surrogate"
                  else cp
                in
                add_utf8 b cp
            | _ -> error st "invalid escape");
            go ())
    | Some c when Char.code c < 0x20 -> error st "raw control character"
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    advance st;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with
      | Some ('+' | '-') -> advance st
      | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st (Printf.sprintf "invalid number %S" text)

let rec parse_value st depth =
  if depth > max_depth then error st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> error st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st (depth + 1) in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> error st "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st 0 with
  | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
  | exception Parse_error msg -> Error msg
  (* Belt and braces: the parser is written to raise only [Parse_error],
     but this is the fuzzer-facing entry point — nothing may escape. *)
  | exception e -> Error ("parser exception: " ^ Printexc.to_string e)

(* --- printing ---------------------------------------------------------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_number b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec add_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> add_number b f
  | Str s -> add_escaped b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add_value b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add_value b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add_value b v;
  Buffer.contents b

(* --- accessors --------------------------------------------------------- *)

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool_ = function Bool b -> Some b | _ -> None

let int_ = function
  | Num f
    when Float.is_integer f
         && f >= Float.of_int min_int
         && f <= Float.of_int max_int ->
      Some (int_of_float f)
  | _ -> None

let list_ = function List l -> Some l | _ -> None
