(** The design server's versioned wire protocol (JSON lines).

    One request object per line; every request carries the version field
    ["fictionette-serve": 1] and a ["kind"].  Responses echo the
    request's ["id"] (any JSON value, [null] when absent or unparseable)
    and carry ["status"]: ["ok"], ["error"], or ["overloaded"].

    Request kinds:
    - ["design"]: run the full flow on ["benchmark"] or inline
      ["verilog"]; options ["engine"] ("exact"/"scalable"/"fallback"),
      ["timeout_ms"], ["conflict_budget"], ["rewrite"],
      ["half_adders"], ["equivalence"], ["library"].
    - ["check"]: like design but paranoid — every stage boundary
      cross-checked, refutations proof-checked, certificate replayed.
    - ["simulate"]: exact ground-state validation of a named Bestagon
      gate (["gate"]: "or2", "and2", "nand2", "nor2", "xor2", "xnor2",
      "inverter", "wire").
    - ["yield"]: Monte-Carlo operational yield of the flow's layout
      under randomized defects (["trials"], ["seed"], ["missing"],
      ["extra"], ["charged"]).
    - ["domain"]: operational-domain sweep over (μ₋, ε_r) of a named
      Bestagon gate (["gate"]) or of a whole placed-and-routed layout
      (["benchmark"]/["verilog"]); options ["algorithm"]
      ("grid"/"flood-fill"/"contour"), ["steps"], ["samples"],
      ["engine"].
    - ["batch"]: ["jobs"] is an array of job objects (no nested version
      field); jobs are admitted, dispatched across the worker pool, and
      answered one response per job in order.
    - ["stats"], ["ping"], ["shutdown"]: service introspection and
      lifecycle.

    Error responses are structured: [{"status":"error","error":
    {"kind":K,"message":M}}] with [K] one of ["parse"], ["version"],
    ["invalid_request"], ["oversized"], ["budget"] (plus a ["reason"]:
    "deadline"/"conflict budget"/"cancelled"), ["infeasible"],
    ["check_failed"], or ["crash"] (a worker exception, converted — the
    loop never unwinds).  Shed jobs get [{"status":"overloaded",
    "retry_after_ms":N}]. *)

val version : int
(** Wire version (1). *)

type source = Benchmark of string | Verilog of string

type engine = Engine_exact | Engine_scalable | Engine_fallback

val engine_to_string : engine -> string

type chaos = Chaos_raise | Chaos_cancel
(** Fault injections accepted only when the server runs with
    [chaos = true]: [Chaos_raise] makes the worker die mid-job (the
    dispatcher must convert it to a ["crash"] error), [Chaos_cancel]
    flips the request budget's cancellation flag after a few polls. *)

type design_params = {
  source : source;
  engine : engine;
  timeout_ms : float option;  (** Validated finite and positive. *)
  conflict_budget : int option;
  rewrite : bool;
  half_adders : bool;
  equivalence : bool;
  library : bool;
  chaos : chaos option;
}

type yield_params = {
  y_source : source;
  trials : int;
  seed : int;
  missing : int;
  extra : int;
  charged : int;
  y_timeout_ms : float option;
  y_chaos : chaos option;
}

type sim_engine = Sim_exhaustive | Sim_pruned | Sim_quicksim
(** Ground-state engine for simulate/domain jobs (field ["engine"]; the
    protocol stays independent of the simulation stack — handlers map
    this onto {!Sidb.Bdl.engine}).  Omitted = the server's default. *)

val sim_engine_to_string : sim_engine -> string

type domain_algorithm = Dom_grid | Dom_flood_fill | Dom_contour
(** Operational-domain sweep algorithm (field ["algorithm"]:
    "grid"/"exhaustive", "flood-fill"/"ff", "contour"/"ct"; default
    flood fill). *)

val domain_algorithm_to_string : domain_algorithm -> string

type domain_target = Dom_gate of string | Dom_layout of source
(** What to sweep: a named Bestagon gate (["gate"]) or a whole
    placed-and-routed layout from a ["benchmark"]/["verilog"] source. *)

type domain_params = {
  d_target : domain_target;
  d_algorithm : domain_algorithm;
  d_steps : int;  (** Grid steps per axis (["steps"], 2–256, default 8). *)
  d_samples : int;  (** Seed probes (["samples"]; 0 = auto). *)
  d_engine : sim_engine option;
  d_timeout_ms : float option;
  d_chaos : chaos option;
}

type job =
  | Design of design_params
  | Check of design_params
  | Simulate of {
      gate : string;
      sim_engine : sim_engine option;
      sim_chaos : chaos option;
    }
  | Yield of yield_params
  | Domain of domain_params

val job_kind : job -> string
val job_timeout_ms : job -> float option
(** The job's requested budget mass (for admission accounting). *)

val job_chaos : job -> chaos option

type request =
  | Single of { id : Json.t; job : job }
  | Batch of {
      id : Json.t;
      jobs : (Json.t * (job, string * string) result) list;
          (** Per-job: its id and either the decoded job or a structured
              [(error_kind, message)] — one malformed job never poisons
              its siblings. *)
    }
  | Stats of { id : Json.t }
  | Ping of { id : Json.t }
  | Shutdown of { id : Json.t }

type limits = {
  max_source_bytes : int;  (** Inline Verilog cap (oversized netlists). *)
  allow_chaos : bool;  (** Reject ["chaos"] fields unless enabled. *)
}

val decode : limits -> Json.t -> (request, string * string) result
(** Decode a parsed request line.  [Error (kind, message)] uses the
    error-kind vocabulary above.  Never raises. *)

(** {2 Response builders} — all return complete one-line objects. *)

val ok_response :
  id:Json.t ->
  kind:string ->
  ?degradation:string list ->
  ?retries:int ->
  ?latency_ms:float ->
  Json.t ->
  Json.t

val error_response :
  id:Json.t ->
  kind:string ->
  error_kind:string ->
  ?reason:string ->
  ?latency_ms:float ->
  string ->
  Json.t

val overloaded_response :
  id:Json.t -> kind:string -> retry_after_ms:float -> Json.t

val response_status : Json.t -> string option
(** ["status"] field of a response (for tests and the bench harness). *)
