(** Service counters and per-kind latency histograms.

    One {!t} lives for the server's lifetime; every operation is
    thread-safe (jobs complete on {!Parallel.Pool} domains).  Latencies
    are recorded in fixed millisecond buckets so the ["stats"] response
    can report tail behaviour (p50/p90/p99 upper bounds) without keeping
    every sample. *)

type t

val create : unit -> t

val buckets_ms : float array
(** Upper bounds of the latency buckets, in ms; one implicit overflow
    bucket follows the last. *)

val record : t -> kind:string -> status:string -> latency_ms:float -> unit
(** Count one finished request of [kind] and bucket its latency.
    [status] feeds the served/error counters. *)

val incr_retries : t -> unit
val incr_degraded : t -> unit
val incr_shed : t -> unit
val incr_protocol_errors : t -> unit
(** Lines that never became a job: parse, version, or envelope errors. *)

val record_solver : t -> Sat.Solver.stats -> unit
(** Accumulate the SAT work behind one finished job (pointwise sum,
    including the [simplify_*] preprocessing counters); reported as the
    ["solver"] object of the ["stats"] response. *)

val to_json :
  t -> uptime_s:float -> memo:Core.Flow.Memo.stats -> Json.t
(** The ["stats"] response payload: uptime, counters, cache hit rates,
    and per-kind histograms with approximate p50/p90/p99 (each quantile
    reported as its bucket's upper bound). *)
