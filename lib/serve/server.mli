(** The resident design server: a fault-isolated, budgeted, batched
    front end to the whole flow (DESIGN.md section 13).

    One {!t} owns the cross-request {!Core.Flow.Memo}, the
    {!Metrics} registry, and the admission state.  {!handle_line} is
    the entire externally-visible behaviour — both transports
    ({!serve_channels} for stdin/stdout, {!serve_socket} for a Unix
    socket) are thin line-pumps around it, and the in-process chaos
    tests and the bench drive it directly.

    Resilience contract of {!handle_line}: it {e never raises}, on any
    byte sequence.  Malformed JSON, protocol-version mismatches, and
    invalid envelopes produce structured error responses; a crashing
    job produces a ["crash"] error for that job only; a shed job
    produces ["overloaded"] with a [retry_after_ms] hint.  Every
    admitted well-formed request gets exactly one response, batch
    responses in job order. *)

type config = {
  max_timeout_ms : float;
      (** Per-request budget ceiling (and default), ms. *)
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  max_source_bytes : int;  (** Inline-Verilog size cap. *)
  max_batch : int;
      (** Queue-depth threshold: batch jobs beyond this are shed. *)
  max_budget_mass_ms : float;
      (** Budget-mass threshold: once the summed effective [timeout_ms]
          of admitted jobs in a batch passes this, the rest are shed. *)
  chaos : bool;  (** Accept ["chaos"] fault-injection fields. *)
  jobs : int option;
      (** Worker domains for batch dispatch (default
          {!Parallel.Pool.default_jobs}). *)
  sleep : float -> unit;  (** Backoff hook (seconds); injectable. *)
}

val default_config : config
(** 60 s ceiling, 2 retries, 10/200 ms backoff, 1 MiB sources, 64-job
    batches, 10 min budget mass, chaos off, [Unix.sleepf]. *)

type t

val create : ?config:config -> unit -> t
val ctx : t -> Handlers.ctx
(** The job-execution context (shared memo and metrics). *)

val stopping : t -> bool
(** A ["shutdown"] request was acknowledged. *)

val handle_line : t -> string -> string list
(** Process one input line to its response lines (one JSON object
    each, in order).  Blank lines yield no response.  Never raises. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Pump lines until EOF or shutdown; responses are flushed after each
    input line. *)

val serve_socket : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale file) and
    serve connections sequentially until shutdown.  [SIGPIPE] is
    ignored so a client hanging up mid-response cannot kill the
    server. *)
