type ctx = {
  memo : Core.Flow.Memo.t;
  metrics : Metrics.t;
  max_timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  sleep : float -> unit;
}

let default_ctx () =
  {
    memo = Core.Flow.Memo.create ();
    metrics = Metrics.create ();
    max_timeout_ms = 60_000.;
    max_retries = 2;
    backoff_base_ms = 10.;
    backoff_cap_ms = 200.;
    sleep = Unix.sleepf;
  }

exception Injected_fault of string
(* Chaos_raise: simulated worker death.  Raised mid-job so it exercises
   the same conversion path as a genuine bug in a stage. *)

let maybe_die = function
  | Some Protocol.Chaos_raise -> raise (Injected_fault "injected worker fault")
  | _ -> ()

(* A Chaos_cancel budget flips its cancellation flag after a few solver
   polls — mid-request, not at admission. *)
let budget_for ?conflicts ~chaos seconds =
  match chaos with
  | Some Protocol.Chaos_cancel ->
      let polls = Atomic.make 0 in
      Core.Budget.of_seconds ?conflicts
        ~cancelled:(fun () -> Atomic.fetch_and_add polls 1 >= 3)
        seconds
  | _ -> Core.Budget.of_seconds ?conflicts seconds

(* --- the engine ladder -------------------------------------------------- *)

type rung = Rung_exact | Rung_fallback | Rung_scalable

let ladder = function
  | Protocol.Engine_exact -> [ Rung_exact; Rung_fallback; Rung_scalable ]
  | Protocol.Engine_fallback -> [ Rung_fallback; Rung_scalable ]
  | Protocol.Engine_scalable -> [ Rung_scalable ]

let flow_engine = function
  | Rung_exact -> Core.Flow.Exact Physdesign.Exact.default_config
  | Rung_fallback -> Core.Flow.Exact_with_fallback Physdesign.Exact.default_config
  | Rung_scalable -> Core.Flow.Scalable

let rung_name = function
  | Rung_exact -> "exact"
  | Rung_fallback -> "exact-with-fallback"
  | Rung_scalable -> "scalable"

type attempt_error =
  | Flow_failure of Core.Flow.failure
  | Hard of string * string * string option  (* kind, message, reason *)

(* Run [attempt rung budget] down the ladder.  Transient = the flow
   tripping on deadline or conflicts (never cancellation); each retry
   runs under the wall clock still remaining to the request, after a
   capped exponential backoff. *)
let with_retries ctx ~chaos ~timeout_ms ~conflicts ~rungs ~attempt =
  let eff_ms =
    Float.min (Option.value timeout_ms ~default:ctx.max_timeout_ms) ctx.max_timeout_ms
  in
  let t_end = Unix.gettimeofday () +. (eff_ms /. 1000.) in
  let rec go rungs retry degradation =
    let rung = List.hd rungs in
    let remaining_s = Float.max 0. (t_end -. Unix.gettimeofday ()) in
    let budget = budget_for ?conflicts ~chaos remaining_s in
    match attempt rung budget with
    | Ok (payload, flow_degradation) ->
        Ok (payload, degradation @ flow_degradation, retry)
    | Error err ->
        let transient =
          match err with
          | Flow_failure { Core.Flow.budget_reason = Some reason; _ } -> (
              match reason with
              | Core.Budget.Deadline | Core.Budget.Conflicts -> Some reason
              | Core.Budget.Cancelled -> None)
          | _ -> None
        in
        let lower = match rungs with _ :: (_ :: _ as r) -> Some r | _ -> None in
        let wall_left = t_end -. Unix.gettimeofday () in
        (match (transient, lower) with
        | Some reason, Some lower when retry < ctx.max_retries && wall_left > 0.005
          ->
            Metrics.incr_retries ctx.metrics;
            Metrics.incr_degraded ctx.metrics;
            let next = List.hd lower in
            let step =
              Printf.sprintf "retry %d: %s on %s; degraded to %s" (retry + 1)
                (Core.Budget.reason_to_string reason)
                (rung_name rung) (rung_name next)
            in
            let backoff_ms =
              Float.min ctx.backoff_cap_ms
                (ctx.backoff_base_ms *. (2. ** float_of_int retry))
            in
            let backoff_s =
              Float.min (backoff_ms /. 1000.)
                (Float.max 0. (t_end -. Unix.gettimeofday ()))
            in
            if backoff_s > 0. then ctx.sleep backoff_s;
            go lower (retry + 1) (degradation @ [ step ])
        | _ -> Error (err, degradation, retry))
  in
  go rungs 0 []

(* --- payloads ----------------------------------------------------------- *)

let layout_json l =
  let s = Layout.Gate_layout.stats l in
  Json.Obj
    [
      ("width", Json.Num (float_of_int s.Layout.Gate_layout.bounding_width));
      ("height", Json.Num (float_of_int s.Layout.Gate_layout.bounding_height));
      ("area_tiles", Json.Num (float_of_int s.Layout.Gate_layout.area_tiles));
      ("gate_tiles", Json.Num (float_of_int s.Layout.Gate_layout.gate_tiles));
      ("wire_tiles", Json.Num (float_of_int s.Layout.Gate_layout.wire_tiles));
      ( "crossing_tiles",
        Json.Num (float_of_int s.Layout.Gate_layout.crossing_tiles) );
      ("fanout_tiles", Json.Num (float_of_int s.Layout.Gate_layout.fanout_tiles));
    ]

let design_payload (r : Core.Flow.result) =
  let d = r.Core.Flow.diagnostics in
  let fields =
    [
      ("inputs", Json.Num (float_of_int (Logic.Mapped.num_inputs r.Core.Flow.mapped)));
      ("outputs", Json.Num (float_of_int (Logic.Mapped.num_outputs r.Core.Flow.mapped)));
      ("gates", Json.Num (float_of_int (Logic.Mapped.num_gates r.Core.Flow.mapped)));
      ("layout", layout_json r.Core.Flow.gate_layout);
      ( "engine_used",
        match d.Core.Flow.engine_used with
        | Some e -> Json.Str (Core.Flow.engine_used_to_string e)
        | None -> Json.Null );
      ( "equivalence",
        match r.Core.Flow.equivalence with
        | Some v -> Json.Str (Verify.Equivalence.verdict_to_string v)
        | None -> Json.Null );
      ( "drc_violations",
        Json.Num (float_of_int (List.length r.Core.Flow.drc_violations)) );
      ( "checks",
        Json.List (List.map (fun c -> Json.Str c) r.Core.Flow.checks) );
      ( "sidb",
        match r.Core.Flow.sidb with
        | None -> Json.Null
        | Some s ->
            Json.Obj
              [
                ("count", Json.Num (float_of_int s.Bestagon.Library.sidb_count));
                ("area_nm2", Json.Num s.Bestagon.Library.area_nm2);
                ("validated", Json.Bool s.Bestagon.Library.all_validated);
              ] );
      ("elapsed_s", Json.Num d.Core.Flow.elapsed_s);
    ]
  in
  Json.Obj fields

let source_key = function
  | Protocol.Benchmark b -> "bench:" ^ b
  | Protocol.Verilog src -> "v:" ^ Digest.to_hex (Digest.string src)

let flow_options ~engine (p : Protocol.design_params) =
  {
    Core.Flow.default_options with
    engine;
    rewrite = p.rewrite;
    fuse_half_adders = p.half_adders;
    check_equivalence = p.equivalence;
    apply_library = p.library;
  }

let run_flow ctx ~options ~paranoid ~budget source =
  let memo = (source_key source, ctx.memo) in
  let r =
    match source with
    | Protocol.Benchmark b ->
        Core.Flow.run_benchmark ~options ~paranoid ~memo ~budget b
    | Protocol.Verilog src ->
        Core.Flow.run_verilog ~options ~paranoid ~memo ~budget src
  in
  (match r with
  | Ok res ->
      Metrics.record_solver ctx.metrics
        res.Core.Flow.diagnostics.Core.Flow.solver_stats
  | Error _ -> ());
  r

let error_parts_of_failure (f : Core.Flow.failure) =
  match f.Core.Flow.budget_reason with
  | Some r -> ("budget", Some (Core.Budget.reason_to_string r))
  | None -> (
      match f.Core.Flow.failed_step with
      | Core.Flow.Parsing -> ("invalid_request", None)
      | Core.Flow.Certification | Core.Flow.Design_rule_check
      | Core.Flow.Verification ->
          ("check_failed", None)
      | _ -> ("infeasible", None))

let design_attempt ctx ~paranoid (p : Protocol.design_params) rung budget =
  maybe_die p.Protocol.chaos;
  let options = flow_options ~engine:(flow_engine rung) p in
  match run_flow ctx ~options ~paranoid ~budget p.Protocol.source with
  | Error f -> Error (Flow_failure f)
  | Ok r -> (
      match r.Core.Flow.equivalence with
      | Some (Verify.Equivalence.Counterexample cex) ->
          let inputs =
            String.concat ", "
              (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) cex)
          in
          Error
            (Hard
               ( "check_failed",
                 "equivalence check found a counterexample: " ^ inputs,
                 None ))
      | Some (Verify.Equivalence.Interface_mismatch m) ->
          Error (Hard ("check_failed", "interface mismatch: " ^ m, None))
      | _ ->
          Ok (design_payload r, r.Core.Flow.diagnostics.Core.Flow.degradations))

let yield_attempt ctx (p : Protocol.yield_params) rung budget =
  maybe_die p.Protocol.y_chaos;
  let options =
    {
      Core.Flow.default_options with
      engine = flow_engine rung;
      check_equivalence = false;
      apply_library = false;
    }
  in
  match run_flow ctx ~options ~paranoid:false ~budget p.Protocol.y_source with
  | Error f -> Error (Flow_failure f)
  | Ok r ->
      let params =
        {
          Sidb.Defects.missing = p.Protocol.missing;
          extra = p.Protocol.extra;
          charged = p.Protocol.charged;
          trials = p.Protocol.trials;
          seed = p.Protocol.seed;
        }
      in
      let y = Bestagon.Yield.of_layout ~params r.Core.Flow.gate_layout in
      let payload =
        Json.Obj
          [
            ("trials", Json.Num (float_of_int p.Protocol.trials));
            ("seed", Json.Num (float_of_int p.Protocol.seed));
            ( "simulated_tiles",
              Json.Num (float_of_int y.Bestagon.Yield.simulated_tiles) );
            ( "skipped_tiles",
              Json.Num (float_of_int y.Bestagon.Yield.skipped_tiles) );
            ("yield", Json.Num y.Bestagon.Yield.layout_yield);
          ]
      in
      Ok (payload, r.Core.Flow.diagnostics.Core.Flow.degradations)

(* --- simulate (gate validation, no budget) ------------------------------ *)

let gate_tiles =
  [
    ( "wire",
      Layout.Tile.Wire
        {
          segments =
            [ (Hexlib.Direction.North_west, Hexlib.Direction.South_east) ];
        } );
    ( "inverter",
      Layout.Tile.Gate
        {
          fn = Logic.Mapped.Inv;
          ins = [ Hexlib.Direction.North_west ];
          outs = [ Hexlib.Direction.South_east ];
        } );
  ]
  @ List.map
      (fun (name, fn) ->
        ( name,
          Layout.Tile.Gate
            {
              fn;
              ins = [ Hexlib.Direction.North_west; Hexlib.Direction.North_east ];
              outs = [ Hexlib.Direction.South_east ];
            } ))
      [
        ("or2", Logic.Mapped.Or2); ("and2", Logic.Mapped.And2);
        ("nor2", Logic.Mapped.Nor2); ("nand2", Logic.Mapped.Nand2);
        ("xor2", Logic.Mapped.Xor2); ("xnor2", Logic.Mapped.Xnor2);
      ]

let gate_names = List.map fst gate_tiles

(* Protocol engine names map onto the simulation stack here, so the
   protocol module stays independent of it.  An omitted engine means the
   server's process-wide default ({!Sidb.Bdl.default_engine}: exact
   pruned search unless overridden by CLI flag or environment). *)
let sim_engine_of_protocol = function
  | None -> Sidb.Bdl.default_engine ()
  | Some Protocol.Sim_exhaustive -> Sidb.Bdl.Exhaustive
  | Some Protocol.Sim_pruned -> Sidb.Bdl.Pruned
  | Some Protocol.Sim_quicksim ->
      Sidb.Bdl.Quicksim Sidb.Ground_state.default_quicksim

let simulate ~gate ~engine ~chaos =
  maybe_die chaos;
  match List.assoc_opt (String.lowercase_ascii gate) gate_tiles with
  | None ->
      Error
        ( "invalid_request",
          Printf.sprintf "unknown gate %S (want one of: %s)" gate
            (String.concat ", " gate_names) )
  | Some tile -> (
      match Bestagon.Library.validation_structure tile with
      | None -> Error ("infeasible", "no validation structure for " ^ gate)
      | Some s -> (
          match Bestagon.Library.tile_spec tile with
          | None -> Error ("infeasible", "no specification for " ^ gate)
          | Some spec ->
              let engine = sim_engine_of_protocol engine in
              let report = Sidb.Bdl.check ~engine s ~spec in
              Ok
                (Json.Obj
                   [
                     ("gate", Json.Str (String.lowercase_ascii gate));
                     ("engine", Json.Str (Sidb.Bdl.engine_name engine));
                     ("exact", Json.Bool (Sidb.Bdl.engine_exact engine));
                     ("functional", Json.Bool report.Sidb.Bdl.functional);
                     ( "rows",
                       Json.Num
                         (float_of_int (List.length report.Sidb.Bdl.rows)) );
                   ])))

(* --- operational domains ------------------------------------------------ *)

let domain_algorithm_of_protocol = function
  | Protocol.Dom_grid -> Sidb.Operational_domain.Grid
  | Protocol.Dom_flood_fill -> Sidb.Operational_domain.Flood_fill
  | Protocol.Dom_contour -> Sidb.Operational_domain.Contour_tracing

let domain_config (p : Protocol.domain_params) =
  let total = p.Protocol.d_steps * p.Protocol.d_steps in
  {
    Sidb.Operational_domain.default_config with
    Sidb.Operational_domain.algorithm =
      domain_algorithm_of_protocol p.Protocol.d_algorithm;
    samples =
      (if p.Protocol.d_samples > 0 then p.Protocol.d_samples
       else max 4 (total / 8));
  }

let domain_axes (p : Protocol.domain_params) =
  ( { Core.Flow.default_domain_x_axis with
      Sidb.Operational_domain.steps = p.Protocol.d_steps },
    { Core.Flow.default_domain_y_axis with
      Sidb.Operational_domain.steps = p.Protocol.d_steps } )

let domain_payload ?extra (dom : Sidb.Operational_domain.t) =
  let st = dom.Sidb.Operational_domain.stats in
  Json.Obj
    (Option.value extra ~default:[]
    @ [
        ( "algorithm",
          Json.Str
            (Sidb.Operational_domain.algorithm_name
               dom.Sidb.Operational_domain.algorithm) );
        ( "operational_fraction",
          Json.Num dom.Sidb.Operational_domain.operational_fraction );
        ( "total_points",
          Json.Num (float_of_int st.Sidb.Operational_domain.total_points) );
        ( "points_evaluated",
          Json.Num (float_of_int st.Sidb.Operational_domain.points_evaluated) );
        ( "seed_probes",
          Json.Num (float_of_int st.Sidb.Operational_domain.seed_probes) );
        ( "solver_calls_saved",
          Json.Num (float_of_int st.Sidb.Operational_domain.solver_calls_saved)
        );
      ])

let domain_gate ~gate (p : Protocol.domain_params) =
  maybe_die p.Protocol.d_chaos;
  match List.assoc_opt (String.lowercase_ascii gate) gate_tiles with
  | None ->
      Error
        ( "invalid_request",
          Printf.sprintf "unknown gate %S (want one of: %s)" gate
            (String.concat ", " gate_names) )
  | Some tile -> (
      match
        (Bestagon.Library.validation_structure tile, Bestagon.Library.tile_spec tile)
      with
      | Some s, Some spec -> (
          let engine = sim_engine_of_protocol p.Protocol.d_engine in
          let x_axis, y_axis = domain_axes p in
          match
            Sidb.Operational_domain.sweep ~engine ~config:(domain_config p)
              ~x_axis ~y_axis s ~spec
          with
          | dom ->
              let extra =
                [
                  ("gate", Json.Str (String.lowercase_ascii gate));
                  ("engine", Json.Str (Sidb.Bdl.engine_name engine));
                  ("exact", Json.Bool (Sidb.Bdl.engine_exact engine));
                ]
              in
              Ok (domain_payload ~extra dom)
          | exception Invalid_argument m -> Error ("infeasible", m))
      | _ -> Error ("infeasible", "no validation structure for " ^ gate))

let domain_attempt ctx (p : Protocol.domain_params) source rung budget =
  maybe_die p.Protocol.d_chaos;
  let options =
    {
      Core.Flow.default_options with
      engine = flow_engine rung;
      check_equivalence = false;
      apply_library = false;
    }
  in
  match run_flow ctx ~options ~paranoid:false ~budget source with
  | Error f -> Error (Flow_failure f)
  | Ok r -> (
      let engine =
        Option.map
          (fun e -> sim_engine_of_protocol (Some e))
          p.Protocol.d_engine
      in
      let x_axis, y_axis = domain_axes p in
      match
        Core.Flow.domain_of_layout ?engine ~config:(domain_config p) ~x_axis
          ~y_axis r
      with
      | Error m -> Error (Hard ("infeasible", m, None))
      | Ok d ->
          let extra =
            [
              ("engine", Json.Str d.Core.Flow.dom_engine);
              ("exact", Json.Bool d.Core.Flow.dom_exact);
              ("sites", Json.Num (float_of_int d.Core.Flow.dom_sites));
              ("tiles", Json.Num (float_of_int d.Core.Flow.dom_tiles));
              ("sweep_s", Json.Num d.Core.Flow.dom_seconds);
            ]
          in
          Ok
            ( domain_payload ~extra d.Core.Flow.dom_domain,
              r.Core.Flow.diagnostics.Core.Flow.degradations ))

(* --- dispatch ----------------------------------------------------------- *)

(* Each branch does all the work and returns a final formatter taking
   the measured latency, so the [run_job] catch-all sees every
   exception a job can raise. *)
let dispatch ctx ~id job =
  let kind = Protocol.job_kind job in
  let finish_retries = function
    | Ok (payload, degradation, retries) ->
        fun ~latency_ms ->
          Protocol.ok_response ~id ~kind ~degradation ~retries ~latency_ms
            payload
    | Error (err, _degradation, _retries) ->
        let error_kind, message, reason =
          match err with
          | Flow_failure f ->
              let k, reason = error_parts_of_failure f in
              (k, Core.Flow.error_message f, reason)
          | Hard (k, m, reason) -> (k, m, reason)
        in
        fun ~latency_ms ->
          Protocol.error_response ~id ~kind ~error_kind ?reason ~latency_ms
            message
  in
  match job with
  | Protocol.Design p ->
      finish_retries
        (with_retries ctx ~chaos:p.Protocol.chaos
           ~timeout_ms:p.Protocol.timeout_ms
           ~conflicts:p.Protocol.conflict_budget
           ~rungs:(ladder p.Protocol.engine)
           ~attempt:(design_attempt ctx ~paranoid:false p))
  | Protocol.Check p ->
      finish_retries
        (with_retries ctx ~chaos:p.Protocol.chaos
           ~timeout_ms:p.Protocol.timeout_ms
           ~conflicts:p.Protocol.conflict_budget
           ~rungs:(ladder p.Protocol.engine)
           ~attempt:(design_attempt ctx ~paranoid:true p))
  | Protocol.Yield p ->
      finish_retries
        (with_retries ctx ~chaos:p.Protocol.y_chaos
           ~timeout_ms:p.Protocol.y_timeout_ms ~conflicts:None
           ~rungs:[ Rung_fallback; Rung_scalable ]
           ~attempt:(yield_attempt ctx p))
  | Protocol.Simulate { gate; sim_engine; sim_chaos } -> (
      match simulate ~gate ~engine:sim_engine ~chaos:sim_chaos with
      | Ok payload -> fun ~latency_ms -> Protocol.ok_response ~id ~kind ~latency_ms payload
      | Error (error_kind, message) ->
          fun ~latency_ms ->
            Protocol.error_response ~id ~kind ~error_kind ~latency_ms message)
  | Protocol.Domain ({ Protocol.d_target = Protocol.Dom_gate gate; _ } as p)
    -> (
      match
        match domain_gate ~gate p with
        | r -> r
        | exception Invalid_argument m -> Error ("infeasible", m)
      with
      | Ok payload ->
          fun ~latency_ms -> Protocol.ok_response ~id ~kind ~latency_ms payload
      | Error (error_kind, message) ->
          fun ~latency_ms ->
            Protocol.error_response ~id ~kind ~error_kind ~latency_ms message)
  | Protocol.Domain ({ Protocol.d_target = Protocol.Dom_layout source; _ } as p)
    ->
      finish_retries
        (with_retries ctx ~chaos:p.Protocol.d_chaos
           ~timeout_ms:p.Protocol.d_timeout_ms ~conflicts:None
           ~rungs:[ Rung_fallback; Rung_scalable ]
           ~attempt:(domain_attempt ctx p source))

let run_job ctx ~id job =
  let kind = Protocol.job_kind job in
  let t0 = Unix.gettimeofday () in
  let finish =
    try dispatch ctx ~id job
    with e ->
      let message =
        match e with
        | Injected_fault m -> "worker crashed: " ^ m
        | e -> "worker crashed: " ^ Printexc.to_string e
      in
      fun ~latency_ms ->
        Protocol.error_response ~id ~kind ~error_kind:"crash" ~latency_ms
          message
  in
  let latency_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let response = finish ~latency_ms in
  let status = Option.value (Protocol.response_status response) ~default:"error" in
  Metrics.record ctx.metrics ~kind ~status ~latency_ms;
  response
