let version = 1

type source = Benchmark of string | Verilog of string

type engine = Engine_exact | Engine_scalable | Engine_fallback

let engine_to_string = function
  | Engine_exact -> "exact"
  | Engine_scalable -> "scalable"
  | Engine_fallback -> "fallback"

type chaos = Chaos_raise | Chaos_cancel

type design_params = {
  source : source;
  engine : engine;
  timeout_ms : float option;
  conflict_budget : int option;
  rewrite : bool;
  half_adders : bool;
  equivalence : bool;
  library : bool;
  chaos : chaos option;
}

type yield_params = {
  y_source : source;
  trials : int;
  seed : int;
  missing : int;
  extra : int;
  charged : int;
  y_timeout_ms : float option;
  y_chaos : chaos option;
}

type sim_engine = Sim_exhaustive | Sim_pruned | Sim_quicksim

let sim_engine_to_string = function
  | Sim_exhaustive -> "exhaustive"
  | Sim_pruned -> "pruned"
  | Sim_quicksim -> "quicksim"

type domain_algorithm = Dom_grid | Dom_flood_fill | Dom_contour

let domain_algorithm_to_string = function
  | Dom_grid -> "grid"
  | Dom_flood_fill -> "flood-fill"
  | Dom_contour -> "contour"

type domain_target = Dom_gate of string | Dom_layout of source

type domain_params = {
  d_target : domain_target;
  d_algorithm : domain_algorithm;
  d_steps : int;
  d_samples : int;  (** 0 = auto. *)
  d_engine : sim_engine option;
  d_timeout_ms : float option;
  d_chaos : chaos option;
}

type job =
  | Design of design_params
  | Check of design_params
  | Simulate of {
      gate : string;
      sim_engine : sim_engine option;
      sim_chaos : chaos option;
    }
  | Yield of yield_params
  | Domain of domain_params

let job_kind = function
  | Design _ -> "design"
  | Check _ -> "check"
  | Simulate _ -> "simulate"
  | Yield _ -> "yield"
  | Domain _ -> "domain"

let job_timeout_ms = function
  | Design p | Check p -> p.timeout_ms
  | Simulate _ -> None
  | Yield p -> p.y_timeout_ms
  | Domain p -> p.d_timeout_ms

let job_chaos = function
  | Design p | Check p -> p.chaos
  | Simulate { sim_chaos; _ } -> sim_chaos
  | Yield p -> p.y_chaos
  | Domain p -> p.d_chaos

type request =
  | Single of { id : Json.t; job : job }
  | Batch of { id : Json.t; jobs : (Json.t * (job, string * string) result) list }
  | Stats of { id : Json.t }
  | Ping of { id : Json.t }
  | Shutdown of { id : Json.t }

type limits = { max_source_bytes : int; allow_chaos : bool }

(* --- decoding ----------------------------------------------------------- *)

exception Bad of string * string
(* (error kind, message) — local to [decode], always caught there. *)

let bad kind fmt = Printf.ksprintf (fun m -> raise (Bad (kind, m))) fmt
let invalid fmt = bad "invalid_request" fmt

let id_of j =
  match Json.mem "id" j with
  | Some ((Json.Str _ | Json.Num _ | Json.Null) as id) -> id
  | Some _ -> invalid "\"id\" must be a string, number, or null"
  | None -> Json.Null

let field_str j key =
  match Json.mem key j with
  | None -> None
  | Some v -> (
      match Json.str v with
      | Some s -> Some s
      | None -> invalid "%S must be a string" key)

let field_bool j key ~default =
  match Json.mem key j with
  | None -> default
  | Some v -> (
      match Json.bool_ v with
      | Some b -> b
      | None -> invalid "%S must be a boolean" key)

let field_int j key ~default ~min ~max =
  match Json.mem key j with
  | None -> default
  | Some v -> (
      match Json.int_ v with
      | Some i when i >= min && i <= max -> i
      | Some i -> invalid "%S out of range (got %d, want %d..%d)" key i min max
      | None -> invalid "%S must be an integer" key)

let source_of limits j =
  match (field_str j "benchmark", field_str j "verilog") with
  | Some _, Some _ -> invalid "give either \"benchmark\" or \"verilog\", not both"
  | Some b, None -> Benchmark b
  | None, Some v ->
      if String.length v > limits.max_source_bytes then
        bad "oversized" "inline verilog is %d bytes (limit %d)"
          (String.length v) limits.max_source_bytes
      else Verilog v
  | None, None -> invalid "missing \"benchmark\" or \"verilog\" source"

let timeout_of j key =
  match Json.mem key j with
  | None -> None
  | Some v -> (
      match Json.num v with
      | Some f when Float.is_finite f && f > 0. -> Some f
      | Some f -> invalid "%S must be a finite positive number (got %g)" key f
      | None -> invalid "%S must be a number" key)

let chaos_of limits j =
  match Json.mem "chaos" j with
  | None -> None
  | Some v when not limits.allow_chaos ->
      ignore v;
      invalid "\"chaos\" is not accepted (server not in chaos mode)"
  | Some v -> (
      match Json.str v with
      | Some "raise" -> Some Chaos_raise
      | Some "cancel" -> Some Chaos_cancel
      | _ -> invalid "\"chaos\" must be \"raise\" or \"cancel\"")

let engine_of j =
  match field_str j "engine" with
  | None -> Some Engine_exact
  | Some "exact" -> Some Engine_exact
  | Some "scalable" -> Some Engine_scalable
  | Some "fallback" -> Some Engine_fallback
  | Some s -> invalid "unknown engine %S (want exact/scalable/fallback)" s

let design_of limits j =
  {
    source = source_of limits j;
    engine = (match engine_of j with Some e -> e | None -> Engine_exact);
    timeout_ms = timeout_of j "timeout_ms";
    conflict_budget =
      (match field_int j "conflict_budget" ~default:(-1) ~min:1 ~max:max_int with
      | -1 -> None
      | n -> Some n);
    rewrite = field_bool j "rewrite" ~default:true;
    half_adders = field_bool j "half_adders" ~default:true;
    equivalence = field_bool j "equivalence" ~default:true;
    library = field_bool j "library" ~default:true;
    chaos = chaos_of limits j;
  }

let yield_of limits j =
  {
    y_source = source_of limits j;
    trials = field_int j "trials" ~default:100 ~min:1 ~max:100_000;
    seed = field_int j "seed" ~default:0 ~min:0 ~max:max_int;
    missing = field_int j "missing" ~default:1 ~min:0 ~max:10_000;
    extra = field_int j "extra" ~default:0 ~min:0 ~max:10_000;
    charged = field_int j "charged" ~default:0 ~min:0 ~max:10_000;
    y_timeout_ms = timeout_of j "timeout_ms";
    y_chaos = chaos_of limits j;
  }

let sim_engine_of j =
  match field_str j "engine" with
  | None -> None
  | Some "exhaustive" -> Some Sim_exhaustive
  | Some "pruned" -> Some Sim_pruned
  | Some "quicksim" -> Some Sim_quicksim
  | Some s -> invalid "unknown engine %S (want exhaustive/pruned/quicksim)" s

let domain_of limits j =
  let d_target =
    match (field_str j "gate", Json.mem "benchmark" j, Json.mem "verilog" j) with
    | Some _, Some _, _ | Some _, _, Some _ ->
        invalid "give either \"gate\" or a layout source, not both"
    | Some g, None, None -> Dom_gate g
    | None, None, None ->
        invalid "domain needs a \"gate\" name or a \"benchmark\"/\"verilog\" source"
    | None, _, _ -> Dom_layout (source_of limits j)
  in
  let d_algorithm =
    match field_str j "algorithm" with
    | None -> Dom_flood_fill
    | Some ("grid" | "exhaustive") -> Dom_grid
    | Some ("flood-fill" | "flood_fill" | "floodfill" | "ff") -> Dom_flood_fill
    | Some ("contour" | "contour-tracing" | "contour_tracing" | "ct") ->
        Dom_contour
    | Some s -> invalid "unknown algorithm %S (want grid/flood-fill/contour)" s
  in
  {
    d_target;
    d_algorithm;
    d_steps = field_int j "steps" ~default:8 ~min:2 ~max:256;
    d_samples = field_int j "samples" ~default:0 ~min:0 ~max:65_536;
    d_engine = sim_engine_of j;
    d_timeout_ms = timeout_of j "timeout_ms";
    d_chaos = chaos_of limits j;
  }

let job_of limits j =
  match field_str j "kind" with
  | None -> invalid "missing \"kind\""
  | Some "design" -> Design (design_of limits j)
  | Some "check" -> Check (design_of limits j)
  | Some "simulate" -> (
      match field_str j "gate" with
      | Some gate ->
          Simulate
            { gate; sim_engine = sim_engine_of j; sim_chaos = chaos_of limits j }
      | None -> invalid "simulate needs a \"gate\" name")
  | Some "yield" -> Yield (yield_of limits j)
  | Some "domain" -> Domain (domain_of limits j)
  | Some k -> invalid "unknown job kind %S" k

let decode_exn limits j =
  (match j with
  | Json.Obj _ -> ()
  | _ -> bad "parse" "request must be a JSON object");
  (match Json.mem "fictionette-serve" j with
  | Some (Json.Num v) when int_of_float v = version -> ()
  | Some _ -> bad "version" "unsupported protocol version (want %d)" version
  | None -> bad "version" "missing \"fictionette-serve\" version field");
  let id = id_of j in
  match field_str j "kind" with
  | Some "stats" -> Stats { id }
  | Some "ping" -> Ping { id }
  | Some "shutdown" -> Shutdown { id }
  | Some "batch" ->
      let jobs =
        match Json.mem "jobs" j with
        | Some (Json.List items) ->
            List.map
              (fun item ->
                match item with
                | Json.Obj _ -> (
                    let jid = try id_of item with Bad _ -> Json.Null in
                    match job_of limits item with
                    | job -> (jid, Ok job)
                    | exception Bad (k, m) -> (jid, Error (k, m)))
                | _ ->
                    (Json.Null, Error ("invalid_request", "job must be an object")))
              items
        | Some _ -> invalid "\"jobs\" must be an array"
        | None -> invalid "batch needs a \"jobs\" array"
      in
      Batch { id; jobs }
  | _ -> Single { id; job = job_of limits j }

let decode limits j =
  match decode_exn limits j with
  | req -> Ok req
  | exception Bad (k, m) -> Error (k, m)

(* --- responses ---------------------------------------------------------- *)

let base ~id ~kind ~status rest =
  Json.Obj
    (("fictionette-serve", Json.Num (float_of_int version))
    :: ("id", id)
    :: ("kind", Json.Str kind)
    :: ("status", Json.Str status)
    :: rest)

let with_latency latency_ms rest =
  match latency_ms with
  | None -> rest
  | Some ms -> rest @ [ ("latency_ms", Json.Num ms) ]

let ok_response ~id ~kind ?(degradation = []) ?(retries = 0) ?latency_ms result =
  let rest = [ ("result", result) ] in
  let rest =
    if degradation = [] then rest
    else rest @ [ ("degradation", Json.List (List.map (fun s -> Json.Str s) degradation)) ]
  in
  let rest = if retries = 0 then rest else rest @ [ ("retries", Json.Num (float_of_int retries)) ] in
  base ~id ~kind ~status:"ok" (with_latency latency_ms rest)

let error_response ~id ~kind ~error_kind ?reason ?latency_ms message =
  let err =
    [ ("kind", Json.Str error_kind); ("message", Json.Str message) ]
    @ match reason with None -> [] | Some r -> [ ("reason", Json.Str r) ]
  in
  base ~id ~kind ~status:"error" (with_latency latency_ms [ ("error", Json.Obj err) ])

let overloaded_response ~id ~kind ~retry_after_ms =
  base ~id ~kind ~status:"overloaded" [ ("retry_after_ms", Json.Num retry_after_ms) ]

let response_status j = Option.bind (Json.mem "status" j) Json.str
