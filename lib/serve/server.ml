type config = {
  max_timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  max_source_bytes : int;
  max_batch : int;
  max_budget_mass_ms : float;
  chaos : bool;
  jobs : int option;
  sleep : float -> unit;
}

let default_config =
  {
    max_timeout_ms = 60_000.;
    max_retries = 2;
    backoff_base_ms = 10.;
    backoff_cap_ms = 200.;
    max_source_bytes = 1 lsl 20;
    max_batch = 64;
    max_budget_mass_ms = 600_000.;
    chaos = false;
    jobs = None;
    sleep = Unix.sleepf;
  }

type t = {
  config : config;
  ctx : Handlers.ctx;
  started : float;
  mutable stop : bool;
}

let create ?(config = default_config) () =
  let ctx =
    {
      (Handlers.default_ctx ()) with
      Handlers.max_timeout_ms = config.max_timeout_ms;
      max_retries = config.max_retries;
      backoff_base_ms = config.backoff_base_ms;
      backoff_cap_ms = config.backoff_cap_ms;
      sleep = config.sleep;
    }
  in
  { config; ctx; started = Unix.gettimeofday (); stop = false }

let ctx t = t.ctx
let stopping t = t.stop

let limits t =
  {
    Protocol.max_source_bytes = t.config.max_source_bytes;
    allow_chaos = t.config.chaos;
  }

(* Best-effort id/kind recovery for envelope errors, so even a rejected
   request echoes enough for the client to correlate. *)
let rough_id j =
  match Json.mem "id" j with
  | Some ((Json.Str _ | Json.Num _ | Json.Null) as id) -> id
  | _ -> Json.Null

let rough_kind j =
  match Option.bind (Json.mem "kind" j) Json.str with
  | Some k -> k
  | None -> "unknown"

(* --- admission control --------------------------------------------------- *)

(* Effective budget mass of one job: its requested timeout clamped to
   the ceiling, or the ceiling itself when unspecified. *)
let job_mass t job =
  match Protocol.job_timeout_ms job with
  | Some ms -> Float.min ms t.config.max_timeout_ms
  | None -> t.config.max_timeout_ms

(* Decide per decoded batch job: [`Run job] or [`Shed].  Depth and
   budget-mass thresholds; decode failures occupy no capacity. *)
let admit t jobs =
  let depth = ref 0 in
  let mass = ref 0. in
  List.map
    (fun (id, decoded) ->
      match decoded with
      | Error e -> (id, `Reject e)
      | Ok job ->
          let m = job_mass t job in
          if !depth >= t.config.max_batch then (id, `Shed job)
          else if !depth > 0 && !mass +. m > t.config.max_budget_mass_ms then
            (id, `Shed job)
          else begin
            incr depth;
            mass := !mass +. m;
            (id, `Run job)
          end)
    jobs

let retry_after_ms t admitted_mass =
  let workers =
    float_of_int
      (max 1 (Option.value t.config.jobs ~default:(Parallel.Pool.default_jobs ())))
  in
  Float.max 50. (Float.min t.config.max_timeout_ms (admitted_mass /. workers))

(* --- requests ------------------------------------------------------------ *)

let stats_response t ~id =
  let payload =
    Metrics.to_json t.ctx.Handlers.metrics
      ~uptime_s:(Unix.gettimeofday () -. t.started)
      ~memo:(Core.Flow.Memo.stats t.ctx.Handlers.memo)
  in
  Protocol.ok_response ~id ~kind:"stats" payload

let handle_batch t ~id jobs =
  let plan = admit t jobs in
  let admitted_mass =
    List.fold_left
      (fun acc (_, d) -> match d with `Run j -> acc +. job_mass t j | _ -> acc)
      0. plan
  in
  let plan = Array.of_list plan in
  (* Dispatch the admitted jobs across the pool.  Each slot's work is
     already total ([run_job] never raises), so a batch cannot tear
     down the pool or its sibling jobs. *)
  let responses =
    Parallel.Pool.map ?jobs:t.config.jobs (Array.length plan) (fun i ->
        let jid, decision = plan.(i) in
        match decision with
        | `Run job -> Handlers.run_job t.ctx ~id:jid job
        | `Shed job ->
            Metrics.incr_shed t.ctx.Handlers.metrics;
            Protocol.overloaded_response ~id:jid ~kind:(Protocol.job_kind job)
              ~retry_after_ms:(retry_after_ms t admitted_mass)
        | `Reject (k, m) ->
            Metrics.incr_protocol_errors t.ctx.Handlers.metrics;
            Protocol.error_response ~id:jid ~kind:"unknown" ~error_kind:k m)
  in
  let summary =
    let count pred =
      Array.fold_left
        (fun acc (_, d) -> if pred d then acc + 1 else acc)
        0 plan
    in
    Json.Obj
      [
        ("jobs", Json.Num (float_of_int (Array.length plan)));
        ( "admitted",
          Json.Num (float_of_int (count (function `Run _ -> true | _ -> false)))
        );
        ( "shed",
          Json.Num (float_of_int (count (function `Shed _ -> true | _ -> false)))
        );
      ]
  in
  Protocol.ok_response ~id ~kind:"batch" summary :: Array.to_list responses

let handle_request t = function
  | Protocol.Single { id; job } -> [ Handlers.run_job t.ctx ~id job ]
  | Protocol.Batch { id; jobs } -> handle_batch t ~id jobs
  | Protocol.Stats { id } -> [ stats_response t ~id ]
  | Protocol.Ping { id } ->
      [ Protocol.ok_response ~id ~kind:"ping" (Json.Obj [ ("pong", Json.Bool true) ]) ]
  | Protocol.Shutdown { id } ->
      t.stop <- true;
      [
        Protocol.ok_response ~id ~kind:"shutdown"
          (Json.Obj [ ("stopping", Json.Bool true) ]);
      ]

let is_blank line = String.trim line = ""

let handle_line t line =
  let responses =
    if is_blank line then []
    else
      match Json.parse line with
      | Error msg ->
          Metrics.incr_protocol_errors t.ctx.Handlers.metrics;
          [
            Protocol.error_response ~id:Json.Null ~kind:"unknown"
              ~error_kind:"parse" msg;
          ]
      | Ok j -> (
          match Protocol.decode (limits t) j with
          | Error (k, m) ->
              Metrics.incr_protocol_errors t.ctx.Handlers.metrics;
              [
                Protocol.error_response ~id:(rough_id j) ~kind:(rough_kind j)
                  ~error_kind:k m;
              ]
          | Ok req -> (
              try handle_request t req
              with e ->
                (* Last-resort conversion: the loop survives anything. *)
                [
                  Protocol.error_response ~id:Json.Null ~kind:"unknown"
                    ~error_kind:"crash"
                    ("internal error: " ^ Printexc.to_string e);
                ]))
  in
  List.map Json.to_string responses

(* --- transports ---------------------------------------------------------- *)

let serve_channels t ic oc =
  let rec loop () =
    if not t.stop then
      match input_line ic with
      | line ->
          List.iter
            (fun r ->
              output_string oc r;
              output_char oc '\n')
            (handle_line t line);
          flush oc;
          loop ()
      | exception End_of_file -> ()
  in
  loop ()

let serve_socket t ~path =
  (try Sys.signal Sys.sigpipe Sys.Signal_ignore |> ignore
   with Invalid_argument _ -> ());
  (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      while not t.stop do
        match Unix.accept sock with
        | client, _ ->
            let ic = Unix.in_channel_of_descr client in
            let oc = Unix.out_channel_of_descr client in
            (try serve_channels t ic oc
             with Sys_error _ | Unix.Unix_error _ -> ());
            (try flush oc with Sys_error _ -> ());
            (try Unix.close client with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
