(* RUP/DRAT proof checking, independent of the CDCL solver.

   The checker maintains its own clause database and two-watched-literal
   propagation engine.  Root-level assignments (units of the formula and
   units derived while adding verified lemmas) are permanent; the
   assumptions of each reverse-unit-propagation test are pushed on top
   of them and rolled back afterwards. *)

type step = Add of int list | Delete of int list
type proof = step list

type check_result =
  | Valid
  | Invalid of { step : int; reason : string }

let num_steps = List.length

let num_additions p =
  List.fold_left
    (fun n -> function Add _ -> n + 1 | Delete _ -> n)
    0 p

(* --- growable int vector ------------------------------------------------ *)

module Ivec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = Array.make 8 0; size = 0 }

  let push v x =
    if v.size >= Array.length v.data then begin
      let bigger = Array.make (2 * Array.length v.data) 0 in
      Array.blit v.data 0 bigger 0 v.size;
      v.data <- bigger
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let shrink v n = v.size <- n
end

(* --- checker state ------------------------------------------------------ *)

type clause_rec = {
  mutable lits : int array;  (* DIMACS literals; watches at 0 and 1 *)
  mutable deleted : bool;
  watched : bool;  (* false: satisfied-at-root, unit, or tautology *)
}

type state = {
  mutable clauses : clause_rec array;
  mutable clause_count : int;
  mutable watches : Ivec.t array;  (* per literal index *)
  mutable assign : int array;  (* per var-1: 0 unset / 1 true / -1 false *)
  mutable nvars : int;
  trail : Ivec.t;
  mutable qhead : int;
  (* Sorted-literal key -> stack of clause ids, for deletion matching. *)
  keys : (int list, int list ref) Hashtbl.t;
  mutable root_conflict : bool;
}

let lit_index l = (2 * (abs l - 1)) + if l < 0 then 1 else 0

let create_state nvars =
  let n = max 1 nvars in
  {
    clauses = Array.make 64 { lits = [||]; deleted = true; watched = false };
    clause_count = 0;
    watches = Array.init (2 * n) (fun _ -> Ivec.create ());
    assign = Array.make n 0;
    nvars = n;
    trail = Ivec.create ();
    qhead = 0;
    keys = Hashtbl.create 256;
    root_conflict = false;
  }

let ensure_var st v =
  if v > st.nvars then begin
    let n = max v (2 * st.nvars) in
    let assign = Array.make n 0 in
    Array.blit st.assign 0 assign 0 st.nvars;
    st.assign <- assign;
    let watches =
      Array.init (2 * n) (fun i ->
          if i < Array.length st.watches then st.watches.(i)
          else Ivec.create ())
    in
    st.watches <- watches;
    st.nvars <- n
  end

(* 1 true, -1 false, 0 unassigned. *)
let value st l =
  let a = st.assign.(abs l - 1) in
  if a = 0 then 0 else if (a > 0) = (l > 0) then 1 else -1

let enqueue st l =
  st.assign.(abs l - 1) <- (if l > 0 then 1 else -1);
  Ivec.push st.trail l

let alloc st lits watched =
  if st.clause_count >= Array.length st.clauses then begin
    let bigger =
      Array.make (2 * Array.length st.clauses)
        { lits = [||]; deleted = true; watched = false }
    in
    Array.blit st.clauses 0 bigger 0 st.clause_count;
    st.clauses <- bigger
  end;
  let id = st.clause_count in
  st.clauses.(id) <- { lits; deleted = false; watched };
  st.clause_count <- id + 1;
  id

let watch st id =
  let c = st.clauses.(id) in
  Ivec.push st.watches.(lit_index (-c.lits.(0))) id;
  Ivec.push st.watches.(lit_index (-c.lits.(1))) id

(* Two-watched-literal propagation from the current queue head.  Returns
   [true] on conflict.  Watch moves performed under temporary
   assumptions stay sound after rollback: the invariant (a watched
   literal is non-false or the clause is unit/satisfied) can only get
   weaker-to-stronger as assignments are undone. *)
let propagate st =
  let conflict = ref false in
  while (not !conflict) && st.qhead < Ivec.size st.trail do
    let p = Ivec.get st.trail st.qhead in
    st.qhead <- st.qhead + 1;
    let ws = st.watches.(lit_index p) in
    let n = Ivec.size ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let id = Ivec.get ws !i in
      incr i;
      let c = st.clauses.(id) in
      if c.deleted then () (* drop from the watch list *)
      else begin
        let false_lit = -p in
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        if value st c.lits.(0) = 1 then begin
          Ivec.set ws !keep id;
          incr keep
        end
        else begin
          let len = Array.length c.lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if value st c.lits.(!k) <> -1 then begin
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- false_lit;
              Ivec.push st.watches.(lit_index (-c.lits.(1))) id;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            Ivec.set ws !keep id;
            incr keep;
            if value st c.lits.(0) = -1 then begin
              conflict := true;
              while !i < n do
                Ivec.set ws !keep (Ivec.get ws !i);
                incr keep;
                incr i
              done;
              st.qhead <- Ivec.size st.trail
            end
            else enqueue st c.lits.(0)
          end
        end
      end
    done;
    Ivec.shrink ws !keep
  done;
  !conflict

let rollback st saved =
  for i = Ivec.size st.trail - 1 downto saved do
    st.assign.(abs (Ivec.get st.trail i) - 1) <- 0
  done;
  Ivec.shrink st.trail saved;
  st.qhead <- saved

let normalize lits =
  let sorted = List.sort_uniq compare lits in
  let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
  (sorted, tautology)

let register_key st key id =
  match Hashtbl.find_opt st.keys key with
  | Some ids -> ids := id :: !ids
  | None -> Hashtbl.add st.keys key (ref [ id ])

(* Add a clause (formula or verified lemma) under the current root
   assignment, propagating any resulting units permanently. *)
let add_clause st lits =
  List.iter (fun l -> ensure_var st (abs l)) lits;
  let key, tautology = normalize lits in
  if tautology then begin
    let id = alloc st [||] false in
    st.clauses.(id).deleted <- true;
    register_key st key id
  end
  else begin
    let non_false = List.filter (fun l -> value st l <> -1) key in
    let satisfied = List.exists (fun l -> value st l = 1) key in
    if satisfied then register_key st key (alloc st (Array.of_list key) false)
    else
      match non_false with
      | [] ->
          register_key st key (alloc st (Array.of_list key) false);
          st.root_conflict <- true
      | [ l ] ->
          register_key st key (alloc st (Array.of_list key) false);
          enqueue st l;
          if propagate st then st.root_conflict <- true
      | l1 :: l2 :: _ ->
          (* Watch two non-false literals. *)
          let rest =
            List.filter (fun l -> l <> l1 && l <> l2) key
          in
          let arr = Array.of_list (l1 :: l2 :: rest) in
          let id = alloc st arr true in
          register_key st key id;
          watch st id
  end

let delete_clause st lits =
  let key, _ = normalize lits in
  match Hashtbl.find_opt st.keys key with
  | None -> () (* unknown deletions are ignored, like drat-trim *)
  | Some ids ->
      let rec pick = function
        | [] -> []
        | id :: rest ->
            if not st.clauses.(id).deleted then begin
              st.clauses.(id).deleted <- true;
              rest
            end
            else id :: pick rest
      in
      ids := pick !ids

(* Reverse-unit-propagation test of a lemma. *)
let rup st lits =
  if st.root_conflict then true
  else begin
    let key, tautology = normalize lits in
    if tautology then true
    else if List.exists (fun l -> value st l = 1) key then true
    else begin
      let saved = Ivec.size st.trail in
      List.iter (fun l -> if value st l = 0 then enqueue st (-l)) key;
      let conflict = propagate st in
      rollback st saved;
      conflict
    end
  end

let check ~nvars ~clauses proof =
  let st = create_state nvars in
  List.iter (fun c -> add_clause st c) clauses;
  let result = ref None in
  let stepno = ref (-1) in
  (try
     List.iter
       (fun step ->
         incr stepno;
         match step with
         | Delete lits -> delete_clause st lits
         | Add lits ->
             if not (rup st lits) then begin
               result :=
                 Some
                   (Invalid
                      {
                        step = !stepno;
                        reason =
                          Printf.sprintf
                            "clause {%s} is not a reverse-unit-propagation \
                             consequence"
                            (String.concat " "
                               (List.map string_of_int lits));
                      });
               raise Exit
             end
             else if lits = [] || st.root_conflict then begin
               result := Some Valid;
               raise Exit
             end
             else add_clause st lits)
       proof
   with Exit -> ());
  match !result with
  | Some r -> r
  | None ->
      if st.root_conflict then Valid
      else
        Invalid
          { step = -1; reason = "proof does not derive the empty clause" }

let is_valid ~nvars ~clauses proof = check ~nvars ~clauses proof = Valid

(* --- textual DRAT format ------------------------------------------------ *)

let to_string proof =
  let buf = Buffer.create 4096 in
  List.iter
    (fun step ->
      let lits =
        match step with
        | Add lits -> lits
        | Delete lits ->
            Buffer.add_string buf "d ";
            lits
      in
      List.iter
        (fun l ->
          Buffer.add_string buf (string_of_int l);
          Buffer.add_char buf ' ')
        lits;
      Buffer.add_string buf "0\n")
    proof;
  Buffer.contents buf

let of_string text =
  let steps = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else begin
        let toks =
          String.split_on_char ' ' line |> List.filter (( <> ) "")
        in
        let deletion, toks =
          match toks with "d" :: rest -> (true, rest) | _ -> (false, toks)
        in
        let lits =
          List.map
            (fun tok ->
              match int_of_string_opt tok with
              | Some l -> l
              | None -> failwith "Drat.of_string: bad literal")
            toks
        in
        match List.rev lits with
        | 0 :: rev_lits ->
            let lits = List.rev rev_lits in
            if List.mem 0 lits then
              failwith "Drat.of_string: literal 0 inside a clause";
            steps := (if deletion then Delete lits else Add lits) :: !steps
        | _ -> failwith "Drat.of_string: unterminated clause"
      end)
    (String.split_on_char '\n' text);
  List.rev !steps

let pp_result ppf = function
  | Valid -> Format.pp_print_string ppf "valid"
  | Invalid { step; reason } ->
      if step < 0 then Format.fprintf ppf "invalid (%s)" reason
      else Format.fprintf ppf "invalid at step %d (%s)" step reason
