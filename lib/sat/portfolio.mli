(** A deterministic solver portfolio: [K] diversified {!Solver}
    configurations race on one {!Simplify}-preprocessed instance, first
    definitive verdict wins.

    {2 Determinism}

    The race is round-based.  Each round gives every member the same
    Luby-escalating conflict slice via {!Parallel.Pool.map}; a member
    reaching Sat/Unsat publishes its index into a shared minimum cell,
    and a member is cancelled (through its {!Budget}) only by a
    {e lower-indexed} winner.  Hence the winning member is the
    lowest-indexed one that decides within its slice — independent of
    scheduling — and the verdict, winner index, model and DRAT proof are
    bit-identical for a fixed (instance, K) at any [--jobs] count.
    (Under an external budget the [Unknown] cut-off point is
    time-dependent, as for a single solver.)

    {2 Certification}

    With [~certify:true] every member logs DRAT.  The portfolio's
    {!proof} is the {!Simplify} trace followed by the winner's
    refutation, and it checks against the {e original} clauses; a Sat
    model is run through {!Simplify.result.reconstruct} so it satisfies
    the original formula including eliminated variables. *)

type t

val default_k : unit -> int
(** Portfolio width used when [?k] is omitted: the value set with
    {!set_default_k} if any, else [FICTIONETTE_SAT_PORTFOLIO] (when a
    positive integer), else [1].  Callers treat [1] as "portfolio off"
    and keep their plain single-solver path. *)

val set_default_k : int -> unit
(** Process-wide override (e.g. from [--sat-portfolio K]); takes
    precedence over the environment.
    @raise Invalid_argument when the width is not positive. *)

val create :
  ?k:int -> ?certify:bool -> nvars:int -> Solver.lit list list -> t
(** Simplify the clause set once and set up [k] member solvers over the
    simplified clauses.  Assumptions and incremental clause additions
    are not supported — build a fresh portfolio per instance.
    [certify] (default [false]) enables DRAT logging on every member. *)

val solve : ?budget:Budget.t -> t -> Solver.result
(** Race the members.  Without a budget this runs rounds until some
    member decides.  A budget's conflict allowance is a per-member total
    for this call; deadline and cancellation are polled by every member.
    [Unknown] leaves the portfolio resumable: a later call continues the
    round escalation where it stopped. *)

val value : t -> Solver.lit -> bool
(** Literal value in the reconstructed model of the {e original}
    formula (eliminated variables included).
    @raise Invalid_argument if the last {!solve} was not [Sat]. *)

val model : t -> bool array
(** Reconstructed model, indexed by [var - 1].
    @raise Invalid_argument if the last {!solve} was not [Sat]. *)

val proof : t -> Drat.proof
(** Simplification trace followed by the winning member's proof steps.
    Validates against the original clauses ({!Drat.check}).  The
    simplify prefix alone when preprocessing refuted the instance;
    [[]] when [certify] was off. *)

val winner : t -> int option
(** Index of the member whose verdict was returned by the last
    definitive {!solve}; [None] before that or when {!Simplify} already
    refuted the instance. *)

val k : t -> int
val num_vars : t -> int

val counters : t -> Simplify.counters
(** Preprocessing work done at {!create} time. *)

val stats : t -> Solver.stats
(** Pointwise sum over all members, with the [simplify_*] fields filled
    from {!counters}. *)

val member_solver : t -> int -> Solver.t
(** The underlying solver of member [i] — exposed for tests (losing
    members must stay resumable after a race cancels them). *)

val config_name : int -> string
(** Stable human-readable name of member [i]'s configuration, for bench
    output ("tuned", "tuned-r512-s1", "legacy-s3", …). *)
