(** Clause-level preprocessing (SatELite-style inprocessing) shared by
    the {!Portfolio} members.

    Four passes run to a bounded fixpoint over a clause database:

    - {b subsumption}: a clause [C ⊆ D] deletes [D] (unit clauses
      subsume everything satisfied by them, so root-level unit
      propagation is a special case);
    - {b self-subsuming resolution}: [C = C' ∪ {l}] with [C' ⊆ D] and
      [¬l ∈ D] strengthens [D] to [D \ {¬l}];
    - {b bounded variable elimination}: a variable whose resolvent set
      is no larger than the clauses it replaces is resolved away
      (pure literals are the zero-resolvent case); deleted occurrences
      are pushed on a reconstruction stack so any model of the
      simplified formula extends to a model of the original;
    - {b vivification}: assuming the negations of a clause's literals
      one by one under unit propagation either shortens the clause or
      leaves it alone.

    Every clause addition is a reverse-unit-propagation (RUP)
    consequence of the database at that point and every deletion is
    logged, so {!result.proof} is a valid DRAT prefix: appending the
    refutation a solver derives {e from the simplified clauses} yields
    a proof of the {e original} formula that {!Drat.check} accepts. *)

type counters = {
  subsumed : int;  (** Clauses deleted by subsumption. *)
  strengthened : int;  (** Clauses strengthened by self-subsumption. *)
  eliminated_vars : int;  (** Variables eliminated (incl. pure literals). *)
  vivified : int;  (** Clauses shortened by vivification. *)
}

type result = {
  clauses : Solver.lit list list;
      (** The simplified clause set, over the original variable
          numbering (eliminated variables simply no longer occur).
          Contains [[]] iff preprocessing already refuted the formula. *)
  nvars : int;  (** Unchanged from the input. *)
  proof : Drat.proof;
      (** DRAT steps transforming the original set into [clauses];
          prepend to a solve proof to certify against the original. *)
  counters : counters;
  eliminated : int list;  (** Eliminated variables, ascending. *)
  reconstruct : bool array -> bool array;
      (** [reconstruct m] takes a model of [clauses] (indexed by
          [var - 1], length >= [nvars]) and returns a model of the
          original clauses: values of eliminated variables are fixed
          from the reconstruction stack, all others pass through. *)
}

val run :
  ?frozen:Solver.lit list -> nvars:int -> Solver.lit list list -> result
(** Simplify the clause set.  [frozen] variables (given as positive
    literals) are never eliminated — freeze anything that outside code
    constrains later (assumptions, incremental additions).  The pass
    budget is internal and deterministic: identical inputs produce
    identical outputs, proofs and counters on every host. *)
