(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP learning with recursive clause minimization, VSIDS variable
    activities, phase saving, Luby restarts, and activity-based learned
    clause deletion.  It replaces the off-the-shelf SAT/SMT back ends used
    by the paper's exact physical design [46] and equivalence checking
    [50].

    Literals follow the DIMACS convention: variables are positive
    integers, and a negative integer denotes the complement of the
    corresponding variable. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown of Budget.reason
      (** The solve was interrupted by its {!Budget} before reaching a
          verdict.  The solver remains usable: calling [solve] again with
          a larger budget resumes from all clauses learned so far. *)

type lit = int
(** [v] for variable [v], [-v] for its negation; [v >= 1]. *)

val create : unit -> t

val new_var : t -> lit
(** Allocate a fresh variable and return it as a positive literal. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Number of problem (non-learned) clauses added so far, counting those
    simplified away at add time. *)

val add_clause : t -> lit list -> unit
(** Add a clause.  Tautologies are dropped and duplicate literals merged.
    Adding the empty clause makes the instance trivially unsatisfiable.
    @raise Invalid_argument on literal 0 or an unallocated variable. *)

val solve : ?assumptions:lit list -> ?budget:Budget.t -> t -> result
(** Solve under the given assumptions.  The solver is incremental: more
    clauses and variables may be added after a call to [solve], and
    subsequent calls reuse learned clauses.

    The budget (default {!Budget.unlimited}) bounds the call: the
    conflict allowance is relative to this call and exact; the deadline
    and the cancellation flag are polled every few conflicts/decisions.
    A tripped budget yields [Unknown] — never an exception — and leaves
    the solver resumable. *)

val value : t -> lit -> bool
(** Value of a literal in the model found by the last [solve].
    @raise Invalid_argument if the last call did not return [Sat]. *)

val model : t -> bool array
(** Values of all variables, indexed by [var - 1]. *)

(** {2 Proof logging}

    When enabled, the solver records every learned clause and every
    learned-clause deletion as a {!Drat} proof step.  An [Unsat] verdict
    (without assumptions) closes the proof with the empty clause, and the
    recorded sequence can then be verified against the problem clauses by
    the independent checker in {!Drat} — without trusting any part of
    this solver.

    Enable logging before the first call to {!solve}; clauses learned
    while logging was off are not replayed retroactively.  An [Unsat]
    obtained {e under assumptions} is not certifiable this way (the proof
    will not contain the empty clause). *)

val enable_proof : t -> unit
(** Turn on proof logging.  Idempotent. *)

val proof_enabled : t -> bool

val proof : t -> Drat.proof
(** All steps logged so far, in order.  [[]] when logging is off. *)

(** {2 Statistics} *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned_clauses : int;  (** Currently live learned clauses. *)
}

val stats : t -> stats
(** Cumulative counters over the solver's lifetime. *)

val empty_stats : stats

val add_stats : stats -> stats -> stats
(** Pointwise sum — for aggregating across solver instances. *)

val pp_stats : Format.formatter -> stats -> unit
(** The old human-readable one-line form. *)
