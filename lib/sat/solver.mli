(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation
    (blocking literals cached next to each watch), dedicated implication
    lists for binary clauses, first-UIP learning with cheap clause
    minimization, VSIDS variable activities, phase saving, Luby restarts,
    and Glucose-style glue-based learned clause deletion.  It replaces
    the off-the-shelf SAT/SMT back ends used by the paper's exact
    physical design [46] and equivalence checking [50].

    Literals follow the DIMACS convention: variables are positive
    integers, and a negative integer denotes the complement of the
    corresponding variable. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown of Budget.reason
      (** The solve was interrupted by its {!Budget} before reaching a
          verdict.  The solver remains usable: calling [solve] again with
          a larger budget resumes from all clauses learned so far. *)

type lit = int
(** [v] for variable [v], [-v] for its negation; [v >= 1]. *)

(** {2 Configuration}

    The pre-overhaul solver behavior is kept in-tree as
    {!legacy_config} so performance comparisons (see [bench/main.exe
    sat]) pit the two against each other inside one binary.  Both
    configurations are complete and produce identical Sat/Unsat
    verdicts; they differ only in data-structure and heuristic choices
    on the hot path. *)

type config = {
  binary_specialization : bool;
      (** Keep 2-literal clauses (problem and learned) in per-literal
          implication lists; propagation over them never dereferences a
          clause.  Learned binaries are still DRAT-logged and are
          immortal (never deleted). *)
  blocking_literals : bool;
      (** Cache a blocking literal next to each watch entry; a satisfied
          blocker skips the clause without touching clause memory. *)
  glue_reduction : bool;
      (** Reduce the learned database by LBD ("glue"): clauses with glue
          <= 2 are immortal, ties are broken by activity, and watch lists
          are compacted in place instead of rebuilt from scratch. *)
  restart_base : int;
      (** Conflicts per Luby restart unit (round [r] of a [solve] call
          allows [restart_base * luby r] conflicts before restarting).
          Historical and default value: 100. *)
  reduce_slack : int;
      (** Extra learned clauses tolerated beyond twice the problem size
          before a reduction pass fires.  Historical and default value:
          2000. *)
  seed : int;
      (** Branching seed.  [0] (default) leaves the historical behavior
          untouched.  A nonzero seed deterministically perturbs the
          initial VSIDS activities (tie-breaking epsilons, orders of
          magnitude below one activity bump) and the initial saved
          phases, so portfolio members explore different parts of the
          search space.  Completeness and verdicts are unaffected. *)
}

val default_config : config
(** All optimizations on. *)

val legacy_config : config
(** The pre-overhaul solver: binaries in the clause arena, no blocking
    literals, activity-based reduction with a full watch rebuild. *)

val set_global_config : config -> unit
(** Set the configuration used by {!create} when none is given
    explicitly.  Initially {!default_config}. *)

val global_config : unit -> config

val create : ?config:config -> unit -> t
(** [config] defaults to the current global configuration. *)

val config : t -> config

val new_var : t -> lit
(** Allocate a fresh variable and return it as a positive literal. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Number of problem (non-learned) clauses added so far, counting those
    simplified away at add time. *)

val num_binary_clauses : t -> int
(** Number of binary clauses (problem and learned) held in the
    specialized implication lists.  0 when [binary_specialization] is
    off. *)

val add_clause : t -> lit list -> unit
(** Add a clause.  Tautologies are dropped and duplicate literals merged.
    Adding the empty clause makes the instance trivially unsatisfiable.
    @raise Invalid_argument on literal 0 or an unallocated variable. *)

val solve : ?assumptions:lit list -> ?budget:Budget.t -> t -> result
(** Solve under the given assumptions.  The solver is incremental: more
    clauses and variables may be added after a call to [solve], and
    subsequent calls reuse learned clauses.

    The budget (default {!Budget.unlimited}) bounds the call: the
    conflict allowance is relative to this call and exact; the deadline
    and the cancellation flag are polled every few conflicts/decisions.
    A tripped budget yields [Unknown] — never an exception — and leaves
    the solver resumable. *)

val value : t -> lit -> bool
(** Value of a literal in the model found by the last [solve].
    @raise Invalid_argument if the last call did not return [Sat]. *)

val model : t -> bool array
(** Values of all variables, indexed by [var - 1]. *)

(** {2 Proof logging}

    When enabled, the solver records every learned clause and every
    learned-clause deletion as a {!Drat} proof step.  An [Unsat] verdict
    (without assumptions) closes the proof with the empty clause, and the
    recorded sequence can then be verified against the problem clauses by
    the independent checker in {!Drat} — without trusting any part of
    this solver.

    Enable logging before the first call to {!solve}; clauses learned
    while logging was off are not replayed retroactively.  An [Unsat]
    obtained {e under assumptions} is not certifiable this way (the proof
    will not contain the empty clause). *)

val enable_proof : t -> unit
(** Turn on proof logging.  Idempotent. *)

val proof_enabled : t -> bool

val proof : t -> Drat.proof
(** All steps logged so far, in order.  [[]] when logging is off. *)

(** {2 Statistics} *)

val lbd_hist_bins : int
(** Length of {!stats.lbd_hist}; the last bin collects everything at or
    above [lbd_hist_bins - 1]. *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;  (** Trail literals propagated. *)
  binary_propagations : int;
      (** Implications produced by the binary implication lists. *)
  restarts : int;
  learned_clauses : int;  (** Currently live learned clauses. *)
  learned_binaries : int;
      (** Live learned binaries held in the implication lists. *)
  deleted_clauses : int;  (** Cumulative deletions by [reduce_db]. *)
  reductions : int;  (** Number of [reduce_db] passes. *)
  watch_compaction_scans : int;
      (** Watch entries scanned by in-place compaction — the actual
          database-maintenance work, replacing the old full rebuild. *)
  lbd_hist : int array;
      (** Per-solve LBD histogram (reset at each [solve]); bin [i] counts
          learned clauses with glue [i], the last bin is a catch-all.
          Treat as read-only. *)
  lbd_sum : int;  (** Cumulative sum of learned-clause glues. *)
  lbd_count : int;
  solve_time_s : float;  (** Cumulative wall time inside [solve]. *)
  simplify_subsumed : int;
      (** Clauses deleted by subsumption during {!Simplify}
          preprocessing.  Always 0 on a bare solver; the portfolio layer
          fills these four in when it attaches a simplifier run. *)
  simplify_strengthened : int;
      (** Clauses strengthened by self-subsuming resolution. *)
  simplify_eliminated : int;  (** Variables removed by bounded elimination. *)
  simplify_vivified : int;  (** Clauses shortened by vivification. *)
}

val stats : t -> stats
(** Counters over the solver's lifetime (cumulative, except [lbd_hist]
    which describes the most recent [solve] call). *)

val empty_stats : stats

val add_stats : stats -> stats -> stats
(** Pointwise sum — for aggregating across solver instances. *)

val mean_lbd : stats -> float
(** Mean glue over all learned clauses, 0 if none were learned. *)

val propagations_per_sec : stats -> float
(** (propagations + binary_propagations) / solve_time_s, 0 when no time
    was spent. *)

val pp_stats : Format.formatter -> stats -> unit
(** One stable human-readable line. *)
