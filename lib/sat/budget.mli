(** Unified resource budgets for long-running solves.

    A budget bounds a computation three ways at once: a wall-clock
    {e deadline} (absolute, in [Unix.gettimeofday] seconds), a
    {e conflict} allowance (CDCL conflicts per [solve] call), and an
    external {e cancellation} flag (polled cooperatively).  The flow
    threads a single budget through every expensive step; {!Solver.solve}
    checks it at its restart and conflict checkpoints and returns
    [Unknown] instead of raising when any bound trips.

    The same type is re-exported as [Core.Budget] with flow-level
    helpers. *)

type reason =
  | Deadline  (** The wall-clock deadline passed. *)
  | Conflicts  (** The conflict allowance was spent. *)
  | Cancelled  (** The external cancellation flag was raised. *)

type t = {
  deadline : float option;
      (** Absolute wall-clock instant ([Unix.gettimeofday] scale). *)
  conflicts : int option;  (** Conflict allowance per [solve] call. *)
  cancelled : unit -> bool;  (** Cooperative cancellation flag. *)
}

val unlimited : t
(** No deadline, no conflict bound, never cancelled. *)

val of_seconds : ?conflicts:int -> ?cancelled:(unit -> bool) -> float -> t
(** [of_seconds s] expires [s] seconds from now.
    @raise Invalid_argument when [s] is NaN, infinite, or negative —
    callers deriving budgets arithmetically (the design server computes
    per-request shares and backoff remainders) would otherwise plant a
    deadline that never trips. *)

val of_conflicts : int -> t

val with_conflicts : int option -> t -> t
(** Replace the conflict allowance, keeping deadline and cancellation. *)

val without_deadline : t -> t

val is_unlimited : t -> bool
(** No deadline and no conflict bound (cancellation may still fire). *)

val remaining_s : t -> float option
(** Seconds until the deadline ([None] when unbounded); can be
    negative. *)

val remaining : t -> float option
(** Like {!remaining_s} but clamped at [0.] — the form safe to feed back
    into {!of_seconds} when deriving a child budget from what is left of
    a parent (an already-expired parent yields a zero-length child, not
    an [Invalid_argument]). *)

val expired : t -> bool
(** The deadline (if any) has passed. *)

val check : t -> reason option
(** [Some Deadline] or [Some Cancelled] when tripped; conflict
    accounting is the solver's job and is not reflected here. *)

val fraction : float -> t -> t
(** [fraction f b] is [b] with the {e remaining} wall-clock time and the
    conflict allowance both scaled by [f] — a sub-budget for one stage of
    a larger computation. *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit
