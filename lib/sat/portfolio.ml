(* Round-raced solver portfolio over a Simplify-preprocessed instance.

   Determinism argument (pinned by test/test_portfolio.ml at several
   --jobs counts): let D be the set of members that reach a definitive
   verdict within the current round's conflict slice when run to the
   slice's end.  Only definitive members publish to the winner cell, so
   every published index is in D; the cell keeps the minimum; and a
   member is cancelled only when the cell holds a *strictly lower*
   index, so min(D) itself can never be cancelled — it always runs its
   full slice and publishes.  The final cell value is therefore exactly
   min(D), whatever the schedule, and the returned (verdict, model,
   proof) come from that member's deterministic serial run.  Losing
   members' post-cancellation states are schedule-dependent but are
   never read. *)

let env_k () =
  match Sys.getenv_opt "FICTIONETTE_SAT_PORTFOLIO" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> Some k
      | _ -> None)

let override = ref None

let set_default_k k =
  if k < 1 then invalid_arg "Portfolio.set_default_k: width must be >= 1"
  else override := Some k

let default_k () =
  match !override with
  | Some k -> k
  | None -> ( match env_k () with Some k -> k | None -> 1)

(* Member 0 is the plain tuned solver — the portfolio at k=1 is the
   baseline configuration plus preprocessing.  Further members diversify
   restart pacing, database reduction and the branching seed. *)
let member_config i =
  let d = Solver.default_config in
  match i with
  | 0 -> d
  | 1 -> { d with seed = 1; restart_base = 512 }
  | 2 -> { d with seed = 2; restart_base = 32; reduce_slack = 500 }
  | 3 -> { Solver.legacy_config with seed = 3 }
  | _ ->
      let bases = [| 100; 512; 32; 200 |] in
      { d with seed = i; restart_base = bases.(i mod 4) }

let config_name i =
  match i with
  | 0 -> "tuned"
  | 1 -> "tuned-r512-s1"
  | 2 -> "tuned-r32-agile-s2"
  | 3 -> "legacy-s3"
  | _ -> Printf.sprintf "tuned-r%d-s%d" [| 100; 512; 32; 200 |].(i mod 4) i

type t = {
  p_nvars : int;
  p_k : int;
  members : Solver.t array;
  simp : Simplify.result;
  refuted_by_simplify : bool;
  mutable round : int;  (* persists across solve calls for resume *)
  mutable last : Solver.result;
  mutable last_winner : int option;
  mutable last_model : bool array option;
}

(* Luby sequence 1 1 2 1 1 2 4 ... (0-indexed), as in Solver. *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let create ?(k = default_k ()) ?(certify = false) ~nvars clauses =
  if k < 1 then invalid_arg "Portfolio.create: k must be >= 1";
  let simp = Simplify.run ~nvars clauses in
  let refuted = List.mem [] simp.Simplify.clauses in
  let members =
    Array.init k (fun i ->
        let s = Solver.create ~config:(member_config i) () in
        if certify then Solver.enable_proof s;
        for _ = 1 to nvars do
          ignore (Solver.new_var s)
        done;
        if not refuted then
          List.iter (fun c -> Solver.add_clause s c) simp.Simplify.clauses;
        s)
  in
  {
    p_nvars = nvars;
    p_k = k;
    members;
    simp;
    refuted_by_simplify = refuted;
    round = 0;
    last = Solver.Unknown Budget.Conflicts;
    last_winner = None;
    last_model = None;
  }

let base_slice = 3000

let solve ?(budget = Budget.unlimited) t =
  (if t.refuted_by_simplify then begin
     t.last <- Solver.Unsat;
     t.last_winner <- None;
     t.last_model <- None
   end
   else begin
    let winner_cell = Atomic.make max_int in
    let winner_verdict = ref Solver.Unsat in
    (* Per-member conflict spend this call, against the external
       allowance (interpreted per member, as for a single solver). *)
    let spent = ref 0 in
    let finished = ref None in
    while !finished = None do
      match Budget.check budget with
      | Some r -> finished := Some (Solver.Unknown r)
      | None ->
          let allowance =
            match budget.Budget.conflicts with
            | None -> None
            | Some c -> Some (c - !spent)
          in
          if allowance <> None && Option.get allowance <= 0 then
            finished := Some (Solver.Unknown Budget.Conflicts)
          else begin
            t.round <- t.round + 1;
            let slice =
              let s = base_slice * luby t.round in
              match allowance with None -> s | Some a -> min s a
            in
            spent := !spent + slice;
            let results =
              Parallel.Pool.map t.p_k (fun i ->
                  if Atomic.get winner_cell < i then Solver.Unknown Budget.Cancelled
                  else begin
                    let cancelled () =
                      Atomic.get winner_cell < i || budget.Budget.cancelled ()
                    in
                    let b =
                      {
                        Budget.deadline = budget.Budget.deadline;
                        conflicts = Some slice;
                        cancelled;
                      }
                    in
                    let r = Solver.solve ~budget:b t.members.(i) in
                    (match r with
                    | Solver.Sat | Solver.Unsat ->
                        let rec claim () =
                          let cur = Atomic.get winner_cell in
                          if cur > i then
                            if not (Atomic.compare_and_set winner_cell cur i)
                            then claim ()
                        in
                        claim ()
                    | Solver.Unknown _ -> ());
                    r
                  end)
            in
            let w = Atomic.get winner_cell in
            if w < max_int then begin
              (match results.(w) with
              | Solver.Sat | Solver.Unsat ->
                  winner_verdict := results.(w)
              | Solver.Unknown _ -> assert false);
              t.last_winner <- Some w;
              finished := Some !winner_verdict
            end
            else begin
              (* No verdict this round; surface a tripped deadline or
                 external cancellation (all members saw the same one). *)
              let ext =
                Array.fold_left
                  (fun acc r ->
                    match (acc, r) with
                    | Some _, _ -> acc
                    | None, Solver.Unknown Budget.Deadline ->
                        Some (Solver.Unknown Budget.Deadline)
                    | None, _ -> None)
                  None results
              in
              match ext with
              | Some u -> finished := Some u
              | None ->
                  if budget.Budget.cancelled () then
                    finished := Some (Solver.Unknown Budget.Cancelled)
            end
          end
    done;
     (match !finished with Some r -> t.last <- r | None -> assert false);
     match t.last, t.last_winner with
     | Solver.Sat, Some w ->
         t.last_model <-
           Some (t.simp.Simplify.reconstruct (Solver.model t.members.(w)))
     | _ -> t.last_model <- None
   end);
  t.last

let model t =
  match t.last_model with
  | Some m -> Array.copy m
  | None -> invalid_arg "Portfolio.model: last solve was not Sat"

let value t l =
  match t.last_model with
  | Some m ->
      let v = abs l in
      if v < 1 || v > t.p_nvars then invalid_arg "Portfolio.value"
      else
        let x = m.(v - 1) in
        if l > 0 then x else not x
  | None -> invalid_arg "Portfolio.value: last solve was not Sat"

let proof t =
  let tail =
    match t.last_winner with
    | Some w -> Solver.proof t.members.(w)
    | None -> []
  in
  t.simp.Simplify.proof @ tail

let winner t = t.last_winner
let k t = t.p_k
let num_vars t = t.p_nvars
let counters t = t.simp.Simplify.counters

let stats t =
  let base =
    Array.fold_left
      (fun acc s -> Solver.add_stats acc (Solver.stats s))
      Solver.empty_stats t.members
  in
  let c = t.simp.Simplify.counters in
  {
    base with
    Solver.simplify_subsumed = c.Simplify.subsumed;
    simplify_strengthened = c.Simplify.strengthened;
    simplify_eliminated = c.Simplify.eliminated_vars;
    simplify_vivified = c.Simplify.vivified;
  }

let member_solver t i =
  if i < 0 || i >= t.p_k then invalid_arg "Portfolio.member_solver"
  else t.members.(i)
