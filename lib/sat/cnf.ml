type t = {
  solver : Solver.t;
  mutable clauses : Solver.lit list list;  (* reversed, for DIMACS *)
  mutable true_lit : Solver.lit option;
}

let create ?config () =
  { solver = Solver.create ?config (); clauses = []; true_lit = None }
let solver f = f.solver
let clauses f = List.rev f.clauses
let num_vars f = Solver.num_vars f.solver
let fresh f = Solver.new_var f.solver
let fresh_many f n = Array.init n (fun _ -> fresh f)

let add_clause f c =
  f.clauses <- c :: f.clauses;
  Solver.add_clause f.solver c

let const_true f =
  match f.true_lit with
  | Some l -> l
  | None ->
      let l = fresh f in
      add_clause f [ l ];
      f.true_lit <- Some l;
      l

let const_false f = -const_true f

let not_ l = -l

let equals_and f y a b =
  add_clause f [ -y; a ];
  add_clause f [ -y; b ];
  add_clause f [ y; -a; -b ]

let equals_or f y a b =
  add_clause f [ y; -a ];
  add_clause f [ y; -b ];
  add_clause f [ -y; a; b ]

let equals_xor f y a b =
  add_clause f [ -y; a; b ];
  add_clause f [ -y; -a; -b ];
  add_clause f [ y; -a; b ];
  add_clause f [ y; a; -b ]

let and_ f a b =
  let y = fresh f in
  equals_and f y a b;
  y

let or_ f a b =
  let y = fresh f in
  equals_or f y a b;
  y

let xor_ f a b =
  let y = fresh f in
  equals_xor f y a b;
  y

let and_list f = function
  | [] -> const_true f
  | [ l ] -> l
  | lits ->
      let y = fresh f in
      List.iter (fun l -> add_clause f [ -y; l ]) lits;
      add_clause f (y :: List.map (fun l -> -l) lits);
      y

let or_list f = function
  | [] -> const_false f
  | [ l ] -> l
  | lits ->
      let y = fresh f in
      List.iter (fun l -> add_clause f [ y; -l ]) lits;
      add_clause f (-y :: lits);
      y

let ite f c a b =
  let y = fresh f in
  add_clause f [ -y; -c; a ];
  add_clause f [ y; -c; -a ];
  add_clause f [ -y; c; b ];
  add_clause f [ y; c; -b ];
  y

let iff f a b =
  add_clause f [ -a; b ];
  add_clause f [ a; -b ]

let implies f a b = add_clause f [ -a; b ]

let at_least_one f lits = add_clause f lits

type amo_encoding = Pairwise | Sequential | Commander | Auto

let at_most_one_pairwise f lits =
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> add_clause f [ -a; -b ]) rest;
        pairs rest
  in
  pairs lits

(* Sinz sequential counter specialized to k = 1: auxiliary [s_i] means
   "some literal among the first i+1 is true".  n - 1 fresh variables
   and 3n - 4 clauses, all binary — which the solver's dedicated binary
   implication lists propagate without touching clause memory. *)
let at_most_one_sequential f lits =
  match lits with
  | [] | [ _ ] -> ()
  | _ ->
      let lits = Array.of_list lits in
      let n = Array.length lits in
      let s = Array.init (n - 1) (fun _ -> fresh f) in
      add_clause f [ -lits.(0); s.(0) ];
      for i = 1 to n - 2 do
        add_clause f [ -lits.(i); s.(i) ];
        add_clause f [ -s.(i - 1); s.(i) ];
        add_clause f [ -lits.(i); -s.(i - 1) ]
      done;
      add_clause f [ -lits.(n - 1); -s.(n - 2) ]

(* Commander encoding: split into groups of 3 with a commander variable
   each; at most one commander (recursively).  This is the historical
   encoding used for long at-most-one chains before the sequential
   counter existed. *)
let rec at_most_one_commander f lits =
  match lits with
  | [] | [ _ ] -> ()
  | _ when List.length lits <= 6 -> at_most_one_pairwise f lits
  | _ ->
      let rec split acc group n = function
        | [] -> if group = [] then acc else group :: acc
        | l :: rest ->
            if n = 3 then split (group :: acc) [ l ] 1 rest
            else split acc (l :: group) (n + 1) rest
      in
      let groups = split [] [] 0 lits in
      let commanders =
        List.map
          (fun group ->
            let c = fresh f in
            (* Commander true iff some group member true. *)
            List.iter (fun l -> add_clause f [ c; -l ]) group;
            at_most_one_pairwise f group;
            c)
          groups
      in
      at_most_one_commander f commanders

let at_most_one ?(encoding = Auto) f lits =
  match encoding with
  | Pairwise -> at_most_one_pairwise f lits
  | Sequential -> at_most_one_sequential f lits
  | Commander -> at_most_one_commander f lits
  | Auto ->
      (* Pairwise is smaller up to 5 literals (no auxiliaries, at most
         10 clauses); beyond that the sequential counter's linear, all-
         binary form wins. *)
      if List.length lits <= 5 then at_most_one_pairwise f lits
      else at_most_one_sequential f lits

let exactly_one ?encoding f lits =
  at_least_one f lits;
  at_most_one ?encoding f lits

(* Sinz sequential-counter encoding of [sum lits <= k]. *)
let at_most_k f lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k < 0 then Array.iter (fun l -> add_clause f [ -l ]) lits
  else if k >= n then ()
  else if k = 0 then Array.iter (fun l -> add_clause f [ -l ]) lits
  else begin
    (* s.(i).(j): among the first i+1 literals at least j+1 are true. *)
    let s = Array.init n (fun _ -> Array.init k (fun _ -> fresh f)) in
    add_clause f [ -lits.(0); s.(0).(0) ];
    for j = 1 to k - 1 do
      add_clause f [ -s.(0).(j) ]
    done;
    for i = 1 to n - 1 do
      add_clause f [ -lits.(i); s.(i).(0) ];
      add_clause f [ -s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to k - 1 do
        add_clause f [ -lits.(i); -s.(i - 1).(j - 1); s.(i).(j) ];
        add_clause f [ -s.(i - 1).(j); s.(i).(j) ]
      done;
      add_clause f [ -lits.(i); -s.(i - 1).(k - 1) ]
    done
  end

let at_least_k f lits k =
  (* At least k of lits  <=>  at most (n - k) of their negations. *)
  let n = List.length lits in
  if k <= 0 then ()
  else if k > n then add_clause f []
  else at_most_k f (List.map (fun l -> -l) lits) (n - k)

let to_dimacs f =
  let buf = Buffer.create 4096 in
  let clauses = List.rev f.clauses in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Solver.num_vars f.solver)
       (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let parse_dimacs text =
  let solver = Solver.create () in
  let nvars = ref 0 in
  let declared = ref false in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        (match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; _ ] -> (
            match int_of_string_opt v with
            | Some n ->
                nvars := n;
                for _ = 1 to n do
                  ignore (Solver.new_var solver)
                done
            | None -> failwith "Cnf.parse_dimacs: bad header")
        | _ -> failwith "Cnf.parse_dimacs: bad header");
        declared := true
      end
      else begin
        if not !declared then failwith "Cnf.parse_dimacs: clause before header";
        List.iter
          (fun tok ->
            match int_of_string_opt tok with
            | Some 0 ->
                Solver.add_clause solver (List.rev !current);
                current := []
            | Some l -> current := l :: !current
            | None -> failwith "Cnf.parse_dimacs: bad literal")
          (String.split_on_char ' ' line |> List.filter (( <> ) ""))
      end)
    lines;
  if !current <> [] then failwith "Cnf.parse_dimacs: unterminated clause";
  (solver, !nvars)
