(* CDCL solver in the MiniSat tradition, with a Glucose-style clause
   database and CaDiCaL-style binary-clause specialization.

   Internal literal encoding: variable indices are 0-based; literal
   [2 * v] is the positive and [2 * v + 1] the negative literal of
   variable [v].  The external (DIMACS) interface converts at the
   boundary.

   Reason encoding (per variable):
     [>= 0]   id of the clause that implied the variable
     [-1]     decision / unit / no reason
     [<= -3]  binary implication; the other (false) literal of the
              binary clause is [-3 - reason]
   A conflict reported by [propagate] is [-1] (none), a clause id
   [>= 0], or [-2] for a conflicting binary clause whose two literals
   are stashed in [bconf]. *)

type lit = int
type result = Sat | Unsat | Unknown of Budget.reason

type config = {
  binary_specialization : bool;
      (* Keep 2-literal clauses in per-literal implication lists instead
         of the clause arena. *)
  blocking_literals : bool;
      (* Cache a "blocking" literal next to each watch entry; a
         satisfied blocker skips the clause without touching it. *)
  glue_reduction : bool;
      (* Glucose-style reduce_db keyed on LBD with in-place watch
         compaction; otherwise activity-keyed with a full rebuild. *)
  restart_base : int;
      (* Conflicts per Luby restart unit; the historical value is 100. *)
  reduce_slack : int;
      (* Extra learned clauses tolerated beyond 2x the problem size
         before reduce_db fires; the historical value is 2000. *)
  seed : int;
      (* 0: no perturbation.  Nonzero: deterministic per-variable
         epsilon on the initial VSIDS activities and a hashed initial
         phase, so portfolio members explore different branching orders
         without affecting completeness (epsilons are far below one
         activity bump and only break ties among never-bumped vars). *)
}

let default_config =
  {
    binary_specialization = true;
    blocking_literals = true;
    glue_reduction = true;
    restart_base = 100;
    reduce_slack = 2000;
    seed = 0;
  }

let legacy_config =
  {
    binary_specialization = false;
    blocking_literals = false;
    glue_reduction = false;
    restart_base = 100;
    reduce_slack = 2000;
    seed = 0;
  }

(* Deterministic avalanche-style hash of (seed, var), platform-stable on
   63-bit ints: used only to derive tie-breaking epsilons and phases. *)
let seed_mix seed v =
  let x = ((seed * 0x9E3779B1) + (v * 0x85EBCA77)) land 0x3FFFFFFF in
  let x = (x lxor (x lsr 13)) * 0xC2B2AE35 land 0x3FFFFFFF in
  x lxor (x lsr 11)

(* Process-wide default picked up by [create] when no explicit config is
   given; lets a benchmark driver flip every downstream solver (CNF
   builders, equivalence miters, exact P&R) between the legacy and the
   tuned configuration without threading a parameter through each layer. *)
let global_config_ref = ref default_config
let set_global_config c = global_config_ref := c
let global_config () = !global_config_ref

(* Growable int vector. *)
module Ivec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = Array.make 16 0; size = 0 }

  let push v x =
    if v.size >= Array.length v.data then begin
      let bigger = Array.make (2 * Array.length v.data) 0 in
      Array.blit v.data 0 bigger 0 v.size;
      v.data <- bigger
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let clear v = v.size <- 0
  let shrink v n = v.size <- n
end

type clause = {
  mutable lits : int array;
  learned : bool;
  mutable activity : float;
  mutable deleted : bool;
  mutable glue : int;  (* LBD at learn time, lowered when re-derived *)
}

let lbd_hist_bins = 16

type t = {
  config : config;
  (* Clause arena; ids index into this vector. *)
  mutable clauses : clause array;
  mutable clause_count : int;
  mutable problem_clauses : int;
  mutable learned_clauses : int;
  mutable learned_bin : int;  (* live learned binaries (immortal) *)
  mutable bin_count : int;  (* binary clauses held in [bins] *)
  (* Per-literal watch lists of (clause id, blocking literal) pairs,
     flattened: slot 2i holds the id, slot 2i+1 the blocker. *)
  mutable watches : Ivec.t array;
  (* Per-literal binary implication lists: [bins.(p)] holds every
     literal [q] with a binary clause [(¬p ∨ q)] — when [p] becomes
     true, [q] is implied. *)
  mutable bins : Ivec.t array;
  (* Per-variable state. *)
  mutable assign : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* see the reason encoding above *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array;
  mutable heap_pos : int array;  (* position in heap or -1 *)
  mutable nvars : int;
  (* Trail. *)
  trail : Ivec.t;
  trail_lim : Ivec.t;
  mutable qhead : int;
  (* VSIDS. *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  (* Search state. *)
  mutable unsat : bool;
  mutable ok_model : bool;
  mutable model_arr : bool array;
  (* Scratch for conflicting / reason binary clauses. *)
  bconf : int array;
  btmp : int array;
  (* Level stamps for LBD computation. *)
  mutable lvl_stamp : int array;
  mutable stamp : int;
  (* Active limits for the current [solve] call: absolute conflict
     threshold, wall-clock deadline, cancellation flag. *)
  mutable limit_conflicts : int option;
  mutable deadline : float option;
  mutable cancelled : unit -> bool;
  (* Statistics. *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable bin_propagations : int;
  mutable restarts : int;
  mutable deleted_total : int;
  mutable reductions : int;
  mutable watch_scans : int;
  mutable lbd_sum : int;
  mutable lbd_count : int;
  hist : int array;  (* per-solve LBD histogram, reset by [solve] *)
  mutable solve_time : float;
  (* Proof logging: steps in reverse order when enabled. *)
  mutable proof : Drat.step list option;
}

let var_decay = 1. /. 0.95
let cla_decay = 1. /. 0.999

let create ?config () =
  let config = match config with Some c -> c | None -> !global_config_ref in
  {
    config;
    clauses =
      Array.make 64
        { lits = [||]; learned = false; activity = 0.; deleted = true; glue = 0 };
    clause_count = 0;
    problem_clauses = 0;
    learned_clauses = 0;
    learned_bin = 0;
    bin_count = 0;
    watches = Array.make 16 (Ivec.create ());
    bins = Array.make 16 (Ivec.create ());
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.;
    phase = Array.make 8 false;
    seen = Array.make 8 false;
    heap_pos = Array.make 8 (-1);
    nvars = 0;
    trail = Ivec.create ();
    trail_lim = Ivec.create ();
    qhead = 0;
    heap = Array.make 8 0;
    heap_size = 0;
    var_inc = 1.;
    cla_inc = 1.;
    unsat = false;
    ok_model = false;
    model_arr = [||];
    bconf = Array.make 2 0;
    btmp = Array.make 2 0;
    lvl_stamp = Array.make 8 0;
    stamp = 0;
    limit_conflicts = None;
    deadline = None;
    cancelled = (fun () -> false);
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    bin_propagations = 0;
    restarts = 0;
    deleted_total = 0;
    reductions = 0;
    watch_scans = 0;
    lbd_sum = 0;
    lbd_count = 0;
    hist = Array.make lbd_hist_bins 0;
    solve_time = 0.;
    proof = None;
  }

let config s = s.config

(* --- variable heap ordered by activity (max-heap) ------------------- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_size >= Array.length s.heap then begin
      let bigger = Array.make (2 * Array.length s.heap) 0 in
      Array.blit s.heap 0 bigger 0 s.heap_size;
      s.heap <- bigger
    end;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let top = s.heap.(0) in
  s.heap_pos.(top) <- -1;
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  top

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- state growth ---------------------------------------------------- *)

let grow_int_array arr n default =
  let bigger = Array.make n default in
  Array.blit arr 0 bigger 0 (Array.length arr);
  bigger

let grow_float_array arr n =
  let bigger = Array.make n 0. in
  Array.blit arr 0 bigger 0 (Array.length arr);
  bigger

let grow_bool_array arr n =
  let bigger = Array.make n false in
  Array.blit arr 0 bigger 0 (Array.length arr);
  bigger

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  if v >= Array.length s.assign then begin
    let n = 2 * Array.length s.assign in
    s.assign <- grow_int_array s.assign n (-1);
    s.level <- grow_int_array s.level n 0;
    s.reason <- grow_int_array s.reason n (-1);
    s.activity <- grow_float_array s.activity n;
    s.phase <- grow_bool_array s.phase n;
    s.seen <- grow_bool_array s.seen n;
    s.heap_pos <- grow_int_array s.heap_pos n (-1)
  end;
  s.assign.(v) <- -1;
  s.level.(v) <- 0;
  s.reason.(v) <- -1;
  s.activity.(v) <- 0.;
  s.phase.(v) <- false;
  if s.config.seed <> 0 then begin
    let h = seed_mix s.config.seed v in
    s.activity.(v) <- float_of_int (h land 0xFFFF) *. 1e-9;
    s.phase.(v) <- h land 0x10000 <> 0
  end;
  s.seen.(v) <- false;
  s.heap_pos.(v) <- -1;
  if 2 * (v + 1) > Array.length s.watches then begin
    let n = max 16 (4 * (v + 1)) in
    let grow old =
      Array.init n (fun i ->
          if i < Array.length old then old.(i) else Ivec.create ())
    in
    s.watches <- grow s.watches;
    s.bins <- grow s.bins
  end;
  (* The freshly shared Ivec from Array.make in [create] must be replaced
     by distinct vectors. *)
  s.watches.(2 * v) <- Ivec.create ();
  s.watches.((2 * v) + 1) <- Ivec.create ();
  s.bins.(2 * v) <- Ivec.create ();
  s.bins.((2 * v) + 1) <- Ivec.create ();
  heap_insert s v;
  v + 1

let num_vars s = s.nvars
let num_clauses s = s.problem_clauses
let num_binary_clauses s = s.bin_count

(* --- literal helpers -------------------------------------------------- *)

let lit_of_dimacs s l =
  if l = 0 then invalid_arg "Solver: literal 0";
  let v = abs l - 1 in
  if v >= s.nvars then
    invalid_arg (Printf.sprintf "Solver: unallocated variable %d" (abs l));
  (2 * v) + (if l < 0 then 1 else 0)

let lit_var l = l lsr 1
let lit_neg l = l lxor 1

(* Value of an internal literal: -1 unassigned, 0 false, 1 true. *)
let lit_value s l =
  let a = s.assign.(lit_var l) in
  if a < 0 then -1 else a lxor (l land 1)

(* --- proof logging ----------------------------------------------------- *)

let dimacs_of_lit l =
  let v = (l lsr 1) + 1 in
  if l land 1 = 1 then -v else v

let enable_proof s = if s.proof = None then s.proof <- Some []
let proof_enabled s = s.proof <> None

let proof s =
  match s.proof with None -> [] | Some steps -> List.rev steps

let log_add s lits =
  match s.proof with
  | None -> ()
  | Some steps ->
      s.proof <-
        Some (Drat.Add (List.map dimacs_of_lit (Array.to_list lits)) :: steps)

let log_delete s lits =
  match s.proof with
  | None -> ()
  | Some steps ->
      s.proof <-
        Some
          (Drat.Delete (List.map dimacs_of_lit (Array.to_list lits)) :: steps)

(* --- activity --------------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to s.clause_count - 1 do
      let cl = s.clauses.(i) in
      if cl.learned then cl.activity <- cl.activity *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay_activity s = s.cla_inc <- s.cla_inc *. cla_decay

(* --- LBD ("glue") ------------------------------------------------------ *)

let ensure_stamp s lvl =
  if lvl >= Array.length s.lvl_stamp then
    s.lvl_stamp <-
      grow_int_array s.lvl_stamp (max (2 * Array.length s.lvl_stamp) (lvl + 1)) 0

(* Number of distinct non-root decision levels among [lits]. *)
let compute_glue s lits =
  s.stamp <- s.stamp + 1;
  let g = ref 0 in
  Array.iter
    (fun l ->
      let lvl = s.level.(lit_var l) in
      if lvl > 0 then begin
        ensure_stamp s lvl;
        if s.lvl_stamp.(lvl) <> s.stamp then begin
          s.lvl_stamp.(lvl) <- s.stamp;
          incr g
        end
      end)
    lits;
  max 1 !g

let note_glue s glue =
  s.lbd_sum <- s.lbd_sum + glue;
  s.lbd_count <- s.lbd_count + 1;
  let bin = if glue >= lbd_hist_bins then lbd_hist_bins - 1 else glue in
  s.hist.(bin) <- s.hist.(bin) + 1

(* --- clause arena ------------------------------------------------------ *)

let alloc_clause s lits learned =
  if s.clause_count >= Array.length s.clauses then begin
    let bigger =
      Array.make (2 * Array.length s.clauses)
        { lits = [||]; learned = false; activity = 0.; deleted = true; glue = 0 }
    in
    Array.blit s.clauses 0 bigger 0 s.clause_count;
    s.clauses <- bigger
  end;
  let id = s.clause_count in
  s.clauses.(id) <- { lits; learned; activity = 0.; deleted = false; glue = 0 };
  s.clause_count <- id + 1;
  if learned then s.learned_clauses <- s.learned_clauses + 1;
  id

let watch_clause s id =
  let c = s.clauses.(id) in
  let w0 = s.watches.(lit_neg c.lits.(0)) in
  Ivec.push w0 id;
  Ivec.push w0 c.lits.(1);
  let w1 = s.watches.(lit_neg c.lits.(1)) in
  Ivec.push w1 id;
  Ivec.push w1 c.lits.(0)

(* Register a binary clause [(a ∨ b)] in the implication lists. *)
let add_bin s a b =
  Ivec.push s.bins.(lit_neg a) b;
  Ivec.push s.bins.(lit_neg b) a;
  s.bin_count <- s.bin_count + 1

(* --- assignment -------------------------------------------------------- *)

let decision_level s = Ivec.size s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- 1 - (l land 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- l land 1 = 0;
  Ivec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Ivec.get s.trail_lim lvl in
    for i = Ivec.size s.trail - 1 downto bound do
      let v = lit_var (Ivec.get s.trail i) in
      s.assign.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Ivec.shrink s.trail bound;
    Ivec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* --- propagation -------------------------------------------------------- *)

(* Returns the id of a conflicting clause, -2 for a binary conflict
   (literals in [bconf]), or -1 for no conflict. *)
let propagate s =
  let use_blocking = s.config.blocking_literals in
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < Ivec.size s.trail do
    let p = Ivec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* Binary implications of p first: no clause memory touched. *)
    let bl = s.bins.(p) in
    let nb = Ivec.size bl in
    let j = ref 0 in
    while !conflict = -1 && !j < nb do
      let q = Ivec.get bl !j in
      incr j;
      match lit_value s q with
      | 1 -> ()
      | 0 ->
          s.bconf.(0) <- q;
          s.bconf.(1) <- lit_neg p;
          conflict := -2;
          s.qhead <- Ivec.size s.trail
      | _ ->
          s.bin_propagations <- s.bin_propagations + 1;
          enqueue s q ((-3) - lit_neg p)
    done;
    if !conflict = -1 then begin
      (* Clauses watching ¬p must be inspected. *)
      let ws = s.watches.(p) in
      let n = Ivec.size ws in
      let keep = ref 0 in
      let i = ref 0 in
      while !i < n do
        let id = Ivec.get ws !i in
        let blocker = Ivec.get ws (!i + 1) in
        i := !i + 2;
        if use_blocking && lit_value s blocker = 1 then begin
          (* Satisfied via the cached blocker: keep, don't dereference. *)
          Ivec.set ws !keep id;
          Ivec.set ws (!keep + 1) blocker;
          keep := !keep + 2
        end
        else begin
          let c = s.clauses.(id) in
          if c.deleted then () (* drop from the list *)
          else begin
            let false_lit = lit_neg p in
            if c.lits.(0) = false_lit then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- false_lit
            end;
            if lit_value s c.lits.(0) = 1 then begin
              (* Clause satisfied; keep the watch, refresh the blocker. *)
              Ivec.set ws !keep id;
              Ivec.set ws (!keep + 1) c.lits.(0);
              keep := !keep + 2
            end
            else begin
              (* Look for a new literal to watch. *)
              let len = Array.length c.lits in
              let found = ref false in
              let k = ref 2 in
              while (not !found) && !k < len do
                if lit_value s c.lits.(!k) <> 0 then begin
                  c.lits.(1) <- c.lits.(!k);
                  c.lits.(!k) <- false_lit;
                  let w = s.watches.(lit_neg c.lits.(1)) in
                  Ivec.push w id;
                  Ivec.push w c.lits.(0);
                  found := true
                end;
                incr k
              done;
              if not !found then begin
                (* Unit or conflicting. *)
                Ivec.set ws !keep id;
                Ivec.set ws (!keep + 1) c.lits.(0);
                keep := !keep + 2;
                if lit_value s c.lits.(0) = 0 then begin
                  conflict := id;
                  (* Copy the remaining watcher pairs back. *)
                  while !i < n do
                    Ivec.set ws !keep (Ivec.get ws !i);
                    incr keep;
                    incr i
                  done;
                  s.qhead <- Ivec.size s.trail
                end
                else enqueue s c.lits.(0) id
              end
            end
          end
        end
      done;
      Ivec.shrink ws !keep
    end
  done;
  !conflict

(* --- conflict analysis --------------------------------------------------- *)

(* Returns (learned clause as array with asserting literal first,
   backtrack level). *)
let analyze s conflict_id =
  let learned = Ivec.create () in
  Ivec.push learned 0 (* placeholder for the asserting literal *);
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref conflict_id in
  let index = ref (Ivec.size s.trail - 1) in
  let continue = ref true in
  while !continue do
    let lits =
      if !confl >= 0 then begin
        let c = s.clauses.(!confl) in
        if c.learned then begin
          cla_bump s c;
          (* Re-derived clauses can have become "better": refresh glue. *)
          if c.glue > 2 then begin
            let g = compute_glue s c.lits in
            if g < c.glue then c.glue <- g
          end
        end;
        c.lits
      end
      else if !confl = -2 then s.bconf
      else begin
        (* Binary reason for the implied literal !p. *)
        s.btmp.(0) <- !p;
        s.btmp.(1) <- (-3) - !confl;
        s.btmp
      end
    in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else Ivec.push learned q
      end
    done;
    (* Select the next literal to resolve on: most recent seen on trail. *)
    while not s.seen.(lit_var (Ivec.get s.trail !index)) do
      decr index
    done;
    p := Ivec.get s.trail !index;
    decr index;
    let v = lit_var !p in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else begin
      confl := s.reason.(v);
      (* The resolved variable always has a reason while counter > 0. *)
      assert (!confl <> -1)
    end
  done;
  Ivec.set learned 0 (lit_neg !p);
  (* Cheap non-recursive minimization: a literal is redundant when its
     reason clause exists and all other reason literals are already in
     the learned clause (seen) or at level 0. *)
  let redundant q =
    let v = lit_var q in
    let r = s.reason.(v) in
    if r >= 0 then
      Array.for_all
        (fun l ->
          let w = lit_var l in
          w = v || s.seen.(w) || s.level.(w) = 0)
        s.clauses.(r).lits
    else if r <= -3 then begin
      let w = lit_var ((-3) - r) in
      s.seen.(w) || s.level.(w) = 0
    end
    else false
  in
  (* Mark learned literals as seen for the redundancy test. *)
  for i = 0 to Ivec.size learned - 1 do
    s.seen.(lit_var (Ivec.get learned i)) <- true
  done;
  let result = Ivec.create () in
  Ivec.push result (Ivec.get learned 0);
  for i = 1 to Ivec.size learned - 1 do
    let q = Ivec.get learned i in
    if not (redundant q) then Ivec.push result q
  done;
  for i = 0 to Ivec.size learned - 1 do
    s.seen.(lit_var (Ivec.get learned i)) <- false
  done;
  (* Backtrack level: the highest level among the non-asserting
     literals; the second watched position must hold a literal of that
     level. *)
  let bt = ref 0 in
  let pos = ref 1 in
  for i = 1 to Ivec.size result - 1 do
    let lv = s.level.(lit_var (Ivec.get result i)) in
    if lv > !bt then begin
      bt := lv;
      pos := i
    end
  done;
  let arr = Array.init (Ivec.size result) (Ivec.get result) in
  if Array.length arr > 1 then begin
    let tmp = arr.(1) in
    arr.(1) <- arr.(!pos);
    arr.(!pos) <- tmp
  end;
  (arr, !bt)

(* --- learned clause database reduction ------------------------------------ *)

let rebuild_watches s =
  Array.iter Ivec.clear s.watches;
  for id = 0 to s.clause_count - 1 do
    let c = s.clauses.(id) in
    if not c.deleted then watch_clause s id
  done

(* Filter deleted clause ids out of every watch list without
   reallocating or re-pushing anything; counts scanned entries so the
   cost of database maintenance shows up in [stats]. *)
let compact_watches s =
  Array.iter
    (fun ws ->
      let n = Ivec.size ws in
      let keep = ref 0 in
      let i = ref 0 in
      while !i < n do
        let id = Ivec.get ws !i in
        s.watch_scans <- s.watch_scans + 1;
        if not s.clauses.(id).deleted then begin
          Ivec.set ws !keep id;
          Ivec.set ws (!keep + 1) (Ivec.get ws (!i + 1));
          keep := !keep + 2
        end;
        i := !i + 2
      done;
      Ivec.shrink ws !keep)
    s.watches

let locked s id =
  let c = s.clauses.(id) in
  Array.length c.lits > 0
  &&
  let v = lit_var c.lits.(0) in
  s.assign.(v) >= 0 && s.reason.(v) = id

(* Delete half of the deletable learned clauses.  Called at decision
   level 0 only.  Glue mode (default): clauses with glue <= 2 are
   immortal and the worst half by (glue, then activity) goes; watch
   lists are compacted in place.  Legacy mode: least active half goes
   and every watch list is rebuilt from scratch. *)
let reduce_db s =
  s.reductions <- s.reductions + 1;
  if s.config.glue_reduction then begin
    let cand = ref [] in
    for id = 0 to s.clause_count - 1 do
      let c = s.clauses.(id) in
      if c.learned && (not c.deleted) && Array.length c.lits > 2
         && c.glue > 2 && not (locked s id)
      then cand := (c.glue, c.activity, id) :: !cand
    done;
    (* Worst first: highest glue, ties broken by lowest activity. *)
    let worst_first =
      List.sort
        (fun (g1, a1, _) (g2, a2, _) ->
          if g1 <> g2 then compare g2 g1 else compare a1 a2)
        !cand
    in
    let to_delete = List.length worst_first / 2 in
    let deleted = ref 0 in
    List.iteri
      (fun i (_, _, id) ->
        if i < to_delete then begin
          s.clauses.(id).deleted <- true;
          s.learned_clauses <- s.learned_clauses - 1;
          s.deleted_total <- s.deleted_total + 1;
          log_delete s s.clauses.(id).lits;
          incr deleted
        end)
      worst_first;
    if !deleted > 0 then compact_watches s
  end
  else begin
    let learned = ref [] in
    for id = 0 to s.clause_count - 1 do
      let c = s.clauses.(id) in
      if c.learned && (not c.deleted) && Array.length c.lits > 2
         && not (locked s id)
      then learned := (c.activity, id) :: !learned
    done;
    let sorted = List.sort compare !learned in
    let to_delete = List.length sorted / 2 in
    List.iteri
      (fun i (_, id) ->
        if i < to_delete then begin
          s.clauses.(id).deleted <- true;
          s.learned_clauses <- s.learned_clauses - 1;
          s.deleted_total <- s.deleted_total + 1;
          log_delete s s.clauses.(id).lits
        end)
      sorted;
    rebuild_watches s
  end

(* --- adding clauses --------------------------------------------------------- *)

let add_clause s dimacs_lits =
  assert (decision_level s = 0);
  s.ok_model <- false;
  s.problem_clauses <- s.problem_clauses + 1;
  if not s.unsat then begin
    let lits = List.map (lit_of_dimacs s) dimacs_lits in
    (* Sort, deduplicate, and detect tautologies / falsified literals. *)
    let sorted = List.sort_uniq compare lits in
    let tautology =
      let rec check = function
        | a :: (b :: _ as rest) -> (a lxor b = 1 && a lsr 1 = b lsr 1) || check rest
        | _ -> false
      in
      check sorted
    in
    if not tautology then begin
      let remaining =
        List.filter (fun l -> lit_value s l <> 0) sorted
      in
      if List.exists (fun l -> lit_value s l = 1) remaining then ()
      else
        match remaining with
        | [] ->
            s.unsat <- true;
            log_add s [||]
        | [ l ] ->
            enqueue s l (-1);
            if propagate s <> -1 then begin
              s.unsat <- true;
              log_add s [||]
            end
        | [ a; b ] when s.config.binary_specialization -> add_bin s a b
        | _ ->
            let arr = Array.of_list remaining in
            let id = alloc_clause s arr false in
            watch_clause s id
    end
  end

(* --- search ------------------------------------------------------------------ *)

(* Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (0-indexed). *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let record_learned s arr =
  log_add s arr;
  let glue = compute_glue s arr in
  note_glue s glue;
  if Array.length arr = 1 then begin
    cancel_until s 0;
    enqueue s arr.(0) (-1)
  end
  else if Array.length arr = 2 && s.config.binary_specialization then begin
    (* Learned binaries live only in the implication lists; they are
       immortal, so the DRAT log never needs a delete for them. *)
    add_bin s arr.(0) arr.(1);
    s.learned_clauses <- s.learned_clauses + 1;
    s.learned_bin <- s.learned_bin + 1;
    enqueue s arr.(0) ((-3) - arr.(1))
  end
  else begin
    let id = alloc_clause s arr true in
    s.clauses.(id).glue <- glue;
    watch_clause s id;
    enqueue s arr.(0) id
  end

let pick_branch_var s =
  let rec go () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assign.(v) < 0 then v else go ()
  in
  go ()

type search_outcome =
  | Sat_found
  | Unsat_found
  | Restarted
  | Interrupted of Budget.reason

exception Found of search_outcome

(* Budget checkpoints.  The conflict allowance is exact; the wall clock
   and the cancellation flag are polled every [checkpoint_mask + 1]
   conflicts or decisions to keep the hot loop cheap. *)
let checkpoint_mask = 31

let interrupt_reason s =
  if s.cancelled () then Some Budget.Cancelled
  else
    match s.deadline with
    | Some d when Unix.gettimeofday () > d -> Some Budget.Deadline
    | Some _ | None -> None

let check_interrupt s counter =
  if counter land checkpoint_mask = 0 then
    match interrupt_reason s with
    | Some r ->
        cancel_until s 0;
        raise (Found (Interrupted r))
    | None -> ()

let search s assumptions max_conflicts =
  let conflicts_here = ref 0 in
  try
    while true do
      let confl = propagate s in
      if confl <> -1 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_here;
        (match s.limit_conflicts with
        | Some b when s.conflicts > b ->
            cancel_until s 0;
            raise (Found (Interrupted Budget.Conflicts))
        | Some _ | None -> ());
        check_interrupt s s.conflicts;
        if decision_level s = 0 then begin
          (* A root-level conflict refutes the formula itself (assumptions
             live at levels >= 1), so the proof can be closed.  The flag is
             load-bearing for incremental use: the conflict left the root
             trail only partially propagated (qhead has already passed the
             falsified clause), so without it a later solve could accept
             that inconsistent root state as a model. *)
          s.unsat <- true;
          log_add s [||];
          raise (Found Unsat_found)
        end;
        let learned, bt = analyze s confl in
        cancel_until s bt;
        record_learned s learned;
        var_decay_activity s;
        cla_decay_activity s
      end
      else if !conflicts_here >= max_conflicts then begin
        s.restarts <- s.restarts + 1;
        cancel_until s 0;
        raise (Found Restarted)
      end
      else if decision_level s < List.length assumptions then begin
        (* Apply the next pending assumption as a decision. *)
        let l = List.nth assumptions (decision_level s) in
        match lit_value s l with
        | 1 ->
            (* Already satisfied: open an empty decision level so the
               indexing of assumptions by level stays aligned. *)
            Ivec.push s.trail_lim (Ivec.size s.trail)
        | 0 -> raise (Found Unsat_found)
        | _ ->
            Ivec.push s.trail_lim (Ivec.size s.trail);
            enqueue s l (-1)
      end
      else begin
        let v = pick_branch_var s in
        if v < 0 then raise (Found Sat_found)
        else begin
          s.decisions <- s.decisions + 1;
          check_interrupt s s.decisions;
          Ivec.push s.trail_lim (Ivec.size s.trail);
          let l = (2 * v) + (if s.phase.(v) then 0 else 1) in
          enqueue s l (-1)
        end
      end
    done;
    assert false
  with Found r -> r

let solve ?(assumptions = []) ?(budget = Budget.unlimited) s =
  if s.unsat then Unsat
  else begin
    let assumptions = List.map (lit_of_dimacs s) assumptions in
    cancel_until s 0;
    s.ok_model <- false;
    (* The LBD histogram describes the current solve only. *)
    Array.fill s.hist 0 lbd_hist_bins 0;
    let t0 = Unix.gettimeofday () in
    (* Install the budget: the conflict allowance is relative to this
       call, so an [Unknown] solve can be resumed with a fresh (larger)
       allowance while keeping all learned clauses. *)
    s.limit_conflicts <-
      Option.map (fun n -> s.conflicts + n) budget.Budget.conflicts;
    s.deadline <- budget.Budget.deadline;
    s.cancelled <- budget.Budget.cancelled;
    let result = ref None in
    let round = ref 0 in
    (match interrupt_reason s with
    | Some r -> result := Some (Unknown r)
    | None -> ());
    (try
       while !result = None do
         let max_conflicts = s.config.restart_base * luby !round in
         incr round;
         (match search s assumptions max_conflicts with
         | Sat_found ->
             (* Snapshot the model before undoing the trail. *)
             s.model_arr <- Array.init s.nvars (fun v -> s.assign.(v) = 1);
             s.ok_model <- true;
             result := Some Sat
         | Unsat_found -> result := Some Unsat
         | Restarted -> ()
         | Interrupted r -> result := Some (Unknown r));
         if
           !result = None
           && s.learned_clauses - s.learned_bin
              > (2 * s.problem_clauses) + s.config.reduce_slack
         then reduce_db s
       done
     with e ->
       cancel_until s 0;
       s.solve_time <- s.solve_time +. (Unix.gettimeofday () -. t0);
       raise e);
    cancel_until s 0;
    s.limit_conflicts <- None;
    s.deadline <- None;
    s.cancelled <- (fun () -> false);
    s.solve_time <- s.solve_time +. (Unix.gettimeofday () -. t0);
    match !result with Some r -> r | None -> assert false
  end

let value s l =
  if not s.ok_model then invalid_arg "Solver.value: no model available";
  let v = abs l - 1 in
  if l = 0 || v >= Array.length s.model_arr then
    invalid_arg "Solver.value: unknown variable";
  if l > 0 then s.model_arr.(v) else not s.model_arr.(v)

let model s = Array.init s.nvars (fun v -> value s (v + 1))

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  binary_propagations : int;
  restarts : int;
  learned_clauses : int;
  learned_binaries : int;
  deleted_clauses : int;
  reductions : int;
  watch_compaction_scans : int;
  lbd_hist : int array;
  lbd_sum : int;
  lbd_count : int;
  solve_time_s : float;
  simplify_subsumed : int;
  simplify_strengthened : int;
  simplify_eliminated : int;
  simplify_vivified : int;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    binary_propagations = s.bin_propagations;
    restarts = s.restarts;
    learned_clauses = s.learned_clauses;
    learned_binaries = s.learned_bin;
    deleted_clauses = s.deleted_total;
    reductions = s.reductions;
    watch_compaction_scans = s.watch_scans;
    lbd_hist = Array.copy s.hist;
    lbd_sum = s.lbd_sum;
    lbd_count = s.lbd_count;
    solve_time_s = s.solve_time;
    simplify_subsumed = 0;
    simplify_strengthened = 0;
    simplify_eliminated = 0;
    simplify_vivified = 0;
  }

let empty_stats =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    binary_propagations = 0;
    restarts = 0;
    learned_clauses = 0;
    learned_binaries = 0;
    deleted_clauses = 0;
    reductions = 0;
    watch_compaction_scans = 0;
    lbd_hist = Array.make lbd_hist_bins 0;
    lbd_sum = 0;
    lbd_count = 0;
    solve_time_s = 0.;
    simplify_subsumed = 0;
    simplify_strengthened = 0;
    simplify_eliminated = 0;
    simplify_vivified = 0;
  }

let add_stats a b =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    binary_propagations = a.binary_propagations + b.binary_propagations;
    restarts = a.restarts + b.restarts;
    learned_clauses = a.learned_clauses + b.learned_clauses;
    learned_binaries = a.learned_binaries + b.learned_binaries;
    deleted_clauses = a.deleted_clauses + b.deleted_clauses;
    reductions = a.reductions + b.reductions;
    watch_compaction_scans = a.watch_compaction_scans + b.watch_compaction_scans;
    lbd_hist = Array.init lbd_hist_bins (fun i -> a.lbd_hist.(i) + b.lbd_hist.(i));
    lbd_sum = a.lbd_sum + b.lbd_sum;
    lbd_count = a.lbd_count + b.lbd_count;
    solve_time_s = a.solve_time_s +. b.solve_time_s;
    simplify_subsumed = a.simplify_subsumed + b.simplify_subsumed;
    simplify_strengthened = a.simplify_strengthened + b.simplify_strengthened;
    simplify_eliminated = a.simplify_eliminated + b.simplify_eliminated;
    simplify_vivified = a.simplify_vivified + b.simplify_vivified;
  }

let mean_lbd st =
  if st.lbd_count = 0 then 0.
  else float_of_int st.lbd_sum /. float_of_int st.lbd_count

let propagations_per_sec st =
  if st.solve_time_s <= 0. then 0.
  else float_of_int (st.propagations + st.binary_propagations) /. st.solve_time_s

let pp_stats ppf st =
  Format.fprintf ppf
    "conflicts=%d decisions=%d propagations=%d binprops=%d props_per_s=%.0f \
     restarts=%d learned=%d binaries=%d deleted=%d reductions=%d \
     compaction_scans=%d mean_lbd=%.2f simplify=%d/%d/%d/%d"
    st.conflicts st.decisions st.propagations st.binary_propagations
    (propagations_per_sec st) st.restarts st.learned_clauses
    st.learned_binaries st.deleted_clauses st.reductions
    st.watch_compaction_scans (mean_lbd st) st.simplify_subsumed
    st.simplify_strengthened st.simplify_eliminated st.simplify_vivified
