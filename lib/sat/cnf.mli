(** CNF construction helpers on top of {!Solver}.

    Provides Tseitin encodings of Boolean gates, cardinality constraints
    (pairwise and sequential-counter encodings), and DIMACS
    serialization.  All functions add clauses to the underlying solver
    immediately. *)

type t

val create : ?config:Solver.config -> unit -> t
(** [config] is passed to {!Solver.create}. *)

val solver : t -> Solver.t

val clauses : t -> Solver.lit list list
(** All problem clauses added through this interface, in insertion
    order — the formula a {!Drat} proof is checked against. *)

val num_vars : t -> int
(** Variables allocated in the underlying solver. *)

val fresh : t -> Solver.lit
(** A fresh variable as a positive literal. *)

val fresh_many : t -> int -> Solver.lit array

val add_clause : t -> Solver.lit list -> unit

val const_true : t -> Solver.lit
(** A literal constrained to be true (allocated once per formula). *)

val const_false : t -> Solver.lit

(** {2 Tseitin gate encodings}

    Each returns a fresh literal logically equivalent to the gate output. *)

val not_ : Solver.lit -> Solver.lit
val and_ : t -> Solver.lit -> Solver.lit -> Solver.lit
val or_ : t -> Solver.lit -> Solver.lit -> Solver.lit
val xor_ : t -> Solver.lit -> Solver.lit -> Solver.lit
val and_list : t -> Solver.lit list -> Solver.lit
val or_list : t -> Solver.lit list -> Solver.lit
val ite : t -> Solver.lit -> Solver.lit -> Solver.lit -> Solver.lit
(** [ite f c a b] is [c ? a : b]. *)

val iff : t -> Solver.lit -> Solver.lit -> unit
(** Assert logical equivalence of two literals. *)

val implies : t -> Solver.lit -> Solver.lit -> unit

val equals_and : t -> Solver.lit -> Solver.lit -> Solver.lit -> unit
(** [equals_and f y a b] asserts [y <-> a & b] without allocating. *)

val equals_or : t -> Solver.lit -> Solver.lit -> Solver.lit -> unit
val equals_xor : t -> Solver.lit -> Solver.lit -> Solver.lit -> unit

(** {2 Cardinality constraints} *)

val at_least_one : t -> Solver.lit list -> unit

type amo_encoding =
  | Pairwise  (** All n(n-1)/2 negative pairs; no auxiliaries. *)
  | Sequential
      (** Sinz sequential counter at k = 1: n - 1 auxiliaries, 3n - 4
          binary clauses. *)
  | Commander
      (** Groups of 3 with commander variables, recursively; pairwise
          within groups.  The historical encoding for long chains. *)
  | Auto  (** Pairwise up to 5 literals, sequential beyond. *)

val at_most_one : ?encoding:amo_encoding -> t -> Solver.lit list -> unit
(** At most one of [lits] is true.  All encodings are equisatisfiable
    over the original literals under any assumption set; they differ
    only in auxiliary variables and clause shape.  Default: [Auto]. *)

val at_most_one_pairwise : t -> Solver.lit list -> unit
val at_most_one_sequential : t -> Solver.lit list -> unit
val at_most_one_commander : t -> Solver.lit list -> unit

val exactly_one : ?encoding:amo_encoding -> t -> Solver.lit list -> unit

val at_most_k : t -> Solver.lit list -> int -> unit
(** Sequential-counter encoding of [sum lits <= k]. *)

val at_least_k : t -> Solver.lit list -> int -> unit

(** {2 DIMACS} *)

val to_dimacs : t -> string
(** Serialize all problem clauses added through this interface. *)

val parse_dimacs : string -> Solver.t * int
(** [parse_dimacs text] builds a solver from DIMACS CNF text and returns
    it with the declared variable count.
    @raise Failure on malformed input. *)
