(** DRAT-style clause proofs and an independent RUP proof checker.

    A proof is the sequence of clause additions and deletions a solver
    performed on its way to an UNSAT verdict.  Each added clause must be
    a {e reverse unit propagation} (RUP) consequence of the formula plus
    the previously added clauses: assuming the negation of every literal
    of the clause and unit-propagating must yield a conflict.  CDCL
    learned clauses (including minimized first-UIP clauses) always have
    this property, so a proof logged by {!Solver} is checkable here
    without trusting any of the solver's internals — the checker has its
    own, completely separate, propagation engine.

    The format is the RUP fragment of standard DRAT; {!to_string} and
    {!of_string} use the usual textual encoding (one clause per line,
    [0]-terminated, deletions prefixed with [d]) so proofs can be
    exchanged with external tools. *)

type step =
  | Add of int list  (** Learned clause, DIMACS literals. *)
  | Delete of int list  (** Clause removed from the solver's database. *)

type proof = step list

type check_result =
  | Valid
      (** The proof derives the empty clause; every addition passed the
          RUP test. *)
  | Invalid of { step : int; reason : string }
      (** [step] is the 0-based index of the offending proof step, or
          [-1] when the problem is with the proof as a whole (e.g. no
          empty clause was ever derived). *)

val check : nvars:int -> clauses:int list list -> proof -> check_result
(** [check ~nvars ~clauses proof] verifies that [proof] establishes the
    unsatisfiability of the CNF [clauses] over variables [1..nvars].
    Runs in time polynomial in the proof length; independent of
    {!Solver}. *)

val is_valid : nvars:int -> clauses:int list list -> proof -> bool

val num_steps : proof -> int
val num_additions : proof -> int

val to_string : proof -> string
(** Standard DRAT text: additions as [l1 .. lk 0], deletions as
    [d l1 .. lk 0], one step per line. *)

val of_string : string -> proof
(** Parse DRAT text ([c] comment lines are ignored).
    @raise Failure on malformed input. *)

val pp_result : Format.formatter -> check_result -> unit
