(* SatELite-style clause preprocessing with a DRAT trace.

   The database is append-only: every transformation adds its result as
   a fresh clause and kills the old one, so per-id literal arrays never
   mutate and occurrence lists stay accurate for live clauses.  All
   passes run in deterministic (clause id, then literal) order under a
   fixed work budget, so identical inputs give identical outputs on
   every host — the portfolio's determinism contract starts here.

   Proof discipline: additions are logged before the deletions that
   justify leaving the old clause behind, so each Add is checked by RUP
   against a database that still contains both sides of the rewrite:

   - a strengthened clause [D \ {¬l}] propagates into [D] (forcing ¬l)
     and then falsifies [C = C' ∪ {l}];
   - a resolvent [(P \ {v}) ∪ (N \ {¬v})] propagates [v] through [P]
     and then falsifies [N];
   - a vivified prefix [l1..li] reproduces the unit-propagation
     conflict that shortened the clause (monotone in the database). *)

type counters = {
  subsumed : int;
  strengthened : int;
  eliminated_vars : int;
  vivified : int;
}

type result = {
  clauses : Solver.lit list list;
  nvars : int;
  proof : Drat.proof;
  counters : counters;
  eliminated : int list;
  reconstruct : bool array -> bool array;
}

type cl = { lits : int array (* sorted DIMACS literals *); mutable alive : bool }

type state = {
  s_nvars : int;
  mutable cls : cl array;
  mutable count : int;
  occ : int list ref array;  (* lit index -> clause ids (may contain dead) *)
  mutable steps : Drat.step list;  (* reversed *)
  queue : int Queue.t;
  mutable unsat : bool;
  mutable fuel : int;
  frozen : bool array;
  gone : bool array;  (* var-1: eliminated *)
  mutable recon : (int * int list list) list;  (* latest elimination first *)
  mutable n_subsumed : int;
  mutable n_strengthened : int;
  mutable n_eliminated : int;
  mutable n_vivified : int;
}

let lit_index l = (2 * (abs l - 1)) + if l < 0 then 1 else 0

let log_add st lits = st.steps <- Drat.Add lits :: st.steps
let log_delete st lits = st.steps <- Drat.Delete lits :: st.steps

let spend st n = st.fuel <- st.fuel - n
let out_of_fuel st = st.fuel <= 0

let kill st id =
  let c = st.cls.(id) in
  if c.alive then begin
    c.alive <- false;
    log_delete st (Array.to_list c.lits)
  end

(* Append a clause (sorted, tautology-free).  [log] distinguishes
   derived clauses (DRAT Add) from the original formula. *)
let push_clause st ~log lits_sorted =
  if log then log_add st lits_sorted;
  if lits_sorted = [] then begin
    st.unsat <- true;
    -1
  end
  else begin
    if st.count >= Array.length st.cls then begin
      let bigger =
        Array.make (2 * Array.length st.cls) { lits = [||]; alive = false }
      in
      Array.blit st.cls 0 bigger 0 st.count;
      st.cls <- bigger
    end;
    let id = st.count in
    st.cls.(id) <- { lits = Array.of_list lits_sorted; alive = true };
    st.count <- id + 1;
    List.iter
      (fun l ->
        let o = st.occ.(lit_index l) in
        o := id :: !o)
      lits_sorted;
    Queue.push id st.queue;
    id
  end

(* Subset test over sorted arrays; [skip] literals in [a] equal to a
   given literal are excluded (0 = none, 0 never occurs in DIMACS). *)
let subset_except a skip_a b skip_b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if a.(i) = skip_a then go (i + 1) j
    else if j >= lb then false
    else if b.(j) = skip_b then go i (j + 1)
    else
      let c = compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1)
      else if c > 0 then go i (j + 1)
      else false
  in
  go 0 0

let subset a b = subset_except a 0 b 0

let alive_occ st l =
  List.filter (fun id -> st.cls.(id).alive) !(st.occ.(lit_index l))

(* Pick the literal of [c] with the shortest occurrence list. *)
let min_occ_lit st (lits : int array) =
  let best = ref lits.(0) and best_len = ref max_int in
  Array.iter
    (fun l ->
      let n = List.length !(st.occ.(lit_index l)) in
      if n < !best_len then begin
        best := l;
        best_len := n
      end)
    lits;
  !best

(* Strengthen [d] by removing [drop]: add the shortened clause, delete
   the old one. *)
let strengthen st d drop =
  let c = st.cls.(d) in
  let shorter =
    Array.to_list c.lits |> List.filter (fun l -> l <> drop)
  in
  let _ = push_clause st ~log:true shorter in
  kill st d;
  st.n_strengthened <- st.n_strengthened + 1

(* Process one clause off the worklist: backward subsumption (is [c]
   itself redundant?), forward subsumption, then self-subsuming
   resolution in both directions that involve [c]'s literals. *)
let process st id =
  let c = st.cls.(id) in
  if c.alive && not st.unsat then begin
    (* Backward: an existing D ⊆ C kills C. *)
    let subsumed_by_existing =
      Array.exists
        (fun l ->
          List.exists
            (fun d ->
              d <> id
              && st.cls.(d).alive
              && Array.length st.cls.(d).lits <= Array.length c.lits
              && (spend st (Array.length st.cls.(d).lits);
                  subset st.cls.(d).lits c.lits))
            (alive_occ st l))
        c.lits
    in
    if subsumed_by_existing then begin
      kill st id;
      st.n_subsumed <- st.n_subsumed + 1
    end
    else begin
      (* Forward: C ⊆ D kills D; scan the cheapest occurrence list. *)
      let pivot = min_occ_lit st c.lits in
      List.iter
        (fun d ->
          if d <> id && st.cls.(d).alive
             && Array.length st.cls.(d).lits >= Array.length c.lits
          then begin
            spend st (Array.length st.cls.(d).lits);
            if subset c.lits st.cls.(d).lits then begin
              kill st d;
              st.n_subsumed <- st.n_subsumed + 1
            end
          end)
        (alive_occ st pivot);
      (* Self-subsumption, C strengthening D: C = C' ∪ {l}, C' ⊆ D,
         ¬l ∈ D  ⇒  D := D \ {¬l}. *)
      Array.iter
        (fun l ->
          if st.cls.(id).alive && not st.unsat then
            List.iter
              (fun d ->
                if d <> id && st.cls.(d).alive && st.cls.(id).alive
                   && Array.length st.cls.(d).lits + 1
                      >= Array.length c.lits
                then begin
                  spend st (Array.length st.cls.(d).lits);
                  if subset_except c.lits l st.cls.(d).lits 0 then
                    strengthen st d (-l)
                end)
              (alive_occ st (-l)))
        c.lits
    end
  end

let drain_queue st =
  while (not (Queue.is_empty st.queue)) && (not st.unsat) && not (out_of_fuel st)
  do
    process st (Queue.pop st.queue)
  done;
  Queue.clear st.queue

(* --- bounded variable elimination ------------------------------------- *)

let resolvent p_lits v n_lits =
  (* (P \ {v}) ∪ (N \ {¬v}); None on tautology. *)
  let merged =
    List.sort_uniq compare
      (List.filter (fun l -> l <> v) (Array.to_list p_lits)
      @ List.filter (fun l -> l <> -v) (Array.to_list n_lits))
  in
  if List.exists (fun l -> List.mem (-l) merged) merged then None
  else Some merged

let occurrence_cap = 8

let eliminate st v =
  let pos = alive_occ st v and neg = alive_occ st (-v) in
  let npos = List.length pos and nneg = List.length neg in
  if npos + nneg = 0 then ()
  else if npos = 0 || nneg = 0 then begin
    (* Pure literal: drop all occurrences, record them for the model. *)
    let saved =
      List.map (fun id -> Array.to_list st.cls.(id).lits) (pos @ neg)
    in
    List.iter (fun id -> kill st id) (pos @ neg);
    st.recon <- (v, saved) :: st.recon;
    st.gone.(v - 1) <- true;
    st.n_eliminated <- st.n_eliminated + 1
  end
  else if npos <= occurrence_cap && nneg <= occurrence_cap then begin
    spend st (npos * nneg * 8);
    let resolvents =
      List.concat_map
        (fun p ->
          List.filter_map
            (fun n -> resolvent st.cls.(p).lits v st.cls.(n).lits)
            neg)
        pos
      |> List.sort_uniq compare
    in
    if List.length resolvents <= npos + nneg then begin
      let saved =
        List.map (fun id -> Array.to_list st.cls.(id).lits) (pos @ neg)
      in
      (* Adds first (RUP needs the occurrences present), then deletes. *)
      List.iter (fun r -> ignore (push_clause st ~log:true r)) resolvents;
      List.iter (fun id -> kill st id) (pos @ neg);
      st.recon <- (v, saved) :: st.recon;
      st.gone.(v - 1) <- true;
      st.n_eliminated <- st.n_eliminated + 1
    end
  end

let bve_pass st =
  let before = st.n_eliminated in
  for v = 1 to st.s_nvars do
    if
      (not st.unsat)
      && (not (out_of_fuel st))
      && (not st.frozen.(v - 1))
      && not st.gone.(v - 1)
    then eliminate st v
  done;
  st.n_eliminated > before

(* --- vivification ------------------------------------------------------ *)

(* A tiny occurrence-list propagation engine over the live database.
   [value]: 0 unset, 1 true, -1 false (var-1 indexed). *)
type probe = {
  value : int array;
  mutable trail : int list;
}

let probe_value pr l =
  let a = pr.value.(abs l - 1) in
  if a = 0 then 0 else if (a > 0) = (l > 0) then 1 else -1

let probe_assign pr l =
  pr.value.(abs l - 1) <- (if l > 0 then 1 else -1);
  pr.trail <- l :: pr.trail

let probe_reset pr =
  List.iter (fun l -> pr.value.(abs l - 1) <- 0) pr.trail;
  pr.trail <- []

(* Propagate every pending implication; true on conflict. *)
let probe_propagate st pr =
  let conflict = ref false in
  let head = ref pr.trail in
  (* The trail is a stack; process a snapshot queue instead. *)
  let pending = Queue.create () in
  List.iter (fun l -> Queue.push l pending) (List.rev !head);
  let seen = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace seen l ()) !head;
  while (not !conflict) && not (Queue.is_empty pending) do
    let a = Queue.pop pending in
    (* Clauses containing ¬a may have become unit or empty. *)
    List.iter
      (fun id ->
        if (not !conflict) && st.cls.(id).alive then begin
          let c = st.cls.(id) in
          spend st (Array.length c.lits);
          let sat = ref false and unassigned = ref 0 and last = ref 0 in
          Array.iter
            (fun l ->
              match probe_value pr l with
              | 1 -> sat := true
              | 0 ->
                  incr unassigned;
                  last := l
              | _ -> ())
            c.lits;
          if not !sat then
            if !unassigned = 0 then conflict := true
            else if !unassigned = 1 then begin
              probe_assign pr !last;
              if not (Hashtbl.mem seen !last) then begin
                Hashtbl.replace seen !last ();
                Queue.push !last pending
              end
            end
        end)
      (alive_occ st (-a))
  done;
  !conflict

let vivify_clause st pr id =
  let c = st.cls.(id) in
  if c.alive && Array.length c.lits >= 3 && not (out_of_fuel st) then begin
    (* Probe without the clause itself, or the last literal would
       trivially propagate and every clause would "shorten" to itself. *)
    c.alive <- false;
    let lits = c.lits in
    let n = Array.length lits in
    let replacement = ref None in
    (try
       for i = 0 to n - 1 do
         let li = lits.(i) in
         match probe_value pr li with
         | 1 ->
             (* Implied by the assumed prefix: keep prefix + li. *)
             replacement :=
               Some (Array.to_list (Array.sub lits 0 i) @ [ li ]);
             raise Exit
         | -1 ->
             (* Redundant literal: the prefix already implies ¬li. *)
             replacement :=
               Some
                 (Array.to_list lits
                 |> List.filter (fun l -> l <> li));
             raise Exit
         | _ ->
             probe_assign pr (-li);
             if probe_propagate st pr then begin
               if i < n - 1 then
                 replacement :=
                   Some (Array.to_list (Array.sub lits 0 (i + 1)));
               raise Exit
             end
       done
     with Exit -> ());
    probe_reset pr;
    c.alive <- true;
    match !replacement with
    | Some shorter when List.length shorter < n ->
        let sorted = List.sort_uniq compare shorter in
        let _ = push_clause st ~log:true sorted in
        kill st id;
        st.n_vivified <- st.n_vivified + 1
    | _ -> ()
  end

let vivify_pass st =
  let before = st.n_vivified in
  let pr = { value = Array.make (max 1 st.s_nvars) 0; trail = [] } in
  let limit = st.count in
  let id = ref 0 in
  while !id < limit && (not st.unsat) && not (out_of_fuel st) do
    vivify_clause st pr !id;
    incr id
  done;
  st.n_vivified > before

(* --- model reconstruction ---------------------------------------------- *)

let reconstruct_with recon nvars model =
  let m = Array.make nvars false in
  Array.blit model 0 m 0 (min nvars (Array.length model));
  List.iter
    (fun (v, saved) ->
      let lit_true l =
        let x = m.(abs l - 1) in
        if l > 0 then x else not x
      in
      List.iter
        (fun clause ->
          if not (List.exists lit_true clause) then
            (* The clause mentions v (it was an occurrence of v at
               elimination time); flip v to the polarity it needs. *)
            m.(v - 1) <- List.mem v clause)
        saved)
    recon;
  m

(* --- driver ------------------------------------------------------------- *)

let run ?(frozen = []) ~nvars clauses =
  let st =
    {
      s_nvars = nvars;
      cls = Array.make 64 { lits = [||]; alive = false };
      count = 0;
      occ = Array.init (max 2 (2 * nvars)) (fun _ -> ref []);
      steps = [];
      queue = Queue.create ();
      unsat = false;
      fuel = 5_000_000;
      frozen = Array.make (max 1 nvars) false;
      gone = Array.make (max 1 nvars) false;
      recon = [];
      n_subsumed = 0;
      n_strengthened = 0;
      n_eliminated = 0;
      n_vivified = 0;
    }
  in
  List.iter
    (fun l ->
      let v = abs l in
      if v >= 1 && v <= nvars then st.frozen.(v - 1) <- true)
    frozen;
  (* Intake: normalize, drop tautologies (logged as deletions so the
     trace accounts for every original clause that disappears). *)
  List.iter
    (fun c ->
      if not st.unsat then begin
        let sorted = List.sort_uniq compare c in
        let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
        if tautology then log_delete st sorted
        else if sorted = [] then begin
          st.unsat <- true;
          log_add st []
        end
        else ignore (push_clause st ~log:false sorted)
      end)
    clauses;
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < 3 && (not st.unsat) && not (out_of_fuel st) do
    changed := false;
    drain_queue st;
    if (not st.unsat) && not (out_of_fuel st) then
      if vivify_pass st then changed := true;
    drain_queue st;
    if (not st.unsat) && not (out_of_fuel st) then
      if bve_pass st then changed := true;
    drain_queue st;
    incr rounds
  done;
  (* An empty clause reached outside push_clause's Add logging (input
     intake logs its own) must close the trace. *)
  (if st.unsat then
     match st.steps with
     | Drat.Add [] :: _ -> ()
     | _ -> log_add st []);
  let final =
    if st.unsat then [ [] ]
    else begin
      let acc = ref [] in
      for id = st.count - 1 downto 0 do
        if st.cls.(id).alive then
          acc := Array.to_list st.cls.(id).lits :: !acc
      done;
      !acc
    end
  in
  let eliminated =
    List.sort compare (List.map fst st.recon)
  in
  let recon = st.recon in
  {
    clauses = final;
    nvars;
    proof = List.rev st.steps;
    counters =
      {
        subsumed = st.n_subsumed;
        strengthened = st.n_strengthened;
        eliminated_vars = st.n_eliminated;
        vivified = st.n_vivified;
      };
    eliminated;
    reconstruct = reconstruct_with recon nvars;
  }
