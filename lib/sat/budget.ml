type reason = Deadline | Conflicts | Cancelled

type t = {
  deadline : float option;
  conflicts : int option;
  cancelled : unit -> bool;
}

let never () = false
let unlimited = { deadline = None; conflicts = None; cancelled = never }

let of_seconds ?conflicts ?(cancelled = never) s =
  (* The server derives child budgets arithmetically (shares, backoff
     subtractions); a NaN or negative duration would silently become a
     deadline that never trips — i.e. a hung request. *)
  if not (Float.is_finite s) || s < 0. then
    invalid_arg
      (Printf.sprintf
         "Sat.Budget.of_seconds: duration must be finite and non-negative \
          (got %g)"
         s);
  { deadline = Some (Unix.gettimeofday () +. s); conflicts; cancelled }

let of_conflicts n = { unlimited with conflicts = Some n }
let with_conflicts conflicts b = { b with conflicts }
let without_deadline b = { b with deadline = None }
let is_unlimited b = b.deadline = None && b.conflicts = None

let remaining_s b =
  Option.map (fun d -> d -. Unix.gettimeofday ()) b.deadline

let remaining b =
  Option.map (fun d -> Float.max 0. (d -. Unix.gettimeofday ())) b.deadline

let expired b =
  match b.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let check b =
  if b.cancelled () then Some Cancelled
  else if expired b then Some Deadline
  else None

let fraction f b =
  {
    b with
    deadline =
      Option.map
        (fun d ->
          let now = Unix.gettimeofday () in
          now +. (f *. max 0. (d -. now)))
        b.deadline;
    conflicts =
      Option.map
        (fun c -> max 1 (int_of_float (f *. float_of_int c)))
        b.conflicts;
  }

let reason_to_string = function
  | Deadline -> "deadline"
  | Conflicts -> "conflict budget"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let pp ppf b =
  let parts =
    (match remaining_s b with
    | Some s -> [ Printf.sprintf "%.2fs left" s ]
    | None -> [])
    @ (match b.conflicts with
      | Some c -> [ Printf.sprintf "%d conflicts" c ]
      | None -> [])
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | _ -> String.concat ", " parts)
