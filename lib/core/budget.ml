include Sat.Budget

let verification_grace_conflicts = 200_000

let verification_grace b =
  with_conflicts (Some verification_grace_conflicts) (without_deadline b)
