(** The complete SiDB design-automation flow (Sec. 4.2).

    The eight steps, end to end:

    + parse / build the specification as an XAG ({!Logic.Network},
      {!Logic.Verilog});
    + cut-based rewriting against an exact NPN database
      ({!Logic.Rewrite});
    + technology mapping onto the Bestagon gate set ({!Logic.Tech_map});
    + SMT/SAT-based exact physical design on the hexagonal grid under
      row clocking ({!Physdesign.Exact}; optionally the scalable
      heuristic {!Physdesign.Scalable});
    + SAT-based equivalence checking of specification vs. layout
      ({!Verify.Equivalence});
    + super-tile formation by clock-zone expansion
      ({!Layout.Supertile});
    + application of the Bestagon library for a dot-accurate SiDB layout
      ({!Bestagon.Library});
    + design-file generation ({!Bestagon.Sqd}).

    {2 Resilience}

    {!run} threads one {!Budget} through the expensive steps and never
    raises on budget conditions.  Under [Exact_with_fallback], exact
    physical design receives 70% of the remaining wall clock; if it
    exhausts its share (or proves its bounds infeasible) the flow
    degrades to {!Physdesign.Scalable} and records the degradation.
    Verification then runs under a conflicts-only grace budget
    ({!Budget.verification_grace}), so a hard deadline on placement
    cannot silently skip the equivalence check.  Failures are structured
    ({!failure}): the step reached, budget state, partial artifacts, and
    diagnostics.

    {2 Paranoid mode}

    [run ~paranoid:true] cross-checks every stage boundary instead of
    trusting the stage implementations:

    - the rewritten network and the mapped netlist are re-simulated
      against the source specification (exhaustive up to 12 inputs,
      fixed-seed random vectors beyond — {!Verify.Resim});
    - the exact engine runs with [certify = true]: every candidate-size
      UNSAT is proof-checked by {!Sat.Drat} before the size is excluded,
      and a rejected proof aborts the flow (no silent fallback);
    - the whole-layout DRC {!Layout.Design_rules.audit} runs on the gate
      layout and again after super-tiling; any violation is fatal;
    - equivalence checking always runs, produces a
      {!Verify.Equivalence.certificate}, and the certificate is replayed
      through the independent checker;
    - the final dot placement is swept for dangling-bond spacing
      violations ({!Bestagon.Geometry.spacing_violations}).

    Each passed check is recorded by name in [result.checks].  An
    [Undecided] equivalence verdict is not an [Error] (the budget, not
    the design, is at fault) but is recorded as a degradation — the CLI
    maps it to a nonzero exit. *)

type engine =
  | Exact of Physdesign.Exact.config
  | Scalable
  | Exact_with_fallback of Physdesign.Exact.config
      (** Try exact under a share of the budget; degrade to the scalable
          engine when it exhausts its share or refutes its bounds. *)

type options = {
  rewrite : bool;  (** Step 2 (default on). *)
  fuse_half_adders : bool;  (** Step 3 option (default on). *)
  engine : engine;  (** Step 4 (default [Exact default_config]). *)
  check_equivalence : bool;  (** Step 5 (default on). *)
  expand_supertiles : bool;  (** Step 6 (default on). *)
  apply_library : bool;  (** Step 7 (default on). *)
}

val default_options : options

(** {2 Diagnostics} *)

type step =
  | Parsing
  | Synthesis
  | Physical_design
  | Verification
  | Supertiling
  | Library_application
  | Design_rule_check  (** Paranoid-mode DRC audit (gate or dot level). *)
  | Certification
      (** A paranoid cross-check failed: re-simulation mismatch or a
          rejected proof/certificate. *)

val step_to_string : step -> string

type engine_used = Used_exact | Used_scalable
(** Which physical-design engine actually produced the layout. *)

val engine_used_to_string : engine_used -> string

type diagnostics = {
  engine_used : engine_used option;
      (** [None] only in failures before a layout exists. *)
  degradations : string list;
      (** Human-readable record of every degradation taken, in order. *)
  exact_attempts : int;  (** Candidate SAT solves by the exact engine. *)
  exact_rounds : int;  (** Budget-escalation rounds used. *)
  certified_refutations : int;
      (** Proof-checked candidate UNSATs (paranoid / [certify] runs). *)
  solver_stats : Sat.Solver.stats;
  elapsed_s : float;  (** Wall-clock seconds for the whole run. *)
}

type timing = {
  synthesis_s : float;
  physical_design_s : float;
  verification_s : float;
  library_s : float;
}

type result = {
  specification : Logic.Network.t;
  optimized : Logic.Network.t;
  mapped : Logic.Mapped.t;
  gate_layout : Layout.Gate_layout.t;  (** After step 4. *)
  supertiled : Layout.Gate_layout.t;  (** After step 6 (same as
      [gate_layout] when expansion is off). *)
  drc_violations : Layout.Design_rules.violation list;
      (** From {!Layout.Design_rules.check} normally,
          {!Layout.Design_rules.audit} in paranoid mode (then always
          [[]] in an [Ok] result — violations abort the run). *)
  equivalence : Verify.Equivalence.verdict option;
  certificate : Verify.Equivalence.certificate option;
      (** Equivalence certificate (paranoid runs; replayed before the
          result is returned). *)
  sidb : Bestagon.Library.sidb_layout option;
  checks : string list;
      (** Names of the paranoid cross-checks that passed, in order;
          [[]] outside paranoid mode. *)
  timing : timing;
  diagnostics : diagnostics;
}

type partial = {
  partial_optimized : Logic.Network.t option;
  partial_mapped : Logic.Mapped.t option;
  partial_layout : Layout.Gate_layout.t option;
}
(** Artifacts completed before the failing step. *)

type failure = {
  failed_step : step;
  message : string;
  budget_reason : Budget.reason option;
      (** Set when a budget condition caused the failure. *)
  partial : partial;
  diagnostics : diagnostics;
}

(** {2 Cross-request memo}

    A {!Memo.t} caches the flow's expensive intermediate artifacts
    {e across} runs: the synthesized pair (optimized network + mapped
    netlist), the placed-and-routed gate layout, and the equivalence
    verdict, each keyed by the caller's structural key for the
    specification plus every option that shapes the artifact.  The
    resident design server shares one memo over all requests; repeated
    or structurally identical submissions then skip synthesis, physical
    design, and the miter solve entirely.

    Soundness rules, enforced by {!run}:
    - the [corrupt_mapped] test hook or a [defect_map] disable the memo
      for that run (their identity is not part of the key);
    - paranoid runs share only the synthesis table — physical design
      and verification are re-derived so their cross-checks are real;
    - a layout produced after a budget-driven degradation is not
      stored, and [Undecided] verdicts are never stored (both describe
      this run's budget, not the design).

    All operations are thread-safe (the server dispatches jobs across
    {!Parallel.Pool} domains); a racing duplicate computation is
    possible and harmless because flow results are deterministic. *)

module Memo : sig
  type t

  val create : unit -> t

  type stats = {
    synth_hits : int;
    synth_misses : int;
    layout_hits : int;
    layout_misses : int;
    verdict_hits : int;
    verdict_misses : int;
  }

  val empty_stats : stats
  val stats : t -> stats

  val hit_rate : hits:int -> misses:int -> float
  (** [hits / (hits + misses)], 0 when empty. *)
end

val error_message : failure -> string
(** One-line ["<step>: <message>"] form. *)

val pp_failure : Format.formatter -> failure -> unit

val run :
  ?options:options ->
  ?paranoid:bool ->
  ?corrupt_mapped:(Logic.Mapped.t -> Logic.Mapped.t) ->
  ?defect_map:Sidb.Defect_map.t ->
  ?memo:string * Memo.t ->
  ?budget:Budget.t ->
  Logic.Network.t ->
  (result, failure) Stdlib.result
(** [Error] on physical-design failure (or a budget tripping before
    it); a failed equivalence check or DRC violations are reported in
    the result, not as errors.  Never raises on budget conditions.

    With [~paranoid:true] (default [false]) every stage boundary is
    cross-checked and any failed check is an [Error] at
    {!Design_rule_check}, {!Certification}, or {!Verification} — see
    the module preamble.  [corrupt_mapped] is a test hook applied to
    the mapped netlist {e before} the paranoid mapping cross-check, to
    prove injected corruption is caught at the boundary.

    [defect_map] makes physical design defect-aware: both engines
    avoid the tiles the map blocks (one memoized
    [Bestagon.Surface] view is shared by the whole run), scalable
    results are left uncropped so the layout stays in the map's
    absolute lattice frame, and a map leaving no feasible placement
    surfaces as the structured {!Physical_design} failure.  Paranoid
    runs additionally re-check that no placed tile sits on a blocked
    coordinate ("defect avoidance" in [result.checks]).

    [memo] is [(key, memo)] where [key] is the caller's structural key
    for [specification] (e.g. a digest of its source): intermediate
    artifacts are then reused across runs under the soundness rules
    documented at {!Memo}. *)

val run_verilog :
  ?options:options ->
  ?paranoid:bool ->
  ?defect_map:Sidb.Defect_map.t ->
  ?memo:string * Memo.t ->
  ?budget:Budget.t ->
  string ->
  (result, failure) Stdlib.result
(** Convenience: parse Verilog source (step 1) and run. *)

val run_benchmark :
  ?options:options ->
  ?paranoid:bool ->
  ?defect_map:Sidb.Defect_map.t ->
  ?memo:string * Memo.t ->
  ?budget:Budget.t ->
  string ->
  (result, failure) Stdlib.result
(** Run on a named circuit from {!Logic.Benchmarks}. *)

(** {2 Whole-layout simulation} *)

type layout_sim = {
  sim_engine : string;
  sim_exact : bool;
      (** Whether energy/degeneracy/critical temperature are exact: true
          for the exact engines, false for quicksim (energies are upper
          bounds, the spectrum is sampled, T_c is an upper estimate). *)
  sim_sites : int;  (** DB count of the assembled system. *)
  sim_tiles : int;
  sim_energy : float;  (** Ground-state energy, eV. *)
  sim_degeneracy : int;
  sim_valid : bool;
      (** Every reported ground state is physically valid (population-
          and configuration-stable). *)
  sim_spectrum_states : int;
  sim_critical_temperature_k : float;
  sim_duplicates_dropped : int;
  sim_seconds : float;
}

val exact_site_limit : int
(** Largest system (40 sites) {!simulate_layout} hands to an exact
    engine: auto-selection switches to quicksim above it, and an
    explicitly requested exact engine is refused with a structured
    [Error]. *)

val simulate_layout :
  ?engine:Sidb.Bdl.engine ->
  ?inputs:(string * bool) list ->
  ?clock_bias:float array ->
  ?confidence:float ->
  ?t_max:float ->
  result ->
  (layout_sim, string) Stdlib.result
(** Simulate the complete placed-and-routed design as {e one} charge
    system ({!Bestagon.Assembly}): whole-layout ground state and
    critical temperature — the workload the exact engines cannot touch
    beyond a few tiles.  [engine] defaults to
    {!Sidb.Bdl.configured_engine} when set, else auto: exact pruned
    search up to 40 sites, quicksim above.  An exact engine requested
    explicitly on a larger system gets a structured [Error] (refusal),
    never an unbounded search.  [inputs]/[clock_bias] parameterize the
    assembly; [confidence]/[t_max] the critical-temperature search. *)

(** {2 Whole-layout operational domains} *)

type layout_domain = {
  dom_engine : string;
  dom_exact : bool;
      (** [false] for quicksim: the domain is then an estimate (a point
          can be misclassified if the heuristic misses a ground
          state). *)
  dom_sites : int;
      (** Worst-case per-row system size: all fixed DBs plus every
          input's larger driver perturber set. *)
  dom_tiles : int;
  dom_inputs : int;
  dom_outputs : int;
  dom_domain : Sidb.Operational_domain.t;
  dom_seconds : float;
}

val domain_input_limit : int
(** Most primary inputs (8) {!domain_of_layout} accepts: every evaluated
    grid point costs [2^inputs] ground-state solves, so wider designs
    are refused with a structured [Error]. *)

val default_domain_x_axis : Sidb.Operational_domain.axis
(** μ₋ ∈ [−1.2, 0], 8 steps. *)

val default_domain_y_axis : Sidb.Operational_domain.axis
(** ε_r ∈ [1, 14], 8 steps (λ_TF pinned at the paper's 5 nm — the
    library's domains are thin bands in λ_TF, so the (μ₋, ε_r) plane
    is the informative slice). *)

val domain_of_layout :
  ?engine:Sidb.Bdl.engine ->
  ?jobs:int ->
  ?config:Sidb.Operational_domain.config ->
  ?x_axis:Sidb.Operational_domain.axis ->
  ?y_axis:Sidb.Operational_domain.axis ->
  result ->
  (layout_domain, string) Stdlib.result
(** The operational domain of the complete placed-and-routed design as
    {e one} BDL structure ({!Bestagon.Assembly.structure_of_layout}):
    each grid point drives every primary-input row and requires every
    primary output to read back the specification network's value — the
    whole-layout analogue of the per-gate sweep, open to the heuristic
    engine only (ROADMAP item 3 follow-on).  Pads are matched to the
    specification's PI/PO names; clocking is neutral.  Engine selection
    and the exact-engine refusal follow {!simulate_layout}
    ({!exact_site_limit} on the worst-case row system). *)

val export_sqd : result -> ?inputs:(string * bool) list -> path:string -> unit -> (unit, string) Stdlib.result
(** Step 8: write the SiDB layout as a SiQAD design file. *)

val pp_summary : Format.formatter -> result -> unit
