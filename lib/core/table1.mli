(** Generation of Table 1: layout data for the benchmark suite.

    For every circuit the flow reports the layout aspect ratio in
    hexagonal tiles (w × h), the tile area, the number of SiDBs of the
    dot-accurate realization, and the physical area in nm²
    (cf. DESIGN.md §3 for the area model). *)

type row = {
  name : string;
  source : string;
  width : int;
  height : int;
  area_tiles : int;
  sidbs : int;
  area_nm2 : float;
  equivalent : bool;
  runtime_s : float;
}

val generate :
  ?names:string list ->
  ?options:Flow.options ->
  ?budget:Budget.t ->
  unit ->
  (row, string) Stdlib.result list
(** One row per benchmark (default: all of Table 1, paper order).  The
    budget applies per circuit. *)

val paper_rows : (string * (int * int * int * float)) list
(** The published Table 1 values: name -> (w, h, SiDBs, nm²), for
    side-by-side comparison in the benchmark harness. *)

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> (row, string) Stdlib.result list -> unit
