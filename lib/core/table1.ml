type row = {
  name : string;
  source : string;
  width : int;
  height : int;
  area_tiles : int;
  sidbs : int;
  area_nm2 : float;
  equivalent : bool;
  runtime_s : float;
}

let paper_rows =
  [
    ("xor2", (2, 3, 58, 2403.98));
    ("xnor2", (2, 3, 58, 2403.98));
    ("par_gen", (3, 4, 103, 4830.22));
    ("mux21", (3, 6, 196, 7258.52));
    ("par_check", (4, 7, 284, 11312.68));
    ("xor5_r1", (5, 6, 232, 12124.57));
    ("xor5_majority", (5, 6, 244, 12124.57));
    ("t", (5, 8, 426, 16180.79));
    ("t_5", (5, 8, 448, 16180.79));
    ("c17", (5, 8, 396, 16180.79));
    ("majority", (5, 11, 651, 22265.12));
    ("majority_5_r1", (5, 12, 737, 24293.23));
    ("cm82a_5", (5, 15, 1211, 30377.56));
    ("newtag", (8, 10, 651, 32419.82));
  ]

let generate ?names ?options ?budget () =
  let names =
    match names with Some n -> n | None -> List.map fst paper_rows
  in
  List.map
    (fun name ->
      let t0 = Unix.gettimeofday () in
      match Flow.run_benchmark ?options ?budget name with
      | Error f ->
          Error (Printf.sprintf "%s: %s" name (Flow.error_message f))
      | Ok result ->
          let runtime_s = Unix.gettimeofday () -. t0 in
          let stats = Layout.Gate_layout.stats result.Flow.gate_layout in
          let w = stats.Layout.Gate_layout.bounding_width
          and h = stats.Layout.Gate_layout.bounding_height in
          let sidbs, area_nm2 =
            match result.Flow.sidb with
            | Some l ->
                (l.Bestagon.Library.sidb_count, l.Bestagon.Library.area_nm2)
            | None ->
                (0, Bestagon.Library.area_nm2 ~width_tiles:w ~height_tiles:h)
          in
          let source =
            match Logic.Benchmarks.find name with
            | b -> b.Logic.Benchmarks.source
            | exception Not_found -> "?"
          in
          Ok
            {
              name;
              source;
              width = w;
              height = h;
              area_tiles = w * h;
              sidbs;
              area_nm2;
              equivalent =
                result.Flow.equivalence = Some Verify.Equivalence.Equivalent;
              runtime_s;
            })
    names

let pp_row ppf r =
  Format.fprintf ppf "%-14s %2dx%-2d =%3d  %5d  %10.2f  %s  %6.2fs" r.name
    r.width r.height r.area_tiles r.sidbs r.area_nm2
    (if r.equivalent then "eq" else "??")
    r.runtime_s

let pp_table ppf rows =
  Format.fprintf ppf
    "%-14s %-9s %-5s  %-10s  %-2s  %s@." "Name" "w x h = A" "SiDBs"
    "nm^2" "eq" "time";
  List.iter
    (fun row ->
      match row with
      | Ok r -> Format.fprintf ppf "%a@." pp_row r
      | Error e -> Format.fprintf ppf "FAILED: %s@." e)
    rows
