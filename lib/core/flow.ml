type engine =
  | Exact of Physdesign.Exact.config
  | Scalable
  | Exact_with_fallback of Physdesign.Exact.config

type options = {
  rewrite : bool;
  fuse_half_adders : bool;
  engine : engine;
  check_equivalence : bool;
  expand_supertiles : bool;
  apply_library : bool;
}

let default_options =
  {
    rewrite = true;
    fuse_half_adders = true;
    engine = Exact Physdesign.Exact.default_config;
    check_equivalence = true;
    expand_supertiles = true;
    apply_library = true;
  }

type step =
  | Parsing
  | Synthesis
  | Physical_design
  | Verification
  | Supertiling
  | Library_application

let step_to_string = function
  | Parsing -> "parsing"
  | Synthesis -> "synthesis"
  | Physical_design -> "physical design"
  | Verification -> "verification"
  | Supertiling -> "super-tiling"
  | Library_application -> "library application"

type engine_used = Used_exact | Used_scalable

let engine_used_to_string = function
  | Used_exact -> "exact"
  | Used_scalable -> "scalable"

type diagnostics = {
  engine_used : engine_used option;
  degradations : string list;
  exact_attempts : int;
  exact_rounds : int;
  solver_stats : Sat.Solver.stats;
  elapsed_s : float;
}

type timing = {
  synthesis_s : float;
  physical_design_s : float;
  verification_s : float;
  library_s : float;
}

type result = {
  specification : Logic.Network.t;
  optimized : Logic.Network.t;
  mapped : Logic.Mapped.t;
  gate_layout : Layout.Gate_layout.t;
  supertiled : Layout.Gate_layout.t;
  drc_violations : Layout.Design_rules.violation list;
  equivalence : Verify.Equivalence.verdict option;
  sidb : Bestagon.Library.sidb_layout option;
  timing : timing;
  diagnostics : diagnostics;
}

type partial = {
  partial_optimized : Logic.Network.t option;
  partial_mapped : Logic.Mapped.t option;
  partial_layout : Layout.Gate_layout.t option;
}

type failure = {
  failed_step : step;
  message : string;
  budget_reason : Budget.reason option;
  partial : partial;
  diagnostics : diagnostics;
}

let error_message f =
  Printf.sprintf "%s: %s" (step_to_string f.failed_step) f.message

let no_partial =
  { partial_optimized = None; partial_mapped = None; partial_layout = None }

let empty_diagnostics =
  {
    engine_used = None;
    degradations = [];
    exact_attempts = 0;
    exact_rounds = 0;
    solver_stats = Sat.Solver.empty_stats;
    elapsed_s = 0.;
  }

let pp_failure ppf f =
  Format.fprintf ppf "failed at %s: %s@." (step_to_string f.failed_step)
    f.message;
  (match f.budget_reason with
  | Some r -> Format.fprintf ppf "budget: %a@." Budget.pp_reason r
  | None -> ());
  List.iter
    (fun d -> Format.fprintf ppf "degradation: %s@." d)
    f.diagnostics.degradations;
  let got =
    List.filter_map
      (fun (name, present) -> if present then Some name else None)
      [
        ("optimized network", f.partial.partial_optimized <> None);
        ("mapped netlist", f.partial.partial_mapped <> None);
        ("gate layout", f.partial.partial_layout <> None);
      ]
  in
  (match got with
  | [] -> ()
  | _ ->
      Format.fprintf ppf "partial artifacts: %s@." (String.concat ", " got));
  Format.fprintf ppf "elapsed: %.3fs@." f.diagnostics.elapsed_s

let now = Sys.time

let run ?(options = default_options) ?(budget = Budget.unlimited)
    specification =
  let t_start = Unix.gettimeofday () in
  let degradations = ref [] in
  let degrade msg = degradations := msg :: !degradations in
  let diag ?engine_used ?(attempts = 0) ?(rounds = 0)
      ?(stats = Sat.Solver.empty_stats) () =
    {
      engine_used;
      degradations = List.rev !degradations;
      exact_attempts = attempts;
      exact_rounds = rounds;
      solver_stats = stats;
      elapsed_s = Unix.gettimeofday () -. t_start;
    }
  in
  (* Step 2: logic rewriting. *)
  let t0 = now () in
  let optimized =
    if options.rewrite then Logic.Rewrite.rewrite_to_fixpoint specification
    else Logic.Network.cleanup specification
  in
  (* Step 3: technology mapping. *)
  let mapped, _map_stats =
    Logic.Tech_map.map ~fuse_half_adders:options.fuse_half_adders optimized
  in
  let synthesis_s = now () -. t0 in
  (* Step 4: physical design, under (a share of) the budget. *)
  let t1 = now () in
  match Budget.check budget with
  | Some r ->
      Error
        {
          failed_step = Physical_design;
          message =
            Printf.sprintf "budget exhausted before physical design (%s)"
              (Budget.reason_to_string r);
          budget_reason = Some r;
          partial =
            {
              partial_optimized = Some optimized;
              partial_mapped = Some mapped;
              partial_layout = None;
            };
          diagnostics = diag ();
        }
  | None -> (
      let netlist = Physdesign.Netlist.of_mapped mapped in
      let run_scalable () = Physdesign.Scalable.place_and_route netlist in
      let describe_exact_failure = function
        | Physdesign.Exact.No_layout { attempts; _ } ->
            ( attempts,
              0,
              None,
              Printf.sprintf
                "proved no layout within its search bounds (%d candidate(s))"
                attempts )
        | Physdesign.Exact.Out_of_budget { reason; attempts; rounds; _ } ->
            ( attempts,
              rounds,
              Some reason,
              Printf.sprintf
                "ran out of budget (%s) after %d candidate solve(s), %d \
                 escalation round(s)"
                (Budget.reason_to_string reason)
                attempts rounds )
      in
      let pd =
        match options.engine with
        | Scalable -> (
            match run_scalable () with
            | Ok r ->
                Ok
                  ( r.Physdesign.Scalable.layout,
                    Used_scalable,
                    0,
                    0,
                    Sat.Solver.empty_stats )
            | Error e -> Error ("scalable physical design: " ^ e, None, 0, 0))
        | Exact config -> (
            match Physdesign.Exact.place_and_route ~config ~budget netlist with
            | Ok r ->
                Ok
                  ( r.Physdesign.Exact.layout,
                    Used_exact,
                    r.Physdesign.Exact.attempts,
                    r.Physdesign.Exact.rounds,
                    r.Physdesign.Exact.stats )
            | Error f ->
                let attempts, rounds, reason, why = describe_exact_failure f in
                Error
                  ("exact physical design " ^ why, reason, attempts, rounds))
        | Exact_with_fallback config -> (
            let exact_budget =
              if budget.Budget.deadline = None then budget
              else Budget.fraction 0.7 budget
            in
            match
              Physdesign.Exact.place_and_route ~config ~budget:exact_budget
                netlist
            with
            | Ok r ->
                Ok
                  ( r.Physdesign.Exact.layout,
                    Used_exact,
                    r.Physdesign.Exact.attempts,
                    r.Physdesign.Exact.rounds,
                    r.Physdesign.Exact.stats )
            | Error f -> (
                let attempts, rounds, reason, why = describe_exact_failure f in
                degrade
                  (Printf.sprintf
                     "physical design: exact engine %s; degraded to the \
                      scalable engine"
                     why);
                match run_scalable () with
                | Ok r ->
                    Ok
                      ( r.Physdesign.Scalable.layout,
                        Used_scalable,
                        attempts,
                        rounds,
                        Sat.Solver.empty_stats )
                | Error e ->
                    Error
                      ( "scalable fallback after exact engine also failed: "
                        ^ e,
                        reason,
                        attempts,
                        rounds )))
      in
      match pd with
      | Error (message, budget_reason, attempts, rounds) ->
          Error
            {
              failed_step = Physical_design;
              message;
              budget_reason;
              partial =
                {
                  partial_optimized = Some optimized;
                  partial_mapped = Some mapped;
                  partial_layout = None;
                };
              diagnostics = diag ~attempts ~rounds ();
            }
      | Ok (gate_layout, engine_used, attempts, rounds, stats) ->
          let physical_design_s = now () -. t1 in
          let drc_violations = Layout.Design_rules.check gate_layout in
          (* Step 5: formal verification under the grace budget: even
             when physical design spent the deadline, the layout is
             still checked (conflict-capped, cancellation honored). *)
          let t2 = now () in
          let equivalence =
            if options.check_equivalence then
              match
                Verify.Equivalence.check_layout
                  ~budget:(Budget.verification_grace budget)
                  specification gate_layout
              with
              | Ok (Verify.Equivalence.Undecided r as verdict) ->
                  degrade
                    (Printf.sprintf
                       "verification: miter solve undecided (%s)"
                       (Budget.reason_to_string r));
                  Some verdict
              | Ok verdict -> Some verdict
              | Error msg ->
                  Some
                    (Verify.Equivalence.Interface_mismatch
                       ("extraction: " ^ msg))
            else None
          in
          let verification_s = now () -. t2 in
          (* Step 6: super-tile formation. *)
          let supertiled =
            if options.expand_supertiles then
              Layout.Supertile.expand gate_layout
            else gate_layout
          in
          (* Step 7: Bestagon library application. *)
          let t3 = now () in
          let sidb =
            if options.apply_library then
              match Bestagon.Library.apply supertiled with
              | Ok l -> Some l
              | Error _ -> None
            else None
          in
          let library_s = now () -. t3 in
          Ok
            {
              specification;
              optimized;
              mapped;
              gate_layout;
              supertiled;
              drc_violations;
              equivalence;
              sidb;
              timing =
                { synthesis_s; physical_design_s; verification_s; library_s };
              diagnostics =
                diag ~engine_used ~attempts ~rounds ~stats ();
            })

let parse_failure message =
  {
    failed_step = Parsing;
    message;
    budget_reason = None;
    partial = no_partial;
    diagnostics = empty_diagnostics;
  }

let run_verilog ?options ?budget source =
  match Logic.Verilog.parse source with
  | exception Logic.Verilog.Parse_error msg ->
      Error (parse_failure ("parse: " ^ msg))
  | network -> run ?options ?budget network

let run_benchmark ?options ?budget name =
  match Logic.Benchmarks.find name with
  | exception Not_found ->
      Error (parse_failure (Printf.sprintf "unknown benchmark %S" name))
  | b -> run ?options ?budget (b.Logic.Benchmarks.build ())

let export_sqd result ?(inputs = []) ~path () =
  match Bestagon.Library.apply ~inputs result.supertiled with
  | Error e -> Error e
  | Ok l ->
      Bestagon.Sqd.write_file ~path l.Bestagon.Library.sites;
      Ok ()

let pp_summary ppf r =
  let stats = Layout.Gate_layout.stats r.gate_layout in
  Format.fprintf ppf "spec: %a@." Logic.Network.pp_stats r.specification;
  Format.fprintf ppf "optimized: %a@." Logic.Network.pp_stats r.optimized;
  Format.fprintf ppf "mapped: %a@." Logic.Mapped.pp_stats r.mapped;
  Format.fprintf ppf "layout: %dx%d = %d tiles (%d gates, %d wires, %d crossings, %d fan-outs)@."
    stats.Layout.Gate_layout.bounding_width
    stats.Layout.Gate_layout.bounding_height
    stats.Layout.Gate_layout.area_tiles stats.Layout.Gate_layout.gate_tiles
    stats.Layout.Gate_layout.wire_tiles
    stats.Layout.Gate_layout.crossing_tiles
    stats.Layout.Gate_layout.fanout_tiles;
  (match r.diagnostics.engine_used with
  | Some e ->
      Format.fprintf ppf "engine: %s (%d candidate solve(s), %d round(s); %a)@."
        (engine_used_to_string e) r.diagnostics.exact_attempts
        r.diagnostics.exact_rounds Sat.Solver.pp_stats
        r.diagnostics.solver_stats
  | None -> ());
  List.iter
    (fun d -> Format.fprintf ppf "degradation: %s@." d)
    r.diagnostics.degradations;
  Format.fprintf ppf "drc: %d violation(s)@." (List.length r.drc_violations);
  (match r.equivalence with
  | None -> ()
  | Some (Verify.Equivalence.Counterexample _ as v) ->
      Format.fprintf ppf "verification: COUNTEREXAMPLE — %s@."
        (Verify.Equivalence.verdict_to_string v)
  | Some v ->
      Format.fprintf ppf "verification: %s@."
        (Verify.Equivalence.verdict_to_string v));
  (match r.sidb with
  | None -> ()
  | Some l ->
      Format.fprintf ppf "sidb: %d dots, %.2f nm^2%s@."
        l.Bestagon.Library.sidb_count l.Bestagon.Library.area_nm2
        (if l.Bestagon.Library.all_validated then ""
         else " (some tiles unvalidated)"));
  Format.fprintf ppf
    "time: synth %.3fs, physical %.3fs, verify %.3fs, library %.3fs@."
    r.timing.synthesis_s r.timing.physical_design_s r.timing.verification_s
    r.timing.library_s
