type engine =
  | Exact of Physdesign.Exact.config
  | Scalable
  | Exact_with_fallback of Physdesign.Exact.config

type options = {
  rewrite : bool;
  fuse_half_adders : bool;
  engine : engine;
  check_equivalence : bool;
  expand_supertiles : bool;
  apply_library : bool;
}

let default_options =
  {
    rewrite = true;
    fuse_half_adders = true;
    engine = Exact Physdesign.Exact.default_config;
    check_equivalence = true;
    expand_supertiles = true;
    apply_library = true;
  }

type step =
  | Parsing
  | Synthesis
  | Physical_design
  | Verification
  | Supertiling
  | Library_application
  | Design_rule_check
  | Certification

let step_to_string = function
  | Parsing -> "parsing"
  | Synthesis -> "synthesis"
  | Physical_design -> "physical design"
  | Verification -> "verification"
  | Supertiling -> "super-tiling"
  | Library_application -> "library application"
  | Design_rule_check -> "design-rule check"
  | Certification -> "certification"

type engine_used = Used_exact | Used_scalable

let engine_used_to_string = function
  | Used_exact -> "exact"
  | Used_scalable -> "scalable"

type diagnostics = {
  engine_used : engine_used option;
  degradations : string list;
  exact_attempts : int;
  exact_rounds : int;
  certified_refutations : int;
  solver_stats : Sat.Solver.stats;
  elapsed_s : float;
}

type timing = {
  synthesis_s : float;
  physical_design_s : float;
  verification_s : float;
  library_s : float;
}

type result = {
  specification : Logic.Network.t;
  optimized : Logic.Network.t;
  mapped : Logic.Mapped.t;
  gate_layout : Layout.Gate_layout.t;
  supertiled : Layout.Gate_layout.t;
  drc_violations : Layout.Design_rules.violation list;
  equivalence : Verify.Equivalence.verdict option;
  certificate : Verify.Equivalence.certificate option;
  sidb : Bestagon.Library.sidb_layout option;
  checks : string list;
  timing : timing;
  diagnostics : diagnostics;
}

type partial = {
  partial_optimized : Logic.Network.t option;
  partial_mapped : Logic.Mapped.t option;
  partial_layout : Layout.Gate_layout.t option;
}

type failure = {
  failed_step : step;
  message : string;
  budget_reason : Budget.reason option;
  partial : partial;
  diagnostics : diagnostics;
}

let error_message f =
  Printf.sprintf "%s: %s" (step_to_string f.failed_step) f.message

let no_partial =
  { partial_optimized = None; partial_mapped = None; partial_layout = None }

let empty_diagnostics =
  {
    engine_used = None;
    degradations = [];
    exact_attempts = 0;
    exact_rounds = 0;
    certified_refutations = 0;
    solver_stats = Sat.Solver.empty_stats;
    elapsed_s = 0.;
  }

let pp_failure ppf f =
  Format.fprintf ppf "failed at %s: %s@." (step_to_string f.failed_step)
    f.message;
  (match f.budget_reason with
  | Some r -> Format.fprintf ppf "budget: %a@." Budget.pp_reason r
  | None -> ());
  List.iter
    (fun d -> Format.fprintf ppf "degradation: %s@." d)
    f.diagnostics.degradations;
  let got =
    List.filter_map
      (fun (name, present) -> if present then Some name else None)
      [
        ("optimized network", f.partial.partial_optimized <> None);
        ("mapped netlist", f.partial.partial_mapped <> None);
        ("gate layout", f.partial.partial_layout <> None);
      ]
  in
  (match got with
  | [] -> ()
  | _ ->
      Format.fprintf ppf "partial artifacts: %s@." (String.concat ", " got));
  Format.fprintf ppf "elapsed: %.3fs@." f.diagnostics.elapsed_s

(* --- cross-request memo ------------------------------------------------ *)

module Memo = struct
  type layout_entry = {
    me_layout : Layout.Gate_layout.t;
    me_engine_used : engine_used;
    me_attempts : int;
    me_rounds : int;
  }

  type stats = {
    synth_hits : int;
    synth_misses : int;
    layout_hits : int;
    layout_misses : int;
    verdict_hits : int;
    verdict_misses : int;
  }

  type t = {
    mutex : Mutex.t;
    synth : (string, Logic.Network.t * Logic.Mapped.t) Hashtbl.t;
    layouts : (string, layout_entry) Hashtbl.t;
    verdicts : (string, Verify.Equivalence.verdict) Hashtbl.t;
    mutable s : stats;
  }

  let empty_stats =
    {
      synth_hits = 0;
      synth_misses = 0;
      layout_hits = 0;
      layout_misses = 0;
      verdict_hits = 0;
      verdict_misses = 0;
    }

  let create () =
    {
      mutex = Mutex.create ();
      synth = Hashtbl.create 64;
      layouts = Hashtbl.create 64;
      verdicts = Hashtbl.create 64;
      s = empty_stats;
    }

  let stats m =
    Mutex.lock m.mutex;
    let s = m.s in
    Mutex.unlock m.mutex;
    s

  let hit_rate ~hits ~misses =
    let total = hits + misses in
    if total = 0 then 0. else float_of_int hits /. float_of_int total

  (* Generic guarded lookup: [compute] runs OUTSIDE the lock (it can be
     a whole physical-design run); a racing duplicate computation is
     possible and harmless (last store wins, results are deterministic),
     while holding the lock across [compute] would serialize the pool. *)
  let find m table key =
    Mutex.lock m.mutex;
    let r = Hashtbl.find_opt table key in
    Mutex.unlock m.mutex;
    r

  let store m table key v =
    Mutex.lock m.mutex;
    Hashtbl.replace table key v;
    Mutex.unlock m.mutex

  let bump m f =
    Mutex.lock m.mutex;
    m.s <- f m.s;
    Mutex.unlock m.mutex
end

let now = Sys.time

exception Fail of failure

let engine_desc = function
  | Exact c -> Printf.sprintf "exact:%x" (Hashtbl.hash c)
  | Scalable -> "scalable"
  | Exact_with_fallback c -> Printf.sprintf "fallback:%x" (Hashtbl.hash c)

let run ?(options = default_options) ?(paranoid = false) ?corrupt_mapped
    ?defect_map ?memo ?(budget = Budget.unlimited) specification =
  (* The memo is usable only when its key determines the artifact: the
     [corrupt_mapped] test hook and a defect map (whose identity is not
     part of the key) disable it outright; paranoid runs re-derive and
     re-check physical design and verification, so they only share the
     synthesis tables. *)
  let memo =
    match (memo, corrupt_mapped) with
    | Some _, Some _ | None, _ -> None
    | Some (key, m), None -> Some (key, m)
  in
  (* One memoized surface view per run: the exact engine's candidate
     sweep and the scalable engine's retries then share blocked-tile
     verdicts, and only tiles near charged defects ever pay for a
     ground-state recheck. *)
  let surface = Option.map Bestagon.Surface.create defect_map in
  let blocked =
    Option.map (fun s c -> Bestagon.Surface.blocked s c) surface
  in
  let t_start = Unix.gettimeofday () in
  let degradations = ref [] in
  let degrade msg = degradations := msg :: !degradations in
  let checks = ref [] in
  let pass name = checks := name :: !checks in
  let certified = ref 0 in
  let diag ?engine_used ?(attempts = 0) ?(rounds = 0)
      ?(stats = Sat.Solver.empty_stats) () =
    {
      engine_used;
      degradations = List.rev !degradations;
      exact_attempts = attempts;
      exact_rounds = rounds;
      certified_refutations = !certified;
      solver_stats = stats;
      elapsed_s = Unix.gettimeofday () -. t_start;
    }
  in
  let fail ?budget_reason ?(diagnostics = None) failed_step partial message =
    let diagnostics =
      match diagnostics with Some d -> d | None -> diag ()
    in
    raise (Fail { failed_step; message; budget_reason; partial; diagnostics })
  in
  try
    (* Steps 2 + 3: logic rewriting and technology mapping, memoized as
       a pair under the caller's structural key (the two artifacts are
       produced and consumed together). *)
    let t0 = now () in
    let synth_key =
      Option.map
        (fun (key, m) ->
          ( Printf.sprintf "%s|rw=%b|ha=%b" key options.rewrite
              options.fuse_half_adders,
            m ))
        memo
    in
    let compute_synth () =
      let optimized =
        if options.rewrite then Logic.Rewrite.rewrite_to_fixpoint specification
        else Logic.Network.cleanup specification
      in
      let mapped, _map_stats =
        Logic.Tech_map.map ~fuse_half_adders:options.fuse_half_adders optimized
      in
      (optimized, mapped)
    in
    let optimized, mapped =
      match synth_key with
      | None -> compute_synth ()
      | Some (k, m) -> (
          match Memo.find m m.Memo.synth k with
          | Some pair ->
              Memo.bump m (fun s ->
                  { s with Memo.synth_hits = s.Memo.synth_hits + 1 });
              pair
          | None ->
              let pair = compute_synth () in
              Memo.store m m.Memo.synth k pair;
              Memo.bump m (fun s ->
                  { s with Memo.synth_misses = s.Memo.synth_misses + 1 });
              pair)
    in
    (* Paranoid: re-simulate the optimized network against the source
       specification — do not trust the rewriter (nor, on a memo hit,
       the cached artifact). *)
    if paranoid then begin
      (match Verify.Resim.check_rewrite ~specification ~optimized with
      | Ok () -> pass "rewrite re-simulation"
      | Error msg ->
          fail Certification
            { no_partial with partial_optimized = Some optimized }
            msg)
    end;
    (* Test hook: inject a corruption after mapping, before the paranoid
       cross-check — lets tests prove the check (not some downstream
       accident) catches a wrong mapping.  (The memo is disabled when the
       hook is present.) *)
    let mapped =
      match corrupt_mapped with None -> mapped | Some f -> f mapped
    in
    let partial_synth =
      {
        partial_optimized = Some optimized;
        partial_mapped = Some mapped;
        partial_layout = None;
      }
    in
    (* Paranoid: re-simulate the mapped netlist against the source. *)
    if paranoid then begin
      (match Verify.Resim.check_mapping ~specification ~mapped with
      | Ok () -> pass "mapping re-simulation"
      | Error msg -> fail Certification partial_synth msg)
    end;
    let synthesis_s = now () -. t0 in
    (* Step 4: physical design, under (a share of) the budget. *)
    let t1 = now () in
    (match Budget.check budget with
    | Some r ->
        fail ~budget_reason:r Physical_design partial_synth
          (Printf.sprintf "budget exhausted before physical design (%s)"
             (Budget.reason_to_string r))
    | None -> ());
    let netlist = Physdesign.Netlist.of_mapped mapped in
    let run_scalable () =
      Physdesign.Scalable.place_and_route ?blocked netlist
    in
    (* Paranoid runs force proof-checked refutations in the exact
       engine: the minimality claim then rests on certified UNSATs. *)
    let certify_config c =
      if paranoid then { c with Physdesign.Exact.certify = true } else c
    in
    let describe_exact_failure = function
      | Physdesign.Exact.No_layout { attempts; _ } ->
          ( attempts,
            0,
            None,
            Printf.sprintf
              "proved no layout within its search bounds (%d candidate(s))"
              attempts )
      | Physdesign.Exact.Out_of_budget { reason; attempts; rounds; _ } ->
          ( attempts,
            rounds,
            Some reason,
            Printf.sprintf
              "ran out of budget (%s) after %d candidate solve(s), %d \
               escalation round(s)"
              (Budget.reason_to_string reason)
              attempts rounds )
      | Physdesign.Exact.Certification_failed { message; _ } ->
          (0, 0, None, "certification failed: " ^ message)
    in
    let record_exact (r : Physdesign.Exact.result) =
      certified := !certified + r.Physdesign.Exact.certified_refutations;
      if r.Physdesign.Exact.certified_refutations > 0 then
        pass "candidate refutation proofs"
    in
    let compute_pd () =
      match options.engine with
      | Scalable -> (
          match run_scalable () with
          | Ok r ->
              Ok
                ( r.Physdesign.Scalable.layout,
                  Used_scalable,
                  0,
                  0,
                  Sat.Solver.empty_stats )
          | Error e -> Error ("scalable physical design: " ^ e, None, 0, 0))
      | Exact config -> (
          let config = certify_config config in
          match
            Physdesign.Exact.place_and_route ~config ~budget ?blocked netlist
          with
          | Ok r ->
              record_exact r;
              Ok
                ( r.Physdesign.Exact.layout,
                  Used_exact,
                  r.Physdesign.Exact.attempts,
                  r.Physdesign.Exact.rounds,
                  r.Physdesign.Exact.stats )
          | Error f ->
              let attempts, rounds, reason, why = describe_exact_failure f in
              Error
                ("exact physical design " ^ why, reason, attempts, rounds))
      | Exact_with_fallback config -> (
          let config = certify_config config in
          let exact_budget =
            if budget.Budget.deadline = None then budget
            else Budget.fraction 0.7 budget
          in
          match
            Physdesign.Exact.place_and_route ~config ~budget:exact_budget
              ?blocked netlist
          with
          | Ok r ->
              record_exact r;
              Ok
                ( r.Physdesign.Exact.layout,
                  Used_exact,
                  r.Physdesign.Exact.attempts,
                  r.Physdesign.Exact.rounds,
                  r.Physdesign.Exact.stats )
          | Error (Physdesign.Exact.Certification_failed _ as f) ->
              (* A rejected proof means the solver cannot be trusted on
                 this run — falling back would hide that, so abort. *)
              let attempts, rounds, reason, why = describe_exact_failure f in
              Error
                ("exact physical design " ^ why, reason, attempts, rounds)
          | Error f -> (
              let attempts, rounds, reason, why = describe_exact_failure f in
              degrade
                (Printf.sprintf
                   "physical design: exact engine %s; degraded to the \
                    scalable engine"
                   why);
              match run_scalable () with
              | Ok r ->
                  Ok
                    ( r.Physdesign.Scalable.layout,
                      Used_scalable,
                      attempts,
                      rounds,
                      Sat.Solver.empty_stats )
              | Error e ->
                  Error
                    ( "scalable fallback after exact engine also failed: " ^ e,
                      reason,
                      attempts,
                      rounds )))
    in
    (* Placement memo: only clean, defect-free, non-paranoid runs.  A
       result produced after a budget-driven degradation is not stored —
       it reflects this run's budget history, not the engine's answer,
       and a later, better-funded request must not inherit it. *)
    let pd_key =
      match synth_key with
      | Some (k, m) when (not paranoid) && defect_map = None ->
          (* The effective portfolio width changes which engine actually
             solved the instance, so it is part of the key. *)
          Some
            ( Printf.sprintf "%s|pd=%s|pk=%d" k
                (engine_desc options.engine)
                (Sat.Portfolio.default_k ()),
              m )
      | _ -> None
    in
    let pd =
      match pd_key with
      | None -> compute_pd ()
      | Some (k, m) -> (
          match Memo.find m m.Memo.layouts k with
          | Some e ->
              Memo.bump m (fun s ->
                  { s with Memo.layout_hits = s.Memo.layout_hits + 1 });
              Ok
                ( e.Memo.me_layout,
                  e.Memo.me_engine_used,
                  e.Memo.me_attempts,
                  e.Memo.me_rounds,
                  Sat.Solver.empty_stats )
          | None ->
              Memo.bump m (fun s ->
                  { s with Memo.layout_misses = s.Memo.layout_misses + 1 });
              let degr_before = List.length !degradations in
              let r = compute_pd () in
              (match r with
              | Ok (layout, engine_used, attempts, rounds, _)
                when List.length !degradations = degr_before ->
                  Memo.store m m.Memo.layouts k
                    {
                      Memo.me_layout = layout;
                      me_engine_used = engine_used;
                      me_attempts = attempts;
                      me_rounds = rounds;
                    }
              | _ -> ());
              r)
    in
    match pd with
    | Error (message, budget_reason, attempts, rounds) ->
        fail ?budget_reason Physical_design partial_synth
          ~diagnostics:(Some (diag ~attempts ~rounds ()))
          message
    | Ok (gate_layout, engine_used, attempts, rounds, stats) ->
        let physical_design_s = now () -. t1 in
        let partial_pd =
          { partial_synth with partial_layout = Some gate_layout }
        in
        let full_diag () = Some (diag ~engine_used ~attempts ~rounds ~stats ()) in
        (* Post-route DRC: the quick check normally, the whole-layout
           audit in paranoid mode — where any violation is fatal. *)
        let drc_violations =
          if paranoid then Layout.Design_rules.audit gate_layout
          else Layout.Design_rules.check gate_layout
        in
        if paranoid then begin
          match drc_violations with
          | [] -> pass "post-route DRC audit"
          | v :: _ ->
              fail Design_rule_check partial_pd
                ~diagnostics:(full_diag ())
                (Printf.sprintf "%d violation(s), first: %s"
                   (List.length drc_violations)
                   (Format.asprintf "%a" Layout.Design_rules.pp_violation v))
        end;
        (* Paranoid + defect map: do not trust the engines' blocked-tile
           avoidance — re-check that no placed tile sits on a tile the
           surface blocks. *)
        (match surface with
        | None -> ()
        | Some s when paranoid ->
            let bad = ref [] in
            Layout.Gate_layout.iter gate_layout (fun c tile ->
                if
                  (not (Layout.Tile.is_empty tile))
                  && Bestagon.Surface.blocked s c
                then bad := c :: !bad);
            (match !bad with
            | [] -> pass "defect avoidance"
            | c :: _ ->
                fail Design_rule_check partial_pd ~diagnostics:(full_diag ())
                  (Printf.sprintf
                     "%d tile(s) placed on defect-blocked coordinates, first: \
                      (%d,%d)"
                     (List.length !bad) c.Hexlib.Coord.col c.Hexlib.Coord.row))
        | Some _ -> ());
        (* Step 5: formal verification under the grace budget: even when
           physical design spent the deadline, the layout is still
           checked (conflict-capped, cancellation honored).  Paranoid
           runs always verify, with certificates, and replay every
           certificate through the independent checker. *)
        let t2 = now () in
        let verify_budget = Budget.verification_grace budget in
        let equivalence, certificate =
          if paranoid then begin
            match
              Verify.Equivalence.check_layout_certified ~budget:verify_budget
                specification gate_layout
            with
            | Error msg ->
                fail Verification partial_pd ~diagnostics:(full_diag ())
                  ("extraction: " ^ msg)
            | Ok (verdict, cert) -> (
                (match cert with
                | None -> ()
                | Some c -> (
                    match Verify.Equivalence.replay c with
                    | Ok () -> pass "equivalence certificate replay"
                    | Error msg ->
                        fail Certification partial_pd
                          ~diagnostics:(full_diag ())
                          ("certificate replay rejected: " ^ msg)));
                match verdict with
                | Verify.Equivalence.Equivalent -> (Some verdict, cert)
                | Verify.Equivalence.Undecided r ->
                    degrade
                      (Printf.sprintf
                         "verification: miter solve undecided (%s)"
                         (Budget.reason_to_string r));
                    (Some verdict, cert)
                | Verify.Equivalence.Counterexample _ ->
                    fail Verification partial_pd ~diagnostics:(full_diag ())
                      (Verify.Equivalence.verdict_to_string verdict)
                | Verify.Equivalence.Interface_mismatch _ ->
                    fail Verification partial_pd ~diagnostics:(full_diag ())
                      (Verify.Equivalence.verdict_to_string verdict))
          end
          else if options.check_equivalence then begin
            (* Verdict memo: keyed like the placement (same layout ⇒
               same miter).  Undecided verdicts are never stored — they
               describe a budget, not the design. *)
            let vkey =
              Option.map
                (fun (k, m) -> (Printf.sprintf "%s|eq" k, m))
                pd_key
            in
            match
              Option.bind vkey (fun (k, m) ->
                  match Memo.find m m.Memo.verdicts k with
                  | Some v ->
                      Memo.bump m (fun s ->
                          { s with Memo.verdict_hits = s.Memo.verdict_hits + 1 });
                      Some v
                  | None ->
                      Memo.bump m (fun s ->
                          {
                            s with
                            Memo.verdict_misses = s.Memo.verdict_misses + 1;
                          });
                      None)
            with
            | Some verdict -> (Some verdict, None)
            | None -> (
                match
                  Verify.Equivalence.check_layout ~budget:verify_budget
                    specification gate_layout
                with
                | Ok (Verify.Equivalence.Undecided r as verdict) ->
                    degrade
                      (Printf.sprintf
                         "verification: miter solve undecided (%s)"
                         (Budget.reason_to_string r));
                    (Some verdict, None)
                | Ok verdict ->
                    (match vkey with
                    | Some (k, m) -> Memo.store m m.Memo.verdicts k verdict
                    | None -> ());
                    (Some verdict, None)
                | Error msg ->
                    ( Some
                        (Verify.Equivalence.Interface_mismatch
                           ("extraction: " ^ msg)),
                      None ))
          end
          else (None, None)
        in
        let verification_s = now () -. t2 in
        (* Step 6: super-tile formation. *)
        let supertiled =
          if options.expand_supertiles then Layout.Supertile.expand gate_layout
          else gate_layout
        in
        if paranoid && options.expand_supertiles then begin
          match Layout.Design_rules.audit supertiled with
          | [] -> pass "super-tiled DRC audit"
          | v :: rest ->
              fail Design_rule_check partial_pd ~diagnostics:(full_diag ())
                (Printf.sprintf "super-tiled layout: %d violation(s), first: %s"
                   (List.length (v :: rest))
                   (Format.asprintf "%a" Layout.Design_rules.pp_violation v))
        end;
        (* Step 7: Bestagon library application. *)
        let t3 = now () in
        let sidb =
          if options.apply_library then
            match Bestagon.Library.apply supertiled with
            | Ok l -> Some l
            | Error e ->
                if paranoid then
                  fail Library_application partial_pd
                    ~diagnostics:(full_diag ()) e
                else None
          else None
        in
        (* Paranoid: whole-layout dangling-bond spacing check on the
           final dot placement. *)
        if paranoid then begin
          match sidb with
          | None -> ()
          | Some l -> (
              match
                Bestagon.Geometry.spacing_violations l.Bestagon.Library.sites
              with
              | [] -> pass "DB spacing"
              | (a, b, d) :: rest ->
                  fail Design_rule_check partial_pd
                    ~diagnostics:(full_diag ())
                    (Printf.sprintf
                       "%d dangling-bond pair(s) closer than %.2f A; first: \
                        (%d,%d,%d)-(%d,%d,%d) at %.2f A"
                       (List.length ((a, b, d) :: rest))
                       Bestagon.Geometry.min_db_spacing a.Sidb.Lattice.n
                       a.Sidb.Lattice.m a.Sidb.Lattice.l b.Sidb.Lattice.n
                       b.Sidb.Lattice.m b.Sidb.Lattice.l d))
        end;
        let library_s = now () -. t3 in
        Ok
          {
            specification;
            optimized;
            mapped;
            gate_layout;
            supertiled;
            drc_violations;
            equivalence;
            certificate;
            sidb;
            checks = List.rev !checks;
            timing =
              { synthesis_s; physical_design_s; verification_s; library_s };
            diagnostics = diag ~engine_used ~attempts ~rounds ~stats ();
          }
  with Fail f -> Error f

let parse_failure message =
  {
    failed_step = Parsing;
    message;
    budget_reason = None;
    partial = no_partial;
    diagnostics = empty_diagnostics;
  }

let run_verilog ?options ?paranoid ?defect_map ?memo ?budget source =
  match Logic.Verilog.parse source with
  | exception Logic.Verilog.Parse_error msg ->
      Error (parse_failure ("parse: " ^ msg))
  | network -> run ?options ?paranoid ?defect_map ?memo ?budget network

let run_benchmark ?options ?paranoid ?defect_map ?memo ?budget name =
  match Logic.Benchmarks.find name with
  | exception Not_found ->
      Error (parse_failure (Printf.sprintf "unknown benchmark %S" name))
  | b ->
      run ?options ?paranoid ?defect_map ?memo ?budget
        (b.Logic.Benchmarks.build ())

(* --- whole-layout simulation ------------------------------------------- *)

type layout_sim = {
  sim_engine : string;
  sim_exact : bool;
  sim_sites : int;
  sim_tiles : int;
  sim_energy : float;
  sim_degeneracy : int;
  sim_valid : bool;
  sim_spectrum_states : int;
  sim_critical_temperature_k : float;
  sim_duplicates_dropped : int;
  sim_seconds : float;
}

(* Beyond this the exact engines are hopeless on layout-shaped systems
   (exhaustive hard-refuses at 24 sites anyway, and the branching
   engines' worst case is exponential).  Auto engine selection switches
   to quicksim here; an exact engine requested explicitly gets a
   structured refusal instead of an unbounded search. *)
let exact_site_limit = 40

let simulate_layout ?engine ?(inputs = []) ?clock_bias ?confidence ?t_max
    result =
  match
    Bestagon.Assembly.assemble ~inputs ?clock_bias result.supertiled
  with
  | Error e -> Error e
  | Ok asm -> (
      let n = asm.Bestagon.Assembly.site_count in
      let engine =
        match engine with
        | Some e -> e
        | None -> (
            match Sidb.Bdl.configured_engine () with
            | Some e -> e
            | None ->
                if n <= exact_site_limit then Sidb.Bdl.Pruned
                else Sidb.Bdl.Quicksim Sidb.Ground_state.default_quicksim)
      in
      let exact = Sidb.Bdl.engine_exact engine in
      if exact && n > exact_site_limit then
        Error
          (Printf.sprintf
             "engine %s refused: %d sites exceed the %d-site exact-engine \
              limit (use --engine quicksim)"
             (Sidb.Bdl.engine_name engine) n exact_site_limit)
      else
        let sys = asm.Bestagon.Assembly.system in
        let t0 = Unix.gettimeofday () in
        match
          match engine with
          | Sidb.Bdl.Quicksim config ->
              (* One sample pool serves both the ground state and the
                 finite-temperature spectrum. *)
              let spectrum = Sidb.Ground_state.quicksim_spectrum ~config sys in
              let e0 =
                match spectrum with (_, e) :: _ -> e | [] -> infinity
              in
              let states =
                List.filter_map
                  (fun (occ, e) ->
                    if
                      Float.abs (e -. e0) <= 1e-9
                      && Sidb.Charge_system.physically_valid sys occ
                    then Some occ
                    else None)
                  spectrum
              in
              ({ Sidb.Ground_state.energy = e0; states }, spectrum)
          | e ->
              let gs = Sidb.Bdl.solve e sys in
              let spectrum =
                Sidb.Ground_state.spectrum ~max_states:4096
                  ~window:Sidb.Temperature.default_window sys
              in
              (gs, spectrum)
        with
        | exception Invalid_argument msg ->
            Error
              (Printf.sprintf "engine %s refused the %d-site system: %s"
                 (Sidb.Bdl.engine_name engine) n msg)
        | gs, spectrum ->
            let elapsed = Unix.gettimeofday () -. t0 in
            let valid =
              gs.Sidb.Ground_state.states <> []
              && List.for_all
                   (Sidb.Charge_system.physically_valid sys)
                   gs.Sidb.Ground_state.states
            in
            Ok
              {
                sim_engine = Sidb.Bdl.engine_name engine;
                sim_exact = exact;
                sim_sites = n;
                sim_tiles = asm.Bestagon.Assembly.tile_count;
                sim_energy = gs.Sidb.Ground_state.energy;
                sim_degeneracy = List.length gs.Sidb.Ground_state.states;
                sim_valid = valid;
                sim_spectrum_states = List.length spectrum;
                sim_critical_temperature_k =
                  Sidb.Temperature.critical_temperature_of_spectrum ?confidence
                    ?t_max spectrum;
                sim_duplicates_dropped =
                  asm.Bestagon.Assembly.duplicates_dropped;
                sim_seconds = elapsed;
              })

type layout_domain = {
  dom_engine : string;
  dom_exact : bool;
  dom_sites : int;
  dom_tiles : int;
  dom_inputs : int;
  dom_outputs : int;
  dom_domain : Sidb.Operational_domain.t;
  dom_seconds : float;
}

(* 2^arity ground-state solves per evaluated grid point: beyond this the
   truth table itself is the bottleneck, independent of engine. *)
let domain_input_limit = 8

(* The (μ₋, ε_r) plane at the paper's λ_TF = 5 nm: the library's domains
   are razor-thin bands in λ_TF (a sparse λ sweep that misses 5.0 exactly
   reads empty), whereas this slice holds a genuine connected 2-D region
   — a diagonal band where a deeper μ₋ compensates a weaker-screening
   ε_r.  The wide window keeps that region a minority of the grid, which
   is what makes flood-fill/contour worthwhile. *)
let default_domain_x_axis =
  {
    Sidb.Operational_domain.parameter = Sidb.Operational_domain.Mu_minus;
    from_value = -1.2;
    to_value = 0.0;
    steps = 8;
  }

let default_domain_y_axis =
  {
    Sidb.Operational_domain.parameter = Sidb.Operational_domain.Epsilon_r;
    from_value = 1.0;
    to_value = 14.0;
    steps = 8;
  }

(* Reorder the layout's pads to the specification network's PI/PO order
   so the network itself is the truth-table oracle. *)
let permute_to_network names items ~count ~name_of ~what =
  let arr = Array.of_list items in
  let names = Array.of_list names in
  if Array.length arr <> count then
    Error
      (Printf.sprintf "layout has %d %ss but the specification has %d"
         (Array.length arr) what count)
  else
    let rec build i acc =
      if i = count then Ok (Array.of_list (List.rev acc))
      else
        let wanted = name_of i in
        match Array.find_index (fun n -> n = wanted) names with
        | Some j -> build (i + 1) (arr.(j) :: acc)
        | None ->
            Error
              (Printf.sprintf "specification %s %s has no pad in the layout"
                 what wanted)
    in
    build 0 []

let domain_of_layout ?engine ?jobs ?config
    ?(x_axis = default_domain_x_axis) ?(y_axis = default_domain_y_axis) result
    =
  match
    Bestagon.Assembly.structure_of_layout result.supertiled
  with
  | Error e -> Error e
  | Ok ls -> (
      let spec_net = result.specification in
      let npis = Logic.Network.num_pis spec_net
      and npos = Logic.Network.num_pos spec_net in
      let inputs =
        permute_to_network ls.Bestagon.Assembly.pi_names
          (Array.to_list ls.Bestagon.Assembly.structure.Sidb.Bdl.inputs)
          ~count:npis
          ~name_of:(Logic.Network.pi_name spec_net)
          ~what:"input"
      in
      let outputs =
        permute_to_network ls.Bestagon.Assembly.po_names
          (Array.to_list ls.Bestagon.Assembly.structure.Sidb.Bdl.outputs)
          ~count:npos
          ~name_of:(Logic.Network.po_name spec_net)
          ~what:"output"
      in
      match (inputs, outputs) with
      | Error e, _ | _, Error e -> Error e
      | Ok inputs, Ok outputs ->
          if npis > domain_input_limit then
            Error
              (Printf.sprintf
                 "operational domain refused: %d inputs mean %d truth-table \
                  rows per grid point (limit %d)"
                 npis (1 lsl npis) domain_input_limit)
          else
            let structure =
              {
                ls.Bestagon.Assembly.structure with
                Sidb.Bdl.inputs;
                Sidb.Bdl.outputs;
              }
            in
            (* Worst-case row system: every input at its larger driver. *)
            let n =
              List.length structure.Sidb.Bdl.fixed
              + Array.fold_left
                  (fun acc (d : Sidb.Bdl.input_driver) ->
                    acc
                    + max (List.length d.Sidb.Bdl.near)
                        (List.length d.Sidb.Bdl.far))
                  0 inputs
            in
            let engine =
              match engine with
              | Some e -> e
              | None -> (
                  match Sidb.Bdl.configured_engine () with
                  | Some e -> e
                  | None ->
                      if n <= exact_site_limit then Sidb.Bdl.Pruned
                      else Sidb.Bdl.Quicksim Sidb.Ground_state.default_quicksim)
            in
            let exact = Sidb.Bdl.engine_exact engine in
            if exact && n > exact_site_limit then
              Error
                (Printf.sprintf
                   "engine %s refused: %d sites exceed the %d-site \
                    exact-engine limit (use --engine quicksim)"
                   (Sidb.Bdl.engine_name engine) n exact_site_limit)
            else begin
              let spec a = Logic.Network.eval spec_net a in
              let t0 = Unix.gettimeofday () in
              match
                Sidb.Operational_domain.sweep ?jobs ~engine ?config ~x_axis
                  ~y_axis structure ~spec
              with
              | exception Invalid_argument msg ->
                  Error
                    (Printf.sprintf "engine %s refused the %d-site system: %s"
                       (Sidb.Bdl.engine_name engine) n msg)
              | domain ->
                  Ok
                    {
                      dom_engine = Sidb.Bdl.engine_name engine;
                      dom_exact = exact;
                      dom_sites = n;
                      dom_tiles = ls.Bestagon.Assembly.struct_tile_count;
                      dom_inputs = npis;
                      dom_outputs = npos;
                      dom_domain = domain;
                      dom_seconds = Unix.gettimeofday () -. t0;
                    }
            end)

let export_sqd result ?(inputs = []) ~path () =
  match Bestagon.Library.apply ~inputs result.supertiled with
  | Error e -> Error e
  | Ok l ->
      Bestagon.Sqd.write_file ~path l.Bestagon.Library.sites;
      Ok ()

let pp_summary ppf r =
  let stats = Layout.Gate_layout.stats r.gate_layout in
  Format.fprintf ppf "spec: %a@." Logic.Network.pp_stats r.specification;
  Format.fprintf ppf "optimized: %a@." Logic.Network.pp_stats r.optimized;
  Format.fprintf ppf "mapped: %a@." Logic.Mapped.pp_stats r.mapped;
  Format.fprintf ppf "layout: %dx%d = %d tiles (%d gates, %d wires, %d crossings, %d fan-outs)@."
    stats.Layout.Gate_layout.bounding_width
    stats.Layout.Gate_layout.bounding_height
    stats.Layout.Gate_layout.area_tiles stats.Layout.Gate_layout.gate_tiles
    stats.Layout.Gate_layout.wire_tiles
    stats.Layout.Gate_layout.crossing_tiles
    stats.Layout.Gate_layout.fanout_tiles;
  (match r.diagnostics.engine_used with
  | Some e ->
      Format.fprintf ppf "engine: %s (%d candidate solve(s), %d round(s); %a)@."
        (engine_used_to_string e) r.diagnostics.exact_attempts
        r.diagnostics.exact_rounds Sat.Solver.pp_stats
        r.diagnostics.solver_stats
  | None -> ());
  List.iter
    (fun d -> Format.fprintf ppf "degradation: %s@." d)
    r.diagnostics.degradations;
  (match r.checks with
  | [] -> ()
  | checks ->
      Format.fprintf ppf "checks passed: %s@." (String.concat ", " checks));
  if r.diagnostics.certified_refutations > 0 then
    Format.fprintf ppf "certified refutations: %d@."
      r.diagnostics.certified_refutations;
  Format.fprintf ppf "drc: %d violation(s)@." (List.length r.drc_violations);
  (match r.equivalence with
  | None -> ()
  | Some (Verify.Equivalence.Counterexample _ as v) ->
      Format.fprintf ppf "verification: COUNTEREXAMPLE — %s@."
        (Verify.Equivalence.verdict_to_string v)
  | Some v ->
      Format.fprintf ppf "verification: %s@."
        (Verify.Equivalence.verdict_to_string v));
  (match r.certificate with
  | None -> ()
  | Some c ->
      Format.fprintf ppf "certificate: %s@."
        (match c.Verify.Equivalence.evidence with
        | Verify.Equivalence.Unsat_proof p ->
            Printf.sprintf "miter UNSAT proof, %d step(s), replayed OK"
              (Sat.Drat.num_steps p)
        | Verify.Equivalence.Sat_model _ -> "miter model"));
  (match r.sidb with
  | None -> ()
  | Some l ->
      Format.fprintf ppf "sidb: %d dots, %.2f nm^2%s@."
        l.Bestagon.Library.sidb_count l.Bestagon.Library.area_nm2
        (if l.Bestagon.Library.all_validated then ""
         else " (some tiles unvalidated)"));
  Format.fprintf ppf
    "time: synth %.3fs, physical %.3fs, verify %.3fs, library %.3fs@."
    r.timing.synthesis_s r.timing.physical_design_s r.timing.verification_s
    r.timing.library_s
