module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  (* splitmix64 (Steele, Lea & Flood): one 64-bit mix per draw, no
     state beyond one word, and trivially splittable — exactly what a
     reproducible fuzzer wants. *)
  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prop.Rng.int: bound <= 0";
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let bool t = Int64.logand (next t) 1L = 1L
  let split t = { state = next t }
end

type 'a arbitrary = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a list;
  pp : Format.formatter -> 'a -> unit;
}

type 'a counterexample = {
  original : 'a;
  shrunk : 'a;
  iteration : int;
  shrink_steps : int;
  reason : string;
}

type 'a outcome = Passed of int | Failed of 'a counterexample

let run_property prop x =
  match prop x with
  | r -> r
  | exception e -> Error ("exception: " ^ Printexc.to_string e)

let check ~seed ~iterations arb prop =
  let rng = Rng.create seed in
  let rec iterate i =
    if i >= iterations then Passed iterations
    else
      let x = arb.gen (Rng.split rng) in
      match run_property prop x with
      | Ok () -> iterate (i + 1)
      | Error reason ->
          (* Greedy shrink: move to the first smaller candidate that
             still fails, repeat until all candidates pass. *)
          let rec minimize x reason steps =
            let failing =
              List.find_map
                (fun c ->
                  match run_property prop c with
                  | Ok () -> None
                  | Error r -> Some (c, r))
                (arb.shrink x)
            in
            match failing with
            | None -> (x, reason, steps)
            | Some (c, r) -> minimize c r (steps + 1)
          in
          let shrunk, reason, shrink_steps = minimize x reason 0 in
          Failed { original = x; shrunk; iteration = i; shrink_steps; reason }
  in
  iterate 0

let pp_outcome ~pp ~name ppf = function
  | Passed n -> Format.fprintf ppf "%s: passed %d iteration(s)@." name n
  | Failed c ->
      Format.fprintf ppf
        "%s: FAILED at iteration %d (%d shrink step(s))@.reason: %s@.%a@."
        name c.iteration c.shrink_steps c.reason pp c.shrunk

(* Removing the [i]-th element, for every [i]. *)
let drop_each xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

(* {2 Random CNF} *)

type cnf = { nvars : int; clauses : int list list }

let gen_cnf rng =
  let nvars = 1 + Rng.int rng 8 in
  let nclauses = 1 + Rng.int rng 24 in
  let clause () =
    List.init
      (1 + Rng.int rng 4)
      (fun _ ->
        let v = 1 + Rng.int rng nvars in
        if Rng.bool rng then v else -v)
  in
  { nvars; clauses = List.init nclauses (fun _ -> clause ()) }

let shrink_cnf f =
  let fewer_clauses =
    List.map (fun clauses -> { f with clauses }) (drop_each f.clauses)
  in
  let shorter_clauses =
    List.concat
      (List.mapi
         (fun i c ->
           if List.length c <= 1 then []
           else
             List.map
               (fun c' ->
                 {
                   f with
                   clauses = List.mapi (fun j c0 -> if j = i then c' else c0) f.clauses;
                 })
               (drop_each c))
         f.clauses)
  in
  fewer_clauses @ shorter_clauses

let pp_cnf ppf f =
  Format.fprintf ppf "p cnf %d %d@." f.nvars (List.length f.clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf ppf "%d " l) c;
      Format.fprintf ppf "0@.")
    f.clauses

let cnf = { gen = gen_cnf; shrink = shrink_cnf; pp = pp_cnf }

let brute_force_sat f =
  let n = f.nvars in
  let sat_under m =
    List.for_all
      (fun c ->
        List.exists
          (fun l ->
            let v = abs l - 1 in
            let value = (m lsr v) land 1 = 1 in
            if l > 0 then value else not value)
          c)
      f.clauses
  in
  let rec try_m m = m < 1 lsl n && (sat_under m || try_m (m + 1)) in
  try_m 0

(* {2 Random XAG recipes} *)

type xag_gate = { op_is_xor : bool; a : int; b : int; na : bool; nb : bool }

type xag_recipe = {
  xag_inputs : int;
  xag_gates : xag_gate list;
  out_negate : bool;
}

let gen_xag rng =
  let xag_inputs = 1 + Rng.int rng 5 in
  let ngates = 1 + Rng.int rng 12 in
  let gate () =
    {
      op_is_xor = Rng.bool rng;
      a = Rng.int rng 64;
      b = Rng.int rng 64;
      na = Rng.bool rng;
      nb = Rng.bool rng;
    }
  in
  { xag_inputs; xag_gates = List.init ngates (fun _ -> gate ()); out_negate = Rng.bool rng }

let shrink_xag r =
  let fewer =
    if List.length r.xag_gates <= 1 then []
    else List.map (fun g -> { r with xag_gates = g }) (drop_each r.xag_gates)
  in
  let plain g = { g with na = false; nb = false } in
  let uncomplemented =
    if
      r.out_negate
      || List.exists (fun g -> g.na || g.nb) r.xag_gates
    then
      [
        {
          r with
          xag_gates = List.map plain r.xag_gates;
          out_negate = false;
        };
      ]
    else []
  in
  fewer @ uncomplemented

let pp_xag ppf r =
  Format.fprintf ppf "xag: %d input(s), out_negate=%b@." r.xag_inputs
    r.out_negate;
  List.iter
    (fun g ->
      Format.fprintf ppf "  %s %s%d %s%d@."
        (if g.op_is_xor then "xor" else "and")
        (if g.na then "!" else "")
        g.a
        (if g.nb then "!" else "")
        g.b)
    r.xag_gates

let xag = { gen = gen_xag; shrink = shrink_xag; pp = pp_xag }

let build_xag r =
  let n = Logic.Network.create () in
  let slots =
    ref
      (List.rev
         (List.init r.xag_inputs (fun i ->
              Logic.Network.pi n (Printf.sprintf "x%d" i))))
  in
  (* [slots] is most-recent-first; operand indices address it mod its
     length, so dropping a gate during shrinking re-targets later
     references instead of invalidating them. *)
  let resolve i = List.nth !slots (i mod List.length !slots) in
  List.iter
    (fun g ->
      let a = resolve g.a and b = resolve g.b in
      let a = if g.na then Logic.Network.not_ a else a in
      let b = if g.nb then Logic.Network.not_ b else b in
      let s =
        if g.op_is_xor then Logic.Network.xor_ n a b
        else Logic.Network.and_ n a b
      in
      slots := s :: !slots)
    r.xag_gates;
  let out = List.hd !slots in
  let out = if r.out_negate then Logic.Network.not_ out else out in
  Logic.Network.po n "f0" out;
  if List.length r.xag_gates >= 2 then
    Logic.Network.po n "f1"
      (List.nth !slots (List.length r.xag_gates / 2));
  n

(* {2 Random defect-injection parameters} *)

let gen_defect_params rng =
  {
    Sidb.Defects.missing = Rng.int rng 3;
    extra = Rng.int rng 3;
    charged = Rng.int rng 2;
    trials = 1 + Rng.int rng 4;
    seed = Rng.int rng 10_000;
  }

let shrink_defect_params (p : Sidb.Defects.params) =
  let open Sidb.Defects in
  List.filter_map
    (fun q -> if q = p then None else Some q)
    [
      { p with missing = 0 };
      { p with extra = 0 };
      { p with charged = 0 };
      { p with trials = 1 };
      { p with seed = 0 };
    ]

let pp_defect_params ppf (p : Sidb.Defects.params) =
  Format.fprintf ppf
    "defects: missing=%d extra=%d charged=%d trials=%d seed=%d"
    p.Sidb.Defects.missing p.Sidb.Defects.extra p.Sidb.Defects.charged
    p.Sidb.Defects.trials p.Sidb.Defects.seed

let defect_params =
  {
    gen = gen_defect_params;
    shrink = shrink_defect_params;
    pp = pp_defect_params;
  }
