(** Hand-rolled property-based testing for the fuzz harness.

    A deliberately small qcheck-alike with the three ingredients the
    fuzzer needs and nothing else: a splittable deterministic PRNG
    (splitmix64 — fixed seeds give identical runs on every platform), a
    generator + shrinker + printer bundle ({!arbitrary}), and a driver
    ({!check}) that greedily shrinks the first failing input before
    reporting it.

    Domain generators live here too so both the fuzz executable and the
    unit tests can reach them: random CNF formulas, random XAG build
    recipes, and random defect-injection parameter sets. *)

(** Deterministic splitmix64 PRNG. *)
module Rng : sig
  type t

  val create : int -> t
  (** Seeded stream; equal seeds give equal streams. *)

  val int : t -> int -> int
  (** [int t bound] is uniform in [\[0, bound)].
      @raise Invalid_argument when [bound <= 0]. *)

  val bool : t -> bool

  val split : t -> t
  (** An independent stream derived from (and advancing) [t]. *)
end

type 'a arbitrary = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a list;
      (** Strictly-smaller candidates to try when ['a] fails a property;
          [[]] stops shrinking.  Candidates are tried in order. *)
  pp : Format.formatter -> 'a -> unit;
}

type 'a counterexample = {
  original : 'a;  (** The input as generated. *)
  shrunk : 'a;  (** After greedy shrinking (== [original] if none). *)
  iteration : int;  (** 0-based iteration that failed. *)
  shrink_steps : int;
  reason : string;  (** Property's message for the {e shrunk} input. *)
}

type 'a outcome = Passed of int | Failed of 'a counterexample

val check :
  seed:int ->
  iterations:int ->
  'a arbitrary ->
  ('a -> (unit, string) result) ->
  'a outcome
(** Run the property on [iterations] generated inputs.  On the first
    failure, shrink greedily: repeatedly move to the first shrink
    candidate that still fails, until none does.  A property that raises
    is treated as failing with the exception text. *)

val pp_outcome :
  pp:(Format.formatter -> 'a -> unit) ->
  name:string ->
  Format.formatter ->
  'a outcome ->
  unit
(** One line for [Passed]; the shrunk counterexample for [Failed]. *)

(** {2 Domain generators} *)

type cnf = {
  nvars : int;
  clauses : int list list;  (** DIMACS literals, no zeros. *)
}

val cnf : cnf arbitrary
(** Up to 8 variables and 24 clauses of 1–4 literals — small enough to
    brute-force an oracle verdict over all assignments.  Shrinks by
    dropping clauses, then literals. *)

val brute_force_sat : cnf -> bool
(** Oracle: try all [2^nvars] assignments. *)

type xag_gate = {
  op_is_xor : bool;
  a : int;  (** Operand slot, taken modulo the slots built so far. *)
  b : int;
  na : bool;  (** Complement flags on the operands. *)
  nb : bool;
}

type xag_recipe = {
  xag_inputs : int;  (** 1–5 primary inputs. *)
  xag_gates : xag_gate list;
  out_negate : bool;  (** Complement the last primary output. *)
}

val xag : xag_recipe arbitrary
(** Random XAG build recipes.  Shrinks by dropping gates and clearing
    complement flags. *)

val build_xag : xag_recipe -> Logic.Network.t
(** Materialize a recipe: PIs [x0..], gate slots referenced modulo the
    prefix built so far, POs [f0] (last slot) and [f1] (middle slot,
    when at least two gates exist). *)

val defect_params : Sidb.Defects.params arbitrary
(** Small defect-injection parameter sets (0–2 defects of each kind,
    1–4 trials).  Shrinks every count toward zero. *)
