(** Flow-level re-export of {!Sat.Budget}.

    The flow threads one budget through every expensive step (exact
    physical design, equivalence checking); each step receives a share
    via {!fraction} or a derived grace budget.  See {!Flow.run}. *)

type reason = Sat.Budget.reason =
  | Deadline
  | Conflicts
  | Cancelled

type t = Sat.Budget.t = {
  deadline : float option;
  conflicts : int option;
  cancelled : unit -> bool;
}

val unlimited : t
val of_seconds : ?conflicts:int -> ?cancelled:(unit -> bool) -> float -> t
val of_conflicts : int -> t
val with_conflicts : int option -> t -> t
val without_deadline : t -> t
val is_unlimited : t -> bool
val remaining_s : t -> float option
val remaining : t -> float option
val expired : t -> bool
val check : t -> reason option
val fraction : float -> t -> t
val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit

val verification_grace_conflicts : int
(** Conflict allowance of the verification grace budget (200k). *)

val verification_grace : t -> t
(** The budget verification runs under even when the deadline is already
    spent: no deadline, a fixed conflict allowance, cancellation
    preserved.  Rationale: a layout the flow worked hard for should not
    go unverified because physical design consumed the wall clock —
    equivalence checks on flow-sized miters are cheap, and the conflict
    cap still bounds the worst case. *)
