type stats = {
  candidates : int;
  replaced : int;
  size_before : int;
  size_after : int;
}

(* Gates in the cone of [cut] that belong to the maximum fanout-free cone
   of [root]: these are exactly the gates that disappear when the root is
   re-expressed over the cut leaves.  [visited] is a stamp array shared
   across all calls of one rewriting pass — this runs once per cut per
   gate, and allocating a fresh hashtable each time dominated the
   selection loop. *)
let mffc_in_cut ntk fanouts visited stamp root cut =
  let in_leaves id = Array.exists (( = ) id) cut.Cuts.leaves in
  let rec count id is_root =
    if visited.(id) = stamp || in_leaves id then 0
    else if (not is_root) && fanouts.(id) <> 1 then 0
    else begin
      visited.(id) <- stamp;
      match Network.kind ntk id with
      | Network.Const | Network.Pi _ -> 0
      | Network.And (a, b) | Network.Xor (a, b) ->
          1
          + count (Network.node_of_signal a) false
          + count (Network.node_of_signal b) false
    end
  in
  count root true

let rewrite ?k ?max_cuts ?cut_config ?db ntk =
  let db = match db with Some db -> db | None -> Npn_db.create () in
  let size_before = Network.num_gates ntk in
  let cuts = Cuts.enumerate ?config:cut_config ?k ?max_cuts ntk in
  let fanouts = Network.fanout_counts ntk in
  let visited = Array.make (max 1 (Network.num_nodes ntk)) 0 in
  let stamp = ref 0 in
  let fresh = Network.create () in
  let pi_map = Array.make (max 1 (Network.num_pis ntk)) Network.const0 in
  for i = 0 to Network.num_pis ntk - 1 do
    pi_map.(i) <- Network.pi fresh (Network.pi_name ntk i)
  done;
  let node_map = Array.make (Network.num_nodes ntk) Network.const0 in
  let map_signal s =
    let m = node_map.(Network.node_of_signal s) in
    if Network.is_complemented s then Network.not_ m else m
  in
  let candidates = ref 0 and replaced = ref 0 in
  for id = 0 to Network.num_nodes ntk - 1 do
    match Network.kind ntk id with
    | Network.Const -> node_map.(id) <- Network.const0
    | Network.Pi i -> node_map.(id) <- pi_map.(i)
    | Network.And (a, b) | Network.Xor (a, b) ->
        (* Choose the most beneficial replacement among the cuts. *)
        let best = ref None in
        List.iter
          (fun cut ->
            let leaves = cut.Cuts.leaves in
            if Array.length leaves >= 2 && not (Array.exists (( = ) id) leaves)
            then
              match Npn_db.optimal_size db cut.Cuts.table with
              | None -> ()
              | Some opt ->
                  incr stamp;
                  let current = mffc_in_cut ntk fanouts visited !stamp id cut in
                  let gain = current - opt in
                  let better =
                    match !best with
                    | None -> gain > 0
                    | Some (g, _, _) -> gain > g
                  in
                  if better then best := Some (gain, cut, opt))
          (Cuts.cuts_of cuts id);
        let copied () =
          let fa = map_signal a and fb = map_signal b in
          match Network.kind ntk id with
          | Network.And _ -> Network.and_ fresh fa fb
          | Network.Xor _ -> Network.xor_ fresh fa fb
          | Network.Const | Network.Pi _ -> assert false
        in
        (match !best with
        | None -> node_map.(id) <- copied ()
        | Some (_, cut, _) -> (
            incr candidates;
            let leaf_signals =
              Array.map (fun l -> node_map.(l)) cut.Cuts.leaves
            in
            match
              Npn_db.instantiate db cut.Cuts.table fresh leaf_signals
            with
            | Some s ->
                incr replaced;
                node_map.(id) <- s
            | None -> node_map.(id) <- copied ()))
  done;
  List.iteri
    (fun i (name, s) ->
      ignore i;
      Network.po fresh name (map_signal s))
    (Network.pos ntk);
  let result = Network.cleanup fresh in
  ( result,
    {
      candidates = !candidates;
      replaced = !replaced;
      size_before;
      size_after = Network.num_gates result;
    } )

let rewrite_to_fixpoint ?k ?(max_rounds = 4) ?cut_config ?db ntk =
  let db = match db with Some db -> db | None -> Npn_db.create () in
  let rec go ntk round =
    if round >= max_rounds then ntk
    else
      let next, stats = rewrite ?k ?cut_config ~db ntk in
      if stats.size_after < stats.size_before then go next (round + 1)
      else ntk
  in
  go ntk 0

let pp_stats ppf s =
  Format.fprintf ppf "candidates=%d replaced=%d size=%d->%d" s.candidates
    s.replaced s.size_before s.size_after
