(** Bit-packed truth tables over a fixed number of variables.

    A truth table over [n] variables stores [2^n] bits; bit [i] is the
    function value on the input assignment whose binary encoding is [i]
    (variable 0 is the least significant input bit).  Tables over up to 6
    variables fit one 63-bit word; larger tables use several words.
    Supported up to 20 variables. *)

type t

val num_vars : t -> int
val num_bits : t -> int

val create : int -> t
(** [create n] is the constant-0 table over [n] variables.
    @raise Invalid_argument if [n < 0] or [n > 20]. *)

val const0 : int -> t
val const1 : int -> t

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] is the table over [n] variables whose bit [i] is [f i].
    One pass over the bits with in-place construction — much cheaper than
    folding {!set_bit} (which copies the table per bit). *)

val var : int -> int -> t
(** [var n i] is the projection onto variable [i] (of [n]).
    @raise Invalid_argument unless [0 <= i < n]. *)

val get_bit : t -> int -> bool
val set_bit : t -> int -> bool -> t
(** Functional update. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t
(** Bitwise operations.  @raise Invalid_argument on arity mismatch. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Structural, with a pointer fast path: on {!intern}ed handles an
    equality (or a comparison of equal tables) is O(1). *)

val hash : t -> int

val intern : t -> t
(** Hash-consing: [intern t] is the canonical handle of [t]'s value —
    [equal (intern t) t] always, and [intern a == intern b] iff
    [equal a b].  Interned handles make {!equal}/{!compare} O(1) on the
    hot paths of cut enumeration and NPN canonization.  Thread-safe. *)

val interned_count : unit -> int
(** Number of distinct tables interned so far (diagnostics). *)

val is_const0 : t -> bool
val is_const1 : t -> bool

val count_ones : t -> int

val cofactor0 : t -> int -> t
val cofactor1 : t -> int -> t
(** Shannon cofactors with respect to a variable; the result keeps the
    same arity (the variable becomes vacuous). *)

val depends_on : t -> int -> bool
(** Whether the function actually depends on variable [i]. *)

val support : t -> int list
(** Indices of all variables the function depends on, ascending. *)

val swap_vars : t -> int -> int -> t
(** Table of [f] with variables [i] and [j] exchanged. *)

val flip_var : t -> int -> t
(** Table of [f] with variable [i] complemented. *)

val permute : t -> int array -> t
(** [permute f p] renames variable [i] to [p.(i)];
    [p] must be a permutation of [0 .. n-1]. *)

val extend : t -> int -> t
(** [extend f n] reinterprets [f] over [n >= num_vars f] variables (the
    new variables are vacuous). *)

val of_bits : int -> int64 -> t
(** [of_bits n w] builds a table over [n <= 6] variables from the low
    [2^n] bits of [w]. *)

val to_bits : t -> int64
(** Inverse of [of_bits] for [n <= 6].  @raise Invalid_argument above. *)

val of_string : string -> t
(** Parse a binary string, most significant bit (highest input index)
    first, e.g. ["0110"] is XOR over 2 variables.  Length must be a power
    of two. *)

val to_string : t -> string

val of_hex : int -> string -> t
(** [of_hex n s] parses a hexadecimal string for a table over [n]
    variables (most significant nibble first). *)

val to_hex : t -> string

val eval : t -> bool array -> bool
(** Evaluate on an assignment; array length must equal the arity. *)
