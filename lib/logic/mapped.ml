type fn = And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Inv | Buf | Ha

type source = int * int

type node = Input of int * string | Gate of fn * source array

type t = {
  mutable nodes : node array;
  mutable node_count : int;
  mutable inputs : int list;  (* node ids, reversed *)
  mutable input_count : int;
  mutable outputs : (string * source) list;  (* reversed *)
  mutable output_count : int;
}

let create () =
  {
    nodes = Array.make 32 (Input (0, ""));
    node_count = 0;
    inputs = [];
    input_count = 0;
    outputs = [];
    output_count = 0;
  }

let fn_arity = function
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Ha -> 2
  | Inv | Buf -> 1

let fn_outputs = function
  | Ha -> 2
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Inv | Buf -> 1

let fn_name = function
  | And2 -> "AND"
  | Or2 -> "OR"
  | Nand2 -> "NAND"
  | Nor2 -> "NOR"
  | Xor2 -> "XOR"
  | Xnor2 -> "XNOR"
  | Inv -> "INV"
  | Buf -> "BUF"
  | Ha -> "HA"

let push_node t n =
  if t.node_count >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) (Input (0, "")) in
    Array.blit t.nodes 0 bigger 0 t.node_count;
    t.nodes <- bigger
  end;
  t.nodes.(t.node_count) <- n;
  t.node_count <- t.node_count + 1;
  t.node_count - 1

let add_input t name =
  let id = push_node t (Input (t.input_count, name)) in
  t.inputs <- id :: t.inputs;
  t.input_count <- t.input_count + 1;
  (id, 0)

let add_gate t fn fanins =
  if List.length fanins <> fn_arity fn then
    invalid_arg
      (Printf.sprintf "Mapped.add_gate: %s expects %d fanins" (fn_name fn)
         (fn_arity fn));
  List.iter
    (fun (id, port) ->
      if id < 0 || id >= t.node_count then
        invalid_arg "Mapped.add_gate: unknown fanin node";
      let max_port =
        match t.nodes.(id) with
        | Input _ -> 1
        | Gate (g, _) -> fn_outputs g
      in
      if port < 0 || port >= max_port then
        invalid_arg "Mapped.add_gate: invalid fanin port")
    fanins;
  let id = push_node t (Gate (fn, Array.of_list fanins)) in
  (id, 0)

let add_output t name src =
  t.outputs <- (name, src) :: t.outputs;
  t.output_count <- t.output_count + 1

let node t id =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Mapped.node: %d" id)
  else t.nodes.(id)

let num_nodes t = t.node_count
let num_inputs t = t.input_count
let num_outputs t = t.output_count
let num_gates t = t.node_count - t.input_count

let outputs t = List.rev t.outputs

let output t i =
  match List.nth_opt (outputs t) i with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Mapped.output: %d" i)

let input_name t i =
  let rec find = function
    | [] -> invalid_arg (Printf.sprintf "Mapped.input_name: %d" i)
    | id :: rest -> (
        match t.nodes.(id) with
        | Input (j, name) when j = i -> name
        | Input _ | Gate _ -> find rest)
  in
  find (List.rev t.inputs)

(* Node-for-node identity, not just functional equivalence: same nodes in
   the same order, same input/output lists.  This is what the synthesis
   bench asserts between the priority and exhaustive cut strategies. *)
let equal a b =
  a.node_count = b.node_count
  && a.input_count = b.input_count
  && a.output_count = b.output_count
  && a.inputs = b.inputs
  && a.outputs = b.outputs
  &&
  let rec nodes_eq id =
    id >= a.node_count || (a.nodes.(id) = b.nodes.(id) && nodes_eq (id + 1))
  in
  nodes_eq 0

let all_fns = [ And2; Or2; Nand2; Nor2; Xor2; Xnor2; Inv; Buf; Ha ]

let gate_counts t =
  let counts = Hashtbl.create 16 in
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id) with
    | Input _ -> ()
    | Gate (fn, _) ->
        Hashtbl.replace counts fn
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts fn))
  done;
  List.map (fun fn -> (fn, Option.value ~default:0 (Hashtbl.find_opt counts fn))) all_fns

let eval_fn fn args =
  match (fn, args) with
  | And2, [| a; b |] -> [| a && b |]
  | Or2, [| a; b |] -> [| a || b |]
  | Nand2, [| a; b |] -> [| not (a && b) |]
  | Nor2, [| a; b |] -> [| not (a || b) |]
  | Xor2, [| a; b |] -> [| a <> b |]
  | Xnor2, [| a; b |] -> [| a = b |]
  | Inv, [| a |] -> [| not a |]
  | Buf, [| a |] -> [| a |]
  | Ha, [| a; b |] -> [| a <> b; a && b |]
  | _ -> invalid_arg "Mapped.eval_fn: arity mismatch"

(* Generic simulation: values indexed by (node, port). *)
let simulate_generic (type a) t ~(pi_value : int -> a)
    ~(apply : fn -> a array -> a array) : source -> a =
  let values = Array.make t.node_count [||] in
  for id = 0 to t.node_count - 1 do
    values.(id) <-
      (match t.nodes.(id) with
      | Input (i, _) -> [| pi_value i |]
      | Gate (fn, fanins) ->
          apply fn
            (Array.map (fun (nid, port) -> values.(nid).(port)) fanins))
  done;
  fun (id, port) -> values.(id).(port)

let eval t assignment =
  if Array.length assignment <> t.input_count then
    invalid_arg "Mapped.eval: assignment length mismatch";
  let value =
    simulate_generic t ~pi_value:(fun i -> assignment.(i)) ~apply:eval_fn
  in
  Array.of_list (List.map (fun (_, src) -> value src) (outputs t))

let simulate t =
  let n = t.input_count in
  if n > 20 then invalid_arg "Mapped.simulate: more than 20 inputs";
  let apply fn args =
    match (fn, args) with
    | And2, [| a; b |] -> [| Truth_table.land_ a b |]
    | Or2, [| a; b |] -> [| Truth_table.lor_ a b |]
    | Nand2, [| a; b |] -> [| Truth_table.lnot (Truth_table.land_ a b) |]
    | Nor2, [| a; b |] -> [| Truth_table.lnot (Truth_table.lor_ a b) |]
    | Xor2, [| a; b |] -> [| Truth_table.lxor_ a b |]
    | Xnor2, [| a; b |] -> [| Truth_table.lnot (Truth_table.lxor_ a b) |]
    | Inv, [| a |] -> [| Truth_table.lnot a |]
    | Buf, [| a |] -> [| a |]
    | Ha, [| a; b |] -> [| Truth_table.lxor_ a b; Truth_table.land_ a b |]
    | _ -> invalid_arg "Mapped.simulate: arity mismatch"
  in
  let value =
    simulate_generic t ~pi_value:(fun i -> Truth_table.var n i) ~apply
  in
  Array.of_list (List.map (fun (_, src) -> value src) (outputs t))

let to_network t =
  let ntk = Network.create () in
  let pis = Array.make (max 1 t.input_count) Network.const0 in
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id) with
    | Input (i, name) -> pis.(i) <- Network.pi ntk name
    | Gate _ -> ()
  done;
  let values = Array.make t.node_count [||] in
  for id = 0 to t.node_count - 1 do
    values.(id) <-
      (match t.nodes.(id) with
      | Input (i, _) -> [| pis.(i) |]
      | Gate (fn, fanins) -> (
          let v (nid, port) = values.(nid).(port) in
          match (fn, fanins) with
          | And2, [| a; b |] -> [| Network.and_ ntk (v a) (v b) |]
          | Or2, [| a; b |] -> [| Network.or_ ntk (v a) (v b) |]
          | Nand2, [| a; b |] -> [| Network.nand_ ntk (v a) (v b) |]
          | Nor2, [| a; b |] -> [| Network.nor_ ntk (v a) (v b) |]
          | Xor2, [| a; b |] -> [| Network.xor_ ntk (v a) (v b) |]
          | Xnor2, [| a; b |] -> [| Network.xnor_ ntk (v a) (v b) |]
          | Inv, [| a |] -> [| Network.not_ (v a) |]
          | Buf, [| a |] -> [| v a |]
          | Ha, [| a; b |] ->
              [| Network.xor_ ntk (v a) (v b); Network.and_ ntk (v a) (v b) |]
          | _ -> assert false))
  done;
  List.iter
    (fun (name, (nid, port)) -> Network.po ntk name values.(nid).(port))
    (outputs t);
  ntk

let depth t =
  let levels = Array.make t.node_count 0 in
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id) with
    | Input _ -> levels.(id) <- 0
    | Gate (fn, fanins) ->
        let m =
          Array.fold_left (fun acc (nid, _) -> max acc levels.(nid)) 0 fanins
        in
        (* Buffers are wires on the layout; they still occupy a tile, so
           they count toward depth. *)
        ignore fn;
        levels.(id) <- m + 1
  done;
  List.fold_left
    (fun acc (_, (nid, _)) -> max acc levels.(nid))
    0 (outputs t)

let pp_stats ppf t =
  Format.fprintf ppf "i/o=%d/%d gates=%d depth=%d [%s]" t.input_count
    t.output_count (num_gates t) (depth t)
    (String.concat " "
       (List.filter_map
          (fun (fn, c) ->
            if c = 0 then None else Some (Printf.sprintf "%s:%d" (fn_name fn) c))
          (gate_counts t)))
