type transform = { perm : int array; input_flips : int; output_flip : bool }

(* Permutation lists are memoized per arity: canonization used to rebuild
   the full list on every call, which dominated the cost of cache misses
   at small arities. *)
let permutations_memo : (int, int array list) Hashtbl.t = Hashtbl.create 8

let permutations n =
  match Hashtbl.find_opt permutations_memo n with
  | Some ps -> ps
  | None ->
      let rec insert_everywhere x = function
        | [] -> [ [ x ] ]
        | y :: rest ->
            (x :: y :: rest)
            :: List.map (fun l -> y :: l) (insert_everywhere x rest)
      in
      let rec perms = function
        | [] -> [ [] ]
        | x :: rest -> List.concat_map (insert_everywhere x) (perms rest)
      in
      let ps = List.map Array.of_list (perms (List.init n (fun i -> i))) in
      Hashtbl.replace permutations_memo n ps;
      ps

let apply_input_flips f mask =
  let n = Truth_table.num_vars f in
  let r = ref f in
  for i = 0 to n - 1 do
    if (mask lsr i) land 1 = 1 then r := Truth_table.flip_var !r i
  done;
  !r

let apply_transform f t =
  let flipped = apply_input_flips f t.input_flips in
  let permuted = Truth_table.permute flipped t.perm in
  if t.output_flip then Truth_table.lnot permuted else permuted

(* Unpruned exhaustive minimization over all n! * 2^n * 2 transforms.
   Kept as the reference implementation: the pruned canonizer below must
   agree with it bit for bit (table and transform), and the test suite
   checks that it does. *)
let canonize_exhaustive f =
  let n = Truth_table.num_vars f in
  let perms = permutations n in
  let best = ref None in
  let consider tt transform =
    match !best with
    | None -> best := Some (tt, transform)
    | Some (b, _) ->
        if Truth_table.compare tt b < 0 then best := Some (tt, transform)
  in
  List.iter
    (fun perm ->
      for input_flips = 0 to (1 lsl n) - 1 do
        let base =
          Truth_table.permute (apply_input_flips f input_flips) perm
        in
        consider base { perm; input_flips; output_flip = false };
        consider (Truth_table.lnot base)
          { perm; input_flips; output_flip = true }
      done)
    perms;
  match !best with
  | Some r -> r
  | None -> assert false (* there is at least the identity *)

(* Pruned canonization.

   The prunings below only skip transforms that provably cannot change
   the winner chosen by [canonize_exhaustive], so the result — table
   {e and} transform — is bit-identical to the exhaustive search:

   - {e Output-phase normalization}: tables over at most 6 variables
     compare as one machine word, so of the complementary pair
     [(base, lnot base)] only the candidate whose top bit makes the word
     smallest (clear below 6 variables, set at exactly 6 where the top
     bit is the sign bit) can ever win; the other differs from it in the
     most significant bit and is strictly larger.
   - {e Symmetric-variable quotient}: variables are first partitioned
     into symmetry classes (cheap per-variable cofactor ones-count
     signatures filter the candidate pairs, an exact [swap_vars] check
     confirms).  Permutations that assign the same position {e set} to a
     symmetry class produce identical candidate tables once all input
     flips are enumerated, so only the first permutation of each such
     coset — exactly the one the exhaustive search would crown on a tie
     — is evaluated.
   - {e Shared flip tables}: the [2^n] input-flip variants of [f] are
     computed once in Gray-code order (one [flip_var] each) instead of
     once per permutation. *)

let var_signature f v =
  ( Truth_table.count_ones (Truth_table.cofactor0 f v),
    Truth_table.count_ones (Truth_table.cofactor1 f v) )

(* [cls.(v)] is the smallest variable symmetric to [v] (possibly [v]
   itself).  Swap-symmetry classes are closed under transitivity, so
   testing against class roots only is complete. *)
let symmetry_classes f =
  let n = Truth_table.num_vars f in
  let cls = Array.init n (fun v -> v) in
  let sigs = Array.init n (var_signature f) in
  for v = 1 to n - 1 do
    let u = ref 0 in
    while cls.(v) = v && !u < v do
      if
        cls.(!u) = !u
        && sigs.(!u) = sigs.(v)
        && Truth_table.equal (Truth_table.swap_vars f !u v) f
      then cls.(v) <- !u;
      incr u
    done
  done;
  cls

(* Canonical key of the coset of [perm] under precomposition with the
   symmetry group: per class, only the set of assigned positions
   matters, so sort each class's images in place. *)
let coset_key cls perm =
  let n = Array.length perm in
  let key = Array.copy perm in
  for root = 0 to n - 1 do
    if cls.(root) = root then begin
      let members = ref [] in
      for v = n - 1 downto 0 do
        if cls.(v) = root then members := v :: !members
      done;
      match !members with
      | [] | [ _ ] -> ()
      | ms ->
          let images = List.sort Stdlib.compare (List.map (fun v -> perm.(v)) ms) in
          List.iter2 (fun v img -> key.(v) <- img) ms images
    end
  done;
  key

let canonize_pruned f =
  let n = Truth_table.num_vars f in
  let bits = 1 lsl n in
  (* flipped.(m) = f with input-flip mask m, filled in Gray-code order. *)
  let flipped = Array.make bits f in
  let prev = ref f and prev_mask = ref 0 in
  for k = 1 to bits - 1 do
    let g = k lxor (k lsr 1) in
    let bit = !prev_mask lxor g in
    let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
    let t = Truth_table.flip_var !prev (log2 bit 0) in
    flipped.(g) <- t;
    prev := t;
    prev_mask := g
  done;
  let cls = symmetry_classes f in
  let seen_cosets = Hashtbl.create 16 in
  let single_word = n <= 6 in
  (* At 6 variables the top bit is the int64 sign bit, so the smaller of
     a complementary pair is the one with the top bit set. *)
  let want_top = n = 6 in
  let best = ref None in
  let consider tt transform =
    match !best with
    | None -> best := Some (tt, transform)
    | Some (b, _) ->
        if Truth_table.compare tt b < 0 then best := Some (tt, transform)
  in
  List.iter
    (fun perm ->
      let key = coset_key cls perm in
      if not (Hashtbl.mem seen_cosets key) then begin
        Hashtbl.replace seen_cosets key ();
        for input_flips = 0 to bits - 1 do
          let base = Truth_table.permute flipped.(input_flips) perm in
          if single_word then
            if Truth_table.get_bit base (bits - 1) = want_top then
              consider base { perm; input_flips; output_flip = false }
            else
              consider (Truth_table.lnot base)
                { perm; input_flips; output_flip = true }
          else begin
            consider base { perm; input_flips; output_flip = false };
            consider (Truth_table.lnot base)
              { perm; input_flips; output_flip = true }
          end
        done
      end)
    (permutations n);
  match !best with
  | Some r -> r
  | None -> assert false

(* Two-level cache, keyed on interned tables.  L1 is a small
   direct-mapped array probed by physical identity — one load and a
   pointer compare on the hot path of rewriting, where the same few cut
   functions recur constantly.  L2 is the persistent structural table. *)

let l1_size = 1024 (* power of two *)

let l1 : (Truth_table.t * (Truth_table.t * transform)) option array =
  Array.make l1_size None

let cache : (Truth_table.t, Truth_table.t * transform) Hashtbl.t =
  Hashtbl.create 1024

let l1_hits = ref 0
let l2_hits = ref 0
let cache_misses = ref 0

let cache_stats () = (!l1_hits, !l2_hits, !cache_misses)

let canonize f =
  let f = Truth_table.intern f in
  let slot = Truth_table.hash f land (l1_size - 1) in
  match l1.(slot) with
  | Some (k, r) when k == f ->
      incr l1_hits;
      r
  | _ -> (
      match Hashtbl.find_opt cache f with
      | Some r ->
          incr l2_hits;
          l1.(slot) <- Some (f, r);
          r
      | None ->
          incr cache_misses;
          let c, t = canonize_pruned f in
          let r = (Truth_table.intern c, t) in
          Hashtbl.replace cache f r;
          l1.(slot) <- Some (f, r);
          r)

let canonical f = fst (canonize f)

let input_assignment t j =
  (* Input [j] of the canonical implementation corresponds to original
     variable [i] with [perm.(i) = j]; it must be complemented when the
     original variable was flipped before permutation. *)
  let n = Array.length t.perm in
  let rec find i =
    if i >= n then invalid_arg "Npn.input_assignment: index out of range"
    else if t.perm.(i) = j then i
    else find (i + 1)
  in
  let i = find 0 in
  (i, (t.input_flips lsr i) land 1 = 1)

let output_negated t = t.output_flip

(* Counting classes by canonizing every function would apply ~768
   transforms to each of the 2^2^n functions; enumerating whole orbits
   instead visits every function exactly once. *)
let class_count n =
  if n > 4 then invalid_arg "Npn.class_count: enumeration above n = 4"
  else begin
    let bits = 1 lsl n in
    let visited = Array.make (1 lsl bits) false in
    let perms = permutations n in
    let classes = ref 0 in
    for v = 0 to (1 lsl bits) - 1 do
      if not visited.(v) then begin
        incr classes;
        let f = Truth_table.of_bits n (Int64.of_int v) in
        List.iter
          (fun perm ->
            for input_flips = 0 to (1 lsl n) - 1 do
              let base =
                Truth_table.permute (apply_input_flips f input_flips) perm
              in
              let mark tt =
                visited.(Int64.to_int (Truth_table.to_bits tt)) <- true
              in
              mark base;
              mark (Truth_table.lnot base)
            done)
          perms
      end
    done;
    !classes
  end
