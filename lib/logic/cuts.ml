type cut = { leaves : int array; table : Truth_table.t }

type enum_stats = {
  nodes : int;
  pairs : int;
  kept : int;
  sig_rejects : int;
}

type t = {
  network : Network.t;
  cuts : cut list array;
  stats : enum_stats;
}

let network t = t.network

(* {2 Configuration} *)

type config = {
  cut_size : int;
  cuts_per_node : int;
  priority : bool;
}

let default_config = { cut_size = 4; cuts_per_node = 12; priority = true }
let exhaustive_config = { default_config with priority = false }

let global = ref default_config
let set_global_config c = global := c
let global_config () = !global

(* {2 Shared helpers} *)

(* Sorted-array union; [None] when exceeding [k].  Pre-overhaul
   implementation, preserved verbatim for [exhaustive_config] (the
   priority path merges into a preallocated buffer instead, see
   [union_into]). *)
let union_leaves_legacy k a b =
  let la = Array.length a and lb = Array.length b in
  let result = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and n = ref 0 in
  (try
     while !i < la || !j < lb do
       let next =
         if !i >= la then begin
           let v = b.(!j) in
           incr j;
           v
         end
         else if !j >= lb then begin
           let v = a.(!i) in
           incr i;
           v
         end
         else if a.(!i) < b.(!j) then begin
           let v = a.(!i) in
           incr i;
           v
         end
         else if a.(!i) > b.(!j) then begin
           let v = b.(!j) in
           incr j;
           v
         end
         else begin
           let v = a.(!i) in
           incr i;
           incr j;
           v
         end
       in
       if !n >= k then raise Exit;
       result.(!n) <- next;
       incr n
     done;
     ()
   with Exit -> n := k + 1);
  if !n > k then None else Some (Array.sub result 0 !n)

(* Re-express [table] (over [leaves]) over the superset [union].
   Pre-overhaul implementation for [exhaustive_config]: per-leaf linear
   position search (O(k^2)) and one functional [set_bit] copy per set
   bit. *)
let lift_table_legacy table leaves union =
  let m = Array.length union in
  let positions =
    Array.map
      (fun leaf ->
        let rec find i = if union.(i) = leaf then i else find (i + 1) in
        find 0)
      leaves
  in
  let result = ref (Truth_table.create m) in
  for idx = 0 to (1 lsl m) - 1 do
    let sub = ref 0 in
    Array.iteri
      (fun v pos -> if (idx lsr pos) land 1 = 1 then sub := !sub lor (1 lsl v))
      positions;
    if Truth_table.get_bit table !sub then
      result := Truth_table.set_bit !result idx true
  done;
  !result

(* The overhauled lift: positions of all leaves in one joint pass over
   the two sorted arrays (the legacy per-leaf linear search was O(k^2)),
   result built in place via [Truth_table.of_fun] instead of one
   functional [set_bit] copy per bit. *)
let lift_table table leaves union =
  let nl = Array.length leaves in
  let positions = Array.make nl 0 in
  let j = ref 0 in
  for v = 0 to nl - 1 do
    while union.(!j) <> leaves.(v) do
      incr j
    done;
    positions.(v) <- !j
  done;
  Truth_table.of_fun (Array.length union) (fun idx ->
      let sub = ref 0 in
      for v = 0 to nl - 1 do
        if (idx lsr positions.(v)) land 1 = 1 then sub := !sub lor (1 lsl v)
      done;
      Truth_table.get_bit table !sub)

let is_subset a b =
  (* Both sorted ascending. *)
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let filter_dominated cuts =
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' ->
             c != c'
             && Array.length c'.leaves < Array.length c.leaves
             && is_subset c'.leaves c.leaves)
           cuts))
    cuts

(* The function of a gate over a cut's leaves is unique, so the interned
   tables of identical cuts are physically equal whichever enumeration
   path produced them.  The baseline computes through the legacy lift
   (three intermediate tables per candidate); the result is interned at
   the end so both paths hand out the same physical table. *)
let gate_table_legacy ntk id union ca cb a b =
  let ta = lift_table_legacy ca.table ca.leaves union
  and tb = lift_table_legacy cb.table cb.leaves union in
  let ta = if Network.is_complemented a then Truth_table.lnot ta else ta
  and tb = if Network.is_complemented b then Truth_table.lnot tb else tb in
  let table =
    match Network.kind ntk id with
    | Network.And _ -> Truth_table.land_ ta tb
    | Network.Xor _ -> Truth_table.lxor_ ta tb
    | Network.Const | Network.Pi _ -> assert false
  in
  Truth_table.intern table

(* Generic tuned-path gate table (unions wider than a single word): two
   fast lifts, complements, op, one intern. *)
let gate_table ntk id union ca cb a b =
  let ta = lift_table ca.table ca.leaves union
  and tb = lift_table cb.table cb.leaves union in
  let ta = if Network.is_complemented a then Truth_table.lnot ta else ta
  and tb = if Network.is_complemented b then Truth_table.lnot tb else tb in
  let table =
    match Network.kind ntk id with
    | Network.And _ -> Truth_table.land_ ta tb
    | Network.Xor _ -> Truth_table.lxor_ ta tb
    | Network.Const | Network.Pi _ -> assert false
  in
  Truth_table.intern table

(* Leaf positions inside [union], packed 3 bits per leaf (positions are
   < 8 whenever the union has at most 5 leaves). *)
let pack_positions leaves union =
  let nl = Array.length leaves in
  let packed = ref 0 and j = ref 0 in
  for v = 0 to nl - 1 do
    while union.(!j) <> leaves.(v) do
      incr j
    done;
    packed := !packed lor (!j lsl (3 * v))
  done;
  !packed

(* Fused gate table for unions of at most 5 leaves (every Table-1
   workload at the default k = 4): both child lifts, complement flips
   and the gate op are evaluated per assignment on plain ints, with a
   single table allocation and one intern at the end. *)
let gate_table_fused ntk id union ca cb a b =
  let u = Array.length union in
  if
    u > 5
    || Truth_table.num_vars ca.table > 5
    || Truth_table.num_vars cb.table > 5
  then gate_table ntk id union ca cb a b
  else begin
    let pa = pack_positions ca.leaves union
    and pb = pack_positions cb.leaves union in
    let na = Array.length ca.leaves and nb = Array.length cb.leaves in
    let ba = Int64.to_int (Truth_table.to_bits ca.table)
    and bb = Int64.to_int (Truth_table.to_bits cb.table) in
    let fa = if Network.is_complemented a then 1 else 0
    and fb = if Network.is_complemented b then 1 else 0 in
    let is_xor =
      match Network.kind ntk id with
      | Network.Xor _ -> true
      | Network.And _ -> false
      | Network.Const | Network.Pi _ -> assert false
    in
    let r = ref 0 in
    for idx = 0 to (1 lsl u) - 1 do
      let sub_a = ref 0 and p = ref pa in
      for v = 0 to na - 1 do
        if (idx lsr (!p land 7)) land 1 = 1 then sub_a := !sub_a lor (1 lsl v);
        p := !p lsr 3
      done;
      let sub_b = ref 0 and q = ref pb in
      for v = 0 to nb - 1 do
        if (idx lsr (!q land 7)) land 1 = 1 then sub_b := !sub_b lor (1 lsl v);
        q := !q lsr 3
      done;
      let va = ((ba lsr !sub_a) land 1) lxor fa
      and vb = ((bb lsr !sub_b) land 1) lxor fb in
      let bit = if is_xor then va lxor vb else va land vb in
      if bit = 1 then r := !r lor (1 lsl idx)
    done;
    Truth_table.intern (Truth_table.of_bits u (Int64.of_int !r))
  end

let trivial_table = lazy (Truth_table.intern (Truth_table.var 1 0))
let const_table = lazy (Truth_table.intern (Truth_table.const0 0))

let trivial_cut id = { leaves = [| id |]; table = Lazy.force trivial_table }

(* {2 Exhaustive baseline}

   The pre-overhaul list-based enumeration, preserved verbatim behind
   [exhaustive_config]: full product merge per gate, hashtable
   deduplication, quadratic dominance filtering, then sort and truncate.
   The priority path below computes the same cut lists (asserted by the
   logic bench and fuzzed by [test/fuzz.exe -cuts]). *)

let enumerate_exhaustive cfg ntk =
  let k = cfg.cut_size and max_cuts = cfg.cuts_per_node in
  let n = Network.num_nodes ntk in
  let cuts = Array.make n [] in
  let pairs = ref 0 and kept = ref 0 in
  for id = 0 to n - 1 do
    let computed =
      match Network.kind ntk id with
      | Network.Const -> [ { leaves = [||]; table = Lazy.force const_table } ]
      | Network.Pi _ -> [ trivial_cut id ]
      | Network.And (a, b) | Network.Xor (a, b) ->
          let na = Network.node_of_signal a
          and nb = Network.node_of_signal b in
          let combine ca cb acc =
            incr pairs;
            match union_leaves_legacy k ca.leaves cb.leaves with
            | None -> acc
            | Some union ->
                {
                  leaves = union;
                  table = gate_table_legacy ntk id union ca cb a b;
                }
                :: acc
          in
          let merged =
            List.fold_left
              (fun acc ca ->
                List.fold_left (fun acc cb -> combine ca cb acc) acc
                  cuts.(nb))
              [] cuts.(na)
          in
          (* Deduplicate by leaves, drop dominated cuts, keep the best. *)
          let dedup =
            let seen = Hashtbl.create 16 in
            List.filter
              (fun c ->
                if Hashtbl.mem seen c.leaves then false
                else begin
                  Hashtbl.replace seen c.leaves ();
                  true
                end)
              merged
          in
          let kept_cuts =
            filter_dominated dedup
            |> List.sort (fun c1 c2 ->
                   compare (Array.length c1.leaves) (Array.length c2.leaves))
          in
          let rec take n = function
            | [] -> []
            | _ when n = 0 -> []
            | c :: rest -> c :: take (n - 1) rest
          in
          take (max_cuts - 1) kept_cuts @ [ trivial_cut id ]
    in
    kept := !kept + List.length computed;
    cuts.(id) <- computed
  done;
  {
    network = ntk;
    cuts;
    stats = { nodes = n; pairs = !pairs; kept = !kept; sig_rejects = 0 };
  }

(* {2 Priority cuts}

   Mockturtle-style bounded enumeration: per gate, candidate unions are
   merged into one preallocated buffer (no per-union allocation), a
   64-bit leaf signature filters dominance and duplicate checks before
   any array walk, and truth tables are computed only for the at most
   [cuts_per_node - 1] survivors instead of every candidate.

   To keep the mapped netlists bit-identical to the exhaustive baseline,
   the candidate stream is processed in the same logical order as the
   baseline's merged list (which is built by consing, i.e. reversed
   generation order), with the same first-occurrence deduplication,
   bidirectional strict-subset dominance, stable sort by leaf count, and
   truncation. *)

type scratch = {
  buf_leaves : int array; (* row-major, rows of width [cut_size] *)
  buf_len : int array;
  buf_sig : int64 array;
  buf_a : int array; (* index of the generating cut of fanin a *)
  buf_b : int array;
  buf_keep : bool array;
  buf_ord : int array;
}

let make_scratch cfg =
  let p = cfg.cuts_per_node * cfg.cuts_per_node in
  {
    buf_leaves = Array.make (max 1 (p * cfg.cut_size)) 0;
    buf_len = Array.make (max 1 p) 0;
    buf_sig = Array.make (max 1 p) 0L;
    buf_a = Array.make (max 1 p) 0;
    buf_b = Array.make (max 1 p) 0;
    buf_keep = Array.make (max 1 p) false;
    buf_ord = Array.make (max 1 p) 0;
  }

(* Merge sorted [a] and [b] into row [m] of the scratch buffer, bounded
   by [k] leaves; the 64-bit signature is accumulated in the same pass.
   Returns [false] on overflow.  Indices are bounded by the loop guards,
   so the row writes use unsafe accesses. *)
let union_into s m k a b =
  let la = Array.length a and lb = Array.length b in
  let off = m * k in
  let i = ref 0 and j = ref 0 and n = ref 0 in
  let sg = ref 0L in
  let overflow = ref false in
  while (not !overflow) && (!i < la || !j < lb) do
    let next =
      if !i >= la then begin
        let v = Array.unsafe_get b !j in
        incr j;
        v
      end
      else if !j >= lb then begin
        let v = Array.unsafe_get a !i in
        incr i;
        v
      end
      else
        let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
        if x < y then begin
          incr i;
          x
        end
        else if x > y then begin
          incr j;
          y
        end
        else begin
          incr i;
          incr j;
          x
        end
    in
    if !n >= k then overflow := true
    else begin
      Array.unsafe_set s.buf_leaves (off + !n) next;
      sg := Int64.logor !sg (Int64.shift_left 1L (next land 63));
      incr n
    end
  done;
  if !overflow then false
  else begin
    s.buf_len.(m) <- !n;
    s.buf_sig.(m) <- !sg;
    true
  end

let rows_equal s r r' k =
  s.buf_len.(r) = s.buf_len.(r')
  && s.buf_sig.(r) = s.buf_sig.(r')
  &&
  let base = r * k and base' = r' * k in
  let len = s.buf_len.(r) in
  let rec go i =
    i >= len
    || Array.unsafe_get s.buf_leaves (base + i)
       = Array.unsafe_get s.buf_leaves (base' + i)
       && go (i + 1)
  in
  go 0

(* Strict-subset test of row [r'] against row [r], both sorted. *)
let row_subset s r' r k =
  let la = s.buf_len.(r') and lb = s.buf_len.(r) in
  let base' = r' * k and base = r * k in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else
      let x = Array.unsafe_get s.buf_leaves (base' + i)
      and y = Array.unsafe_get s.buf_leaves (base + j) in
      if x = y then go (i + 1) (j + 1) else if x > y then go i (j + 1) else false
  in
  go 0 0

let enumerate_priority cfg ntk =
  let k = cfg.cut_size and max_cuts = cfg.cuts_per_node in
  let n = Network.num_nodes ntk in
  let cuts = Array.make n [] in
  let cuts_arr = Array.make n [||] in
  let s = make_scratch cfg in
  let pairs = ref 0 and kept_total = ref 0 and sig_rejects = ref 0 in
  for id = 0 to n - 1 do
    let computed =
      match Network.kind ntk id with
      | Network.Const -> [| { leaves = [||]; table = Lazy.force const_table } |]
      | Network.Pi _ -> [| trivial_cut id |]
      | Network.And (a, b) | Network.Xor (a, b) ->
          let ca_arr = cuts_arr.(Network.node_of_signal a)
          and cb_arr = cuts_arr.(Network.node_of_signal b) in
          (* Generate candidate unions into the scratch buffer.  Row [r]
             generated here is logical position [m - 1 - r] of the
             baseline's merged list. *)
          let m = ref 0 in
          for ia = 0 to Array.length ca_arr - 1 do
            for ib = 0 to Array.length cb_arr - 1 do
              incr pairs;
              if union_into s !m k ca_arr.(ia).leaves cb_arr.(ib).leaves
              then begin
                s.buf_a.(!m) <- ia;
                s.buf_b.(!m) <- ib;
                incr m
              end
            done
          done;
          let m = !m in
          (* First-occurrence deduplication in logical order: row [r] is
             a duplicate iff a higher row has the same leaves. *)
          for r = m - 1 downto 0 do
            let dup = ref false in
            let r' = ref (m - 1) in
            while (not !dup) && !r' > r do
              (* Signature and length mismatches reject without touching
                 the leaf arrays. *)
              if rows_equal s r !r' k then dup := true;
              decr r'
            done;
            s.buf_keep.(r) <- not !dup
          done;
          (* Dominance: a kept row dies when any other kept row is a
             strictly smaller subset of it (either direction in the
             logical order, exactly like the baseline's global filter). *)
          let alive = ref 0 in
          for r = m - 1 downto 0 do
            if s.buf_keep.(r) then begin
              let dominated = ref false in
              let r' = ref (m - 1) in
              while (not !dominated) && !r' >= 0 do
                if
                  !r' <> r
                  && s.buf_keep.(!r')
                  && s.buf_len.(!r') < s.buf_len.(r)
                then
                  if
                    Int64.logand s.buf_sig.(!r') s.buf_sig.(r)
                    <> s.buf_sig.(!r')
                  then incr sig_rejects
                  else if row_subset s !r' r k then dominated := true;
                decr r'
              done;
              if !dominated then s.buf_keep.(r) <- false
              else begin
                s.buf_ord.(!alive) <- r;
                incr alive
              end
            end
          done;
          (* [buf_ord] holds the survivors in logical order; stable
             insertion sort by leaf count reproduces the baseline's
             sort-then-truncate. *)
          let alive = !alive in
          for i = 1 to alive - 1 do
            let r = s.buf_ord.(i) in
            let j = ref i in
            while !j > 0 && s.buf_len.(s.buf_ord.(!j - 1)) > s.buf_len.(r) do
              s.buf_ord.(!j) <- s.buf_ord.(!j - 1);
              decr j
            done;
            s.buf_ord.(!j) <- r
          done;
          let chosen = min alive (max_cuts - 1) in
          (* Truth tables only for the survivors. *)
          Array.init (chosen + 1) (fun i ->
              if i = chosen then trivial_cut id
              else begin
                let r = s.buf_ord.(i) in
                let union = Array.sub s.buf_leaves (r * k) s.buf_len.(r) in
                let ca = ca_arr.(s.buf_a.(r)) and cb = cb_arr.(s.buf_b.(r)) in
                {
                  leaves = union;
                  table = gate_table_fused ntk id union ca cb a b;
                }
              end)
    in
    kept_total := !kept_total + Array.length computed;
    cuts_arr.(id) <- computed;
    cuts.(id) <- Array.to_list computed
  done;
  {
    network = ntk;
    cuts;
    stats =
      {
        nodes = n;
        pairs = !pairs;
        kept = !kept_total;
        sig_rejects = !sig_rejects;
      };
  }

let enumerate ?config ?k ?max_cuts ntk =
  let cfg = match config with Some c -> c | None -> global_config () in
  let cfg =
    match k with Some k -> { cfg with cut_size = k } | None -> cfg
  in
  let cfg =
    match max_cuts with
    | Some c -> { cfg with cuts_per_node = c }
    | None -> cfg
  in
  if cfg.priority then enumerate_priority cfg ntk
  else enumerate_exhaustive cfg ntk

let cuts_of t id = t.cuts.(id)

let stats t = t.stats

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d pairs=%d cuts=%d sig-rejects=%d" s.nodes s.pairs s.kept
    s.sig_rejects

let cut_volume ntk _root cut =
  let in_leaves id = Array.exists (( = ) id) cut.leaves in
  let visited = Hashtbl.create 16 in
  let rec count id =
    if Hashtbl.mem visited id || in_leaves id then 0
    else begin
      Hashtbl.replace visited id ();
      match Network.kind ntk id with
      | Network.Const | Network.Pi _ -> 0
      | Network.And (a, b) | Network.Xor (a, b) ->
          1
          + count (Network.node_of_signal a)
          + count (Network.node_of_signal b)
    end
  in
  count _root

let mffc_size ntk fanout_counts root =
  let counts = Array.copy fanout_counts in
  let rec deref id =
    match Network.kind ntk id with
    | Network.Const | Network.Pi _ -> 0
    | Network.And (a, b) | Network.Xor (a, b) ->
        let size = ref 1 in
        List.iter
          (fun s ->
            let f = Network.node_of_signal s in
            counts.(f) <- counts.(f) - 1;
            if counts.(f) = 0 then size := !size + deref f)
          [ a; b ];
        !size
  in
  deref root

let pp_cut ppf c =
  Format.fprintf ppf "{%a : %s}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list c.leaves)
    (Truth_table.to_hex c.table)
