(** Technology mapping of XAGs onto the Bestagon gate set (flow step 3).

    Every XAG node becomes one library gate.  Edge complements are
    absorbed into the gate choice wherever possible — an AND node whose
    output is consumed inverted becomes a NAND, one with both inputs
    inverted becomes a NOR, and so on; only mixed-polarity AND inputs
    require explicit inverter gates.  Each node is realized in the
    polarity demanded by the majority of its fanouts.

    Optionally, AND/XOR node pairs over identical fanins are fused into
    the single-tile half-adder gate of the Bestagon library. *)

type stats = {
  inverters_added : int;
  half_adders_fused : int;
  gates : int;  (** Total mapped gates including inverters. *)
}

val map : ?fuse_half_adders:bool -> Network.t -> Mapped.t * stats
(** Map a network (default [fuse_half_adders] is [true]).
    @raise Failure if a primary output is a constant (the Bestagon
    library has no tie tiles). *)

val pp_stats : Format.formatter -> stats -> unit
(** One stable line, in the style of [Sat.Solver.pp_stats]. *)
