(** Technology-mapped netlists over the Bestagon gate set.

    After technology mapping (flow step 3), logic is expressed as a DAG
    of library gates with {e explicit} inverters and no complemented
    edges, ready for placement and routing onto hexagonal tiles.  The
    two-output half adder corresponds to the paper's single-tile
    2-in-2-out half-adder Bestagon tile. *)

(** Library gate functions (cf. Sec. 4.1: wires, inverters, fan-outs and
    crossings are layout-level tiles and do not appear here). *)
type fn =
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Inv
  | Buf
  | Ha  (** Half adder: output port 0 is the sum, port 1 the carry. *)

type source = int * int
(** A value reference: node id and output port (0 except for [Ha]). *)

type node =
  | Input of int * string  (** Primary input index and name. *)
  | Gate of fn * source array

type t

val create : unit -> t
val add_input : t -> string -> source
val add_gate : t -> fn -> source list -> source
(** Returns port 0 of the new gate.  @raise Invalid_argument on arity
    mismatch. *)

val add_output : t -> string -> source -> unit

val node : t -> int -> node
val num_nodes : t -> int
val num_inputs : t -> int
val num_outputs : t -> int
val num_gates : t -> int

val output : t -> int -> string * source
val outputs : t -> (string * source) list
val input_name : t -> int -> string

val fn_arity : fn -> int
val fn_outputs : fn -> int
val fn_name : fn -> string

val equal : t -> t -> bool
(** Node-for-node structural identity: same node array (ids, functions,
    fanin wiring), inputs and outputs — strictly stronger than functional
    equivalence.  Used to assert that cut-enumeration strategies agree. *)

val gate_counts : t -> (fn * int) list
(** Histogram of gate functions used, in a fixed order. *)

val eval_fn : fn -> bool array -> bool array
(** Semantics of a gate function. *)

val eval : t -> bool array -> bool array
(** Evaluate the netlist on one input assignment. *)

val simulate : t -> Truth_table.t array
(** One truth table per output over all inputs (inputs limited to 20). *)

val to_network : t -> Network.t
(** Convert back into an XAG (for equivalence checking). *)

val depth : t -> int
(** Longest input-to-output path in gates. *)

val pp_stats : Format.formatter -> t -> unit
