type t = { n : int; words : int64 array }

(* Number of 64-bit words needed for [2^n] bits. *)
let word_count n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Mask for the valid bits of the last (only) word when [n <= 6]. *)
let last_mask n =
  if n >= 6 then -1L
  else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let num_vars t = t.n
let num_bits t = 1 lsl t.n

let create n =
  if n < 0 || n > 20 then
    invalid_arg (Printf.sprintf "Truth_table.create: arity %d" n)
  else { n; words = Array.make (word_count n) 0L }

let const0 = create

let const1 n =
  let t = create n in
  Array.fill t.words 0 (Array.length t.words) (-1L);
  t.words.(Array.length t.words - 1) <- last_mask n;
  t

(* Patterns of projection functions within one word: variable [i] has
   period [2^(i+1)] with the upper half set. *)
let var_patterns =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

let var n i =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Truth_table.var: index %d of arity %d" i n)
  else
    let t = create n in
    let words = Array.length t.words in
    if i < 6 then (
      Array.fill t.words 0 words var_patterns.(i);
      t.words.(words - 1) <- Int64.logand t.words.(words - 1) (last_mask n))
    else
      (* Word [w] holds bits [64w .. 64w+63]; variable [i >= 6] is set on
         the whole word iff bit [i - 6] of [w] is set. *)
      for w = 0 to words - 1 do
        if (w lsr (i - 6)) land 1 = 1 then t.words.(w) <- -1L
      done;
    t

let of_fun n f =
  let t = create n in
  let bits = 1 lsl n in
  for i = 0 to bits - 1 do
    if f i then
      t.words.(i lsr 6) <-
        Int64.logor t.words.(i lsr 6) (Int64.shift_left 1L (i land 63))
  done;
  t

let get_bit t i =
  let w = i lsr 6 and b = i land 63 in
  Int64.logand (Int64.shift_right_logical t.words.(w) b) 1L = 1L

let set_bit t i v =
  let words = Array.copy t.words in
  let w = i lsr 6 and b = i land 63 in
  let mask = Int64.shift_left 1L b in
  words.(w) <-
    (if v then Int64.logor words.(w) mask
     else Int64.logand words.(w) (Int64.lognot mask));
  { t with words }

let check_arity name a b =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Truth_table.%s: arity mismatch %d vs %d" name a.n b.n)

let map2 f a b =
  let words = Array.mapi (fun i w -> f w b.words.(i)) a.words in
  { a with words }

let lnot t =
  let words = Array.map Int64.lognot t.words in
  words.(Array.length words - 1) <-
    Int64.logand words.(Array.length words - 1) (last_mask t.n);
  { t with words }

let land_ a b = check_arity "land_" a b; map2 Int64.logand a b
let lor_ a b = check_arity "lor_" a b; map2 Int64.logor a b
let lxor_ a b = check_arity "lxor" a b; map2 Int64.logxor a b

let equal a b = a == b || (a.n = b.n && a.words = b.words)

let compare a b =
  if a == b then 0
  else
    let c = Stdlib.compare a.n b.n in
    if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.n, t.words)

(* Hash-consing.  The intern table maps a structural key to one
   canonical handle per distinct table, so any two interned tables are
   equal iff they are physically equal and [equal]/[compare] hit their
   pointer fast path.  The words array of an interned handle must never
   be mutated; all operations in this module build fresh arrays, so the
   only mutation happens before a table escapes its constructor.  A
   mutex guards the table: interning is cheap relative to the lock, and
   rewriting may one day run on a worker domain. *)
let intern_lock = Mutex.create ()

let intern_table : (int * int64 array, t) Hashtbl.t = Hashtbl.create 4096

let intern t =
  Mutex.lock intern_lock;
  let r =
    match Hashtbl.find_opt intern_table (t.n, t.words) with
    | Some u -> u
    | None ->
        Hashtbl.replace intern_table (t.n, t.words) t;
        t
  in
  Mutex.unlock intern_lock;
  r

let interned_count () =
  Mutex.lock intern_lock;
  let n = Hashtbl.length intern_table in
  Mutex.unlock intern_lock;
  n

let is_const0 t = Array.for_all (fun w -> w = 0L) t.words
let is_const1 t = equal t (const1 t.n)

let popcount64 w =
  let rec go acc w =
    if w = 0L then acc
    else go (acc + 1) (Int64.logand w (Int64.sub w 1L))
  in
  go 0 w

let count_ones t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.words

(* Generic per-bit index transformation: result bit [i] is input bit
   [f i].  Simple and obviously correct; tables are small. *)
let remap_bits t f =
  let r = create t.n in
  for i = 0 to num_bits t - 1 do
    if get_bit t (f i) then begin
      let w = i lsr 6 and b = i land 63 in
      r.words.(w) <- Int64.logor r.words.(w) (Int64.shift_left 1L b)
    end
  done;
  r

let cofactor0 t i = remap_bits t (fun idx -> idx land Stdlib.lnot (1 lsl i))
let cofactor1 t i = remap_bits t (fun idx -> idx lor (1 lsl i))

let depends_on t i = not (equal (cofactor0 t i) (cofactor1 t i))

let support t =
  List.filter (depends_on t) (List.init t.n (fun i -> i))

let swap_bits idx i j =
  let bi = (idx lsr i) land 1 and bj = (idx lsr j) land 1 in
  if bi = bj then idx
  else idx lxor ((1 lsl i) lor (1 lsl j))

let swap_vars t i j = remap_bits t (fun idx -> swap_bits idx i j)
let flip_var t i = remap_bits t (fun idx -> idx lxor (1 lsl i))

let permute t p =
  if Array.length p <> t.n then
    invalid_arg "Truth_table.permute: permutation length mismatch";
  (* Result bit index [idx] encodes the new variable values; input bit
     [i] of the original has new position [p.(i)], so original bit index
     is reassembled by reading new position [p.(i)] for variable [i]. *)
  remap_bits t (fun idx ->
      let src = ref 0 in
      for i = 0 to t.n - 1 do
        if (idx lsr p.(i)) land 1 = 1 then src := !src lor (1 lsl i)
      done;
      !src)

let extend t n =
  if n < t.n then invalid_arg "Truth_table.extend: shrinking arity"
  else begin
    let r = create n in
    for i = 0 to num_bits r - 1 do
      if get_bit t (i land (num_bits t - 1)) then begin
        let w = i lsr 6 and b = i land 63 in
        r.words.(w) <- Int64.logor r.words.(w) (Int64.shift_left 1L b)
      end
    done;
    r
  end

let of_bits n w =
  if n > 6 then invalid_arg "Truth_table.of_bits: arity > 6"
  else
    let t = create n in
    t.words.(0) <- Int64.logand w (last_mask n);
    t

let to_bits t =
  if t.n > 6 then invalid_arg "Truth_table.to_bits: arity > 6"
  else t.words.(0)

let of_string s =
  let len = String.length s in
  let n =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    log2 0 len
  in
  if len <> 1 lsl n then
    invalid_arg "Truth_table.of_string: length is not a power of two";
  let t = ref (create n) in
  String.iteri
    (fun pos c ->
      let bit = len - 1 - pos in
      match c with
      | '0' -> ()
      | '1' -> t := set_bit !t bit true
      | _ -> invalid_arg "Truth_table.of_string: invalid character")
    s;
  !t

let to_string t =
  String.init (num_bits t) (fun pos ->
      if get_bit t (num_bits t - 1 - pos) then '1' else '0')

let of_hex n s =
  let t = ref (create n) in
  let bits = 1 lsl n in
  let nibbles = (bits + 3) / 4 in
  if String.length s <> nibbles then
    invalid_arg "Truth_table.of_hex: wrong length";
  String.iteri
    (fun pos c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Truth_table.of_hex: invalid character"
      in
      let base = (nibbles - 1 - pos) * 4 in
      for b = 0 to 3 do
        if base + b < bits && (v lsr b) land 1 = 1 then
          t := set_bit !t (base + b) true
      done)
    s;
  !t

let to_hex t =
  let bits = num_bits t in
  let nibbles = (bits + 3) / 4 in
  String.init nibbles (fun pos ->
      let base = (nibbles - 1 - pos) * 4 in
      let v = ref 0 in
      for b = 0 to 3 do
        if base + b < bits && get_bit t (base + b) then v := !v lor (1 lsl b)
      done;
      "0123456789abcdef".[!v])

let eval t assignment =
  if Array.length assignment <> t.n then
    invalid_arg "Truth_table.eval: assignment length mismatch";
  let idx = ref 0 in
  Array.iteri (fun i v -> if v then idx := !idx lor (1 lsl i)) assignment;
  get_bit t !idx
