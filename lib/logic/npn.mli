(** NPN canonization of Boolean functions.

    Two functions belong to the same NPN class when one can be obtained
    from the other by negating inputs (N), permuting inputs (P), and
    negating the output (N).  The canonical representative of a class is
    the lexicographically smallest truth table reachable by such
    transformations (exhaustive search; intended for up to 5 variables,
    the rewriting flow uses up to 4).

    The recorded transform allows an implementation of the canonical
    function to be re-instantiated for any class member; see
    {!input_assignment}. *)

type transform = {
  perm : int array;  (** [perm.(i)] is the canonical variable fed by original variable [i]. *)
  input_flips : int;  (** Bit [i] set: original variable [i] is complemented first. *)
  output_flip : bool;  (** Whether the output is complemented last. *)
}

val canonize : Truth_table.t -> Truth_table.t * transform
(** [canonize f] is [(c, t)] where [c] is the canonical representative of
    [f]'s NPN class and [t] the transform such that
    [apply_transform f t = c].

    The search is pruned — output-phase normalization, symmetric-variable
    cosets detected through per-variable cofactor signatures, shared
    Gray-code flip tables — but every pruning only skips transforms that
    provably cannot win, so the result (table {e and} transform) is
    bit-identical to {!canonize_exhaustive}.  Results are memoized in a
    two-level cache keyed on {!Truth_table.intern}ed tables: a
    direct-mapped physical-identity L1 in front of the persistent
    structural table. *)

val canonize_exhaustive : Truth_table.t -> Truth_table.t * transform
(** The unpruned, uncached reference search over all n!·2ⁿ·2 transforms.
    Exposed so tests can check the pruned canonizer against it. *)

val cache_stats : unit -> int * int * int
(** [(l1_hits, l2_hits, misses)] of the {!canonize} cache since process
    start (diagnostics; see [bench/main.exe logic]). *)

val apply_transform : Truth_table.t -> transform -> Truth_table.t

val canonical : Truth_table.t -> Truth_table.t
(** Only the representative. *)

val input_assignment : transform -> int -> int * bool
(** [input_assignment t j] describes what to feed into input [j] of an
    implementation of the {e canonical} function in order to realize the
    original function: the pair [(i, neg)] means "original input [i],
    complemented iff [neg]".  The implementation's output must additionally
    be complemented iff [t.output_flip]. *)

val output_negated : transform -> bool

val class_count : int -> int
(** Number of distinct NPN classes of functions over exactly the given
    number of variables or fewer (i.e. over all [2^2^n] functions).
    Computed by enumeration; intended for [n <= 4] (222 classes at n = 4,
    in line with the classic result). *)

val permutations : int -> int array list
(** All permutations of [0 .. n-1]; exposed for tests. *)
