(** DAG-aware cut rewriting with an exact NPN database (flow step 2).

    Every gate is considered in topological order; for each of its
    [k]-feasible cuts the locally computed function is replaced by a
    size-optimal implementation from the {!Npn_db} when this reduces the
    estimated node count.  The network is rebuilt with structural hashing
    so that sharing between replacements is exploited, and a final
    {!Network.cleanup} removes nodes that became dangling. *)

type stats = {
  candidates : int;  (** Gates for which a beneficial cut was found. *)
  replaced : int;  (** Replacements actually applied. *)
  size_before : int;
  size_after : int;
}

val rewrite :
  ?k:int ->
  ?max_cuts:int ->
  ?cut_config:Cuts.config ->
  ?db:Npn_db.t ->
  Network.t ->
  Network.t * stats
(** One rewriting pass.  The default database bounds chains at 7 gates.
    [cut_config] selects the cut enumeration strategy (default: the
    global {!Cuts} configuration); [k] and [max_cuts] override its
    bounds. *)

val rewrite_to_fixpoint :
  ?k:int ->
  ?max_rounds:int ->
  ?cut_config:Cuts.config ->
  ?db:Npn_db.t ->
  Network.t ->
  Network.t
(** Iterate {!rewrite} until no further size reduction (default at most 4
    rounds). *)

val pp_stats : Format.formatter -> stats -> unit
(** One stable line, in the style of [Sat.Solver.pp_stats]. *)
