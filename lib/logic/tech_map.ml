type stats = {
  inverters_added : int;
  half_adders_fused : int;
  gates : int;
}

(* Realization polarity per node: 1 when the node is built to compute the
   complement of its XAG function.  The majority of fanout demands wins;
   inputs are always realized positive. *)
let choose_polarities ntk =
  let n = Network.num_nodes ntk in
  let inverted_demands = Array.make n 0 and total_demands = Array.make n 0 in
  let demand s =
    let id = Network.node_of_signal s in
    total_demands.(id) <- total_demands.(id) + 1;
    if Network.is_complemented s then
      inverted_demands.(id) <- inverted_demands.(id) + 1
  in
  List.iter (fun id -> List.iter demand (Network.fanins ntk id)) (Network.gates ntk);
  List.iter (fun (_, s) -> demand s) (Network.pos ntk);
  Array.init n (fun id ->
      match Network.kind ntk id with
      | Network.Const | Network.Pi _ -> false
      | Network.And _ | Network.Xor _ ->
          2 * inverted_demands.(id) > total_demands.(id))

let map ?(fuse_half_adders = true) ntk =
  let pol = choose_polarities ntk in
  let mapped = Mapped.create () in
  let inverters_added = ref 0 and half_adders_fused = ref 0 in
  (* Mapped source of each XAG node, in its realization polarity. *)
  let sources = Array.make (Network.num_nodes ntk) None in
  (* Memoized explicit inverters per node. *)
  let inverted = Hashtbl.create 16 in
  let source_of id =
    match sources.(id) with
    | Some s -> s
    | None -> invalid_arg "Tech_map: fanin processed out of order"
  in
  (* Source computing the literal [F_id xor want]. *)
  let literal id want =
    if want = pol.(id) then source_of id
    else
      match Hashtbl.find_opt inverted id with
      | Some s -> s
      | None ->
          incr inverters_added;
          let s = Mapped.add_gate mapped Mapped.Inv [ source_of id ] in
          Hashtbl.replace inverted id s;
          s
  in
  (* Half-adder fusion: group AND and XOR gates by their uncomplemented
     fanin pair; a pair fuses when both members are realized positive and
     the AND has no complemented fanin edges. *)
  let ha_partner = Hashtbl.create 16 in
  if fuse_half_adders then begin
    let by_fanins = Hashtbl.create 64 in
    List.iter
      (fun id ->
        match Network.kind ntk id with
        | Network.And (a, b)
          when (not (Network.is_complemented a))
               && (not (Network.is_complemented b))
               && not pol.(id) ->
            Hashtbl.replace by_fanins (`And, a, b) id
        | Network.Xor (a, b) when not pol.(id) ->
            Hashtbl.replace by_fanins (`Xor, a, b) id
        | Network.And _ | Network.Xor _ -> ()
        | Network.Const | Network.Pi _ -> ())
      (Network.gates ntk);
    Hashtbl.iter
      (fun key id ->
        match key with
        | `And, a, b -> (
            match Hashtbl.find_opt by_fanins (`Xor, a, b) with
            | Some xor_id ->
                Hashtbl.replace ha_partner id (`Carry_of, xor_id);
                Hashtbl.replace ha_partner xor_id (`Sum_with, id)
            | None -> ())
        | `Xor, _, _ -> ())
      by_fanins
  end;
  (* Shared HA gate per fused pair, keyed by the AND node id. *)
  let ha_gates = Hashtbl.create 16 in
  let build_ha and_id a b =
    match Hashtbl.find_opt ha_gates and_id with
    | Some (nid, _) -> nid
    | None ->
        incr half_adders_fused;
        let sa = literal (Network.node_of_signal a) false
        and sb = literal (Network.node_of_signal b) false in
        let nid, _ = Mapped.add_gate mapped Mapped.Ha [ sa; sb ] in
        Hashtbl.replace ha_gates and_id (nid, ());
        nid
  in
  for id = 0 to Network.num_nodes ntk - 1 do
    match Network.kind ntk id with
    | Network.Const -> ()
    | Network.Pi i -> sources.(id) <- Some (Mapped.add_input mapped (Network.pi_name ntk i))
    | Network.And (a, b) -> (
        match Hashtbl.find_opt ha_partner id with
        | Some (`Carry_of, _) ->
            let nid = build_ha id a b in
            sources.(id) <- Some (nid, 1)
        | Some (`Sum_with, _) | None ->
            let na = Network.node_of_signal a
            and nb = Network.node_of_signal b in
            let ca = Network.is_complemented a
            and cb = Network.is_complemented b in
            let p = pol.(id) in
            (* Whether the direct sources are inverted w.r.t. the needed
               literals. *)
            let inv_a = ca <> pol.(na) and inv_b = cb <> pol.(nb) in
            let gate =
              match (inv_a, inv_b, p) with
              | false, false, false ->
                  Mapped.add_gate mapped Mapped.And2
                    [ source_of na; source_of nb ]
              | false, false, true ->
                  Mapped.add_gate mapped Mapped.Nand2
                    [ source_of na; source_of nb ]
              | true, true, false ->
                  (* !x & !y = NOR(x, y) on the direct sources. *)
                  Mapped.add_gate mapped Mapped.Nor2
                    [ source_of na; source_of nb ]
              | true, true, true ->
                  Mapped.add_gate mapped Mapped.Or2
                    [ source_of na; source_of nb ]
              | _ ->
                  (* Mixed polarity: invert explicitly, then AND/NAND. *)
                  let sa = literal na ca and sb = literal nb cb in
                  Mapped.add_gate mapped
                    (if p then Mapped.Nand2 else Mapped.And2)
                    [ sa; sb ]
            in
            sources.(id) <- Some gate)
    | Network.Xor (a, b) -> (
        match Hashtbl.find_opt ha_partner id with
        | Some (`Sum_with, and_id) ->
            let nid = build_ha and_id a b in
            sources.(id) <- Some (nid, 0)
        | Some (`Carry_of, _) | None ->
            let na = Network.node_of_signal a
            and nb = Network.node_of_signal b in
            let ca = Network.is_complemented a
            and cb = Network.is_complemented b in
            (* Fanin inversions fold into the output phase. *)
            let phase =
              ca <> cb <> (pol.(na) <> pol.(nb)) <> pol.(id)
            in
            let gate =
              Mapped.add_gate mapped
                (if phase then Mapped.Xnor2 else Mapped.Xor2)
                [ source_of na; source_of nb ]
            in
            sources.(id) <- Some gate)
  done;
  List.iter
    (fun (name, s) ->
      let id = Network.node_of_signal s in
      match Network.kind ntk id with
      | Network.Const ->
          failwith
            (Printf.sprintf
               "Tech_map.map: output %s is constant; no tie tiles in the \
                Bestagon library"
               name)
      | Network.Pi _ | Network.And _ | Network.Xor _ ->
          Mapped.add_output mapped name
            (literal id (Network.is_complemented s)))
    (Network.pos ntk);
  ( mapped,
    {
      inverters_added = !inverters_added;
      half_adders_fused = !half_adders_fused;
      gates = Mapped.num_gates mapped;
    } )

let pp_stats ppf s =
  Format.fprintf ppf "gates=%d inverters=%d half-adders=%d" s.gates
    s.inverters_added s.half_adders_fused
