(** K-feasible cut enumeration on networks.

    A {e cut} of a node [n] is a set of nodes (leaves) such that every
    path from a primary input to [n] passes through a leaf.  Cuts with at
    most [k] leaves drive both cut rewriting (Sec. 4.2 step 2) and
    technology mapping (step 3).  Each cut carries the local function of
    [n] expressed over its leaves as an interned truth table.

    Two enumeration strategies live behind {!config}, mirroring the SAT
    core's [Solver.config]/[legacy_config] pair: the pre-overhaul
    list-based exhaustive enumeration ({!exhaustive_config}) and
    mockturtle-style priority cuts ({!default_config}) — a bounded
    per-node cut array filled through preallocated merge buffers, with
    64-bit leaf-signature dominance filtering and truth tables computed
    only for surviving cuts.  Both strategies produce {e identical} cut
    lists (same cuts, same order), so rewriting and mapping results do
    not depend on the configuration; [bench/main.exe logic] asserts this
    on every Table-1 benchmark and [test/fuzz.exe -cuts] on random
    networks. *)

type cut = {
  leaves : int array;  (** Leaf node ids, strictly ascending. *)
  table : Truth_table.t;
      (** Function of the (non-complemented) root node over the leaves;
          variable [i] corresponds to [leaves.(i)].  Interned. *)
}

type t

(** {2 Configuration} *)

type config = {
  cut_size : int;  (** Maximum leaves per cut ([k], default 4). *)
  cuts_per_node : int;
      (** Bound on stored cuts per node, trivial cut included (the
          priority-cut [C], default 12). *)
  priority : bool;
      (** Use the bounded array-based priority-cut path; [false] selects
          the preserved exhaustive baseline. *)
}

val default_config : config
(** Priority cuts with [k = 4], [C = 12]. *)

val exhaustive_config : config
(** The pre-overhaul enumeration (same bounds, list-based full product
    merge).  Kept for benchmarking and cross-checks. *)

val set_global_config : config -> unit
(** Set the configuration used by {!enumerate} when none is given
    explicitly.  Initially {!default_config}. *)

val global_config : unit -> config

(** {2 Enumeration} *)

val enumerate : ?config:config -> ?k:int -> ?max_cuts:int -> Network.t -> t
(** Enumerate cuts per node under [config] (default: the global
    configuration).  [k] and [max_cuts] override the corresponding
    configuration fields.  The trivial cut [{n}] is always included,
    last. *)

val cuts_of : t -> int -> cut list
(** Cuts of a node, trivial cut last. *)

val network : t -> Network.t

type enum_stats = {
  nodes : int;
  pairs : int;  (** Candidate child-cut pairs merged. *)
  kept : int;  (** Cuts stored across all nodes. *)
  sig_rejects : int;
      (** Dominance checks settled by the 64-bit leaf signature alone
          (priority path only). *)
}

val stats : t -> enum_stats
val pp_stats : Format.formatter -> enum_stats -> unit
(** One stable line, in the style of [Sat.Solver.pp_stats]. *)

val cut_volume : Network.t -> int -> cut -> int
(** Number of gates strictly inside the cone of the cut (between the root
    and the leaves, root included when it is a gate). *)

val mffc_size : Network.t -> int array -> int -> int
(** [mffc_size ntk fanout_counts root] is the size of the maximum
    fanout-free cone of [root]: the number of gates that would become
    dangling if [root] were removed. *)

val pp_cut : Format.formatter -> cut -> unit
