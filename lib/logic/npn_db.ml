(* [Npn.canonize] always returns interned canonical tables, so the chain
   cache can key on physical identity: hashing stays structural (cheap,
   one word for n <= 6) but equality is a pointer test. *)
module Tbl = Hashtbl.Make (struct
  type t = Truth_table.t

  let equal = ( == )
  let hash = Truth_table.hash
end)

type t = {
  max_gates : int;
  table : Exact_synth.chain option Tbl.t;
}

let create ?(max_gates = 7) () = { max_gates; table = Tbl.create 256 }

let chain_for db canonical =
  let canonical = Truth_table.intern canonical in
  match Tbl.find_opt db.table canonical with
  | Some cached -> cached
  | None ->
      let result =
        Exact_synth.synthesize ~max_gates:db.max_gates canonical
      in
      (* Validate the synthesized chain before trusting it. *)
      let result =
        match result with
        | Some chain
          when Truth_table.equal (Exact_synth.chain_table chain) canonical
          ->
            Some chain
        | Some _ -> None
        | None -> None
      in
      Tbl.replace db.table canonical result;
      result

let lookup db f =
  let canonical, transform = Npn.canonize f in
  match chain_for db canonical with
  | None -> None
  | Some chain -> Some (chain, transform)

let instantiate db f ntk leaves =
  match lookup db f with
  | None -> None
  | Some (chain, transform) ->
      let n = Truth_table.num_vars f in
      if Array.length leaves <> n then
        invalid_arg "Npn_db.instantiate: leaf count mismatch";
      (* Input j of the canonical chain is fed by original variable i,
         possibly complemented. *)
      let chain_inputs =
        Array.init n (fun j ->
            let i, neg = Npn.input_assignment transform j in
            if neg then Network.not_ leaves.(i) else leaves.(i))
      in
      let out = Exact_synth.instantiate chain ntk chain_inputs in
      Some (if Npn.output_negated transform then Network.not_ out else out)

let optimal_size db f =
  match lookup db f with
  | None -> None
  | Some (chain, _) -> Some (Exact_synth.chain_size chain)

let classes_cached db = Tbl.length db.table

let misses db =
  Tbl.fold
    (fun _ v acc -> match v with None -> acc + 1 | Some _ -> acc)
    db.table 0
