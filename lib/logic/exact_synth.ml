type step = { op : int; fanin1 : int; fanin2 : int }

type chain = {
  arity : int;
  steps : step array;
  output : int;  (* operand index; -1 denotes constant 0 *)
  output_complement : bool;
}

let chain_size c = Array.length c.steps

(* Gate semantics: 3 bits [c1 c2 c3], computing
   c1(!a b) xor c2(a !b) xor c3(a b); the three summands are disjoint so
   xor coincides with or. *)

(* A single XAG node (with complemented edges) realizing each feasible
   op.  Vacuous ops (0, a, b) are excluded by the encoding. *)
let build_op ntk op a b =
  match op with
  | 0b001 -> Network.and_ ntk a b
  | 0b010 -> Network.and_ ntk a (Network.not_ b)
  | 0b100 -> Network.and_ ntk (Network.not_ a) b
  | 0b110 -> Network.xor_ ntk a b
  | 0b111 -> Network.or_ ntk a b
  | _ -> invalid_arg (Printf.sprintf "Exact_synth.build_op: op %d" op)

let instantiate c ntk leaves =
  if Array.length leaves <> c.arity then
    invalid_arg "Exact_synth.instantiate: wrong leaf count";
  let signals = Array.make (c.arity + Array.length c.steps) Network.const0 in
  Array.blit leaves 0 signals 0 c.arity;
  Array.iteri
    (fun i s ->
      signals.(c.arity + i) <-
        build_op ntk s.op signals.(s.fanin1) signals.(s.fanin2))
    c.steps;
  let out = if c.output < 0 then Network.const0 else signals.(c.output) in
  if c.output_complement then Network.not_ out else out

let chain_table c =
  let n = c.arity in
  let values = Array.make (n + Array.length c.steps) (Truth_table.const0 n) in
  for i = 0 to n - 1 do
    values.(i) <- Truth_table.var n i
  done;
  Array.iteri
    (fun i s ->
      let a = values.(s.fanin1) and b = values.(s.fanin2) in
      let term c tt = if c then tt else Truth_table.const0 n in
      let t1 =
        term (s.op land 4 <> 0) (Truth_table.land_ (Truth_table.lnot a) b)
      and t2 =
        term (s.op land 2 <> 0) (Truth_table.land_ a (Truth_table.lnot b))
      and t3 = term (s.op land 1 <> 0) (Truth_table.land_ a b) in
      values.(n + i) <- Truth_table.lxor_ (Truth_table.lxor_ t1 t2) t3)
    c.steps;
  let out =
    if c.output < 0 then Truth_table.const0 n else values.(c.output)
  in
  if c.output_complement then Truth_table.lnot out else out

(* --- the SAT encoding -------------------------------------------------- *)

(* Attempt synthesis with exactly [r] gates for a normal function [g]
   (g(0,...,0) = 0). *)
let try_size g r =
  let n = Truth_table.num_vars g in
  let rows = (1 lsl n) - 1 in
  (* Pinned to the legacy solver configuration: the synthesized chain is
     extracted from the SAT *model*, and among equally-sized chains the
     one found depends on the solver's search order.  Downstream results
     (NPN rewriting, hence every Table-1 netlist and layout) are keyed to
     the chains the historical search order produces; these instances are
     tiny, so solver speed is irrelevant here. *)
  let f = Sat.Cnf.create ~config:Sat.Solver.legacy_config () in
  (* Gate output values per row (row t, 1-based over rows 1..2^n-1). *)
  let x = Array.init r (fun _ -> Sat.Cnf.fresh_many f rows) in
  (* Op bits: c.(i) = [| c1; c2; c3 |]. *)
  let c = Array.init r (fun _ -> Sat.Cnf.fresh_many f 3) in
  (* Selection variables per gate: one per operand pair (j, k), j < k. *)
  let pairs i =
    let avail = n + i in
    let acc = ref [] in
    for j = 0 to avail - 1 do
      for k = j + 1 to avail - 1 do
        acc := (j, k) :: !acc
      done
    done;
    List.rev !acc
  in
  let sel =
    Array.init r (fun i ->
        List.map (fun (j, k) -> ((j, k), Sat.Cnf.fresh f)) (pairs i))
  in
  (* Exactly one operand pair per gate. *)
  Array.iter
    (fun sl ->
      (* Commander is the historical encoding (see the config pin above):
         a different encoding would steer the model — and the chain — the
         search extracts. *)
      Sat.Cnf.exactly_one ~encoding:Sat.Cnf.Commander f (List.map snd sl))
    sel;
  (* Forbid vacuous gate functions: 000 (const), 011 (= a), 101 (= b). *)
  Array.iter
    (fun ci ->
      Sat.Cnf.add_clause f [ ci.(0); ci.(1); ci.(2) ];
      Sat.Cnf.add_clause f [ ci.(0); -ci.(1); -ci.(2) ];
      Sat.Cnf.add_clause f [ -ci.(0); ci.(1); -ci.(2) ])
    c;
  (* Operand value at row [t] (1-based): either a known constant (inputs)
     or a gate output literal. *)
  let operand_value j t =
    if j < n then `Const ((t lsr j) land 1 = 1)
    else `Lit x.(j - n).(t - 1)
  in
  (* Gate semantics under each selection. *)
  for i = 0 to r - 1 do
    List.iter
      (fun ((j, k), s) ->
        for t = 1 to rows do
          let a = operand_value j t and b = operand_value k t in
          (* For each input pattern (alpha, beta), the premise
             s & (a = alpha) & (b = beta) forces x = f(alpha, beta). *)
          List.iter
            (fun (alpha, beta, fval) ->
              let premise = ref [ -s ] in
              let feasible = ref true in
              (match a with
              | `Const v -> if v <> alpha then feasible := false
              | `Lit l -> premise := (if alpha then -l else l) :: !premise);
              (match b with
              | `Const v -> if v <> beta then feasible := false
              | `Lit l -> premise := (if beta then -l else l) :: !premise);
              if !feasible then begin
                let xl = x.(i).(t - 1) in
                match fval with
                | `False -> Sat.Cnf.add_clause f (-xl :: !premise)
                | `Var cv ->
                    Sat.Cnf.add_clause f (-xl :: cv :: !premise);
                    Sat.Cnf.add_clause f (xl :: -cv :: !premise)
              end)
            [
              (false, false, `False);
              (false, true, `Var c.(i).(0));
              (true, false, `Var c.(i).(1));
              (true, true, `Var c.(i).(2));
            ]
        done)
      sel.(i)
  done;
  (* Every gate but the last must feed a later gate. *)
  for i = 0 to r - 2 do
    let users =
      List.concat
        (List.init (r - 1 - i) (fun d ->
             let i' = i + 1 + d in
             List.filter_map
               (fun ((j, k), s) ->
                 if j = n + i || k = n + i then Some s else None)
               sel.(i')))
    in
    Sat.Cnf.add_clause f users
  done;
  (* The last gate computes the target. *)
  for t = 1 to rows do
    let lit = x.(r - 1).(t - 1) in
    Sat.Cnf.add_clause f [ (if Truth_table.get_bit g t then lit else -lit) ]
  done;
  let solver = Sat.Cnf.solver f in
  match Sat.Solver.solve solver with
  (* Unbudgeted solve: [Unknown] cannot occur, but treat it like a
     refutation (try the next circuit size) rather than crash. *)
  | Sat.Solver.Unsat | Sat.Solver.Unknown _ -> None
  | Sat.Solver.Sat ->
      let steps =
        Array.init r (fun i ->
            let (j, k), _ =
              List.find (fun (_, s) -> Sat.Solver.value solver s) sel.(i)
            in
            let bit b = if Sat.Solver.value solver c.(i).(b) then 1 else 0 in
            let op = (bit 0 lsl 2) lor (bit 1 lsl 1) lor bit 2 in
            { op; fanin1 = j; fanin2 = k })
      in
      Some steps

let synthesize ?(max_gates = 8) g =
  let n = Truth_table.num_vars g in
  if n > 4 then invalid_arg "Exact_synth.synthesize: arity > 4";
  (* Normalize to a normal function (value 0 on the all-zero input). *)
  let negate = Truth_table.get_bit g 0 in
  let g0 = if negate then Truth_table.lnot g else g in
  if Truth_table.is_const0 g0 then
    Some { arity = n; steps = [||]; output = -1; output_complement = negate }
  else
    (* Projection? *)
    let projection =
      let rec find i =
        if i >= n then None
        else if Truth_table.equal g0 (Truth_table.var n i) then Some i
        else find (i + 1)
      in
      find 0
    in
    match projection with
    | Some i ->
        Some
          { arity = n; steps = [||]; output = i; output_complement = negate }
    | None ->
        let rec try_sizes r =
          if r > max_gates then None
          else
            match try_size g0 r with
            | Some steps ->
                Some
                  {
                    arity = n;
                    steps;
                    output = n + r - 1;
                    output_complement = negate;
                  }
            | None -> try_sizes (r + 1)
        in
        try_sizes 1
