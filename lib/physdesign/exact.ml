module Coord = Hexlib.Coord
module D = Hexlib.Direction
module GL = Layout.Gate_layout

type config = {
  max_extra_width : int;
  max_extra_height : int;
  conflict_budget : int option;
  max_rounds : int;
  max_open_instances : int;
  certify : bool;
  legacy_encoding : bool;
  symmetry_breaking : bool;
  jobs : int option;
  portfolio : int option;
}

let default_config =
  {
    max_extra_width = 6;
    max_extra_height = 12;
    conflict_budget = None;
    max_rounds = 8;
    max_open_instances = 8;
    certify = false;
    legacy_encoding = false;
    symmetry_breaking = true;
    jobs = None;
    portfolio = None;
  }

type result = {
  layout : GL.t;
  width : int;
  height : int;
  attempts : int;
  rounds : int;
  budget_exhausted : bool;
  certified_refutations : int;
  stats : Sat.Solver.stats;
}

type failure =
  | No_layout of { attempts : int; message : string }
  | Out_of_budget of {
      reason : Sat.Budget.reason;
      attempts : int;
      rounds : int;
      message : string;
    }
  | Certification_failed of { width : int; height : int; message : string }

let failure_message = function
  | No_layout { message; _ }
  | Out_of_budget { message; _ }
  | Certification_failed { message; _ } ->
      message

(* Allowed rows per node kind: pads on the borders, logic in between. *)
let allowed_row netlist node ~height row =
  match Netlist.kind netlist node with
  | Netlist.N_pi _ -> row = 0
  | Netlist.N_po _ -> row = height - 1
  | Netlist.N_gate _ | Netlist.N_fanout -> row >= 1 && row <= height - 2

(* The two southward neighbors of a tile (hexagonal, odd-r). *)
let successors ~width ~height (c : Coord.offset) =
  List.filter_map
    (fun d ->
      let n = D.neighbor_offset c d in
      if n.Coord.col >= 0 && n.Coord.col < width && n.Coord.row < height then
        Some (d, n)
      else None)
    [ D.South_west; D.South_east ]

let predecessors ~width (c : Coord.offset) =
  List.filter_map
    (fun d ->
      let n = D.neighbor_offset c d in
      if n.Coord.col >= 0 && n.Coord.col < width && n.Coord.row >= 0 then
        Some (d, n)
      else None)
    [ D.North_west; D.North_east ]

(* One candidate size as a resumable SAT instance: the encoding is built
   once, and [Unknown] solves can be resumed with a larger budget while
   keeping every learned clause. *)
(* A candidate is solved either by the single incremental solver the
   CNF was built into, or by a {!Sat.Portfolio} racing diversified
   configurations over a preprocessed copy of the same clauses.  Both
   engines are resumable and certify against the same original CNF. *)
type engine = Single of Sat.Solver.t | Portfolio of Sat.Portfolio.t

type instance = {
  engine : engine;
  cnf : Sat.Cnf.t;
  decode : unit -> GL.t;
}

let engine_solve ?budget = function
  | Single s -> Sat.Solver.solve ?budget s
  | Portfolio p -> Sat.Portfolio.solve ?budget p

let engine_value e l =
  match e with
  | Single s -> Sat.Solver.value s l
  | Portfolio p -> Sat.Portfolio.value p l

let engine_stats = function
  | Single s -> Sat.Solver.stats s
  | Portfolio p -> Sat.Portfolio.stats p

let engine_proof = function
  | Single s -> Sat.Solver.proof s
  | Portfolio p -> Sat.Portfolio.proof p

let make_instance ?(certify = false) ?(legacy_encoding = false)
    ?(symmetry = true) ?(blocked = fun _ -> false) ?portfolio ~width ~height
    netlist =
  let nn = Netlist.num_nodes netlist in
  let edges = Netlist.edges netlist in
  let ne = Array.length edges in
  let f = Sat.Cnf.create () in
  if certify then Sat.Solver.enable_proof (Sat.Cnf.solver f);
  (* Cardinality encodings: the sequential counter produces only binary
     clauses for the long one-hot chains (placement rows, per-tile
     exclusivity), which the solver's binary implication lists propagate
     without touching clause memory.  [legacy_encoding] reproduces the
     pre-overhaul choice (pairwise up to 6 literals, commander groups
     beyond) for in-tree benchmarking. *)
  let one_hot_enc =
    if legacy_encoding then Sat.Cnf.Commander else Sat.Cnf.Sequential
  in
  let amo_enc = if legacy_encoding then Sat.Cnf.Commander else Sat.Cnf.Auto in
  let tile_index (c : Coord.offset) = (c.row * width) + c.col in
  let tiles =
    List.concat
      (List.init height (fun row ->
           List.init width (fun col : Coord.offset -> { col; row })))
  in
  (* Placement variables (0 where disallowed). *)
  let pos = Array.make_matrix nn (width * height) 0 in
  for n = 0 to nn - 1 do
    List.iter
      (fun (c : Coord.offset) ->
        if allowed_row netlist n ~height c.row then
          pos.(n).(tile_index c) <- Sat.Cnf.fresh f)
      tiles
  done;
  (* Connection variables: conn.(e).(tile_index p) gives the literals for
     the up-to-two southward adjacencies of p. *)
  let conn = Array.init ne (fun _ -> Array.make (width * height) []) in
  for e = 0 to ne - 1 do
    List.iter
      (fun (p : Coord.offset) ->
        if p.row < height - 1 then
          conn.(e).(tile_index p) <-
            List.map
              (fun (d, t) -> (d, t, Sat.Cnf.fresh f))
              (successors ~width ~height p))
      tiles
  done;
  (* Blocked tiles (surface defects): placement and connection
     variables touching a blocked tile are forced off by unit clauses.
     Units are original problem clauses, so DRAT certification of
     refutations is untouched; and because they only remove assignments,
     the first satisfiable candidate size is still the minimum area
     {e on this surface}. *)
  let blocked_tiles = List.filter blocked tiles in
  if blocked_tiles <> [] then begin
    List.iter
      (fun (c : Coord.offset) ->
        for n = 0 to nn - 1 do
          let v = pos.(n).(tile_index c) in
          if v <> 0 then Sat.Cnf.add_clause f [ -v ]
        done)
      blocked_tiles;
    for e = 0 to ne - 1 do
      List.iter
        (fun (p : Coord.offset) ->
          List.iter
            (fun (_, t, l) ->
              if blocked p || blocked t then Sat.Cnf.add_clause f [ -l ])
            conn.(e).(tile_index p))
        tiles
    done
  end;
  (* A blocked tile breaks the horizontal mirror automorphism the
     symmetry-breaking constraint relies on (its mirror image may be
     free), so the constraint must be dropped on dirty grids. *)
  let symmetry = symmetry && blocked_tiles = [] in
  let conn_out e p = List.map (fun (_, _, l) -> l) conn.(e).(tile_index p) in
  let conn_into e (t : Coord.offset) =
    List.filter_map
      (fun (_, p) ->
        List.find_map
          (fun (_, t', l) -> if Coord.equal_offset t' t then Some l else None)
          conn.(e).(tile_index p))
      (predecessors ~width t)
  in
  (* 1. One position per node. *)
  for n = 0 to nn - 1 do
    let vars =
      List.filter_map
        (fun c ->
          let v = pos.(n).(tile_index c) in
          if v = 0 then None else Some v)
        tiles
    in
    if vars = [] then Sat.Cnf.add_clause f [] (* unplaceable: unsat *)
    else Sat.Cnf.exactly_one ~encoding:one_hot_enc f vars
  done;
  (* 2. At most one node per tile. *)
  List.iter
    (fun c ->
      let vars =
        List.filter_map
          (fun n ->
            let v = pos.(n).(tile_index c) in
            if v = 0 then None else Some v)
          (List.init nn (fun i -> i))
      in
      Sat.Cnf.at_most_one ~encoding:one_hot_enc f vars)
    tiles;
  (* Tile-occupied auxiliaries (for purity constraints). *)
  let occupied =
    List.map
      (fun c ->
        let vars =
          List.filter_map
            (fun n ->
              let v = pos.(n).(tile_index c) in
              if v = 0 then None else Some v)
            (List.init nn (fun i -> i))
        in
        (tile_index c, Sat.Cnf.or_list f vars))
      tiles
  in
  let occupied = Array.of_list (List.map snd (List.sort compare occupied)) in
  (* 3. Border capacity: one edge per adjacency. *)
  List.iter
    (fun (p : Coord.offset) ->
      if p.row < height - 1 then
        List.iter
          (fun (d, _) ->
            let users =
              List.filter_map
                (fun e ->
                  List.find_map
                    (fun (d', _, l) -> if D.equal d d' then Some l else None)
                    conn.(e).(tile_index p))
                (List.init ne (fun i -> i))
            in
            Sat.Cnf.at_most_one ~encoding:amo_enc f users)
          (successors ~width ~height p))
    tiles;
  (* 4./5. Per edge: at most one departure per tile and one arrival per
     tile. *)
  for e = 0 to ne - 1 do
    List.iter
      (fun p ->
        match conn_out e p with
        | [ l1; l2 ] -> Sat.Cnf.add_clause f [ -l1; -l2 ]
        | _ -> ())
      tiles;
    List.iter
      (fun t ->
        match conn_into e t with
        | [ l1; l2 ] -> Sat.Cnf.add_clause f [ -l1; -l2 ]
        | _ -> ())
      tiles
  done;
  (* 6./7. Path connectivity. *)
  for e = 0 to ne - 1 do
    let u = edges.(e).Netlist.src and v = edges.(e).Netlist.dst in
    List.iter
      (fun (p : Coord.offset) ->
        (* Start: a node placed at p with this out-edge must emit it. *)
        let pu = pos.(u).(tile_index p) in
        if pu <> 0 then
          Sat.Cnf.add_clause f (-pu :: conn_out e p);
        let pv = pos.(v).(tile_index p) in
        if pv <> 0 then Sat.Cnf.add_clause f (-pv :: conn_into e p);
        (* Chaining. *)
        List.iter
          (fun (_, t, l) ->
            (* Upward: the edge at (p -> t) originates at u or continues
               an incoming segment at p. *)
            let up = if pu <> 0 then [ pu ] else [] in
            Sat.Cnf.add_clause f ((-l :: up) @ conn_into e p);
            (* Downward: it terminates at v on t or continues below. *)
            let down =
              let pvt = pos.(v).(tile_index t) in
              if pvt <> 0 then [ pvt ] else []
            in
            Sat.Cnf.add_clause f ((-l :: down) @ conn_out e t);
            (* Purity: occupied tiles are endpoints, not feedthroughs. *)
            let at_p = if pu <> 0 then [ pu ] else [] in
            Sat.Cnf.add_clause f ((-l :: -occupied.(tile_index p) :: at_p));
            let at_t =
              let pvt = pos.(v).(tile_index t) in
              if pvt <> 0 then [ pvt ] else []
            in
            Sat.Cnf.add_clause f ((-l :: -occupied.(tile_index t) :: at_t)))
          conn.(e).(tile_index p))
      tiles
  done;
  (* Wires cannot live on the border rows: connections touching row 0 or
     row height-1 must be node endpoints there. *)
  for e = 0 to ne - 1 do
    let u = edges.(e).Netlist.src and v = edges.(e).Netlist.dst in
    List.iter
      (fun (p : Coord.offset) ->
        List.iter
          (fun (_, t, l) ->
            if p.row = 0 then begin
              let pu = pos.(u).(tile_index p) in
              if pu <> 0 then Sat.Cnf.add_clause f [ -l; pu ]
              else Sat.Cnf.add_clause f [ -l ]
            end;
            if t.Coord.row = height - 1 then begin
              let pv = pos.(v).(tile_index t) in
              if pv <> 0 then Sat.Cnf.add_clause f [ -l; pv ]
              else Sat.Cnf.add_clause f [ -l ]
            end)
          conn.(e).(tile_index p))
      tiles
  done;
  (* Conditional horizontal mirror-symmetry breaking.  On the odd-r
     hexagonal grid the column mirror σ(c, r) = (width-1-c - (r land 1), r)
     swaps the SW/SE successor relation, but it maps odd-row column
     width-1 off the grid: σ is an automorphism only of the subgrid
     excluding those cells.  The constraint is therefore guarded: either
     the layout touches an excluded cell (auxiliary [u] true), or it is
     confined to the mirror-closed subgrid — in which case its σ-image
     is also a valid layout, so the first input pad may canonically be
     required to sit in the left half of the top row.  Either way no
     candidate size changes satisfiability, so minimum-area results are
     unaffected. *)
  if symmetry && width >= 2 then begin
    let first_pi =
      let rec go n =
        if n >= nn then None
        else
          match Netlist.kind netlist n with
          | Netlist.N_pi _ -> Some n
          | _ -> go (n + 1)
      in
      go 0
    in
    match first_pi with
    | None -> ()
    | Some n0 ->
        let excluded (c : Coord.offset) =
          c.row land 1 = 1 && c.col = width - 1
        in
        let u_vars = ref [] in
        for n = 0 to nn - 1 do
          List.iter
            (fun (c : Coord.offset) ->
              if excluded c then begin
                let v = pos.(n).(tile_index c) in
                if v <> 0 then u_vars := v :: !u_vars
              end)
            tiles
        done;
        for e = 0 to ne - 1 do
          List.iter
            (fun (p : Coord.offset) ->
              List.iter
                (fun (_, t, l) ->
                  if excluded p || excluded t then u_vars := l :: !u_vars)
                conn.(e).(tile_index p))
            tiles
        done;
        let guard =
          match !u_vars with [] -> [] | vs -> [ Sat.Cnf.or_list f vs ]
        in
        let mid = (width - 1) / 2 in
        List.iter
          (fun (c : Coord.offset) ->
            if c.row = 0 && c.col > mid then begin
              let v = pos.(n0).(tile_index c) in
              if v <> 0 then Sat.Cnf.add_clause f (guard @ [ -v ])
            end)
          tiles
  end;
  let engine =
    let k =
      match portfolio with Some k -> k | None -> Sat.Portfolio.default_k ()
    in
    if k > 1 then
      Portfolio
        (Sat.Portfolio.create ~k ~certify ~nvars:(Sat.Cnf.num_vars f)
           (Sat.Cnf.clauses f))
    else Single (Sat.Cnf.solver f)
  in
  let decode () =
      let value l = engine_value engine l in
      let node_tile = Array.make nn None in
      for n = 0 to nn - 1 do
        List.iter
          (fun c ->
            let v = pos.(n).(tile_index c) in
            if v <> 0 && value v then node_tile.(n) <- Some c)
          tiles
      done;
      let layout =
        GL.create ~width ~height ~clocking:(GL.Scheme Layout.Clocking.Row)
      in
      (* Wire segments per tile: (edge, in_dir, out_dir). *)
      let wire_segments : (int, (D.t * D.t) list) Hashtbl.t =
        Hashtbl.create 64
      in
      (* Arrival border of each edge at its target and departure border
         at its source. *)
      let arrival = Array.make ne None and departure = Array.make ne None in
      for e = 0 to ne - 1 do
        let v = edges.(e).Netlist.dst in
        let v_tile =
          match node_tile.(v) with Some c -> c | None -> assert false
        in
        (* Walk the connection chain from the source. *)
        let u = edges.(e).Netlist.src in
        let u_tile =
          match node_tile.(u) with Some c -> c | None -> assert false
        in
        let rec walk (p : Coord.offset) in_dir_opt =
          (* Find the active outgoing connection at p. *)
          match
            List.find_opt (fun (_, _, l) -> value l) conn.(e).(tile_index p)
          with
          | None ->
              (* Must already be at the target. *)
              assert (Coord.equal_offset p v_tile)
          | Some (d, t, _) ->
              (match in_dir_opt with
              | None -> departure.(e) <- Some d
              | Some in_dir ->
                  (* p is a wire tile for e. *)
                  let existing =
                    Option.value ~default:[]
                      (Hashtbl.find_opt wire_segments (tile_index p))
                  in
                  Hashtbl.replace wire_segments (tile_index p)
                    ((in_dir, d) :: existing));
              if Coord.equal_offset t v_tile then
                arrival.(e) <- Some (D.opposite d)
              else walk t (Some (D.opposite d))
        in
        walk u_tile None
      done;
      (* Materialize node tiles. *)
      for n = 0 to nn - 1 do
        let c = match node_tile.(n) with Some c -> c | None -> assert false in
        let in_dirs =
          List.map
            (fun e ->
              match arrival.(e) with Some d -> d | None -> assert false)
            (Netlist.in_edges netlist n)
        and out_dirs =
          List.map
            (fun e ->
              match departure.(e) with Some d -> d | None -> assert false)
            (Netlist.out_edges netlist n)
        in
        let tile =
          match Netlist.kind netlist n with
          | Netlist.N_pi name -> Layout.Tile.Pi { name; out = List.hd out_dirs }
          | Netlist.N_po name -> Layout.Tile.Po { name; inp = List.hd in_dirs }
          | Netlist.N_gate fn -> Layout.Tile.Gate { fn; ins = in_dirs; outs = out_dirs }
          | Netlist.N_fanout ->
              Layout.Tile.Fanout { inp = List.hd in_dirs; outs = out_dirs }
        in
        GL.set layout c tile
      done;
      (* Materialize wire tiles. *)
      Hashtbl.iter
        (fun idx segments ->
          let c : Coord.offset = { col = idx mod width; row = idx / width } in
          GL.set layout c (Layout.Tile.Wire { segments }))
        wire_segments;
      layout
  in
  { engine; cnf = f; decode }

let solve_fixed ?budget ?blocked ~width ~height netlist =
  let inst = make_instance ?blocked ~width ~height netlist in
  match engine_solve ?budget inst.engine with
  | Sat.Solver.Sat -> Some (inst.decode ())
  | Sat.Solver.Unsat | Sat.Solver.Unknown _ -> None

(* --- budget-escalated search over candidate sizes ---------------------

   Candidate dimensions are visited in order of increasing tile area.
   Without any budget this degenerates to the classic sequence of
   complete solves (first Sat is the minimum-area layout).  Under a
   budget, every candidate gets a Luby-scaled conflict allowance per
   round; [Unknown] candidates stay open (their instance and learned
   clauses are kept) and are resumed in the next round with a larger
   allowance, until one is satisfiable, all are refuted, or the budget
   runs dry. *)

type cand = { w : int; h : int; mutable state : cand_state }
and cand_state = Unbuilt | Open of instance | Refuted

(* Luby sequence 1 1 2 1 1 2 4 ... — the classic restart-style
   escalation schedule, here applied to per-candidate conflict
   allowances across retry rounds. *)
let luby_allowance x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let place_and_route ?(config = default_config) ?(budget = Sat.Budget.unlimited)
    ?blocked netlist =
  let jobs =
    match config.jobs with
    | Some j -> max 1 j
    | None -> Parallel.Pool.default_jobs ()
  in
  let min_w = Netlist.min_width netlist
  and min_h = Netlist.min_height netlist in
  let sorted = ref [] in
  for w = min_w to min_w + config.max_extra_width do
    for h = min_h to min_h + config.max_extra_height do
      sorted := (w * h, h, w) :: !sorted
    done
  done;
  let candidates =
    List.map
      (fun (_, h, w) -> { w; h; state = Unbuilt })
      (List.sort compare !sorted)
  in
  let bounds_msg =
    Printf.sprintf "%dx%d..%dx%d" min_w min_h
      (min_w + config.max_extra_width)
      (min_h + config.max_extra_height)
  in
  (* Conflict-allowance base per candidate and round: an explicit
     per-instance budget wins; otherwise a deadline- or globally-
     budgeted run escalates from a small default, and a fully
     unbudgeted run solves each candidate to completion. *)
  let base =
    match config.conflict_budget with
    | Some b -> Some (max 1 b)
    | None ->
        if budget.Sat.Budget.conflicts <> None
           || budget.Sat.Budget.deadline <> None
        then Some 4000
        else None
  in
  let attempts = ref 0 in
  let certified = ref 0 in
  let closed_stats = ref Sat.Solver.empty_stats in
  (* Conflicts spent by this call, against [budget.conflicts]. *)
  let spent = ref 0 in
  let total_stats () =
    List.fold_left
      (fun acc c ->
        match c.state with
        | Open inst -> Sat.Solver.add_stats acc (engine_stats inst.engine)
        | Unbuilt | Refuted -> acc)
      !closed_stats candidates
  in
  let out_of_budget reason rounds =
    Error
      (Out_of_budget
         {
           reason;
           attempts = !attempts;
           rounds;
           message =
             Printf.sprintf
               "exact P&R ran out of budget (%s) within %s after %d attempt(s) over %d round(s)"
               (Sat.Budget.reason_to_string reason)
               bounds_msg !attempts rounds;
         })
  in
  let solved c inst round =
    let layout = inst.decode () in
    (* Minimality holds only when every smaller-area candidate was
       refuted before this one was found satisfiable. *)
    let minimal =
      List.for_all
        (fun c' ->
          c' == c
          || c'.w * c'.h > c.w * c.h
          || match c'.state with Refuted -> true | Unbuilt | Open _ -> false)
        candidates
    in
    Ok
      {
        layout;
        width = c.w;
        height = c.h;
        attempts = !attempts;
        rounds = round + 1;
        budget_exhausted = not minimal;
        certified_refutations = !certified;
        stats = total_stats ();
      }
  in
  let exception Done of (result, failure) Stdlib.result in
  (* With [config.certify], every per-candidate refutation must be
     backed by a checker-accepted DRAT proof before the candidate may be
     excluded — otherwise the "first satisfiable size is area-minimal"
     claim rests on an unchecked solver answer. *)
  let certify_refutation c inst =
    if config.certify then begin
      let proof = engine_proof inst.engine in
      match
        Sat.Drat.check
          ~nvars:(Sat.Cnf.num_vars inst.cnf)
          ~clauses:(Sat.Cnf.clauses inst.cnf)
          proof
      with
      | Sat.Drat.Valid -> incr certified
      | Sat.Drat.Invalid _ as r ->
          raise
            (Done
               (Error
                  (Certification_failed
                     {
                       width = c.w;
                       height = c.h;
                       message =
                         Format.asprintf
                           "UNSAT proof for candidate %dx%d rejected: %a"
                           c.w c.h Sat.Drat.pp_result r;
                     })))
    end
  in
  try
    let round = ref 0 in
    let unresolved = ref true in
    while !unresolved do
      (* The round cap keeps a per-instance-conflict-budget-only run
         finite (the old skip-on-exhaust semantics); deadline- or
         globally-budgeted runs terminate through the budget itself. *)
      if
        config.conflict_budget <> None
        && Sat.Budget.is_unlimited budget
        && !round >= config.max_rounds
      then raise (Done (out_of_budget Sat.Budget.Conflicts !round));
      unresolved := false;
      let open_count =
        ref
          (List.length
             (List.filter
                (fun c -> match c.state with Open _ -> true | _ -> false)
                candidates))
      in
      let build c =
        let inst =
          make_instance ~certify:config.certify
            ~legacy_encoding:config.legacy_encoding
            ~symmetry:config.symmetry_breaking ?blocked
            ?portfolio:config.portfolio ~width:c.w ~height:c.h netlist
        in
        c.state <- Open inst;
        inst
      in
      if jobs <= 1 then
        (* Serial path: unchanged candidate-by-candidate escalation with
           early exit on the first (smallest-area) satisfiable size. *)
        List.iter
          (fun c ->
            match c.state with
            | Refuted -> ()
            | Unbuilt when !open_count >= config.max_open_instances ->
                (* Defer far-out candidates until the escalation window
                   advances, bounding memory. *)
                unresolved := true
            | (Unbuilt | Open _) as st -> (
                (match Sat.Budget.check budget with
                | Some r -> raise (Done (out_of_budget r !round))
                | None -> ());
                let remaining_global =
                  Option.map
                    (fun g -> g - !spent)
                    budget.Sat.Budget.conflicts
                in
                (match remaining_global with
                | Some r when r <= 0 ->
                    raise (Done (out_of_budget Sat.Budget.Conflicts !round))
                | Some _ | None -> ());
                let inst =
                  match st with
                  | Open inst -> inst
                  | _ ->
                      let inst = build c in
                      incr open_count;
                      inst
                in
                let allowance =
                  match (base, remaining_global) with
                  | None, g -> g
                  | Some b, None -> Some (b * luby_allowance !round)
                  | Some b, Some g -> Some (min (b * luby_allowance !round) g)
                in
                let before = (engine_stats inst.engine).Sat.Solver.conflicts in
                incr attempts;
                let verdict =
                  engine_solve
                    ~budget:{ budget with Sat.Budget.conflicts = allowance }
                    inst.engine
                in
                spent :=
                  !spent
                  + (engine_stats inst.engine).Sat.Solver.conflicts
                  - before;
                match verdict with
                | Sat.Solver.Sat -> raise (Done (solved c inst !round))
                | Sat.Solver.Unsat ->
                    certify_refutation c inst;
                    closed_stats :=
                      Sat.Solver.add_stats !closed_stats
                        (engine_stats inst.engine);
                    c.state <- Refuted;
                    decr open_count
                | Sat.Solver.Unknown Sat.Budget.Conflicts ->
                    unresolved := true
                | Sat.Solver.Unknown (Sat.Budget.Deadline as r)
                | Sat.Solver.Unknown (Sat.Budget.Cancelled as r) ->
                    raise (Done (out_of_budget r !round))))
          candidates
      else begin
        (* Parallel path: the actionable candidates of this round are
           solved concurrently in waves of [jobs] on the shared domain
           pool.  Each wave's conflict allowance is fixed before launch
           and results are processed in candidate (area) order after the
           wave completes, so the smallest satisfiable area wins
           regardless of completion order. *)
        let actionable =
          List.filter
            (fun c ->
              match c.state with
              | Refuted -> false
              | Open _ -> true
              | Unbuilt ->
                  if !open_count >= config.max_open_instances then begin
                    unresolved := true;
                    false
                  end
                  else begin
                    incr open_count;
                    true
                  end)
            candidates
        in
        let arr = Array.of_list actionable in
        let nw = Array.length arr in
        let wi = ref 0 in
        while !wi < nw do
          let wave_n = min jobs (nw - !wi) in
          (match Sat.Budget.check budget with
          | Some r -> raise (Done (out_of_budget r !round))
          | None -> ());
          let remaining_global =
            Option.map (fun g -> g - !spent) budget.Sat.Budget.conflicts
          in
          (match remaining_global with
          | Some r when r <= 0 ->
              raise (Done (out_of_budget Sat.Budget.Conflicts !round))
          | Some _ | None -> ());
          let insts =
            Array.init wave_n (fun k ->
                let c = arr.(!wi + k) in
                match c.state with
                | Open inst -> (c, inst)
                | Unbuilt -> (c, build c)
                | Refuted -> assert false)
          in
          let allowance =
            match (base, remaining_global) with
            | None, g -> g
            | Some b, None -> Some (b * luby_allowance !round)
            | Some b, Some g -> Some (min (b * luby_allowance !round) g)
          in
          let results =
            Parallel.Pool.map ~jobs wave_n (fun k ->
                let _, inst = insts.(k) in
                let before =
                  (engine_stats inst.engine).Sat.Solver.conflicts
                in
                let verdict =
                  engine_solve
                    ~budget:{ budget with Sat.Budget.conflicts = allowance }
                    inst.engine
                in
                let after =
                  (engine_stats inst.engine).Sat.Solver.conflicts
                in
                (verdict, after - before))
          in
          attempts := !attempts + wave_n;
          Array.iter (fun (_, delta) -> spent := !spent + delta) results;
          Array.iteri
            (fun k (verdict, _) ->
              let c, inst = insts.(k) in
              match verdict with
              | Sat.Solver.Sat -> raise (Done (solved c inst !round))
              | Sat.Solver.Unsat ->
                  certify_refutation c inst;
                  closed_stats :=
                    Sat.Solver.add_stats !closed_stats
                      (engine_stats inst.engine);
                  c.state <- Refuted
              | Sat.Solver.Unknown Sat.Budget.Conflicts -> unresolved := true
              | Sat.Solver.Unknown (Sat.Budget.Deadline as r)
              | Sat.Solver.Unknown (Sat.Budget.Cancelled as r) ->
                  raise (Done (out_of_budget r !round)))
            results;
          wi := !wi + wave_n
        done
      end;
      incr round
    done;
    Error
      (No_layout
         {
           attempts = !attempts;
           message =
             Printf.sprintf "no layout within %s (%d candidates refuted)"
               bounds_msg !attempts;
         })
  with Done r -> r
