(** Exact physical design: SAT-based placement & routing on hexagonal
    layouts (flow step 4), adapting the formulation of [46] to the
    hexagonal topology, the Bestagon tile set, and row-based clocking.

    For a candidate layout size the whole P&R problem is encoded as one
    SAT instance over the {!Sat.Solver} substrate:

    - one-hot placement variables per netlist node (input pads on the top
      row, output pads on the bottom row, logic in between);
    - connection variables per edge and per pair of vertically adjacent
      tiles; border capacity (one signal per tile border), wire capacity
      (two signals per tile — realized as the double-wire or crossing
      Bestagon tile) and path connectivity are all clauses over these;
    - row-based clocking makes every downward step legal and balances all
      signal paths by construction (throughput 1/1, cf. Sec. 5).

    Candidate dimensions are tried in order of increasing tile area, so
    the first satisfiable instance yields a minimum-area layout within
    the search bounds.

    {2 Budgets and escalation}

    The whole search runs under a {!Sat.Budget}: per round, every open
    candidate receives a Luby-scaled conflict allowance; an interrupted
    ([Unknown]) candidate keeps its incremental SAT instance and is
    resumed with a larger allowance in the next round.  The search ends
    with a layout, a proof that none exists within the bounds, or a
    structured {!failure} naming the exhausted resource — it never
    raises on budget conditions. *)

type config = {
  max_extra_width : int;  (** Search bound above the trivial lower bound (default 6). *)
  max_extra_height : int;  (** Default 12. *)
  conflict_budget : int option;
      (** Base per-candidate conflict allowance per escalation round
          (sacrificing the minimality guarantee when it trips).  Default
          [None]: complete solves unless an external budget imposes a
          default escalation base. *)
  max_rounds : int;
      (** Escalation-round cap when {e only} [conflict_budget] bounds the
          search (keeps it finite); deadline-/globally-budgeted runs
          terminate through the budget itself.  Default 8. *)
  max_open_instances : int;
      (** Maximum simultaneously kept incremental SAT instances; further
          candidate sizes are deferred until the window advances.
          Default 8. *)
  certify : bool;
      (** Log a DRAT proof per candidate instance and verify every UNSAT
          refutation with the independent {!Sat.Drat} checker before the
          candidate size is excluded — the minimality claim then rests
          only on checked proofs.  A rejected proof aborts the search
          with {!Certification_failed}.  Default [false]. *)
  legacy_encoding : bool;
      (** Use the pre-overhaul cardinality encodings (pairwise up to 6
          literals, commander groups beyond) instead of the compact
          sequential-counter one-hot encodings.  Kept in-tree for the
          [bench sat] old-vs-new comparison.  Default [false]. *)
  symmetry_breaking : bool;
      (** Add guarded horizontal mirror-symmetry breaking clauses on the
          placement variables.  The guard keeps the constraint sound on
          the odd-r hexagonal grid (where a plain column mirror is not a
          grid automorphism), so candidate satisfiability — and hence the
          minimum-area result — is never changed.  Default [true]. *)
  jobs : int option;
      (** Worker count for solving the open candidate instances of one
          escalation round concurrently on {!Parallel.Pool}.  [None]
          (default) follows {!Parallel.Pool.default_jobs}; [Some 1]
          forces the unchanged serial path.  The outcome is
          deterministic: results are committed in candidate-area order,
          so the smallest satisfiable area wins at any worker count. *)
  portfolio : int option;
      (** Width of the {!Sat.Portfolio} racing each candidate instance.
          [None] (default) follows {!Sat.Portfolio.default_k};
          [Some 1] forces the plain single-solver engine.  Any width
          keeps verdicts, minimality and DRAT certification identical —
          the portfolio's proofs and models are translated back to the
          original candidate CNF. *)
}

val default_config : config

type result = {
  layout : Layout.Gate_layout.t;
  width : int;
  height : int;
  attempts : int;  (** Number of candidate solve calls. *)
  rounds : int;  (** Escalation rounds used. *)
  budget_exhausted : bool;
      (** Some smaller-area candidate was still unresolved when this
          layout was found, voiding the minimality claim. *)
  certified_refutations : int;
      (** Refuted candidate sizes whose UNSAT answer was proof-checked
          (always 0 unless [config.certify]). *)
  stats : Sat.Solver.stats;  (** Aggregated over all candidate solvers. *)
}

type failure =
  | No_layout of { attempts : int; message : string }
      (** Proved: no layout exists within the search bounds. *)
  | Out_of_budget of {
      reason : Sat.Budget.reason;
      attempts : int;
      rounds : int;
      message : string;
    }  (** The budget ran dry with candidates still unresolved. *)
  | Certification_failed of { width : int; height : int; message : string }
      (** [config.certify] only: the solver claimed UNSAT for a
          candidate size but the {!Sat.Drat} checker rejected its proof
          — the solver cannot be trusted on this run. *)

val failure_message : failure -> string

val place_and_route :
  ?config:config ->
  ?budget:Sat.Budget.t ->
  ?blocked:(Hexlib.Coord.offset -> bool) ->
  Netlist.t ->
  (result, failure) Stdlib.result
(** Place and route under row clocking.  Never raises on budget
    conditions.

    [blocked] marks surface-defect tiles (cf. [Bestagon.Surface]):
    placement and connection variables on blocked tiles are forced off
    by unit clauses, so the first satisfiable candidate size is the
    minimum area {e on that surface} and DRAT certification of
    refutations is unaffected (units are original problem clauses).
    Symmetry breaking is disabled on grids containing a blocked tile
    (the map breaks the mirror automorphism the constraint relies on).
    A map blocking every feasible placement yields the structured
    {!No_layout}/{!Out_of_budget} failure, never an exception. *)

val solve_fixed :
  ?budget:Sat.Budget.t ->
  ?blocked:(Hexlib.Coord.offset -> bool) ->
  width:int -> height:int -> Netlist.t ->
  Layout.Gate_layout.t option
(** Single candidate size (exposed for tests and ablations); [None] on
    refutation {e or} budget exhaustion. *)
