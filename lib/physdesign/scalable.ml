module Coord = Hexlib.Coord
module D = Hexlib.Direction
module GL = Layout.Gate_layout

type result = {
  layout : GL.t;
  width : int;
  height : int;
  retries : int;
}

(* Topological levels in one Kahn pass (the previous implementation
   re-swept all edges until a fixpoint, O(n * E) in the worst case). *)
let compute_levels netlist =
  let n = Netlist.num_nodes netlist in
  let lev = Array.make n 0 in
  let edges = Netlist.edges netlist in
  let indeg = Array.make n 0 in
  Array.iter
    (fun e -> indeg.(e.Netlist.dst) <- indeg.(e.Netlist.dst) + 1)
    edges;
  let order = Array.make (max 1 n) 0 in
  let tail = ref 0 in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then begin
      order.(!tail) <- i;
      incr tail
    end
  done;
  let head = ref 0 in
  while !head < !tail do
    let i = order.(!head) in
    incr head;
    List.iter
      (fun ei ->
        let dst = edges.(ei).Netlist.dst in
        if lev.(dst) < lev.(i) + 1 then lev.(dst) <- lev.(i) + 1;
        indeg.(dst) <- indeg.(dst) - 1;
        if indeg.(dst) = 0 then begin
          order.(!tail) <- dst;
          incr tail
        end)
      (Netlist.out_edges netlist i)
  done;
  (* Fan-out nodes are pure wiring: schedule them as late as possible so
     that a fan-out sits right above its consumers instead of trailing
     two long parallel wires from its driver.  One reverse-topological
     sweep suffices: a fan-out's consumers appear later in [order], so
     their final levels are already known when it is visited. *)
  for j = !tail - 1 downto 0 do
    let i = order.(j) in
    match Netlist.kind netlist i with
    | Netlist.N_fanout ->
        let slack =
          List.fold_left
            (fun acc ei -> min acc (lev.(edges.(ei).Netlist.dst) - 1))
            max_int (Netlist.out_edges netlist i)
        in
        if slack > lev.(i) && slack < max_int then lev.(i) <- slack
    | Netlist.N_pi _ | Netlist.N_po _ | Netlist.N_gate _ -> ()
  done;
  lev

(* Iterated barycenter ordering within rows. *)
let barycenter_positions netlist rows height =
  let n = Netlist.num_nodes netlist in
  let x = Array.make n 0. in
  (* Initial positions: order of appearance within each row. *)
  let counters = Array.make height 0 in
  for i = 0 to n - 1 do
    x.(i) <- float_of_int counters.(rows.(i));
    counters.(rows.(i)) <- counters.(rows.(i)) + 1
  done;
  let edges = Netlist.edges netlist in
  for _sweep = 1 to 6 do
    let sum = Array.make n 0. and cnt = Array.make n 0 in
    Array.iter
      (fun e ->
        sum.(e.Netlist.dst) <- sum.(e.Netlist.dst) +. x.(e.Netlist.src);
        cnt.(e.Netlist.dst) <- cnt.(e.Netlist.dst) + 1;
        sum.(e.Netlist.src) <- sum.(e.Netlist.src) +. x.(e.Netlist.dst);
        cnt.(e.Netlist.src) <- cnt.(e.Netlist.src) + 1)
      edges;
    for i = 0 to n - 1 do
      if cnt.(i) > 0 then
        x.(i) <- 0.5 *. (x.(i) +. (sum.(i) /. float_of_int cnt.(i)))
    done
  done;
  x

exception Routing_failed of string

let attempt ?blocked netlist ~width ~height ~stretch ~seed =
  let is_blocked =
    match blocked with None -> fun _ -> false | Some b -> b
  in
  let n = Netlist.num_nodes netlist in
  let lev = compute_levels netlist in
  let rows = Array.make n 0 in
  for i = 0 to n - 1 do
    rows.(i) <-
      (match Netlist.kind netlist i with
      | Netlist.N_pi _ -> 0
      | Netlist.N_po _ -> height - 1
      | Netlist.N_gate _ | Netlist.N_fanout ->
          (* Stretched placement: [stretch] rows per level leave every
             edge free rows for lateral routing (the hexagonal cone only
             drifts about half a column per row). *)
          min (max 1 (stretch * lev.(i))) (height - 2))
  done;
  let x = barycenter_positions netlist rows height in
  (* Columns: pack each row's nodes contiguously around the layout
     center in barycenter order.  The hexagonal routing cone drifts half
     a column per row, so compact placements keep edges short; the
     negotiated-congestion router resolves local conflicts, and the
     retry driver grows and stretches the grid when a circuit needs more
     room. *)
  let cols = Array.make n 0 in
  (* With a defect map, slide the whole layout sideways as one block:
     pick the center column whose footprint (widest row plus a
     two-column routing margin, over every grid row) covers the fewest
     blocked tiles, ties to the true center.  A global shift keeps rows
     vertically aligned — the routing cone only drifts half a column
     per row, so rows dodging the dirt independently would tear
     connected nodes further apart laterally than any stretch can
     absorb — while letting a grid grown wide enough escape the defect
     field entirely. *)
  let center =
    match blocked with
    | None -> float_of_int (width - 1) /. 2.
    | Some b ->
        let widest = ref 1 in
        Array.iter
          (fun r ->
            let k =
              List.length (List.filter (fun i -> rows.(i) = r)
                             (List.init n (fun i -> i)))
            in
            if k > !widest then widest := k)
          (Array.init height (fun r -> r));
        let per_col =
          Array.init width (fun col ->
              let s = ref 0 in
              for row = 0 to height - 1 do
                if b { Coord.col; row } then incr s
              done;
              !s)
        in
        let half = (!widest / 2) + 2 in
        let mid = (width - 1) / 2 in
        let best = ref mid and best_score = ref max_int in
        for c = 1 to width - 2 do
          let s = ref 0 in
          for col = max 0 (c - half) to min (width - 1) (c + half) do
            s := !s + per_col.(col)
          done;
          if
            !s < !best_score
            || (!s = !best_score && abs (c - mid) < abs (!best - mid))
          then begin
            best := c;
            best_score := !s
          end
        done;
        float_of_int !best
  in
  for row = 0 to height - 1 do
    let members =
      List.filter (fun i -> rows.(i) = row) (List.init n (fun i -> i))
      |> List.sort (fun a b -> compare x.(a) x.(b))
    in
    let k = List.length members in
    if k > width - 2 then raise (Routing_failed "row wider than layout");
    match blocked with
    | None ->
        let start = max 1 ((width - k) / 2) in
        List.iteri (fun idx node -> cols.(node) <- start + idx) members
    | Some b ->
        (* Defect-aware packing: pick the k unblocked columns nearest
           the layout center (ties to the left), keep them in column
           order, and assign the row's nodes to them in barycenter
           order — the defect-free case degenerates to the contiguous
           centered block above.  A column is also unusable when the
           map walls it off vertically: a node with both southward
           neighbors blocked can never emit its signal (any non-PO
           row), and one with both northward neighbors blocked can
           never receive its operands (any non-PI row) — such tiles
           are dead ends the router could only discover by failing. *)
        let walled col =
          let c : Coord.offset = { col; row } in
          let both ds =
            List.for_all
              (fun d ->
                let t = D.neighbor_offset c d in
                t.Coord.col < 0 || t.Coord.col >= width || b t)
              ds
          in
          (row < height - 1 && both [ D.South_west; D.South_east ])
          || (row > 0 && both [ D.North_west; D.North_east ])
        in
        let free =
          List.filter
            (fun col -> not (b { Coord.col; row }) && not (walled col))
            (List.init (max 0 (width - 2)) (fun i -> i + 1))
        in
        if k > List.length free then
          raise
            (Routing_failed
               (Printf.sprintf "row %d: %d node(s), %d unblocked column(s)"
                  row k (List.length free)));
        let chosen =
          free
          |> List.map (fun col ->
                 (abs_float (float_of_int col -. center), col))
          |> List.sort compare
          |> List.filteri (fun i _ -> i < k)
          |> List.map snd
          |> List.sort compare
        in
        List.iter2 (fun node col -> cols.(node) <- col) members chosen
  done;
  (* --- negotiated-congestion routing (PathFinder style) -------------
     Resources are the directed southward borders between adjacent
     tiles; each may carry one signal (which also bounds tiles to two
     wire segments, one per incoming border).  Every edge is routed by
     Dijkstra over border costs; overuse is legal during negotiation but
     increasingly expensive, until a conflict-free solution remains. *)
  let tile_index (c : Coord.offset) = (c.row * width) + c.col in
  let tile_node = Array.make (width * height) None in
  for i = 0 to n - 1 do
    let c : Coord.offset = { col = cols.(i); row = rows.(i) } in
    (match tile_node.(tile_index c) with
    | Some _ -> raise (Routing_failed "placement collision")
    | None -> ());
    tile_node.(tile_index c) <- Some i
  done;
  let num_edges = Array.length (Netlist.edges netlist) in
  let border_slot (p : Coord.offset) d =
    (2 * tile_index p) + (match d with D.South_west -> 0 | _ -> 1)
  in
  let occupancy = Array.make (width * height * 2) 0 in
  let history = Array.make (width * height * 2) 0. in
  let present_factor = ref 0.5 in
  let paths : (Coord.offset * D.t) list array = Array.make num_edges [] in
  let in_bounds (c : Coord.offset) =
    c.col >= 0 && c.col < width && c.row >= 0 && c.row < height
  in
  let rng = Random.State.make [| seed |] in
  (* Dijkstra from the source tile to the destination tile of one edge;
     intermediate tiles must be free of nodes and inside the wire rows. *)
  let dijkstra (e : Netlist.edge) =
    let src : Coord.offset = { col = cols.(e.src); row = rows.(e.src) } in
    let dst : Coord.offset = { col = cols.(e.dst); row = rows.(e.dst) } in
    let dist = Hashtbl.create 64 and pred = Hashtbl.create 64 in
    let module Pq = Set.Make (struct
      type t = float * int * int (* cost, tiebreak, tile index *)

      let compare = compare
    end) in
    let queue = ref Pq.empty in
    Hashtbl.replace dist (tile_index src) 0.;
    queue := Pq.add (0., 0, tile_index src) !queue;
    let found = ref false in
    while (not !found) && not (Pq.is_empty !queue) do
      let ((cost, _, pidx) as element) = Pq.min_elt !queue in
      queue := Pq.remove element !queue;
      if cost <= Hashtbl.find dist pidx +. 1e-12 then begin
        let p : Coord.offset = { col = pidx mod width; row = pidx / width } in
        if pidx = tile_index dst && not (Coord.equal_offset p src) then
          found := true
        else
          List.iter
            (fun d ->
              let t = D.neighbor_offset p d in
              if in_bounds t then begin
                let usable =
                  Coord.equal_offset t dst
                  || (t.row >= 1 && t.row <= height - 2
                     && tile_node.(tile_index t) = None
                     && not (is_blocked t))
                in
                if usable then begin
                  let b = border_slot p d in
                  let congestion =
                    history.(b)
                    +. (!present_factor *. float_of_int occupancy.(b))
                  in
                  let step = 1. +. congestion in
                  let next = cost +. step in
                  let better =
                    match Hashtbl.find_opt dist (tile_index t) with
                    | None -> true
                    | Some old -> next < old -. 1e-12
                  in
                  if better then begin
                    Hashtbl.replace dist (tile_index t) next;
                    Hashtbl.replace pred (tile_index t) (p, d);
                    queue :=
                      Pq.add (next, Random.State.int rng 1000000, tile_index t)
                        !queue
                  end
                end
              end)
            [ D.South_west; D.South_east ]
      end
    done;
    if not !found then
      raise
        (Routing_failed
           (Printf.sprintf "edge %d->%d unroutable (%d,%d)->(%d,%d)" e.src
              e.dst src.col src.row dst.col dst.row));
    (* Reconstruct hop list from src to dst. *)
    let rec walk acc idx =
      match Hashtbl.find_opt pred idx with
      | None -> acc
      | Some (p, d) -> walk ((p, d) :: acc) (tile_index p)
    in
    walk [] (tile_index dst)
  in
  let rip_up eid =
    List.iter
      (fun (p, d) ->
        let b = border_slot p d in
        occupancy.(b) <- occupancy.(b) - 1)
      paths.(eid);
    paths.(eid) <- []
  in
  let install eid hops =
    List.iter
      (fun (p, d) ->
        let b = border_slot p d in
        occupancy.(b) <- occupancy.(b) + 1)
      hops;
    paths.(eid) <- hops
  in
  let edges_arr = Netlist.edges netlist in
  (* Negotiation rounds. *)
  let conflict_free () =
    Array.for_all (fun o -> o <= 1) occupancy
  in
  let rounds = ref 0 in
  let max_rounds = 40 in
  (try
     while not (!rounds > 0 && conflict_free ()) do
       if !rounds >= max_rounds then
         raise (Routing_failed "congestion negotiation did not converge");
       incr rounds;
       Array.iteri
         (fun eid e ->
           rip_up eid;
           install eid (dijkstra e))
         edges_arr;
       (* Penalize overused borders and sharpen the present cost. *)
       Array.iteri
         (fun b o -> if o > 1 then history.(b) <- history.(b) +. 1.)
         occupancy;
       present_factor := !present_factor *. 1.6
     done
   with Routing_failed _ as exn -> raise exn);
  (* Decode arrivals, departures, and wire segments from the final
     paths. *)
  let segments : (D.t * D.t) list array = Array.make (width * height) [] in
  let arrival = Array.make num_edges None in
  let departure = Array.make num_edges None in
  Array.iteri
    (fun eid hops ->
      let count = List.length hops in
      List.iteri
        (fun i (p, d) ->
          if i = 0 then departure.(eid) <- Some d;
          if i = count - 1 then arrival.(eid) <- Some (D.opposite d);
          if i > 0 then begin
            (* p is a wire tile: its incoming direction is the previous
               hop's direction seen from p. *)
            let _, d_in = List.nth hops (i - 1) in
            segments.(tile_index p) <-
              segments.(tile_index p) @ [ (D.opposite d_in, d) ]
          end)
        hops)
    paths;

  (* Materialize the layout. *)
  let layout =
    GL.create ~width ~height ~clocking:(GL.Scheme Layout.Clocking.Row)
  in
  for i = 0 to n - 1 do
    let c : Coord.offset = { col = cols.(i); row = rows.(i) } in
    let in_dirs =
      List.map
        (fun e -> match arrival.(e) with Some d -> d | None -> assert false)
        (Netlist.in_edges netlist i)
    and out_dirs =
      List.map
        (fun e ->
          match departure.(e) with Some d -> d | None -> assert false)
        (Netlist.out_edges netlist i)
    in
    let tile =
      match Netlist.kind netlist i with
      | Netlist.N_pi name ->
          (* A dangling input (nothing consumes it) still gets a pad
             tile; the nominal output direction feeds no border. *)
          let out =
            match out_dirs with d :: _ -> d | [] -> D.South_east
          in
          Layout.Tile.Pi { name; out }
      | Netlist.N_po name -> Layout.Tile.Po { name; inp = List.hd in_dirs }
      | Netlist.N_gate fn ->
          Layout.Tile.Gate { fn; ins = in_dirs; outs = out_dirs }
      | Netlist.N_fanout ->
          Layout.Tile.Fanout { inp = List.hd in_dirs; outs = out_dirs }
    in
    GL.set layout c tile
  done;
  Array.iteri
    (fun idx segs ->
      if segs <> [] then
        GL.set layout
          { col = idx mod width; row = idx / width }
          (Layout.Tile.Wire { segments = segs }))
    segments;
  layout

let place_and_route ?(max_retries = 16) ?blocked netlist =
  (* Some slack over the lower bounds reduces congestion up front. *)
  (* Width must accommodate the most populous logic level at two
     columns per node, not just the pad rows. *)
  let lev = compute_levels netlist in
  let level_population = Hashtbl.create 16 in
  Array.iteri
    (fun i l ->
      match Netlist.kind netlist i with
      | Netlist.N_gate _ | Netlist.N_fanout ->
          Hashtbl.replace level_population l
            (1 + Option.value ~default:0 (Hashtbl.find_opt level_population l))
      | Netlist.N_pi _ | Netlist.N_po _ -> ())
    lev;
  let widest_level =
    Hashtbl.fold (fun _ c acc -> max c acc) level_population 0
  in
  let pad_row =
    max (List.length (Netlist.pis netlist)) (List.length (Netlist.pos netlist))
  in
  let base_w = max (pad_row + 2) (widest_level + 3)
  and base_h = (2 * Netlist.min_height netlist) - 1 in
  (* A defect-aware layout stays pinned to the absolute lattice frame
     (tile (0,0) at the lattice origin) so the defect map keeps meaning
     downstream — cropping would shift tiles onto different surface
     regions.  Defect-oblivious results are cropped as before. *)
  let finalize layout =
    match blocked with None -> GL.crop layout | Some _ -> layout
  in
  let rec go retry errors =
    if retry > max_retries then
      Error
        (Printf.sprintf "scalable P&R failed after %d retries: %s"
           max_retries (String.concat " | " (List.rev errors)))
    else
      (* Alternate between re-seeding the router, growing the grid, and
         stretching rows (spaced columns need about three rows per level
         of lateral drift).  On a defective surface grow every retry and
         stretch twice as fast: blocked columns consume grid capacity
         and displace the packing laterally, so routes need both the
         clean region past the defect field (width) and extra wire rows
         per level of lateral drift (stretch) — neither is reachable by
         re-seeding alone. *)
      let grow = match blocked with None -> retry / 3 | Some _ -> retry in
      let stretch =
        2 + (match blocked with None -> retry / 6 | Some _ -> retry / 3)
      in
      let width = base_w + grow
      and height = ((stretch * (base_h + 1)) / 2) + grow in
      match
        attempt ?blocked netlist ~width ~height ~stretch ~seed:(retry * 7919)
      with
      | layout -> Ok { layout = finalize layout; width; height; retries = retry }
      | exception Routing_failed msg ->
          go (retry + 1) (Printf.sprintf "%dx%d: %s" width height msg :: errors)
  in
  (* Belt and braces: [attempt] raising through any path not matched
     above must still surface as the structured [Error], never as an
     escaping exception. *)
  match go 0 [] with
  | r -> r
  | exception Routing_failed msg ->
      Error (Printf.sprintf "scalable P&R failed: %s" msg)
