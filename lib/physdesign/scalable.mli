(** Scalable (heuristic) physical design, in the spirit of [49].

    Nodes are assigned rows by topological level (input pads in row 0,
    output pads in the bottom row) and columns by iterated barycenter
    ordering; every edge is then routed individually by breadth-first
    maze routing through wire tiles, respecting border capacities and the
    two-segment wire-tile capacity.  On congestion the layout is retried
    with a wider and taller grid.

    Produces legal but generally non-minimal layouts orders of magnitude
    faster than {!Exact}; the exact-vs-scalable trade-off is one of the
    ablations reported by the benchmark harness. *)

type result = {
  layout : Layout.Gate_layout.t;
  width : int;
  height : int;
  retries : int;
}

val compute_levels : Netlist.t -> int array
(** Row assignment: topological (ASAP) levels computed in one Kahn pass,
    with fan-out nodes then sunk as late as possible in a single
    reverse-topological sweep (exposed for regression tests). *)

val place_and_route :
  ?max_retries:int ->
  ?blocked:(Hexlib.Coord.offset -> bool) ->
  Netlist.t ->
  (result, string) Stdlib.result
(** Row clocking; retries re-seed the router and grow/stretch the grid
    (default up to 16 retries).  With [blocked] (a defect-derived
    blocked-tile predicate, cf. [Bestagon.Surface]) the whole
    placement slides sideways to the center column whose footprint
    covers the fewest blocked tiles — escaping the defect field
    entirely once retries have grown the grid wide enough — each row
    then packs into its unblocked, un-walled columns nearest that
    center, routing never crosses a blocked tile, and the result is
    {e not} cropped: it stays in the absolute lattice frame the
    predicate was defined in.  Never raises: {!Routing_failed} from
    every retry (including a grid the map blocks entirely) is folded
    into the structured [Error]. *)

exception Routing_failed of string

val attempt :
  ?blocked:(Hexlib.Coord.offset -> bool) ->
  Netlist.t -> width:int -> height:int -> stretch:int -> seed:int ->
  Layout.Gate_layout.t
(** One placement-and-routing attempt at a fixed grid size (exposed for
    tests and diagnostics).  @raise Routing_failed on congestion (or
    when [blocked] leaves a row too few free columns). *)
