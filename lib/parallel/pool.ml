(* A fixed Domain pool with chunked work-stealing over index ranges.

   Workers block on a condition variable waiting for tasks; each [map]
   call enqueues one task per participating worker, and the task loops
   stealing chunks off a per-call atomic counter.  The caller's domain
   participates too, so [jobs] ways of parallelism need only [jobs - 1]
   pool workers. *)

(* --- worker-count policy --------------------------------------------- *)

let env_jobs () =
  match Sys.getenv_opt "FICTIONETTE_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let override = ref None

let set_default_jobs j =
  if j < 1 then invalid_arg "Parallel.Pool.set_default_jobs: jobs must be >= 1"
  else override := Some j

let default_jobs () =
  match !override with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> max 1 (Domain.recommended_domain_count ()))

(* --- the pool --------------------------------------------------------- *)

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
}

let the_pool =
  lazy
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopping = false;
    }

let rec worker_loop p =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.stopping do
    Condition.wait p.work_ready p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* stopping *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    task ();
    worker_loop p
  end

let shutdown () =
  if Lazy.is_val the_pool then begin
    let p = Lazy.force the_pool in
    Mutex.lock p.mutex;
    p.stopping <- true;
    Condition.broadcast p.work_ready;
    let workers = p.workers in
    p.workers <- [];
    Mutex.unlock p.mutex;
    List.iter Domain.join workers
  end

(* Grow the pool to at least [k] workers (never shrinks). *)
let ensure_workers p k =
  Mutex.lock p.mutex;
  let have = List.length p.workers in
  if have = 0 && k > 0 then at_exit shutdown;
  for _ = have + 1 to k do
    p.workers <- Domain.spawn (fun () -> worker_loop p) :: p.workers
  done;
  Mutex.unlock p.mutex

let submit p task =
  Mutex.lock p.mutex;
  Queue.push task p.queue;
  Condition.signal p.work_ready;
  Mutex.unlock p.mutex

(* --- map / map_reduce -------------------------------------------------- *)

let serial_map n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n (f 0) in
    for i = 1 to n - 1 do
      results.(i) <- f i
    done;
    results
  end

let parallel_map ~jobs n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let error = Atomic.make None in
  (* Small chunks keep stealing balanced when per-index cost varies
     (e.g. operational grid points near the domain boundary are much
     cheaper than deep-interior ones); one atomic add per chunk keeps
     contention negligible. *)
  let chunk = max 1 (n / (jobs * 8)) in
  let work () =
    let continue = ref true in
    while !continue do
      if Atomic.get error <> None then continue := false
      else begin
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          let stop = min n (start + chunk) in
          try
            for i = start to stop - 1 do
              results.(i) <- Some (f i)
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)))
      end
    done
  in
  let p = Lazy.force the_pool in
  ensure_workers p (jobs - 1);
  let done_mutex = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref (jobs - 1) in
  for _ = 1 to jobs - 1 do
    submit p (fun () ->
        work ();
        Mutex.lock done_mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock done_mutex)
  done;
  work ();
  Mutex.lock done_mutex;
  while !remaining > 0 do
    Condition.wait all_done done_mutex
  done;
  Mutex.unlock done_mutex;
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map (function Some v -> v | None -> assert false) results

let map ?jobs n f =
  if n < 0 then invalid_arg "Parallel.Pool.map: negative range";
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  if jobs = 1 then serial_map n f else parallel_map ~jobs n f

let map_reduce ?jobs ~n ~init ~map:f ~reduce =
  Array.fold_left reduce init (map ?jobs n f)
