(* A fixed Domain pool with chunked work-stealing over index ranges.

   Workers block on a condition variable waiting for tasks; each [map]
   call enqueues one task per participating worker, and the task loops
   stealing chunks off a per-call atomic counter.  The caller's domain
   participates too, so [jobs] ways of parallelism need only [jobs - 1]
   pool workers.

   Reentrancy: a caller (or a worker running a task) that reaches the
   end of its own chunks does not block waiting for its map to finish —
   it *helps*, popping and running whatever task is queued, and only
   sleeps when the queue is empty.  Task completions broadcast the same
   condition the queue uses, so helpers wake on either event.  This is
   what makes nested maps safe: the design server dispatches whole flow
   jobs onto the pool, and each flow calls [map] again internally (exact
   P&R candidate rounds, sweeps); without helping, a full complement of
   workers blocked in inner waits would deadlock on their own queued
   sub-tasks. *)

(* --- worker-count policy --------------------------------------------- *)

let env_jobs () =
  match Sys.getenv_opt "FICTIONETTE_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let override = ref None

let set_default_jobs j =
  if j < 1 then invalid_arg "Parallel.Pool.set_default_jobs: jobs must be >= 1"
  else override := Some j

let default_jobs () =
  match !override with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> max 1 (Domain.recommended_domain_count ()))

(* --- the pool --------------------------------------------------------- *)

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;
      (* Signalled on task submission AND broadcast on task completion:
         both workers waiting for work and helpers waiting for their
         call to finish sleep on it. *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
}

let the_pool =
  lazy
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopping = false;
    }

let rec worker_loop p =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.stopping do
    Condition.wait p.work_ready p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* stopping *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    task ();
    worker_loop p
  end

let shutdown () =
  if Lazy.is_val the_pool then begin
    let p = Lazy.force the_pool in
    Mutex.lock p.mutex;
    p.stopping <- true;
    Condition.broadcast p.work_ready;
    let workers = p.workers in
    p.workers <- [];
    Mutex.unlock p.mutex;
    List.iter Domain.join workers
  end

(* Grow the pool to at least [k] workers (never shrinks). *)
let ensure_workers p k =
  Mutex.lock p.mutex;
  let have = List.length p.workers in
  if have = 0 && k > 0 then at_exit shutdown;
  for _ = have + 1 to k do
    p.workers <- Domain.spawn (fun () -> worker_loop p) :: p.workers
  done;
  Mutex.unlock p.mutex

let submit p task =
  Mutex.lock p.mutex;
  Queue.push task p.queue;
  Condition.signal p.work_ready;
  Mutex.unlock p.mutex

(* --- map / map_reduce -------------------------------------------------- *)

let serial_map n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n (f 0) in
    for i = 1 to n - 1 do
      results.(i) <- f i
    done;
    results
  end

(* Record an exception keeping the lowest-raising index: the contract is
   that [map] re-raises the exception of the lowest-indexed raising job,
   whatever the schedule — error attribution downstream (the server
   pinpointing which request of a batch crashed) depends on it. *)
let rec record_error error i e bt =
  match Atomic.get error with
  | Some (j, _, _) when j <= i -> ()
  | cur ->
      if not (Atomic.compare_and_set error cur (Some (i, e, bt))) then
        record_error error i e bt

let parallel_map ~jobs n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let error = Atomic.make None in
  (* Small chunks keep stealing balanced when per-index cost varies
     (e.g. operational grid points near the domain boundary are much
     cheaper than deep-interior ones); one atomic add per chunk keeps
     contention negligible. *)
  let chunk = max 1 (n / (jobs * 8)) in
  let work () =
    let continue = ref true in
    while !continue do
      let start = Atomic.fetch_and_add next chunk in
      if start >= n then continue := false
      else
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          (* After an error, indices above the current lowest raiser are
             abandoned; indices below it must still run so the lowest
             raiser is found deterministically (for a pure [f] the set of
             raising indices is fixed, hence so is its minimum). *)
          match Atomic.get error with
          | Some (j, _, _) when i > j -> ()
          | _ -> (
              try results.(i) <- Some (f i)
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                record_error error i e bt)
        done
    done
  in
  let p = Lazy.force the_pool in
  ensure_workers p (jobs - 1);
  let remaining = Atomic.make (jobs - 1) in
  for _ = 1 to jobs - 1 do
    submit p (fun () ->
        work ();
        (* Completion must take the pool lock before broadcasting so a
           helper cannot check [remaining] and sleep between our
           decrement and our broadcast. *)
        Mutex.lock p.mutex;
        ignore (Atomic.fetch_and_add remaining (-1));
        Condition.broadcast p.work_ready;
        Mutex.unlock p.mutex)
  done;
  work ();
  (* Help until every submitted task has finished: run queued tasks
     (ours or any nested call's) instead of blocking, and sleep only
     when there is nothing to run. *)
  Mutex.lock p.mutex;
  while Atomic.get remaining > 0 do
    if Queue.is_empty p.queue then Condition.wait p.work_ready p.mutex
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.mutex;
      task ();
      Mutex.lock p.mutex
    end
  done;
  Mutex.unlock p.mutex;
  match Atomic.get error with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map (function Some v -> v | None -> assert false) results

(* --- adaptive dispatch ------------------------------------------------- *)

(* Dispatching to the pool costs real time (queue locking, worker
   wake-ups, cross-domain cache traffic): a tiny workload — say a
   15-point operational sweep at sub-millisecond per point — runs
   measurably *slower* at jobs > 1 than serially.  Adaptive maps
   therefore run a serial prefix on the caller until [dispatch_cutoff_s]
   of wall clock has elapsed; a workload that finishes inside the cutoff
   never touches the pool, and a heavy one pays at most the cutoff plus
   one item before the remaining indices fan out. *)
let dispatch_cutoff_s = 1e-3

(* Parallelism beyond the physical core count cannot help a CPU-bound
   pure [f] — extra domains only time-slice and thrash.  Adaptive maps
   cap the effective width accordingly (results are bit-identical either
   way, per the determinism contract). *)
let cores = lazy (max 1 (Domain.recommended_domain_count ()))

let map ?jobs ?(adaptive = true) n f =
  if n < 0 then invalid_arg "Parallel.Pool.map: negative range";
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  let jobs = if adaptive then min jobs (Lazy.force cores) else jobs in
  if jobs = 1 then serial_map n f
  else if not adaptive then parallel_map ~jobs n f
  else begin
    let deadline = Unix.gettimeofday () +. dispatch_cutoff_s in
    let prefix = ref [] in
    let i = ref 0 in
    let within = ref true in
    while !within && !i < n do
      prefix := f !i :: !prefix;
      incr i;
      if Unix.gettimeofday () >= deadline then within := false
    done;
    let prefix = Array.of_list (List.rev !prefix) in
    if !i >= n then prefix
    else begin
      let offset = !i in
      let rest_n = n - offset in
      let rest_jobs = min jobs rest_n in
      let rest =
        if rest_jobs = 1 then serial_map rest_n (fun k -> f (offset + k))
        else parallel_map ~jobs:rest_jobs rest_n (fun k -> f (offset + k))
      in
      Array.append prefix rest
    end
  end

let map_reduce ?jobs ~n ~init ~map:f ~reduce =
  Array.fold_left reduce init (map ?jobs n f)
