(** A fixed pool of worker {!Domain}s for the embarrassingly-parallel
    outer loops of the simulation stack (operational-domain sweeps,
    Monte-Carlo yield trials, brute-force equivalence rows).

    Design contract:

    - {b Determinism.} [map n f] returns exactly [[| f 0; …; f (n-1) |]]
      for a pure [f], whatever the worker count: indices are distributed
      by chunked work-stealing but every result lands in its own slot
      and the merge is ordered.  Parallel results are bit-identical to
      serial ones.
    - {b Serial path.} [jobs = 1] (explicitly, via [FICTIONETTE_JOBS=1],
      or on a single-core host) never touches the pool, spawns no
      domains, and evaluates [f 0 … f (n-1)] in order on the calling
      domain — the exact serial code path.
    - {b Exceptions.} If any [f i] raises, the exception of the
      {e lowest-indexed} raising job is re-raised on the caller (with
      its backtrace) after all workers have quiesced — deterministic,
      whatever the schedule, for a pure [f].  Indices above the lowest
      raiser found so far are abandoned; indices below it still run, so
      the propagated exception is always the one a serial left-to-right
      evaluation would have hit first.  (The design server's per-request
      error attribution depends on this determinism.)
    - {b Reentrancy.} [map] may be called from inside an [f] running on
      a pool worker: a completed participant {e helps} by running queued
      tasks (its own call's or any nested call's) instead of blocking,
      so nested maps cannot deadlock even with every worker busy.
    - {b Fixed pool.} Worker domains are spawned lazily on first
      parallel call, reused for every subsequent call, and joined at
      process exit.  The pool grows to the largest [jobs - 1] ever
      requested and never shrinks. *)

val default_jobs : unit -> int
(** Effective worker count used when [?jobs] is omitted: the value set
    with {!set_default_jobs} if any, else the [FICTIONETTE_JOBS]
    environment variable (when a positive integer), else
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Process-wide override (e.g. from a [--jobs] CLI flag); takes
    precedence over [FICTIONETTE_JOBS].
    @raise Invalid_argument when the count is not positive. *)

val map : ?jobs:int -> ?adaptive:bool -> int -> (int -> 'a) -> 'a array
(** [map ?jobs n f] is [[| f 0; …; f (n-1) |]], computed by up to [jobs]
    domains (the caller plus pool workers) stealing chunks of indices
    off a shared atomic counter.  [jobs] defaults to {!default_jobs};
    it is capped at [n].

    With [adaptive] (the default), two dispatch heuristics apply — the
    result stays bit-identical to serial in every case:

    - the effective width is additionally capped at the physical core
      count (extra domains can only time-slice a CPU-bound pure [f]);
    - a serial prefix runs on the caller until ~1 ms of wall clock has
      elapsed, so a tiny workload never pays pool dispatch at all, and a
      heavy one fans out after at most the cutoff plus one item.

    [~adaptive:false] forces immediate pool dispatch at the requested
    width — for tests and benchmarks that must exercise the parallel
    machinery itself. *)

val map_reduce :
  ?jobs:int -> n:int -> init:'b -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> 'b
(** [map_reduce ~n ~init ~map ~reduce] folds the mapped results {e in
    index order}: [reduce (… (reduce init (map 0)) …) (map (n-1))].
    The fold itself runs on the caller, so non-commutative reductions
    (e.g. floating-point products) are deterministic. *)
