(** Operational-domain analysis.

    The paper's outlook (Sec. 6) calls for a "streamlined operational
    domain evaluation framework": the region of physical-parameter space
    (μ₋, ε_r, λ_TF) in which a gate keeps computing its Boolean function.
    This module sweeps a 2-D slice of that space, classifying each sample
    with the exact ground-state engine. *)

type parameter = Mu_minus | Epsilon_r | Lambda_tf

type axis = {
  parameter : parameter;
  from_value : float;
  to_value : float;
  steps : int;  (** Number of samples (at least 2). *)
}

type sample = {
  x_value : float;
  y_value : float;
  operational : bool;
}

type t = {
  x_axis : axis;
  y_axis : axis;
  samples : sample list;  (** Row-major, y outer. *)
  operational_fraction : float;
}

val sweep :
  ?base:Model.t ->
  ?jobs:int ->
  ?engine:Bdl.engine ->
  x_axis:axis ->
  y_axis:axis ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  t
(** Exhaustively classify every grid point: a sample is operational when
    every input row's complete ground-state set reads back [spec].
    [engine] defaults to {!Bdl.default_engine} (exact pruned search
    unless overridden); a heuristic engine makes the classification an
    estimate.  Grid points are independent and are classified by [jobs]
    domains (default {!Parallel.Pool.default_jobs}); results are
    bit-identical to the serial ([jobs = 1]) sweep.
    @raise Invalid_argument when an axis has fewer than 2 steps or the
    two axes use the same parameter. *)

val operational_at :
  ?interaction_cache:bool ->
  ?engine:Bdl.engine ->
  Model.t ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  bool
(** One grid point of {!sweep}.  With [interaction_cache] (default) the
    interaction matrix is computed once over the union of the structure's
    sites and every truth-table row's subsystem is sliced out of it —
    same entries bit-for-bit, 2^arity fewer screened-Coulomb matrix
    builds; [~interaction_cache:false] rebuilds per row (the reference
    path, kept for the cache-agreement test). *)

val set_parameter : Model.t -> parameter -> float -> Model.t

val to_ascii : t -> string
(** Render the domain ('#' operational, '.' not), one row per y sample,
    y increasing downwards. *)

val parameter_name : parameter -> string
