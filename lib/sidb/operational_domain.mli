(** Operational-domain analysis.

    The paper's outlook (Sec. 6) calls for a "streamlined operational
    domain evaluation framework": the region of physical-parameter space
    (μ₋, ε_r, λ_TF) in which a gate keeps computing its Boolean function.
    This module sweeps a 2-D slice of that space with one of three
    algorithms (after the fiction framework, arXiv 1905.02477):

    - {!Grid} classifies every point exhaustively;
    - {!Flood_fill} classifies random probe points and grows each
      operational hit breadth-first over its 8-connected neighbours, so
      only the operational regions and their immediate borders are ever
      evaluated;
    - {!Contour_tracing} walks each seeded region's boundary
      (Moore-neighbour tracing with Jacob's stopping criterion) and
      infers the enclosed interior without evaluating it.

    All three agree exactly on every point they evaluate; the sampled
    algorithms under-count regions no probe hits, and contour tracing
    over-counts non-operational holes enclosed in a region — both report
    which points were actually evaluated ({!sample.evaluated},
    {!stats}). *)

type parameter = Mu_minus | Epsilon_r | Lambda_tf

type axis = {
  parameter : parameter;
  from_value : float;
  to_value : float;
  steps : int;  (** Number of samples (at least 2). *)
}

type algorithm = Grid | Flood_fill | Contour_tracing

type config = {
  algorithm : algorithm;
  samples : int;  (** Random probes seeding Flood_fill / Contour_tracing. *)
  seed : int;  (** splitmix64 stream for the probes — fully deterministic. *)
  shared_geometry : bool;
      (** Hoist the site-union index and distance matrix to per-sweep
          scope; only the screened-Coulomb kernel is re-applied per
          point.  Bit-identical results, one geometry build instead of
          [nx * ny]. *)
  adaptive_rows : bool;
      (** Try the most recently failing truth-table row first at each
          point so non-operational points short-circuit after ~1 solve.
          The verdict is order-invariant, so results are unchanged (and
          still bit-identical at any job count). *)
}

val default_config : config
(** [Grid] with shared geometry and adaptive row ordering: same samples
    as the historical exhaustive sweep, computed faster. *)

val baseline_config : config
(** The pre-overhaul engine preserved verbatim — exhaustive grid through
    the per-point {!operational_at} path, no hoisting, no adaptive
    ordering.  The benchmark harness measures every other configuration
    against this one. *)

val algorithm_name : algorithm -> string
val algorithm_of_string : string -> algorithm option

type sample = {
  x_value : float;
  y_value : float;
  operational : bool;
  evaluated : bool;
      (** [true] when the classifier actually ran at this point; sampled
          algorithms report skipped points with their inferred
          classification and [evaluated = false]. *)
}

type stats = {
  total_points : int;
  points_evaluated : int;  (** Distinct grid points actually classified. *)
  seed_probes : int;  (** Random probes used to seed region discovery. *)
  solver_calls_saved : int;
      (** [(total_points - points_evaluated) * 2^arity] — the worst-case
          ground-state solves the skipped points would have cost. *)
}

type t = {
  x_axis : axis;
  y_axis : axis;
  samples : sample list;  (** Row-major, y outer. *)
  operational_fraction : float;
  algorithm : algorithm;
  stats : stats;
}

val sweep :
  ?base:Model.t ->
  ?jobs:int ->
  ?engine:Bdl.engine ->
  ?config:config ->
  x_axis:axis ->
  y_axis:axis ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  t
(** Classify the grid with [config] (default {!default_config}): a
    point is operational when every input row's complete ground-state
    set reads back [spec].  [engine] defaults to {!Bdl.default_engine}
    (exact pruned search unless overridden); a heuristic engine makes
    the classification an estimate.  Evaluation batches are classified
    by [jobs] domains (default {!Parallel.Pool.default_jobs}); every
    algorithm's batches are deterministic, so results are bit-identical
    to the serial ([jobs = 1]) sweep at any job count.
    @raise Invalid_argument when an axis has fewer than 2 steps or the
    two axes use the same parameter. *)

val operational_at :
  ?interaction_cache:bool ->
  ?engine:Bdl.engine ->
  ?first_row:int ->
  Model.t ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  bool
(** One grid point of {!sweep}.  With [interaction_cache] (default) the
    interaction matrix is computed once over the union of the structure's
    sites and every truth-table row's subsystem is sliced out of it —
    same entries bit-for-bit, 2^arity fewer screened-Coulomb matrix
    builds; [~interaction_cache:false] rebuilds per row (the reference
    path, kept for the cache-agreement test).  [first_row] (default 0)
    is the truth-table row checked first — the verdict is the same for
    any value (out-of-range values fall back to 0); the sweep's adaptive
    row ordering feeds the most recently failing row through it. *)

val set_parameter : Model.t -> parameter -> float -> Model.t

val to_ascii : t -> string
(** Render the domain ('#' operational, '.' not), one row per y sample,
    y increasing downwards, preceded by a ["# "]-prefixed legend giving
    both axes, the origin corner, the algorithm, and the evaluated-point
    count. *)

val to_csv : t -> string
(** One header line naming the two swept parameters plus
    [operational,evaluated] flags, then one [x,y,0/1,0/1] line per
    sample in row-major order — ready for any plotting tool. *)

val parameter_name : parameter -> string
