(** A fixed set of SiDBs with its interaction matrix and (optional)
    external potential — the object the ground-state engines work on. *)

type t

val create : ?v_ext:float array -> Model.t -> Lattice.site array -> t
(** [v_ext] is an additional local potential per site in eV (e.g. from
    clocking electrodes); defaults to zero.
    @raise Invalid_argument on duplicate sites or length mismatch. *)

val create_from_distances :
  ?v_ext:float array ->
  Model.t ->
  Lattice.site array ->
  distances:float array array ->
  t
(** Like {!create}, but re-applies the screened-Coulomb kernel to a
    precomputed {!Model.distance_matrix} of [sites] instead of
    recomputing the geometry — the fast path for parameter sweeps, where
    only the kernel changes between points.  Bit-identical to {!create}
    when [distances = Model.distance_matrix sites].  The caller
    guarantees [sites] are distinct (no duplicate scan is performed).
    @raise Invalid_argument on a size mismatch. *)

val size : t -> int
val sites : t -> Lattice.site array
val model : t -> Model.t
val interaction : t -> int -> int -> float

val energy : t -> bool array -> float
(** Grand-canonical energy of an occupation vector ([true] = negatively
    charged). *)

val local_potential : t -> bool array -> int -> float
(** [sum_j V_ij n_j + v_ext_i] — the potential felt at site [i]. *)

val local_potentials : t -> bool array -> float array
(** All per-site potentials in a single O(n²) pass (one {!local_potential}
    per site costs the same asymptotically but this walks the matrix
    cache-friendly, row by occupied row). *)

val interaction_row : t -> int -> float array
(** The live row [i] of the interaction matrix (zero diagonal).  Exposed
    for engine inner loops that walk a whole row; callers must not
    mutate it. *)

val energy_delta_hop : t -> pot:float array -> src:int -> dst:int -> float
(** Energy change of hopping the charge at occupied [src] to empty
    [dst], in O(1) given the cached local potentials [pot] (from
    {!local_potentials}): [pot.(dst) - pot.(src) - V_src,dst]. *)

val apply_hop : t -> pot:float array -> src:int -> dst:int -> unit
(** Update the cached local potentials in place after actually
    performing the hop [src -> dst] — O(n), versus O(n²) for a full
    {!local_potentials} recomputation. *)

val population_stable : t -> bool array -> bool
(** SiQAD's population-stability criterion: every occupied site has
    [mu_minus + v_i <= 0] and every empty site [mu_minus + v_i >= 0].
    Short-circuits on the first violating site. *)

val configuration_stable : t -> bool array -> bool
(** No single-electron hop lowers the energy.  O(n²): per-site potentials
    are computed once ({!local_potentials}), so a hop [i -> j] costs O(1);
    short-circuits on the first energy-lowering hop. *)

val physically_valid : t -> bool array -> bool

val with_v_ext : t -> float array -> t
(** Same sites, different external potential (for clocking sweeps). *)

val sub : t -> int array -> t
(** [sub t idx] is the charge system over sites [t.sites.(idx.(0)), …]:
    the interaction submatrix and external potential are {e copied} from
    [t], not recomputed, so building many row subsystems from one full
    system skips the screened-Coulomb evaluations entirely (and yields
    bit-identical matrix entries).
    @raise Invalid_argument on an out-of-range or duplicate index. *)
