(** Fault injection for dot-accurate SiDB structures.

    Fabrication of SiDB logic is atomically precise but not perfect:
    dots can fail to form (or desorb), stray dots can appear, and
    charged point defects in the surface can shift the local potential.
    This harness perturbs a simulatable {!Bdl.structure} with randomized
    atomic defects, re-runs ground-state simulation on every input row,
    and reports an {e operational yield}: the fraction of fabrication
    trials whose per-row behaviour matches the defect-free baseline.

    All randomness flows through an explicit [Random.State.t] derived
    from [params.seed], so yields are reproducible. *)

type kind =
  | Missing_db  (** A structural SiDB failed to form. *)
  | Extra_db  (** A stray SiDB appeared at a free lattice site. *)
  | Charged_defect
      (** A fixed negative point charge shifting the local potential. *)

type defect =
  | Removed of Lattice.site
  | Added of Lattice.site
  | Charge_at of Lattice.site

val defect_kind : defect -> kind
val kind_to_string : kind -> string
val pp_defect : Format.formatter -> defect -> unit

type params = {
  missing : int;  (** Missing-DB defects per trial. *)
  extra : int;  (** Stray-DB defects per trial. *)
  charged : int;  (** Charged point defects per trial. *)
  trials : int;
  seed : int;
}

val default_params : params
(** One missing DB per trial, 50 trials, seed 42. *)

type injected = {
  structure : Bdl.structure;  (** The perturbed structure. *)
  defects : defect list;
  charges : Lattice.site list;
      (** Positions of injected point charges (these are not SiDBs of
          the structure; they act through the external potential). *)
}

val all_sites : Bdl.structure -> Lattice.site list
(** Every site of the structure: fixed dots, all input perturbers (near
    and far), and output pairs. *)

val inject : Random.State.t -> params -> Bdl.structure -> injected
(** Draw one defect configuration: [params.missing] random structural
    dots removed, [params.extra] stray dots and [params.charged] point
    charges placed at free sites in the structure's (margined) bounding
    box.  Input perturbers and the defect counts beyond what can be
    placed are left untouched. *)

val check_injected :
  ?engine:Bdl.engine ->
  ?model:Model.t ->
  injected ->
  spec:(bool array -> bool array) ->
  Bdl.report
(** {!Bdl.check} of the perturbed structure, with the injected point
    charges applied as an external potential. *)

val signature : Bdl.report -> bool list
(** The per-input-row [ok] signature a report is judged by: a perturbed
    structure is operational when its signature equals the defect-free
    baseline (some validation harnesses are imperfect on a row even
    cleanly — what matters is that defects do not change behaviour). *)

type trial = { defects : defect list; operational : bool }

type yield_report = {
  structure_name : string;
  params : params;
  baseline : bool list;
      (** Per-input-row [ok] of the defect-free structure. *)
  trials : trial list;
  operational_trials : int;
  yield : float;  (** [operational_trials / params.trials]; 1.0 when no
      trials. *)
}

val operational_yield :
  ?engine:Bdl.engine ->
  ?model:Model.t ->
  params ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  yield_report
(** Monte-Carlo operational yield.  A trial is operational when its
    per-row ok-signature equals the defect-free baseline — in
    particular, zero injected defects give yield 1.0 by construction.
    Deterministic for a fixed [params.seed]. *)

val pp_yield_report : Format.formatter -> yield_report -> unit
