type t = { mu_minus : float; epsilon_r : float; lambda_tf : float }

let default = { mu_minus = -0.32; epsilon_r = 5.6; lambda_tf = 5. }
let huff_or = { default with mu_minus = -0.28 }

let coulomb_k = 14.399645

let potential model d =
  if d <= 0. then infinity
  else
    coulomb_k /. model.epsilon_r /. d *. exp (-.d /. (model.lambda_tf *. 10.))

let interaction model s1 s2 = potential model (Lattice.distance s1 s2)

let interaction_matrix model sites =
  let n = Array.length sites in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = interaction model sites.(i) sites.(j) in
      m.(i).(j) <- v;
      m.(j).(i) <- v
    done
  done;
  m

let distance_matrix sites =
  let n = Array.length sites in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Lattice.distance sites.(i) sites.(j) in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  m

let interaction_matrix_of_distances model distances =
  (* Same upper-triangle-then-mirror evaluation order as
     [interaction_matrix], so the result is bit-identical to computing
     the matrix from the sites directly. *)
  let n = Array.length distances in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    if Array.length distances.(i) <> n then
      invalid_arg "Model.interaction_matrix_of_distances: ragged matrix";
    for j = i + 1 to n - 1 do
      let v = potential model distances.(i).(j) in
      m.(i).(j) <- v;
      m.(j).(i) <- v
    done
  done;
  m
