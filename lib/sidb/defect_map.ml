type kind = Charged | Neutral

type entry = { site : Lattice.site; kind : kind }

type t = { entries : entry list }

let empty = { entries = [] }
let entries t = t.entries
let of_entries entries = { entries }
let is_empty t = t.entries = []
let size t = List.length t.entries

let kind_to_string = function Charged -> "charged" | Neutral -> "neutral"

let equal_entry a b = a.kind = b.kind && Lattice.equal a.site b.site
let equal a b = List.equal equal_entry a.entries b.entries

let charged_sites t =
  List.filter_map
    (fun e -> if e.kind = Charged then Some e.site else None)
    t.entries

let is_defective t site =
  List.exists (fun e -> Lattice.equal e.site site) t.entries

let defect_at t site =
  List.find_map
    (fun e -> if Lattice.equal e.site site then Some e.kind else None)
    t.entries

let potential_at ?(model = Model.default) t site =
  List.fold_left
    (fun acc e ->
      match e.kind with
      | Charged -> acc +. Model.interaction model site e.site
      | Neutral -> acc)
    0. t.entries

let v_ext_at ?model t =
  if List.exists (fun e -> e.kind = Charged) t.entries then
    Some (fun site -> potential_at ?model t site)
  else None

(* --- textual format ---------------------------------------------------

   Line-oriented, versioned, round-trippable:

     sidb-defect-map v1
     # free-form comments and blank lines are ignored
     charged 12 3 0
     neutral 4 5 1

   One entry per line: kind, then the (n, m, l) site address.  Entry
   order is preserved, so [of_string (to_string t) = Ok t]. *)

let header = "sidb-defect-map v1"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d %d\n" (kind_to_string e.kind) e.site.Lattice.n
           e.site.Lattice.m e.site.Lattice.l))
    t.entries;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let err lineno msg =
    Error (Printf.sprintf "defect map line %d: %s" lineno msg)
  in
  match lines with
  | [] -> Error "defect map: empty input"
  | first :: rest ->
      if String.trim first <> header then
        Error
          (Printf.sprintf "defect map: expected header %S, got %S" header
             (String.trim first))
      else
        let rec go lineno acc = function
          | [] -> Ok { entries = List.rev acc }
          | line :: rest -> (
              let line = String.trim line in
              if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
              else
                match String.split_on_char ' ' line with
                | [ k; n; m; l ] -> (
                    let kind =
                      match k with
                      | "charged" -> Some Charged
                      | "neutral" -> Some Neutral
                      | _ -> None
                    in
                    match
                      ( kind,
                        int_of_string_opt n,
                        int_of_string_opt m,
                        int_of_string_opt l )
                    with
                    | None, _, _, _ ->
                        err lineno (Printf.sprintf "unknown defect kind %S" k)
                    | _, None, _, _ | _, _, None, _ | _, _, _, None ->
                        err lineno "site address is not three integers"
                    | Some kind, Some n, Some m, Some l ->
                        if l <> 0 && l <> 1 then
                          err lineno
                            (Printf.sprintf "intra-dimer index %d not 0 or 1" l)
                        else
                          go (lineno + 1)
                            ({ site = Lattice.site n m l; kind } :: acc)
                            rest)
                | _ -> err lineno (Printf.sprintf "unparsable entry %S" line))
        in
        go 2 [] rest

let save ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s

(* --- seeded random generation ---------------------------------------- *)

let random ~seed ~charged ~neutral (((lo_n, lo_m), (hi_n, hi_m)) as _box) =
  if hi_n < lo_n || hi_m < lo_m then
    invalid_arg "Defect_map.random: empty box";
  let rng = Random.State.make [| seed |] in
  let taken = Hashtbl.create 16 in
  let entries = ref [] in
  let draw kind =
    (* Rejection-sample a distinct site; give up silently when the box
       is (nearly) saturated so tiny boxes still terminate. *)
    let attempts = 500 in
    let rec go k =
      if k >= attempts then ()
      else
        let site =
          Lattice.site
            (lo_n + Random.State.int rng (hi_n - lo_n + 1))
            (lo_m + Random.State.int rng (hi_m - lo_m + 1))
            (Random.State.int rng 2)
        in
        if Hashtbl.mem taken site then go (k + 1)
        else begin
          Hashtbl.add taken site ();
          entries := { site; kind } :: !entries
        end
    in
    go 0
  in
  for _ = 1 to max 0 charged do
    draw Charged
  done;
  for _ = 1 to max 0 neutral do
    draw Neutral
  done;
  { entries = List.rev !entries }

let pp ppf t =
  Format.fprintf ppf "defect map: %d entr%s (%d charged, %d neutral)"
    (size t)
    (if size t = 1 then "y" else "ies")
    (List.length (charged_sites t))
    (List.length (List.filter (fun e -> e.kind = Neutral) t.entries))
