type result = { energy : float; states : bool array list }

let degeneracy r = List.length r.states

let epsilon = 1e-9

(* Gray-code enumeration: consecutive codes differ in one bit, so the
   energy is updated incrementally in O(n) per configuration. *)
let exhaustive ?(max_states = 64) sys =
  let n = Charge_system.size sys in
  if n > 24 then invalid_arg "Ground_state.exhaustive: more than 24 sites";
  if n = 0 then { energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let occ = Array.make n false in
    let best_energy = ref 0. (* the all-neutral configuration *) in
    let best_states = ref [ Array.copy occ ] in
    let current = ref 0. in
    let flip_cost i =
      (* Energy delta of toggling site i. *)
      let dv = ref (mu +. Charge_system.local_potential sys occ i) in
      if occ.(i) then dv := -. !dv;
      !dv
    in
    let total = 1 lsl n in
    for g = 1 to total - 1 do
      (* Bit flipped between Gray codes of g-1 and g. *)
      let flip =
        let x = g lxor (g lsr 1) and y = (g - 1) lxor ((g - 1) lsr 1) in
        let d = x lxor y in
        let rec bit_index k d = if d land 1 = 1 then k else bit_index (k + 1) (d lsr 1) in
        bit_index 0 d
      in
      current := !current +. flip_cost flip;
      occ.(flip) <- not occ.(flip);
      if !current < !best_energy -. epsilon then begin
        best_energy := !current;
        best_states := [ Array.copy occ ]
      end
      else if
        Float.abs (!current -. !best_energy) <= epsilon
        && List.length !best_states < max_states
      then best_states := Array.copy occ :: !best_states
    done;
    { energy = !best_energy; states = List.rev !best_states }
  end

let branch_and_bound ?(max_states = 64) sys =
  let n = Charge_system.size sys in
  if n = 0 then { energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    (* Explore sites in decreasing total-interaction order: strongly
       coupled sites first make the bound effective early. *)
    let weight i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Charge_system.interaction sys i j
      done;
      !acc
    in
    let order =
      List.sort
        (fun a b -> compare (weight b) (weight a))
        (List.init n (fun i -> i))
      |> Array.of_list
    in
    let occ = Array.make n false in
    let best_energy = ref 0. and best_states = ref [ Array.copy occ ] in
    (* v.(i): potential at site i from currently assigned charges. *)
    let v = Array.make n 0. in
    let rec explore depth current =
      if depth = n then begin
        if current < !best_energy -. epsilon then begin
          best_energy := current;
          best_states := [ Array.copy occ ]
        end
        else if
          Float.abs (current -. !best_energy) <= epsilon
          && List.length !best_states < max_states
        then best_states := Array.copy occ :: !best_states
      end
      else begin
        (* Admissible lower bound on the remaining energy: every
           still-unassigned site can contribute at least
           min(0, mu + v_i) (interactions among future charges are
           non-negative). *)
        let bound = ref 0. in
        for d = depth to n - 1 do
          let i = order.(d) in
          let c = mu +. v.(i) in
          if c < 0. then bound := !bound +. c
        done;
        if current +. !bound < !best_energy +. epsilon then begin
          let i = order.(depth) in
          let try_occupied () =
            let delta = mu +. v.(i) in
            occ.(i) <- true;
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) +. Charge_system.interaction sys i j
            done;
            explore (depth + 1) (current +. delta);
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) -. Charge_system.interaction sys i j
            done;
            occ.(i) <- false
          in
          let try_empty () = explore (depth + 1) current in
          (* Branch on the more promising value first. *)
          if mu +. v.(i) < 0. then begin
            try_occupied ();
            try_empty ()
          end
          else begin
            try_empty ();
            try_occupied ()
          end
        end
      end
    in
    (* Initialize v with the external potential. *)
    let zero_occ = Array.make n false in
    for i = 0 to n - 1 do
      v.(i) <- Charge_system.local_potential sys zero_occ i
    done;
    explore 0 0.;
    { energy = !best_energy; states = List.rev !best_states }
  end

(* QuickExact-style pruned search: branch and bound extended with
   population-stability subtree pruning.

   Interactions are repulsive, so along any completion of a partial
   assignment the potential v_i at a site only grows.  Two sound prune
   rules follow for every assigned site i:

   - occupied: stability finally needs [mu + v_i <= 0]; v_i only grows,
     so [mu + v_i > slack] already means no completion of this subtree
     is population-stable;
   - empty: stability finally needs [mu + v_i >= 0]; the most v_i can
     still gain is [rest_i] (the summed interaction with all unassigned
     sites), so [mu + v_i + rest_i < -slack] dooms the subtree.

   Every global minimum (and every state within [epsilon] of it) is
   population-stable to within [epsilon], so with [slack >> epsilon]
   pruning never drops a state that {!exhaustive} would report: the
   energy and the state set are identical. *)
let pruned ?(max_states = 64) sys =
  let n = Charge_system.size sys in
  if n = 0 then { energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let slack = 1e-6 in
    let weight i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Charge_system.interaction sys i j
      done;
      !acc
    in
    let order =
      List.sort
        (fun a b -> compare (weight b) (weight a))
        (List.init n (fun i -> i))
      |> Array.of_list
    in
    let occ = Array.make n false in
    let best_energy = ref infinity and best_states = ref [] in
    (* v.(i): potential at site i from currently assigned charges;
       rest.(i): summed interaction of i with all unassigned sites. *)
    let v = Array.make n 0. in
    let rest = Array.make n 0. in
    let zero_occ = Array.make n false in
    for i = 0 to n - 1 do
      v.(i) <- Charge_system.local_potential sys zero_occ i;
      rest.(i) <- weight i
    done;
    let record current =
      if current < !best_energy -. epsilon then begin
        best_energy := current;
        best_states := [ Array.copy occ ]
      end
      else if
        Float.abs (current -. !best_energy) <= epsilon
        && List.length !best_states < max_states
      then best_states := Array.copy occ :: !best_states
    in
    let rec explore depth current =
      if depth = n then record current
      else begin
        (* The same admissible energy bound as [branch_and_bound]. *)
        let bound = ref 0. in
        for d = depth to n - 1 do
          let k = order.(d) in
          let c = mu +. v.(k) in
          if c < 0. then bound := !bound +. c
        done;
        if current +. !bound < !best_energy +. epsilon then begin
          let i = order.(depth) in
          let take_rest () =
            for j = 0 to n - 1 do
              if j <> i then
                rest.(j) <- rest.(j) -. Charge_system.interaction sys i j
            done
          in
          let give_rest () =
            for j = 0 to n - 1 do
              if j <> i then
                rest.(j) <- rest.(j) +. Charge_system.interaction sys i j
            done
          in
          let try_occupied () =
            (* v_i only grows: an already-violating occupied site stays
               violating in every completion. *)
            if mu +. v.(i) <= slack then begin
              let delta = mu +. v.(i) in
              occ.(i) <- true;
              for j = 0 to n - 1 do
                if j <> i then
                  v.(j) <- v.(j) +. Charge_system.interaction sys i j
              done;
              take_rest ();
              (* The new charge pushed every previously-occupied assigned
                 site up; any of them past the bound kills the subtree. *)
              let rec assigned_ok d =
                d >= depth
                || (((not occ.(order.(d))) || mu +. v.(order.(d)) <= slack)
                   && assigned_ok (d + 1))
              in
              if assigned_ok 0 then explore (depth + 1) (current +. delta);
              give_rest ();
              for j = 0 to n - 1 do
                if j <> i then
                  v.(j) <- v.(j) -. Charge_system.interaction sys i j
              done;
              occ.(i) <- false
            end
          in
          let try_empty () =
            (* Even with every unassigned site charged, v_i tops out at
               v.(i) + rest.(i). *)
            if mu +. v.(i) +. rest.(i) >= -.slack then begin
              take_rest ();
              (* Assigning i shrank the headroom of every previously-empty
                 assigned site. *)
              let rec assigned_ok d =
                d > depth
                || ((occ.(order.(d))
                    || mu +. v.(order.(d)) +. rest.(order.(d)) >= -.slack)
                   && assigned_ok (d + 1))
              in
              if assigned_ok 0 then explore (depth + 1) current;
              give_rest ()
            end
          in
          if mu +. v.(i) < 0. then begin
            try_occupied ();
            try_empty ()
          end
          else begin
            try_empty ();
            try_occupied ()
          end
        end
      end
    in
    explore 0 0.;
    { energy = !best_energy; states = List.rev !best_states }
  end

(* Low-energy spectrum: like [branch_and_bound], but keeping every
   configuration within [window] of the running optimum. *)
let spectrum ?(max_states = 4096) ~window sys =
  let n = Charge_system.size sys in
  if n = 0 then [ ([||], 0.) ]
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let weight i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Charge_system.interaction sys i j
      done;
      !acc
    in
    let order =
      List.sort (fun a b -> compare (weight b) (weight a))
        (List.init n (fun i -> i))
      |> Array.of_list
    in
    let occ = Array.make n false in
    let best = ref 0. in
    let collected = ref [ (Array.copy occ, 0.) ] in
    let v = Array.make n 0. in
    let zero_occ = Array.make n false in
    for i = 0 to n - 1 do
      v.(i) <- Charge_system.local_potential sys zero_occ i
    done;
    let rec explore depth current =
      if current < !best then best := current;
      if depth = n then begin
        if current > epsilon || Array.exists (fun b -> b) occ then
          collected := (Array.copy occ, current) :: !collected
      end
      else begin
        let bound = ref 0. in
        for d = depth to n - 1 do
          let i = order.(d) in
          let c = mu +. v.(i) in
          if c < 0. then bound := !bound +. c
        done;
        if current +. !bound <= !best +. window +. epsilon then begin
          let i = order.(depth) in
          let try_occupied () =
            let delta = mu +. v.(i) in
            occ.(i) <- true;
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) +. Charge_system.interaction sys i j
            done;
            explore (depth + 1) (current +. delta);
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) -. Charge_system.interaction sys i j
            done;
            occ.(i) <- false
          in
          if mu +. v.(i) < 0. then begin
            try_occupied ();
            explore (depth + 1) current
          end
          else begin
            explore (depth + 1) current;
            try_occupied ()
          end
        end
      end
    in
    explore 0 0.;
    (* The all-neutral configuration was seeded; the guard above avoided
       duplicating it at the leaves. *)
    let sorted =
      List.sort (fun (_, e1) (_, e2) -> compare e1 e2) !collected
    in
    let within =
      List.filter (fun (_, e) -> e <= !best +. window +. epsilon) sorted
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take max_states within
  end
