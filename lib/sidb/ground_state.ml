type result = { energy : float; states : bool array list }

let degeneracy r = List.length r.states

let epsilon = 1e-9

(* Gray-code enumeration: consecutive codes differ in one bit, so the
   energy is updated incrementally in O(n) per configuration. *)
let exhaustive ?(max_states = 64) sys =
  let n = Charge_system.size sys in
  if n > 24 then invalid_arg "Ground_state.exhaustive: more than 24 sites";
  if n = 0 then { energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let occ = Array.make n false in
    let best_energy = ref 0. (* the all-neutral configuration *) in
    let best_states = ref [ Array.copy occ ] in
    let current = ref 0. in
    let flip_cost i =
      (* Energy delta of toggling site i. *)
      let dv = ref (mu +. Charge_system.local_potential sys occ i) in
      if occ.(i) then dv := -. !dv;
      !dv
    in
    let total = 1 lsl n in
    for g = 1 to total - 1 do
      (* Bit flipped between Gray codes of g-1 and g. *)
      let flip =
        let x = g lxor (g lsr 1) and y = (g - 1) lxor ((g - 1) lsr 1) in
        let d = x lxor y in
        let rec bit_index k d = if d land 1 = 1 then k else bit_index (k + 1) (d lsr 1) in
        bit_index 0 d
      in
      current := !current +. flip_cost flip;
      occ.(flip) <- not occ.(flip);
      if !current < !best_energy -. epsilon then begin
        best_energy := !current;
        best_states := [ Array.copy occ ]
      end
      else if
        Float.abs (!current -. !best_energy) <= epsilon
        && List.length !best_states < max_states
      then best_states := Array.copy occ :: !best_states
    done;
    { energy = !best_energy; states = List.rev !best_states }
  end

let branch_and_bound ?(max_states = 64) sys =
  let n = Charge_system.size sys in
  if n = 0 then { energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    (* Explore sites in decreasing total-interaction order: strongly
       coupled sites first make the bound effective early. *)
    let weight i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Charge_system.interaction sys i j
      done;
      !acc
    in
    let order =
      List.sort
        (fun a b -> compare (weight b) (weight a))
        (List.init n (fun i -> i))
      |> Array.of_list
    in
    let occ = Array.make n false in
    let best_energy = ref 0. and best_states = ref [ Array.copy occ ] in
    (* v.(i): potential at site i from currently assigned charges. *)
    let v = Array.make n 0. in
    let rec explore depth current =
      if depth = n then begin
        if current < !best_energy -. epsilon then begin
          best_energy := current;
          best_states := [ Array.copy occ ]
        end
        else if
          Float.abs (current -. !best_energy) <= epsilon
          && List.length !best_states < max_states
        then best_states := Array.copy occ :: !best_states
      end
      else begin
        (* Admissible lower bound on the remaining energy: every
           still-unassigned site can contribute at least
           min(0, mu + v_i) (interactions among future charges are
           non-negative). *)
        let bound = ref 0. in
        for d = depth to n - 1 do
          let i = order.(d) in
          let c = mu +. v.(i) in
          if c < 0. then bound := !bound +. c
        done;
        if current +. !bound < !best_energy +. epsilon then begin
          let i = order.(depth) in
          let try_occupied () =
            let delta = mu +. v.(i) in
            occ.(i) <- true;
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) +. Charge_system.interaction sys i j
            done;
            explore (depth + 1) (current +. delta);
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) -. Charge_system.interaction sys i j
            done;
            occ.(i) <- false
          in
          let try_empty () = explore (depth + 1) current in
          (* Branch on the more promising value first. *)
          if mu +. v.(i) < 0. then begin
            try_occupied ();
            try_empty ()
          end
          else begin
            try_empty ();
            try_occupied ()
          end
        end
      end
    in
    (* Initialize v with the external potential. *)
    let zero_occ = Array.make n false in
    for i = 0 to n - 1 do
      v.(i) <- Charge_system.local_potential sys zero_occ i
    done;
    explore 0 0.;
    { energy = !best_energy; states = List.rev !best_states }
  end

(* QuickExact-style pruned search: branch and bound extended with
   population-stability subtree pruning.

   Interactions are repulsive, so along any completion of a partial
   assignment the potential v_i at a site only grows.  Two sound prune
   rules follow for every assigned site i:

   - occupied: stability finally needs [mu + v_i <= 0]; v_i only grows,
     so [mu + v_i > slack] already means no completion of this subtree
     is population-stable;
   - empty: stability finally needs [mu + v_i >= 0]; the most v_i can
     still gain is [rest_i] (the summed interaction with all unassigned
     sites), so [mu + v_i + rest_i < -slack] dooms the subtree.

   Every global minimum (and every state within [epsilon] of it) is
   population-stable to within [epsilon], so with [slack >> epsilon]
   pruning never drops a state that {!exhaustive} would report: the
   energy and the state set are identical. *)
let pruned ?(max_states = 64) sys =
  let n = Charge_system.size sys in
  if n = 0 then { energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let slack = 1e-6 in
    let weight i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Charge_system.interaction sys i j
      done;
      !acc
    in
    let order =
      List.sort
        (fun a b -> compare (weight b) (weight a))
        (List.init n (fun i -> i))
      |> Array.of_list
    in
    let occ = Array.make n false in
    let best_energy = ref infinity and best_states = ref [] in
    (* v.(i): potential at site i from currently assigned charges;
       rest.(i): summed interaction of i with all unassigned sites. *)
    let v = Array.make n 0. in
    let rest = Array.make n 0. in
    let zero_occ = Array.make n false in
    for i = 0 to n - 1 do
      v.(i) <- Charge_system.local_potential sys zero_occ i;
      rest.(i) <- weight i
    done;
    let record current =
      if current < !best_energy -. epsilon then begin
        best_energy := current;
        best_states := [ Array.copy occ ]
      end
      else if
        Float.abs (current -. !best_energy) <= epsilon
        && List.length !best_states < max_states
      then best_states := Array.copy occ :: !best_states
    in
    let rec explore depth current =
      if depth = n then record current
      else begin
        (* The same admissible energy bound as [branch_and_bound]. *)
        let bound = ref 0. in
        for d = depth to n - 1 do
          let k = order.(d) in
          let c = mu +. v.(k) in
          if c < 0. then bound := !bound +. c
        done;
        if current +. !bound < !best_energy +. epsilon then begin
          let i = order.(depth) in
          let take_rest () =
            for j = 0 to n - 1 do
              if j <> i then
                rest.(j) <- rest.(j) -. Charge_system.interaction sys i j
            done
          in
          let give_rest () =
            for j = 0 to n - 1 do
              if j <> i then
                rest.(j) <- rest.(j) +. Charge_system.interaction sys i j
            done
          in
          let try_occupied () =
            (* v_i only grows: an already-violating occupied site stays
               violating in every completion. *)
            if mu +. v.(i) <= slack then begin
              let delta = mu +. v.(i) in
              occ.(i) <- true;
              for j = 0 to n - 1 do
                if j <> i then
                  v.(j) <- v.(j) +. Charge_system.interaction sys i j
              done;
              take_rest ();
              (* The new charge pushed every previously-occupied assigned
                 site up; any of them past the bound kills the subtree. *)
              let rec assigned_ok d =
                d >= depth
                || (((not occ.(order.(d))) || mu +. v.(order.(d)) <= slack)
                   && assigned_ok (d + 1))
              in
              if assigned_ok 0 then explore (depth + 1) (current +. delta);
              give_rest ();
              for j = 0 to n - 1 do
                if j <> i then
                  v.(j) <- v.(j) -. Charge_system.interaction sys i j
              done;
              occ.(i) <- false
            end
          in
          let try_empty () =
            (* Even with every unassigned site charged, v_i tops out at
               v.(i) + rest.(i). *)
            if mu +. v.(i) +. rest.(i) >= -.slack then begin
              take_rest ();
              (* Assigning i shrank the headroom of every previously-empty
                 assigned site. *)
              let rec assigned_ok d =
                d > depth
                || ((occ.(order.(d))
                    || mu +. v.(order.(d)) +. rest.(order.(d)) >= -.slack)
                   && assigned_ok (d + 1))
              in
              if assigned_ok 0 then explore (depth + 1) current;
              give_rest ()
            end
          in
          if mu +. v.(i) < 0. then begin
            try_occupied ();
            try_empty ()
          end
          else begin
            try_empty ();
            try_occupied ()
          end
        end
      end
    in
    explore 0 0.;
    { energy = !best_energy; states = List.rev !best_states }
  end

(* QuickSim-style heuristic engine (arXiv 2303.03422): many independent
   seeded samples, each a randomized steepest-ish descent over the two
   physical move classes — population updates (toggle a site's charge)
   and configuration updates (hop a charge to an empty site).  Every
   applied move strictly lowers the energy by more than [epsilon], so a
   sample terminates at a state that is population- and
   configuration-stable by construction, i.e. [physically_valid].
   Samples are merged deterministically in sample-index order, so the
   result is bit-identical at any [--jobs] (the Parallel.Pool
   contract). *)

type quicksim_config = {
  samples : int;
  iterations : int;
  alpha : float;
  seed : int;
  max_states : int;
}

let default_quicksim =
  { samples = 64; iterations = 20_000; alpha = 2.0; seed = 1; max_states = 64 }

(* Splitmix64 stream: decorrelates per-sample RNGs from consecutive
   sample indices (same mixing as Bestagon.Yield.tile_seed). *)
let quicksim_seed base k =
  let open Int64 in
  let z = add (of_int base) (mul (of_int (k + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

let quicksim_sample sys config k =
  let n = Charge_system.size sys in
  let mu = (Charge_system.model sys).Model.mu_minus in
  let rng = Random.State.make [| quicksim_seed config.seed k; k |] in
  let occ = Array.make n false in
  (* Sample 0 descends from the all-neutral configuration (pure greedy);
     the others start from random occupations for diversity. *)
  if k > 0 then
    for i = 0 to n - 1 do
      occ.(i) <- Random.State.bool rng
    done;
  let pot = ref (Charge_system.local_potentials sys occ) in
  let moves = ref 0 in
  let weights = Array.make (max n 1) 0. in
  let apply_toggle i =
    let row = Charge_system.interaction_row sys i in
    let p = !pot in
    if occ.(i) then begin
      occ.(i) <- false;
      for j = 0 to n - 1 do
        p.(j) <- p.(j) -. row.(j)
      done
    end
    else begin
      occ.(i) <- true;
      for j = 0 to n - 1 do
        p.(j) <- p.(j) +. row.(j)
      done
    end;
    incr moves
  in
  (* One population move: among the energy-lowering toggles pick one at
     random, weighted by |delta|^alpha (larger alpha = greedier).
     Returns false when the population is already stable. *)
  let population_move () =
    let p = !pot in
    let total = ref 0. in
    for i = 0 to n - 1 do
      let dv = mu +. p.(i) in
      let delta = if occ.(i) then -.dv else dv in
      let w = if delta < -.epsilon then Float.pow (-.delta) config.alpha else 0. in
      weights.(i) <- w;
      total := !total +. w
    done;
    if !total <= 0. then false
    else begin
      let u = Random.State.float rng !total in
      let pick = ref (-1) in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        if weights.(i) > 0. then begin
          acc := !acc +. weights.(i);
          (* The last positive weight also catches float-rounding slop
             where the running sum lands a hair under [total]. *)
          if !pick < 0 && !acc >= u then pick := i
        end
      done;
      let i =
        if !pick >= 0 then !pick
        else begin
          let last = ref 0 in
          for i = 0 to n - 1 do
            if weights.(i) > 0. then last := i
          done;
          !last
        end
      in
      apply_toggle i;
      true
    end
  in
  (* One configuration move: the steepest energy-lowering single hop
     (lowest (src, dst) pair on exact ties).  Returns false when the
     configuration is already stable. *)
  let hop_move () =
    let p = !pot in
    let best = ref (-.epsilon) and bsrc = ref (-1) and bdst = ref (-1) in
    for i = 0 to n - 1 do
      if occ.(i) then
        for j = 0 to n - 1 do
          if not occ.(j) then begin
            let d = Charge_system.energy_delta_hop sys ~pot:p ~src:i ~dst:j in
            if d < !best then begin
              best := d;
              bsrc := i;
              bdst := j
            end
          end
        done
    done;
    if !bsrc < 0 then false
    else begin
      occ.(!bsrc) <- false;
      occ.(!bdst) <- true;
      Charge_system.apply_hop sys ~pot:!pot ~src:!bsrc ~dst:!bdst;
      incr moves;
      true
    end
  in
  let rec descend () =
    if !moves < config.iterations then
      if population_move () then descend ()
      else if hop_move () then descend ()
  in
  descend ();
  (* Re-derive the potentials from scratch and keep polishing until the
     state is a fixpoint of the fresh potentials too: this shields the
     physically-valid guarantee from float drift in the incremental
     updates. *)
  let rec settle budget =
    pot := Charge_system.local_potentials sys occ;
    if budget > 0 && !moves < config.iterations
       && (population_move () || hop_move ())
    then begin
      descend ();
      settle (budget - 1)
    end
  in
  settle 16;
  (occ, Charge_system.energy sys occ)

let quicksim_pool config ?jobs sys =
  let samples = max 1 config.samples in
  Parallel.Pool.map ?jobs samples (fun k -> quicksim_sample sys config k)

let quicksim ?(config = default_quicksim) ?jobs sys =
  let pool = quicksim_pool config ?jobs sys in
  let all = Array.to_list pool in
  let usable =
    (* A sample that exhausted its move budget mid-descent can sit at an
       unstable state; never let it masquerade as a ground state. *)
    match
      List.filter (fun (occ, _) -> Charge_system.physically_valid sys occ) all
    with
    | [] -> all (* every sample hit the cap: best-effort answer *)
    | valid -> valid
  in
  let best = List.fold_left (fun acc (_, e) -> Float.min acc e) infinity usable in
  (* Deterministic merge: scan in sample-index order, dedup, cap. *)
  let states = ref [] and count = ref 0 in
  List.iter
    (fun (occ, e) ->
      if
        Float.abs (e -. best) <= epsilon
        && !count < config.max_states
        && not (List.exists (fun s -> s = occ) !states)
      then begin
        states := occ :: !states;
        incr count
      end)
    usable;
  { energy = best; states = List.rev !states }

let quicksim_spectrum ?(config = default_quicksim) ?jobs sys =
  let pool = quicksim_pool config ?jobs sys in
  (* Dedup in sample-index order (first occurrence wins), then sort by
     energy; the stable sort keeps index order inside energy ties. *)
  let dedup = ref [] in
  Array.iter
    (fun (occ, e) ->
      if not (List.exists (fun (s, _) -> s = occ) !dedup) then
        dedup := (occ, e) :: !dedup)
    pool;
  List.stable_sort (fun (_, e1) (_, e2) -> compare e1 e2) (List.rev !dedup)

(* Low-energy spectrum: like [branch_and_bound], but keeping every
   configuration within [window] of the running optimum. *)
let spectrum ?(max_states = 4096) ~window sys =
  let n = Charge_system.size sys in
  if n = 0 then [ ([||], 0.) ]
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let weight i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Charge_system.interaction sys i j
      done;
      !acc
    in
    let order =
      List.sort (fun a b -> compare (weight b) (weight a))
        (List.init n (fun i -> i))
      |> Array.of_list
    in
    let occ = Array.make n false in
    let best = ref 0. in
    let collected = ref [ (Array.copy occ, 0.) ] in
    let v = Array.make n 0. in
    let zero_occ = Array.make n false in
    for i = 0 to n - 1 do
      v.(i) <- Charge_system.local_potential sys zero_occ i
    done;
    let rec explore depth current =
      if current < !best then best := current;
      if depth = n then begin
        if current > epsilon || Array.exists (fun b -> b) occ then
          collected := (Array.copy occ, current) :: !collected
      end
      else begin
        let bound = ref 0. in
        for d = depth to n - 1 do
          let i = order.(d) in
          let c = mu +. v.(i) in
          if c < 0. then bound := !bound +. c
        done;
        if current +. !bound <= !best +. window +. epsilon then begin
          let i = order.(depth) in
          let try_occupied () =
            let delta = mu +. v.(i) in
            occ.(i) <- true;
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) +. Charge_system.interaction sys i j
            done;
            explore (depth + 1) (current +. delta);
            for j = 0 to n - 1 do
              if j <> i then
                v.(j) <- v.(j) -. Charge_system.interaction sys i j
            done;
            occ.(i) <- false
          in
          if mu +. v.(i) < 0. then begin
            try_occupied ();
            explore (depth + 1) current
          end
          else begin
            explore (depth + 1) current;
            try_occupied ()
          end
        end
      end
    in
    explore 0 0.;
    (* The all-neutral configuration was seeded; the guard above avoided
       duplicating it at the leaves. *)
    let sorted =
      List.sort (fun (_, e1) (_, e2) -> compare e1 e2) !collected
    in
    let within =
      List.filter (fun (_, e) -> e <= !best +. window +. epsilon) sorted
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take max_states within
  end
