let boltzmann_k = 8.617333262e-5

(* Spectrum window wide enough that truncated states carry negligible
   Boltzmann weight at the temperatures of interest (< 1e-6 at 400 K for
   a 0.35 eV window). *)
let default_window = 0.35

let spectrum_probabilities spectrum ~temperature_k =
  if temperature_k <= 0. then invalid_arg "Temperature: non-positive T";
  let e0 =
    List.fold_left (fun acc (_, e) -> Float.min acc e) infinity spectrum
  in
  let e0 = if e0 = infinity then 0. else e0 in
  let kt = boltzmann_k *. temperature_k in
  let weights =
    List.map (fun (occ, e) -> (occ, exp (-.(e -. e0) /. kt))) spectrum
  in
  let z = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  if z <= 0. then []
  else List.map (fun (occ, w) -> (occ, w /. z)) weights

let state_probabilities sys ~temperature_k ~max_states =
  if temperature_k <= 0. then invalid_arg "Temperature: non-positive T";
  let spectrum =
    Ground_state.spectrum ~max_states ~window:default_window sys
  in
  spectrum_probabilities spectrum ~temperature_k

let ground_probability spectrum ~temperature_k =
  let e0 =
    List.fold_left (fun acc (_, e) -> Float.min acc e) infinity spectrum
  in
  let probabilities = spectrum_probabilities spectrum ~temperature_k in
  List.fold_left2
    (fun acc (_, e) (_, p) -> if Float.abs (e -. e0) <= 1e-9 then acc +. p else acc)
    0. spectrum probabilities

let critical_temperature_of_spectrum ?(confidence = 0.9) ?(t_max = 400.)
    spectrum =
  if spectrum = [] then 0.
  else begin
    let reliable t = ground_probability spectrum ~temperature_k:t >= confidence in
    if not (reliable 1.) then 0.
    else if reliable t_max then t_max
    else begin
      let lo = ref 1. and hi = ref t_max in
      while !hi -. !lo > 1. do
        let mid = 0.5 *. (!lo +. !hi) in
        if reliable mid then lo := mid else hi := mid
      done;
      !lo
    end
  end

let correctness_probability structure ~spec ~temperature_k
    ?(model = Model.default) () =
  let arity = Array.length structure.Bdl.inputs in
  let worst = ref 1. in
  for row = 0 to (1 lsl arity) - 1 do
    let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
    let expected = spec assignment in
    let sites = Bdl.sites_for structure assignment in
    let sys = Charge_system.create model sites in
    let probabilities =
      state_probabilities sys ~temperature_k ~max_states:4096
    in
    let correct =
      List.fold_left
        (fun acc (occ, p) ->
          let obs =
            Array.map (fun pair -> Bdl.read_pair sites occ pair)
              structure.Bdl.outputs
          in
          let right =
            Array.length obs = Array.length expected
            && Array.for_all2 (fun o e -> o = Some e) obs expected
          in
          if right then acc +. p else acc)
        0. probabilities
    in
    if correct < !worst then worst := correct
  done;
  !worst

let critical_temperature ?(confidence = 0.9) ?(t_max = 400.) ?model structure
    ~spec =
  let reliable t =
    correctness_probability structure ~spec ~temperature_k:t ?model ()
    >= confidence
  in
  (* The gate must at least work in the limit T -> 0 (ground state). *)
  if not (reliable 1.) then 0.
  else if reliable t_max then t_max
  else begin
    (* Binary search to 1 K resolution. *)
    let lo = ref 1. and hi = ref t_max in
    while !hi -. !lo > 1. do
      let mid = 0.5 *. (!lo +. !hi) in
      if reliable mid then lo := mid else hi := mid
    done;
    !lo
  end
